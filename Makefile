GO ?= go

.PHONY: build test race vet check bench demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the tier-1 verification gate: vet, build, tests, race tests.
check: vet build test race

bench:
	$(GO) run ./cmd/cliobench -quick

demo:
	$(GO) run ./cmd/cliodemo
