GO ?= go

.PHONY: build test race vet check bench demo serve-smoke chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# serve-smoke boots clio serve, drives a create/corr/walk/illustrate
# round-trip over HTTP, kills the server with SIGKILL mid-session,
# verifies the journal replays it on restart, and checks graceful
# shutdown.
serve-smoke:
	sh scripts/serve_smoke.sh

# chaos runs the deterministic fault-injection suite under the race
# detector with a pinned seed, so any failure replays exactly.
chaos:
	CLIO_CHAOS_SEED=1 $(GO) test -race -run 'Chaos|Journal|Budget|Mode|Prob' ./internal/fault ./internal/fd ./internal/workspace ./internal/serve

# check is the tier-1 verification gate: vet, build, tests, race
# tests, the chaos suite, and the serve smoke test.
check: vet build test race chaos serve-smoke

bench:
	$(GO) run ./cmd/cliobench -quick

demo:
	$(GO) run ./cmd/cliodemo
