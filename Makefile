GO ?= go

.PHONY: build test race vet check bench demo serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# serve-smoke boots clio serve, drives a create/corr/walk/illustrate
# round-trip over HTTP, and verifies graceful shutdown.
serve-smoke:
	sh scripts/serve_smoke.sh

# check is the tier-1 verification gate: vet, build, tests, race
# tests, and the serve smoke test.
check: vet build test race serve-smoke

bench:
	$(GO) run ./cmd/cliobench -quick

demo:
	$(GO) run ./cmd/cliodemo
