GO ?= go

.PHONY: build test race vet staticcheck check bench bench-core bench-diff bench-smoke demo serve-smoke chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# staticcheck runs honest-to-goodness staticcheck when the binary is
# on PATH and is a no-op otherwise, so `make check` works on machines
# without it installed.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# serve-smoke boots clio serve, drives a create/corr/walk/illustrate
# round-trip over HTTP, kills the server with SIGKILL mid-session,
# verifies the journal replays it on restart, and checks graceful
# shutdown.
serve-smoke:
	sh scripts/serve_smoke.sh

# chaos runs the deterministic fault-injection suite under the race
# detector with a pinned seed, so any failure replays exactly.
chaos:
	CLIO_CHAOS_SEED=1 $(GO) test -race -run 'Chaos|Journal|Budget|Mode|Prob' ./internal/fault ./internal/fd ./internal/workspace ./internal/serve ./internal/csvio ./internal/discovery ./internal/spill ./internal/algebra ./internal/budget

# check is the tier-1 verification gate: vet, staticcheck (when
# installed), build, tests, race tests, the chaos suite, the serve
# smoke test, and a one-iteration pass over the execution-core
# benchmark workloads.
check: vet staticcheck build test race chaos serve-smoke bench-smoke

bench:
	$(GO) run ./cmd/cliobench -quick

# bench-core measures the streaming execution core (E10: D(G), join,
# minimum-union and distinct micro-workloads) and writes the numbers
# quoted in the PR to BENCH_core.json.
bench-core:
	$(GO) run ./cmd/cliobench -exp E10 -json BENCH_core.json

# bench-diff is the regression gate: a fresh full-size E10 run
# compared cell-by-cell against the committed BENCH_core.json medians,
# failing on any >25% regression. Run it before committing a core
# change; refresh the baseline with bench-core when a change is
# intentional.
bench-diff:
	$(GO) run ./cmd/cliobench -exp E10 -diff BENCH_core.json

# bench-smoke runs each E10 workload exactly once — a fast liveness
# check that the benchmark harness itself still works — and diffs the
# run against the committed baseline in structural mode (every
# baseline cell must still exist; timings are not enforced at smoke
# sizes).
bench-smoke:
	$(GO) run ./cmd/cliobench -exp E10 -quick -once -diff BENCH_core.json

demo:
	$(GO) run ./cmd/cliodemo
