// Package clio is a from-scratch reproduction of "Data-Driven
// Understanding and Refinement of Schema Mappings" (Yan, Miller, Haas,
// Fagin; SIGMOD 2001) — the data-driven half of IBM's Clio schema-
// mapping tool.
//
// The package is a facade: it re-exports the library's public surface
// so applications can build schema mappings, illustrate them with
// carefully chosen data examples, and refine them with the paper's
// operators (data walk, data chase, trimming, correspondences) without
// importing internal packages.
//
// # The model
//
// A Mapping is the paper's <G, V, C_S, C_T>: a query graph G of source
// relation occurrences joined by strong predicates, value
// correspondences V into one target relation, source filters C_S and
// target filters C_T. Its semantics is a query over the full
// disjunction D(G) — the minimum union of the join results of every
// induced connected subgraph of G.
//
// Examples (pairs of a data association and the target tuple it
// produces) illustrate a mapping; SufficientIllustration selects a
// small set that demonstrates every coverage category, every filter
// outcome, and every correspondence behaviour. Focus restricts
// attention to familiar tuples. The Tool type manages alternative
// mappings in workspaces, ranks them, and keeps a WYSIWYG target view.
//
// # Quick start
//
//	in, _ := clio.LoadCSVDir("data/")
//	tool := clio.NewTool(in, target, true)
//	tool.Start("my-mapping")
//	tool.AddCorrespondence(clio.Identity("Orders.id", clio.Col("Report", "id")))
//	view, _ := tool.TargetView()
//
// See examples/ for complete programs and DESIGN.md for the system
// inventory.
package clio
