// Multi-mapping ETL: populating one target with several mappings.
//
// This example reproduces the paper's Examples 6.1 and 6.2: a target
// field whose value comes from different source relations for
// different rows. Kids.ArrivalTime comes from the bus schedule B when
// the child rides a bus, and is computed from the class schedule CS
// otherwise. Two mappings with complementary filters populate the same
// target; the final content is their union.
//
//	go run ./examples/etl
package main

import (
	"fmt"
	"log"

	"clio"
)

func main() {
	// Source: children, the bus schedule B, and class schedules CS.
	sch := clio.NewDatabase()
	sch.MustAddRelation(clio.NewRelationSchema("Children",
		clio.Attribute{Name: "ID"}, clio.Attribute{Name: "name"}))
	sch.MustAddRelation(clio.NewRelationSchema("B",
		clio.Attribute{Name: "ID"}, clio.Attribute{Name: "arrives"}))
	sch.MustAddRelation(clio.NewRelationSchema("CS",
		clio.Attribute{Name: "ID"}, clio.Attribute{Name: "lastClassEnds"}))
	sch.AddKey("Children", "ID")
	sch.AddForeignKey("b_c", "B", []string{"ID"}, "Children", []string{"ID"})
	sch.AddForeignKey("cs_c", "CS", []string{"ID"}, "Children", []string{"ID"})

	in := clio.NewInstance(sch)
	c := in.NewRelationFor("Children")
	c.AddRow("001", "Ann")
	c.AddRow("002", "Maya")
	c.AddRow("004", "Bo")
	in.MustAdd(c)
	b := in.NewRelationFor("B")
	b.AddRow("001", "15:40") // Ann rides the bus
	in.MustAdd(b)
	cs := in.NewRelationFor("CS")
	cs.AddRow("002", "15:00") // Maya and Bo walk home after class
	cs.AddRow("004", "14:10")
	in.MustAdd(cs)

	target := clio.NewRelationSchema("Kids",
		clio.Attribute{Name: "ID"},
		clio.Attribute{Name: "name"},
		clio.Attribute{Name: "ArrivalTime"},
	)

	// A walking child arrives half an hour after the last class.
	clio.RegisterFunc("walkHome", func(args []clio.Value) clio.Value {
		if len(args) != 1 || args[0].IsNull() {
			return clio.Null
		}
		return clio.StringValue(args[0].String() + "+0:30")
	})

	// Mapping 1: bus riders.
	viaBus := clio.NewMapping("viaBus", target)
	viaBus.Graph.MustAddNode("Children", "Children")
	viaBus.Graph.MustAddNode("B", "B")
	viaBus.Graph.MustAddEdge("Children", "B", clio.Equals("Children.ID", "B.ID"))
	viaBus.Corrs = []clio.Correspondence{
		clio.Identity("Children.ID", clio.Col("Kids", "ID")),
		clio.Identity("Children.name", clio.Col("Kids", "name")),
		clio.Identity("B.arrives", clio.Col("Kids", "ArrivalTime")),
	}
	viaBus.SourceFilters = []clio.Expr{clio.MustParseExpr("B.ID IS NOT NULL")}

	// Mapping 2: walkers — the second way to compute ArrivalTime
	// (Example 6.2). It reuses the ID/name correspondences and differs
	// only in the graph tail and the ArrivalTime computation.
	viaClass := viaBus.Clone()
	viaClass.Name = "viaClass"
	viaClass.Graph = clio.NewQueryGraph()
	viaClass.Graph.MustAddNode("Children", "Children")
	viaClass.Graph.MustAddNode("B", "B")
	viaClass.Graph.MustAddNode("CS", "CS")
	viaClass.Graph.MustAddEdge("Children", "B", clio.Equals("Children.ID", "B.ID"))
	viaClass.Graph.MustAddEdge("Children", "CS", clio.Equals("Children.ID", "CS.ID"))
	viaClass = viaClass.WithoutCorrespondence("ArrivalTime")
	var err error
	viaClass, err = viaClass.WithCorrespondence(
		clio.CorrFromExpr(clio.MustParseExpr("walkHome(CS.lastClassEnds)"), clio.Col("Kids", "ArrivalTime")))
	must(err)
	// Only children who do NOT ride a bus (complementary trimming
	// filter, Example 6.1's pattern).
	viaClass.SourceFilters = []clio.Expr{
		clio.MustParseExpr("B.ID IS NULL"),
		clio.MustParseExpr("Children.ID IS NOT NULL"),
	}

	for _, m := range []*clio.Mapping{viaBus, viaClass} {
		if err := m.Validate(in); err != nil {
			log.Fatalf("%s: %v", m.Name, err)
		}
		res, err := m.Evaluate(in)
		must(err)
		fmt.Printf("mapping %s contributes:\n%s\n", m.Name,
			clio.FormatTable(res, clio.RenderOptions{Unqualify: true}))
	}

	// The target is the union of both mappings' contributions.
	r1, err := viaBus.Evaluate(in)
	must(err)
	r2, err := viaClass.Evaluate(in)
	must(err)
	union := r1.Clone()
	for _, tp := range r2.Tuples() {
		union.Add(tp)
	}
	fmt.Println("final Kids (union of both mappings):")
	fmt.Println(clio.FormatTable(union.Distinct().Sorted(), clio.RenderOptions{Unqualify: true}))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
