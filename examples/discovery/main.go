// Discovery: mapping a directory of raw CSV files.
//
// The example writes the paper's source database out as CSV files,
// loads it back with no schema or constraints, and mines everything
// Clio needs from the data alone: column profiles, inclusion
// dependencies, foreign-key proposals, and the join knowledge that
// makes data walks possible.
//
//	go run ./examples/discovery
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"clio"
	"clio/internal/paperdb"
)

func main() {
	ctx := context.Background()
	// Stage the CSVs (in a real deployment these are the user's
	// files).
	dir, err := os.MkdirTemp("", "clio-discovery-")
	must(err)
	defer os.RemoveAll(dir)
	must(clio.SaveCSVDir(dir, paperdb.Instance()))

	// Load with zero schema knowledge.
	in, err := clio.LoadCSVDir(dir)
	must(err)
	fmt.Printf("loaded %d relations, %d tuples, no constraints\n\n", len(in.Names()), in.TotalTuples())

	// Mine inclusion dependencies and propose foreign keys.
	inds := clio.DiscoverINDs(ctx, in, 1.0)
	fmt.Println("full inclusion dependencies found in the data:")
	for _, ind := range inds {
		fmt.Printf("  %s ⊆ %s\n", ind.From, ind.To)
	}
	fks := clio.ProposeForeignKeys(in, inds)
	fmt.Println("\nforeign keys proposed (IND into a unique column):")
	for _, fk := range fks {
		fmt.Printf("  %s.%s -> %s.%s\n", fk.FromRelation, fk.FromAttrs[0], fk.ToRelation, fk.ToAttrs[0])
	}

	// Build a tool with mined knowledge and map as usual: the walk to
	// Parents now works even though the CSVs declared nothing.
	target := clio.NewRelationSchema("Kids",
		clio.Attribute{Name: "ID"},
		clio.Attribute{Name: "name"},
		clio.Attribute{Name: "affiliation"},
	)
	tool := clio.NewTool(ctx, in, target, true)
	must(tool.Start("kids"))
	must(tool.AddCorrespondence(ctx, clio.Identity("Children.ID", clio.Col("Kids", "ID"))))
	must(tool.AddCorrespondence(ctx, clio.Identity("Children.name", clio.Col("Kids", "name"))))
	must(tool.AddCorrespondence(ctx, clio.Identity("Parents.affiliation", clio.Col("Kids", "affiliation"))))

	fmt.Printf("\nafter the affiliation correspondence, Clio proposes %d scenarios:\n", len(tool.Workspaces()))
	for _, w := range tool.Workspaces() {
		fmt.Printf("  [%d] %s\n", w.ID, w.Note)
		fmt.Print(w.Mapping.Graph.String())
	}
	view, err := tool.TargetView(ctx)
	must(err)
	fmt.Println("\ntarget view under the first scenario:")
	fmt.Println(clio.FormatTable(view, clio.RenderOptions{Unqualify: true}))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
