// Data walk and data chase: exploring an unfamiliar source.
//
// This example replays the paper's exploration story on the Figure 1
// database: the user does not know how phone numbers relate to
// children (data walk, Figure 4), and does not even know which
// relation holds bus schedules — the cryptically named SBPS — so she
// chases a familiar value instead (data chase, Figure 5).
//
//	go run ./examples/datawalk
package main

import (
	"context"
	"fmt"
	"log"

	"clio"
	"clio/internal/paperdb"
)

func main() {
	ctx := context.Background()
	in := paperdb.Instance()
	k := paperdb.Knowledge() // declared foreign keys only
	ix := clio.BuildValueIndex(ctx, in)

	// The mapping so far: children with their fathers' affiliations.
	m := clio.NewMapping("kids", paperdb.Kids())
	m.Graph.MustAddNode("Children", "Children")
	m.Graph.MustAddNode("Parents", "Parents")
	m.Graph.MustAddEdge("Children", "Parents", clio.Equals("Children.fid", "Parents.ID"))
	m.Corrs = []clio.Correspondence{
		clio.Identity("Children.ID", clio.Col("Kids", "ID")),
		clio.Identity("Children.name", clio.Col("Kids", "name")),
		clio.Identity("Parents.affiliation", clio.Col("Kids", "affiliation")),
	}

	// --- Data walk: "associate children with phone numbers, somehow".
	opts, err := clio.DataWalk(ctx, m, k, "Children", "PhoneDir", 3)
	must(err)
	fmt.Printf("DataWalk(Children -> PhoneDir): %d alternatives\n\n", len(opts))
	for i, o := range opts {
		fmt.Printf("Scenario %d (%s):\n", i+1, o.Describe())
		withPhone, err := o.Mapping.WithCorrespondence(
			clio.Identity("PhoneDir.number", clio.Col("Kids", "contactPh")))
		must(err)
		res, err := withPhone.Evaluate(in)
		must(err)
		fmt.Println(clio.FormatTable(res, clio.RenderOptions{Unqualify: true}))
	}

	// The user picks the mother scenario: the one that introduced a
	// second copy of Parents.
	var chosen *clio.Mapping
	for _, o := range opts {
		if o.Mapping.Graph.HasNode("Parents2") {
			chosen = o.Mapping
		}
	}
	chosen, err = chosen.WithCorrespondence(clio.Identity("PhoneDir.number", clio.Col("Kids", "contactPh")))
	must(err)

	// --- Data chase: "where else does Maya's ID appear?"
	chase, err := clio.DataChase(ctx, chosen, ix, "Children.ID", clio.StringValue("002"))
	must(err)
	fmt.Printf("DataChase(Children.ID = 002): %d alternatives\n", len(chase))
	for i, c := range chase {
		fmt.Printf("  %d. %s\n", i+1, c.Describe())
	}
	fmt.Println()

	// SBPS turns out to be the School Bus Pickup Schedule.
	for _, c := range chase {
		if c.To.Relation != "SBPS" {
			continue
		}
		final, err := c.Mapping.WithCorrespondence(clio.Identity("SBPS.time", clio.Col("Kids", "BusSchedule")))
		must(err)
		final = final.WithTargetFilter(clio.MustParseExpr("Kids.ID IS NOT NULL"))
		res, err := final.Evaluate(in)
		must(err)
		fmt.Println("Final target after choosing the SBPS scenario:")
		fmt.Println(clio.FormatTable(res, clio.RenderOptions{Unqualify: true}))

		// The illustration keeps the user oriented: it evolved from
		// the mapping she already understood.
		oldIll, err := clio.SufficientIllustration(ctx, chosen, in)
		must(err)
		ev, err := clio.Evolve(ctx, oldIll, final, in)
		must(err)
		fmt.Printf("Illustration continuity after the chase: %.0f%% of old examples extended, %d fresh\n",
			100*ev.ContinuityRatio(), ev.Fresh)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
