// Large sources: examples stay small while the data grows.
//
// The paper's pitch is that carefully selected examples prevent the
// user from being "lost in a jungle of data". This example generates a
// four-relation chain with tens of thousands of tuples, builds a
// mapping over it, and shows that (a) the sufficient illustration
// stays at a handful of rows, (b) a coverage summary orients the user,
// and (c) sampling bounds exploration cost when the full instance is
// too big to browse.
//
//	go run ./examples/largescale
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"clio"
	"clio/internal/datagen"
	"clio/internal/relation"
)

func main() {
	ctx := context.Background()
	// A synthetic 4-relation chain with 10k rows per relation.
	c := datagen.Chain(datagen.ChainSpec{
		Relations: 4, Rows: 10000, KeySpace: 5000, MatchProb: 0.85, Seed: 2026,
	})
	fmt.Printf("source: %d relations, %d tuples total\n",
		len(c.Instance.Names()), c.Instance.TotalTuples())

	c.Mapping.TargetFilters = []clio.Expr{clio.MustParseExpr("T.vR0 IS NOT NULL")}

	start := time.Now()
	dg, err := clio.ComputeDG(ctx, c.Graph, c.Instance)
	must(err)
	fmt.Printf("D(G): %d data associations (computed in %v)\n", dg.Len(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	il, err := clio.SufficientIllustration(ctx, c.Mapping, c.Instance)
	must(err)
	fmt.Printf("sufficient illustration: %d examples (selected in %v) — the user reads %d rows, not %d\n\n",
		len(il.Examples), time.Since(start).Round(time.Millisecond), len(il.Examples), dg.Len())
	fmt.Println(clio.FormatIllustration(il, map[string]string{
		"R0": "A", "R1": "B", "R2": "C", "R3": "D",
	}))

	// Coverage orientation: how many associations fall in each category.
	counts := map[string]int{}
	for _, d := range dg.Tuples() {
		cov, err := clio.Coverage(d, c.Graph, c.Instance)
		must(err)
		counts[clio.CoverageTag(cov, nil)]++
	}
	fmt.Println("coverage categories (associations per category):")
	for tag, n := range counts {
		fmt.Printf("  %-12s %6d\n", tag, n)
	}

	// Sampling: preview the mapping on 1% of the data.
	sampled := relation.SampleInstance(c.Instance, 100, 7)
	res, err := c.Mapping.Evaluate(sampled)
	must(err)
	fmt.Printf("\npreview on a sampled instance (100 rows/relation): %d target rows\n", res.Len())
	fmt.Println(clio.FormatTable(res, clio.RenderOptions{Unqualify: true, MaxRows: 5}))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
