// Quickstart: build the paper's Kids mapping programmatically with
// the public clio API and print the resulting target relation and the
// generated SQL.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"clio"
)

func main() {
	ctx := context.Background()
	// A small source: two relations linked by a foreign key.
	sch := clio.NewDatabase()
	sch.MustAddRelation(clio.NewRelationSchema("Employees",
		clio.Attribute{Name: "eid"},
		clio.Attribute{Name: "name"},
		clio.Attribute{Name: "deptID"},
	))
	sch.MustAddRelation(clio.NewRelationSchema("Departments",
		clio.Attribute{Name: "did"},
		clio.Attribute{Name: "title"},
		clio.Attribute{Name: "floor"},
	))
	sch.AddKey("Departments", "did")
	sch.AddForeignKey("emp_dept", "Employees", []string{"deptID"}, "Departments", []string{"did"})

	in := clio.NewInstance(sch)
	emp := in.NewRelationFor("Employees")
	emp.AddRow("e1", "Ada", "d1")
	emp.AddRow("e2", "Grace", "d2")
	emp.AddRow("e3", "Alan", "-") // no department
	in.MustAdd(emp)
	dep := in.NewRelationFor("Departments")
	dep.AddRow("d1", "Research", "3")
	dep.AddRow("d2", "Engineering", "5")
	dep.AddRow("d9", "Archive", "0") // no employees
	in.MustAdd(dep)

	// The target: a denormalized staff directory.
	target := clio.NewRelationSchema("Directory",
		clio.Attribute{Name: "who"},
		clio.Attribute{Name: "dept"},
		clio.Attribute{Name: "floor"},
	)

	// Open a tool; correspondences drive everything else. The walk to
	// Departments is inferred from the declared foreign key.
	tool := clio.NewTool(ctx, in, target, false)
	must(tool.Start("directory"))
	must(tool.AddCorrespondence(ctx, clio.Identity("Employees.name", clio.Col("Directory", "who"))))
	must(tool.AddCorrespondence(ctx, clio.Identity("Departments.title", clio.Col("Directory", "dept"))))
	must(tool.AddCorrespondence(ctx, clio.Identity("Departments.floor", clio.Col("Directory", "floor"))))
	must(tool.AddTargetFilter(ctx, clio.MustParseExpr("Directory.who IS NOT NULL")))

	// Inspect the illustration Clio chose: it demonstrates the
	// employee-with-department case, the department-less employee, and
	// the employee-less department.
	w := tool.Active()
	fmt.Println(clio.FormatIllustration(w.Illustration, map[string]string{
		"Employees": "E", "Departments": "D",
	}))

	// The WYSIWYG target view.
	view, err := tool.TargetView(ctx)
	must(err)
	fmt.Println(clio.FormatTable(view, clio.RenderOptions{Unqualify: true}))

	// And the SQL a database would run.
	if root, ok := w.Mapping.RequiredRoot(); ok {
		sql, err := w.Mapping.ViewSQL(root)
		must(err)
		fmt.Println(sql)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
