package clio_test

// Build-and-run checks for the example programs: each example must
// compile and exit cleanly. Skipped with -short.

import (
	"os/exec"
	"strings"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	examples := map[string]string{
		"quickstart": "CREATE VIEW Directory",
		"datawalk":   "DataChase(Children.ID = 002): 3 alternatives",
		"etl":        "final Kids (union of both mappings)",
		"discovery":  "foreign keys proposed",
		"largescale": "sufficient illustration:",
	}
	for name, marker := range examples {
		name, marker := name, marker
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), marker) {
				t.Errorf("example %s output missing %q", name, marker)
			}
		})
	}
}
