package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// drive runs a REPL script and returns the combined output.
func drive(t *testing.T, script string) string {
	t.Helper()
	var b bytes.Buffer
	if err := run(strings.NewReader(script), &b); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, b.String())
	}
	return b.String()
}

func TestSection2Script(t *testing.T) {
	out := drive(t, `
# the paper's scenario
paper
rels
show Children
start kids
corr Children.ID -> Kids.ID
corr Children.name -> Kids.name
corr Parents.affiliation -> Kids.affiliation
ws
accept
walk Children PhoneDir
accept
corr PhoneDir.number -> Kids.contactPh
accept
chase Children.ID 002
ws
filter target Kids.ID IS NOT NULL
ill
eval
sql
quit
`)
	for _, want := range []string{
		"loaded the paper's Figure 1 database",
		"Maya",
		"workspace opened",
		"SBPS",
		"XmasBar",
		"SELECT * FROM (",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "error:") {
		t.Errorf("script produced errors:\n%s", out)
	}
}

func TestHelpAndUnknown(t *testing.T) {
	out := drive(t, "help\nbogus\nquit\n")
	if !strings.Contains(out, "commands:") {
		t.Error("help missing")
	}
	if !strings.Contains(out, `unknown command "bogus"`) {
		t.Errorf("unknown command not reported:\n%s", out)
	}
}

func TestErrorsWithoutState(t *testing.T) {
	out := drive(t, `
rels
show X
start m
target T(a)
start m
corr A.x -> T.a
walk A B
chase A.x 1
ill
sql
eval
accept
ws
use 1
delete 1
filter source TRUE
quit
`)
	// Before any load, most commands report errors rather than crash.
	if c := strings.Count(out, "error:"); c < 5 {
		t.Errorf("expected several errors, got %d:\n%s", c, out)
	}
}

func TestLoadCSVAndTarget(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "People.csv"),
		[]byte("id,name\n1,Ada\n2,Grace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "Jobs.csv"),
		[]byte("pid,title\n1,engineer\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := drive(t, `
load `+dir+`
mine
target Report(who, job)
start report
corr People.name -> Report.who
corr Jobs.title -> Report.job
eval
quit
`)
	if !strings.Contains(out, "loaded 2 relations") {
		t.Errorf("load failed:\n%s", out)
	}
	if !strings.Contains(out, "Ada") || !strings.Contains(out, "engineer") {
		t.Errorf("mapped view wrong:\n%s", out)
	}
	if strings.Contains(out, "error:") {
		t.Errorf("script produced errors:\n%s", out)
	}
}

func TestBadCommands(t *testing.T) {
	out := drive(t, `
paper
target Bad
start m
use notanumber
delete notanumber
show Children notanumber
filter bogus TRUE
corr nonsense
walk onlyone
chase onlyone
quit
`)
	if c := strings.Count(out, "error:"); c < 7 {
		t.Errorf("expected parse errors, got %d:\n%s", c, out)
	}
}

func TestSchemaCommand(t *testing.T) {
	out := drive(t, "paper\ntarget T(a)\nstart m\nschema\nquit\n")
	if !strings.Contains(out, "join knowledge:") || !strings.Contains(out, "Children.mid = Parents.ID") {
		t.Errorf("schema output wrong:\n%s", out)
	}
}

func TestDiffAndCoverageCommands(t *testing.T) {
	out := drive(t, `
paper
start kids
corr Children.ID -> Kids.ID
corr Parents.affiliation -> Kids.affiliation
ws
diff 3 4
cov
diff 3
diff x y
quit
`)
	if !strings.Contains(out, "structural differences") {
		t.Errorf("diff output missing:\n%s", out)
	}
	if !strings.Contains(out, "coverage categories") {
		t.Errorf("cov output missing:\n%s", out)
	}
	if strings.Count(out, "usage: diff") != 2 {
		t.Errorf("diff usage errors missing:\n%s", out)
	}
}

func TestSaveLoadStatusDot(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "kids.json")
	out := drive(t, `
paper
start kids
corr Children.ID -> Kids.ID
corr Children.name -> Kids.name
status
dot
save `+file+`
quit
`)
	if !strings.Contains(out, "UNMAPPED") || !strings.Contains(out, "mapped by kids") {
		t.Errorf("status missing:\n%s", out)
	}
	if !strings.Contains(out, `graph "kids"`) {
		t.Errorf("dot missing:\n%s", out)
	}
	if !strings.Contains(out, "saved mapping") {
		t.Errorf("save missing:\n%s", out)
	}
	// Reload in a fresh session.
	out2 := drive(t, `
paper
loadmap `+file+`
eval
quit
`)
	if !strings.Contains(out2, `loaded mapping "kids"`) || !strings.Contains(out2, "Maya") {
		t.Errorf("loadmap failed:\n%s", out2)
	}
	// Error paths.
	out3 := drive(t, "paper\nstart kids\nsave\nloadmap\nloadmap /no/such.json\nquit\n")
	if strings.Count(out3, "error:") < 3 {
		t.Errorf("expected save/loadmap errors:\n%s", out3)
	}
}

func TestFocusAndSampleCommands(t *testing.T) {
	out := drive(t, `
paper
start kids
corr Children.ID -> Kids.ID
corr Children.name -> Kids.name
focus Children ID 002
focus Children ID zzz
focus Nope ID 002
focus Children
sample 2
sample x
quit
`)
	if !strings.Contains(out, "Maya") {
		t.Errorf("focus output missing Maya:\n%s", out)
	}
	if !strings.Contains(out, "sampled to at most 2 rows") {
		t.Errorf("sample output missing:\n%s", out)
	}
	if c := strings.Count(out, "error:"); c < 4 {
		t.Errorf("expected focus/sample errors, got %d:\n%s", c, out)
	}
}

func TestUndoCommand(t *testing.T) {
	out := drive(t, `
paper
start kids
corr Children.ID -> Kids.ID
corr Parents.affiliation -> Kids.affiliation
undo
ws
undo
undo
quit
`)
	if !strings.Contains(out, "undone") {
		t.Errorf("undo output missing:\n%s", out)
	}
	// Eventually history empties.
	if !strings.Contains(out, "nothing to undo") {
		t.Errorf("exhausted-history error missing:\n%s", out)
	}
}

func TestImportSQLCommand(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "view.sql")
	sql := `CREATE VIEW MiniKids AS
SELECT Children.ID AS ID, Children.name AS name, Parents.affiliation AS affiliation
FROM Children
LEFT JOIN Parents ON Children.mid = Parents.ID
WHERE Children.ID IS NOT NULL;`
	if err := os.WriteFile(file, []byte(sql), 0o644); err != nil {
		t.Fatal(err)
	}
	out := drive(t, "paper\nimportsql "+file+"\neval\nsql\nquit\n")
	if !strings.Contains(out, `imported mapping "MiniKids"`) {
		t.Errorf("import failed:\n%s", out)
	}
	if !strings.Contains(out, "Maya") || !strings.Contains(out, "Acta") {
		t.Errorf("imported view evaluation wrong:\n%s", out)
	}
	// Error paths.
	out2 := drive(t, "paper\nimportsql\nimportsql /no/such.sql\nquit\n")
	if strings.Count(out2, "error:") < 2 {
		t.Errorf("expected import errors:\n%s", out2)
	}
}

func TestSuggestCommand(t *testing.T) {
	out := drive(t, "paper\nsuggest\nquit\n")
	if !strings.Contains(out, "corr Parents.affiliation -> Kids.affiliation") {
		t.Errorf("suggest output missing affiliation:\n%s", out)
	}
	if !strings.Contains(out, "Kids.ID") {
		t.Errorf("suggest output missing ID:\n%s", out)
	}
	out2 := drive(t, "suggest\nquit\n")
	if !strings.Contains(out2, "error:") {
		t.Errorf("suggest without source should error:\n%s", out2)
	}
}

func TestExplainCommand(t *testing.T) {
	out := drive(t, `
paper
start kids
corr Children.ID -> Kids.ID
corr Parents.affiliation -> Kids.affiliation
explain
quit
`)
	if !strings.Contains(out, "populates Kids") || !strings.Contains(out, "pairs with") {
		t.Errorf("explain output wrong:\n%s", out)
	}
}

func TestReportCommand(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "session.html")
	out := drive(t, `
paper
start kids
corr Children.ID -> Kids.ID
report `+file+`
report
quit
`)
	if !strings.Contains(out, "wrote "+file) {
		t.Errorf("report output missing:\n%s", out)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<title>Clio session: kids</title>") {
		t.Error("HTML content wrong")
	}
	if !strings.Contains(out, "usage: report") {
		t.Errorf("missing usage error:\n%s", out)
	}
}
