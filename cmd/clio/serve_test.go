package main

import (
	"os"
	"strings"
	"testing"
	"time"

	"clio/internal/fd"
)

// The serve flag set must surface every lifecycle knob in the config
// and reject combinations the server cannot honor.
func TestParseServeConfig(t *testing.T) {
	cfg, drain, err := parseServeConfig([]string{
		"-journal-dir", "/tmp/j",
		"-snapshot-every", "8",
		"-idle-ttl", "30m",
		"-archive-dir", "/tmp/a",
		"-session-max-rows", "1000",
		"-session-max-bytes", "4096",
		"-session-rps", "2.5",
		"-drain", "3s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.JournalDir != "/tmp/j" || cfg.SnapshotEvery != 8 || cfg.IdleTTL != 30*time.Minute ||
		cfg.ArchiveDir != "/tmp/a" || cfg.SessionRPS != 2.5 {
		t.Errorf("lifecycle flags not threaded into config: %+v", cfg)
	}
	if cfg.SessionBudget != (fd.Budget{MaxRows: 1000, MaxBytes: 4096}) {
		t.Errorf("session budget flags not threaded: %+v", cfg.SessionBudget)
	}
	if drain != 3*time.Second {
		t.Errorf("drain = %v, want 3s", drain)
	}
}

func TestParseServeConfigObservabilityFlags(t *testing.T) {
	cfg, _, err := parseServeConfig([]string{
		"-access-log",
		"-slow-ms", "250",
		"-trace-buffer", "64",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.AccessLog != os.Stderr {
		t.Error("-access-log did not wire stderr into the config")
	}
	if cfg.SlowThreshold != 250*time.Millisecond {
		t.Errorf("SlowThreshold = %v, want 250ms", cfg.SlowThreshold)
	}
	if cfg.TraceBufferSize != 64 {
		t.Errorf("TraceBufferSize = %d, want 64", cfg.TraceBufferSize)
	}
	// Defaults: no access log, no slow threshold, default retention.
	cfg, _, err = parseServeConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.AccessLog != nil || cfg.SlowThreshold != 0 || cfg.TraceBufferSize != 0 {
		t.Errorf("observability on by default: %+v", cfg)
	}
}

func TestParseServeConfigDefaults(t *testing.T) {
	cfg, _, err := parseServeConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SnapshotEvery != 0 || cfg.IdleTTL != 0 || cfg.ArchiveDir != "" ||
		cfg.SessionRPS != 0 || !cfg.SessionBudget.Unlimited() {
		t.Errorf("lifecycle features on by default: %+v", cfg)
	}
	// The historic "-cache 0 disables" quirk must survive the refactor.
	cfg, _, err = parseServeConfig([]string{"-cache", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CacheCapacity != -1 {
		t.Errorf("-cache 0 parsed to capacity %d, want -1 (disabled)", cfg.CacheCapacity)
	}
}

func TestParseServeConfigRejectsBadCombos(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"idle_ttl_without_journal", []string{"-idle-ttl", "5m"}, "-idle-ttl requires -journal-dir"},
		{"snapshot_without_journal", []string{"-snapshot-every", "4"}, "-snapshot-every requires -journal-dir"},
		{"archive_without_journal", []string{"-archive-dir", "/tmp/a"}, "-archive-dir requires -journal-dir"},
		{"negative_idle_ttl", []string{"-journal-dir", "/tmp/j", "-idle-ttl", "-1s"}, "-idle-ttl must be >= 0"},
		{"negative_session_rps", []string{"-session-rps", "-1"}, "-session-rps must be >= 0"},
		{"unknown_flag", []string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := parseServeConfig(c.args)
			if err == nil {
				t.Fatalf("args %v parsed without error", c.args)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
