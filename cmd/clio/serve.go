package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clio/internal/fd"
	"clio/internal/serve"
)

// parseServeConfig parses the "clio serve" flag set into a server
// config and drain budget, validating flag combinations. Split from
// serveMain so tests can exercise flag handling without binding a
// socket.
func parseServeConfig(args []string) (serve.Config, time.Duration, error) {
	fs := flag.NewFlagSet("clio serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "listen address (\":0\" picks a free port)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	maxInFlight := fs.Int("max-inflight", 32, "bound on concurrently admitted requests (429 beyond)")
	cacheCap := fs.Int("cache", 64, "D(G) memo cache capacity in entries (0 disables)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	mine := fs.Bool("mine", false, "mine inclusion dependencies when sessions start")
	journalDir := fs.String("journal-dir", "", "crash-safe sessions: journal every session here and replay on boot (empty disables)")
	journalFsync := fs.Int("journal-fsync", 1, "fsync the journal after every Nth append")
	journalCompact := fs.Int("journal-compact", 64, "compact a session journal after every Nth op (negative disables)")
	snapshotEvery := fs.Int("snapshot-every", 0, "journal a full session-state snapshot every Nth op, bounding replay cost (0 disables; needs -journal-dir)")
	idleTTL := fs.Duration("idle-ttl", 0, "tombstone sessions idle longer than this into the archive (0 disables; needs -journal-dir)")
	archiveDir := fs.String("archive-dir", "", "directory for tombstoned session journals (default <journal-dir>/archive)")
	maxRows := fs.Int64("max-rows", 0, "per-request row budget; exceeding answers 413 (0 = unlimited)")
	maxBytes := fs.Int64("max-bytes", 0, "per-request approximate byte budget; exceeding answers 413 (0 = unlimited)")
	spillDir := fs.String("spill-dir", "", "spill directory: operators over the -max-rows/-max-bytes in-memory caps write temp partitions here instead of answering 413 (empty disables)")
	maxSpillBytes := fs.Int64("max-spill-bytes", 0, "bound on bytes concurrently resident in spill files; exceeding answers 413 (0 = unlimited; needs -spill-dir)")
	spillRecursion := fs.Int("spill-recursion-depth", 3, "how many times an oversized spill partition may be re-partitioned with a fresh hash salt before answering 413 (recursion_exhausted); 0 disables recursion")
	sessionMaxRows := fs.Int64("session-max-rows", 0, "per-session request row budget, layered under -max-rows (0 = unlimited)")
	sessionMaxBytes := fs.Int64("session-max-bytes", 0, "per-session request byte budget, layered under -max-bytes (0 = unlimited)")
	sessionRPS := fs.Float64("session-rps", 0, "per-session token-bucket rate limit in requests/second (0 disables)")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint sent with 429 responses")
	accessLog := fs.Bool("access-log", false, "emit a structured JSON access-log line per request to stderr")
	slowMS := fs.Int("slow-ms", 0, "log requests slower than this many milliseconds at warning level (0 disables)")
	traceBuffer := fs.Int("trace-buffer", 0, "retained span trees per list (recent and slowest) for /debug/traces (0 = default 32, negative disables)")
	if err := fs.Parse(args); err != nil {
		return serve.Config{}, 0, err
	}

	if *journalDir == "" {
		switch {
		case *idleTTL > 0:
			return serve.Config{}, 0, fmt.Errorf("clio serve: -idle-ttl requires -journal-dir (idle expiry archives the session journal)")
		case *snapshotEvery > 0:
			return serve.Config{}, 0, fmt.Errorf("clio serve: -snapshot-every requires -journal-dir (snapshots are journal records)")
		case *archiveDir != "":
			return serve.Config{}, 0, fmt.Errorf("clio serve: -archive-dir requires -journal-dir")
		}
	}
	if *idleTTL < 0 {
		return serve.Config{}, 0, fmt.Errorf("clio serve: -idle-ttl must be >= 0")
	}
	if *sessionRPS < 0 {
		return serve.Config{}, 0, fmt.Errorf("clio serve: -session-rps must be >= 0")
	}
	if *slowMS < 0 {
		return serve.Config{}, 0, fmt.Errorf("clio serve: -slow-ms must be >= 0")
	}
	if *spillDir == "" && *maxSpillBytes != 0 {
		return serve.Config{}, 0, fmt.Errorf("clio serve: -max-spill-bytes requires -spill-dir")
	}
	if *maxSpillBytes < 0 {
		return serve.Config{}, 0, fmt.Errorf("clio serve: -max-spill-bytes must be >= 0")
	}
	if *spillRecursion < 0 {
		return serve.Config{}, 0, fmt.Errorf("clio serve: -spill-recursion-depth must be >= 0")
	}
	// The budget encodes "disabled" as negative and "default" as zero;
	// the flag surface uses 0 for disabled and defaults to 3.
	recursionDepth := *spillRecursion
	if recursionDepth == 0 {
		recursionDepth = -1
	}
	if *spillDir != "" {
		if err := os.MkdirAll(*spillDir, 0o755); err != nil {
			return serve.Config{}, 0, fmt.Errorf("clio serve: -spill-dir: %w", err)
		}
	}

	cfg := serve.Config{
		Addr:                *addr,
		RequestTimeout:      *timeout,
		MaxInFlight:         *maxInFlight,
		CacheCapacity:       *cacheCap,
		MineINDs:            *mine,
		JournalDir:          *journalDir,
		JournalFsyncEvery:   *journalFsync,
		JournalCompactEvery: *journalCompact,
		SnapshotEvery:       *snapshotEvery,
		IdleTTL:             *idleTTL,
		ArchiveDir:          *archiveDir,
		Budget:              fd.Budget{MaxRows: *maxRows, MaxBytes: *maxBytes, SpillDir: *spillDir, MaxSpillBytes: *maxSpillBytes, SpillRecursionDepth: recursionDepth},
		SessionBudget:       fd.Budget{MaxRows: *sessionMaxRows, MaxBytes: *sessionMaxBytes},
		SessionRPS:          *sessionRPS,
		RetryAfter:          *retryAfter,
		SlowThreshold:       time.Duration(*slowMS) * time.Millisecond,
		TraceBufferSize:     *traceBuffer,
	}
	if *accessLog {
		cfg.AccessLog = os.Stderr
	}
	if *cacheCap == 0 {
		cfg.CacheCapacity = -1 // Config zero means "default"; -1 disables
	}
	return cfg, *drain, nil
}

// serveMain runs the long-lived HTTP/JSON mapping service ("clio
// serve"). It listens until SIGINT/SIGTERM, then shuts down
// gracefully, draining in-flight requests.
func serveMain(args []string) error {
	cfg, drain, err := parseServeConfig(args)
	if err != nil {
		return err
	}
	srv := serve.New(cfg)
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "clio serve listening on http://%s\n", srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintln(os.Stderr, "clio serve: shutting down")

	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return srv.Shutdown(drainCtx)
}
