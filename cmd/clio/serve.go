package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clio/internal/fd"
	"clio/internal/serve"
)

// serveMain runs the long-lived HTTP/JSON mapping service ("clio
// serve"). It listens until SIGINT/SIGTERM, then shuts down
// gracefully, draining in-flight requests.
func serveMain(args []string) error {
	fs := flag.NewFlagSet("clio serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "listen address (\":0\" picks a free port)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	maxInFlight := fs.Int("max-inflight", 32, "bound on concurrently admitted requests (429 beyond)")
	cacheCap := fs.Int("cache", 64, "D(G) memo cache capacity in entries (0 disables)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	mine := fs.Bool("mine", false, "mine inclusion dependencies when sessions start")
	journalDir := fs.String("journal-dir", "", "crash-safe sessions: journal every session here and replay on boot (empty disables)")
	journalFsync := fs.Int("journal-fsync", 1, "fsync the journal after every Nth append")
	journalCompact := fs.Int("journal-compact", 64, "compact a session journal after every Nth op (negative disables)")
	maxRows := fs.Int64("max-rows", 0, "per-request row budget; exceeding answers 413 (0 = unlimited)")
	maxBytes := fs.Int64("max-bytes", 0, "per-request approximate byte budget; exceeding answers 413 (0 = unlimited)")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint sent with 429 responses")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := serve.Config{
		Addr:                *addr,
		RequestTimeout:      *timeout,
		MaxInFlight:         *maxInFlight,
		CacheCapacity:       *cacheCap,
		MineINDs:            *mine,
		JournalDir:          *journalDir,
		JournalFsyncEvery:   *journalFsync,
		JournalCompactEvery: *journalCompact,
		Budget:              fd.Budget{MaxRows: *maxRows, MaxBytes: *maxBytes},
		RetryAfter:          *retryAfter,
	}
	if *cacheCap == 0 {
		cfg.CacheCapacity = -1 // Config zero means "default"; -1 disables
	}
	srv := serve.New(cfg)
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "clio serve listening on http://%s\n", srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintln(os.Stderr, "clio serve: shutting down")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	return srv.Shutdown(drainCtx)
}
