// Command clio is a scriptable command-line front end to the mapping
// tool: load a source database from CSV files (or the paper's built-in
// example), declare a target, and build a mapping interactively with
// correspondences, data walks, data chases, filters, and workspaces.
//
// Commands are read from stdin, one per line; lines starting with #
// are comments, so the REPL doubles as a script interpreter:
//
//	clio < session.clio
//
// Type "help" for the command list.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"clio/internal/core"
	"clio/internal/csvio"
	"clio/internal/discovery"
	"clio/internal/expr"
	"clio/internal/obs"
	"clio/internal/paperdb"
	"clio/internal/relation"
	"clio/internal/render"
	"clio/internal/schema"
	"clio/internal/sqlparse"
	"clio/internal/value"
	"clio/internal/workspace"
)

// traceFlag accepts --trace (text), --trace=text, or --trace=json.
type traceFlag struct{ mode string }

func (f *traceFlag) String() string { return f.mode }

func (f *traceFlag) Set(v string) error {
	switch v {
	case "", "true", "text":
		f.mode = "text"
	case "json":
		f.mode = "json"
	default:
		return fmt.Errorf("bad trace mode %q (want text or json)", v)
	}
	return nil
}

func (f *traceFlag) IsBoolFlag() bool { return true }

func main() {
	var trace traceFlag
	flag.Var(&trace, "trace", "print a span tree per command (text or json)")
	metricsPath := flag.String("metrics", "", "write a JSON metrics snapshot to `file` on exit")
	debugAddr := flag.String("debug-addr", "", "serve expvar and pprof on `addr` (e.g. localhost:6060)")
	flag.Parse()

	if trace.mode != "" {
		obs.SetEnabled(true)
		switch trace.mode {
		case "json":
			obs.SetExporter(&obs.JSONExporter{W: os.Stdout})
		default:
			obs.SetExporter(&obs.TextExporter{W: os.Stdout})
		}
	}
	if *metricsPath != "" {
		obs.SetEnabled(true)
	}
	if *debugAddr != "" {
		obs.SetEnabled(true)
		srv, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clio:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/vars\n", srv.Addr)
	}

	var err error
	if flag.Arg(0) == "serve" {
		err = serveMain(flag.Args()[1:])
	} else {
		err = run(os.Stdin, os.Stdout)
	}
	if *metricsPath != "" {
		if werr := writeMetrics(*metricsPath); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "clio:", err)
		os.Exit(1)
	}
}

// writeMetrics dumps the default registry snapshot as indented JSON.
func writeMetrics(path string) error {
	data, err := json.MarshalIndent(obs.SnapshotDefault(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

type session struct {
	out    io.Writer
	in     *relation.Instance
	target *schema.Relation
	tool   *workspace.Tool
	mine   bool
}

func run(r io.Reader, w io.Writer) error {
	s := &session{out: w}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := false
	if f, ok := r.(*os.File); ok {
		if st, err := f.Stat(); err == nil && st.Mode()&os.ModeCharDevice != 0 {
			interactive = true
		}
	}
	for {
		if interactive {
			fmt.Fprint(w, "clio> ")
		}
		if !sc.Scan() {
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := s.exec(line); err != nil {
			fmt.Fprintln(w, "error:", err)
		}
	}
}

func (s *session) exec(line string) error {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	// One root span per REPL command: with --trace, the exporter
	// prints the command's whole span tree as soon as it ends.
	ctx, span := obs.StartSpan(context.Background(), "cmd."+cmd)
	defer span.End()
	switch cmd {
	case "help":
		s.help()
		return nil
	case "load":
		return s.load(rest)
	case "paper":
		s.in = paperdb.Instance()
		s.target = paperdb.Kids()
		fmt.Fprintln(s.out, "loaded the paper's Figure 1 database; target Kids")
		return nil
	case "mine":
		s.mine = true
		if s.tool != nil {
			fmt.Fprintln(s.out, "note: re-run start to rebuild knowledge with mining")
		}
		fmt.Fprintln(s.out, "IND mining enabled for the next start")
		return nil
	case "target":
		return s.setTarget(rest)
	case "rels":
		return s.rels()
	case "show":
		return s.show(rest)
	case "schema":
		return s.schema()
	case "start":
		return s.start(ctx, rest)
	case "corr":
		return s.corr(ctx, rest)
	case "walk":
		return s.walk(ctx, rest)
	case "chase":
		return s.chase(ctx, rest)
	case "ws":
		return s.listWorkspaces()
	case "diff":
		return s.diff(ctx, rest)
	case "cov":
		return s.coverage(ctx)
	case "status":
		if err := s.needTool(); err != nil {
			return err
		}
		fmt.Fprint(s.out, s.tool.TargetStatus())
		return nil
	case "dot":
		return s.dot()
	case "save":
		return s.save(rest)
	case "report":
		return s.report(ctx, rest)
	case "focus":
		return s.focus(ctx, rest)
	case "sample":
		return s.sample(rest)
	case "loadmap":
		return s.loadMapping(ctx, rest)
	case "importsql":
		return s.importSQL(ctx, rest)
	case "suggest":
		return s.suggest()
	case "use":
		return s.use(rest)
	case "delete":
		return s.del(rest)
	case "filter":
		return s.filter(ctx, rest)
	case "ill":
		return s.illustrate()
	case "sql":
		return s.sql()
	case "explain":
		if err := s.needTool(); err != nil {
			return err
		}
		if w := s.tool.Active(); w != nil {
			fmt.Fprint(s.out, w.Mapping.Explain())
			return nil
		}
		return fmt.Errorf("no active workspace")
	case "eval":
		return s.eval(ctx)
	case "accept":
		return s.accept()
	case "oplog":
		if err := s.needTool(); err != nil {
			return err
		}
		fmt.Fprint(s.out, s.tool.OpLogString())
		return nil
	case "undo":
		if err := s.needTool(); err != nil {
			return err
		}
		if err := s.tool.Undo(); err != nil {
			return err
		}
		fmt.Fprintln(s.out, "undone")
		return s.listWorkspaces()
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func (s *session) help() {
	fmt.Fprint(s.out, `commands:
  paper                      load the paper's example database (target Kids)
  load <dir>                 load a directory of CSV files
  mine                       enable IND mining for the next start
  target Name(a, b, ...)     declare the target relation
  rels                       list source relations
  show <R> [n]               print relation R (first n rows)
  schema                     print the source schema and join knowledge
  start <name>               open a workspace for a new mapping
  corr <expr> -> <T.attr>    add a value correspondence (walks if needed)
  walk <node> <relation>     data walk from a graph node to a relation
  chase <R.attr> <value>     data chase on a value of a graph column
  ws                         list workspaces (* marks active)
  diff <id1> <id2>           compare two workspaces with examples
  cov                        coverage-category summary of the active mapping
  status                     which target attributes are mapped so far
  dot                        active query graph in Graphviz dot syntax
  save <file>                save the active mapping as JSON
  report <file.html>         write an HTML report of the active workspace
  focus <node> <attr> <val>  show all examples involving matching tuples
  sample <n>                 switch to a sampled instance (n rows/relation)
  loadmap <file>             load a mapping JSON into a new workspace
  importsql <file>           import a SQL view definition as a mapping
  suggest                    rank likely correspondences by name match
  use <id>                   activate a workspace
  delete <id>                delete a workspace
  filter source|target <p>   add a trimming predicate
  ill                        show the active illustration
  sql                        show the active mapping's SQL
  explain                    narrate the active mapping in plain English
  eval                       show the WYSIWYG target view
  accept                     confirm the active mapping
  oplog                      show the session's operation log
  undo                       back out the last operator
  quit                       exit
`)
}

func (s *session) load(dir string) error {
	if dir == "" {
		return fmt.Errorf("usage: load <dir>")
	}
	in, err := csvio.LoadDir(dir)
	if err != nil {
		return err
	}
	s.in = in
	fmt.Fprintf(s.out, "loaded %d relations (%d tuples)\n", len(in.Names()), in.TotalTuples())
	return nil
}

func (s *session) setTarget(spec string) error {
	open := strings.IndexByte(spec, '(')
	if open < 0 || !strings.HasSuffix(spec, ")") {
		return fmt.Errorf("usage: target Name(attr, attr, ...)")
	}
	name := strings.TrimSpace(spec[:open])
	var attrs []schema.Attribute
	for _, a := range strings.Split(spec[open+1:len(spec)-1], ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		attrs = append(attrs, schema.Attribute{Name: a})
	}
	if name == "" || len(attrs) == 0 {
		return fmt.Errorf("usage: target Name(attr, attr, ...)")
	}
	s.target = schema.NewRelation(name, attrs...)
	fmt.Fprintf(s.out, "target %s\n", s.target)
	return nil
}

func (s *session) needInstance() error {
	if s.in == nil {
		return fmt.Errorf("no source loaded (use load or paper)")
	}
	return nil
}

func (s *session) needTool() error {
	if s.tool == nil {
		return fmt.Errorf("no session started (use start)")
	}
	return nil
}

func (s *session) rels() error {
	if err := s.needInstance(); err != nil {
		return err
	}
	for _, n := range s.in.Names() {
		r := s.in.Relation(n)
		fmt.Fprintf(s.out, "%s: %d tuples, scheme %v\n", n, r.Len(), r.Scheme())
	}
	return nil
}

func (s *session) show(rest string) error {
	if err := s.needInstance(); err != nil {
		return err
	}
	name, nStr, _ := strings.Cut(rest, " ")
	r := s.in.Relation(name)
	if r == nil {
		return fmt.Errorf("no relation %q", name)
	}
	max := 0
	if nStr != "" {
		var err error
		if max, err = strconv.Atoi(strings.TrimSpace(nStr)); err != nil {
			return fmt.Errorf("bad row count %q", nStr)
		}
	}
	fmt.Fprint(s.out, render.Table(r, render.Options{Unqualify: true, MaxRows: max}))
	return nil
}

func (s *session) schema() error {
	if err := s.needInstance(); err != nil {
		return err
	}
	if s.in.Schema != nil {
		fmt.Fprint(s.out, s.in.Schema.String())
	}
	if s.tool != nil {
		fmt.Fprintln(s.out, "join knowledge:")
		for _, e := range s.tool.Knowledge.Edges() {
			fmt.Fprintf(s.out, "  %s\n", e)
		}
	}
	return nil
}

func (s *session) start(ctx context.Context, name string) error {
	if err := s.needInstance(); err != nil {
		return err
	}
	if s.target == nil {
		return fmt.Errorf("no target declared (use target)")
	}
	if name == "" {
		name = "mapping"
	}
	s.tool = workspace.New(ctx, s.in, s.target, s.mine)
	if err := s.tool.Start(name); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "workspace opened for mapping %q (knowledge: %d candidate joins)\n",
		name, len(s.tool.Knowledge.Edges()))
	return nil
}

func (s *session) corr(ctx context.Context, rest string) error {
	if err := s.needTool(); err != nil {
		return err
	}
	c, err := core.ParseCorrespondence(rest)
	if err != nil {
		return err
	}
	if err := s.tool.AddCorrespondence(ctx, c); err != nil {
		return err
	}
	return s.listWorkspaces()
}

func (s *session) walk(ctx context.Context, rest string) error {
	if err := s.needTool(); err != nil {
		return err
	}
	parts := strings.Fields(rest)
	if len(parts) != 2 {
		return fmt.Errorf("usage: walk <node> <relation>")
	}
	if err := s.tool.Walk(ctx, parts[0], parts[1]); err != nil {
		return err
	}
	return s.listWorkspaces()
}

func (s *session) chase(ctx context.Context, rest string) error {
	if err := s.needTool(); err != nil {
		return err
	}
	parts := strings.Fields(rest)
	if len(parts) != 2 {
		return fmt.Errorf("usage: chase <R.attr> <value>")
	}
	if err := s.tool.Chase(ctx, parts[0], value.Parse(parts[1])); err != nil {
		return err
	}
	return s.listWorkspaces()
}

func (s *session) listWorkspaces() error {
	if err := s.needTool(); err != nil {
		return err
	}
	act := s.tool.Active()
	for _, w := range s.tool.Workspaces() {
		mark := " "
		if w == act {
			mark = "*"
		}
		fmt.Fprintf(s.out, "%s [%d] %s — graph {%s}\n", mark, w.ID, w.Note,
			strings.Join(w.Mapping.Graph.Nodes(), ", "))
	}
	return nil
}

func (s *session) diff(ctx context.Context, rest string) error {
	if err := s.needTool(); err != nil {
		return err
	}
	parts := strings.Fields(rest)
	if len(parts) != 2 {
		return fmt.Errorf("usage: diff <id1> <id2>")
	}
	id1, err1 := strconv.Atoi(parts[0])
	id2, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return fmt.Errorf("usage: diff <id1> <id2>")
	}
	out, err := s.tool.Compare(ctx, id1, id2, 5)
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, out)
	return nil
}

func (s *session) coverage(ctx context.Context) error {
	if err := s.needTool(); err != nil {
		return err
	}
	out, err := s.tool.CoverageSummary(ctx)
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, out)
	return nil
}

func (s *session) report(ctx context.Context, path string) error {
	if err := s.needTool(); err != nil {
		return err
	}
	w := s.tool.Active()
	if w == nil {
		return fmt.Errorf("no active workspace")
	}
	if path == "" {
		return fmt.Errorf("usage: report <file.html>")
	}
	view, err := s.tool.TargetView(ctx)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = render.WriteHTML(f, render.HTMLReport{
		Title:        "Clio session: " + w.Mapping.Name,
		Mapping:      w.Mapping,
		Illustration: w.Illustration,
		TargetView:   view,
		Abbrev:       paperdb.Abbrev(),
	})
	cerr := f.Close()
	if err != nil {
		return err
	}
	if cerr != nil {
		return cerr
	}
	fmt.Fprintf(s.out, "wrote %s\n", path)
	return nil
}

func (s *session) focus(ctx context.Context, rest string) error {
	if err := s.needTool(); err != nil {
		return err
	}
	w := s.tool.Active()
	if w == nil {
		return fmt.Errorf("no active workspace")
	}
	parts := strings.Fields(rest)
	if len(parts) != 3 {
		return fmt.Errorf("usage: focus <node> <attr> <value>")
	}
	node, attr, val := parts[0], parts[1], value.Parse(parts[2])
	gn, ok := w.Mapping.Graph.Node(node)
	if !ok {
		return fmt.Errorf("no graph node %q", node)
	}
	rel, err := s.in.Aliased(gn.Base, gn.Name)
	if err != nil {
		return err
	}
	col := node + "." + attr
	if rel.Scheme().Index(col) < 0 {
		return fmt.Errorf("no column %s", col)
	}
	var focusTuples []relation.Tuple
	for _, tp := range rel.Tuples() {
		if tp.Get(col).Equal(val) {
			focusTuples = append(focusTuples, tp)
		}
	}
	if len(focusTuples) == 0 {
		return fmt.Errorf("no %s tuple with %s = %v", node, attr, val)
	}
	il, err := core.Focus(ctx, w.Mapping, s.in, node, focusTuples)
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, render.Illustration(il, paperdb.Abbrev()))
	return nil
}

func (s *session) sample(rest string) error {
	if err := s.needInstance(); err != nil {
		return err
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n <= 0 {
		return fmt.Errorf("usage: sample <n>")
	}
	s.in = relation.SampleInstance(s.in, n, 1)
	if s.tool != nil {
		fmt.Fprintln(s.out, "note: re-run start to rebuild over the sample")
	}
	fmt.Fprintf(s.out, "sampled to at most %d rows per relation (%d tuples total)\n", n, s.in.TotalTuples())
	return nil
}

func (s *session) dot() error {
	if err := s.needTool(); err != nil {
		return err
	}
	w := s.tool.Active()
	if w == nil {
		return fmt.Errorf("no active workspace")
	}
	fmt.Fprint(s.out, render.Dot(w.Mapping.Graph, w.Mapping.Name))
	return nil
}

func (s *session) save(path string) error {
	if err := s.needTool(); err != nil {
		return err
	}
	w := s.tool.Active()
	if w == nil {
		return fmt.Errorf("no active workspace")
	}
	if path == "" {
		return fmt.Errorf("usage: save <file>")
	}
	data, err := w.Mapping.MarshalJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "saved mapping %q to %s\n", w.Mapping.Name, path)
	return nil
}

func (s *session) loadMapping(ctx context.Context, path string) error {
	if err := s.needInstance(); err != nil {
		return err
	}
	if path == "" {
		return fmt.Errorf("usage: loadmap <file>")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	m, err := core.UnmarshalMapping(data)
	if err != nil {
		return err
	}
	if err := m.Validate(s.in); err != nil {
		return err
	}
	if s.tool == nil {
		s.target = m.Target
		s.tool = workspace.New(ctx, s.in, m.Target, s.mine)
	}
	if err := s.tool.Start(m.Name); err != nil {
		return err
	}
	// Replace the fresh empty mapping with the loaded one.
	s.tool.Active().Mapping = m
	fmt.Fprintf(s.out, "loaded mapping %q (%d nodes, %d correspondences)\n",
		m.Name, m.Graph.NodeCount(), len(m.Corrs))
	return nil
}

func (s *session) suggest() error {
	if err := s.needInstance(); err != nil {
		return err
	}
	if s.target == nil {
		return fmt.Errorf("no target declared (use target)")
	}
	suggestions := discovery.SuggestCorrespondences(s.in, s.target, 3)
	if len(suggestions) == 0 {
		fmt.Fprintln(s.out, "no likely correspondences found")
		return nil
	}
	for _, sg := range suggestions {
		fmt.Fprintf(s.out, "  %.2f  corr %s -> %s\n", sg.Score, sg.Source, sg.Target)
	}
	return nil
}

func (s *session) importSQL(ctx context.Context, path string) error {
	if err := s.needInstance(); err != nil {
		return err
	}
	if path == "" {
		return fmt.Errorf("usage: importsql <file>")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	m, err := sqlparse.ImportMapping(string(data), s.in, "")
	if err != nil {
		return err
	}
	if err := m.Validate(s.in); err != nil {
		return err
	}
	if s.tool == nil {
		s.target = m.Target
		s.tool = workspace.New(ctx, s.in, m.Target, s.mine)
	}
	if err := s.tool.Start(m.Name); err != nil {
		return err
	}
	s.tool.Active().Mapping = m
	fmt.Fprintf(s.out, "imported mapping %q from SQL (%d nodes)\n", m.Name, m.Graph.NodeCount())
	return nil
}

func (s *session) use(rest string) error {
	if err := s.needTool(); err != nil {
		return err
	}
	id, err := strconv.Atoi(rest)
	if err != nil {
		return fmt.Errorf("usage: use <id>")
	}
	return s.tool.Use(id)
}

func (s *session) del(rest string) error {
	if err := s.needTool(); err != nil {
		return err
	}
	id, err := strconv.Atoi(rest)
	if err != nil {
		return fmt.Errorf("usage: delete <id>")
	}
	return s.tool.Delete(id)
}

func (s *session) filter(ctx context.Context, rest string) error {
	if err := s.needTool(); err != nil {
		return err
	}
	kind, predStr, _ := strings.Cut(rest, " ")
	p, err := expr.Parse(strings.TrimSpace(predStr))
	if err != nil {
		return err
	}
	switch kind {
	case "source":
		return s.tool.AddSourceFilter(ctx, p)
	case "target":
		return s.tool.AddTargetFilter(ctx, p)
	default:
		return fmt.Errorf("usage: filter source|target <pred>")
	}
}

func (s *session) illustrate() error {
	if err := s.needTool(); err != nil {
		return err
	}
	w := s.tool.Active()
	if w == nil {
		return fmt.Errorf("no active workspace")
	}
	fmt.Fprint(s.out, render.Illustration(w.Illustration, paperdb.Abbrev()))
	return nil
}

func (s *session) sql() error {
	if err := s.needTool(); err != nil {
		return err
	}
	w := s.tool.Active()
	if w == nil {
		return fmt.Errorf("no active workspace")
	}
	fmt.Fprintln(s.out, w.Mapping.CanonicalSQL())
	if root, ok := w.Mapping.RequiredRoot(); ok {
		if view, err := w.Mapping.ViewSQL(root); err == nil {
			fmt.Fprintln(s.out, view)
		}
	}
	return nil
}

func (s *session) eval(ctx context.Context) error {
	if err := s.needTool(); err != nil {
		return err
	}
	view, err := s.tool.TargetView(ctx)
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, render.Table(view, render.Options{Unqualify: true}))
	return nil
}

func (s *session) accept() error {
	if err := s.needTool(); err != nil {
		return err
	}
	if err := s.tool.Confirm(); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "accepted (%d mapping(s) confirmed)\n", len(s.tool.Accepted()))
	return nil
}
