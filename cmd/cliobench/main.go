// Command cliobench runs the performance experiments E1–E8 described
// in EXPERIMENTS.md and prints one markdown table per experiment. The
// paper publishes no performance numbers, so these experiments
// characterize the algorithms the paper relies on and verify the
// expected shapes (who wins, how gaps scale).
//
// Usage:
//
//	cliobench            # run everything
//	cliobench -exp E1    # one experiment
//	cliobench -quick     # smaller sweeps (CI-sized)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"clio/internal/core"
	"clio/internal/datagen"
	"clio/internal/discovery"
	"clio/internal/expr"
	"clio/internal/fd"
	"clio/internal/relation"
	"clio/internal/value"
)

var quick = flag.Bool("quick", false, "smaller sweeps")

// out is the harness output sink; tests redirect it.
var out io.Writer = os.Stdout

func main() {
	exp := flag.String("exp", "", "experiment to run (E1..E8); empty runs all")
	flag.Parse()
	all := map[string]func(){
		"E1": e1, "E2": e2, "E3": e3, "E4": e4,
		"E5": e5, "E6": e6, "E7": e7, "E8": e8, "E9": e9,
	}
	if *exp != "" {
		f, ok := all[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "cliobench: unknown experiment %q\n", *exp)
			os.Exit(1)
		}
		f()
		return
	}
	for _, k := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"} {
		all[k]()
	}
}

// timeIt measures f's wall time, repeating until 100ms or 5 runs.
func timeIt(f func()) time.Duration {
	var total time.Duration
	runs := 0
	for total < 100*time.Millisecond && runs < 5 {
		start := time.Now()
		f()
		total += time.Since(start)
		runs++
	}
	return total / time.Duration(runs)
}

func header(id, title string, cols ...string) {
	fmt.Fprintf(out, "\n## %s — %s\n\n|", id, title)
	for _, c := range cols {
		fmt.Fprintf(out, " %s |", c)
	}
	fmt.Fprintf(out, "\n|")
	for range cols {
		fmt.Fprintf(out, "---|")
	}
	fmt.Fprintln(out)
}

func row(cells ...any) {
	fmt.Fprintf(out, "|")
	for _, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			fmt.Fprintf(out, " %s |", v.Round(time.Microsecond))
		default:
			fmt.Fprintf(out, " %v |", c)
		}
	}
	fmt.Fprintln(out)
}

// E1: full disjunction — subgraph enumeration vs outer-join sequence
// on chain query graphs of growing length.
func e1() {
	lengths := []int{2, 3, 4, 5, 6, 8, 10}
	rows := 200
	if *quick {
		lengths = []int{2, 3, 4, 5}
		rows = 50
	}
	header("E1", "full disjunction: SubgraphJoin vs OuterJoinTree (chain, rows="+itoa(rows)+")",
		"chain length", "subgraphs", "|D(G)|", "SubgraphJoin", "OuterJoinTree", "speedup")
	for _, n := range lengths {
		c := datagen.Chain(datagen.ChainSpec{Relations: n, Rows: rows, KeySpace: rows / 2, MatchProb: 0.85, Seed: 42})
		subs := len(c.Graph.ConnectedSubsets())
		var dg *relation.Relation
		tSub := timeIt(func() { dg, _ = fd.FullDisjunction(c.Graph, c.Instance) })
		tOJ := timeIt(func() { _, _ = fd.FullDisjunctionOuterJoin(c.Graph, c.Instance) })
		row(n, subs, dg.Len(), tSub, tOJ, ratio(tSub, tOJ))
	}
}

// E2: subsumption removal — naive pairwise vs mask-partitioned.
func e2() {
	sizes := []int{200, 400, 800, 1600, 3200}
	if *quick {
		sizes = []int{100, 200, 400}
	}
	header("E2", "subsumption removal: naive O(n²) vs mask-partitioned",
		"tuples", "survivors", "naive", "partitioned", "speedup")
	for _, n := range sizes {
		r := nullRichRelation(n, 6, 3)
		var out *relation.Relation
		tNaive := timeIt(func() { out = relation.RemoveSubsumedNaive(r.Distinct()) })
		tFast := timeIt(func() { out = relation.RemoveSubsumed(r) })
		row(n, out.Len(), tNaive, tFast, ratio(tNaive, tFast))
	}
}

func nullRichRelation(rows, arity, domain int) *relation.Relation {
	names := make([]string, arity)
	for i := range names {
		names[i] = fmt.Sprintf("R.a%d", i)
	}
	s := relation.NewScheme(names...)
	r := relation.New("R", s)
	seed := uint64(12345)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % n
	}
	for i := 0; i < rows; i++ {
		vals := make([]value.Value, arity)
		for j := range vals {
			if next(3) == 0 {
				vals[j] = value.Null
			} else {
				vals[j] = value.Int(int64(next(domain)))
			}
		}
		r.AddValues(vals...)
	}
	return r
}

// E3: sufficient illustration selection over growing D(G).
func e3() {
	sizes := []int{100, 200, 400, 800}
	if *quick {
		sizes = []int{50, 100}
	}
	header("E3", "sufficient illustration: greedy cover over D(G) (chain of 4)",
		"rows/relation", "|D(G)|", "examples chosen", "time")
	for _, n := range sizes {
		c := datagen.Chain(datagen.ChainSpec{Relations: 4, Rows: n, KeySpace: n / 2, MatchProb: 0.8, Seed: 7})
		c.Mapping.TargetFilters = []expr.Expr{expr.MustParse("T.vR0 IS NOT NULL")}
		dg, err := fd.Compute(c.Graph, c.Instance)
		if err != nil {
			panic(err)
		}
		var il core.Illustration
		t := timeIt(func() {
			full, err := core.ExamplesOn(c.Mapping, c.Instance, dg)
			if err != nil {
				panic(err)
			}
			il = core.SelectSufficient(c.Mapping, full)
		})
		row(n, dg.Len(), len(il.Examples), t)
	}
}

// E4: walk enumeration over synthetic knowledge graphs.
func e4() {
	type cfg struct{ rels, epn, maxLen int }
	cfgs := []cfg{{10, 3, 2}, {10, 3, 3}, {10, 3, 4}, {20, 3, 3}, {40, 3, 3}, {20, 5, 3}}
	if *quick {
		cfgs = []cfg{{10, 3, 2}, {10, 3, 3}, {20, 3, 3}}
	}
	header("E4", "data walk: path enumeration in the join knowledge graph",
		"relations", "edges/node", "max path len", "paths found", "time")
	for _, c := range cfgs {
		k := datagen.Knowledge(datagen.KnowledgeSpec{Relations: c.rels, EdgesPerNode: c.epn, Seed: 9})
		var n int
		t := timeIt(func() { n = len(k.Paths("R0", fmt.Sprintf("R%d", c.rels-1), c.maxLen)) })
		row(c.rels, c.epn, c.maxLen, n, t)
	}
}

// E5: data chase lookup — inverted index vs full scan.
func e5() {
	sizes := []int{1000, 10000, 100000}
	if *quick {
		sizes = []int{1000, 10000}
	}
	header("E5", "data chase: inverted value index vs full scan",
		"total cells", "index build", "indexed probe", "scan probe", "probe speedup")
	for _, n := range sizes {
		rows := n / (4 * 5)
		in := datagen.WideInstance(4, 5, rows, rows/2+1, 3)
		var ix *discovery.ValueIndex
		tBuild := timeIt(func() { ix = discovery.BuildValueIndex(in) })
		v := value.Int(7)
		tProbe := timeIt(func() {
			for i := 0; i < 1000; i++ {
				ix.Occurrences(v)
			}
		}) / 1000
		tScan := timeIt(func() { discovery.OccurrencesScan(in, v) })
		row(n, tBuild, tProbe, tScan, ratio(tScan, tProbe))
	}
}

// E6: mapping evaluation over D(G) vs the left-outer-join view.
func e6() {
	sizes := []int{100, 200, 400, 800}
	if *quick {
		sizes = []int{50, 100}
	}
	header("E6", "mapping evaluation: D(G) pipeline vs LEFT JOIN view (chain of 4, root required)",
		"rows/relation", "result rows", "via D(G)", "via LEFT JOINs", "ratio")
	for _, n := range sizes {
		c := datagen.Chain(datagen.ChainSpec{Relations: 4, Rows: n, KeySpace: n / 2, MatchProb: 0.8, Seed: 11})
		c.Mapping.SourceFilters = []expr.Expr{expr.MustParse("R0.k IS NOT NULL")}
		var res *relation.Relation
		tDG := timeIt(func() { res, _ = c.Mapping.Evaluate(c.Instance) })
		tLJ := timeIt(func() { _, _ = c.Mapping.EvaluateViaLeftJoins("R0", c.Instance) })
		row(n, res.Len(), tDG, tLJ, ratio(tDG, tLJ))
	}
}

// E7: continuous evolution vs recomputing the illustration.
func e7() {
	sizes := []int{100, 200, 400, 800, 1600}
	if *quick {
		sizes = []int{50, 100}
	}
	header("E7", "evolution after a walk: incremental D(G) maintenance and end-to-end illustration evolution",
		"rows/relation", "ExtendLeaf", "recompute D(G')", "D(G) speedup", "EvolveFrom", "fresh illustr.", "continuity")
	for _, n := range sizes {
		full := datagen.Chain(datagen.ChainSpec{Relations: 4, Rows: n, KeySpace: n / 2, MatchProb: 0.8, Seed: 13})
		old := full.Mapping.Clone()
		old.Graph = full.Graph.Induced(full.Graph.Nodes()[:3])
		old.Corrs = old.Corrs[:3]
		oldDG, err := fd.Compute(old.Graph, full.Instance)
		if err != nil {
			panic(err)
		}
		oldIll, err := core.SufficientIllustration(old, full.Instance)
		if err != nil {
			panic(err)
		}
		tExt := timeIt(func() { _, _ = fd.ExtendLeaf(oldDG, old.Graph, full.Graph, full.Instance) })
		tCmp := timeIt(func() { _, _ = fd.Compute(full.Graph, full.Instance) })
		var ev core.Evolved
		tEv := timeIt(func() { ev, _ = core.EvolveFrom(oldIll, oldDG, full.Mapping, full.Instance) })
		tRe := timeIt(func() { _, _ = core.SufficientIllustration(full.Mapping, full.Instance) })
		row(n, tExt, tCmp, ratio(tCmp, tExt), tEv, tRe, fmt.Sprintf("%.2f", ev.ContinuityRatio()))
	}
}

// E8: discovery — IND mining and FK proposal over growing instances.
func e8() {
	type cfg struct{ rels, cols, rows int }
	cfgs := []cfg{{4, 4, 500}, {8, 4, 500}, {8, 8, 500}, {8, 8, 2000}}
	if *quick {
		cfgs = []cfg{{4, 4, 200}, {8, 4, 200}}
	}
	header("E8", "knowledge discovery: IND mining over schema width and rows",
		"relations", "cols", "rows", "INDs", "mine time")
	for _, c := range cfgs {
		in := datagen.WideInstance(c.rels, c.cols, c.rows, c.rows/4+1, 5)
		var n int
		t := timeIt(func() { n = len(discovery.DiscoverINDs(in, 0.95)) })
		row(c.rels, c.cols, c.rows, n, t)
	}
}

// E9: a whole mapping session — growing a chain mapping one walk at a
// time. Cached incremental D(G) (what workspaces do) vs recomputing
// D(G) at every step.
func e9() {
	type cfg struct{ rels, rows int }
	cfgs := []cfg{{4, 200}, {5, 200}, {6, 200}, {6, 400}}
	if *quick {
		cfgs = []cfg{{4, 50}, {5, 50}}
	}
	header("E9", "session cost: growing a mapping one walk at a time (cached incremental D(G) vs per-step recompute)",
		"relations", "rows", "incremental session", "recompute session", "speedup")
	for _, c := range cfgs {
		full := datagen.Chain(datagen.ChainSpec{Relations: c.rels, Rows: c.rows, KeySpace: c.rows / 2, MatchProb: 0.85, Seed: 21})
		nodes := full.Graph.Nodes()
		tInc := timeIt(func() {
			cur := full.Graph.Induced(nodes[:1])
			dg, err := fd.Compute(cur, full.Instance)
			if err != nil {
				panic(err)
			}
			for i := 2; i <= c.rels; i++ {
				next := full.Graph.Induced(nodes[:i])
				dg, err = fd.ExtendLeaf(dg, cur, next, full.Instance)
				if err != nil {
					panic(err)
				}
				cur = next
			}
		})
		tRe := timeIt(func() {
			for i := 1; i <= c.rels; i++ {
				if _, err := fd.Compute(full.Graph.Induced(nodes[:i]), full.Instance); err != nil {
					panic(err)
				}
			}
		})
		row(c.rels, c.rows, tInc, tRe, ratio(tRe, tInc))
	}
}

func ratio(a, b time.Duration) string {
	if b == 0 {
		return "∞"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
