// Command cliobench runs the performance experiments E1–E8 described
// in EXPERIMENTS.md and prints one markdown table per experiment. The
// paper publishes no performance numbers, so these experiments
// characterize the algorithms the paper relies on and verify the
// expected shapes (who wins, how gaps scale).
//
// Usage:
//
//	cliobench              # run everything
//	cliobench -exp E1      # one experiment
//	cliobench -quick       # smaller sweeps (CI-sized)
//	cliobench -json f.json # also write stats + metric snapshots as JSON
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"clio/internal/algebra"
	"clio/internal/core"
	"clio/internal/datagen"
	"clio/internal/discovery"
	"clio/internal/expr"
	"clio/internal/fd"
	"clio/internal/obs"
	"clio/internal/paperdb"
	"clio/internal/relation"
	"clio/internal/value"
)

var (
	quick    = flag.Bool("quick", false, "smaller sweeps")
	once     = flag.Bool("once", false, "run each measured phase exactly once (smoke mode)")
	jsonPath = flag.String("json", "", "write per-experiment stats and engine metric snapshots to `file`")
	diffPath = flag.String("diff", "", "compare this run's medians against baseline `file` and fail on >25% regression (structural check only under -quick/-once)")
)

// out is the harness output sink; tests redirect it.
var out io.Writer = os.Stdout

// ctx is the root context for all measured engine calls.
var ctx = context.Background()

func main() {
	exp := flag.String("exp", "", "experiment to run (E1..E9); empty runs all")
	flag.Parse()
	if *jsonPath != "" {
		// Collect engine counters/histograms per experiment, and retain
		// span trees so each stats record can name its slowest run.
		obs.SetEnabled(true)
		obs.SetExporter(obs.NewTraceBuffer(16, obs.CurrentExporter()))
	}
	if *diffPath != "" && *exp == "" {
		// The committed baseline covers the core experiment; diffing a
		// full sweep would compare mostly-unbaselined cells.
		*exp = "E10"
	}
	all := map[string]func(){
		"E1": e1, "E2": e2, "E3": e3, "E4": e4,
		"E5": e5, "E6": e6, "E7": e7, "E8": e8, "E9": e9,
		"E10": e10,
	}
	if *exp != "" {
		f, ok := all[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "cliobench: unknown experiment %q\n", *exp)
			os.Exit(1)
		}
		f()
	} else {
		for _, k := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"} {
			all[k]()
		}
	}
	if err := writeJSON(); err != nil {
		fmt.Fprintln(os.Stderr, "cliobench:", err)
		os.Exit(1)
	}
	if *diffPath != "" {
		if err := runDiff(*diffPath, !*quick && !*once); err != nil {
			fmt.Fprintln(os.Stderr, "cliobench:", err)
			os.Exit(1)
		}
	}
}

// stats summarizes repeated timings of one measured phase.
type stats struct {
	Min          time.Duration `json:"min_ns"`
	Median       time.Duration `json:"median_ns"`
	P50          time.Duration `json:"p50_ns"`
	P95          time.Duration `json:"p95_ns"`
	P99          time.Duration `json:"p99_ns"`
	Runs         int           `json:"runs"`
	SlowestTrace string        `json:"slowest_trace,omitempty"`
}

// String renders the median with the min–p95 spread.
func (s stats) String() string {
	return fmt.Sprintf("%s [%s–%s]",
		s.Median.Round(time.Microsecond), s.Min.Round(time.Microsecond), s.P95.Round(time.Microsecond))
}

// timedRun times one run of f. With instrumentation on (-json), the
// run executes under its own root span stamped with a fresh trace ID,
// so each sample's span tree lands in the retained-trace buffer and
// stats can name the slowest run's trace.
func timedRun(f func()) (time.Duration, string) {
	if !obs.Enabled() {
		start := time.Now()
		f()
		return time.Since(start), ""
	}
	id := obs.NewTraceID()
	saved := ctx
	rctx, span := obs.StartSpan(obs.WithTraceID(saved, id), "bench.run")
	span.SetStr("trace_id", id)
	ctx = rctx // experiments close over the package ctx
	start := time.Now()
	f()
	d := time.Since(start)
	ctx = saved
	span.End()
	return d, id
}

// measure times f repeatedly (until ~100ms of total work, at least 3
// and at most 9 runs) and reports min/p50/p95/p99 over the samples.
// In -once mode (CI smoke) each phase runs exactly one iteration.
func measure(f func()) stats {
	if *once {
		d, id := timedRun(f)
		return stats{Min: d, Median: d, P50: d, P95: d, P99: d, Runs: 1, SlowestTrace: id}
	}
	type sample struct {
		d     time.Duration
		trace string
	}
	var samples []sample
	var total time.Duration
	for (total < 100*time.Millisecond && len(samples) < 9) || len(samples) < 3 {
		d, id := timedRun(f)
		samples = append(samples, sample{d, id})
		total += d
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].d < samples[j].d })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(samples)-1))
		return samples[i].d
	}
	return stats{
		Min:          samples[0].d,
		Median:       q(0.5),
		P50:          q(0.5),
		P95:          q(0.95),
		P99:          q(0.99),
		Runs:         len(samples),
		SlowestTrace: samples[len(samples)-1].trace,
	}
}

// expDoc is one experiment's JSON document: the rendered table, the
// raw timing quantiles behind every measured cell, and the engine
// metrics the experiment's phases incremented.
type expDoc struct {
	ID      string       `json:"id"`
	Title   string       `json:"title"`
	Columns []string     `json:"columns"`
	Rows    [][]string   `json:"rows"`
	Stats   []statEntry  `json:"stats,omitempty"`
	Metrics obs.Snapshot `json:"metrics"`
}

// statEntry is one measured cell's full quantile record, keyed by its
// table position so consumers can join it back to the rendered row.
type statEntry struct {
	Row string `json:"row"` // first cell of the table row
	Col string `json:"col"` // column header
	stats
}

var (
	docs   []expDoc
	curDoc *expDoc
)

// finishDoc snapshots the metrics accumulated since the experiment's
// header and closes its document.
func finishDoc() {
	if curDoc == nil {
		return
	}
	curDoc.Metrics = obs.SnapshotDefault()
	docs = append(docs, *curDoc)
	curDoc = nil
}

func writeJSON() error {
	finishDoc()
	if *jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(docs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
}

func header(id, title string, cols ...string) {
	finishDoc()
	if *jsonPath != "" || *diffPath != "" {
		// Metrics in each document cover exactly one experiment (the
		// diff gate also needs the per-cell stats collected into docs).
		obs.ResetDefault()
		curDoc = &expDoc{ID: id, Title: title, Columns: cols}
	}
	fmt.Fprintf(out, "\n## %s — %s\n\n|", id, title)
	for _, c := range cols {
		fmt.Fprintf(out, " %s |", c)
	}
	fmt.Fprintf(out, "\n|")
	for range cols {
		fmt.Fprintf(out, "---|")
	}
	fmt.Fprintln(out)
}

func cell(c any) string {
	switch v := c.(type) {
	case time.Duration:
		return v.Round(time.Microsecond).String()
	default:
		return fmt.Sprintf("%v", c)
	}
}

func row(cells ...any) {
	rendered := make([]string, len(cells))
	for i, c := range cells {
		rendered[i] = cell(c)
	}
	if curDoc != nil {
		curDoc.Rows = append(curDoc.Rows, rendered)
		for i, c := range cells {
			if s, ok := c.(stats); ok {
				col := ""
				if i < len(curDoc.Columns) {
					col = curDoc.Columns[i]
				}
				curDoc.Stats = append(curDoc.Stats, statEntry{Row: rendered[0], Col: col, stats: s})
			}
		}
	}
	fmt.Fprintf(out, "|")
	for _, c := range rendered {
		fmt.Fprintf(out, " %s |", c)
	}
	fmt.Fprintln(out)
}

// E1: full disjunction — subgraph enumeration vs outer-join sequence
// on chain query graphs of growing length.
func e1() {
	lengths := []int{2, 3, 4, 5, 6, 8, 10}
	rows := 200
	if *quick {
		lengths = []int{2, 3, 4, 5}
		rows = 50
	}
	header("E1", "full disjunction: SubgraphJoin vs OuterJoinTree (chain, rows="+itoa(rows)+")",
		"chain length", "subgraphs", "|D(G)|", "SubgraphJoin", "OuterJoinTree", "speedup")
	for _, n := range lengths {
		c := datagen.Chain(datagen.ChainSpec{Relations: n, Rows: rows, KeySpace: rows / 2, MatchProb: 0.85, Seed: 42})
		subs := len(c.Graph.ConnectedSubsets())
		var dg *relation.Relation
		tSub := measure(func() { dg, _ = fd.FullDisjunction(ctx, c.Graph, c.Instance) })
		tOJ := measure(func() { _, _ = fd.FullDisjunctionOuterJoin(ctx, c.Graph, c.Instance) })
		row(n, subs, dg.Len(), tSub, tOJ, ratio(tSub.Median, tOJ.Median))
	}
}

// E2: subsumption removal — naive pairwise vs mask-partitioned.
func e2() {
	sizes := []int{200, 400, 800, 1600, 3200}
	if *quick {
		sizes = []int{100, 200, 400}
	}
	header("E2", "subsumption removal: naive O(n²) vs mask-partitioned",
		"tuples", "survivors", "naive", "partitioned", "speedup")
	for _, n := range sizes {
		r := nullRichRelation(n, 6, 3)
		var out *relation.Relation
		tNaive := measure(func() { out = relation.RemoveSubsumedNaive(r.Distinct()) })
		tFast := measure(func() { out = relation.RemoveSubsumed(r) })
		row(n, out.Len(), tNaive, tFast, ratio(tNaive.Median, tFast.Median))
	}
}

func nullRichRelation(rows, arity, domain int) *relation.Relation {
	names := make([]string, arity)
	for i := range names {
		names[i] = fmt.Sprintf("R.a%d", i)
	}
	s := relation.NewScheme(names...)
	r := relation.New("R", s)
	seed := uint64(12345)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % n
	}
	for i := 0; i < rows; i++ {
		vals := make([]value.Value, arity)
		for j := range vals {
			if next(3) == 0 {
				vals[j] = value.Null
			} else {
				vals[j] = value.Int(int64(next(domain)))
			}
		}
		r.AddValues(vals...)
	}
	return r
}

// E3: sufficient illustration selection over growing D(G).
func e3() {
	sizes := []int{100, 200, 400, 800}
	if *quick {
		sizes = []int{50, 100}
	}
	header("E3", "sufficient illustration: greedy cover over D(G) (chain of 4)",
		"rows/relation", "|D(G)|", "examples chosen", "time")
	for _, n := range sizes {
		c := datagen.Chain(datagen.ChainSpec{Relations: 4, Rows: n, KeySpace: n / 2, MatchProb: 0.8, Seed: 7})
		c.Mapping.TargetFilters = []expr.Expr{expr.MustParse("T.vR0 IS NOT NULL")}
		dg, err := fd.Compute(ctx, c.Graph, c.Instance)
		if err != nil {
			panic(err)
		}
		var il core.Illustration
		t := measure(func() {
			full, err := core.ExamplesOn(ctx, c.Mapping, c.Instance, dg)
			if err != nil {
				panic(err)
			}
			il = core.SelectSufficient(ctx, c.Mapping, full)
		})
		row(n, dg.Len(), len(il.Examples), t)
	}
}

// E4: walk enumeration over synthetic knowledge graphs.
func e4() {
	type cfg struct{ rels, epn, maxLen int }
	cfgs := []cfg{{10, 3, 2}, {10, 3, 3}, {10, 3, 4}, {20, 3, 3}, {40, 3, 3}, {20, 5, 3}}
	if *quick {
		cfgs = []cfg{{10, 3, 2}, {10, 3, 3}, {20, 3, 3}}
	}
	header("E4", "data walk: path enumeration in the join knowledge graph",
		"relations", "edges/node", "max path len", "paths found", "time")
	for _, c := range cfgs {
		k := datagen.Knowledge(datagen.KnowledgeSpec{Relations: c.rels, EdgesPerNode: c.epn, Seed: 9})
		var n int
		t := measure(func() { n = len(k.Paths("R0", fmt.Sprintf("R%d", c.rels-1), c.maxLen)) })
		row(c.rels, c.epn, c.maxLen, n, t)
	}
}

// E5: data chase lookup — inverted index vs full scan.
func e5() {
	sizes := []int{1000, 10000, 100000}
	if *quick {
		sizes = []int{1000, 10000}
	}
	header("E5", "data chase: inverted value index vs full scan",
		"total cells", "index build", "indexed probe", "scan probe", "probe speedup")
	for _, n := range sizes {
		rows := n / (4 * 5)
		in := datagen.WideInstance(4, 5, rows, rows/2+1, 3)
		var ix *discovery.ValueIndex
		tBuild := measure(func() { ix = discovery.BuildValueIndex(ctx, in) })
		v := value.Int(7)
		tProbe := measure(func() {
			for i := 0; i < 1000; i++ {
				ix.Occurrences(v)
			}
		}).div(1000)
		tScan := measure(func() { discovery.OccurrencesScan(in, v) })
		row(n, tBuild, tProbe, tScan, ratio(tScan.Median, tProbe.Median))
	}
}

// E6: mapping evaluation over D(G) vs the left-outer-join view.
func e6() {
	sizes := []int{100, 200, 400, 800}
	if *quick {
		sizes = []int{50, 100}
	}
	header("E6", "mapping evaluation: D(G) pipeline vs LEFT JOIN view (chain of 4, root required)",
		"rows/relation", "result rows", "via D(G)", "via LEFT JOINs", "ratio")
	for _, n := range sizes {
		c := datagen.Chain(datagen.ChainSpec{Relations: 4, Rows: n, KeySpace: n / 2, MatchProb: 0.8, Seed: 11})
		c.Mapping.SourceFilters = []expr.Expr{expr.MustParse("R0.k IS NOT NULL")}
		var res *relation.Relation
		tDG := measure(func() { res, _ = c.Mapping.Evaluate(c.Instance) })
		tLJ := measure(func() { _, _ = c.Mapping.EvaluateViaLeftJoins("R0", c.Instance) })
		row(n, res.Len(), tDG, tLJ, ratio(tDG.Median, tLJ.Median))
	}
}

// E7: continuous evolution vs recomputing the illustration.
func e7() {
	sizes := []int{100, 200, 400, 800, 1600}
	if *quick {
		sizes = []int{50, 100}
	}
	header("E7", "evolution after a walk: incremental D(G) maintenance and end-to-end illustration evolution",
		"rows/relation", "ExtendLeaf", "recompute D(G')", "D(G) speedup", "EvolveFrom", "fresh illustr.", "continuity")
	for _, n := range sizes {
		full := datagen.Chain(datagen.ChainSpec{Relations: 4, Rows: n, KeySpace: n / 2, MatchProb: 0.8, Seed: 13})
		old := full.Mapping.Clone()
		old.Graph = full.Graph.Induced(full.Graph.Nodes()[:3])
		old.Corrs = old.Corrs[:3]
		oldDG, err := fd.Compute(ctx, old.Graph, full.Instance)
		if err != nil {
			panic(err)
		}
		oldIll, err := core.SufficientIllustration(ctx, old, full.Instance)
		if err != nil {
			panic(err)
		}
		tExt := measure(func() { _, _ = fd.ExtendLeaf(ctx, oldDG, old.Graph, full.Graph, full.Instance) })
		tCmp := measure(func() { _, _ = fd.Compute(ctx, full.Graph, full.Instance) })
		var ev core.Evolved
		tEv := measure(func() { ev, _ = core.EvolveFrom(ctx, oldIll, oldDG, full.Mapping, full.Instance) })
		tRe := measure(func() { _, _ = core.SufficientIllustration(ctx, full.Mapping, full.Instance) })
		row(n, tExt, tCmp, ratio(tCmp.Median, tExt.Median), tEv, tRe, fmt.Sprintf("%.2f", ev.ContinuityRatio()))
	}
}

// E8: discovery — IND mining and FK proposal over growing instances.
func e8() {
	type cfg struct{ rels, cols, rows int }
	cfgs := []cfg{{4, 4, 500}, {8, 4, 500}, {8, 8, 500}, {8, 8, 2000}}
	if *quick {
		cfgs = []cfg{{4, 4, 200}, {8, 4, 200}}
	}
	header("E8", "knowledge discovery: IND mining over schema width and rows",
		"relations", "cols", "rows", "INDs", "mine time")
	for _, c := range cfgs {
		in := datagen.WideInstance(c.rels, c.cols, c.rows, c.rows/4+1, 5)
		var n int
		t := measure(func() { n = len(discovery.DiscoverINDs(ctx, in, 0.95)) })
		row(c.rels, c.cols, c.rows, n, t)
	}
}

// E9: a whole mapping session — growing a chain mapping one walk at a
// time. Cached incremental D(G) (what workspaces do) vs recomputing
// D(G) at every step.
func e9() {
	type cfg struct{ rels, rows int }
	cfgs := []cfg{{4, 200}, {5, 200}, {6, 200}, {6, 400}}
	if *quick {
		cfgs = []cfg{{4, 50}, {5, 50}}
	}
	header("E9", "session cost: growing a mapping one walk at a time (cached incremental D(G) vs per-step recompute)",
		"relations", "rows", "incremental session", "recompute session", "speedup")
	for _, c := range cfgs {
		full := datagen.Chain(datagen.ChainSpec{Relations: c.rels, Rows: c.rows, KeySpace: c.rows / 2, MatchProb: 0.85, Seed: 21})
		nodes := full.Graph.Nodes()
		tInc := measure(func() {
			cur := full.Graph.Induced(nodes[:1])
			dg, err := fd.Compute(ctx, cur, full.Instance)
			if err != nil {
				panic(err)
			}
			for i := 2; i <= c.rels; i++ {
				next := full.Graph.Induced(nodes[:i])
				dg, err = fd.ExtendLeaf(ctx, dg, cur, next, full.Instance)
				if err != nil {
					panic(err)
				}
				cur = next
			}
		})
		tRe := measure(func() {
			for i := 1; i <= c.rels; i++ {
				if _, err := fd.Compute(ctx, full.Graph.Induced(nodes[:i]), full.Instance); err != nil {
					panic(err)
				}
			}
		})
		row(c.rels, c.rows, tInc, tRe, ratio(tRe.Median, tInc.Median))
	}
}

// E10: execution-core micro-benchmarks — the hot kernels under every
// endpoint: the Figure-8 D(G) (paper instance and a scaled chain),
// hash join, minimum union, and duplicate elimination. `make bench`
// runs exactly this experiment and writes BENCH_core.json, so core
// refactors can quote before/after numbers from one command.
func e10() {
	joinRows := 5000
	muRows := 2000
	chainRows := 400
	if *quick {
		joinRows, muRows, chainRows = 500, 300, 100
	}
	header("E10", "execution core: D(G), hash join, minimum union, distinct kernels",
		"workload", "in rows", "out rows", "time", "allocs/op")

	// Figure-8 D(G): the paper's canonical full disjunction (Children,
	// Parents, PhoneDir over the Figure 1 instance).
	fig := paperdb.Figure6G()
	fin := paperdb.Instance()
	var dg *relation.Relation
	t, allocs := measureAllocs(func() { dg, _ = fd.Compute(ctx, fig.Graph, fin) })
	row("figure8 D(G)", fin.TotalTuples(), dg.Len(), t, allocs)

	// Scaled D(G): chain of 4 relations.
	c := datagen.Chain(datagen.ChainSpec{Relations: 4, Rows: chainRows, KeySpace: chainRows / 2, MatchProb: 0.85, Seed: 42})
	t, allocs = measureAllocs(func() { dg, _ = fd.Compute(ctx, c.Graph, c.Instance) })
	row("chain-4 D(G)", chainRows*4, dg.Len(), t, allocs)

	// Edit loop: one net-zero row edit (insert + delete on R0) against
	// the same chain-4 instance, with the view refreshed after every
	// mutation. Delta maintenance pays O(delta) per refresh; the
	// recompute loop rebuilds D(G) from scratch each time. The speedup
	// row is the headline number for continuous maintenance.
	mat, err := fd.NewMaterialized(ctx, c.Graph, c.Instance)
	if err != nil {
		panic(err)
	}
	r0 := c.Instance.Relation("R0")
	editRow := []value.Value{value.Int(7), value.Int(999_999)}
	tDelta, allocsDelta := measureAllocs(func() {
		r0.AddValues(editRow...)
		tp := r0.At(r0.Len() - 1)
		var mode string
		var err error
		if _, mat, mode, err = fd.MaintainRows(ctx, mat, c.Graph, c.Instance, "R0", tp, false); err != nil {
			panic(err)
		} else if mode != "delta" {
			panic("edit-loop bench: insert maintained via " + mode)
		}
		tp = r0.RemoveAt(r0.Len() - 1)
		if _, mat, mode, err = fd.MaintainRows(ctx, mat, c.Graph, c.Instance, "R0", tp, true); err != nil {
			panic(err)
		} else if mode != "delta" {
			panic("edit-loop bench: delete maintained via " + mode)
		}
	})
	row("chain-4 edit delta", chainRows*4, dg.Len(), tDelta, allocsDelta)
	tRecomp, allocsRecomp := measureAllocs(func() {
		r0.AddValues(editRow...)
		if _, err := fd.FullDisjunction(ctx, c.Graph, c.Instance); err != nil {
			panic(err)
		}
		r0.RemoveAt(r0.Len() - 1)
		if _, err := fd.FullDisjunction(ctx, c.Graph, c.Instance); err != nil {
			panic(err)
		}
	})
	row("chain-4 edit recompute", chainRows*4, dg.Len(), tRecomp, allocsRecomp)
	row("chain-4 edit speedup", "-", "-", ratio(tRecomp.Median, tDelta.Median), "-")

	// Hash join: equi-join of two synthetic relations.
	l, r := joinPair(joinRows)
	pred := expr.MustParse("L.k = R.k")
	var j *relation.Relation
	t, allocs = measureAllocs(func() { j = algebra.JoinRelations(algebra.InnerJoin, l, r, pred) })
	row("hash join", joinRows*2, j.Len(), t, allocs)

	// Grace-hash spill join: the same equi-join forced through temp-file
	// partitions by a resident cap far below the inputs (full size they
	// spill; -quick fits and stays in memory), measuring the degradation
	// cost of larger-than-memory joins against the in-memory row above.
	spillDir, err := os.MkdirTemp("", "cliobench-spill-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(spillDir)
	sctx := fd.WithBudget(ctx, fd.Budget{MaxBytes: 128 << 10, SpillDir: spillDir})
	spillJoin := algebra.Join{Kind: algebra.InnerJoin, On: pred,
		L: algebra.Select{Child: algebra.Materialized{Label: "L", Rel: l}, Pred: expr.MustParse("TRUE")},
		R: algebra.Select{Child: algebra.Materialized{Label: "R", Rel: r}, Pred: expr.MustParse("TRUE")},
	}
	t, allocs = measureAllocs(func() {
		it, err := spillJoin.Open(sctx, nil)
		if err != nil {
			panic(err)
		}
		if j, err = algebra.Drain(it); err != nil {
			panic(err)
		}
	})
	row("spill join (128KB cap)", joinRows*2, j.Len(), t, allocs)

	// Skewed spill join: a Zipf-like key distribution (one hot key
	// holding ~1.5% of each side, the rest spread thin) under a cap
	// that single-level partitioning cannot satisfy — the hot key's
	// partition stays oversized until recursive re-partitioning splits
	// the tail away from it. Quotes the recursion + prefetch overhead
	// against the uniform spill row above.
	sl, sr2 := skewedJoinPair(joinRows)
	skewDir, err := os.MkdirTemp("", "cliobench-skew-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(skewDir)
	skctx := fd.WithBudget(ctx, fd.Budget{MaxBytes: 96 << 10, SpillDir: skewDir})
	skewJoin := algebra.Join{Kind: algebra.InnerJoin, On: pred,
		L: algebra.Select{Child: algebra.Materialized{Label: "L", Rel: sl}, Pred: expr.MustParse("TRUE")},
		R: algebra.Select{Child: algebra.Materialized{Label: "R", Rel: sr2}, Pred: expr.MustParse("TRUE")},
	}
	t, allocs = measureAllocs(func() {
		it, err := skewJoin.Open(skctx, nil)
		if err != nil {
			panic(err)
		}
		if j, err = algebra.Drain(it); err != nil {
			panic(err)
		}
	})
	row("skewed spill join (96KB cap)", joinRows*2, j.Len(), t, allocs)

	// Minimum union: subsumption removal over a null-rich relation.
	nr := nullRichRelation(muRows, 6, 3)
	var mu *relation.Relation
	t, allocs = measureAllocs(func() { mu = relation.RemoveSubsumed(nr) })
	row("minunion sweep", muRows, mu.Len(), t, allocs)

	// Distinct: duplicate elimination over the same null-rich data.
	var d *relation.Relation
	t, allocs = measureAllocs(func() { d = nr.Distinct() })
	row("distinct", muRows, d.Len(), t, allocs)
}

// skewedJoinPair builds L(k, v) and R(k, w) with one hot key (every
// 64th row) and a long thin tail, so grace-hash partitioning leaves
// one partition far above its fair share.
func skewedJoinPair(rows int) (*relation.Relation, *relation.Relation) {
	l := relation.New("L", relation.NewScheme("L.k", "L.v"))
	r := relation.New("R", relation.NewScheme("R.k", "R.w"))
	key := func(i int) int64 {
		if i%64 == 0 {
			return 0
		}
		return int64(i%1499 + 1)
	}
	for i := 0; i < rows; i++ {
		l.AddValues(value.Int(key(i)), value.String(fmt.Sprintf("lv%d", i)))
		r.AddValues(value.Int(key(i)), value.String(fmt.Sprintf("rw%d", i)))
	}
	return l, r
}

// joinPair builds two relations L(k, v) and R(k, w) whose keys overlap
// about half the time.
func joinPair(rows int) (*relation.Relation, *relation.Relation) {
	l := relation.New("L", relation.NewScheme("L.k", "L.v"))
	r := relation.New("R", relation.NewScheme("R.k", "R.w"))
	for i := 0; i < rows; i++ {
		l.AddValues(value.Int(int64(i)), value.String(fmt.Sprintf("lv%d", i)))
		r.AddValues(value.Int(int64(i/2*2)), value.String(fmt.Sprintf("rw%d", i)))
	}
	return l, r
}

// measureAllocs times f like measure and additionally reports the heap
// allocations of one representative run.
func measureAllocs(f func()) (stats, int64) {
	s := measure(f)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return s, int64(after.Mallocs - before.Mallocs)
}

// div scales every quantile down by n (for per-iteration stats of a
// batched measurement).
func (s stats) div(n int) stats {
	s.Min /= time.Duration(n)
	s.Median /= time.Duration(n)
	s.P50 /= time.Duration(n)
	s.P95 /= time.Duration(n)
	s.P99 /= time.Duration(n)
	return s
}

func ratio(a, b time.Duration) string {
	if b == 0 {
		return "∞"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
