package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExperimentsQuick runs every experiment in quick mode and checks
// each emits a well-formed markdown table.
func TestExperimentsQuick(t *testing.T) {
	*quick = true
	var b bytes.Buffer
	old := out
	out = &b
	defer func() { out = old }()
	for id, f := range map[string]func(){
		"E1": e1, "E2": e2, "E3": e3, "E4": e4,
		"E5": e5, "E6": e6, "E7": e7, "E8": e8, "E9": e9,
	} {
		b.Reset()
		f()
		s := b.String()
		if !strings.Contains(s, "## "+id) {
			t.Errorf("%s: header missing:\n%s", id, s)
		}
		if strings.Count(s, "\n|") < 3 {
			t.Errorf("%s: table too small:\n%s", id, s)
		}
	}
}

func TestRatio(t *testing.T) {
	if got := ratio(10, 0); got != "∞" {
		t.Errorf("ratio with zero divisor = %q", got)
	}
	if got := ratio(20, 10); got != "2.0x" {
		t.Errorf("ratio = %q", got)
	}
}
