package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"clio/internal/obs"
)

// TestExperimentsQuick runs every experiment in quick mode and checks
// each emits a well-formed markdown table.
func TestExperimentsQuick(t *testing.T) {
	*quick = true
	var b bytes.Buffer
	old := out
	out = &b
	defer func() { out = old }()
	for id, f := range map[string]func(){
		"E1": e1, "E2": e2, "E3": e3, "E4": e4,
		"E5": e5, "E6": e6, "E7": e7, "E8": e8, "E9": e9,
	} {
		b.Reset()
		f()
		s := b.String()
		if !strings.Contains(s, "## "+id) {
			t.Errorf("%s: header missing:\n%s", id, s)
		}
		if strings.Count(s, "\n|") < 3 {
			t.Errorf("%s: table too small:\n%s", id, s)
		}
	}
}

// TestMeasureQuantilesAndSlowestTrace: with instrumentation on (the
// -json path), every measurement reports the full quantile set and the
// trace ID of its slowest run, and that trace is retained.
func TestMeasureQuantilesAndSlowestTrace(t *testing.T) {
	obs.SetEnabled(true)
	buf := obs.NewTraceBuffer(16, nil)
	obs.SetExporter(buf)
	t.Cleanup(func() {
		obs.SetEnabled(false)
		obs.SetExporter(nil)
	})
	s := measure(func() { time.Sleep(time.Millisecond) })
	if s.P50 != s.Median || s.P95 < s.P50 || s.P99 < s.P95 {
		t.Errorf("quantiles out of order: %+v", s)
	}
	if s.SlowestTrace == "" {
		t.Fatalf("no slowest trace recorded: %+v", s)
	}
	tr := buf.Get(s.SlowestTrace)
	if tr == nil {
		t.Fatalf("slowest trace %s not retained", s.SlowestTrace)
	}
	if tr.Root.Name != "bench.run" {
		t.Errorf("retained root span = %s, want bench.run", tr.Root.Name)
	}
	// JSON surface: the quantile fields and trace must serialize.
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"p50_ns"`, `"p95_ns"`, `"p99_ns"`, `"slowest_trace"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("stats JSON missing %s: %s", want, data)
		}
	}
	// Untraced measurements (no -json) carry no trace ID.
	obs.SetEnabled(false)
	if s := measure(func() {}); s.SlowestTrace != "" {
		t.Errorf("untraced measure recorded a trace: %+v", s)
	}
}

func TestRatio(t *testing.T) {
	if got := ratio(10, 0); got != "∞" {
		t.Errorf("ratio with zero divisor = %q", got)
	}
	if got := ratio(20, 10); got != "2.0x" {
		t.Errorf("ratio = %q", got)
	}
}
