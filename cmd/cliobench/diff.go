package main

// Bench regression gate (`make bench-diff`): compare the run that just
// finished against a committed baseline BENCH_core.json, cell by cell,
// and fail on a >25% median regression in any timed cell. Cells join
// on (experiment id, row label, column header); labels are stable
// across sweep sizes, so the same join works in quick mode.
//
// In -quick/-once mode the sweep sizes differ from the committed
// full-size baseline, so timings are not comparable: the gate degrades
// to a structural check (every baseline cell must still exist in the
// fresh run — catching dropped or renamed workloads) and the timing
// columns print as informational only. `make check` runs that mode;
// `make bench-diff` runs the full-size enforcing one.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// diffThreshold is the enforced regression budget: a fresh median more
// than 25% above the baseline median fails the gate.
const diffThreshold = 0.25

// runDiff compares the in-memory docs of the completed run against the
// baseline file. enforce=false (quick mode) checks structure only.
func runDiff(baselinePath string, enforce bool) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench-diff: %w", err)
	}
	var base []expDoc
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench-diff: parse %s: %w", baselinePath, err)
	}

	// Index the fresh run's timed cells by (experiment, row, col).
	type key struct{ id, row, col string }
	fresh := map[key]stats{}
	ran := map[string]bool{}
	for _, d := range docs {
		ran[d.ID] = true
		for _, s := range d.Stats {
			fresh[key{d.ID, s.Row, s.Col}] = s.stats
		}
	}

	mode := "enforcing"
	if !enforce {
		mode = "structural (quick run vs full-size baseline; timings informational)"
	}
	fmt.Fprintf(out, "\n## bench-diff vs %s — %s\n\n", baselinePath, mode)
	fmt.Fprintf(out, "| cell | baseline | fresh | delta |\n|---|---|---|---|\n")

	var missing, regressed int
	for _, bd := range base {
		if !ran[bd.ID] {
			// Baseline covers experiments this invocation didn't run
			// (e.g. -exp E10 against a full sweep): skip, don't fail.
			continue
		}
		for _, bs := range bd.Stats {
			k := key{bd.ID, bs.Row, bs.Col}
			fs, ok := fresh[k]
			if !ok {
				missing++
				fmt.Fprintf(out, "| %s / %s | %s | MISSING | — |\n",
					bs.Row, bs.Col, bs.Median.Round(time.Microsecond))
				continue
			}
			delta := float64(fs.Median-bs.Median) / float64(bs.Median)
			mark := ""
			if enforce && delta > diffThreshold {
				regressed++
				mark = " **REGRESSION**"
			}
			fmt.Fprintf(out, "| %s / %s | %s | %s | %+.1f%%%s |\n",
				bs.Row, bs.Col,
				bs.Median.Round(time.Microsecond), fs.Median.Round(time.Microsecond),
				delta*100, mark)
			delete(fresh, k)
		}
	}
	// Cells the baseline has never seen are fine (new workloads land in
	// the next committed baseline) but worth surfacing.
	for k := range fresh {
		fmt.Fprintf(out, "| %s / %s | — | new cell | — |\n", k.row, k.col)
	}

	if missing > 0 {
		return fmt.Errorf("bench-diff: %d baseline cell(s) missing from the fresh run (workload dropped or renamed)", missing)
	}
	if regressed > 0 {
		return fmt.Errorf("bench-diff: %d cell(s) regressed more than %.0f%% vs %s", regressed, diffThreshold*100, baselinePath)
	}
	fmt.Fprintf(out, "\nbench-diff: ok\n")
	return nil
}
