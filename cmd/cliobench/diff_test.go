package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeBaseline marshals docs-shaped baseline content to a temp file.
func writeBaseline(t *testing.T, base []expDoc) string {
	t.Helper()
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func diffDoc(median time.Duration) expDoc {
	return expDoc{
		ID: "E10",
		Stats: []statEntry{
			{Row: "hash join", Col: "time", stats: stats{Median: median}},
		},
	}
}

func TestRunDiffPassAndRegression(t *testing.T) {
	var b bytes.Buffer
	old := out
	out = &b
	defer func() { out = old }()
	savedDocs := docs
	defer func() { docs = savedDocs }()

	// Fresh run at 1ms vs baseline 1ms: within threshold, passes.
	docs = []expDoc{diffDoc(time.Millisecond)}
	base := writeBaseline(t, []expDoc{diffDoc(time.Millisecond)})
	if err := runDiff(base, true); err != nil {
		t.Fatalf("identical medians failed the gate: %v", err)
	}

	// 24% slower: still inside the 25% budget.
	docs = []expDoc{diffDoc(1240 * time.Microsecond)}
	if err := runDiff(base, true); err != nil {
		t.Fatalf("24%% regression failed the gate: %v", err)
	}

	// 30% slower: fails in enforcing mode, passes in structural mode.
	docs = []expDoc{diffDoc(1300 * time.Microsecond)}
	b.Reset()
	err := runDiff(base, true)
	if err == nil {
		t.Fatal("30% regression passed the enforcing gate")
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("regression error = %v", err)
	}
	if !strings.Contains(b.String(), "REGRESSION") {
		t.Errorf("regressed cell not marked in output:\n%s", b.String())
	}
	if err := runDiff(base, false); err != nil {
		t.Fatalf("structural mode enforced timings: %v", err)
	}
}

func TestRunDiffMissingCellFails(t *testing.T) {
	var b bytes.Buffer
	old := out
	out = &b
	defer func() { out = old }()
	savedDocs := docs
	defer func() { docs = savedDocs }()

	// Baseline has a cell the fresh run lacks: fails even in
	// structural mode (a workload was dropped or renamed).
	base := writeBaseline(t, []expDoc{{
		ID: "E10",
		Stats: []statEntry{
			{Row: "hash join", Col: "time", stats: stats{Median: time.Millisecond}},
			{Row: "vanished workload", Col: "time", stats: stats{Median: time.Millisecond}},
		},
	}})
	docs = []expDoc{diffDoc(time.Millisecond)}
	if err := runDiff(base, false); err == nil {
		t.Fatal("missing baseline cell passed the structural gate")
	} else if !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing-cell error = %v", err)
	}

	// Baseline experiments the invocation didn't run are skipped.
	base = writeBaseline(t, []expDoc{
		diffDoc(time.Millisecond),
		{ID: "E3", Stats: []statEntry{{Row: "other", Col: "time", stats: stats{Median: time.Millisecond}}}},
	})
	if err := runDiff(base, true); err != nil {
		t.Fatalf("unran baseline experiment failed the gate: %v", err)
	}
}
