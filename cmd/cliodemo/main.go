// Command cliodemo replays the paper's Section 2 scenario step by
// step, printing the reconstructed figures: the source database
// (Figure 1), the growing mapping and its target view (Figure 2), the
// affiliation scenarios (Figure 3), the phone-number data walk
// (Figure 4), the data chase on Maya's ID (Figure 5), the full
// disjunction D(G) with coverage tags (Figure 8), the sufficient
// illustration (Figure 9), and the final generated SQL (Section 2).
//
// Usage:
//
//	cliodemo            # run the whole narrative
//	cliodemo -step 5    # print a single step (0..7)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"clio/internal/core"
	"clio/internal/discovery"
	"clio/internal/expr"
	"clio/internal/paperdb"
	"clio/internal/relation"
	"clio/internal/render"
	"clio/internal/schema"
	"clio/internal/value"
	"clio/internal/workspace"
)

// out is the demo's output sink; tests redirect it.
var out io.Writer = os.Stdout

// ctx is the demo-wide root context for traced engine calls.
var ctx = context.Background()

func main() {
	step := flag.Int("step", -1, "print a single step (0..8); -1 runs all")
	flag.Parse()
	if err := run(*step); err != nil {
		fmt.Fprintln(os.Stderr, "cliodemo:", err)
		os.Exit(1)
	}
}

func run(step int) error {
	steps := []struct {
		title string
		f     func() error
	}{
		{"Figure 1: the source database", step0Source},
		{"Figure 2: correspondences v1, v2 and the target view", step1Correspondences},
		{"Figure 3: two ways to associate children with affiliations", step2Affiliation},
		{"Figure 4: a data walk to PhoneDir", step3Walk},
		{"Figure 5: chasing the value 002", step4Chase},
		{"Figure 8: the full disjunction D(G) with coverage tags", step5FullDisjunction},
		{"Figure 9: a sufficient illustration, focussed on the children", step6Illustration},
		{"Section 2: the final mapping and its SQL", step7FinalSQL},
		{"Section 3.4: joins and outer joins as mappings", step8Representation},
	}
	for i, s := range steps {
		if step >= 0 && i != step {
			continue
		}
		fmt.Fprintf(out, "\n================ Step %d — %s ================\n\n", i, s.title)
		if err := s.f(); err != nil {
			return err
		}
	}
	return nil
}

func step0Source() error {
	in := paperdb.Instance()
	fmt.Fprintln(out, in.Schema.String())
	for _, name := range in.Names() {
		fmt.Fprintln(out, render.Table(in.Relation(name), render.Options{Unqualify: true}))
	}
	return nil
}

func step1Correspondences() error {
	in := paperdb.Instance()
	tool := workspace.New(ctx, in, paperdb.Kids(), false)
	if err := tool.Start("kids"); err != nil {
		return err
	}
	if err := tool.AddCorrespondence(ctx, core.Identity("Children.ID", schema.Col("Kids", "ID"))); err != nil {
		return err
	}
	if err := tool.AddCorrespondence(ctx, core.Identity("Children.name", schema.Col("Kids", "name"))); err != nil {
		return err
	}
	fmt.Fprintln(out, "After v1: Children.ID -> Kids.ID and v2: Children.name -> Kids.name")
	fmt.Fprintln(out, render.Table(in.Relation("Children"), render.Options{Unqualify: true, MaxRows: 4}))
	view, err := tool.TargetView(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, render.Table(view, render.Options{Unqualify: true}))
	return nil
}

func step2Affiliation() error {
	in := paperdb.Instance()
	k := paperdb.Knowledge()
	m := core.NewMapping("kids", paperdb.Kids())
	m.Graph.MustAddNode("Children", "Children")
	m.Corrs = []core.Correspondence{
		core.Identity("Children.ID", schema.Col("Kids", "ID")),
		core.Identity("Children.name", schema.Col("Kids", "name")),
	}
	alts, err := core.AddCorrespondence(ctx, m, k,
		core.Identity("Parents.affiliation", schema.Col("Kids", "affiliation")), 2)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Adding v3: Parents.affiliation -> Kids.affiliation yields %d scenarios.\n", len(alts))
	fmt.Fprintf(out, "Maya's row (ID 002) is highlighted (→) in each scenario:\n\n")
	for i, alt := range alts {
		e, _ := alt.Graph.EdgeBetween("Children", "Parents")
		fmt.Fprintf(out, "--- Scenario %d: join on %s ---\n", i+1, e.Label())
		res, err := alt.Evaluate(in)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, render.Table(res, render.Options{Unqualify: true, Marker: mayaMarker("Kids.ID")}))
	}
	fmt.Fprintln(out, "The user recognizes mid/fid as mother/father IDs and selects")
	fmt.Fprintln(out, "Scenario 1 (father's affiliation) for the target semantics.")
	return nil
}

func step3Walk() error {
	in := paperdb.Instance()
	k := paperdb.Knowledge()
	m := core.NewMapping("kids", paperdb.Kids())
	m.Graph.MustAddNode("Children", "Children")
	m.Graph.MustAddNode("Parents", "Parents")
	m.Graph.MustAddEdge("Children", "Parents", expr.Equals("Children.fid", "Parents.ID"))
	m.Corrs = []core.Correspondence{
		core.Identity("Children.ID", schema.Col("Kids", "ID")),
		core.Identity("Children.name", schema.Col("Kids", "name")),
		core.Identity("Parents.affiliation", schema.Col("Kids", "affiliation")),
	}
	opts, err := core.DataWalk(ctx, m, k, "Children", "PhoneDir", 3)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "DataWalk(Children → PhoneDir) yields %d scenarios:\n\n", len(opts))
	for i, o := range opts {
		fmt.Fprintf(out, "--- Scenario %d: %s ---\n", i+1, o.Describe())
		fmt.Fprint(out, o.Mapping.Graph.String())
		mm, err := o.Mapping.WithCorrespondence(core.Identity("PhoneDir.number", schema.Col("Kids", "contactPh")))
		if err != nil {
			return err
		}
		res, err := mm.Evaluate(in)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, render.Table(res, render.Options{Unqualify: true, Marker: mayaMarker("Kids.ID")}))
	}
	fmt.Fprintln(out, "Scenario with Parents2 associates children with their mothers'")
	fmt.Fprintln(out, "phone numbers; the user selects it and adds v4.")
	return nil
}

func step4Chase() error {
	in := paperdb.Instance()
	ix := discovery.BuildValueIndex(ctx, in)
	m := paperdb.Figure6G()
	opts, err := core.DataChase(ctx, m, ix, "Children.ID", value.String("002"))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Chasing Maya's ID 002 finds %d occurrences outside the mapping:\n\n", len(opts))
	for i, o := range opts {
		fmt.Fprintf(out, "--- Scenario %d: %s ---\n", i+1, o.Describe())
		rel := in.Relation(o.To.Relation)
		fmt.Fprintln(out, render.Table(rel, render.Options{Unqualify: true, Marker: func(t relation.Tuple) string {
			if v, ok := t.Lookup(o.To.String()); ok && v.Equal(value.String("002")) {
				return "→"
			}
			return ""
		}}))
	}
	fmt.Fprintln(out, "SBPS turns out to be the School Bus Pickup Schedule; the user")
	fmt.Fprintln(out, "selects the first scenario and adds v5: SBPS.time -> Kids.BusSchedule.")
	return nil
}

func step5FullDisjunction() error {
	in := paperdb.Instance()
	m := paperdb.Figure6G()
	d, err := m.DG(ctx, in)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "D(G) for G = Children—Parents—PhoneDir (Figure 6), tagged by coverage:")
	il, err := core.ExamplesOn(ctx, m, in, d)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, render.Illustration(il, paperdb.Abbrev()))
	return nil
}

func step6Illustration() error {
	in := paperdb.Instance()
	m := paperdb.Example315Mapping()
	il, err := core.SufficientIllustration(ctx, m, in)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Mapping of Example 3.15 (C_S: Children.age < 7; C_T: Kids.ID <> null).")
	fmt.Fprintln(out, "A minimal sufficient illustration (greedy cover):")
	fmt.Fprintln(out, render.Illustration(il, paperdb.Abbrev()))

	// Focus on the four children (Example 4.8).
	cs, err := in.Aliased("Children", "Children")
	if err != nil {
		return err
	}
	focusIl, err := core.Focus(ctx, m, in, "Children", cs.Tuples())
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Focussed on the children 001, 002, 004, 009 (Example 4.8):")
	fmt.Fprintln(out, render.Illustration(focusIl, paperdb.Abbrev()))
	return nil
}

func step7FinalSQL() error {
	in := paperdb.Instance()
	m := paperdb.Section2Mapping()
	root, _ := m.RequiredRoot()
	sql, err := m.ViewSQL(root)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "In plain English:")
	fmt.Fprintln(out, m.Explain())
	fmt.Fprintln(out, "The final mapping, as the paper's left-outer-join view:")
	fmt.Fprintln(out, sql)
	fmt.Fprintln(out, "\nCanonical form over D(G) (Definition 3.14):")
	fmt.Fprintln(out, m.CanonicalSQL())
	res, err := m.Evaluate(in)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\nTarget contents:")
	fmt.Fprintln(out, render.Table(res, render.Options{Unqualify: true}))

	refined := m.WithTargetFilter(expr.MustParse("Kids.BusSchedule IS NOT NULL"))
	res2, err := refined.Evaluate(in)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "After the user marks BusSchedule as required (left join → inner join):")
	fmt.Fprintln(out, render.Table(res2, render.Options{Unqualify: true}))
	return nil
}

func step8Representation() error {
	in := paperdb.Instance()
	// The Section 2 view as a join/outer-join query: Children LEFT
	// JOIN Parents (fid) LEFT JOIN SBPS (ID).
	q := core.Left(
		core.Left(core.NewRel("Children"), core.NewRel("Parents"),
			"Children", "Parents", expr.Equals("Children.fid", "Parents.ID")),
		core.NewRel("SBPS"), "Children", "SBPS", expr.Equals("Children.ID", "SBPS.ID"))
	fmt.Fprintf(out, "query: %s\n\n", q)
	ms, err := core.RepresentJoinQuery(q, in, "Kids")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "represented as %d term mappings (one per disjunction term):\n", len(ms))
	for _, m := range ms {
		fmt.Fprintf(out, "  %s over graph {%s}\n", m.Name, strings.Join(m.Graph.Nodes(), ", "))
	}
	combined, err := core.CombineMappings(in, ms)
	if err != nil {
		return err
	}
	direct, err := core.EvaluateJoinQuery(q, in)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nminimum union of the mappings (%d rows) equals the direct query (%d rows): %v\n",
		combined.Len(), direct.Len(), combined.Len() == direct.Len())
	fmt.Fprintln(out, render.Table(combined.Sorted(), render.Options{Unqualify: true}))
	return nil
}

func mayaMarker(col string) func(relation.Tuple) string {
	return func(t relation.Tuple) string {
		if v, ok := t.Lookup(col); ok && v.Equal(value.String("002")) {
			return "→"
		}
		return ""
	}
}
