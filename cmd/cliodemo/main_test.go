package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

// capture runs the demo with out redirected to a buffer.
func capture(t *testing.T, step int) string {
	t.Helper()
	var b bytes.Buffer
	old := out
	out = &b
	defer func() { out = old }()
	if err := run(step); err != nil {
		t.Fatalf("step %d: %v", step, err)
	}
	return b.String()
}

func TestAllStepsRun(t *testing.T) {
	s := capture(t, -1)
	for _, want := range []string{
		"Step 0", "Step 7",
		"Children(ID, name, age, mid, fid, docid)",
		"FK mid_fk",
		"Maya",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("demo output missing %q", want)
		}
	}
}

func TestStep2Scenarios(t *testing.T) {
	s := capture(t, 2)
	if !strings.Contains(s, "Scenario 1") || !strings.Contains(s, "Scenario 2") {
		t.Errorf("affiliation scenarios missing:\n%s", s)
	}
	// Both affiliations visible for Maya.
	if !strings.Contains(s, "Acta") || !strings.Contains(s, "IBM") {
		t.Error("scenario affiliations missing")
	}
}

func TestStep3WalkIntroducesCopy(t *testing.T) {
	s := capture(t, 3)
	if !strings.Contains(s, "Parents2") {
		t.Errorf("walk output missing Parents2 copy:\n%s", s)
	}
}

func TestStep4ChaseFindsSBPSAndXmasBar(t *testing.T) {
	s := capture(t, 4)
	if !strings.Contains(s, "SBPS") || !strings.Contains(s, "XmasBar") {
		t.Errorf("chase output missing relations:\n%s", s)
	}
	if strings.Count(s, "Scenario") != 3 {
		t.Errorf("expected 3 chase scenarios:\n%s", s)
	}
}

func TestStep5CoverageTags(t *testing.T) {
	s := capture(t, 5)
	for _, tag := range []string{"CPPh", "PPh"} {
		if !strings.Contains(s, tag) {
			t.Errorf("D(G) output missing tag %s:\n%s", tag, s)
		}
	}
}

func TestStep7SQLShape(t *testing.T) {
	s := capture(t, 7)
	for _, want := range []string{
		"CREATE VIEW Kids AS",
		"LEFT JOIN Parents AS Parents2 ON Children.mid = Parents2.ID",
		"WHERE Children.ID IS NOT NULL",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("final SQL missing %q:\n%s", want, s)
		}
	}
}

var update = flag.Bool("update", false, "rewrite the golden demo transcript")

// TestGoldenTranscript snapshots the entire demo narrative: the
// figures are deterministic, so any drift in rendering or semantics
// shows up as a diff. Regenerate with `go test -run Golden -update`.
func TestGoldenTranscript(t *testing.T) {
	got := capture(t, -1)
	const path = "testdata/demo.golden"
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		// Locate the first differing line for a usable message.
		gl := strings.Split(got, "\n")
		wl := strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("transcript drift at line %d:\n got: %q\nwant: %q\n(run with -update to accept)", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("transcript length changed: %d vs %d lines", len(gl), len(wl))
	}
}
