package clio_test

import (
	"context"
	"strings"
	"testing"

	"clio"
	"clio/internal/paperdb"
)

// TestFacadeEndToEnd drives the whole public API: load data, open a
// tool, build the Section 2 mapping through facade calls only.
func TestFacadeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	if err := clio.SaveCSVDir(dir, paperdb.Instance()); err != nil {
		t.Fatal(err)
	}
	in, err := clio.LoadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Mine the knowledge from raw CSVs: the FK structure is recovered.
	inds := clio.DiscoverINDs(context.Background(), in, 1.0)
	if len(inds) == 0 {
		t.Fatal("no INDs discovered from CSVs")
	}
	fks := clio.ProposeForeignKeys(in, inds)
	found := false
	for _, fk := range fks {
		if fk.FromRelation == "Children" && fk.ToRelation == "Parents" {
			found = true
		}
	}
	if !found {
		t.Error("mid/fid foreign keys not recovered from data")
	}

	target := clio.NewRelationSchema("Kids",
		clio.Attribute{Name: "ID"},
		clio.Attribute{Name: "name"},
		clio.Attribute{Name: "affiliation"},
	)
	tool := clio.NewTool(context.Background(), in, target, true)
	if err := tool.Start("kids"); err != nil {
		t.Fatal(err)
	}
	if err := tool.AddCorrespondence(context.Background(), clio.Identity("Children.ID", clio.Col("Kids", "ID"))); err != nil {
		t.Fatal(err)
	}
	if err := tool.AddCorrespondence(context.Background(), clio.Identity("Children.name", clio.Col("Kids", "name"))); err != nil {
		t.Fatal(err)
	}
	if err := tool.AddCorrespondence(context.Background(), clio.Identity("Parents.affiliation", clio.Col("Kids", "affiliation"))); err != nil {
		t.Fatal(err)
	}
	if len(tool.Workspaces()) < 2 {
		t.Fatalf("expected scenario alternatives, got %d", len(tool.Workspaces()))
	}
	view, err := tool.TargetView(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if view.Len() == 0 {
		t.Fatal("empty target view")
	}
	out := clio.FormatTable(view, clio.RenderOptions{Unqualify: true})
	if !strings.Contains(out, "Maya") {
		t.Errorf("rendered view missing Maya:\n%s", out)
	}
	il := tool.Active().Illustration
	if s := clio.FormatIllustration(il, nil); !strings.Contains(s, "illustration") {
		t.Errorf("illustration rendering: %s", s)
	}
}

func TestFacadeExpressionAndValues(t *testing.T) {
	e, err := clio.ParseExpr("a.x < 7")
	if err != nil {
		t.Fatal(err)
	}
	s := clio.NewScheme("a.x")
	tp := clio.NewTuple(s, clio.IntValue(5))
	if e.Eval(tp).String() != "true" {
		t.Error("facade expression evaluation wrong")
	}
	if !clio.IsStrong(clio.Equals("a.x", "b.y"), clio.NewScheme("a.x", "b.y")) {
		t.Error("facade IsStrong wrong")
	}
	if clio.ParseValue("002").Kind() != clio.StringValue("002").Kind() {
		t.Error("facade value parsing wrong")
	}
	if !clio.Null.IsNull() || clio.FloatValue(1).IsNull() || clio.BoolValue(true).IsNull() {
		t.Error("facade constructors wrong")
	}
}

func TestFacadeFullDisjunction(t *testing.T) {
	in := paperdb.Instance()
	m := paperdb.Figure6G()
	d1, err := clio.ComputeDG(context.Background(), m.Graph, in)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := clio.FullDisjunction(context.Background(), m.Graph, in)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := clio.FullDisjunctionOuterJoin(context.Background(), m.Graph, in)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.EqualSet(d2) || !d1.EqualSet(d3) {
		t.Error("facade D(G) algorithms disagree")
	}
	cov, err := clio.Coverage(d1.At(0), m.Graph, in)
	if err != nil || len(cov) == 0 {
		t.Error("facade coverage wrong")
	}
	if clio.CoverageTag([]string{"Children"}, paperdb.Abbrev()) != "C" {
		t.Error("facade tag wrong")
	}
}
