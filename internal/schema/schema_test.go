package schema

import (
	"strings"
	"testing"

	"clio/internal/value"
)

func sampleDB(t *testing.T) *Database {
	t.Helper()
	d := NewDatabase()
	d.MustAddRelation(NewRelation("Children",
		Attribute{"ID", value.KindString},
		Attribute{"name", value.KindString},
		Attribute{"age", value.KindInt},
		Attribute{"mid", value.KindString},
		Attribute{"fid", value.KindString},
	))
	d.MustAddRelation(NewRelation("Parents",
		Attribute{"ID", value.KindString},
		Attribute{"affiliation", value.KindString},
	))
	d.AddKey("Parents", "ID")
	d.AddForeignKey("mid_fk", "Children", []string{"mid"}, "Parents", []string{"ID"})
	d.AddForeignKey("fid_fk", "Children", []string{"fid"}, "Parents", []string{"ID"})
	d.AddNotNull("Children", "ID")
	return d
}

func TestRelationBasics(t *testing.T) {
	r := NewRelation("R", Attribute{"a", value.KindInt}, Attribute{"b", value.KindString})
	if r.Arity() != 2 {
		t.Errorf("Arity = %d, want 2", r.Arity())
	}
	if r.AttrIndex("b") != 1 {
		t.Errorf("AttrIndex(b) = %d, want 1", r.AttrIndex("b"))
	}
	if r.AttrIndex("z") != -1 {
		t.Error("AttrIndex(z) should be -1")
	}
	if !r.HasAttr("a") || r.HasAttr("c") {
		t.Error("HasAttr wrong")
	}
	if r.Qualified(0) != "R.a" {
		t.Errorf("Qualified(0) = %q", r.Qualified(0))
	}
	if got := r.QualifiedNames(); len(got) != 2 || got[1] != "R.b" {
		t.Errorf("QualifiedNames = %v", got)
	}
	if r.String() != "R(a, b)" {
		t.Errorf("String = %q", r.String())
	}
	if r.IsCopy() {
		t.Error("fresh relation should not be a copy")
	}
}

func TestRelationCopy(t *testing.T) {
	r := NewRelation("Parents", Attribute{"ID", value.KindString}, Attribute{"affiliation", value.KindString})
	c := r.Copy("Parents2")
	if !c.IsCopy() {
		t.Error("copy should report IsCopy")
	}
	if c.Base != "Parents" || c.Name != "Parents2" {
		t.Errorf("copy identity wrong: name=%s base=%s", c.Name, c.Base)
	}
	if c.Qualified(0) != "Parents2.ID" {
		t.Errorf("copy qualified name = %q", c.Qualified(0))
	}
	// Mutating the copy's attrs must not touch the original.
	c.Attrs[0].Name = "XID"
	if r.Attrs[0].Name != "ID" {
		t.Error("copy shares attribute storage with original")
	}
}

func TestColumnRef(t *testing.T) {
	c, err := ParseColumnRef("Children.ID")
	if err != nil {
		t.Fatal(err)
	}
	if c.Relation != "Children" || c.Attr != "ID" {
		t.Errorf("parsed ref = %+v", c)
	}
	if c.String() != "Children.ID" {
		t.Errorf("String = %q", c.String())
	}
	for _, bad := range []string{"noDot", ".x", "x.", ""} {
		if _, err := ParseColumnRef(bad); err == nil {
			t.Errorf("ParseColumnRef(%q) should fail", bad)
		}
	}
	if Col("R", "a") != (ColumnRef{"R", "a"}) {
		t.Error("Col constructor wrong")
	}
}

func TestDatabaseRegistration(t *testing.T) {
	d := sampleDB(t)
	if d.Relation("Children") == nil || d.Relation("Parents") == nil {
		t.Fatal("relations missing")
	}
	if d.Relation("Nope") != nil {
		t.Error("unknown relation should be nil")
	}
	if err := d.AddRelation(NewRelation("Children")); err == nil {
		t.Error("duplicate registration should fail")
	}
	names := d.RelationNames()
	if len(names) != 2 || names[0] != "Children" || names[1] != "Parents" {
		t.Errorf("RelationNames = %v", names)
	}
	rels := d.Relations()
	if len(rels) != 2 || rels[0].Name != "Children" {
		t.Errorf("Relations order wrong: %v", rels)
	}
}

func TestMustAddRelationPanics(t *testing.T) {
	d := sampleDB(t)
	defer func() {
		if recover() == nil {
			t.Error("MustAddRelation should panic on duplicate")
		}
	}()
	d.MustAddRelation(NewRelation("Children"))
}

func TestConstraintQueries(t *testing.T) {
	d := sampleDB(t)
	if got := d.ForeignKeysFrom("Children"); len(got) != 2 {
		t.Errorf("ForeignKeysFrom(Children) = %d FKs, want 2", len(got))
	}
	if got := d.ForeignKeysTo("Parents"); len(got) != 2 {
		t.Errorf("ForeignKeysTo(Parents) = %d FKs, want 2", len(got))
	}
	if got := d.ForeignKeysFrom("Parents"); len(got) != 0 {
		t.Errorf("ForeignKeysFrom(Parents) = %d FKs, want 0", len(got))
	}
	if got := d.NotNullAttrs("Children"); len(got) != 1 || got[0] != "ID" {
		t.Errorf("NotNullAttrs(Children) = %v", got)
	}
	if got := d.NotNullAttrs("Parents"); len(got) != 0 {
		t.Errorf("NotNullAttrs(Parents) = %v", got)
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleDB(t).Validate(); err != nil {
		t.Errorf("valid schema failed validation: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	mk := func(mut func(*Database)) error {
		d := sampleDB(t)
		mut(d)
		return d.Validate()
	}
	cases := []struct {
		name string
		mut  func(*Database)
	}{
		{"key unknown relation", func(d *Database) { d.AddKey("Nope", "x") }},
		{"key unknown attr", func(d *Database) { d.AddKey("Parents", "nope") }},
		{"fk unknown relation", func(d *Database) {
			d.AddForeignKey("bad", "Nope", []string{"x"}, "Parents", []string{"ID"})
		}},
		{"fk arity mismatch", func(d *Database) {
			d.AddForeignKey("bad", "Children", []string{"mid", "fid"}, "Parents", []string{"ID"})
		}},
		{"fk empty attrs", func(d *Database) {
			d.AddForeignKey("bad", "Children", nil, "Parents", nil)
		}},
		{"fk unknown from attr", func(d *Database) {
			d.AddForeignKey("bad", "Children", []string{"nope"}, "Parents", []string{"ID"})
		}},
		{"fk unknown to attr", func(d *Database) {
			d.AddForeignKey("bad", "Children", []string{"mid"}, "Parents", []string{"nope"})
		}},
		{"notnull unknown relation", func(d *Database) { d.AddNotNull("Nope", "x") }},
		{"notnull unknown attr", func(d *Database) { d.AddNotNull("Parents", "nope") }},
	}
	for _, c := range cases {
		if err := mk(c.mut); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestStringRendering(t *testing.T) {
	d := sampleDB(t)
	s := d.String()
	for _, want := range []string{
		"Children(ID, name, age, mid, fid)",
		"Parents(ID, affiliation)",
		"KEY Parents(ID)",
		"FK mid_fk: Children(mid) -> Parents(ID)",
		"NOT NULL Children.ID",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("schema rendering missing %q in:\n%s", want, s)
		}
	}
}
