// Package schema models relation schemes, database schemas, and
// integrity constraints (keys, foreign keys, not-null), including the
// relation "copies" the paper's mappings require (e.g. Parents2 as a
// second copy of Parents, Section 2).
//
// Attributes are identified by qualified names, Relation.Attribute.
// A copy of a relation shares the base relation's attribute names but
// qualifies them with the copy's alias, so predicates can refer to each
// copy unambiguously (paper Section 3, Preliminaries).
package schema

import (
	"fmt"
	"sort"
	"strings"

	"clio/internal/value"
)

// Attribute describes one column of a relation scheme.
type Attribute struct {
	// Name is the unqualified column name, e.g. "ID".
	Name string
	// Type is the expected kind of values in the column. KindNull means
	// untyped/any.
	Type value.Kind
}

// Relation describes a relation scheme: a named, ordered list of
// attributes. Order matters only for display; the set of names is what
// defines the scheme.
type Relation struct {
	// Name is the relation name, e.g. "Children". For a copy, Name is
	// the alias (e.g. "Parents2") and Base is the original name.
	Name string
	// Base is the underlying stored relation's name. For non-copies,
	// Base == Name.
	Base  string
	Attrs []Attribute
}

// NewRelation builds a relation scheme; Base defaults to Name.
func NewRelation(name string, attrs ...Attribute) *Relation {
	return &Relation{Name: name, Base: name, Attrs: attrs}
}

// IsCopy reports whether r is an aliased copy of another relation.
func (r *Relation) IsCopy() bool { return r.Base != r.Name }

// Copy creates an aliased copy of r with the given alias. The copy has
// the same attributes but its qualified names use the alias.
func (r *Relation) Copy(alias string) *Relation {
	attrs := make([]Attribute, len(r.Attrs))
	copy(attrs, r.Attrs)
	return &Relation{Name: alias, Base: r.Base, Attrs: attrs}
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// AttrIndex returns the position of the named (unqualified) attribute,
// or -1 if absent.
func (r *Relation) AttrIndex(name string) int {
	for i, a := range r.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// HasAttr reports whether the relation has the named attribute.
func (r *Relation) HasAttr(name string) bool { return r.AttrIndex(name) >= 0 }

// Qualified returns the qualified name of the i-th attribute,
// e.g. "Children.ID".
func (r *Relation) Qualified(i int) string {
	return r.Name + "." + r.Attrs[i].Name
}

// QualifiedNames returns all qualified attribute names in order.
func (r *Relation) QualifiedNames() []string {
	out := make([]string, len(r.Attrs))
	for i := range r.Attrs {
		out[i] = r.Qualified(i)
	}
	return out
}

// String renders the scheme as Name(attr1, attr2, ...).
func (r *Relation) String() string {
	names := make([]string, len(r.Attrs))
	for i, a := range r.Attrs {
		names[i] = a.Name
	}
	return r.Name + "(" + strings.Join(names, ", ") + ")"
}

// ColumnRef identifies a column by relation name and attribute name.
type ColumnRef struct {
	Relation string
	Attr     string
}

// Col builds a ColumnRef.
func Col(rel, attr string) ColumnRef { return ColumnRef{Relation: rel, Attr: attr} }

// ParseColumnRef parses "Rel.Attr" into a ColumnRef.
func ParseColumnRef(s string) (ColumnRef, error) {
	i := strings.IndexByte(s, '.')
	if i <= 0 || i == len(s)-1 {
		return ColumnRef{}, fmt.Errorf("schema: malformed column reference %q (want Rel.Attr)", s)
	}
	return ColumnRef{Relation: s[:i], Attr: s[i+1:]}, nil
}

// String renders the reference as Rel.Attr.
func (c ColumnRef) String() string { return c.Relation + "." + c.Attr }

// Key is a uniqueness constraint: the named attributes are unique
// (taken together) within the relation.
type Key struct {
	Relation string
	Attrs    []string
}

// String renders the key constraint.
func (k Key) String() string {
	return fmt.Sprintf("KEY %s(%s)", k.Relation, strings.Join(k.Attrs, ", "))
}

// ForeignKey is a referential constraint: FromRelation.FromAttrs
// references ToRelation.ToAttrs. Names like "mid"/"fid" referencing
// Parents.ID in the paper's example are foreign keys.
type ForeignKey struct {
	Name         string
	FromRelation string
	FromAttrs    []string
	ToRelation   string
	ToAttrs      []string
}

// String renders the foreign key constraint.
func (fk ForeignKey) String() string {
	return fmt.Sprintf("FK %s: %s(%s) -> %s(%s)", fk.Name,
		fk.FromRelation, strings.Join(fk.FromAttrs, ", "),
		fk.ToRelation, strings.Join(fk.ToAttrs, ", "))
}

// NotNull is a non-null constraint on one column.
type NotNull struct {
	Relation string
	Attr     string
}

// String renders the not-null constraint.
func (n NotNull) String() string { return fmt.Sprintf("NOT NULL %s.%s", n.Relation, n.Attr) }

// Database is a database schema: a set of relation schemes over
// mutually disjoint attribute namespaces (qualification guarantees
// disjointness), plus declared constraints.
type Database struct {
	relations map[string]*Relation
	order     []string // insertion order, for stable display
	Keys      []Key
	ForeignKs []ForeignKey
	NotNulls  []NotNull
}

// NewDatabase creates an empty database schema.
func NewDatabase() *Database {
	return &Database{relations: map[string]*Relation{}}
}

// AddRelation registers a relation scheme. It returns an error on
// duplicate names.
func (d *Database) AddRelation(r *Relation) error {
	if _, dup := d.relations[r.Name]; dup {
		return fmt.Errorf("schema: duplicate relation %q", r.Name)
	}
	d.relations[r.Name] = r
	d.order = append(d.order, r.Name)
	return nil
}

// MustAddRelation is AddRelation that panics on error; for use in
// fixtures and generators where the schema is statically correct.
func (d *Database) MustAddRelation(r *Relation) {
	if err := d.AddRelation(r); err != nil {
		panic(err)
	}
}

// Relation returns the named relation scheme, or nil.
func (d *Database) Relation(name string) *Relation { return d.relations[name] }

// Relations returns all relation schemes in registration order.
func (d *Database) Relations() []*Relation {
	out := make([]*Relation, 0, len(d.order))
	for _, n := range d.order {
		out = append(out, d.relations[n])
	}
	return out
}

// RelationNames returns all relation names in registration order.
func (d *Database) RelationNames() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// AddKey declares a key constraint.
func (d *Database) AddKey(rel string, attrs ...string) { d.Keys = append(d.Keys, Key{rel, attrs}) }

// AddForeignKey declares a foreign key constraint.
func (d *Database) AddForeignKey(name, fromRel string, fromAttrs []string, toRel string, toAttrs []string) {
	d.ForeignKs = append(d.ForeignKs, ForeignKey{name, fromRel, fromAttrs, toRel, toAttrs})
}

// AddNotNull declares a not-null constraint.
func (d *Database) AddNotNull(rel, attr string) {
	d.NotNulls = append(d.NotNulls, NotNull{rel, attr})
}

// NotNullAttrs returns the non-null attribute names of a relation.
func (d *Database) NotNullAttrs(rel string) []string {
	var out []string
	for _, n := range d.NotNulls {
		if n.Relation == rel {
			out = append(out, n.Attr)
		}
	}
	sort.Strings(out)
	return out
}

// ForeignKeysFrom returns the foreign keys whose source is rel.
func (d *Database) ForeignKeysFrom(rel string) []ForeignKey {
	var out []ForeignKey
	for _, fk := range d.ForeignKs {
		if fk.FromRelation == rel {
			out = append(out, fk)
		}
	}
	return out
}

// ForeignKeysTo returns the foreign keys whose target is rel.
func (d *Database) ForeignKeysTo(rel string) []ForeignKey {
	var out []ForeignKey
	for _, fk := range d.ForeignKs {
		if fk.ToRelation == rel {
			out = append(out, fk)
		}
	}
	return out
}

// Validate checks internal consistency: constraints reference existing
// relations and attributes, FK arity matches.
func (d *Database) Validate() error {
	for _, k := range d.Keys {
		r := d.Relation(k.Relation)
		if r == nil {
			return fmt.Errorf("schema: key on unknown relation %q", k.Relation)
		}
		for _, a := range k.Attrs {
			if !r.HasAttr(a) {
				return fmt.Errorf("schema: key attribute %s.%s does not exist", k.Relation, a)
			}
		}
	}
	for _, fk := range d.ForeignKs {
		from, to := d.Relation(fk.FromRelation), d.Relation(fk.ToRelation)
		if from == nil || to == nil {
			return fmt.Errorf("schema: foreign key %s references unknown relation", fk.Name)
		}
		if len(fk.FromAttrs) != len(fk.ToAttrs) || len(fk.FromAttrs) == 0 {
			return fmt.Errorf("schema: foreign key %s has mismatched attribute lists", fk.Name)
		}
		for _, a := range fk.FromAttrs {
			if !from.HasAttr(a) {
				return fmt.Errorf("schema: foreign key %s: %s.%s does not exist", fk.Name, fk.FromRelation, a)
			}
		}
		for _, a := range fk.ToAttrs {
			if !to.HasAttr(a) {
				return fmt.Errorf("schema: foreign key %s: %s.%s does not exist", fk.Name, fk.ToRelation, a)
			}
		}
	}
	for _, n := range d.NotNulls {
		r := d.Relation(n.Relation)
		if r == nil {
			return fmt.Errorf("schema: not-null on unknown relation %q", n.Relation)
		}
		if !r.HasAttr(n.Attr) {
			return fmt.Errorf("schema: not-null attribute %s.%s does not exist", n.Relation, n.Attr)
		}
	}
	return nil
}

// String renders the whole schema, one relation per line, then
// constraints.
func (d *Database) String() string {
	var b strings.Builder
	for _, r := range d.Relations() {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	for _, k := range d.Keys {
		b.WriteString(k.String())
		b.WriteByte('\n')
	}
	for _, fk := range d.ForeignKs {
		b.WriteString(fk.String())
		b.WriteByte('\n')
	}
	for _, n := range d.NotNulls {
		b.WriteString(n.String())
		b.WriteByte('\n')
	}
	return b.String()
}
