package workspace

import (
	"context"
	"errors"
	"testing"

	"clio/internal/core"
	"clio/internal/fault"
	"clio/internal/fd"
	"clio/internal/obs"
	"clio/internal/paperdb"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// rowVals parses display cells into a Children row.
func rowVals(cells ...string) []value.Value {
	vals := make([]value.Value, len(cells))
	for i, c := range cells {
		vals[i] = value.Parse(c)
	}
	return vals
}

// mappedTool builds a tool whose active mapping reads Children,
// Parents, and PhoneDir (the Section 2 walk), so row edits on Children
// exercise the delta machinery across a real join chain.
func mappedTool(t *testing.T, in *relation.Instance) *Tool {
	t.Helper()
	ctx := context.Background()
	tl := New(ctx, in, paperdb.Kids(), false)
	if err := tl.Start("kids"); err != nil {
		t.Fatal(err)
	}
	if err := tl.AddCorrespondence(ctx, core.Identity("Children.ID", schema.Col("Kids", "ID"))); err != nil {
		t.Fatal(err)
	}
	if err := tl.Walk(ctx, "Children", "PhoneDir"); err != nil {
		t.Fatal(err)
	}
	return tl
}

// Row edits are maintained continuously: after every ApplyRows the
// target view renders byte-identically to a tool whose instance had
// the same content from the start (cold rebuild), inserts after the
// first take the O(delta) path, and deletes of untracked rows are
// refused without touching anything.
func TestApplyRowsDeltaMatchesColdRebuild(t *testing.T) {
	ctx := context.Background()
	rowA := []string{"012", "Nina", "8", "100", "101", "d3"}
	rowB := []string{"013", "Omar", "9", "102", "103", "d1"}

	tl := mappedTool(t, paperdb.Instance())

	// First edit: no materialization exists yet, so it rebuilds.
	nctx, notes := obs.WithNotes(ctx)
	if err := tl.ApplyRows(nctx, "Children", rowVals(rowA...), false); err != nil {
		t.Fatal(err)
	}
	if got := notes.Get("dg_maint"); got != "recompute" {
		t.Errorf("first edit maintained via %q, want recompute", got)
	}
	// Second edit: the materialization matches, so it delta-applies.
	nctx, notes = obs.WithNotes(ctx)
	if err := tl.ApplyRows(nctx, "Children", rowVals(rowB...), false); err != nil {
		t.Fatal(err)
	}
	if got := notes.Get("dg_maint"); got != "delta" {
		t.Errorf("second edit maintained via %q, want delta", got)
	}
	view, err := tl.TargetView(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Cold reference: both rows present from the start.
	inCold := paperdb.Instance()
	inCold.Relation("Children").AddRow(rowA...)
	inCold.Relation("Children").AddRow(rowB...)
	coldView, err := mappedTool(t, inCold).TargetView(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if view.String() != coldView.String() {
		t.Fatalf("delta-maintained view differs from cold rebuild:\n%v\nvs\n%v", view, coldView)
	}

	// Delete rowA through the delta path; the view must match a cold
	// tool that only ever saw rowB.
	nctx, notes = obs.WithNotes(ctx)
	if err := tl.ApplyRows(nctx, "Children", rowVals(rowA...), true); err != nil {
		t.Fatal(err)
	}
	if got := notes.Get("dg_maint"); got != "delta" {
		t.Errorf("delete maintained via %q, want delta", got)
	}
	view, err = tl.TargetView(ctx)
	if err != nil {
		t.Fatal(err)
	}
	inCold2 := paperdb.Instance()
	inCold2.Relation("Children").AddRow(rowB...)
	coldView2, err := mappedTool(t, inCold2).TargetView(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if view.String() != coldView2.String() {
		t.Fatalf("post-delete view differs from cold rebuild:\n%v\nvs\n%v", view, coldView2)
	}

	// Deleting the already-removed row must be refused.
	if err := tl.ApplyRows(ctx, "Children", rowVals(rowA...), true); err == nil {
		t.Fatal("delete of an absent row should fail")
	}
	// And the refusal touched nothing: the view still matches.
	view2, err := tl.TargetView(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if view2.String() != coldView2.String() {
		t.Fatal("refused delete perturbed the view")
	}
}

// A maintenance failure (here: the delta application dying on a budget
// violation) must roll the instance mutation back — a failed rows op
// is all-or-nothing, which is what lets journal replay re-execute only
// acknowledged work. Next edits and views behave as if the failed op
// never happened.
func TestChaosRowsBudgetAbortRollsBackInstance(t *testing.T) {
	ctx := context.Background()
	tl := mappedTool(t, paperdb.Instance())
	// Prime the materialization so the next edit takes the delta path.
	if err := tl.ApplyRows(ctx, "Children", rowVals("012", "Nina", "8", "100", "101", "d3"), false); err != nil {
		t.Fatal(err)
	}
	children := tl.Instance.Relation("Children")
	before := children.Len()
	beforeVersion := children.Version()

	fault.Enable(1)
	defer fault.Disable()
	fault.Set("fd.delta.apply", fault.Spec{Mode: fault.ModeError, Err: fd.ErrBudgetExceeded, Times: 1})

	rowB := rowVals("013", "Omar", "9", "102", "103", "d1")
	err := tl.ApplyRows(ctx, "Children", rowB, false)
	if !errors.Is(err, fd.ErrBudgetExceeded) {
		t.Fatalf("budget-dead edit returned %v, want budget error", err)
	}
	if children.Len() != before {
		t.Fatalf("failed edit left the instance mutated: %d rows, want %d", children.Len(), before)
	}
	tup := relation.NewTuple(children.Scheme(), rowB...)
	if children.IndexOf(tup) >= 0 {
		t.Fatal("rolled-back row still present in the instance")
	}
	if children.Version() == beforeVersion {
		t.Fatal("rollback should still bump the version (mutation happened and was undone)")
	}

	// The tool recovers: the same edit succeeds once the fault is gone,
	// and the view matches a cold rebuild over the final content.
	if err := tl.ApplyRows(ctx, "Children", rowB, false); err != nil {
		t.Fatalf("edit after recovery failed: %v", err)
	}
	view, err := tl.TargetView(ctx)
	if err != nil {
		t.Fatal(err)
	}
	inCold := paperdb.Instance()
	inCold.Relation("Children").AddRow("012", "Nina", "8", "100", "101", "d3")
	inCold.Relation("Children").AddRow("013", "Omar", "9", "102", "103", "d1")
	coldView, err := mappedTool(t, inCold).TargetView(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if view.String() != coldView.String() {
		t.Fatalf("post-recovery view differs from cold rebuild:\n%v\nvs\n%v", view, coldView)
	}
}
