package workspace

import (
	"context"
	"strings"
	"testing"

	"clio/internal/core"
	"clio/internal/datagen"
	"clio/internal/expr"
	"clio/internal/schema"
	"clio/internal/value"
)

// TestECommerceEndToEnd drives a full mapping session on the
// e-commerce workload: build a denormalized SalesReport target from
// five source relations through correspondences, walks, and filters,
// all via the workspace API.
func TestECommerceEndToEnd(t *testing.T) {
	in := datagen.ECommerce(datagen.ECommerceSpec{
		Customers: 20, Orders: 60, LinesPerOrder: 2, Products: 15,
		ShipRate: 0.6, Seed: 42,
	})
	if err := in.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
	target := schema.NewRelation("SalesReport",
		schema.Attribute{Name: "order"},
		schema.Attribute{Name: "customer"},
		schema.Attribute{Name: "country"},
		schema.Attribute{Name: "product"},
		schema.Attribute{Name: "revenue"},
		schema.Attribute{Name: "carrier"},
	)
	tl := New(context.Background(), in, target, false)
	if err := tl.Start("sales"); err != nil {
		t.Fatal(err)
	}
	steps := []core.Correspondence{
		core.Identity("Orders.oid", schema.Col("SalesReport", "order")),
		core.Identity("Customers.name", schema.Col("SalesReport", "customer")),
		core.Identity("Customers.country", schema.Col("SalesReport", "country")),
		core.Identity("Products.title", schema.Col("SalesReport", "product")),
		core.FromExpr(expr.MustParse("OrderLines.qty * Products.price"),
			schema.Col("SalesReport", "revenue")),
		core.Identity("Shipments.carrier", schema.Col("SalesReport", "carrier")),
	}
	for _, c := range steps {
		if err := tl.AddCorrespondence(context.Background(), c); err != nil {
			t.Fatalf("corr %v: %v", c, err)
		}
		// Single FK paths: exactly one scenario each time.
		if got := len(tl.Workspaces()); got != 1 {
			notes := []string{}
			for _, w := range tl.Workspaces() {
				notes = append(notes, w.Note)
			}
			t.Fatalf("corr %v produced %d scenarios: %v", c, got, notes)
		}
	}
	if err := tl.AddTargetFilter(context.Background(), expr.MustParse("SalesReport.order IS NOT NULL")); err != nil {
		t.Fatal(err)
	}
	m := tl.Active().Mapping
	if err := m.Validate(in); err != nil {
		t.Fatal(err)
	}
	// The graph is the expected 5-node tree.
	if m.Graph.NodeCount() != 5 || !m.Graph.IsTree() {
		t.Fatalf("graph:\n%v", m.Graph)
	}
	view, err := tl.TargetView(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if view.Len() == 0 {
		t.Fatal("empty sales report")
	}
	// Revenue is qty*price wherever a product is present.
	lineIdx := in.Relation("Products").BuildIndex("Products.pid")
	_ = lineIdx
	for _, tp := range view.Tuples() {
		rev := tp.Get("SalesReport.revenue")
		if tp.Get("SalesReport.product").IsNull() != rev.IsNull() {
			t.Errorf("revenue/product nullness mismatch: %v", tp)
		}
		if !rev.IsNull() && rev.IntVal() <= 0 {
			t.Errorf("non-positive revenue: %v", tp)
		}
	}
	// Unshipped orders appear with null carrier (left-join semantics);
	// with ShipRate 0.6 both kinds must exist.
	withCarrier, without := 0, 0
	for _, tp := range view.Tuples() {
		if tp.Get("SalesReport.carrier").IsNull() {
			without++
		} else {
			withCarrier++
		}
	}
	if withCarrier == 0 || without == 0 {
		t.Errorf("carrier split = %d/%d; want both populations", withCarrier, without)
	}
	// The illustration demonstrates the unshipped case too.
	il := tl.Active().Illustration
	if ok, _ := il.IsSufficient(in); !ok {
		t.Error("illustration should be sufficient")
	}
	// Generated SQL joins all five relations from Orders.
	root, ok := m.RequiredRoot()
	if !ok {
		t.Fatal("root should be forced by the target filter")
	}
	sql, err := m.ViewSQL(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"Customers", "OrderLines", "Products", "Shipments"} {
		if !strings.Contains(sql, "LEFT JOIN "+rel) {
			t.Errorf("SQL missing join to %s:\n%s", rel, sql)
		}
	}
	// And the left-join view agrees with the D(G) semantics.
	direct, err := m.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	viaLJ, err := m.EvaluateViaLeftJoins(root, in)
	if err != nil {
		t.Fatal(err)
	}
	if !direct.EqualSet(viaLJ) {
		t.Error("left-join view disagrees with mapping semantics")
	}
	// Spot value sanity: country codes come from the generator's list.
	valid := map[string]bool{"CA": true, "US": true, "DE": true, "JP": true, "BR": true}
	for _, tp := range view.Tuples() {
		if c := tp.Get("SalesReport.country"); !c.IsNull() && !valid[c.Str()] {
			t.Errorf("unexpected country %v", c)
		}
	}
	_ = value.Null
}
