package workspace

import (
	"context"
	"strings"
	"testing"

	"clio/internal/core"
	"clio/internal/expr"
	"clio/internal/fd"
	"clio/internal/graph"
	"clio/internal/paperdb"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

func newTool(t *testing.T) *Tool {
	t.Helper()
	return New(context.Background(), paperdb.Instance(), paperdb.Kids(), false)
}

func TestStartAndActive(t *testing.T) {
	tl := newTool(t)
	if tl.Active() != nil {
		t.Error("fresh tool should have no active workspace")
	}
	if err := tl.Start("kids"); err != nil {
		t.Fatal(err)
	}
	if tl.Active() == nil || tl.Active().Mapping.Name != "kids" {
		t.Error("Start should create an active workspace")
	}
}

func TestSection2Walkthrough(t *testing.T) {
	// Replays the Section 2 scenario end to end through the workspace
	// API.
	tl := newTool(t)
	if err := tl.Start("kids"); err != nil {
		t.Fatal(err)
	}

	// Step 1: v1, v2 — ID and name from Children.
	if err := tl.AddCorrespondence(context.Background(), core.Identity("Children.ID", schema.Col("Kids", "ID"))); err != nil {
		t.Fatal(err)
	}
	if err := tl.AddCorrespondence(context.Background(), core.Identity("Children.name", schema.Col("Kids", "name"))); err != nil {
		t.Fatal(err)
	}
	if len(tl.Workspaces()) != 1 {
		t.Fatalf("after v1,v2: %d workspaces", len(tl.Workspaces()))
	}
	view, err := tl.TargetView(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if view.Len() != 4 {
		t.Fatalf("target view = %d rows, want 4 children", view.Len())
	}

	// Step 2: v3 — affiliation; two scenarios (mid, fid).
	if err := tl.AddCorrespondence(context.Background(), core.Identity("Parents.affiliation", schema.Col("Kids", "affiliation"))); err != nil {
		t.Fatal(err)
	}
	if len(tl.Workspaces()) != 2 {
		t.Fatalf("after v3: %d workspaces, want 2 scenarios", len(tl.Workspaces()))
	}
	// Pick the father scenario (fid edge).
	picked := false
	for _, w := range tl.Workspaces() {
		if e, ok := w.Mapping.Graph.EdgeBetween("Children", "Parents"); ok &&
			strings.Contains(e.Label(), "fid") {
			if err := tl.Use(w.ID); err != nil {
				t.Fatal(err)
			}
			picked = true
		}
	}
	if !picked {
		t.Fatal("no fid scenario found")
	}
	if err := tl.Confirm(); err != nil {
		t.Fatal(err)
	}
	if len(tl.Workspaces()) != 1 || len(tl.Accepted()) != 1 {
		t.Fatal("confirm should keep one workspace and record acceptance")
	}

	// Step 3: data walk to PhoneDir; two scenarios (father's phone,
	// mother's phone via Parents2).
	if err := tl.Walk(context.Background(), "Children", "PhoneDir"); err != nil {
		t.Fatal(err)
	}
	if len(tl.Workspaces()) != 2 {
		t.Fatalf("after walk: %d workspaces", len(tl.Workspaces()))
	}
	// Choose the mother scenario: the one that introduced Parents2.
	for _, w := range tl.Workspaces() {
		if w.Mapping.Graph.HasNode("Parents2") {
			if err := tl.Use(w.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !tl.Active().Mapping.Graph.HasNode("Parents2") {
		t.Fatal("mother scenario not active")
	}
	// The walk's illustrations evolve from the previous workspace.
	inherited := 0
	for _, e := range tl.Active().Illustration.Examples {
		if e.Inherited {
			inherited++
		}
	}
	if inherited == 0 {
		t.Error("walk alternatives should inherit examples")
	}
	// v4: contact phone from the mother's PhoneDir copy.
	if err := tl.AddCorrespondence(context.Background(), core.Identity("PhoneDir.number", schema.Col("Kids", "contactPh"))); err != nil {
		t.Fatal(err)
	}
	if err := tl.Confirm(); err != nil {
		t.Fatal(err)
	}

	// Step 4: chase 002 to find SBPS.
	if err := tl.Chase(context.Background(), "Children.ID", value.String("002")); err != nil {
		t.Fatal(err)
	}
	if len(tl.Workspaces()) != 3 {
		t.Fatalf("after chase: %d workspaces, want 3 (SBPS + 2 XmasBar)", len(tl.Workspaces()))
	}
	for _, w := range tl.Workspaces() {
		if w.Mapping.Graph.HasNode("SBPS") {
			if err := tl.Use(w.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tl.AddCorrespondence(context.Background(), core.Identity("SBPS.time", schema.Col("Kids", "BusSchedule"))); err != nil {
		t.Fatal(err)
	}
	if err := tl.AddTargetFilter(context.Background(), expr.MustParse("Kids.ID IS NOT NULL")); err != nil {
		t.Fatal(err)
	}
	if err := tl.Confirm(); err != nil {
		t.Fatal(err)
	}

	// The final target view matches the Section 2 mapping (modulo the
	// address column we did not map in this walkthrough).
	final := tl.Active().Mapping
	res, err := final.Evaluate(tl.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("final Kids = %d rows:\n%v", res.Len(), res)
	}
	for _, tp := range res.Tuples() {
		if tp.Get("Kids.ID").Equal(value.String("002")) {
			if tp.Get("Kids.contactPh").String() != "555-0102" {
				t.Errorf("Maya's phone = %v, want mother's", tp.Get("Kids.contactPh"))
			}
			if tp.Get("Kids.BusSchedule").String() != "7:30" {
				t.Errorf("Maya's bus = %v", tp.Get("Kids.BusSchedule"))
			}
		}
	}
	// And the generated SQL has the paper's shape.
	root, ok := final.RequiredRoot()
	if !ok {
		t.Fatal("no required root")
	}
	sql, err := final.ViewSQL(root)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "LEFT JOIN") {
		t.Errorf("view SQL should use left joins:\n%s", sql)
	}
}

func TestUseDeleteRotate(t *testing.T) {
	tl := newTool(t)
	_ = tl.Start("m")
	_ = tl.AddCorrespondence(context.Background(), core.Identity("Children.ID", schema.Col("Kids", "ID")))
	if err := tl.AddCorrespondence(context.Background(), core.Identity("Parents.affiliation", schema.Col("Kids", "affiliation"))); err != nil {
		t.Fatal(err)
	}
	ws := tl.Workspaces()
	if len(ws) != 2 {
		t.Fatalf("workspaces = %d", len(ws))
	}
	if err := tl.Use(ws[1].ID); err != nil {
		t.Fatal(err)
	}
	if tl.Active().ID != ws[1].ID {
		t.Error("Use failed")
	}
	tl.Rotate()
	if tl.Active().ID != ws[0].ID {
		t.Error("Rotate failed")
	}
	if err := tl.Use(999); err == nil {
		t.Error("Use unknown should fail")
	}
	if err := tl.Delete(ws[0].ID); err != nil {
		t.Fatal(err)
	}
	if len(tl.Workspaces()) != 1 || tl.Active().ID != ws[1].ID {
		t.Error("Delete should keep the other workspace active")
	}
	if err := tl.Delete(999); err == nil {
		t.Error("Delete unknown should fail")
	}
	if err := tl.Delete(ws[1].ID); err != nil {
		t.Fatal(err)
	}
	if tl.Active() != nil {
		t.Error("deleting all workspaces should clear active")
	}
	if err := tl.Confirm(); err == nil {
		t.Error("Confirm with no active should fail")
	}
}

func TestExample61TwoMappingsWithFilters(t *testing.T) {
	// Example 6.1: mother's phone when there is a mother, father's
	// phone otherwise — two accepted mappings with complementary
	// filters; the target view is their union.
	in := paperdb.Instance()
	tl := New(context.Background(), in, paperdb.Kids(), false)

	mother := core.NewMapping("viaMother", paperdb.Kids())
	mother.Graph.MustAddNode("Children", "Children")
	mother.Graph.MustAddNode("Parents", "Parents")
	mother.Graph.MustAddNode("PhoneDir", "PhoneDir")
	mother.Graph.MustAddEdge("Children", "Parents", expr.Equals("Children.mid", "Parents.ID"))
	mother.Graph.MustAddEdge("Parents", "PhoneDir", expr.Equals("Parents.ID", "PhoneDir.ID"))
	mother.Corrs = []core.Correspondence{
		core.Identity("Children.ID", schema.Col("Kids", "ID")),
		core.Identity("PhoneDir.number", schema.Col("Kids", "contactPh")),
	}
	mother.SourceFilters = []expr.Expr{expr.MustParse("Children.mid IS NOT NULL")}
	mother.TargetFilters = []expr.Expr{expr.MustParse("Kids.ID IS NOT NULL")}

	father := mother.Clone()
	father.Name = "viaFather"
	father.Graph = coreGraphWithFid()
	father.SourceFilters = []expr.Expr{expr.MustParse("Children.mid IS NULL")}

	// Accept both by driving workspaces.
	tl.workspaces = nil
	w1, err := tl.newWorkspace(context.Background(), mother, "mother", 0)
	if err != nil {
		t.Fatal(err)
	}
	tl.workspaces = []*Workspace{w1}
	tl.active = 0
	if err := tl.Confirm(); err != nil {
		t.Fatal(err)
	}
	w2, err := tl.newWorkspace(context.Background(), father, "father", 0)
	if err != nil {
		t.Fatal(err)
	}
	tl.workspaces = []*Workspace{w2}
	tl.active = 0
	if err := tl.Confirm(); err != nil {
		t.Fatal(err)
	}

	view, err := tl.TargetView(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Every child in the paper instance has a mother, so the father
	// mapping contributes nothing here; the union is the mother rows.
	if view.Len() != 4 {
		t.Fatalf("view = %d rows:\n%v", view.Len(), view)
	}
	// Now orphan Bo's mid to exercise the father branch on a modified
	// instance: rebuild with Bo motherless but fathered.
	in2 := modifiedInstance(t)
	tl2 := New(context.Background(), in2, paperdb.Kids(), false)
	tl2.accepted = []*core.Mapping{mother, father}
	view2, err := tl2.TargetView(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var bo relation.Tuple
	for _, tp := range view2.Tuples() {
		if tp.Get("Kids.ID").Equal(value.String("004")) {
			bo = tp
		}
	}
	if bo.Scheme() == nil {
		t.Fatalf("Bo missing from union view:\n%v", view2)
	}
	if bo.Get("Kids.contactPh").String() != "555-0103" {
		t.Errorf("Bo should get father's phone, got %v", bo.Get("Kids.contactPh"))
	}
}

// coreGraphWithFid builds Children—Parents(fid)—PhoneDir.
func coreGraphWithFid() *graph.QueryGraph {
	g := graph.New()
	g.MustAddNode("Children", "Children")
	g.MustAddNode("Parents", "Parents")
	g.MustAddNode("PhoneDir", "PhoneDir")
	g.MustAddEdge("Children", "Parents", expr.Equals("Children.fid", "Parents.ID"))
	g.MustAddEdge("Parents", "PhoneDir", expr.Equals("Parents.ID", "PhoneDir.ID"))
	return g
}

// modifiedInstance: like the paper instance but Bo (004) has no mother
// and father 103.
func modifiedInstance(t *testing.T) *relation.Instance {
	t.Helper()
	in := relation.NewInstance(paperdb.Schema())
	src := paperdb.Instance()
	for _, name := range src.Names() {
		r := src.Relation(name)
		if name != "Children" {
			in.MustAdd(r)
			continue
		}
		c := in.NewRelationFor("Children")
		for _, tp := range r.Tuples() {
			if tp.Get("Children.ID").Equal(value.String("004")) {
				c.AddValues(
					tp.Get("Children.ID"), tp.Get("Children.name"), tp.Get("Children.age"),
					value.Null, value.Int(103), tp.Get("Children.docid"))
			} else {
				c.Add(tp)
			}
		}
		in.MustAdd(c)
	}
	return in
}

func TestExample62SecondCorrespondenceReuse(t *testing.T) {
	// Example 6.2: a second correspondence for an already-mapped field
	// confirms the current mapping and spawns alternatives that reuse
	// the other correspondences.
	tl := newTool(t)
	_ = tl.Start("kids")
	if err := tl.AddCorrespondence(context.Background(), core.Identity("Children.ID", schema.Col("Kids", "ID"))); err != nil {
		t.Fatal(err)
	}
	if err := tl.AddCorrespondence(context.Background(), core.Identity("Children.name", schema.Col("Kids", "name"))); err != nil {
		t.Fatal(err)
	}
	// First computation of affiliation: mother's (pick the mid one).
	if err := tl.AddCorrespondence(context.Background(), core.Identity("Parents.affiliation", schema.Col("Kids", "affiliation"))); err != nil {
		t.Fatal(err)
	}
	for _, w := range tl.Workspaces() {
		if e, ok := w.Mapping.Graph.EdgeBetween("Children", "Parents"); ok && strings.Contains(e.Label(), "mid") {
			_ = tl.Use(w.ID)
		}
	}
	_ = tl.Confirm()
	// Second correspondence for the same attribute: salary-based
	// (nonsense semantically, but structurally a second computation).
	c := core.FromExpr(expr.MustParse("upper(Parents.affiliation)"), schema.Col("Kids", "affiliation"))
	if err := tl.AddCorrespondence(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	// The first mapping is accepted; the new alternatives reuse ID and
	// name correspondences.
	if len(tl.Accepted()) < 2 {
		t.Fatalf("accepted = %d, want the first affiliation mapping accepted", len(tl.Accepted()))
	}
	act := tl.Active()
	if _, ok := act.Mapping.CorrFor("ID"); !ok {
		t.Error("new alternative should reuse the ID correspondence")
	}
	if _, ok := act.Mapping.CorrFor("name"); !ok {
		t.Error("new alternative should reuse the name correspondence")
	}
	c2, ok := act.Mapping.CorrFor("affiliation")
	if !ok || !strings.Contains(c2.Expr.String(), "upper") {
		t.Errorf("new alternative should carry the new correspondence: %v", c2)
	}
}

func TestRankWorkspaces(t *testing.T) {
	tl := newTool(t)
	_ = tl.Start("m")
	_ = tl.AddCorrespondence(context.Background(), core.Identity("Children.ID", schema.Col("Kids", "ID")))
	_ = tl.AddCorrespondence(context.Background(), core.Identity("Parents.affiliation", schema.Col("Kids", "affiliation")))
	ws := tl.Workspaces()
	if len(ws) < 2 {
		t.Skip("need 2 workspaces")
	}
	// Scramble ranks and re-sort.
	ws[0].Rank, ws[1].Rank = 5, 1
	act := tl.Active()
	tl.RankWorkspaces()
	if tl.Workspaces()[0].Rank != 1 {
		t.Error("RankWorkspaces did not sort")
	}
	if tl.Active() != act {
		t.Error("active workspace should be preserved")
	}
}

func TestFilterOperators(t *testing.T) {
	tl := newTool(t)
	_ = tl.Start("m")
	_ = tl.AddCorrespondence(context.Background(), core.Identity("Children.ID", schema.Col("Kids", "ID")))
	if err := tl.AddSourceFilter(context.Background(), expr.MustParse("Children.age < 7")); err != nil {
		t.Fatal(err)
	}
	if err := tl.AddTargetFilter(context.Background(), expr.MustParse("Kids.ID IS NOT NULL")); err != nil {
		t.Fatal(err)
	}
	m := tl.Active().Mapping
	if len(m.SourceFilters) != 1 || len(m.TargetFilters) != 1 {
		t.Error("filters not applied")
	}
	view, err := tl.TargetView(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if view.Len() != 2 { // Maya (6) and Bo (5)
		t.Errorf("filtered view = %d rows, want 2:\n%v", view.Len(), view)
	}
	// Errors without an active workspace.
	tl2 := newTool(t)
	if err := tl2.AddSourceFilter(context.Background(), expr.MustParse("TRUE")); err == nil {
		t.Error("no active workspace should fail")
	}
	if err := tl2.AddTargetFilter(context.Background(), expr.MustParse("TRUE")); err == nil {
		t.Error("no active workspace should fail")
	}
	if err := tl2.Walk(context.Background(), "A", "B"); err == nil {
		t.Error("walk with no active workspace should fail")
	}
	if err := tl2.Chase(context.Background(), "A.x", value.Int(1)); err == nil {
		t.Error("chase with no active workspace should fail")
	}
	if err := tl2.AddCorrespondence(context.Background(), core.Identity("Children.ID", schema.Col("Kids", "ID"))); err == nil {
		t.Error("correspondence with no active workspace should fail")
	}
}

func TestWalkAndChaseFailures(t *testing.T) {
	tl := newTool(t)
	_ = tl.Start("m")
	_ = tl.AddCorrespondence(context.Background(), core.Identity("Children.ID", schema.Col("Kids", "ID")))
	if err := tl.Walk(context.Background(), "Children", "Nowhere"); err == nil {
		t.Error("walk to unknown relation should fail")
	}
	if err := tl.Chase(context.Background(), "Children.ID", value.String("no-such-value")); err == nil {
		t.Error("chase of absent value should fail")
	}
}

func TestCompare(t *testing.T) {
	tl := newTool(t)
	_ = tl.Start("m")
	_ = tl.AddCorrespondence(context.Background(), core.Identity("Children.ID", schema.Col("Kids", "ID")))
	if err := tl.AddCorrespondence(context.Background(), core.Identity("Parents.affiliation", schema.Col("Kids", "affiliation"))); err != nil {
		t.Fatal(err)
	}
	ws := tl.Workspaces()
	if len(ws) != 2 {
		t.Fatalf("need 2 workspaces, got %d", len(ws))
	}
	out, err := tl.Compare(context.Background(), ws[0].ID, ws[1].ID, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"structural differences", "edge", "produced only by"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
	// Comparing a workspace with itself: identical.
	same, err := tl.Compare(context.Background(), ws[0].ID, ws[0].ID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(same, "identical") {
		t.Errorf("self-compare should be identical:\n%s", same)
	}
	if _, err := tl.Compare(context.Background(), 999, ws[0].ID, 3); err == nil {
		t.Error("unknown workspace should fail")
	}
	if _, err := tl.Compare(context.Background(), ws[0].ID, 999, 3); err == nil {
		t.Error("unknown workspace should fail")
	}
}

func TestCoverageSummary(t *testing.T) {
	tl := newTool(t)
	_ = tl.Start("m")
	_ = tl.AddCorrespondence(context.Background(), core.Identity("Children.ID", schema.Col("Kids", "ID")))
	if err := tl.AddCorrespondence(context.Background(), core.Identity("Parents.affiliation", schema.Col("Kids", "affiliation"))); err != nil {
		t.Fatal(err)
	}
	out, err := tl.CoverageSummary(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "coverage categories") || !strings.Contains(out, "Children+Parents") {
		t.Errorf("summary wrong:\n%s", out)
	}
	empty := newTool(t)
	if _, err := empty.CoverageSummary(context.Background()); err == nil {
		t.Error("no active workspace should fail")
	}
}

func TestTargetStatus(t *testing.T) {
	tl := newTool(t)
	_ = tl.Start("m")
	_ = tl.AddCorrespondence(context.Background(), core.Identity("Children.ID", schema.Col("Kids", "ID")))
	s := tl.TargetStatus()
	if !strings.Contains(s, "ID") || !strings.Contains(s, "mapped by m") {
		t.Errorf("status wrong:\n%s", s)
	}
	if !strings.Contains(s, "UNMAPPED") {
		t.Errorf("unmapped attrs should show:\n%s", s)
	}
}

func TestUndo(t *testing.T) {
	tl := newTool(t)
	if err := tl.Undo(); err == nil {
		t.Error("fresh tool has nothing to undo")
	}
	_ = tl.Start("m")
	_ = tl.AddCorrespondence(context.Background(), core.Identity("Children.ID", schema.Col("Kids", "ID")))
	if err := tl.AddCorrespondence(context.Background(), core.Identity("Parents.affiliation", schema.Col("Kids", "affiliation"))); err != nil {
		t.Fatal(err)
	}
	if len(tl.Workspaces()) != 2 {
		t.Fatalf("want 2 scenario workspaces")
	}
	// Undo the affiliation correspondence: back to the single ID-only
	// workspace.
	if err := tl.Undo(); err != nil {
		t.Fatal(err)
	}
	if len(tl.Workspaces()) != 1 {
		t.Fatalf("after undo: %d workspaces", len(tl.Workspaces()))
	}
	if _, ok := tl.Active().Mapping.CorrFor("affiliation"); ok {
		t.Error("undo should drop the affiliation correspondence")
	}
	if _, ok := tl.Active().Mapping.CorrFor("ID"); !ok {
		t.Error("undo went too far")
	}
	// Undo a filter application.
	_ = tl.AddSourceFilter(context.Background(), expr.MustParse("Children.age < 7"))
	if len(tl.Active().Mapping.SourceFilters) != 1 {
		t.Fatal("filter not applied")
	}
	if err := tl.Undo(); err != nil {
		t.Fatal(err)
	}
	if len(tl.Active().Mapping.SourceFilters) != 0 {
		t.Error("undo should drop the filter")
	}
	// Undo a confirm.
	_ = tl.Confirm()
	if len(tl.Accepted()) != 1 {
		t.Fatal("confirm failed")
	}
	if err := tl.Undo(); err != nil {
		t.Fatal(err)
	}
	if len(tl.Accepted()) != 0 {
		t.Error("undo should retract acceptance")
	}
}

func TestWorkspaceDGCacheConsistency(t *testing.T) {
	// The cached D(G) maintained incrementally across operators must
	// always equal a from-scratch computation.
	tl := newTool(t)
	_ = tl.Start("m")
	check := func(stage string) {
		t.Helper()
		w := tl.Active()
		if w == nil || w.Mapping.Graph.NodeCount() == 0 {
			return
		}
		if w.dg == nil {
			t.Fatalf("%s: no cached D(G)", stage)
		}
		ref, err := fd.Compute(context.Background(), w.Mapping.Graph, tl.Instance)
		if err != nil {
			t.Fatal(err)
		}
		if !w.dg.EqualSet(ref) {
			t.Fatalf("%s: cached D(G) diverged (%d vs %d rows)", stage, w.dg.Len(), ref.Len())
		}
	}
	_ = tl.AddCorrespondence(context.Background(), core.Identity("Children.ID", schema.Col("Kids", "ID")))
	check("after first correspondence")
	_ = tl.AddCorrespondence(context.Background(), core.Identity("Parents.affiliation", schema.Col("Kids", "affiliation")))
	check("after affiliation walk")
	_ = tl.Confirm()
	_ = tl.Walk(context.Background(), "Children", "PhoneDir")
	check("after phone walk")
	for _, w := range tl.Workspaces() {
		if w.Mapping.Graph.HasNode("Parents2") {
			_ = tl.Use(w.ID)
		}
	}
	check("after selecting mother scenario")
	_ = tl.Chase(context.Background(), "Children.ID", value.String("002"))
	check("after chase")
	_ = tl.AddSourceFilter(context.Background(), expr.MustParse("Children.age < 9"))
	check("after filter")
}

func TestRotateSingleAndMaxWalkLen(t *testing.T) {
	tl := newTool(t)
	_ = tl.Start("m")
	act := tl.Active()
	tl.Rotate() // single workspace: no-op
	if tl.Active() != act {
		t.Error("rotate with one workspace should be a no-op")
	}
	// A walk length bound of 1 cannot reach PhoneDir (two hops away).
	_ = tl.AddCorrespondence(context.Background(), core.Identity("Children.ID", schema.Col("Kids", "ID")))
	tl.MaxWalkLen = 1
	if err := tl.Walk(context.Background(), "Children", "PhoneDir"); err == nil {
		t.Error("bounded walk should find no path")
	}
	tl.MaxWalkLen = 3
	if err := tl.Walk(context.Background(), "Children", "PhoneDir"); err != nil {
		t.Errorf("walk at bound 3 should work: %v", err)
	}
}
