package workspace

import (
	"encoding/json"
	"fmt"

	"clio/internal/core"
	"clio/internal/relation"
	"clio/internal/value"
)

// Tool state serialization: ToolState captures everything a Tool
// accumulated since its construction — workspaces with their mappings
// and illustrations, the accepted set, the undo history, and the op
// log — in a JSON-stable form. A serving layer embeds it in journal
// "snapshot" records so replay cost is bounded by ops since the last
// snapshot instead of total session history.
//
// The source instance, join knowledge, and value index are NOT part of
// the state: they belong to session creation (and any replayed row
// ops), which the owner re-executes before calling RestoreState. That
// mirrors a live session exactly: knowledge and index are built once
// at construction and do not chase later row inserts.

// ToolState is the serializable canonical state of a Tool.
type ToolState struct {
	MaxWalkLen int               `json:"maxWalkLen"`
	Workspaces []WorkspaceState  `json:"workspaces,omitempty"`
	Active     int               `json:"active"`
	Accepted   []json.RawMessage `json:"accepted,omitempty"`
	NextID     int               `json:"nextId"`
	History    []HistoryState    `json:"history,omitempty"`
	OpSeq      int               `json:"opSeq"`
	OpLog      []OpRecord        `json:"opLog,omitempty"`
}

// WorkspaceState serializes one workspace. The mapping uses the stable
// core mapping JSON document. The cached D(G) is carried verbatim: it
// is maintained incrementally across walk/chase steps and row edits
// (fd.MaintainRows keeps the active workspace's D(G) continuously
// current), so carrying it avoids a recomputation on restore. The
// delta-maintainable form (Workspace.dgm) is NOT serialized: the first
// edit after a restore rebuilds it, and because Materialized.Rel() is
// canonical (key-sorted) the restored session still renders the same
// view byte for byte.
type WorkspaceState struct {
	ID           int               `json:"id"`
	Mapping      json.RawMessage   `json:"mapping"`
	Illustration IllustrationState `json:"illustration"`
	DG           *DGState          `json:"dg,omitempty"`
	Note         string            `json:"note,omitempty"`
	Rank         int               `json:"rank"`
}

// DGState serializes a materialized D(G) relation: one shared scheme
// and the tuples in relation order.
type DGState struct {
	Name   string         `json:"name"`
	Scheme []string       `json:"scheme"`
	Rows   [][]ValueState `json:"rows,omitempty"`
}

// HistoryState serializes one undo snapshot.
type HistoryState struct {
	Workspaces []WorkspaceState  `json:"workspaces,omitempty"`
	Active     int               `json:"active"`
	Accepted   []json.RawMessage `json:"accepted,omitempty"`
}

// IllustrationState serializes an illustration's example set. The
// illustration's mapping pointer is rewired to the owning workspace's
// mapping on restore.
type IllustrationState struct {
	Examples []ExampleState `json:"examples,omitempty"`
}

// ExampleState serializes one example with exact tuple round-trips.
type ExampleState struct {
	AssocScheme  []string     `json:"assocScheme,omitempty"`
	Assoc        []ValueState `json:"assoc,omitempty"`
	TargetScheme []string     `json:"targetScheme,omitempty"`
	Target       []ValueState `json:"target,omitempty"`
	Positive     bool         `json:"positive"`
	Coverage     []string     `json:"coverage,omitempty"`
	Inherited    bool         `json:"inherited,omitempty"`
}

// ValueState serializes a typed value with an explicit kind tag, so
// restore is exact — unlike value.Parse, which applies heuristics
// (e.g. leading-zero strings stay strings) meant for untyped CSV text.
type ValueState struct {
	Kind string  `json:"k"`
	S    string  `json:"s,omitempty"`
	I    int64   `json:"i,omitempty"`
	F    float64 `json:"f,omitempty"`
	B    bool    `json:"b,omitempty"`
}

func valueState(v value.Value) ValueState {
	switch v.Kind() {
	case value.KindString:
		return ValueState{Kind: "s", S: v.Str()}
	case value.KindInt:
		return ValueState{Kind: "i", I: v.IntVal()}
	case value.KindFloat:
		return ValueState{Kind: "f", F: v.FloatVal()}
	case value.KindBool:
		return ValueState{Kind: "b", B: v.BoolVal()}
	default:
		return ValueState{Kind: "n"}
	}
}

func (vs ValueState) value() (value.Value, error) {
	switch vs.Kind {
	case "s":
		return value.String(vs.S), nil
	case "i":
		return value.Int(vs.I), nil
	case "f":
		return value.Float(vs.F), nil
	case "b":
		return value.Bool(vs.B), nil
	case "n", "":
		return value.Null, nil
	}
	return value.Null, fmt.Errorf("workspace: unknown value kind %q", vs.Kind)
}

func tupleState(t relation.Tuple) (names []string, vals []ValueState) {
	s := t.Scheme()
	if s == nil {
		return nil, nil
	}
	names = append(names, s.Names()...)
	for i := 0; i < s.Arity(); i++ {
		vals = append(vals, valueState(t.At(i)))
	}
	return names, vals
}

func restoreTuple(names []string, vals []ValueState) (relation.Tuple, error) {
	if len(names) != len(vals) {
		return relation.Tuple{}, fmt.Errorf("workspace: tuple state arity mismatch (%d names, %d values)", len(names), len(vals))
	}
	if len(names) == 0 {
		return relation.Tuple{}, nil
	}
	vv := make([]value.Value, len(vals))
	for i, vs := range vals {
		v, err := vs.value()
		if err != nil {
			return relation.Tuple{}, err
		}
		vv[i] = v
	}
	return relation.NewTuple(relation.NewScheme(names...), vv...), nil
}

func dgState(r *relation.Relation) *DGState {
	if r == nil {
		return nil
	}
	st := &DGState{Name: r.Name, Scheme: r.Scheme().Names()}
	for _, t := range r.Tuples() {
		row := make([]ValueState, 0, len(st.Scheme))
		for i := range st.Scheme {
			row = append(row, valueState(t.At(i)))
		}
		st.Rows = append(st.Rows, row)
	}
	return st
}

func restoreDG(st *DGState) (*relation.Relation, error) {
	if st == nil {
		return nil, nil
	}
	sch := relation.NewScheme(st.Scheme...)
	r := relation.New(st.Name, sch)
	for _, row := range st.Rows {
		if len(row) != len(st.Scheme) {
			return nil, fmt.Errorf("workspace: D(G) state arity mismatch (%d columns, %d values)", len(st.Scheme), len(row))
		}
		vv := make([]value.Value, len(row))
		for i, vs := range row {
			v, err := vs.value()
			if err != nil {
				return nil, err
			}
			vv[i] = v
		}
		r.Add(relation.NewTuple(sch, vv...))
	}
	return r, nil
}

func illustrationState(il core.Illustration) IllustrationState {
	st := IllustrationState{}
	for _, ex := range il.Examples {
		es := ExampleState{Positive: ex.Positive, Inherited: ex.Inherited}
		es.AssocScheme, es.Assoc = tupleState(ex.Assoc)
		es.TargetScheme, es.Target = tupleState(ex.Target)
		es.Coverage = append(es.Coverage, ex.Coverage...)
		st.Examples = append(st.Examples, es)
	}
	return st
}

func restoreIllustration(st IllustrationState, m *core.Mapping) (core.Illustration, error) {
	il := core.Illustration{Mapping: m}
	for _, es := range st.Examples {
		assoc, err := restoreTuple(es.AssocScheme, es.Assoc)
		if err != nil {
			return il, err
		}
		target, err := restoreTuple(es.TargetScheme, es.Target)
		if err != nil {
			return il, err
		}
		il.Examples = append(il.Examples, core.Example{
			Assoc:     assoc,
			Target:    target,
			Positive:  es.Positive,
			Coverage:  append([]string(nil), es.Coverage...),
			Inherited: es.Inherited,
		})
	}
	return il, nil
}

func (t *Tool) workspaceState(w *Workspace) (WorkspaceState, error) {
	doc, err := json.Marshal(w.Mapping)
	if err != nil {
		return WorkspaceState{}, err
	}
	return WorkspaceState{
		ID:           w.ID,
		Mapping:      doc,
		Illustration: illustrationState(w.Illustration),
		DG:           dgState(w.dg),
		Note:         w.Note,
		Rank:         w.Rank,
	}, nil
}

// restoreMapping parses a mapping document, re-pointing the parsed
// target at the tool's own target relation when they agree (the JSON
// form keeps only attribute names, not declared types).
func (t *Tool) restoreMapping(doc json.RawMessage) (*core.Mapping, error) {
	m, err := core.UnmarshalMapping(doc)
	if err != nil {
		return nil, err
	}
	if t.Target != nil && m.Target.String() == t.Target.String() {
		m.Target = t.Target
	}
	return m, nil
}

func (t *Tool) restoreWorkspace(st WorkspaceState) (*Workspace, error) {
	m, err := t.restoreMapping(st.Mapping)
	if err != nil {
		return nil, err
	}
	il, err := restoreIllustration(st.Illustration, m)
	if err != nil {
		return nil, err
	}
	dg, err := restoreDG(st.DG)
	if err != nil {
		return nil, err
	}
	return &Workspace{ID: st.ID, Mapping: m, Illustration: il, dg: dg, Note: st.Note, Rank: st.Rank}, nil
}

func (t *Tool) snapshotState(snap snapshot) (HistoryState, error) {
	hs := HistoryState{Active: snap.active}
	for _, w := range snap.workspaces {
		ws, err := t.workspaceState(w)
		if err != nil {
			return hs, err
		}
		hs.Workspaces = append(hs.Workspaces, ws)
	}
	for _, m := range snap.accepted {
		doc, err := json.Marshal(m)
		if err != nil {
			return hs, err
		}
		hs.Accepted = append(hs.Accepted, doc)
	}
	return hs, nil
}

func (t *Tool) restoreSnapshot(hs HistoryState) (snapshot, error) {
	snap := snapshot{active: hs.Active}
	for _, ws := range hs.Workspaces {
		w, err := t.restoreWorkspace(ws)
		if err != nil {
			return snap, err
		}
		snap.workspaces = append(snap.workspaces, w)
	}
	for _, doc := range hs.Accepted {
		m, err := t.restoreMapping(doc)
		if err != nil {
			return snap, err
		}
		snap.accepted = append(snap.accepted, m)
	}
	return snap, nil
}

// SnapshotState captures the tool's complete session state in a
// serializable form. The instance, knowledge, and index are excluded;
// see the package comment above.
func (t *Tool) SnapshotState() (ToolState, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := ToolState{
		MaxWalkLen: t.MaxWalkLen,
		Active:     t.active,
		NextID:     t.nextID,
		OpSeq:      t.opSeq,
		OpLog:      append([]OpRecord(nil), t.opLog...),
	}
	cur, err := t.snapshotState(snapshot{workspaces: t.workspaces, active: t.active, accepted: t.accepted})
	if err != nil {
		return ToolState{}, err
	}
	st.Workspaces, st.Accepted = cur.Workspaces, cur.Accepted
	for _, snap := range t.history {
		hs, err := t.snapshotState(snap)
		if err != nil {
			return ToolState{}, err
		}
		st.History = append(st.History, hs)
	}
	return st, nil
}

// RestoreState replaces the tool's session state with a previously
// captured ToolState. The tool must already have its instance,
// knowledge, index, and target (i.e. the owner re-ran session creation
// and any row inserts first).
func (t *Tool) RestoreState(st ToolState) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, err := t.restoreSnapshot(HistoryState{Workspaces: st.Workspaces, Active: st.Active, Accepted: st.Accepted})
	if err != nil {
		return err
	}
	var history []snapshot
	for _, hs := range st.History {
		snap, err := t.restoreSnapshot(hs)
		if err != nil {
			return err
		}
		history = append(history, snap)
	}
	if st.MaxWalkLen > 0 {
		t.MaxWalkLen = st.MaxWalkLen
	}
	t.workspaces = cur.workspaces
	t.active = cur.active
	t.accepted = cur.accepted
	t.history = history
	t.nextID = st.NextID
	t.opSeq = st.OpSeq
	t.opLog = append([]OpRecord(nil), st.OpLog...)
	return nil
}
