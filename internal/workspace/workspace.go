// Package workspace implements Clio's mapping framework (Section 6):
// a set of workspaces each holding one alternative mapping with its
// illustration, an active workspace, ranking of alternatives, mapping
// confirmation with reuse of earlier decisions, and the WYSIWYG target
// view that always reflects the active mapping (plus every previously
// accepted mapping, since a target relation may be populated by many
// mappings, Section 6.2).
package workspace

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"clio/internal/core"
	"clio/internal/discovery"
	"clio/internal/expr"
	"clio/internal/fd"
	"clio/internal/obs"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// Workspace holds one alternative mapping and its current
// illustration.
type Workspace struct {
	ID           int
	Mapping      *core.Mapping
	Illustration core.Illustration
	// Note describes how this alternative arose (walk path, chase
	// edge, ...), used when ranking ties and for display.
	Note string
	// Rank is the position the generating operator assigned (0 is the
	// most likely alternative).
	Rank int
	// dg caches the mapping's D(G); maintained incrementally across
	// walk/chase steps (fd.ExtendLeaf) and row edits (fd.MaintainRows),
	// and reused by TargetView.
	dg *relation.Relation
	// dgm is the delta-maintainable form of dg (full subsumption state,
	// not just the maximal front), built lazily on the first row edit
	// and kept by successful maintenance. Never serialized: a restored
	// session rebuilds it on its next edit, which renders identically
	// because Materialized.Rel() is canonical.
	dgm *fd.Materialized
}

// Tool is one Clio session: the source instance, its join knowledge
// and value index, the target relation, the workspaces, and the
// accepted mappings.
type Tool struct {
	Instance  *relation.Instance
	Knowledge *discovery.Knowledge
	Index     *discovery.ValueIndex
	Target    *schema.Relation

	// MaxWalkLen bounds walk path enumeration (default 3).
	MaxWalkLen int

	// mu guards every field below. Public methods lock it, so one
	// Tool can be shared by concurrent callers (e.g. the serve layer);
	// unexported *Locked variants exist for internal cross-calls.
	// Returned workspaces and mappings are read-only snapshots.
	mu         sync.Mutex
	workspaces []*Workspace
	active     int // index into workspaces, -1 when none
	accepted   []*core.Mapping
	nextID     int
	// history remembers previous workspace sets so operators can be
	// undone (the paper's "old workspaces could be remembered to make
	// backing out changes more efficient").
	history []snapshot
	// opLog records the operators applied this session (see oplog.go).
	opLog []OpRecord
	opSeq int
}

// snapshot preserves one workspace-set state for Undo.
type snapshot struct {
	workspaces []*Workspace
	active     int
	accepted   []*core.Mapping
}

// New creates a tool for the instance and target. Join knowledge
// combines declared foreign keys with mined inclusion dependencies
// when mineINDs is set.
func New(ctx context.Context, in *relation.Instance, target *schema.Relation, mineINDs bool) *Tool {
	ctx, span := obs.StartSpan(ctx, "workspace.new")
	defer span.End()
	return &Tool{
		Instance:   in,
		Knowledge:  discovery.BuildKnowledge(ctx, in, mineINDs, 1),
		Index:      discovery.BuildValueIndex(ctx, in),
		Target:     target,
		MaxWalkLen: 3,
		active:     -1,
		nextID:     1,
	}
}

// Active returns the active workspace, or nil.
func (t *Tool) Active() *Workspace {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.activeLocked()
}

// activeLocked is Active for callers already holding t.mu.
func (t *Tool) activeLocked() *Workspace {
	if t.active < 0 || t.active >= len(t.workspaces) {
		return nil
	}
	return t.workspaces[t.active]
}

// Workspaces returns the current workspaces in rank order.
func (t *Tool) Workspaces() []*Workspace {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Workspace(nil), t.workspaces...)
}

// Accepted returns the confirmed mappings.
func (t *Tool) Accepted() []*core.Mapping {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*core.Mapping(nil), t.accepted...)
}

// newWorkspace wraps a mapping, computing its illustration: evolved
// from the previous active illustration when one exists (continuity,
// Section 5.3), otherwise a fresh sufficient illustration. The
// previous workspace's cached D(G) seeds incremental maintenance.
func (t *Tool) newWorkspace(ctx context.Context, m *core.Mapping, note string, rank int) (*Workspace, error) {
	ctx, span := obs.StartSpan(ctx, "workspace.new_workspace")
	defer span.End()
	span.SetStr("mapping", m.Name)
	dg, err := t.dgFor(ctx, m)
	if err != nil {
		return nil, err
	}
	var il core.Illustration
	if prev := t.activeLocked(); prev != nil && len(prev.Illustration.Examples) > 0 {
		ev, err := core.EvolveOnDG(ctx, prev.Illustration, m, t.Instance, dg)
		if err == nil {
			il = ev.Illustration
		} else {
			// Non-extending change (e.g. a fresh start): fall back.
			full, err := core.ExamplesOn(ctx, m, t.Instance, dg)
			if err != nil {
				return nil, err
			}
			il = core.SelectSufficient(ctx, m, full)
		}
	} else {
		full, err := core.ExamplesOn(ctx, m, t.Instance, dg)
		if err != nil {
			return nil, err
		}
		il = core.SelectSufficient(ctx, m, full)
	}
	w := &Workspace{ID: t.nextID, Mapping: m, Illustration: il, Note: note, Rank: rank, dg: dg}
	t.nextID++
	return w, nil
}

// dgFor computes a mapping's D(G), incrementally from the active
// workspace's cache when the graph is a single-leaf extension.
func (t *Tool) dgFor(ctx context.Context, m *core.Mapping) (*relation.Relation, error) {
	if m.Graph.NodeCount() == 0 {
		return relation.New("D(G)", relation.NewScheme()), nil
	}
	if prev := t.activeLocked(); prev != nil && prev.dg != nil && prev.Mapping.Graph.NodeCount() > 0 {
		return fd.ComputeIncremental(ctx, prev.dg, prev.Mapping.Graph, m.Graph, t.Instance)
	}
	return fd.Compute(ctx, m.Graph, t.Instance)
}

// pushHistory remembers the current state for Undo. History is capped
// to the last 32 states.
func (t *Tool) pushHistory() {
	snap := snapshot{
		workspaces: append([]*Workspace(nil), t.workspaces...),
		active:     t.active,
		accepted:   append([]*core.Mapping(nil), t.accepted...),
	}
	t.history = append(t.history, snap)
	if len(t.history) > 32 {
		t.history = t.history[len(t.history)-32:]
	}
}

// beginTxLocked snapshots the mutable workspace-set state and returns
// a restore func. Multi-step operators (AddCorrespondence's reuse path
// confirms, then computes alternatives) call it up front and restore
// wholesale when a later step fails, so an error can never leave a
// half-applied state — e.g. a confirm that stuck without its
// alternatives.
func (t *Tool) beginTxLocked() func() {
	ws := append([]*Workspace(nil), t.workspaces...)
	active := t.active
	accepted := append([]*core.Mapping(nil), t.accepted...)
	hist := len(t.history)
	return func() {
		t.workspaces = ws
		t.active = active
		t.accepted = accepted
		if len(t.history) > hist {
			t.history = t.history[:hist]
		}
	}
}

// Undo restores the workspace set as it was before the last mutating
// operator (correspondence, walk, chase, filter, confirm). It fails
// when there is nothing to undo.
func (t *Tool) Undo() (err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	defer func(start time.Time) { t.logOp(nil, "undo", "", start, err) }(time.Now())
	if len(t.history) == 0 {
		return fmt.Errorf("workspace: nothing to undo")
	}
	snap := t.history[len(t.history)-1]
	t.history = t.history[:len(t.history)-1]
	t.workspaces = snap.workspaces
	t.active = snap.active
	t.accepted = snap.accepted
	return nil
}

// setAlternatives replaces the current workspaces with the given
// alternatives (already ranked) and activates the first, with t.mu
// held by the caller — the paper's
// behaviour after a walk or chase: "new workspaces are created (one of
// which is chosen as the new active workspace), and the old workspaces
// are discarded" (but remembered in history for Undo).
func (t *Tool) setAlternatives(ctx context.Context, ms []*core.Mapping, notes []string) error {
	var ws []*Workspace
	for i, m := range ms {
		note := ""
		if i < len(notes) {
			note = notes[i]
		}
		w, err := t.newWorkspace(ctx, m, note, i)
		if err != nil {
			return err
		}
		ws = append(ws, w)
	}
	t.pushHistory()
	t.workspaces = ws
	if len(ws) > 0 {
		t.active = 0
	} else {
		t.active = -1
	}
	return nil
}

// Start opens the first workspace around an empty mapping.
func (t *Tool) Start(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	defer func(start time.Time) { t.logOp(nil, "start", name, start, nil) }(time.Now())
	m := core.NewMapping(name, t.Target)
	w := &Workspace{ID: t.nextID, Mapping: m, Note: "empty mapping"}
	t.nextID++
	t.workspaces = []*Workspace{w}
	t.active = 0
	return nil
}

// Use activates the workspace with the given ID.
func (t *Tool) Use(id int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, w := range t.workspaces {
		if w.ID == id {
			t.active = i
			return nil
		}
	}
	return fmt.Errorf("workspace: no workspace %d", id)
}

// Rotate activates the next workspace (cyclically).
func (t *Tool) Rotate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.workspaces) > 1 {
		t.active = (t.active + 1) % len(t.workspaces)
	}
}

// Delete removes a workspace ("if the user wishes to eliminate an
// alternative, she can delete the associated workspace").
func (t *Tool) Delete(id int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, w := range t.workspaces {
		if w.ID != id {
			continue
		}
		t.workspaces = append(t.workspaces[:i], t.workspaces[i+1:]...)
		switch {
		case len(t.workspaces) == 0:
			t.active = -1
		case t.active >= len(t.workspaces):
			t.active = len(t.workspaces) - 1
		case t.active > i:
			t.active--
		}
		return nil
	}
	return fmt.Errorf("workspace: no workspace %d", id)
}

// Confirm accepts the active workspace's mapping as correct (so far):
// the mapping joins the accepted set and all alternative workspaces
// are deleted, leaving the confirmed one active.
func (t *Tool) Confirm() (err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.confirmLocked()
}

// confirmLocked is Confirm for callers already holding t.mu.
func (t *Tool) confirmLocked() (err error) {
	defer func(start time.Time) { t.logOp(nil, "confirm", "", start, err) }(time.Now())
	w := t.activeLocked()
	if w == nil {
		return fmt.Errorf("workspace: nothing to confirm")
	}
	t.pushHistory()
	t.accepted = append(t.accepted, w.Mapping.Clone())
	t.workspaces = []*Workspace{w}
	t.active = 0
	return nil
}

// TargetView evaluates the WYSIWYG target: the union of every accepted
// mapping's result and the active mapping's result (Sections 6.1–6.2).
func (t *Tool) TargetView(ctx context.Context) (*relation.Relation, error) {
	ctx, span := obs.StartSpan(ctx, "workspace.target_view")
	defer span.End()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := relation.New(t.Target.Name, relation.SchemeFor(t.Target))
	add := func(m *core.Mapping) error {
		if m.Graph.NodeCount() == 0 {
			return nil
		}
		dg, err := m.DG(ctx, t.Instance)
		if err != nil {
			return err
		}
		for _, tp := range m.EvaluateOn(dg).Tuples() {
			out.Add(tp)
		}
		return nil
	}
	seen := map[string]bool{}
	for _, m := range t.accepted {
		sig := m.String()
		if seen[sig] {
			continue
		}
		seen[sig] = true
		if err := add(m); err != nil {
			return nil, err
		}
	}
	if w := t.activeLocked(); w != nil && !seen[w.Mapping.String()] {
		if w.dg != nil && w.Mapping.Graph.NodeCount() > 0 {
			// Reuse the cached D(G).
			for _, tp := range w.Mapping.EvaluateOn(w.dg).Tuples() {
				out.Add(tp)
			}
		} else if err := add(w.Mapping); err != nil {
			return nil, err
		}
	}
	res := out.Distinct()
	span.SetInt("tuples", int64(res.Len()))
	return res, nil
}

// ApplyRows inserts (del=false) or deletes (del=true) one row of a
// source relation and maintains the active workspace's D(G),
// illustration, and target view continuously: the paper's WYSIWYG
// claim applied to data edits, in O(delta) via fd.MaintainRows rather
// than O(instance). A delete removes the first row equal to the given
// values and fails if none exists. Non-active workspaces drop their
// cached D(G) (they recompute on next activation); the active one is
// delta-maintained.
//
// On a maintenance failure (budget abort, cancellation) the instance
// mutation is rolled back, so a failed edit leaves the session exactly
// as it was — the journal-replay invariant depends on ops being
// all-or-nothing.
func (t *Tool) ApplyRows(ctx context.Context, relName string, vals []value.Value, del bool) (err error) {
	ctx, span := obs.StartSpan(ctx, "workspace.rows")
	defer span.End()
	t.mu.Lock()
	defer t.mu.Unlock()
	verb := "insert"
	if del {
		verb = "delete"
	}
	defer func(start time.Time) { t.logOp(ctx, "rows", verb+" "+relName, start, err) }(time.Now())
	rel := t.Instance.Relation(relName)
	if rel == nil {
		return fmt.Errorf("workspace: no relation %q", relName)
	}
	if len(vals) != rel.Scheme().Arity() {
		return fmt.Errorf("workspace: relation %s has arity %d, got %d values",
			relName, rel.Scheme().Arity(), len(vals))
	}
	tup := relation.NewTuple(rel.Scheme(), vals...)
	removedAt := -1
	if del {
		removedAt = rel.IndexOf(tup)
		if removedAt < 0 {
			return fmt.Errorf("workspace: relation %s has no row %v", relName, tup)
		}
		rel.RemoveAt(removedAt)
	} else {
		rel.Add(tup)
	}
	if merr := t.maintainRowsLocked(ctx, relName, tup, del); merr != nil {
		// Roll back the instance mutation: the op is journaled only on
		// success, so the instance and the journal must agree.
		if del {
			rel.InsertAt(removedAt, tup)
		} else {
			rel.RemoveAt(rel.Len() - 1)
		}
		return merr
	}
	return nil
}

// maintainRowsLocked propagates one already-applied row edit into the
// active workspace's materialized D(G) and illustration. Non-active
// workspaces just drop their caches (losing a cache is safe; keeping a
// stale one is not).
func (t *Tool) maintainRowsLocked(ctx context.Context, base string, tup relation.Tuple, del bool) error {
	act := t.activeLocked()
	for _, w := range t.workspaces {
		if w != act {
			w.dg, w.dgm = nil, nil
		}
	}
	if act == nil || act.Mapping.Graph.NodeCount() == 0 || !fd.GraphReadsBase(act.Mapping.Graph, base) {
		// Nothing to maintain: no active mapping, or its graph never
		// reads the edited relation, so its D(G) is untouched.
		obs.Note(ctx, "dg_maint", "none")
		return nil
	}
	dg, mat, _, err := fd.MaintainRows(ctx, act.dgm, act.Mapping.Graph, t.Instance, base, tup, del)
	if err != nil {
		// A delta may have half-applied; the materialization is dead
		// either way. The caller rolls the instance back, so the old
		// act.dg still describes the (restored) state and stays.
		act.dgm = nil
		return err
	}
	act.dg, act.dgm = dg, mat
	// The illustration rides the new D(G): examples on unchanged
	// associations are inherited, the rest re-selected (Section 5.3
	// continuity). A failed evolution falls back to a fresh selection;
	// if even that fails, the old illustration is kept — the view is
	// already correct, the illustration merely lags one edit.
	if len(act.Illustration.Examples) > 0 {
		if ev, eerr := core.EvolveOnDG(ctx, act.Illustration, act.Mapping, t.Instance, dg); eerr == nil {
			act.Illustration = ev.Illustration
		} else if full, ferr := core.ExamplesOn(ctx, act.Mapping, t.Instance, dg); ferr == nil {
			act.Illustration = core.SelectSufficient(ctx, act.Mapping, full)
		}
	}
	return nil
}

// AddCorrespondence applies the correspondence operator to the active
// mapping. When the target attribute is already mapped, the operator
// creates alternatives that reuse the active mapping's other
// correspondences and filters (Example 6.2: a second way to compute
// the same target field); otherwise the alternatives extend the
// active mapping directly. New alternatives become the workspaces.
func (t *Tool) AddCorrespondence(ctx context.Context, c core.Correspondence) (err error) {
	ctx, span := obs.StartSpan(ctx, "workspace.add_correspondence")
	defer span.End()
	t.mu.Lock()
	defer t.mu.Unlock()
	defer func(start time.Time) { t.logOp(ctx, "correspondence", c.String(), start, err) }(time.Now())
	w := t.activeLocked()
	if w == nil {
		return fmt.Errorf("workspace: no active workspace")
	}
	base := w.Mapping
	note := "correspondence " + c.String()
	restore := t.beginTxLocked()
	if _, dup := base.CorrFor(c.Target.Attr); dup {
		// Reuse: copy everything except the existing correspondence
		// for this attribute, then accept the current mapping so the
		// target keeps its first computation.
		if err := t.confirmLocked(); err != nil {
			return err
		}
		base = base.WithoutCorrespondence(c.Target.Attr)
		base.Name = fmt.Sprintf("%s+%s", base.Name, c.Target.Attr)
		note = "alternative computation of " + c.Target.Attr
	}
	alts, err := core.AddCorrespondence(ctx, base, t.Knowledge, c, t.MaxWalkLen)
	if err != nil {
		restore()
		return err
	}
	notes := make([]string, len(alts))
	for i := range alts {
		notes[i] = fmt.Sprintf("%s (alternative %d)", note, i+1)
	}
	span.SetInt("alternatives", int64(len(alts)))
	if err := t.setAlternatives(ctx, alts, notes); err != nil {
		restore()
		return err
	}
	return nil
}

// Walk applies the data walk operator to the active mapping and
// replaces the workspaces with the ranked alternatives.
func (t *Tool) Walk(ctx context.Context, startNode, endBase string) (err error) {
	ctx, span := obs.StartSpan(ctx, "workspace.walk")
	defer span.End()
	t.mu.Lock()
	defer t.mu.Unlock()
	defer func(start time.Time) { t.logOp(ctx, "walk", startNode+" -> "+endBase, start, err) }(time.Now())
	w := t.activeLocked()
	if w == nil {
		return fmt.Errorf("workspace: no active workspace")
	}
	opts, err := core.DataWalk(ctx, w.Mapping, t.Knowledge, startNode, endBase, t.MaxWalkLen)
	if err != nil {
		return err
	}
	if len(opts) == 0 {
		return fmt.Errorf("workspace: no walk from %s to %s", startNode, endBase)
	}
	// Rank by (path length, least perturbation to the active mapping,
	// description) — the Section 6.1 heuristics.
	base := w.Mapping
	sort.SliceStable(opts, func(i, j int) bool {
		if len(opts[i].Path) != len(opts[j].Path) {
			return len(opts[i].Path) < len(opts[j].Path)
		}
		pi := core.PerturbationScore(base, opts[i].Mapping)
		pj := core.PerturbationScore(base, opts[j].Mapping)
		if pi != pj {
			return pi < pj
		}
		return opts[i].Describe() < opts[j].Describe()
	})
	ms := make([]*core.Mapping, len(opts))
	notes := make([]string, len(opts))
	for i, o := range opts {
		ms[i] = o.Mapping
		notes[i] = o.Describe()
	}
	span.SetInt("alternatives", int64(len(ms)))
	return t.setAlternatives(ctx, ms, notes)
}

// Chase applies the data chase operator to the active mapping and
// replaces the workspaces with the alternatives.
func (t *Tool) Chase(ctx context.Context, fromCol string, v value.Value) (err error) {
	ctx, span := obs.StartSpan(ctx, "workspace.chase")
	defer span.End()
	t.mu.Lock()
	defer t.mu.Unlock()
	defer func(start time.Time) { t.logOp(ctx, "chase", fmt.Sprintf("%s = %v", fromCol, v), start, err) }(time.Now())
	w := t.activeLocked()
	if w == nil {
		return fmt.Errorf("workspace: no active workspace")
	}
	opts, err := core.DataChase(ctx, w.Mapping, t.Index, fromCol, v)
	if err != nil {
		return err
	}
	if len(opts) == 0 {
		return fmt.Errorf("workspace: value %v occurs nowhere new", v)
	}
	ms := make([]*core.Mapping, len(opts))
	notes := make([]string, len(opts))
	for i, o := range opts {
		ms[i] = o.Mapping
		notes[i] = o.Describe()
	}
	span.SetInt("alternatives", int64(len(ms)))
	return t.setAlternatives(ctx, ms, notes)
}

// AddSourceFilter adds a C_S predicate to the active mapping in place
// (trimming does not change the graph; the illustration evolves).
func (t *Tool) AddSourceFilter(ctx context.Context, p expr.Expr) error {
	return t.replaceActive(ctx, func(m *core.Mapping) *core.Mapping { return m.WithSourceFilter(p) }, "source filter "+p.String())
}

// AddTargetFilter adds a C_T predicate to the active mapping in place.
func (t *Tool) AddTargetFilter(ctx context.Context, p expr.Expr) error {
	return t.replaceActive(ctx, func(m *core.Mapping) *core.Mapping { return m.WithTargetFilter(p) }, "target filter "+p.String())
}

func (t *Tool) replaceActive(ctx context.Context, f func(*core.Mapping) *core.Mapping, note string) (err error) {
	ctx, span := obs.StartSpan(ctx, "workspace.replace_active")
	defer span.End()
	t.mu.Lock()
	defer t.mu.Unlock()
	defer func(start time.Time) { t.logOp(ctx, "filter", note, start, err) }(time.Now())
	w := t.activeLocked()
	if w == nil {
		return fmt.Errorf("workspace: no active workspace")
	}
	m := f(w.Mapping)
	nw, err := t.newWorkspace(ctx, m, note, 0)
	if err != nil {
		return err
	}
	t.pushHistory()
	t.workspaces[t.active] = nw
	return nil
}

// RankWorkspaces re-sorts workspaces by (Rank, ID), keeping the active
// pointer on the same workspace.
func (t *Tool) RankWorkspaces() {
	t.mu.Lock()
	defer t.mu.Unlock()
	act := t.activeLocked()
	sort.SliceStable(t.workspaces, func(i, j int) bool {
		if t.workspaces[i].Rank != t.workspaces[j].Rank {
			return t.workspaces[i].Rank < t.workspaces[j].Rank
		}
		return t.workspaces[i].ID < t.workspaces[j].ID
	})
	for i, w := range t.workspaces {
		if w == act {
			t.active = i
		}
	}
}
