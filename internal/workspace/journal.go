package workspace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"clio/internal/fault"
	"clio/internal/obs"
)

// Crash-safe sessions: every state-changing operation a serving layer
// applies to a Tool is appended to a per-session write-ahead journal
// before the result is acknowledged. On restart the serving layer
// replays each journal through the same operation dispatcher,
// restoring every session exactly as it was.
//
// The journal is newline-delimited JSON; each line frames one record
// with a CRC32 (IEEE) of the record's canonical JSON bytes:
//
//	{"crc":3735928559,"rec":{"kind":"op","op":"walk","args":{...}}}
//
// A torn or corrupt line (a crash mid-append, disk corruption) fails
// either JSON decoding or the CRC check; readers count and skip such
// lines instead of crashing, and resuming rewrites the file from the
// surviving records so the tail is clean again.
//
// Journaling must never take a session down: every write retries with
// capped, deterministically-jittered exponential backoff, and on
// persistent failure the journal degrades to memory-only — the
// session keeps serving, the clio.journal.degraded gauge rises, and a
// warning names the session.

// Journal instrumentation.
var (
	cJournalAppends   = obs.GetCounter("clio.journal.appends")
	cJournalRetries   = obs.GetCounter("clio.journal.retries")
	cJournalCorrupt   = obs.GetCounter("clio.journal.corrupt_records")
	cJournalCompacts  = obs.GetCounter("clio.journal.compactions")
	cJournalSnapshots = obs.GetCounter("clio.journal.snapshots")
	cJournalArchived  = obs.GetCounter("clio.journal.archived")
	gJournalDegraded  = obs.GetGauge("clio.journal.degraded")
)

// JournalRecord is one durable entry: a session's creation parameters
// (kind "create"), one successful state-changing operation (kind
// "op"), or a full state snapshot (kind "snapshot") that supersedes
// every op before it. Args preserves the operation's arguments
// verbatim, so replay re-executes exactly what the client sent; for a
// snapshot it carries the owner's serialized canonical state.
type JournalRecord struct {
	Kind string          `json:"kind"`
	Op   string          `json:"op,omitempty"`
	Args json.RawMessage `json:"args,omitempty"`
}

// journalLine is the on-disk framing of one record.
type journalLine struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// JournalOptions tunes durability and compaction.
type JournalOptions struct {
	// FsyncEvery fsyncs after every Nth append (1 = every append,
	// the default; larger trades durability of the last N-1 ops for
	// throughput).
	FsyncEvery int
	// CompactEvery triggers undo-folding compaction after every Nth
	// op record. Zero (and any negative value) disables compaction;
	// owners that want the historical default must ask for 64
	// explicitly.
	CompactEvery int
	// SnapshotEvery arms snapshot-based compaction: once SnapshotDue
	// reports true (every Nth op record since the last snapshot), the
	// owner is expected to call Snapshot with its serialized state,
	// which rewrites the journal to [create, snapshot] so replay cost
	// is bounded by ops-since-last-snapshot instead of total history.
	// Zero or negative disables.
	SnapshotEvery int
	// Foldable names the ops whose single history snapshot an
	// immediately following "undo" restores; compaction cancels such
	// adjacent pairs. Ops that may snapshot more than once (e.g. a
	// correspondence that auto-confirms) must not be listed.
	Foldable []string

	// retryAttempts/retryBase override the write-retry schedule in
	// tests; zero means the defaults (4 attempts, 1ms base).
	retryAttempts int
	retryBase     time.Duration
}

func (o JournalOptions) withDefaults() JournalOptions {
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 1
	}
	if o.retryAttempts <= 0 {
		o.retryAttempts = 4
	}
	if o.retryBase <= 0 {
		o.retryBase = time.Millisecond
	}
	return o
}

// Journal is one session's write-ahead log. Methods are safe for
// concurrent use and never return errors to the caller: a journal
// that cannot write degrades to memory-only instead of failing the
// session.
type Journal struct {
	mu       sync.Mutex
	id       string
	path     string
	opts     JournalOptions
	foldable map[string]bool

	f         *os.File
	size      int64 // bytes of complete, acknowledged lines
	unsynced  int   // appends since the last fsync
	ops       int   // op records since the last compaction
	sinceSnap int   // op records since the last snapshot record
	seq       int64 // total appends, drives deterministic jitter
	degraded  bool
	recs      []JournalRecord // full surviving record list (compaction input)
}

// JournalPath returns the journal file for a session ID in dir.
func JournalPath(dir, id string) string {
	return filepath.Join(dir, id+".journal")
}

// JournalFiles lists the session IDs with a journal in dir, sorted.
func JournalFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if name := e.Name(); !e.IsDir() && strings.HasSuffix(name, ".journal") {
			ids = append(ids, strings.TrimSuffix(name, ".journal"))
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// OpenJournal starts a fresh journal for a new session, truncating any
// stale file of the same name. It always returns a usable journal; if
// the directory or file cannot be prepared the journal starts in
// degraded (memory-only) mode.
func OpenJournal(dir, id string, opts JournalOptions) *Journal {
	j := newJournal(dir, id, opts)
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.openLocked(os.O_CREATE | os.O_TRUNC | os.O_WRONLY); err != nil {
		j.degradeLocked(err)
	}
	return j
}

// ResumeJournal reattaches a journal after replay: recs are the
// records that survived ReadJournal. The file is rewritten from them,
// which both drops any corrupt tail and guarantees the next append
// starts on a clean line boundary.
func ResumeJournal(dir, id string, recs []JournalRecord, opts JournalOptions) *Journal {
	j := newJournal(dir, id, opts)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.recs = append([]JournalRecord(nil), recs...)
	for _, r := range recs {
		switch r.Kind {
		case "op":
			j.ops++
			j.sinceSnap++
		case "snapshot":
			j.sinceSnap = 0
		}
	}
	if err := j.rewriteLocked(); err != nil {
		j.degradeLocked(err)
	}
	return j
}

func newJournal(dir, id string, opts JournalOptions) *Journal {
	opts = opts.withDefaults()
	j := &Journal{
		id:       id,
		path:     JournalPath(dir, id),
		opts:     opts,
		foldable: map[string]bool{},
	}
	for _, op := range opts.Foldable {
		j.foldable[op] = true
	}
	return j
}

// Append journals one record. Errors never surface: failed writes
// retry with backoff and then degrade the journal to memory-only.
// A nil journal (journaling disabled) is a no-op.
func (j *Journal) Append(rec JournalRecord) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.recs = append(j.recs, rec)
	if rec.Kind == "op" {
		j.ops++
		j.sinceSnap++
	}
	if j.degraded {
		return
	}
	line, err := marshalLine(rec)
	if err != nil {
		j.degradeLocked(err)
		return
	}
	j.seq++
	if err := j.writeRetryLocked(line); err != nil {
		j.degradeLocked(err)
		return
	}
	cJournalAppends.Inc()
	if j.opts.CompactEvery > 0 && j.ops >= j.opts.CompactEvery {
		j.compactLocked()
	}
}

// Degraded reports whether the journal has fallen back to
// memory-only mode. Nil journals report true: nothing is durable.
func (j *Journal) Degraded() bool {
	if j == nil {
		return true
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// Path returns the journal file path ("" for a nil journal).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Close fsyncs and closes the file, keeping it on disk for replay.
func (j *Journal) Close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		_ = j.f.Sync()
		_ = j.f.Close()
		j.f = nil
	}
}

// Remove deletes the journal from disk (the session was deleted; there
// is nothing left to replay).
func (j *Journal) Remove() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		_ = j.f.Close()
		j.f = nil
	}
	_ = os.Remove(j.path)
	if j.degraded {
		j.degraded = false
		gJournalDegraded.Add(-1)
	}
}

// Records returns the number of surviving journal records (the replay
// length after a crash at this instant). Zero for a nil journal.
func (j *Journal) Records() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// SnapshotDue reports whether enough op records accumulated since the
// last snapshot that the owner should call Snapshot. Always false when
// snapshots are disabled, on a nil journal, or in degraded mode (there
// is no file left to bound).
func (j *Journal) SnapshotDue() bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.opts.SnapshotEvery > 0 && !j.degraded && j.sinceSnap >= j.opts.SnapshotEvery
}

// Snapshot rewrites the journal to its creation record followed by a
// single snapshot record carrying state (the owner's serialized
// canonical session state), discarding every op record the snapshot
// supersedes. Failure (including an injected fault at
// "journal.snapshot") leaves the journal untouched and still valid —
// replay just stays proportional to total history; it reports whether
// the snapshot took effect.
func (j *Journal) Snapshot(state json.RawMessage) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.degraded || len(j.recs) == 0 || j.recs[0].Kind != "create" {
		return false
	}
	if err := fault.Inject("journal.snapshot"); err != nil {
		return false
	}
	old, oldOps, oldSince := j.recs, j.ops, j.sinceSnap
	j.recs = []JournalRecord{old[0], {Kind: "snapshot", Args: state}}
	j.ops, j.sinceSnap = 0, 0
	if err := j.rewriteLocked(); err != nil {
		j.recs, j.ops, j.sinceSnap = old, oldOps, oldSince
		return false
	}
	cJournalSnapshots.Inc()
	return true
}

// ArchiveJournal tombstones a session's journal: the file moves from
// the live journal directory to the archive directory, out of the
// boot-time replay scan but resurrectable on demand. An injected fault
// at "journal.archive" fails the move, leaving the live journal
// intact.
func ArchiveJournal(dir, archiveDir, id string) error {
	if err := fault.Inject("journal.archive"); err != nil {
		return err
	}
	if err := os.MkdirAll(archiveDir, 0o755); err != nil {
		return err
	}
	if err := os.Rename(JournalPath(dir, id), JournalPath(archiveDir, id)); err != nil {
		return err
	}
	cJournalArchived.Inc()
	return nil
}

// UnarchiveJournal moves an archived session journal back into the
// live journal directory so it can be replayed.
func UnarchiveJournal(archiveDir, dir, id string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.Rename(JournalPath(archiveDir, id), JournalPath(dir, id))
}

// ReadJournal decodes a journal file. Lines that fail JSON decoding
// or the CRC check — a torn append from a crash, or corruption — are
// counted and skipped, never fatal. A missing file is zero records.
func ReadJournal(path string) (recs []JournalRecord, corrupt int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var line journalLine
		if json.Unmarshal(b, &line) != nil || crc32.ChecksumIEEE(line.Rec) != line.CRC {
			corrupt++
			cJournalCorrupt.Inc()
			continue
		}
		var rec JournalRecord
		if json.Unmarshal(line.Rec, &rec) != nil {
			corrupt++
			cJournalCorrupt.Inc()
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, corrupt, err
	}
	return recs, corrupt, nil
}

func marshalLine(rec JournalRecord) ([]byte, error) {
	recBytes, err := marshalNoEscape(rec)
	if err != nil {
		return nil, err
	}
	line, err := marshalNoEscape(journalLine{CRC: crc32.ChecksumIEEE(recBytes), Rec: recBytes})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// marshalNoEscape marshals without HTML escaping, so client-provided
// args (e.g. a correspondence spec "A.x -> B.y") round-trip through
// the journal byte-identically.
func marshalNoEscape(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	b := buf.Bytes()
	return b[:len(b)-1], nil // Encode appends a newline; the framing adds its own
}

func (j *Journal) openLocked(flags int) error {
	if err := os.MkdirAll(filepath.Dir(j.path), 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(j.path, flags, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	j.f = f
	j.size = st.Size()
	j.unsynced = 0
	return nil
}

// writeRetryLocked appends one framed line, fsyncing per policy, with
// capped exponential backoff. The jitter is derived from the append
// sequence number, not a clock or global RNG, so failure schedules
// are reproducible in tests.
func (j *Journal) writeRetryLocked(line []byte) error {
	var err error
	for attempt := 0; attempt < j.opts.retryAttempts; attempt++ {
		if attempt > 0 {
			cJournalRetries.Inc()
			delay := j.opts.retryBase << (attempt - 1)
			if max := 100 * time.Millisecond; delay > max {
				delay = max
			}
			jitter := time.Duration((j.seq*2654435761+int64(attempt))%512) * time.Microsecond
			time.Sleep(delay + jitter)
		}
		if err = j.writeOnceLocked(line); err == nil {
			return nil
		}
	}
	return err
}

func (j *Journal) writeOnceLocked(line []byte) error {
	if err := fault.Inject("journal.append"); err != nil {
		return err
	}
	if j.f == nil {
		if err := j.openLocked(os.O_CREATE | os.O_WRONLY); err != nil {
			return err
		}
	}
	if _, err := j.f.WriteAt(line, j.size); err != nil {
		// Drop any partial write so the retry starts on a clean
		// boundary (best effort; a reader skips a torn line anyway).
		_ = j.f.Truncate(j.size)
		return err
	}
	j.unsynced++
	if j.unsynced >= j.opts.FsyncEvery {
		if err := fault.Inject("journal.sync"); err != nil {
			return err
		}
		if err := j.f.Sync(); err != nil {
			return err
		}
		j.unsynced = 0
	}
	j.size += int64(len(line))
	return nil
}

func (j *Journal) degradeLocked(cause error) {
	if j.degraded {
		return
	}
	j.degraded = true
	gJournalDegraded.Add(1)
	if j.f != nil {
		_ = j.f.Close()
		j.f = nil
	}
	fmt.Fprintf(os.Stderr, "warn: journal %s degraded to memory-only: %v\n", j.id, cause)
}

// compactLocked folds cancelling (op, undo) pairs out of the record
// list and rewrites the file when that shrank it. Compaction failure
// is not degradation: the uncompacted file is still a valid journal.
func (j *Journal) compactLocked() {
	j.ops = 0
	folded := foldUndo(j.recs, j.foldable)
	if len(folded) == len(j.recs) {
		return
	}
	if err := fault.Inject("journal.compact"); err != nil {
		return
	}
	old := j.recs
	j.recs = folded
	if err := j.rewriteLocked(); err != nil {
		j.recs = old
		return
	}
	cJournalCompacts.Inc()
}

// rewriteLocked atomically replaces the file with the current record
// list: write a temp file, fsync, rename over, reopen for append.
func (j *Journal) rewriteLocked() error {
	if err := os.MkdirAll(filepath.Dir(j.path), 0o755); err != nil {
		return err
	}
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	for _, rec := range j.recs {
		line, err := marshalLine(rec)
		if err == nil {
			_, err = f.Write(line)
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return err
	}
	if j.f != nil {
		_ = j.f.Close()
		j.f = nil
	}
	// Reopen plain O_WRONLY: appends go through WriteAt at the tracked
	// size (WriteAt is incompatible with O_APPEND).
	return j.openLocked(os.O_WRONLY)
}

// foldUndo cancels each "undo" against an immediately preceding
// foldable op. A stack formulation handles cascades: walk, chase,
// undo, undo folds to nothing. Ops outside the foldable set (and
// their undos) are kept verbatim — replaying both reproduces the
// state no matter how many history snapshots the op took.
func foldUndo(recs []JournalRecord, foldable map[string]bool) []JournalRecord {
	var out []JournalRecord
	for _, r := range recs {
		if r.Kind == "op" && r.Op == "undo" && len(out) > 0 {
			if last := out[len(out)-1]; last.Kind == "op" && foldable[last.Op] {
				out = out[:len(out)-1]
				continue
			}
		}
		out = append(out, r)
	}
	return out
}
