package workspace

import (
	"context"
	"fmt"
	"strings"

	"clio/internal/core"
	"clio/internal/fd"
	"clio/internal/obs"
	"clio/internal/render"
)

// Compare renders the difference between two workspaces: the
// structural mapping diff plus up to limit distinguishing examples per
// side — the data-driven view of "how do these alternatives differ?"
// that drives scenario selection (Figures 3–4).
func (t *Tool) Compare(ctx context.Context, id1, id2, limit int) (string, error) {
	ctx, span := obs.StartSpan(ctx, "workspace.compare")
	defer span.End()
	t.mu.Lock()
	defer t.mu.Unlock()
	w1, err := t.workspaceByID(id1)
	if err != nil {
		return "", err
	}
	w2, err := t.workspaceByID(id2)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "comparing [%d] %s vs [%d] %s\n", w1.ID, w1.Note, w2.ID, w2.Note)
	b.WriteString("structural differences:\n")
	b.WriteString(core.Diff(w1.Mapping, w2.Mapping).String())

	d, err := core.DistinguishingExamples(ctx, w1.Mapping, w2.Mapping, t.Instance, limit)
	if err != nil {
		return "", err
	}
	abbrev := map[string]string{}
	if len(d.OnlyA) > 0 {
		fmt.Fprintf(&b, "target rows produced only by [%d]:\n", w1.ID)
		b.WriteString(render.Illustration(core.Illustration{Mapping: w1.Mapping, Examples: d.OnlyA}, abbrev))
	}
	if len(d.OnlyB) > 0 {
		fmt.Fprintf(&b, "target rows produced only by [%d]:\n", w2.ID)
		b.WriteString(render.Illustration(core.Illustration{Mapping: w2.Mapping, Examples: d.OnlyB}, abbrev))
	}
	if len(d.OnlyA) == 0 && len(d.OnlyB) == 0 {
		b.WriteString("the two mappings produce identical target contents on this source\n")
	}
	return b.String(), nil
}

// workspaceByID requires t.mu held.
func (t *Tool) workspaceByID(id int) (*Workspace, error) {
	for _, w := range t.workspaces {
		if w.ID == id {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workspace: no workspace %d", id)
}

// CoverageSummary reports, for the active workspace, how many data
// associations fall in each coverage category and how many the
// illustration shows — a quick orientation aid for large sources.
func (t *Tool) CoverageSummary(ctx context.Context) (string, error) {
	ctx, span := obs.StartSpan(ctx, "workspace.coverage_summary")
	defer span.End()
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.activeLocked()
	if w == nil {
		return "", fmt.Errorf("workspace: no active workspace")
	}
	full, err := core.AllExamples(ctx, w.Mapping, t.Instance)
	if err != nil {
		return "", err
	}
	total := map[string]int{}
	for _, e := range full.Examples {
		total[fd.CoverageKey(e.Coverage)]++
	}
	shown := map[string]int{}
	for _, e := range w.Illustration.Examples {
		shown[fd.CoverageKey(e.Coverage)]++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "coverage categories of %s (%d associations, %d shown):\n",
		w.Mapping.Name, len(full.Examples), len(w.Illustration.Examples))
	for _, cat := range full.Categories() {
		fmt.Fprintf(&b, "  %-40s %4d associations, %d shown\n", cat, total[cat], shown[cat])
	}
	return b.String(), nil
}

// TargetStatus reports which target attributes are populated by the
// accepted mappings and the active mapping — the progress view for
// mapping an entire target schema (Section 6.2).
func (t *Tool) TargetStatus() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	coveredBy := map[string][]string{}
	consider := func(m *core.Mapping) {
		for _, attr := range m.MappedAttrs() {
			coveredBy[attr] = append(coveredBy[attr], m.Name)
		}
	}
	for _, m := range t.accepted {
		consider(m)
	}
	if w := t.activeLocked(); w != nil {
		consider(w.Mapping)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "target %s:\n", t.Target.Name)
	for _, a := range t.Target.Attrs {
		if ms := coveredBy[a.Name]; len(ms) > 0 {
			fmt.Fprintf(&b, "  %-20s mapped by %s\n", a.Name, strings.Join(dedupStrings(ms), ", "))
		} else {
			fmt.Fprintf(&b, "  %-20s UNMAPPED\n", a.Name)
		}
	}
	return b.String()
}

func dedupStrings(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
