package workspace

import (
	"context"
	"sync"
	"testing"

	"clio/internal/core"
	"clio/internal/schema"
)

// A single Tool must be safe under concurrent use: the serve layer
// shares one Tool per session across HTTP handlers, and even within a
// session readers (TargetView, OpLog, status) can overlap mutators.
// Run under -race this exercises the Tool mutex.
func TestToolConcurrentAccess(t *testing.T) {
	tl := newTool(t)
	if err := tl.Start("kids"); err != nil {
		t.Fatal(err)
	}
	if err := tl.AddCorrespondence(context.Background(),
		core.Identity("Children.ID", schema.Col("Kids", "ID"))); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				switch (w + i) % 6 {
				case 0:
					// Mutator: correspondence (idempotent target attr).
					_ = tl.AddCorrespondence(ctx,
						core.Identity("Children.name", schema.Col("Kids", "name")))
				case 1:
					_, _ = tl.TargetView(ctx)
				case 2:
					_ = tl.Walk(ctx, "Children", "Schools")
				case 3:
					_ = tl.Undo()
				case 4:
					_ = tl.OpLogString()
					_ = tl.TargetStatus()
					_, _ = tl.CoverageSummary(ctx)
				case 5:
					tl.Rotate()
					_ = tl.Workspaces()
					_ = tl.Accepted()
					tl.RankWorkspaces()
				}
			}
		}(w)
	}
	wg.Wait()

	// The tool must still be coherent: an active workspace exists and
	// the target view evaluates.
	if tl.Active() == nil {
		t.Fatal("no active workspace after concurrent use")
	}
	if _, err := tl.TargetView(context.Background()); err != nil {
		t.Fatalf("TargetView after concurrent use: %v", err)
	}
}
