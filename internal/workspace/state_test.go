package workspace

import (
	"context"
	"encoding/json"
	"testing"

	"clio/internal/core"
	"clio/internal/paperdb"
	"clio/internal/schema"
	"clio/internal/value"
)

// SnapshotState/RestoreState must round-trip a session exactly: a tool
// rebuilt from the serialized state renders the same canonical op log,
// the same workspace set, and the same target view — and stays fully
// live (undo history, further operators).
func TestToolStateRoundTrip(t *testing.T) {
	ctx := context.Background()
	tl := newTool(t)
	if err := tl.Start("kids"); err != nil {
		t.Fatal(err)
	}
	if err := tl.AddCorrespondence(ctx, core.Identity("Children.ID", schema.Col("Kids", "ID"))); err != nil {
		t.Fatal(err)
	}
	if err := tl.Walk(ctx, "Children", "PhoneDir"); err != nil {
		t.Fatal(err)
	}
	if err := tl.Confirm(); err != nil {
		t.Fatal(err)
	}
	if err := tl.Chase(ctx, "Children.ID", value.String("002")); err != nil {
		t.Fatal(err)
	}

	st, err := tl.SnapshotState()
	if err != nil {
		t.Fatalf("SnapshotState: %v", err)
	}
	// The state must survive JSON (it is embedded in journal records).
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	var st2 ToolState
	if err := json.Unmarshal(data, &st2); err != nil {
		t.Fatalf("unmarshal state: %v", err)
	}

	tl2 := newTool(t)
	if err := tl2.RestoreState(st2); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}

	if got, want := tl2.OpLogCanonical(), tl.OpLogCanonical(); got != want {
		t.Errorf("restored op log differs:\n--- want\n%s--- got\n%s", want, got)
	}
	if got, want := tl2.OpLogString(), tl.OpLogString(); got != want {
		t.Errorf("restored op log (with durations) differs:\n--- want\n%s--- got\n%s", want, got)
	}
	ws, ws2 := tl.Workspaces(), tl2.Workspaces()
	if len(ws2) != len(ws) {
		t.Fatalf("restored %d workspaces, want %d", len(ws2), len(ws))
	}
	for i := range ws {
		if ws2[i].ID != ws[i].ID || ws2[i].Note != ws[i].Note || ws2[i].Rank != ws[i].Rank {
			t.Errorf("workspace %d metadata differs: got {%d %q %d} want {%d %q %d}",
				i, ws2[i].ID, ws2[i].Note, ws2[i].Rank, ws[i].ID, ws[i].Note, ws[i].Rank)
		}
		if ws2[i].Mapping.String() != ws[i].Mapping.String() {
			t.Errorf("workspace %d mapping differs:\n--- want\n%s\n--- got\n%s",
				i, ws[i].Mapping, ws2[i].Mapping)
		}
		if len(ws2[i].Illustration.Examples) != len(ws[i].Illustration.Examples) {
			t.Errorf("workspace %d: %d restored examples, want %d",
				i, len(ws2[i].Illustration.Examples), len(ws[i].Illustration.Examples))
		}
		if ws2[i].Illustration.Mapping != ws2[i].Mapping {
			t.Errorf("workspace %d: restored illustration not rewired to its mapping", i)
		}
	}
	if len(tl2.Accepted()) != len(tl.Accepted()) {
		t.Fatalf("restored %d accepted mappings, want %d", len(tl2.Accepted()), len(tl.Accepted()))
	}

	view, err := tl.TargetView(ctx)
	if err != nil {
		t.Fatal(err)
	}
	view2, err := tl2.TargetView(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if view.String() != view2.String() {
		t.Errorf("restored target view differs:\n--- want\n%s\n--- got\n%s", view, view2)
	}

	// The restored tool is live: undo pops the chase, and the ID
	// allocator continues without collisions.
	if err := tl2.Undo(); err != nil {
		t.Fatalf("Undo on restored tool: %v", err)
	}
	if err := tl.Undo(); err != nil {
		t.Fatal(err)
	}
	uv, _ := tl.TargetView(ctx)
	uv2, err := tl2.TargetView(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if uv.String() != uv2.String() {
		t.Errorf("post-undo views diverge:\n--- want\n%s\n--- got\n%s", uv, uv2)
	}
	if err := tl2.Walk(ctx, "Children", "Parents"); err != nil {
		t.Fatalf("Walk on restored tool: %v", err)
	}
}

// Tagged value serialization must restore values exactly, including
// the cases value.Parse would mangle (leading-zero strings, typed
// ints vs strings).
func TestValueStateExactRoundTrip(t *testing.T) {
	vals := []value.Value{
		value.Null,
		value.String("007"), // value.Parse would keep string, but tag makes it explicit
		value.String("-"),   // value.Parse would turn this into Null
		value.Int(7),
		value.Float(2.5),
		value.Bool(true),
		value.String(""),
	}
	for _, v := range vals {
		vs := valueState(v)
		data, err := json.Marshal(vs)
		if err != nil {
			t.Fatal(err)
		}
		var back ValueState
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		got, err := back.value()
		if err != nil {
			t.Fatalf("restore %v: %v", v, err)
		}
		if got.Kind() != v.Kind() || got.Key() != v.Key() {
			t.Errorf("value %v round-tripped to %v", v, got)
		}
	}
}

var _ = paperdb.Instance // keep the import used if helpers move
