package workspace

import (
	"strings"
	"testing"
	"time"

	"clio/internal/core"
	"clio/internal/schema"
)

func TestOpLogRecordsOperations(t *testing.T) {
	ctx, tl := t.Context(), newTool(t)
	if err := tl.Start("kids"); err != nil {
		t.Fatal(err)
	}
	if err := tl.AddCorrespondence(ctx, core.Identity("Children.name", schema.Col("Kids", "name"))); err != nil {
		t.Fatal(err)
	}
	if err := tl.Walk(ctx, "Children", "Parents"); err != nil {
		t.Fatal(err)
	}

	log := tl.OpLog()
	if len(log) != 3 {
		t.Fatalf("got %d op records, want 3:\n%s", len(log), tl.OpLogString())
	}
	wantOps := []string{"start", "correspondence", "walk"}
	for i, r := range log {
		if r.Op != wantOps[i] {
			t.Errorf("record %d op = %q, want %q", i, r.Op, wantOps[i])
		}
		if r.Seq != i+1 {
			t.Errorf("record %d seq = %d, want %d", i, r.Seq, i+1)
		}
		if r.Err != "" {
			t.Errorf("record %d unexpected error %q", i, r.Err)
		}
	}
	if got := log[2].Detail; got != "Children -> Parents" {
		t.Errorf("walk detail = %q", got)
	}
	if log[2].Workspaces != len(tl.Workspaces()) {
		t.Errorf("walk record workspaces = %d, want %d", log[2].Workspaces, len(tl.Workspaces()))
	}
}

func TestOpLogRecordsErrors(t *testing.T) {
	ctx, tl := t.Context(), newTool(t)
	if err := tl.Start("kids"); err != nil {
		t.Fatal(err)
	}
	if err := tl.Walk(ctx, "NoSuchRelation", "Parents"); err == nil {
		t.Fatal("Walk from unknown relation should fail")
	}
	log := tl.OpLog()
	last := log[len(log)-1]
	if last.Op != "walk" || last.Err == "" {
		t.Errorf("failed walk not logged with error: %+v", last)
	}
	if !strings.Contains(tl.OpLogString(), "error:") {
		t.Errorf("OpLogString misses the error:\n%s", tl.OpLogString())
	}
}

func TestOpLogBounded(t *testing.T) {
	tl := newTool(t)
	for i := 0; i < opLogCap+10; i++ {
		tl.logOp(nil, "noop", "synthetic", time.Now(), nil)
	}
	log := tl.OpLog()
	if len(log) != opLogCap {
		t.Fatalf("log length = %d, want cap %d", len(log), opLogCap)
	}
	// Oldest entries were dropped; sequence numbers keep counting.
	if log[0].Seq != 11 || log[len(log)-1].Seq != opLogCap+10 {
		t.Errorf("log spans seq %d..%d, want %d..%d",
			log[0].Seq, log[len(log)-1].Seq, 11, opLogCap+10)
	}
}
