package workspace

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"clio/internal/fault"
	"clio/internal/obs"
)

func opRec(op, args string) JournalRecord {
	r := JournalRecord{Kind: "op", Op: op}
	if args != "" {
		r.Args = json.RawMessage(args)
	}
	return r
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := OpenJournal(dir, "s1", JournalOptions{})
	want := []JournalRecord{
		{Kind: "create", Args: json.RawMessage(`{"name":"m"}`)},
		opRec("corr", `{"spec":"Children.ID -> Kids.ID"}`),
		opRec("walk", `{"from":"Children","to":"PhoneDir"}`),
	}
	for _, r := range want {
		j.Append(r)
	}
	j.Close()

	recs, corrupt, err := ReadJournal(JournalPath(dir, "s1"))
	if err != nil || corrupt != 0 {
		t.Fatalf("ReadJournal: corrupt=%d err=%v", corrupt, err)
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i].Kind != want[i].Kind || recs[i].Op != want[i].Op || string(recs[i].Args) != string(want[i].Args) {
			t.Errorf("record %d: got %+v want %+v", i, recs[i], want[i])
		}
	}

	ids, err := JournalFiles(dir)
	if err != nil || len(ids) != 1 || ids[0] != "s1" {
		t.Fatalf("JournalFiles = %v, %v", ids, err)
	}
}

// A torn tail (crash mid-append) and mid-file corruption are skipped
// with a count; every intact record survives.
func TestJournalCorruptionSkipped(t *testing.T) {
	dir := t.TempDir()
	j := OpenJournal(dir, "s1", JournalOptions{})
	for i := 0; i < 4; i++ {
		j.Append(opRec("walk", `{"n":`+string(rune('0'+i))+`}`))
	}
	j.Close()
	path := JournalPath(dir, "s1")

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second line (CRC mismatch) and truncate
	// the final line mid-record (torn append).
	lines := 0
	for i, b := range data {
		if b == '\n' {
			lines++
			if lines == 1 {
				data[i+10] ^= 0xff
			}
		}
	}
	data = data[:len(data)-7]
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, corrupt, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 2 {
		t.Errorf("corrupt = %d, want 2 (one CRC mismatch, one torn tail)", corrupt)
	}
	if len(recs) != 2 {
		t.Fatalf("surviving records = %d, want 2", len(recs))
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	recs, corrupt, err := ReadJournal(filepath.Join(t.TempDir(), "nope.journal"))
	if err != nil || corrupt != 0 || len(recs) != 0 {
		t.Fatalf("missing file: recs=%v corrupt=%d err=%v", recs, corrupt, err)
	}
}

// Compaction folds (foldable-op, undo) pairs out of the on-disk log,
// including cascades, while leaving non-foldable ops alone.
func TestJournalCompactionFoldsUndo(t *testing.T) {
	dir := t.TempDir()
	opts := JournalOptions{CompactEvery: 6, Foldable: []string{"walk", "chase", "filter", "accept"}}
	j := OpenJournal(dir, "s1", opts)
	j.Append(JournalRecord{Kind: "create"})
	j.Append(opRec("corr", `{"spec":"a"}`))
	j.Append(opRec("walk", `{"w":1}`))
	j.Append(opRec("chase", `{"c":1}`))
	j.Append(opRec("undo", ""))
	j.Append(opRec("undo", "")) // cascade: cancels the walk too
	j.Append(opRec("undo", "")) // sixth op triggers compaction; not foldable against corr
	j.Close()

	recs, corrupt, err := ReadJournal(JournalPath(dir, "s1"))
	if err != nil || corrupt != 0 {
		t.Fatalf("ReadJournal: corrupt=%d err=%v", corrupt, err)
	}
	wantOps := []string{"", "corr", "undo"} // create, corr, trailing undo
	if len(recs) != len(wantOps) {
		t.Fatalf("compacted to %d records, want %d: %+v", len(recs), len(wantOps), recs)
	}
	for i, op := range wantOps {
		if recs[i].Op != op {
			t.Errorf("record %d: op %q, want %q", i, recs[i].Op, op)
		}
	}
}

// Transient write failures are retried; persistent ones degrade the
// journal to memory-only (gauge up, later appends no-ops) instead of
// failing the session.
func TestJournalRetryAndDegrade(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	gauge := obs.GetGauge("clio.journal.degraded")
	opts := JournalOptions{retryAttempts: 3, retryBase: time.Microsecond}

	fault.Enable(7)
	defer fault.Disable()

	// Two failures, then success: the append must survive via retries.
	dir := t.TempDir()
	fault.Set("journal.append", fault.Spec{Mode: fault.ModeError, Times: 2})
	j := OpenJournal(dir, "s1", opts)
	j.Append(opRec("walk", `{"w":1}`))
	if j.Degraded() {
		t.Fatal("journal degraded despite retries succeeding")
	}
	j.Close()
	if recs, _, _ := ReadJournal(JournalPath(dir, "s1")); len(recs) != 1 {
		t.Fatalf("retried append not on disk: %d records", len(recs))
	}

	// Persistent failure: degrade, raise the gauge, keep serving.
	fault.Set("journal.append", fault.Spec{Mode: fault.ModeError})
	before := gauge.Value()
	j2 := OpenJournal(dir, "s2", opts)
	j2.Append(opRec("walk", `{"w":1}`))
	if !j2.Degraded() {
		t.Fatal("journal not degraded after persistent write failure")
	}
	if gauge.Value() != before+1 {
		t.Errorf("clio.journal.degraded = %d, want %d", gauge.Value(), before+1)
	}
	j2.Append(opRec("walk", `{"w":2}`)) // must be a silent no-op
	j2.Remove()
	if gauge.Value() != before {
		t.Errorf("gauge not released on Remove: %d, want %d", gauge.Value(), before)
	}
}

// Resuming after a crash rewrites the file from the surviving
// records, so a torn tail disappears and appends continue cleanly.
func TestJournalResumeRewritesCleanTail(t *testing.T) {
	dir := t.TempDir()
	j := OpenJournal(dir, "s1", JournalOptions{})
	j.Append(JournalRecord{Kind: "create"})
	j.Append(opRec("walk", `{"w":1}`))
	j.Close()
	path := JournalPath(dir, "s1")

	data, _ := os.ReadFile(path)
	data = append(data, []byte(`{"crc":1,"rec":{"kind":"op","op`)...) // torn append
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, corrupt, err := ReadJournal(path)
	if err != nil || corrupt != 1 || len(recs) != 2 {
		t.Fatalf("pre-resume read: recs=%d corrupt=%d err=%v", len(recs), corrupt, err)
	}

	j2 := ResumeJournal(dir, "s1", recs, JournalOptions{})
	j2.Append(opRec("chase", `{"c":1}`))
	j2.Close()

	recs2, corrupt2, err := ReadJournal(path)
	if err != nil || corrupt2 != 0 {
		t.Fatalf("post-resume read: corrupt=%d err=%v", corrupt2, err)
	}
	ops := make([]string, len(recs2))
	for i, r := range recs2 {
		ops[i] = r.Op
	}
	if len(recs2) != 3 || recs2[0].Kind != "create" || ops[1] != "walk" || ops[2] != "chase" {
		t.Fatalf("post-resume records wrong: %v", ops)
	}
}

func TestJournalFsyncPolicy(t *testing.T) {
	dir := t.TempDir()
	j := OpenJournal(dir, "s1", JournalOptions{FsyncEvery: 3})
	for i := 0; i < 7; i++ {
		j.Append(opRec("walk", `{"w":1}`))
	}
	j.Close() // final sync covers the unsynced tail
	if recs, corrupt, err := ReadJournal(JournalPath(dir, "s1")); err != nil || corrupt != 0 || len(recs) != 7 {
		t.Fatalf("recs=%d corrupt=%d err=%v", len(recs), corrupt, err)
	}
}

func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	j.Append(opRec("walk", "{}"))
	j.Close()
	j.Remove()
	if !j.Degraded() {
		t.Error("nil journal should report degraded (nothing is durable)")
	}
	if j.Path() != "" {
		t.Error("nil journal has a path")
	}
}
