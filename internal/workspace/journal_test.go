package workspace

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"clio/internal/fault"
	"clio/internal/obs"
)

func opRec(op, args string) JournalRecord {
	r := JournalRecord{Kind: "op", Op: op}
	if args != "" {
		r.Args = json.RawMessage(args)
	}
	return r
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := OpenJournal(dir, "s1", JournalOptions{})
	want := []JournalRecord{
		{Kind: "create", Args: json.RawMessage(`{"name":"m"}`)},
		opRec("corr", `{"spec":"Children.ID -> Kids.ID"}`),
		opRec("walk", `{"from":"Children","to":"PhoneDir"}`),
	}
	for _, r := range want {
		j.Append(r)
	}
	j.Close()

	recs, corrupt, err := ReadJournal(JournalPath(dir, "s1"))
	if err != nil || corrupt != 0 {
		t.Fatalf("ReadJournal: corrupt=%d err=%v", corrupt, err)
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i].Kind != want[i].Kind || recs[i].Op != want[i].Op || string(recs[i].Args) != string(want[i].Args) {
			t.Errorf("record %d: got %+v want %+v", i, recs[i], want[i])
		}
	}

	ids, err := JournalFiles(dir)
	if err != nil || len(ids) != 1 || ids[0] != "s1" {
		t.Fatalf("JournalFiles = %v, %v", ids, err)
	}
}

// A torn tail (crash mid-append) and mid-file corruption are skipped
// with a count; every intact record survives.
func TestJournalCorruptionSkipped(t *testing.T) {
	dir := t.TempDir()
	j := OpenJournal(dir, "s1", JournalOptions{})
	for i := 0; i < 4; i++ {
		j.Append(opRec("walk", `{"n":`+string(rune('0'+i))+`}`))
	}
	j.Close()
	path := JournalPath(dir, "s1")

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second line (CRC mismatch) and truncate
	// the final line mid-record (torn append).
	lines := 0
	for i, b := range data {
		if b == '\n' {
			lines++
			if lines == 1 {
				data[i+10] ^= 0xff
			}
		}
	}
	data = data[:len(data)-7]
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, corrupt, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 2 {
		t.Errorf("corrupt = %d, want 2 (one CRC mismatch, one torn tail)", corrupt)
	}
	if len(recs) != 2 {
		t.Fatalf("surviving records = %d, want 2", len(recs))
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	recs, corrupt, err := ReadJournal(filepath.Join(t.TempDir(), "nope.journal"))
	if err != nil || corrupt != 0 || len(recs) != 0 {
		t.Fatalf("missing file: recs=%v corrupt=%d err=%v", recs, corrupt, err)
	}
}

// Compaction folds (foldable-op, undo) pairs out of the on-disk log,
// including cascades, while leaving non-foldable ops alone.
func TestJournalCompactionFoldsUndo(t *testing.T) {
	dir := t.TempDir()
	opts := JournalOptions{CompactEvery: 6, Foldable: []string{"walk", "chase", "filter", "accept"}}
	j := OpenJournal(dir, "s1", opts)
	j.Append(JournalRecord{Kind: "create"})
	j.Append(opRec("corr", `{"spec":"a"}`))
	j.Append(opRec("walk", `{"w":1}`))
	j.Append(opRec("chase", `{"c":1}`))
	j.Append(opRec("undo", ""))
	j.Append(opRec("undo", "")) // cascade: cancels the walk too
	j.Append(opRec("undo", "")) // sixth op triggers compaction; not foldable against corr
	j.Close()

	recs, corrupt, err := ReadJournal(JournalPath(dir, "s1"))
	if err != nil || corrupt != 0 {
		t.Fatalf("ReadJournal: corrupt=%d err=%v", corrupt, err)
	}
	wantOps := []string{"", "corr", "undo"} // create, corr, trailing undo
	if len(recs) != len(wantOps) {
		t.Fatalf("compacted to %d records, want %d: %+v", len(recs), len(wantOps), recs)
	}
	for i, op := range wantOps {
		if recs[i].Op != op {
			t.Errorf("record %d: op %q, want %q", i, recs[i].Op, op)
		}
	}
}

// Transient write failures are retried; persistent ones degrade the
// journal to memory-only (gauge up, later appends no-ops) instead of
// failing the session.
func TestJournalRetryAndDegrade(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	gauge := obs.GetGauge("clio.journal.degraded")
	opts := JournalOptions{retryAttempts: 3, retryBase: time.Microsecond}

	fault.Enable(7)
	defer fault.Disable()

	// Two failures, then success: the append must survive via retries.
	dir := t.TempDir()
	fault.Set("journal.append", fault.Spec{Mode: fault.ModeError, Times: 2})
	j := OpenJournal(dir, "s1", opts)
	j.Append(opRec("walk", `{"w":1}`))
	if j.Degraded() {
		t.Fatal("journal degraded despite retries succeeding")
	}
	j.Close()
	if recs, _, _ := ReadJournal(JournalPath(dir, "s1")); len(recs) != 1 {
		t.Fatalf("retried append not on disk: %d records", len(recs))
	}

	// Persistent failure: degrade, raise the gauge, keep serving.
	fault.Set("journal.append", fault.Spec{Mode: fault.ModeError})
	before := gauge.Value()
	j2 := OpenJournal(dir, "s2", opts)
	j2.Append(opRec("walk", `{"w":1}`))
	if !j2.Degraded() {
		t.Fatal("journal not degraded after persistent write failure")
	}
	if gauge.Value() != before+1 {
		t.Errorf("clio.journal.degraded = %d, want %d", gauge.Value(), before+1)
	}
	j2.Append(opRec("walk", `{"w":2}`)) // must be a silent no-op
	j2.Remove()
	if gauge.Value() != before {
		t.Errorf("gauge not released on Remove: %d, want %d", gauge.Value(), before)
	}
}

// Resuming after a crash rewrites the file from the surviving
// records, so a torn tail disappears and appends continue cleanly.
func TestJournalResumeRewritesCleanTail(t *testing.T) {
	dir := t.TempDir()
	j := OpenJournal(dir, "s1", JournalOptions{})
	j.Append(JournalRecord{Kind: "create"})
	j.Append(opRec("walk", `{"w":1}`))
	j.Close()
	path := JournalPath(dir, "s1")

	data, _ := os.ReadFile(path)
	data = append(data, []byte(`{"crc":1,"rec":{"kind":"op","op`)...) // torn append
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, corrupt, err := ReadJournal(path)
	if err != nil || corrupt != 1 || len(recs) != 2 {
		t.Fatalf("pre-resume read: recs=%d corrupt=%d err=%v", len(recs), corrupt, err)
	}

	j2 := ResumeJournal(dir, "s1", recs, JournalOptions{})
	j2.Append(opRec("chase", `{"c":1}`))
	j2.Close()

	recs2, corrupt2, err := ReadJournal(path)
	if err != nil || corrupt2 != 0 {
		t.Fatalf("post-resume read: corrupt=%d err=%v", corrupt2, err)
	}
	ops := make([]string, len(recs2))
	for i, r := range recs2 {
		ops[i] = r.Op
	}
	if len(recs2) != 3 || recs2[0].Kind != "create" || ops[1] != "walk" || ops[2] != "chase" {
		t.Fatalf("post-resume records wrong: %v", ops)
	}
}

func TestJournalFsyncPolicy(t *testing.T) {
	dir := t.TempDir()
	j := OpenJournal(dir, "s1", JournalOptions{FsyncEvery: 3})
	for i := 0; i < 7; i++ {
		j.Append(opRec("walk", `{"w":1}`))
	}
	j.Close() // final sync covers the unsynced tail
	if recs, corrupt, err := ReadJournal(JournalPath(dir, "s1")); err != nil || corrupt != 0 || len(recs) != 7 {
		t.Fatalf("recs=%d corrupt=%d err=%v", len(recs), corrupt, err)
	}
}

func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	j.Append(opRec("walk", "{}"))
	j.Close()
	j.Remove()
	if !j.Degraded() {
		t.Error("nil journal should report degraded (nothing is durable)")
	}
	if j.Path() != "" {
		t.Error("nil journal has a path")
	}
}

// Regression: CompactEvery 0 must actually disable compaction (the
// option documents "0 disables" but withDefaults used to rewrite 0 to
// 64, so a long session silently compacted anyway). With compaction
// off, every record of a long foldable (op, undo) run must survive.
func TestJournalCompactEveryZeroDisablesCompaction(t *testing.T) {
	dir := t.TempDir()
	j := OpenJournal(dir, "s1", JournalOptions{CompactEvery: 0, Foldable: []string{"walk"}})
	j.Append(JournalRecord{Kind: "create"})
	const pairs = 40 // 80 op records, beyond the old implicit 64 trigger
	for i := 0; i < pairs; i++ {
		j.Append(opRec("walk", `{"n":1}`))
		j.Append(opRec("undo", ""))
	}
	j.Close()

	recs, corrupt, err := ReadJournal(JournalPath(dir, "s1"))
	if err != nil || corrupt != 0 {
		t.Fatalf("ReadJournal: corrupt=%d err=%v", corrupt, err)
	}
	if want := 1 + 2*pairs; len(recs) != want {
		t.Fatalf("CompactEvery 0 still compacted: %d records survive, want %d", len(recs), want)
	}
}

// A snapshot rewrites the journal to [create, snapshot], so replay
// cost is bounded by ops since the last snapshot: with interval k the
// file never holds more than k+1 records once the owner snapshots on
// SnapshotDue.
func TestJournalSnapshotBoundsRecords(t *testing.T) {
	dir := t.TempDir()
	const k = 4
	j := OpenJournal(dir, "s1", JournalOptions{SnapshotEvery: k, CompactEvery: -1})
	j.Append(JournalRecord{Kind: "create", Args: json.RawMessage(`{"name":"m"}`)})
	for i := 0; i < 4*k; i++ {
		j.Append(opRec("walk", `{"n":1}`))
		if j.SnapshotDue() {
			if !j.Snapshot(json.RawMessage(`{"state":"s"}`)) {
				t.Fatal("Snapshot failed with no fault armed")
			}
		}
		if n := j.Records(); n > k+1 {
			t.Fatalf("journal holds %d records after op %d, want <= %d", n, i+1, k+1)
		}
	}
	j.Close()

	recs, corrupt, err := ReadJournal(JournalPath(dir, "s1"))
	if err != nil || corrupt != 0 {
		t.Fatalf("ReadJournal: corrupt=%d err=%v", corrupt, err)
	}
	if len(recs) > k+1 {
		t.Fatalf("on-disk journal has %d records, want <= %d", len(recs), k+1)
	}
	if recs[0].Kind != "create" || recs[1].Kind != "snapshot" {
		t.Fatalf("journal shape after snapshots: %q, %q; want create, snapshot", recs[0].Kind, recs[1].Kind)
	}
	if string(recs[1].Args) != `{"state":"s"}` {
		t.Fatalf("snapshot args %s, want {\"state\":\"s\"}", recs[1].Args)
	}

	// Resuming over a snapshot keeps counting ops since that snapshot.
	j2 := ResumeJournal(dir, "s1", recs, JournalOptions{SnapshotEvery: k, CompactEvery: -1})
	defer j2.Close()
	if j2.SnapshotDue() {
		t.Error("fresh resume over a snapshot must not be immediately due")
	}
	for i := 0; i < k; i++ {
		j2.Append(opRec("walk", `{"n":2}`))
	}
	if !j2.SnapshotDue() {
		t.Error("after k more ops a snapshot must be due again")
	}
}

// An injected fault at the snapshot write point must skip the
// snapshot, not corrupt or truncate the journal: every op record is
// still there and the journal keeps accepting appends.
func TestJournalSnapshotFaultKeepsRecords(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	fault.Set("journal.snapshot", fault.Spec{Mode: fault.ModeError})

	dir := t.TempDir()
	const k = 3
	j := OpenJournal(dir, "s1", JournalOptions{SnapshotEvery: k, CompactEvery: -1})
	j.Append(JournalRecord{Kind: "create"})
	for i := 0; i < 3*k; i++ {
		j.Append(opRec("walk", `{"n":1}`))
		if j.SnapshotDue() {
			if j.Snapshot(json.RawMessage(`{}`)) {
				t.Fatal("Snapshot succeeded despite injected fault")
			}
		}
	}
	j.Close()
	recs, corrupt, err := ReadJournal(JournalPath(dir, "s1"))
	if err != nil || corrupt != 0 {
		t.Fatalf("ReadJournal: corrupt=%d err=%v", corrupt, err)
	}
	if want := 1 + 3*k; len(recs) != want {
		t.Fatalf("failed snapshots altered the journal: %d records, want %d", len(recs), want)
	}
}

// Archiving moves a journal out of the live directory (and the boot
// replay scan) into the archive; unarchiving moves it back intact. An
// injected fault at "journal.archive" fails the move and leaves the
// live file untouched.
func TestJournalArchiveMoveAndFault(t *testing.T) {
	dir := t.TempDir()
	archive := filepath.Join(dir, "archive")
	j := OpenJournal(dir, "s1", JournalOptions{})
	j.Append(JournalRecord{Kind: "create"})
	j.Append(opRec("walk", `{"n":1}`))
	j.Close()

	fault.Enable(1)
	fault.Set("journal.archive", fault.Spec{Mode: fault.ModeError, Times: 1})
	if err := ArchiveJournal(dir, archive, "s1"); err == nil {
		t.Fatal("ArchiveJournal succeeded despite injected fault")
	}
	fault.Disable()
	if _, err := os.Stat(JournalPath(dir, "s1")); err != nil {
		t.Fatalf("failed archive move lost the live journal: %v", err)
	}

	if err := ArchiveJournal(dir, archive, "s1"); err != nil {
		t.Fatalf("ArchiveJournal: %v", err)
	}
	if ids, _ := JournalFiles(dir); len(ids) != 0 {
		t.Fatalf("live dir still lists %v after archive", ids)
	}
	ids, err := JournalFiles(archive)
	if err != nil || len(ids) != 1 || ids[0] != "s1" {
		t.Fatalf("archive lists %v, %v; want [s1]", ids, err)
	}

	if err := UnarchiveJournal(archive, dir, "s1"); err != nil {
		t.Fatalf("UnarchiveJournal: %v", err)
	}
	recs, corrupt, err := ReadJournal(JournalPath(dir, "s1"))
	if err != nil || corrupt != 0 || len(recs) != 2 {
		t.Fatalf("unarchived journal: records=%d corrupt=%d err=%v", len(recs), corrupt, err)
	}
}
