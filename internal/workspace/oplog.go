package workspace

import (
	"context"
	"fmt"
	"strings"
	"time"

	"clio/internal/obs"
)

// Workspace-operation instrumentation.
var (
	cOps    = obs.GetCounter("workspace.ops")
	cOpErrs = obs.GetCounter("workspace.op_errors")
	hOpNS   = obs.GetHistogram("workspace.op.ns")
)

// OpRecord is one entry of a tool's operation log: which operator ran,
// on what, how long it took, how many workspaces it left behind, and
// whether it failed. The log is the session-level complement of the
// tracing spans: it survives after a trace has been exported and is
// queryable programmatically (Tool.OpLog) and from the CLI.
type OpRecord struct {
	// Seq numbers operations from 1 in execution order.
	Seq int
	// Op is the operator name (walk, chase, correspondence, ...).
	Op string
	// Detail describes the arguments, human-readably.
	Detail string
	// Duration is the operator's wall-clock time.
	Duration time.Duration
	// Workspaces is the workspace count after the operation.
	Workspaces int
	// Err is the error message when the operation failed, else "".
	Err string
	// Trace is the trace ID of the request that ran the operation,
	// or "" for operations outside any request (CLI, internal).
	Trace string
}

// String renders the record as one log line.
func (r OpRecord) String() string {
	status := "ok"
	if r.Err != "" {
		status = "error: " + r.Err
	}
	line := fmt.Sprintf("#%d %-14s %-40s %8s  %d ws  %s",
		r.Seq, r.Op, r.Detail, r.Duration.Round(time.Microsecond), r.Workspaces, status)
	if r.Trace != "" {
		line += "  trace=" + r.Trace
	}
	return line
}

// Canonical renders the record without its duration or trace ID: the
// stable part of an op-log line. Two sessions that executed the same
// operations — e.g. a live session and its post-crash replay — have
// byte-identical canonical logs even though wall-clock timings and
// request identities differ.
func (r OpRecord) Canonical() string {
	status := "ok"
	if r.Err != "" {
		status = "error: " + r.Err
	}
	return fmt.Sprintf("#%d %s %s [%d ws] %s", r.Seq, r.Op, r.Detail, r.Workspaces, status)
}

// opLogCap bounds the in-memory log; older records are dropped.
const opLogCap = 256

// logOp appends a record for an operation that started at start,
// stamped with ctx's trace ID (ctx may be nil: operators invoked
// outside any request log an empty trace). Requires t.mu held: every
// public operator registers its Lock/Unlock defer before the logOp
// defer, so logOp runs while still locked.
func (t *Tool) logOp(ctx context.Context, op, detail string, start time.Time, err error) {
	cOps.Inc()
	hOpNS.ObserveSince(start)
	rec := OpRecord{
		Seq:        t.opSeq + 1,
		Op:         op,
		Detail:     detail,
		Duration:   time.Since(start),
		Workspaces: len(t.workspaces),
		Trace:      obs.TraceID(ctx),
	}
	if err != nil {
		rec.Err = err.Error()
		cOpErrs.Inc()
	}
	t.opSeq++
	t.opLog = append(t.opLog, rec)
	if len(t.opLog) > opLogCap {
		t.opLog = t.opLog[len(t.opLog)-opLogCap:]
	}
}

// OpLog returns a copy of the operation log, oldest first.
func (t *Tool) OpLog() []OpRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]OpRecord(nil), t.opLog...)
}

// OpLogCanonical renders the whole log in canonical (duration-free)
// form, one line per operation — the representation compared by
// crash-replay golden tests.
func (t *Tool) OpLogCanonical() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for _, r := range t.opLog {
		b.WriteString(r.Canonical())
		b.WriteByte('\n')
	}
	return b.String()
}

// LogPanic records a recovered panic in the op log, so a session's
// history shows where a request blew up even after the stack trace
// has scrolled out of the server's stderr.
func (t *Tool) LogPanic(detail string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.logOp(nil, "panic", detail, time.Now(), fmt.Errorf("panic recovered"))
}

// OpLogString renders the whole log, one line per operation.
func (t *Tool) OpLogString() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for _, r := range t.opLog {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
