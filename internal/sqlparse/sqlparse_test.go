package sqlparse

import (
	"math/rand"
	"strings"
	"testing"

	"clio/internal/algebra"
	"clio/internal/core"
	"clio/internal/expr"
	"clio/internal/paperdb"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

func TestParseSelectBasic(t *testing.T) {
	q, err := ParseSelect(`
		SELECT Children.ID AS ID, Children.name AS name, concat(PhoneDir.type, PhoneDir.number) AS contactPh
		FROM Children
		LEFT JOIN Parents ON Children.mid = Parents.ID
		LEFT OUTER JOIN PhoneDir ON Parents.ID = PhoneDir.ID
		WHERE Children.ID IS NOT NULL;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 3 || q.Select[2].Alias != "contactPh" {
		t.Errorf("select = %v", q.Select)
	}
	if q.From.Base != "Children" || len(q.Joins) != 2 {
		t.Errorf("from/joins wrong: %+v", q)
	}
	if q.Joins[1].Kind != "LEFT JOIN" {
		t.Errorf("OUTER not normalized: %q", q.Joins[1].Kind)
	}
	if q.Where == nil || !strings.Contains(q.Where.String(), "IS NOT NULL") {
		t.Errorf("where = %v", q.Where)
	}
}

func TestParseSelectVariants(t *testing.T) {
	cases := []string{
		"SELECT a.b FROM R",
		"select a.b, a.c from R as S inner join T on S.x = T.x",
		"CREATE VIEW V AS SELECT a.b AS x FROM R JOIN S ON R.a = S.a WHERE R.a > 1",
		"SELECT R.x FROM R FULL JOIN S ON R.a = S.a",
		"SELECT R.x FROM R RIGHT JOIN S ON R.a = S.a",
		"SELECT R.a + 1 AS inc FROM R",
		"SELECT concat(R.a, 'FROM x, WHERE y') AS s FROM R", // keywords in string
	}
	for _, src := range cases {
		if _, err := ParseSelect(src); err != nil {
			t.Errorf("ParseSelect(%q): %v", src, err)
		}
	}
	bad := []string{
		"",
		"SELECT FROM R",
		"SELECT a.b",
		"SELECT a.b FROM R JOIN S",
		"SELECT a.b FROM R JOIN S ON",
		"SELECT a.b FROM R trailing garbage",
		"CREATE TABLE x",
		"CREATE VIEW V SELECT a.b FROM R",
		"SELECT (( FROM R",
	}
	for _, src := range bad {
		if _, err := ParseSelect(src); err == nil {
			t.Errorf("ParseSelect(%q) should fail", src)
		}
	}
}

func TestViewSQLRoundTrip(t *testing.T) {
	// The flagship round trip: the SQL Clio generates re-imports as a
	// mapping with identical semantics.
	in := paperdb.Instance()
	m := paperdb.Section2Mapping()
	root, _ := m.RequiredRoot()
	sql, err := m.ViewSQL(root)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ImportMapping(sql, in, "")
	if err != nil {
		t.Fatalf("importing generated SQL:\n%s\n%v", sql, err)
	}
	if back.Target.Name != "Kids" {
		t.Errorf("view name lost: %s", back.Target.Name)
	}
	if err := back.Validate(in); err != nil {
		t.Fatal(err)
	}
	want, err := m.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	// Compare on the mapped attributes (the original target also has
	// unmapped always-null columns).
	shared := got.Scheme().Names()
	if !want.Project(shared...).Distinct().EqualSet(got) {
		t.Errorf("round-trip changed semantics:\n%v\nvs\n%v",
			want.Project(shared...).Distinct().Sorted(), got.Sorted())
	}
	// The graph came back with the Parents2 copy.
	n, ok := back.Graph.Node("Parents2")
	if !ok || n.Base != "Parents" {
		t.Errorf("copy lost on import: %v %v", n, ok)
	}
}

// directPlan builds the statement's literal algebra plan for
// differential testing.
func directPlan(q *Query) algebra.Node {
	var node algebra.Node = algebra.NewScan(q.From.Base, q.From.Alias)
	for _, j := range q.Joins {
		kind := algebra.InnerJoin
		switch j.Kind {
		case "LEFT JOIN":
			kind = algebra.LeftJoin
		case "RIGHT JOIN":
			kind = algebra.RightJoin
		case "FULL JOIN":
			kind = algebra.FullJoin
		}
		node = algebra.Join{Kind: kind, L: node, R: algebra.NewScan(j.Table.Base, j.Table.Alias), On: j.On}
	}
	if q.Where != nil {
		node = algebra.Select{Child: node, Pred: q.Where}
	}
	var cols []algebra.OutputCol
	for _, s := range q.Select {
		cols = append(cols, algebra.OutputCol{Name: "T." + s.Alias, Expr: s.Expr})
	}
	return algebra.Distinct{Child: algebra.Project{Name: "T", Child: node, Cols: cols}}
}

func TestImportMatchesDirectEvaluation(t *testing.T) {
	// Randomized: INNER/LEFT chains over random data evaluate the same
	// through ImportMapping and through the literal plan.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		in := randInstance(rng, 3)
		kinds := []string{"JOIN", "LEFT JOIN"}
		j1 := kinds[rng.Intn(2)]
		j2 := kinds[rng.Intn(2)]
		sql := "SELECT R0.v AS a, R1.v AS b, R2.v AS c FROM R0 " +
			j1 + " R1 ON R0.k = R1.k " +
			j2 + " R2 ON R1.k = R2.k"
		if rng.Intn(2) == 0 {
			sql += " WHERE R0.v > 1"
		}
		q, err := ParseSelect(sql)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ImportMapping(sql, in, "T")
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(in); err != nil {
			t.Fatal(err)
		}
		got, err := m.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		want, err := directPlan(q).Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualSet(want) {
			t.Fatalf("trial %d (%s): import differs\ngot:\n%v\nwant:\n%v",
				trial, sql, got.Sorted(), want.Sorted())
		}
	}
}

func TestImportRejectsRightFull(t *testing.T) {
	in := randInstance(rand.New(rand.NewSource(1)), 2)
	for _, kind := range []string{"RIGHT JOIN", "FULL JOIN"} {
		sql := "SELECT R0.v AS a FROM R0 " + kind + " R1 ON R0.k = R1.k"
		if _, err := ImportMapping(sql, in, "T"); err == nil {
			t.Errorf("%s should be rejected by ImportMapping", kind)
		}
		// But the exact multi-mapping path handles it.
		q, err := ParseSelect(sql)
		if err != nil {
			t.Fatal(err)
		}
		jq, err := ToJoinQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := core.RepresentJoinQuery(jq, in, "T")
		if err != nil {
			t.Fatal(err)
		}
		combined, err := core.CombineMappings(in, ms)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := core.EvaluateJoinQuery(jq, in)
		if err != nil {
			t.Fatal(err)
		}
		rename := map[string]string{}
		for _, qn := range direct.Scheme().Names() {
			rename[qn] = "T." + strings.ReplaceAll(qn, ".", "_")
		}
		if !combined.EqualSet(direct.Rename("T", rename)) {
			t.Errorf("%s: multi-mapping path differs", kind)
		}
	}
}

func TestToJoinQueryErrors(t *testing.T) {
	q := &Query{
		From:  TableRef{Base: "R0", Alias: "R0"},
		Joins: []JoinClause{{Kind: "JOIN", Table: TableRef{Base: "R1", Alias: "R1"}, On: expr.Equals("Zz.x", "R1.k")}},
	}
	if _, err := ToJoinQuery(q); err == nil {
		t.Error("dangling ON should fail")
	}
	if _, err := ToMapping(q, "T"); err == nil {
		t.Error("dangling ON should fail in ToMapping")
	}
	if _, err := RequiredCoverage(q); err == nil {
		t.Error("dangling ON should fail in RequiredCoverage")
	}
}

func randInstance(rng *rand.Rand, k int) *relation.Instance {
	sch := schema.NewDatabase()
	for i := 0; i < k; i++ {
		name := "R" + string(rune('0'+i))
		sch.MustAddRelation(schema.NewRelation(name,
			schema.Attribute{Name: "k", Type: value.KindInt},
			schema.Attribute{Name: "v", Type: value.KindInt}))
	}
	in := relation.NewInstance(sch)
	for i := 0; i < k; i++ {
		name := "R" + string(rune('0'+i))
		r := in.NewRelationFor(name)
		for j := 0; j < 1+rng.Intn(5); j++ {
			r.AddValues(value.Int(int64(rng.Intn(3))), value.Int(int64(rng.Intn(4))))
		}
		in.MustAdd(r)
	}
	return in
}
