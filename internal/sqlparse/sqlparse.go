// Package sqlparse parses SQL SELECT statements of the shape Clio
// generates — projection with aliases, a FROM table, a chain of
// [LEFT|RIGHT|FULL|INNER] JOIN ... ON ... clauses, and an optional
// WHERE — and converts them into mappings. This is the inverse of
// Mapping.ViewSQL: it lets existing view definitions be imported as
// mappings (the paper's Clio mines "views [and] stored queries" as
// part of its source knowledge).
//
// Expressions (select items, ON and WHERE predicates) are delegated to
// the expr package; this parser only handles statement structure. The
// optional "CREATE VIEW <name> AS" prefix supplies the target name.
package sqlparse

import (
	"fmt"
	"strings"

	"clio/internal/core"
	"clio/internal/expr"
	"clio/internal/relation"
	"clio/internal/schema"
)

// SelectItem is one projection: an expression with an output alias.
type SelectItem struct {
	Expr  expr.Expr
	Alias string
}

// TableRef is a FROM or JOIN table with an optional alias.
type TableRef struct {
	Base  string
	Alias string // equals Base when absent
}

// JoinClause is one JOIN step.
type JoinClause struct {
	Kind  string // "JOIN", "LEFT JOIN", "RIGHT JOIN", "FULL JOIN"
	Table TableRef
	On    expr.Expr
}

// Query is a parsed SELECT statement.
type Query struct {
	// View is the target name from a CREATE VIEW prefix, if present.
	View   string
	Select []SelectItem
	From   TableRef
	Joins  []JoinClause
	Where  expr.Expr // nil when absent
}

// ParseSelect parses the statement.
func ParseSelect(sql string) (*Query, error) {
	p := &parser{src: sql}
	return p.parse()
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: "+format+" (at offset %d)", append(args, p.pos)...)
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

// peekKeyword reports whether the next token is the given keyword
// (case-insensitive, word-bounded).
func (p *parser) peekKeyword(kw string) bool {
	p.skipSpace()
	if p.pos+len(kw) > len(p.src) {
		return false
	}
	if !strings.EqualFold(p.src[p.pos:p.pos+len(kw)], kw) {
		return false
	}
	if p.pos+len(kw) < len(p.src) {
		c := p.src[p.pos+len(kw)]
		if isWordByte(c) {
			return false
		}
	}
	return true
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.pos += len(kw)
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func isWordByte(c byte) bool {
	return c == '_' || c == '.' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// ident reads an identifier (letters, digits, _, .).
func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isWordByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected identifier")
	}
	return p.src[start:p.pos], nil
}

// exprUntil captures source text until one of the stop keywords at
// nesting level 0 (outside parens and strings), then parses it.
func (p *parser) exprUntil(stops ...string) (expr.Expr, string, error) {
	p.skipSpace()
	start := p.pos
	depth := 0
	inStr := false
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case inStr:
			if c == '\'' {
				// '' is an escaped quote.
				if p.pos+1 < len(p.src) && p.src[p.pos+1] == '\'' {
					p.pos++
				} else {
					inStr = false
				}
			}
		case c == '\'':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case depth == 0:
			if c == ',' {
				goto done
			}
			if c == ';' {
				goto done
			}
			for _, kw := range stops {
				if p.matchesKeywordAt(kw) {
					goto done
				}
			}
		}
		p.pos++
	}
done:
	text := strings.TrimSpace(p.src[start:p.pos])
	if text == "" {
		return nil, "", p.errf("empty expression")
	}
	e, err := expr.Parse(text)
	if err != nil {
		return nil, "", fmt.Errorf("sqlparse: in %q: %w", text, err)
	}
	return e, text, nil
}

// matchesKeywordAt reports whether a word-bounded keyword starts at
// the current position.
func (p *parser) matchesKeywordAt(kw string) bool {
	if p.pos+len(kw) > len(p.src) {
		return false
	}
	if !strings.EqualFold(p.src[p.pos:p.pos+len(kw)], kw) {
		return false
	}
	if p.pos > 0 && isWordByte(p.src[p.pos-1]) {
		return false
	}
	if p.pos+len(kw) < len(p.src) && isWordByte(p.src[p.pos+len(kw)]) {
		return false
	}
	return true
}

func (p *parser) parse() (*Query, error) {
	q := &Query{}
	if p.acceptKeyword("CREATE") {
		if err := p.expectKeyword("VIEW"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		q.View = name
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	// Select list.
	for {
		e, text, err := p.exprUntil("AS", "FROM")
		if err != nil {
			return nil, err
		}
		item := SelectItem{Expr: e}
		if p.acceptKeyword("AS") {
			alias, err := p.ident()
			if err != nil {
				return nil, err
			}
			item.Alias = alias
		} else {
			// Derive an alias from a plain column reference.
			if ref, err := schema.ParseColumnRef(text); err == nil {
				item.Alias = ref.Attr
			} else {
				item.Alias = text
			}
		}
		q.Select = append(q.Select, item)
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	q.From = from

	// Join chain.
	for {
		var kind string
		switch {
		case p.acceptKeyword("LEFT"):
			p.acceptKeyword("OUTER")
			kind = "LEFT JOIN"
		case p.acceptKeyword("RIGHT"):
			p.acceptKeyword("OUTER")
			kind = "RIGHT JOIN"
		case p.acceptKeyword("FULL"):
			p.acceptKeyword("OUTER")
			kind = "FULL JOIN"
		case p.acceptKeyword("INNER"):
			kind = "JOIN"
		case p.peekKeyword("JOIN"):
			kind = "JOIN"
		default:
			kind = ""
		}
		if kind == "" {
			break
		}
		if err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		tbl, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, _, err := p.exprUntil("LEFT", "RIGHT", "FULL", "INNER", "JOIN", "WHERE")
		if err != nil {
			return nil, err
		}
		q.Joins = append(q.Joins, JoinClause{Kind: kind, Table: tbl, On: on})
	}

	if p.acceptKeyword("WHERE") {
		w, _, err := p.exprUntil()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == ';' {
		p.pos++
		p.skipSpace()
	}
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input %q", p.src[p.pos:])
	}
	if len(q.Select) == 0 {
		return nil, p.errf("empty select list")
	}
	return q, nil
}

func (p *parser) tableRef() (TableRef, error) {
	base, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	t := TableRef{Base: base, Alias: base}
	if p.acceptKeyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		t.Alias = alias
	}
	return t, nil
}

// ToMapping converts a parsed query into a mapping: the FROM/JOIN
// chain becomes the query graph (edges from the ON predicates), the
// select list becomes the correspondences, and the WHERE clause
// becomes source filters. Join kinds are captured as filters: the
// mapping's D(G) semantics subsumes outer joins, and preserved sides
// of inner/one-sided joins are enforced by coverage requirements — an
// inner join requires both sides covered, LEFT requires the left
// chain. targetName overrides the CREATE VIEW name.
func ToMapping(q *Query, targetName string) (*core.Mapping, error) {
	if targetName == "" {
		targetName = q.View
	}
	if targetName == "" {
		targetName = "Target"
	}
	attrs := make([]schema.Attribute, len(q.Select))
	for i, s := range q.Select {
		attrs[i] = schema.Attribute{Name: s.Alias}
	}
	target := schema.NewRelation(targetName, attrs...)
	m := core.NewMapping(targetName, target)
	if err := m.Graph.AddNode(q.From.Alias, q.From.Base); err != nil {
		return nil, err
	}
	for _, j := range q.Joins {
		if err := m.Graph.AddNode(j.Table.Alias, j.Table.Base); err != nil {
			return nil, err
		}
		// The ON predicate names both endpoints; find the partner node
		// among the predicate's columns.
		partner := ""
		for _, col := range j.On.Columns(nil) {
			ref, err := schema.ParseColumnRef(col)
			if err != nil {
				continue
			}
			if ref.Relation != j.Table.Alias && m.Graph.HasNode(ref.Relation) {
				partner = ref.Relation
			}
		}
		if partner == "" {
			return nil, fmt.Errorf("sqlparse: join ON %s does not reference an earlier table", j.On)
		}
		if err := m.Graph.AddEdge(partner, j.Table.Alias, j.On); err != nil {
			return nil, err
		}
	}
	for i, s := range q.Select {
		m.Corrs = append(m.Corrs, core.Correspondence{
			Target: schema.Col(targetName, attrs[i].Name),
			Expr:   s.Expr,
		})
	}
	if q.Where != nil {
		m.SourceFilters = append(m.SourceFilters, q.Where)
	}
	return m, nil
}

// ToJoinQuery converts the parsed statement's FROM/JOIN chain into a
// core.JoinQuery (left-deep), preserving join kinds exactly. Combined
// with core.RepresentJoinQuery this gives the exact multi-mapping
// representation for any kind mixture.
func ToJoinQuery(q *Query) (core.JoinQuery, error) {
	var jq core.JoinQuery = core.Rel{Name: q.From.Alias, Base: q.From.Base}
	present := map[string]bool{q.From.Alias: true}
	for _, j := range q.Joins {
		partner := ""
		for _, col := range j.On.Columns(nil) {
			ref, err := schema.ParseColumnRef(col)
			if err != nil {
				continue
			}
			if ref.Relation != j.Table.Alias && present[ref.Relation] {
				partner = ref.Relation
			}
		}
		if partner == "" {
			return nil, fmt.Errorf("sqlparse: join ON %s does not reference an earlier table", j.On)
		}
		leaf := core.Rel{Name: j.Table.Alias, Base: j.Table.Base}
		switch j.Kind {
		case "JOIN":
			jq = core.Inner(jq, leaf, partner, j.Table.Alias, j.On)
		case "LEFT JOIN":
			jq = core.Left(jq, leaf, partner, j.Table.Alias, j.On)
		case "RIGHT JOIN":
			jq = core.Right(jq, leaf, partner, j.Table.Alias, j.On)
		case "FULL JOIN":
			jq = core.Full(jq, leaf, partner, j.Table.Alias, j.On)
		default:
			return nil, fmt.Errorf("sqlparse: unknown join kind %q", j.Kind)
		}
		present[j.Table.Alias] = true
	}
	return jq, nil
}

// RequiredCoverage computes the nodes whose coverage a {INNER, LEFT}
// join chain forces: the FROM table, both endpoints of every inner
// join, and every ancestor (toward the FROM table) of a required
// node. It errors on RIGHT/FULL joins, whose semantics a single
// mapping cannot capture with coverage filters alone — use
// ToJoinQuery + core.RepresentJoinQuery there.
func RequiredCoverage(q *Query) ([]string, error) {
	parent := map[string]string{}
	required := map[string]bool{q.From.Alias: true}
	present := map[string]bool{q.From.Alias: true}
	for _, j := range q.Joins {
		partner := ""
		for _, col := range j.On.Columns(nil) {
			ref, err := schema.ParseColumnRef(col)
			if err != nil {
				continue
			}
			if ref.Relation != j.Table.Alias && present[ref.Relation] {
				partner = ref.Relation
			}
		}
		if partner == "" {
			return nil, fmt.Errorf("sqlparse: join ON %s does not reference an earlier table", j.On)
		}
		parent[j.Table.Alias] = partner
		present[j.Table.Alias] = true
		switch j.Kind {
		case "JOIN":
			required[j.Table.Alias] = true
			required[partner] = true
		case "LEFT JOIN":
			// optional side
		default:
			return nil, fmt.Errorf("sqlparse: %s needs the multi-mapping representation (ToJoinQuery)", j.Kind)
		}
	}
	// Upward closure.
	for n := range required {
		for p, ok := parent[n]; ok; p, ok = parent[p] {
			required[p] = true
			n = p
		}
	}
	var out []string
	for n := range required {
		out = append(out, n)
	}
	sortStrings(out)
	return out, nil
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// ImportMapping parses a CREATE VIEW / SELECT statement and builds the
// equivalent single mapping over the instance: graph, correspondences,
// WHERE filters, plus coverage filters enforcing the join kinds
// ({INNER, LEFT} chains only). The result evaluates identically to the
// statement (see the round-trip tests).
func ImportMapping(sql string, in *relation.Instance, targetName string) (*core.Mapping, error) {
	q, err := ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	m, err := ToMapping(q, targetName)
	if err != nil {
		return nil, err
	}
	req, err := RequiredCoverage(q)
	if err != nil {
		return nil, err
	}
	for _, node := range req {
		p, err := core.CoveragePredicate(m.Graph, in, node)
		if err != nil {
			return nil, err
		}
		m.SourceFilters = append(m.SourceFilters, p)
	}
	return m, nil
}
