// Package render formats relations, illustrations, and mappings as
// aligned ASCII tables — the textual stand-in for Clio's GUI viewers
// (schema viewer, workspaces, target viewer; Section 6.1).
package render

import (
	"fmt"
	"strings"

	"clio/internal/core"
	"clio/internal/fd"
	"clio/internal/graph"
	"clio/internal/relation"
	"clio/internal/schema"
)

// Options control table rendering.
type Options struct {
	// Unqualify strips relation qualifiers from column headers.
	Unqualify bool
	// MaxRows truncates output (0 = no limit); a footer reports the
	// elision.
	MaxRows int
	// Marker, when set, prepends a per-tuple marker cell (e.g. "→" for
	// highlighted example rows, Figure 3's highlighting).
	Marker func(relation.Tuple) string
}

// Table renders a relation as an aligned ASCII table.
func Table(r *relation.Relation, opt Options) string {
	headers := make([]string, r.Scheme().Arity())
	for i, n := range r.Scheme().Names() {
		if opt.Unqualify {
			if ref, err := schema.ParseColumnRef(n); err == nil {
				headers[i] = ref.Attr
				continue
			}
		}
		headers[i] = n
	}
	rows := [][]string{}
	n := r.Len()
	truncated := 0
	if opt.MaxRows > 0 && n > opt.MaxRows {
		truncated = n - opt.MaxRows
		n = opt.MaxRows
	}
	for i := 0; i < n; i++ {
		t := r.At(i)
		row := make([]string, len(headers))
		for j := 0; j < t.Scheme().Arity(); j++ {
			row[j] = t.At(j).String()
		}
		if opt.Marker != nil {
			row = append([]string{opt.Marker(t)}, row...)
		}
		rows = append(rows, row)
	}
	if opt.Marker != nil {
		headers = append([]string{""}, headers...)
	}
	out := grid(r.Name, headers, rows)
	if truncated > 0 {
		out += fmt.Sprintf("... %d more row(s)\n", truncated)
	}
	return out
}

// grid lays out a titled, aligned table.
func grid(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		b.WriteString("| ")
		for i := range headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			b.WriteString(pad(c, widths[i]))
			b.WriteString(" | ")
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Illustration renders an illustration as a table: coverage tag,
// polarity, inheritance mark, then the data association and the
// resulting target tuple (the paper's Figure 9 layout).
func Illustration(il core.Illustration, abbrev map[string]string) string {
	if len(il.Examples) == 0 {
		return "(no examples)\n"
	}
	assocScheme := il.Examples[0].Assoc.Scheme()
	tgtScheme := il.Examples[0].Target.Scheme()
	headers := []string{"cov", "±"}
	headers = append(headers, assocScheme.Names()...)
	headers = append(headers, "=>")
	for _, n := range tgtScheme.Names() {
		if ref, err := schema.ParseColumnRef(n); err == nil {
			headers = append(headers, ref.Attr)
		} else {
			headers = append(headers, n)
		}
	}
	var rows [][]string
	for _, e := range il.Examples {
		sign := "-"
		if e.Positive {
			sign = "+"
		}
		if e.Inherited {
			sign += "*"
		}
		row := []string{fd.Tag(e.Coverage, abbrev), sign}
		for i := 0; i < e.Assoc.Scheme().Arity(); i++ {
			row = append(row, e.Assoc.At(i).String())
		}
		row = append(row, "=>")
		for i := 0; i < e.Target.Scheme().Arity(); i++ {
			row = append(row, e.Target.At(i).String())
		}
		rows = append(rows, row)
	}
	title := fmt.Sprintf("illustration of %s (%d examples; +* = inherited)", il.Mapping.Name, len(il.Examples))
	return grid(title, headers, rows)
}

// Mapping renders a mapping summary: graph, correspondences, filters,
// and the canonical SQL.
func Mapping(m *core.Mapping) string {
	var b strings.Builder
	b.WriteString(m.String())
	b.WriteString("SQL:\n")
	b.WriteString(m.CanonicalSQL())
	b.WriteByte('\n')
	return b.String()
}

// Scenarios renders a list of alternative mappings with notes, the
// textual analogue of Figures 3–5's side-by-side scenarios.
func Scenarios(titles []string, bodies []string) string {
	var b strings.Builder
	for i := range titles {
		fmt.Fprintf(&b, "--- Scenario %d: %s ---\n", i+1, titles[i])
		b.WriteString(bodies[i])
		if !strings.HasSuffix(bodies[i], "\n") {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Dot renders a query graph in Graphviz dot syntax (undirected), with
// relation copies dashed and edge labels carrying the join predicates
// — the textual counterpart of Clio's schema-viewer overlay.
func Dot(g *graph.QueryGraph, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", name)
	for _, n := range g.Nodes() {
		node, _ := g.Node(n)
		style := ""
		if node.Base != node.Name {
			style = fmt.Sprintf(", style=dashed, xlabel=%q", "copy of "+node.Base)
		}
		fmt.Fprintf(&b, "  %q [shape=box%s];\n", node.Name, style)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %q -- %q [label=%q];\n", e.A, e.B, e.Label())
	}
	b.WriteString("}\n")
	return b.String()
}
