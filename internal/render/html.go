package render

import (
	"fmt"
	"html/template"
	"io"

	"clio/internal/core"
	"clio/internal/fd"
	"clio/internal/relation"
	"clio/internal/schema"
)

// HTML session report: a self-contained page with the mapping
// narrative, query graph, illustration (positive/negative rows
// colour-coded), the target view, and the generated SQL — Clio's
// synchronized viewers (Section 6.1) as a static artifact.

// HTMLReport collects everything one report shows.
type HTMLReport struct {
	Title        string
	Mapping      *core.Mapping
	Illustration core.Illustration
	TargetView   *relation.Relation
	// Abbrev abbreviates coverage tags (optional).
	Abbrev map[string]string
}

var reportTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #ccc; padding: .25rem .6rem; font-size: .85rem; }
th { background: #f2f2f2; text-align: left; }
tr.pos td { background: #eefaee; }
tr.neg td { background: #faeeee; }
td.null { color: #999; }
pre { background: #f7f7f7; padding: .8rem; overflow-x: auto; font-size: .85rem; }
.tag { font-family: monospace; }
</style></head><body>
<h1>{{.Title}}</h1>

<h2>Mapping</h2>
<pre>{{.Explanation}}</pre>

<h2>Query graph</h2>
<pre>{{.Graph}}</pre>

<h2>Illustration ({{len .Examples}} examples; green = positive, red = negative)</h2>
<table>
<tr><th>coverage</th><th>±</th>{{range .AssocHeaders}}<th>{{.}}</th>{{end}}<th>⇒</th>{{range .TargetHeaders}}<th>{{.}}</th>{{end}}</tr>
{{range .Examples}}<tr class="{{if .Positive}}pos{{else}}neg{{end}}">
<td class="tag">{{.Tag}}</td><td>{{.Sign}}</td>
{{range .Assoc}}<td{{if .Null}} class="null"{{end}}>{{.Text}}</td>{{end}}
<td>⇒</td>
{{range .Target}}<td{{if .Null}} class="null"{{end}}>{{.Text}}</td>{{end}}
</tr>
{{end}}</table>

<h2>Target view ({{.TargetCount}} rows)</h2>
<table>
<tr>{{range .ViewHeaders}}<th>{{.}}</th>{{end}}</tr>
{{range .ViewRows}}<tr>{{range .}}<td{{if .Null}} class="null"{{end}}>{{.Text}}</td>{{end}}</tr>
{{end}}</table>

<h2>SQL</h2>
<pre>{{.SQL}}</pre>
</body></html>
`))

type htmlCell struct {
	Text string
	Null bool
}

type htmlExample struct {
	Tag      string
	Sign     string
	Positive bool
	Assoc    []htmlCell
	Target   []htmlCell
}

type reportData struct {
	Title         string
	Explanation   string
	Graph         string
	AssocHeaders  []string
	TargetHeaders []string
	Examples      []htmlExample
	ViewHeaders   []string
	ViewRows      [][]htmlCell
	TargetCount   int
	SQL           string
}

// WriteHTML renders the report.
func WriteHTML(w io.Writer, r HTMLReport) error {
	data := reportData{
		Title:       r.Title,
		Explanation: r.Mapping.Explain(),
		Graph:       r.Mapping.Graph.String(),
		SQL:         r.Mapping.CanonicalSQL(),
	}
	if root, ok := r.Mapping.RequiredRoot(); ok {
		if view, err := r.Mapping.ViewSQL(root); err == nil {
			data.SQL += "\n\n" + view
		}
	}
	if len(r.Illustration.Examples) > 0 {
		first := r.Illustration.Examples[0]
		data.AssocHeaders = first.Assoc.Scheme().Names()
		for _, n := range first.Target.Scheme().Names() {
			data.TargetHeaders = append(data.TargetHeaders, unqualifyName(n))
		}
		for _, e := range r.Illustration.Examples {
			he := htmlExample{
				Tag:      fd.Tag(e.Coverage, r.Abbrev),
				Positive: e.Positive,
				Sign:     map[bool]string{true: "+", false: "−"}[e.Positive],
			}
			if e.Inherited {
				he.Sign += "*"
			}
			he.Assoc = tupleCells(e.Assoc)
			he.Target = tupleCells(e.Target)
			data.Examples = append(data.Examples, he)
		}
	}
	if r.TargetView != nil {
		for _, n := range r.TargetView.Scheme().Names() {
			data.ViewHeaders = append(data.ViewHeaders, unqualifyName(n))
		}
		data.TargetCount = r.TargetView.Len()
		limit := r.TargetView.Len()
		if limit > 200 {
			limit = 200
		}
		for i := 0; i < limit; i++ {
			data.ViewRows = append(data.ViewRows, tupleCells(r.TargetView.At(i)))
		}
	}
	if err := reportTmpl.Execute(w, data); err != nil {
		return fmt.Errorf("render: %w", err)
	}
	return nil
}

func tupleCells(t relation.Tuple) []htmlCell {
	out := make([]htmlCell, t.Scheme().Arity())
	for i := range out {
		v := t.At(i)
		out[i] = htmlCell{Text: v.String(), Null: v.IsNull()}
	}
	return out
}

func unqualifyName(n string) string {
	if ref, err := schema.ParseColumnRef(n); err == nil {
		return ref.Attr
	}
	return n
}
