package render

import (
	"context"
	"strings"
	"testing"

	"clio/internal/core"
	"clio/internal/paperdb"
	"clio/internal/relation"
)

func TestTable(t *testing.T) {
	in := paperdb.Instance()
	s := Table(in.Relation("Children"), Options{})
	for _, want := range []string{"Children", "Children.ID", "Maya", "002", "|"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	// Nulls render as "-".
	if !strings.Contains(s, "- ") {
		t.Errorf("nulls should render as -:\n%s", s)
	}
}

func TestTableUnqualify(t *testing.T) {
	in := paperdb.Instance()
	s := Table(in.Relation("Children"), Options{Unqualify: true})
	if strings.Contains(s, "Children.ID") {
		t.Errorf("headers should be unqualified:\n%s", s)
	}
	if !strings.Contains(s, "| ID") {
		t.Errorf("unqualified header missing:\n%s", s)
	}
}

func TestTableMaxRowsAndMarker(t *testing.T) {
	in := paperdb.Instance()
	s := Table(in.Relation("Parents"), Options{MaxRows: 3})
	if !strings.Contains(s, "more row(s)") {
		t.Errorf("truncation footer missing:\n%s", s)
	}
	marked := Table(in.Relation("Children"), Options{
		Marker: func(tp relation.Tuple) string {
			if tp.Get("Children.name").String() == "Maya" {
				return "→"
			}
			return ""
		},
	})
	if !strings.Contains(marked, "→") {
		t.Errorf("marker missing:\n%s", marked)
	}
}

func TestIllustration(t *testing.T) {
	in := paperdb.Instance()
	m := paperdb.Example315Mapping()
	il, err := core.SufficientIllustration(context.Background(), m, in)
	if err != nil {
		t.Fatal(err)
	}
	s := Illustration(il, paperdb.Abbrev())
	for _, want := range []string{"illustration of example3.15", "cov", "=>", "CPPhS"} {
		if !strings.Contains(s, want) {
			t.Errorf("illustration missing %q:\n%s", want, s)
		}
	}
	empty := Illustration(core.Illustration{Mapping: m}, nil)
	if !strings.Contains(empty, "no examples") {
		t.Error("empty illustration rendering wrong")
	}
}

func TestMappingAndScenarios(t *testing.T) {
	m := paperdb.Section2Mapping()
	s := Mapping(m)
	if !strings.Contains(s, "SQL:") || !strings.Contains(s, "D(G)") {
		t.Errorf("mapping rendering missing SQL:\n%s", s)
	}
	sc := Scenarios([]string{"father", "mother"}, []string{"a", "b\n"})
	if !strings.Contains(sc, "Scenario 1: father") || !strings.Contains(sc, "Scenario 2: mother") {
		t.Errorf("scenarios wrong:\n%s", sc)
	}
}

func TestDot(t *testing.T) {
	m := paperdb.Section2Mapping()
	s := Dot(m.Graph, "G")
	for _, want := range []string{
		`graph "G" {`,
		`"Parents2" [shape=box, style=dashed`,
		`"Children" -- "Parents" [label="Children.fid = Parents.ID"]`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("dot missing %q:\n%s", want, s)
		}
	}
}

func TestWriteHTML(t *testing.T) {
	in := paperdb.Instance()
	m := paperdb.Example315Mapping()
	il, err := core.SufficientIllustration(context.Background(), m, in)
	if err != nil {
		t.Fatal(err)
	}
	view, err := m.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	err = WriteHTML(&b, HTMLReport{
		Title:        "Kids session",
		Mapping:      m,
		Illustration: il,
		TargetView:   view,
		Abbrev:       paperdb.Abbrev(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := b.String()
	for _, want := range []string{
		"<title>Kids session</title>",
		"populates Kids",
		"CPPhS",
		`class="pos"`,
		`class="neg"`,
		"Target view",
		"FROM D(G)",
		"Maya",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	// Empty report still renders.
	var b2 strings.Builder
	if err := WriteHTML(&b2, HTMLReport{Title: "empty", Mapping: core.NewMapping("e", paperdb.Kids())}); err != nil {
		t.Fatal(err)
	}
}
