// Package fault provides deterministic fault injection for chaos
// testing. Production code plants named injection points at its
// failure boundaries (journal I/O, cache store/hit, fd worker
// dispatch); tests arm them with a seeded plan that injects errors,
// delays, or panics on a deterministic schedule. When the package is
// disabled — the default — every injection point reduces to a single
// atomic load and returns nil, so shipping the points costs nothing.
//
// Determinism: the same seed and the same sequence of Inject calls
// per point produce the same injection decisions, so a chaos run that
// found a bug can be replayed exactly (`make chaos` pins the seed).
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what an armed injection point does when it fires.
type Mode int

// The supported injection modes.
const (
	// ModeError makes Inject return Spec.Err (ErrInjected by default).
	ModeError Mode = iota
	// ModeDelay makes Inject sleep for Spec.Delay, then return nil.
	ModeDelay
	// ModePanic makes Inject panic with a *Panic value.
	ModePanic
)

// ErrInjected is the default error returned by ModeError points.
var ErrInjected = errors.New("fault: injected error")

// Panic is the value thrown by ModePanic points, so recover sites can
// distinguish injected panics from real ones in assertions.
type Panic struct{ Point string }

func (p *Panic) String() string { return "fault: injected panic at " + p.Point }

// Spec is an injection plan for one named point.
type Spec struct {
	Mode Mode
	// Err is returned by ModeError (ErrInjected when nil).
	Err error
	// Delay is the ModeDelay sleep.
	Delay time.Duration
	// After skips the first After hits of the point before firing.
	After int
	// Times bounds how often the point fires (0 = every hit).
	Times int
	// Prob fires the point with this probability per eligible hit,
	// drawn from the seeded stream (0 or >= 1 means always).
	Prob float64
}

// state tracks one armed point.
type state struct {
	spec  Spec
	hits  int // eligible-hit counter (after the After window)
	fired int
}

var (
	enabled atomic.Bool
	mu      sync.Mutex
	points  map[string]*state
	rng     *rand.Rand
)

// Enable arms the package with a deterministic seed. Points planted
// before or after Enable behave identically; only Set-armed points
// fire.
func Enable(seed int64) {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*state{}
	rng = rand.New(rand.NewSource(seed))
	enabled.Store(true)
}

// Disable disarms every point and restores the zero-cost fast path.
func Disable() {
	mu.Lock()
	defer mu.Unlock()
	enabled.Store(false)
	points = nil
	rng = nil
}

// Set arms the named point with a plan. It requires Enable first.
func Set(point string, s Spec) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		panic("fault: Set before Enable")
	}
	points[point] = &state{spec: s}
}

// Clear disarms one point, leaving the package enabled.
func Clear(point string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, point)
}

// Active reports whether fault injection is enabled.
func Active() bool { return enabled.Load() }

// Fired returns how many times the named point has fired.
func Fired(point string) int {
	mu.Lock()
	defer mu.Unlock()
	if st, ok := points[point]; ok {
		return st.fired
	}
	return 0
}

// Inject is the injection point. Disabled or unarmed points return
// nil immediately. Armed points follow their Spec: return an error,
// sleep, or panic. The caller decides what an error means at its
// boundary (a failed write, a cache miss, a dead worker).
func Inject(point string) error {
	if !enabled.Load() {
		return nil
	}
	mu.Lock()
	st, ok := points[point]
	if !ok {
		mu.Unlock()
		return nil
	}
	spec := st.spec
	st.hits++
	fire := st.hits > spec.After &&
		(spec.Times == 0 || st.fired < spec.Times) &&
		(spec.Prob <= 0 || spec.Prob >= 1 || rng.Float64() < spec.Prob)
	if fire {
		st.fired++
	}
	mu.Unlock()
	if !fire {
		return nil
	}
	switch spec.Mode {
	case ModeDelay:
		time.Sleep(spec.Delay)
		return nil
	case ModePanic:
		panic(&Panic{Point: point})
	default:
		if spec.Err != nil {
			return spec.Err
		}
		return fmt.Errorf("%w (point %s)", ErrInjected, point)
	}
}
