package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledPointsAreNoOps(t *testing.T) {
	Disable()
	if err := Inject("anything"); err != nil {
		t.Fatalf("disabled Inject returned %v", err)
	}
}

func TestErrorModeSchedule(t *testing.T) {
	Enable(1)
	defer Disable()
	Set("p", Spec{Mode: ModeError, After: 2, Times: 2})
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, Inject("p") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: fired=%v, want %v (schedule %v)", i, got[i], want[i], got)
		}
	}
	if Fired("p") != 2 {
		t.Errorf("Fired = %d, want 2", Fired("p"))
	}
	if err := func() error { Set("q", Spec{Mode: ModeError}); return Inject("q") }(); !errors.Is(err, ErrInjected) {
		t.Errorf("default error is not ErrInjected: %v", err)
	}
}

func TestCustomError(t *testing.T) {
	Enable(1)
	defer Disable()
	boom := errors.New("boom")
	Set("p", Spec{Mode: ModeError, Err: boom})
	if err := Inject("p"); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestPanicMode(t *testing.T) {
	Enable(1)
	defer Disable()
	Set("p", Spec{Mode: ModePanic, Times: 1})
	func() {
		defer func() {
			rec := recover()
			p, ok := rec.(*Panic)
			if !ok || p.Point != "p" {
				t.Errorf("recovered %v, want *Panic{p}", rec)
			}
		}()
		_ = Inject("p")
		t.Error("Inject did not panic")
	}()
	// Times: 1 exhausted: second hit is a no-op.
	if err := Inject("p"); err != nil {
		t.Errorf("exhausted point returned %v", err)
	}
}

func TestDelayMode(t *testing.T) {
	Enable(1)
	defer Disable()
	Set("p", Spec{Mode: ModeDelay, Delay: 10 * time.Millisecond})
	start := time.Now()
	if err := Inject("p"); err != nil {
		t.Fatalf("delay returned %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("delay did not sleep")
	}
}

func TestProbIsSeedDeterministic(t *testing.T) {
	run := func() []bool {
		Enable(42)
		defer Disable()
		Set("p", Spec{Mode: ModeError, Prob: 0.5})
		out := make([]bool, 20)
		for i := range out {
			out[i] = Inject("p") != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d: %v vs %v", i, a, b)
		}
	}
}
