// Package paperdb reconstructs the paper's running example: the
// Figure 1 source database (Children, Parents, PhoneDir, SBPS,
// XmasBar), the Kids target relation of Figure 2, and the mappings of
// Section 2 and Example 3.15.
//
// The paper references Figure 1's rows but the available text does not
// print them, so the instance here is a reconstruction constrained by
// every fact the prose states:
//
//   - Maya is child 002 (Section 2); focus children are 001, 002, 004
//     and 009 (Example 4.8).
//   - Children carry two foreign keys, mid and fid, referencing
//     Parents.ID (Section 2).
//   - Every child has a mother and every mother has a phone — so the
//     D(G) categories C, CP and CPS are empty while CPPh, CPPhS, PPh
//     and P are not (Examples 3.10 and 4.3).
//   - Parent 205 has a phone but no children: it appears in D(G) with
//     coverage PPh but not in the child-focussed illustration
//     (Example 4.8, Figure 8).
//   - The value 002 occurs in one attribute of SBPS and two
//     attributes of XmasBar (Section 2, Figure 5), and nowhere in the
//     Parents/PhoneDir ID space (parents use numeric IDs).
//   - Maya's mother and father have different affiliations, so the
//     Figure 3 scenarios are visually distinguishable (Acta vs IBM).
//   - SBPS and XmasBar carry no declared constraints: they are the
//     "cryptic" relations only reachable by data chase.
package paperdb

import (
	"context"

	"clio/internal/core"
	"clio/internal/discovery"
	"clio/internal/expr"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// Abbrev is the paper's node abbreviation map for coverage tags
// (Figure 8: C, P, P2, Ph, S).
func Abbrev() map[string]string {
	return map[string]string{
		"Children": "C",
		"Parents":  "P",
		"Parents2": "P2",
		"PhoneDir": "Ph",
		"SBPS":     "S",
		"XmasBar":  "X",
	}
}

// Schema builds the Figure 1 source schema with its declared
// constraints.
func Schema() *schema.Database {
	d := schema.NewDatabase()
	d.MustAddRelation(schema.NewRelation("Children",
		schema.Attribute{Name: "ID", Type: value.KindString},
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "age", Type: value.KindInt},
		schema.Attribute{Name: "mid", Type: value.KindInt},
		schema.Attribute{Name: "fid", Type: value.KindInt},
		schema.Attribute{Name: "docid", Type: value.KindString},
	))
	d.MustAddRelation(schema.NewRelation("Parents",
		schema.Attribute{Name: "ID", Type: value.KindInt},
		schema.Attribute{Name: "affiliation", Type: value.KindString},
		schema.Attribute{Name: "address", Type: value.KindString},
		schema.Attribute{Name: "salary", Type: value.KindInt},
	))
	d.MustAddRelation(schema.NewRelation("PhoneDir",
		schema.Attribute{Name: "ID", Type: value.KindInt},
		schema.Attribute{Name: "type", Type: value.KindString},
		schema.Attribute{Name: "number", Type: value.KindString},
	))
	d.MustAddRelation(schema.NewRelation("SBPS",
		schema.Attribute{Name: "ID", Type: value.KindString},
		schema.Attribute{Name: "time", Type: value.KindString},
		schema.Attribute{Name: "location", Type: value.KindString},
	))
	d.MustAddRelation(schema.NewRelation("XmasBar",
		schema.Attribute{Name: "giverID", Type: value.KindString},
		schema.Attribute{Name: "recipientID", Type: value.KindString},
		schema.Attribute{Name: "gift", Type: value.KindString},
	))
	d.AddKey("Children", "ID")
	d.AddKey("Parents", "ID")
	d.AddKey("PhoneDir", "ID")
	d.AddForeignKey("mid_fk", "Children", []string{"mid"}, "Parents", []string{"ID"})
	d.AddForeignKey("fid_fk", "Children", []string{"fid"}, "Parents", []string{"ID"})
	d.AddForeignKey("phone_fk", "PhoneDir", []string{"ID"}, "Parents", []string{"ID"})
	d.AddNotNull("Children", "ID")
	d.AddNotNull("Children", "name")
	d.AddNotNull("Parents", "ID")
	d.AddNotNull("PhoneDir", "ID")
	d.AddNotNull("PhoneDir", "number")
	d.AddNotNull("SBPS", "ID")
	return d
}

// Kids builds the Figure 2 target relation scheme, extended with the
// FamilyIncome (Example 3.2) and ArrivalTime (Example 6.2) attributes.
func Kids() *schema.Relation {
	return schema.NewRelation("Kids",
		schema.Attribute{Name: "ID", Type: value.KindString},
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "address", Type: value.KindString},
		schema.Attribute{Name: "affiliation", Type: value.KindString},
		schema.Attribute{Name: "contactPh", Type: value.KindString},
		schema.Attribute{Name: "BusSchedule", Type: value.KindString},
		schema.Attribute{Name: "FamilyIncome", Type: value.KindInt},
		schema.Attribute{Name: "ArrivalTime", Type: value.KindString},
	)
}

// Instance builds the Figure 1 data (see the package comment for the
// constraints the rows satisfy).
func Instance() *relation.Instance {
	in := relation.NewInstance(Schema())

	c := in.NewRelationFor("Children")
	// ID, name, age, mid, fid, docid
	c.AddRow("001", "Ann", "9", "100", "101", "d1")
	c.AddRow("002", "Maya", "6", "102", "103", "d2")
	c.AddRow("004", "Bo", "5", "104", "-", "d1")
	c.AddRow("009", "Zoe", "7", "106", "107", "-")
	in.MustAdd(c)

	p := in.NewRelationFor("Parents")
	// ID, affiliation, address, salary
	p.AddRow("100", "IBM", "12 Maple St", "65000")  // Ann's mother
	p.AddRow("101", "UofT", "12 Maple St", "58000") // Ann's father
	p.AddRow("102", "Acta", "9 Oak Ave", "72000")   // Maya's mother
	p.AddRow("103", "IBM", "9 Oak Ave", "61000")    // Maya's father
	p.AddRow("104", "AT&T", "3 Pine Rd", "54000")   // Bo's mother
	p.AddRow("106", "Sun", "7 Elm St", "69000")     // Zoe's mother
	p.AddRow("107", "HP", "7 Elm St", "47000")      // Zoe's father — no phone
	p.AddRow("205", "Acta", "1 King St", "83000")   // childless parent with phone
	in.MustAdd(p)

	ph := in.NewRelationFor("PhoneDir")
	// Every mother has a phone (no CP coverage); father 107 has none.
	ph.AddRow("100", "home", "555-0100")
	ph.AddRow("101", "work", "555-0101")
	ph.AddRow("102", "home", "555-0102")
	ph.AddRow("103", "cell", "555-0103")
	ph.AddRow("104", "home", "555-0104")
	ph.AddRow("106", "home", "555-0106")
	ph.AddRow("205", "home", "555-0205")
	in.MustAdd(ph)

	s := in.NewRelationFor("SBPS")
	// School Bus Pickup Schedule; 010 rides but is not a known child.
	s.AddRow("001", "7:15", "Maple St")
	s.AddRow("002", "7:30", "Oak Ave")
	s.AddRow("004", "7:05", "Pine Rd")
	s.AddRow("010", "7:45", "Elm St")
	in.MustAdd(s)

	x := in.NewRelationFor("XmasBar")
	// 002 appears in both giverID and recipientID (Figure 5).
	x.AddRow("001", "002", "teddy bear")
	x.AddRow("002", "004", "toy train")
	x.AddRow("009", "001", "book")
	in.MustAdd(x)

	return in
}

// Knowledge builds the declared join knowledge (FKs only): the walk
// operator's search space before any mining. SBPS and XmasBar are
// deliberately unreachable — the paper's user finds them by chase.
func Knowledge() *discovery.Knowledge {
	return discovery.BuildKnowledge(context.Background(), Instance(), false, 1)
}

// MinedKnowledge additionally mines inclusion dependencies at full
// overlap, which makes SBPS and XmasBar walkable too.
func MinedKnowledge() *discovery.Knowledge {
	return discovery.BuildKnowledge(context.Background(), Instance(), true, 1)
}

// Section2Mapping builds the final mapping of the Section 2 scenario:
// affiliation from the father (Figure 3, scenario 1), contact phone
// from the mother (Figure 4, scenario 2), bus schedule from SBPS
// (Figure 5, scenario 1), with the target constraint that every Kid
// has an ID.
func Section2Mapping() *core.Mapping {
	m := core.NewMapping("section2", Kids())
	g := m.Graph
	g.MustAddNode("Children", "Children")
	g.MustAddNode("Parents", "Parents")
	g.MustAddNode("Parents2", "Parents")
	g.MustAddNode("PhoneDir", "PhoneDir")
	g.MustAddNode("SBPS", "SBPS")
	g.MustAddEdge("Children", "Parents", expr.Equals("Children.fid", "Parents.ID"))
	g.MustAddEdge("Children", "Parents2", expr.Equals("Children.mid", "Parents2.ID"))
	g.MustAddEdge("Parents2", "PhoneDir", expr.Equals("Parents2.ID", "PhoneDir.ID"))
	g.MustAddEdge("Children", "SBPS", expr.Equals("Children.ID", "SBPS.ID"))
	m.Corrs = []core.Correspondence{
		core.Identity("Children.ID", schema.Col("Kids", "ID")),
		core.Identity("Children.name", schema.Col("Kids", "name")),
		core.Identity("Parents.address", schema.Col("Kids", "address")),
		core.Identity("Parents.affiliation", schema.Col("Kids", "affiliation")),
		core.Identity("PhoneDir.number", schema.Col("Kids", "contactPh")),
		core.Identity("SBPS.time", schema.Col("Kids", "BusSchedule")),
	}
	m.TargetFilters = []expr.Expr{expr.MustParse("Kids.ID IS NOT NULL")}
	return m
}

// Example315Mapping builds the mapping of Example 3.15: query graph G
// of Figure 6 extended with SBPS, identity correspondences for ID,
// name, affiliation (mother's) and BusSchedule, the concat
// correspondence for contactPh, C_S = {Children.age < 7} and
// C_T = {Kids.ID <> null}.
func Example315Mapping() *core.Mapping {
	m := core.NewMapping("example3.15", Kids())
	g := m.Graph
	g.MustAddNode("Children", "Children")
	g.MustAddNode("Parents", "Parents")
	g.MustAddNode("PhoneDir", "PhoneDir")
	g.MustAddNode("SBPS", "SBPS")
	g.MustAddEdge("Children", "Parents", expr.Equals("Children.mid", "Parents.ID"))
	g.MustAddEdge("Parents", "PhoneDir", expr.Equals("Parents.ID", "PhoneDir.ID"))
	g.MustAddEdge("Children", "SBPS", expr.Equals("Children.ID", "SBPS.ID"))
	m.Corrs = []core.Correspondence{
		core.Identity("Children.ID", schema.Col("Kids", "ID")),
		core.Identity("Children.name", schema.Col("Kids", "name")),
		core.Identity("Parents.affiliation", schema.Col("Kids", "affiliation")),
		core.FromExpr(expr.MustParse("concat(PhoneDir.type, PhoneDir.number)"), schema.Col("Kids", "contactPh")),
		core.Identity("SBPS.time", schema.Col("Kids", "BusSchedule")),
	}
	m.SourceFilters = []expr.Expr{expr.MustParse("Children.age < 7")}
	m.TargetFilters = []expr.Expr{expr.MustParse("Kids.ID <> null")}
	return m
}

// Figure6G builds the Figure 6 query graph G: Children—Parents (mid),
// Parents—PhoneDir (ID), as a standalone mapping graph for the D(G)
// of Figure 8.
func Figure6G() *core.Mapping {
	m := core.NewMapping("figure6-G", Kids())
	g := m.Graph
	g.MustAddNode("Children", "Children")
	g.MustAddNode("Parents", "Parents")
	g.MustAddNode("PhoneDir", "PhoneDir")
	g.MustAddEdge("Children", "Parents", expr.Equals("Children.mid", "Parents.ID"))
	g.MustAddEdge("Parents", "PhoneDir", expr.Equals("Parents.ID", "PhoneDir.ID"))
	m.Corrs = []core.Correspondence{
		core.Identity("Children.ID", schema.Col("Kids", "ID")),
		core.Identity("Children.name", schema.Col("Kids", "name")),
		core.Identity("Parents.affiliation", schema.Col("Kids", "affiliation")),
		core.Identity("PhoneDir.number", schema.Col("Kids", "contactPh")),
	}
	return m
}

// FamilyIncomeMapping builds the Example 3.2 mapping: the sum of a
// kid's parents' salaries populates Kids.FamilyIncome, using two
// copies of Parents (mother via mid, father via fid), with the
// Example 3.13 value constraint FamilyIncome < 100000.
func FamilyIncomeMapping() *core.Mapping {
	m := core.NewMapping("family-income", Kids())
	g := m.Graph
	g.MustAddNode("Children", "Children")
	g.MustAddNode("Parents", "Parents")
	g.MustAddNode("Parents2", "Parents")
	g.MustAddEdge("Children", "Parents", expr.Equals("Children.fid", "Parents.ID"))
	g.MustAddEdge("Children", "Parents2", expr.Equals("Children.mid", "Parents2.ID"))
	m.Corrs = []core.Correspondence{
		core.Identity("Children.ID", schema.Col("Kids", "ID")),
		core.Identity("Children.name", schema.Col("Kids", "name")),
		core.FromExpr(expr.MustParse("Parents.salary + Parents2.salary"),
			schema.Col("Kids", "FamilyIncome")),
	}
	m.TargetFilters = []expr.Expr{
		expr.MustParse("Kids.ID IS NOT NULL"),
		expr.MustParse("Kids.FamilyIncome < 100000 OR Kids.FamilyIncome IS NULL"),
	}
	return m
}
