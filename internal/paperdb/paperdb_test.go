package paperdb

import (
	"context"
	"strings"
	"testing"

	"clio/internal/core"
	"clio/internal/discovery"
	"clio/internal/expr"
	"clio/internal/fd"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// --- F1: the reconstructed Figure 1 instance ---

func TestSchemaValidates(t *testing.T) {
	if err := Schema().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceIntegrity(t *testing.T) {
	in := Instance()
	// Declared FKs hold on the data.
	for _, fk := range in.Schema.ForeignKs {
		from := in.Relation(fk.FromRelation)
		to := in.Relation(fk.ToRelation)
		toIx := to.BuildIndex(fk.ToRelation + "." + fk.ToAttrs[0])
		fromPos := from.Scheme().Positions(fk.FromRelation + "." + fk.FromAttrs[0])
		for _, tp := range from.Tuples() {
			v := tp.At(fromPos[0])
			if v.IsNull() {
				continue
			}
			if len(toIx.Probe(v)) == 0 {
				t.Errorf("FK %s violated by %v", fk.Name, tp)
			}
		}
	}
	// No all-null tuples (the paper's standing assumption).
	for _, r := range in.Relations() {
		for _, tp := range r.Tuples() {
			if tp.IsAllNull() {
				t.Errorf("all-null tuple in %s", r.Name)
			}
		}
	}
	// Declared keys hold.
	for _, k := range in.Schema.Keys {
		r := in.Relation(k.Relation)
		st := discovery.ProfileColumn(r, k.Relation+"."+k.Attrs[0])
		if !st.Unique {
			t.Errorf("key %v violated", k)
		}
	}
}

func TestProseFacts(t *testing.T) {
	in := Instance()
	c := in.Relation("Children")
	// Maya is child 002.
	var maya relation.Tuple
	found := false
	for _, tp := range c.Tuples() {
		if tp.Get("Children.ID").Equal(value.String("002")) {
			maya, found = tp, true
		}
	}
	if !found || maya.Get("Children.name").Str() != "Maya" {
		t.Fatal("child 002 should be Maya")
	}
	// Focus children 001, 002, 004, 009 all exist.
	for _, id := range []string{"001", "002", "004", "009"} {
		hit := false
		for _, tp := range c.Tuples() {
			if tp.Get("Children.ID").Equal(value.String(id)) {
				hit = true
			}
		}
		if !hit {
			t.Errorf("focus child %s missing", id)
		}
	}
	// Parent 205 exists, has a phone, and no children reference it.
	ph := in.Relation("PhoneDir").BuildIndex("PhoneDir.ID")
	if len(ph.Probe(value.Int(205))) != 1 {
		t.Error("parent 205 should have a phone")
	}
	for _, tp := range c.Tuples() {
		if tp.Get("Children.mid").Equal(value.Int(205)) || tp.Get("Children.fid").Equal(value.Int(205)) {
			t.Error("parent 205 should be childless")
		}
	}
	// Every mother has a phone (kills coverage CP), every child has a
	// mother (kills coverage C).
	for _, tp := range c.Tuples() {
		mid := tp.Get("Children.mid")
		if mid.IsNull() {
			t.Errorf("child %v has no mother", tp)
			continue
		}
		if len(ph.Probe(mid)) == 0 {
			t.Errorf("mother %v has no phone", mid)
		}
	}
	// The value 002 occurs in exactly one SBPS attribute and two
	// XmasBar attributes (Figure 5).
	ix := discovery.BuildValueIndex(context.Background(), in)
	perRel := map[string]int{}
	for _, occ := range ix.Occurrences(value.String("002")) {
		perRel[occ.Column.Relation]++
	}
	if perRel["SBPS"] != 1 {
		t.Errorf("002 occurs in %d SBPS attributes, want 1", perRel["SBPS"])
	}
	if perRel["XmasBar"] != 2 {
		t.Errorf("002 occurs in %d XmasBar attributes, want 2", perRel["XmasBar"])
	}
	if perRel["Parents"] != 0 || perRel["PhoneDir"] != 0 {
		t.Error("002 must not collide with parent IDs")
	}
	// Maya's mother and father have different affiliations (Figure 3).
	p := in.Relation("Parents").BuildIndex("Parents.ID")
	mother := in.Relation("Parents").At(p.Probe(maya.Get("Children.mid"))[0])
	father := in.Relation("Parents").At(p.Probe(maya.Get("Children.fid"))[0])
	if mother.Get("Parents.affiliation").Equal(father.Get("Parents.affiliation")) {
		t.Error("Maya's parents should have distinct affiliations")
	}
	if mother.Get("Parents.affiliation").Str() != "Acta" || father.Get("Parents.affiliation").Str() != "IBM" {
		t.Error("scenario affiliations should be Acta (mother) and IBM (father)")
	}
}

// --- F8: the D(G) of Figure 8 ---

func TestFigure8FullDisjunction(t *testing.T) {
	in := Instance()
	m := Figure6G()
	if err := m.Validate(in); err != nil {
		t.Fatal(err)
	}
	d, err := m.DG(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	tags := map[string]int{}
	for _, tp := range d.Tuples() {
		cov, err := fd.Coverage(tp, m.Graph, in)
		if err != nil {
			t.Fatal(err)
		}
		tags[fd.Tag(cov, Abbrev())]++
	}
	want := map[string]int{"CPPh": 4, "PPh": 3, "P": 1}
	if len(tags) != len(want) {
		t.Fatalf("coverage tags = %v, want %v", tags, want)
	}
	for k, n := range want {
		if tags[k] != n {
			t.Errorf("tag %s = %d, want %d", k, tags[k], n)
		}
	}
	if d.Len() != 8 {
		t.Errorf("|D(G)| = %d, want 8", d.Len())
	}
	// Parent 205's association is the PPh row of Figure 8.
	found := false
	for _, tp := range d.Tuples() {
		if tp.Get("Parents.ID").Equal(value.Int(205)) && tp.Get("Children.ID").IsNull() {
			found = true
		}
	}
	if !found {
		t.Error("parent 205's PPh association missing from D(G)")
	}
}

// --- F13: Examples 3.10 and 3.12 ---

func TestExample310MinimumUnion(t *testing.T) {
	in := Instance()
	g := Figure6G().Graph
	r1, err := fd.FullAssociations(context.Background(), g, in, []string{"Children", "Parents"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fd.FullAssociations(context.Background(), g, in, []string{"Children", "Parents", "PhoneDir"})
	if err != nil {
		t.Fatal(err)
	}
	// Every mother has a phone, so R1 ⊕ R2 = R2 (Example 3.10).
	mu := relation.MinimumUnion("M", r1, r2)
	if !mu.EqualSet(r2) {
		t.Errorf("R1 ⊕ R2 != R2:\n%v\nvs\n%v", mu, r2)
	}
}

func TestExample312CategoryDecomposition(t *testing.T) {
	// D(G) must equal the minimum union of F(J) over all induced
	// connected subgraphs (Definition 3.11 / Example 3.12).
	in := Instance()
	g := Figure6G().Graph
	s, err := fd.Scheme(g, in)
	if err != nil {
		t.Fatal(err)
	}
	var parts []*relation.Relation
	for _, sub := range g.ConnectedSubsets() {
		f, err := fd.FullAssociations(context.Background(), g, in, sub)
		if err != nil {
			t.Fatal(err)
		}
		padded := relation.New("", s)
		for _, tp := range f.Tuples() {
			padded.Add(tp.PadTo(s))
		}
		parts = append(parts, padded)
	}
	manual := relation.MinimumUnionAll("D(G)", parts...)
	d, err := fd.Compute(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	if !manual.EqualSet(d) {
		t.Errorf("manual decomposition disagrees with fd.Compute")
	}
}

// --- F3: the Figure 3 affiliation scenarios ---

func TestFigure3Scenarios(t *testing.T) {
	in := Instance()
	k := Knowledge()
	m := core.NewMapping("start", Kids())
	m.Graph.MustAddNode("Children", "Children")
	m.Corrs = []core.Correspondence{
		core.Identity("Children.ID", mustCol("Kids.ID")),
		core.Identity("Children.name", mustCol("Kids.name")),
	}
	alts, err := core.AddCorrespondence(context.Background(), m, k, core.Identity("Parents.affiliation", mustCol("Kids.affiliation")), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(alts) != 2 {
		t.Fatalf("alternatives = %d, want 2 (mid and fid)", len(alts))
	}
	// Each alternative gives Maya a different affiliation.
	affs := map[string]bool{}
	for _, alt := range alts {
		if err := alt.Validate(in); err != nil {
			t.Fatal(err)
		}
		res, err := alt.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range res.Tuples() {
			if tp.Get("Kids.ID").Equal(value.String("002")) {
				affs[tp.Get("Kids.affiliation").String()] = true
			}
		}
	}
	if !affs["Acta"] || !affs["IBM"] {
		t.Errorf("scenario affiliations for Maya = %v, want Acta and IBM", affs)
	}
}

func mustCol(s string) schema.ColumnRef {
	ref, err := schema.ParseColumnRef(s)
	if err != nil {
		panic(err)
	}
	return ref
}

// --- F4/F10: the Figure 4 / Figure 11 data walk ---

func TestFigure4DataWalk(t *testing.T) {
	in := Instance()
	k := Knowledge()
	// G1: Children—Parents via fid (the user chose scenario 1 for
	// affiliation).
	m := core.NewMapping("g1", Kids())
	m.Graph.MustAddNode("Children", "Children")
	m.Graph.MustAddNode("Parents", "Parents")
	m.Graph.MustAddEdge("Children", "Parents", expr.Equals("Children.fid", "Parents.ID"))
	m.Corrs = []core.Correspondence{
		core.Identity("Children.ID", mustCol("Kids.ID")),
		core.Identity("Children.name", mustCol("Kids.name")),
		core.Identity("Parents.affiliation", mustCol("Kids.affiliation")),
	}

	opts, err := core.DataWalk(context.Background(), m, k, "Children", "PhoneDir", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 2 {
		t.Fatalf("walk options = %d, want 2 (father's and mother's phone)", len(opts))
	}
	// One option reuses Parents (fid path), the other introduces
	// Parents2 (mid path) — Figure 11's G3 and G2.
	var viaFather, viaMother *core.Mapping
	for _, o := range opts {
		if o.Mapping.Graph.HasNode("Parents2") {
			if o.Copies != 1 {
				t.Errorf("mother path should introduce 1 copy, got %d", o.Copies)
			}
			viaMother = o.Mapping
		} else {
			if o.Copies != 0 {
				t.Errorf("father path should introduce no copies, got %d", o.Copies)
			}
			viaFather = o.Mapping
		}
	}
	if viaFather == nil || viaMother == nil {
		t.Fatal("expected one father-path and one mother-path option")
	}
	// Attach the phone correspondence and compare Maya's phone.
	phoneOf := func(m *core.Mapping, node string) string {
		t.Helper()
		mm, err := m.WithCorrespondence(core.Identity(node+".number", mustCol("Kids.contactPh")))
		if err != nil {
			t.Fatal(err)
		}
		if err := mm.Validate(in); err != nil {
			t.Fatal(err)
		}
		res, err := mm.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range res.Tuples() {
			if tp.Get("Kids.ID").Equal(value.String("002")) {
				return tp.Get("Kids.contactPh").String()
			}
		}
		return ""
	}
	if got := phoneOf(viaFather, "PhoneDir"); got != "555-0103" {
		t.Errorf("father's phone = %q, want 555-0103", got)
	}
	if got := phoneOf(viaMother, "PhoneDir"); got != "555-0102" {
		t.Errorf("mother's phone = %q, want 555-0102", got)
	}
}

// --- F5/F11: the Figure 5 / Figure 12 data chase ---

func TestFigure5DataChase(t *testing.T) {
	in := Instance()
	ix := discovery.BuildValueIndex(context.Background(), in)
	m := Figure6G()
	opts, err := core.DataChase(context.Background(), m, ix, "Children.ID", value.String("002"))
	if err != nil {
		t.Fatal(err)
	}
	// 002 occurs in one attribute of SBPS and two of XmasBar; Children
	// itself is referenced by the mapping, so exactly 3 options.
	if len(opts) != 3 {
		t.Fatalf("chase options = %d, want 3: %v", len(opts), opts)
	}
	byRel := map[string][]string{}
	for _, o := range opts {
		byRel[o.To.Relation] = append(byRel[o.To.Relation], o.To.Attr)
		if !o.Mapping.Graph.HasNode(o.To.Relation) {
			t.Errorf("chase option did not add node %s", o.To.Relation)
		}
		if err := o.Mapping.Validate(in); err != nil {
			t.Errorf("chase mapping invalid: %v", err)
		}
	}
	if len(byRel["SBPS"]) != 1 || byRel["SBPS"][0] != "ID" {
		t.Errorf("SBPS chase = %v", byRel["SBPS"])
	}
	if len(byRel["XmasBar"]) != 2 {
		t.Errorf("XmasBar chase = %v", byRel["XmasBar"])
	}
	// The user selects the SBPS option (scenario 1 of Figure 5) and
	// completes the mapping with v5: SBPS.time → Kids.BusSchedule.
	for _, o := range opts {
		if o.To.Relation != "SBPS" {
			continue
		}
		mm, err := o.Mapping.WithCorrespondence(core.Identity("SBPS.time", mustCol("Kids.BusSchedule")))
		if err != nil {
			t.Fatal(err)
		}
		res, err := mm.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range res.Tuples() {
			if tp.Get("Kids.ID").Equal(value.String("002")) && tp.Get("Kids.BusSchedule").String() != "7:30" {
				t.Errorf("Maya's bus schedule = %v, want 7:30", tp.Get("Kids.BusSchedule"))
			}
		}
	}
}

// --- F9: the Figure 9 sufficient illustration and Example 4.3/4.8 ---

func TestExample43Categories(t *testing.T) {
	in := Instance()
	m := Example315Mapping()
	if err := m.Validate(in); err != nil {
		t.Fatal(err)
	}
	full, err := core.AllExamples(context.Background(), m, in)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, e := range full.Examples {
		counts[fd.Tag(e.Coverage, Abbrev())]++
	}
	// Present categories.
	for tag, n := range map[string]int{"CPPhS": 3, "CPPh": 1, "PPh": 3, "P": 1, "S": 1} {
		if counts[tag] != n {
			t.Errorf("category %s = %d, want %d (all: %v)", tag, counts[tag], n, counts)
		}
	}
	// Absent categories (Example 4.3): C, CP, CPS, and also CS and Ph.
	for _, tag := range []string{"C", "CP", "CPS", "CS", "Ph"} {
		if counts[tag] != 0 {
			t.Errorf("category %s should be empty, found %d", tag, counts[tag])
		}
	}
}

func TestFigure9SufficientIllustration(t *testing.T) {
	in := Instance()
	m := Example315Mapping()
	il, err := core.SufficientIllustration(context.Background(), m, in)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := il.IsSufficient(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		missing, _ := il.MissingRequirements(in)
		t.Fatalf("illustration not sufficient; missing %v", missing)
	}
	// It contains positives (Maya, Bo: age<7 with full coverage) and
	// negatives (Ann: age 9; the PPh/P/S rows with null Kids.ID).
	if len(il.Positives()) == 0 || len(il.Negatives()) == 0 {
		t.Fatalf("expected both polarities: %v", il)
	}
	// The greedy selection is much smaller than the full example set.
	full, _ := core.AllExamples(context.Background(), m, in)
	if len(il.Examples) >= len(full.Examples) {
		t.Errorf("sufficient illustration should be smaller than all examples (%d vs %d)",
			len(il.Examples), len(full.Examples))
	}
}

func TestExample43RemovalClaims(t *testing.T) {
	in := Instance()
	m := Example315Mapping()
	full, err := core.AllExamples(context.Background(), m, in)
	if err != nil {
		t.Fatal(err)
	}
	without := func(pred func(core.Example) bool) core.Illustration {
		out := core.Illustration{Mapping: m}
		for _, e := range full.Examples {
			if !pred(e) {
				out.Examples = append(out.Examples, e)
			}
		}
		return out
	}
	// Removing ONE CPPhS example keeps sufficiency (two remain).
	removedOne := false
	il := core.Illustration{Mapping: m}
	for _, e := range full.Examples {
		if !removedOne && fd.Tag(e.Coverage, Abbrev()) == "CPPhS" && e.Positive {
			removedOne = true
			continue
		}
		il.Examples = append(il.Examples, e)
	}
	if ok, _ := il.IsSufficient(in); !ok {
		t.Error("removing one CPPhS example should keep sufficiency")
	}
	// Removing ALL PPh examples breaks sufficiency of the query graph.
	il2 := without(func(e core.Example) bool { return fd.Tag(e.Coverage, Abbrev()) == "PPh" })
	if ok, _ := il2.IsSufficient(in); ok {
		t.Error("removing all PPh examples should break sufficiency")
	}
}

func TestExample48Focus(t *testing.T) {
	in := Instance()
	m := Example315Mapping()
	// Focus tuples: the four children, over the Children node scheme.
	cs, err := in.Aliased("Children", "Children")
	if err != nil {
		t.Fatal(err)
	}
	var focus []relation.Tuple
	for _, tp := range cs.Tuples() {
		focus = append(focus, tp)
	}
	il, err := core.Focus(context.Background(), m, in, "Children", focus)
	if err != nil {
		t.Fatal(err)
	}
	// Every association involving a focus child is included: the four
	// child associations (3 CPPhS + 1 CPPh).
	if len(il.Examples) != 4 {
		t.Fatalf("focussed examples = %d, want 4:\n%v", len(il.Examples), il)
	}
	ok, err := il.IsFocussedOn(in, "Children", focus)
	if err != nil || !ok {
		t.Errorf("IsFocussedOn = %v, %v", ok, err)
	}
	// The focussed illustration excludes parent 205's association,
	// matching Example 4.8's observation.
	for _, e := range il.Examples {
		if e.Assoc.Get("Parents.ID").Equal(value.Int(205)) {
			t.Error("focussed illustration should not include parent 205")
		}
	}
	// Dropping one focus example breaks the focus property.
	il.Examples = il.Examples[1:]
	if ok, _ := il.IsFocussedOn(in, "Children", focus); ok {
		t.Error("partial illustration should not be focussed")
	}
	// Focusing on a relation outside the graph errors.
	if _, err := core.Focus(context.Background(), m, in, "XmasBar", focus); err == nil {
		t.Error("focus on non-graph relation should error")
	}
	// Merging the sufficient illustration with the focus keeps both
	// properties.
	suff, err := core.SufficientIllustration(context.Background(), m, in)
	if err != nil {
		t.Fatal(err)
	}
	focusIl, _ := core.Focus(context.Background(), m, in, "Children", focus)
	merged := focusIl.Merge(suff)
	if ok, _ := merged.IsSufficient(in); !ok {
		t.Error("merged illustration should stay sufficient")
	}
	if ok, _ := merged.IsFocussedOn(in, "Children", focus); !ok {
		t.Error("merged illustration should stay focussed")
	}
}

// --- F12: the Section 2 SQL and its refinement ---

func TestSection2Mapping(t *testing.T) {
	in := Instance()
	m := Section2Mapping()
	if err := m.Validate(in); err != nil {
		t.Fatal(err)
	}
	res, err := m.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("Kids = %d rows, want 4:\n%v", res.Len(), res)
	}
	row := map[string]relation.Tuple{}
	for _, tp := range res.Tuples() {
		row[tp.Get("Kids.ID").String()] = tp
	}
	maya := row["002"]
	if maya.Get("Kids.affiliation").String() != "IBM" { // father's
		t.Errorf("Maya affiliation = %v", maya.Get("Kids.affiliation"))
	}
	if maya.Get("Kids.contactPh").String() != "555-0102" { // mother's
		t.Errorf("Maya contactPh = %v", maya.Get("Kids.contactPh"))
	}
	if maya.Get("Kids.BusSchedule").String() != "7:30" {
		t.Errorf("Maya BusSchedule = %v", maya.Get("Kids.BusSchedule"))
	}
	bo := row["004"]
	if !bo.Get("Kids.affiliation").IsNull() || !bo.Get("Kids.address").IsNull() {
		t.Errorf("Bo has no father; affiliation/address should be null: %v", bo)
	}
	if bo.Get("Kids.contactPh").String() != "555-0104" {
		t.Errorf("Bo contactPh = %v", bo.Get("Kids.contactPh"))
	}
	zoe := row["009"]
	if !zoe.Get("Kids.BusSchedule").IsNull() {
		t.Errorf("Zoe rides no bus: %v", zoe)
	}
	if zoe.Get("Kids.affiliation").String() != "HP" {
		t.Errorf("Zoe affiliation = %v", zoe.Get("Kids.affiliation"))
	}
}

func TestSection2SQL(t *testing.T) {
	m := Section2Mapping()
	root, ok := m.RequiredRoot()
	if !ok || root != "Children" {
		t.Fatalf("RequiredRoot = %q, %v", root, ok)
	}
	sql, err := m.ViewSQL(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"CREATE VIEW Kids AS",
		"Children.ID AS ID",
		"FROM Children",
		"LEFT JOIN Parents ON Children.fid = Parents.ID",
		"LEFT JOIN Parents AS Parents2 ON Children.mid = Parents2.ID",
		"LEFT JOIN PhoneDir ON Parents2.ID = PhoneDir.ID",
		"LEFT JOIN SBPS ON Children.ID = SBPS.ID",
		"WHERE Children.ID IS NOT NULL",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("view SQL missing %q:\n%s", want, sql)
		}
	}
	canon := m.CanonicalSQL()
	for _, want := range []string{"FROM D(G)", "WHERE ID IS NOT NULL", "SBPS.time AS BusSchedule"} {
		if !strings.Contains(canon, want) {
			t.Errorf("canonical SQL missing %q:\n%s", want, canon)
		}
	}
}

func TestSection2LeftJoinEquivalence(t *testing.T) {
	// The paper's claim: with the Kids.ID not-null constraint, the
	// D(G)-based mapping query equals the left-outer-join view.
	in := Instance()
	m := Section2Mapping()
	a, err := m.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.EvaluateViaLeftJoins("Children", in)
	if err != nil {
		t.Fatal(err)
	}
	if !a.EqualSet(b) {
		t.Errorf("mapping vs left-join view mismatch:\n%v\nvs\n%v", a.Sorted(), b.Sorted())
	}
}

func TestSection2InnerJoinRefinement(t *testing.T) {
	// "if the user is interested only in children who have a bus
	// schedule ... Clio would then change this left outer join to an
	// inner join" — expressed as the target filter BusSchedule <> null.
	in := Instance()
	m := Section2Mapping().WithTargetFilter(expr.MustParse("Kids.BusSchedule IS NOT NULL"))
	res, err := m.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("refined Kids = %d rows, want 3 (Zoe drops out):\n%v", res.Len(), res)
	}
	for _, tp := range res.Tuples() {
		if tp.Get("Kids.ID").Equal(value.String("009")) {
			t.Error("Zoe should be filtered out")
		}
	}
}

// --- Evolution across the Section 2 steps ---

func TestContinuousEvolutionAcrossWalk(t *testing.T) {
	in := Instance()
	k := Knowledge()
	// Start: Children—Parents via fid.
	m := core.NewMapping("g1", Kids())
	m.Graph.MustAddNode("Children", "Children")
	m.Graph.MustAddNode("Parents", "Parents")
	m.Graph.MustAddEdge("Children", "Parents", expr.Equals("Children.fid", "Parents.ID"))
	m.Corrs = []core.Correspondence{
		core.Identity("Children.ID", mustCol("Kids.ID")),
		core.Identity("Parents.affiliation", mustCol("Kids.affiliation")),
	}
	oldIll, err := core.SufficientIllustration(context.Background(), m, in)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := core.DataWalk(context.Background(), m, k, "Children", "PhoneDir", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range opts {
		ev, err := core.Evolve(context.Background(), oldIll, o.Mapping, in)
		if err != nil {
			t.Fatal(err)
		}
		if ev.ContinuityRatio() != 1 {
			t.Errorf("continuity ratio = %v, want 1 (every old example extends)", ev.ContinuityRatio())
		}
		if ok, _ := ev.Illustration.IsSufficient(in); !ok {
			t.Error("evolved illustration should be sufficient")
		}
		inherited := 0
		for _, e := range ev.Examples {
			if e.Inherited {
				inherited++
			}
		}
		if inherited == 0 {
			t.Error("evolution should mark inherited examples")
		}
	}
}

func TestKnowledgeReachability(t *testing.T) {
	k := Knowledge()
	// Declared knowledge reaches PhoneDir but not SBPS/XmasBar.
	if len(k.Paths("Children", "PhoneDir", 3)) == 0 {
		t.Error("PhoneDir should be walkable")
	}
	if len(k.Paths("Children", "SBPS", 3)) != 0 {
		t.Error("SBPS should not be walkable from declared knowledge")
	}
	// Mined knowledge also reaches SBPS and XmasBar.
	mk := MinedKnowledge()
	if len(mk.Paths("Children", "SBPS", 3)) == 0 {
		t.Error("SBPS should be walkable after mining")
	}
	if len(mk.Paths("Children", "XmasBar", 3)) == 0 {
		t.Error("XmasBar should be walkable after mining")
	}
}

// --- Example 3.2 / 3.13: FamilyIncome from two Parents copies ---

func TestExample32FamilyIncome(t *testing.T) {
	in := Instance()
	m := FamilyIncomeMapping()
	if err := m.Validate(in); err != nil {
		t.Fatal(err)
	}
	res, err := m.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	incomes := map[string]value.Value{}
	for _, tp := range res.Tuples() {
		incomes[tp.Get("Kids.ID").String()] = tp.Get("Kids.FamilyIncome")
	}
	// Ann: 65000 + 58000 = 123000 → filtered by the 100k constraint;
	// she still appears only if her income row is excluded entirely.
	if v, ok := incomes["001"]; ok && !v.IsNull() {
		t.Errorf("Ann's income %v exceeds the Example 3.13 bound", v)
	}
	// Zoe: 69000 + 47000 = 116000 → also filtered.
	if v, ok := incomes["009"]; ok && !v.IsNull() {
		t.Errorf("Zoe's income %v exceeds the bound", v)
	}
	// Bo has no father: income is null (sum with null), kept by the
	// OR IS NULL branch.
	if v, ok := incomes["004"]; !ok || !v.IsNull() {
		t.Errorf("Bo's income = %v, want null row kept", v)
	}
	// Nobody below the bound exists in this instance (Maya: 72000 +
	// 61000 = 133000), so no non-null income survives.
	for id, v := range incomes {
		if !v.IsNull() {
			t.Errorf("kid %s has surviving income %v", id, v)
		}
	}
}

func TestSection2Explain(t *testing.T) {
	s := Section2Mapping().Explain()
	for _, want := range []string{
		`Mapping "section2" populates Kids.`,
		"Parents2 (a second copy of Parents)",
		"Children pairs with SBPS when Children.ID = SBPS.ID",
		"Kids.contactPh := PhoneDir.number",
		"Target rows are kept only when Kids.ID IS NOT NULL",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("explanation missing %q:\n%s", want, s)
		}
	}
}
