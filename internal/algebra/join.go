package algebra

import (
	"context"

	"clio/internal/budget"
	"clio/internal/expr"
	"clio/internal/obs"
	"clio/internal/relation"
	"clio/internal/value"
)

// Join-kernel counters. Per-tuple work is accumulated locally and
// published once per join so the hot loops never touch an atomic.
var (
	cJoinCalls      = obs.GetCounter("algebra.join.calls")
	cJoinHash       = obs.GetCounter("algebra.join.hash")
	cJoinNested     = obs.GetCounter("algebra.join.nested")
	cJoinProbes     = obs.GetCounter("algebra.join.probes")
	cJoinMatches    = obs.GetCounter("algebra.join.matches")
	cJoinOut        = obs.GetCounter("algebra.join.out_tuples")
	cJoinBuildLeft  = obs.GetCounter("algebra.join.build_left")
	cJoinBuildRight = obs.GetCounter("algebra.join.build_right")
)

// JoinRelations joins two materialized relations under the given kind
// and predicate, without a resource budget. See JoinRelationsCtx.
func JoinRelations(kind JoinKind, l, r *relation.Relation, on expr.Expr) *relation.Relation {
	out, err := joinRelations(kind, l, r, on, nil)
	if err != nil {
		// Unreachable: only budget charges fail, and the tracker is nil.
		panic(err)
	}
	return out
}

// JoinRelationsCtx is JoinRelations under the context's resource
// budget: every output tuple (matches and outer padding alike) is
// charged against the tracker, so a join that would materialize more
// than the budget allows stops early with a budget.Error instead of
// exhausting memory.
func JoinRelationsCtx(ctx context.Context, kind JoinKind, l, r *relation.Relation, on expr.Expr) (*relation.Relation, error) {
	return joinRelations(kind, l, r, on, budget.FromContext(ctx))
}

// joinRelations executes the join. When the predicate contains
// equality conjuncts between one left column and one right column,
// those conjuncts drive a hash join and only the residual predicate
// is evaluated per pair; otherwise the join degrades to a nested
// loop.
func joinRelations(kind JoinKind, l, r *relation.Relation, on expr.Expr, tr *budget.Tracker) (*relation.Relation, error) {
	s := l.Scheme().Concat(r.Scheme())
	out := relation.New("", s)

	lMatched := make([]bool, l.Len())
	rMatched := make([]bool, r.Len())

	eqL, eqR, residual := SplitEquiConjuncts(on, l.Scheme(), r.Scheme())

	cJoinCalls.Inc()
	var probes, matches int64

	var budgetErr error
	emit := func(li, ri int) {
		t := l.At(li).ConcatTo(s, r.At(ri))
		if residual != nil && expr.Truth(residual, t) != value.True {
			return
		}
		lMatched[li] = true
		rMatched[ri] = true
		matches++
		if err := tr.Charge(1, t.ApproxBytes()); err != nil {
			budgetErr = err
			return
		}
		out.Add(t)
	}

	if len(eqL) > 0 {
		// Hash join: build the index on the smaller relation and probe
		// with the larger one. Either way emit(li, ri) keeps the output
		// tuple layout (left++right) and the matched bookkeeping
		// identical, so only the output order depends on the build side.
		cJoinHash.Inc()
		if l.Len() <= r.Len() {
			cJoinBuildLeft.Inc()
			ix := l.BuildIndex(eqL...)
			rpos := r.Scheme().Positions(eqR...)
			for ri := 0; ri < r.Len() && budgetErr == nil; ri++ {
				probes++
				for _, li := range ix.ProbeTuple(r.At(ri), rpos) {
					emit(li, ri)
				}
			}
		} else {
			cJoinBuildRight.Inc()
			ix := r.BuildIndex(eqR...)
			lpos := l.Scheme().Positions(eqL...)
			for li := 0; li < l.Len() && budgetErr == nil; li++ {
				probes++
				for _, ri := range ix.ProbeTuple(l.At(li), lpos) {
					emit(li, ri)
				}
			}
		}
	} else {
		cJoinNested.Inc()
		for li := 0; li < l.Len() && budgetErr == nil; li++ {
			for ri := range r.Tuples() {
				probes++
				t := l.At(li).ConcatTo(s, r.At(ri))
				if expr.Truth(on, t) == value.True {
					lMatched[li] = true
					rMatched[ri] = true
					matches++
					if err := tr.Charge(1, t.ApproxBytes()); err != nil {
						budgetErr = err
						break
					}
					out.Add(t)
				}
			}
		}
	}
	cJoinProbes.Add(probes)
	cJoinMatches.Add(matches)
	if budgetErr != nil {
		return nil, budgetErr
	}

	// Outer padding.
	if kind == LeftJoin || kind == FullJoin {
		rNull := relation.AllNull(r.Scheme())
		for li, m := range lMatched {
			if !m {
				t := l.At(li).ConcatTo(s, rNull)
				if err := tr.Charge(1, t.ApproxBytes()); err != nil {
					return nil, err
				}
				out.Add(t)
			}
		}
	}
	if kind == RightJoin || kind == FullJoin {
		lNull := relation.AllNull(l.Scheme())
		for ri, m := range rMatched {
			if !m {
				t := lNull.ConcatTo(s, r.At(ri))
				if err := tr.Charge(1, t.ApproxBytes()); err != nil {
					return nil, err
				}
				out.Add(t)
			}
		}
	}
	cJoinOut.Add(int64(out.Len()))
	return out, nil
}

// SplitEquiConjuncts decomposes predicate p (viewed as a conjunction)
// into equality conjuncts usable for hashing — Col = Col with one side
// in each scheme — and a residual conjunction of everything else.
// The returned column lists are aligned: lCols[i] = rCols[i] is the
// i-th hash condition. residual is nil when nothing remains.
func SplitEquiConjuncts(p expr.Expr, ls, rs *relation.Scheme) (lCols, rCols []string, residual expr.Expr) {
	var rest []expr.Expr
	var walk func(e expr.Expr)
	walk = func(e expr.Expr) {
		if b, ok := e.(expr.Bin); ok {
			if b.Op == expr.OpAnd {
				walk(b.L)
				walk(b.R)
				return
			}
			if b.Op == expr.OpEq {
				lc, lok := b.L.(expr.Col)
				rc, rok := b.R.(expr.Col)
				if lok && rok {
					switch {
					case ls.Has(lc.Name) && rs.Has(rc.Name):
						lCols = append(lCols, lc.Name)
						rCols = append(rCols, rc.Name)
						return
					case ls.Has(rc.Name) && rs.Has(lc.Name):
						lCols = append(lCols, rc.Name)
						rCols = append(rCols, lc.Name)
						return
					}
				}
			}
		}
		rest = append(rest, e)
	}
	walk(p)
	if len(rest) > 0 {
		residual = expr.And(rest...)
	}
	return lCols, rCols, residual
}
