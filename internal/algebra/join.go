package algebra

import (
	"context"

	"clio/internal/budget"
	"clio/internal/expr"
	"clio/internal/obs"
	"clio/internal/relation"
	"clio/internal/value"
)

// Join-kernel counters. Per-tuple work is accumulated locally and
// published once per join so the hot loops never touch an atomic.
var (
	cJoinCalls      = obs.GetCounter("algebra.join.calls")
	cJoinHash       = obs.GetCounter("algebra.join.hash")
	cJoinNested     = obs.GetCounter("algebra.join.nested")
	cJoinProbes     = obs.GetCounter("algebra.join.probes")
	cJoinMatches    = obs.GetCounter("algebra.join.matches")
	cJoinOut        = obs.GetCounter("algebra.join.out_tuples")
	cJoinBuildLeft  = obs.GetCounter("algebra.join.build_left")
	cJoinBuildRight = obs.GetCounter("algebra.join.build_right")
)

// JoinRelations joins two materialized relations under the given kind
// and predicate, without a resource budget. See OpenJoin.
func JoinRelations(kind JoinKind, l, r *relation.Relation, on expr.Expr) *relation.Relation {
	out, err := Drain(OpenJoin(context.Background(), kind, l, r, on))
	if err != nil {
		// Unreachable: only budget charges and cancellation fail, and
		// the background context carries neither.
		panic(err)
	}
	return out
}

// JoinRelationsCtx materializes the join under the context's resource
// budget and cancellation: every output batch (matches and outer
// padding alike) is charged against the tracker, so a join that would
// materialize more than the budget allows stops early with a
// budget.Error instead of exhausting memory.
func JoinRelationsCtx(ctx context.Context, kind JoinKind, l, r *relation.Relation, on expr.Expr) (*relation.Relation, error) {
	return Drain(OpenJoin(ctx, kind, l, r, on))
}

// joinIter stages, in output order: matched pairs, left outer
// padding, right outer padding.
const (
	joinStageMatch = iota
	joinStageLeftPad
	joinStageRightPad
	joinStageDone
)

// joinIter streams the join of two materialized relations. When the
// predicate contains equality conjuncts between one left column and
// one right column, those conjuncts drive a hash join — the index is
// built on the smaller relation, the larger one probes — and only the
// residual predicate is evaluated per candidate pair; otherwise the
// join degrades to a nested loop. Budget charges and cancellation
// checks happen once per output batch.
type joinIter struct {
	ctx      context.Context
	flow     *budget.Flow
	kind     JoinKind
	s        *relation.Scheme
	l, r     *relation.Relation
	on       expr.Expr // nested-loop predicate (nil on the hash path)
	residual expr.Expr // hash-path residual predicate

	ix        *relation.Index    // hash path; nil means nested loop
	probe     *relation.Relation // relation whose rows drive the probes
	probePos  []int
	buildLeft bool // index is over l, so probe rows are r's

	pi   int   // next probe row (hash) / current left row (nested)
	ni   int   // nested-loop inner cursor
	cand []int // current hash bucket candidates
	ci   int

	lMatched, rMatched []bool
	lNull, rNull       relation.Tuple
	arena              *relation.TupleArena

	stage int
	padi  int

	buf             []relation.Tuple
	probes, matches int64
	op              opStats
}

// OpenJoin returns a streaming iterator over the join of two
// materialized relations, with budget accounting and cancellation
// drawn from ctx.
func OpenJoin(ctx context.Context, kind JoinKind, l, r *relation.Relation, on expr.Expr) Iterator {
	ctx, span := openOp(ctx, "op.join")
	span.SetStr("kind", kind.String())
	return newJoinIter(ctx, span, kind, l, r, on)
}

func newJoinIter(ctx context.Context, span *obs.Span, kind JoinKind, l, r *relation.Relation, on expr.Expr) *joinIter {
	it := &joinIter{
		ctx:      ctx,
		flow:     budget.FromContext(ctx).NewFlow(),
		kind:     kind,
		s:        l.Scheme().Concat(r.Scheme()),
		l:        l,
		r:        r,
		lMatched: make([]bool, l.Len()),
		rMatched: make([]bool, r.Len()),
		lNull:    relation.AllNull(l.Scheme()),
		rNull:    relation.AllNull(r.Scheme()),
		op:       opStats{span: span},
	}
	it.arena = relation.NewTupleArena(it.s)
	cJoinCalls.Inc()
	eqL, eqR, residual := SplitEquiConjuncts(on, l.Scheme(), r.Scheme())
	if len(eqL) > 0 {
		cJoinHash.Inc()
		it.residual = residual
		if l.Len() <= r.Len() {
			cJoinBuildLeft.Inc()
			it.buildLeft = true
			it.ix = l.BuildIndex(eqL...)
			it.probe = r
			it.probePos = r.Scheme().Positions(eqR...)
		} else {
			cJoinBuildRight.Inc()
			it.ix = r.BuildIndex(eqR...)
			it.probe = l
			it.probePos = l.Scheme().Positions(eqL...)
		}
		span.SetBool("hash", true)
	} else {
		cJoinNested.Inc()
		it.on = on
		span.SetBool("hash", false)
	}
	return it
}

func (it *joinIter) Scheme() *relation.Scheme { return it.s }
func (it *joinIter) Name() string             { return "" }

func (it *joinIter) Close() {
	if it.op.done {
		return
	}
	it.flow.Release()
	cJoinProbes.Add(it.probes)
	cJoinMatches.Add(it.matches)
	cJoinOut.Add(it.op.rows)
	it.op.close()
}

func (it *joinIter) Next() ([]relation.Tuple, error) {
	if err := it.ctx.Err(); err != nil {
		return nil, err
	}
	it.buf = it.buf[:0]
	var bytes int64
	for len(it.buf) < BatchSize && it.stage != joinStageDone {
		switch it.stage {
		case joinStageMatch:
			t, ok := it.nextMatch()
			if !ok {
				it.stage, it.padi = joinStageLeftPad, 0
				continue
			}
			it.buf = append(it.buf, t)
			bytes += t.ApproxBytes()
		case joinStageLeftPad:
			if it.kind != LeftJoin && it.kind != FullJoin {
				it.stage, it.padi = joinStageRightPad, 0
				continue
			}
			for it.padi < len(it.lMatched) && it.lMatched[it.padi] {
				it.padi++
			}
			if it.padi >= len(it.lMatched) {
				it.stage, it.padi = joinStageRightPad, 0
				continue
			}
			t := it.arena.Concat(it.l.At(it.padi), it.rNull)
			it.padi++
			it.buf = append(it.buf, t)
			bytes += t.ApproxBytes()
		case joinStageRightPad:
			if it.kind != RightJoin && it.kind != FullJoin {
				it.stage = joinStageDone
				continue
			}
			for it.padi < len(it.rMatched) && it.rMatched[it.padi] {
				it.padi++
			}
			if it.padi >= len(it.rMatched) {
				it.stage = joinStageDone
				continue
			}
			t := it.arena.Concat(it.lNull, it.r.At(it.padi))
			it.padi++
			it.buf = append(it.buf, t)
			bytes += t.ApproxBytes()
		}
	}
	if len(it.buf) == 0 {
		return nil, nil
	}
	if err := it.flow.Charge(int64(len(it.buf)), bytes); err != nil {
		return nil, err
	}
	it.op.observe(it.buf)
	return it.buf, nil
}

// nextMatch produces the next matched pair in probe order (hash path:
// probe relation order, then bucket order; nested path: left-major).
func (it *joinIter) nextMatch() (relation.Tuple, bool) {
	if it.ix != nil {
		for {
			for it.ci < len(it.cand) {
				b := it.cand[it.ci]
				it.ci++
				li, ri := it.pi-1, b
				if it.buildLeft {
					li, ri = b, it.pi-1
				}
				if it.residual != nil {
					probe := it.arena.ConcatScratch(it.l.At(li), it.r.At(ri))
					if expr.Truth(it.residual, probe) != value.True {
						continue
					}
				}
				it.lMatched[li] = true
				it.rMatched[ri] = true
				it.matches++
				return it.arena.Concat(it.l.At(li), it.r.At(ri)), true
			}
			if it.pi >= it.probe.Len() {
				return relation.Tuple{}, false
			}
			it.probes++
			it.cand = it.ix.ProbeTuple(it.probe.At(it.pi), it.probePos)
			it.ci = 0
			it.pi++
		}
	}
	for ; it.pi < it.l.Len(); it.pi, it.ni = it.pi+1, 0 {
		for it.ni < it.r.Len() {
			ri := it.ni
			it.ni++
			it.probes++
			probe := it.arena.ConcatScratch(it.l.At(it.pi), it.r.At(ri))
			if expr.Truth(it.on, probe) == value.True {
				it.lMatched[it.pi] = true
				it.rMatched[ri] = true
				it.matches++
				return it.arena.Concat(it.l.At(it.pi), it.r.At(ri)), true
			}
		}
	}
	return relation.Tuple{}, false
}

// SplitEquiConjuncts decomposes predicate p (viewed as a conjunction)
// into equality conjuncts usable for hashing — Col = Col with one side
// in each scheme — and a residual conjunction of everything else.
// The returned column lists are aligned: lCols[i] = rCols[i] is the
// i-th hash condition. residual is nil when nothing remains.
func SplitEquiConjuncts(p expr.Expr, ls, rs *relation.Scheme) (lCols, rCols []string, residual expr.Expr) {
	var rest []expr.Expr
	var walk func(e expr.Expr)
	walk = func(e expr.Expr) {
		if b, ok := e.(expr.Bin); ok {
			if b.Op == expr.OpAnd {
				walk(b.L)
				walk(b.R)
				return
			}
			if b.Op == expr.OpEq {
				lc, lok := b.L.(expr.Col)
				rc, rok := b.R.(expr.Col)
				if lok && rok {
					switch {
					case ls.Has(lc.Name) && rs.Has(rc.Name):
						lCols = append(lCols, lc.Name)
						rCols = append(rCols, rc.Name)
						return
					case ls.Has(rc.Name) && rs.Has(lc.Name):
						lCols = append(lCols, rc.Name)
						rCols = append(rCols, lc.Name)
						return
					}
				}
			}
		}
		rest = append(rest, e)
	}
	walk(p)
	if len(rest) > 0 {
		residual = expr.And(rest...)
	}
	return lCols, rCols, residual
}
