package algebra

// This file implements the columnar (vectorized) execution core: plan
// nodes compile to VecIterator pipelines that exchange column-major
// relation.Batch values instead of []Tuple row batches. Scans serve the
// relation's cached columnar view, Select filters with selection
// vectors over a borrowed scratch row (no per-row allocation), Project
// executes pure column permutations as zero-copy remaps, Distinct
// dedups on vectorized canonical hashes, and the equi-join runs as a
// morsel-driven partitioned hash join (vecjoin.go).
//
// The row-batched Iterator pipeline remains in place: it is the
// reference implementation the differential property tests compare
// against, and the spill tier keeps streaming row frames through it —
// OpenVec falls back to a row→vec adapter for spill-routed joins and
// any operator without a native columnar port, so the two cores always
// agree batch-for-batch on content and order.

import (
	"context"

	"clio/internal/budget"
	"clio/internal/expr"
	"clio/internal/relation"
	"clio/internal/value"
)

// VecBatchSize is the target row count of a columnar batch. Larger than
// the row-batch size because per-batch overheads (charges, cancellation
// checks, virtual calls) are amortized over typed-vector loops.
const VecBatchSize = 1024

// VecIterator is a pull-based columnar stream over one operator's
// output. NextBatch returns the next non-empty batch, or (nil, nil) at
// end of stream; the returned batch (and any selection installed on
// it) is valid only until the following NextBatch call, and is
// read-only. Close releases the operator tree; it is idempotent.
type VecIterator interface {
	Scheme() *relation.Scheme
	Name() string
	NextBatch() (*relation.Batch, error)
	Close()
}

// OpenVec compiles the node to a columnar pipeline. Operators without
// a native columnar port (cross product, union, nested-loop and
// spill-routed joins) run their row pipeline behind an adapter, so
// OpenVec accepts every plan shape.
func OpenVec(ctx context.Context, n Node, in *relation.Instance) (VecIterator, error) {
	switch x := n.(type) {
	case Scan:
		r, err := in.Aliased(x.Base, x.aliasOrBase())
		if err != nil {
			return nil, err
		}
		return newVecRelIter(ctx, r, r.Name), nil
	case Materialized:
		return newVecRelIter(ctx, x.Rel, x.Rel.Name), nil
	case Select:
		child, err := OpenVec(ctx, x.Child, in)
		if err != nil {
			return nil, err
		}
		return newVecSelectIter(child, x.Pred), nil
	case Project:
		child, err := OpenVec(ctx, x.Child, in)
		if err != nil {
			return nil, err
		}
		return newVecProjectIter(child, x.Cols, x.Name), nil
	case Distinct:
		child, err := OpenVec(ctx, x.Child, in)
		if err != nil {
			return nil, err
		}
		return newVecDistinctIter(child), nil
	case Join:
		if !budget.FromContext(ctx).SpillEnabled() {
			return openVecJoin(ctx, x, in)
		}
	}
	// Fallback: run the row pipeline and re-batch columnar.
	it, err := n.Open(ctx, in)
	if err != nil {
		return nil, err
	}
	return &rowVecAdapter{it: it, buf: relation.NewBatch(it.Scheme())}, nil
}

// CollectVec opens the node's columnar pipeline and drains it into a
// relation (tuple storage carved batch-wise from slabs).
func CollectVec(ctx context.Context, n Node, in *relation.Instance) (*relation.Relation, error) {
	it, err := OpenVec(ctx, n, in)
	if err != nil {
		return nil, err
	}
	return DrainVec(it)
}

// DrainVec materializes the remainder of a columnar iterator into a
// relation and closes it.
func DrainVec(it VecIterator) (*relation.Relation, error) {
	defer it.Close()
	out := relation.New(it.Name(), it.Scheme())
	for {
		b, err := it.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out.AppendBatch(b)
	}
}

// vecChildBatch materializes a join child as one columnar batch. Scans
// and materialized nodes return the relation's cached column view
// without copying (plus the relation itself, so a nested-loop fallback
// can reuse it); anything else drains its columnar pipeline into an
// accumulator batch — so a left-deep join chain passes column vectors
// from join to join without ever converting through rows.
func vecChildBatch(ctx context.Context, n Node, in *relation.Instance) (*relation.Batch, *relation.Relation, string, error) {
	switch x := n.(type) {
	case Scan:
		r, err := in.Aliased(x.Base, x.aliasOrBase())
		if err != nil {
			return nil, nil, "", err
		}
		return r.Columns(), r, r.Name, nil
	case Materialized:
		return x.Rel.Columns(), x.Rel, x.Rel.Name, nil
	}
	it, err := OpenVec(ctx, n, in)
	if err != nil {
		return nil, nil, "", err
	}
	defer it.Close()
	acc := relation.NewBatch(it.Scheme())
	for {
		b, err := it.NextBatch()
		if err != nil {
			return nil, nil, "", err
		}
		if b == nil {
			return acc, nil, it.Name(), nil
		}
		acc.AppendBatch(b)
	}
}

// vecRelIter streams a materialized relation's cached columnar view in
// windows.
type vecRelIter struct {
	ctx  context.Context
	b    *relation.Batch
	name string
	pos  int
	sel  []int32
	op   opStats
}

func newVecRelIter(ctx context.Context, r *relation.Relation, name string) *vecRelIter {
	ctx, span := openOp(ctx, "op.scan")
	span.SetStr("rel", r.Name)
	return &vecRelIter{ctx: ctx, b: r.Columns(), name: name, op: opStats{span: span}}
}

func (it *vecRelIter) Scheme() *relation.Scheme { return it.b.Scheme() }
func (it *vecRelIter) Name() string             { return it.name }
func (it *vecRelIter) Close()                   { it.op.close() }

func (it *vecRelIter) NextBatch() (*relation.Batch, error) {
	if err := it.ctx.Err(); err != nil {
		return nil, err
	}
	n := it.b.Rows()
	if it.pos >= n {
		return nil, nil
	}
	if it.pos == 0 && n <= VecBatchSize {
		// Whole relation in one window: serve the cached view directly.
		it.pos = n
		it.op.rows += int64(n)
		it.op.batches++
		return it.b, nil
	}
	end := min(it.pos+VecBatchSize, n)
	it.sel = it.sel[:0]
	for i := it.pos; i < end; i++ {
		it.sel = append(it.sel, int32(i))
	}
	it.pos = end
	it.op.rows += int64(len(it.sel))
	it.op.batches++
	return it.b.View(it.sel), nil
}

// vecSelectIter filters child batches under 3VL by building a
// selection vector; rows are evaluated through a borrowed scratch
// tuple, so filtering allocates nothing per row.
type vecSelectIter struct {
	child   VecIterator
	pred    expr.Expr
	scratch []value.Value
	sel     []int32
	op      opStats
}

func newVecSelectIter(child VecIterator, pred expr.Expr) *vecSelectIter {
	return &vecSelectIter{
		child:   child,
		pred:    pred,
		scratch: make([]value.Value, child.Scheme().Arity()),
	}
}

func (it *vecSelectIter) Scheme() *relation.Scheme { return it.child.Scheme() }
func (it *vecSelectIter) Name() string             { return it.child.Name() }
func (it *vecSelectIter) Close()                   { it.child.Close() }

func (it *vecSelectIter) NextBatch() (*relation.Batch, error) {
	for {
		b, err := it.child.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		it.sel = it.sel[:0]
		n := b.Len()
		for i := 0; i < n; i++ {
			t := b.TupleInto(it.scratch, i)
			if expr.Truth(it.pred, t) == value.True {
				it.sel = append(it.sel, int32(b.RowID(i)))
			}
		}
		if len(it.sel) > 0 {
			it.op.rows += int64(len(it.sel))
			it.op.batches++
			return b.View(it.sel), nil
		}
	}
}

// vecProjectIter maps child batches through the output expressions.
// When every output column is a plain column reference the projection
// is a zero-copy remap of the child's vectors; otherwise expressions
// evaluate row-wise into a rebuilt batch.
type vecProjectIter struct {
	child   VecIterator
	cols    []OutputCol
	name    string
	s       *relation.Scheme
	perm    []int // non-nil: pure column permutation
	scratch []value.Value
	out     *relation.Batch
	op      opStats
}

func newVecProjectIter(child VecIterator, cols []OutputCol, name string) *vecProjectIter {
	names := make([]string, len(cols))
	for i, col := range cols {
		names[i] = col.Name
	}
	it := &vecProjectIter{
		child: child,
		cols:  cols,
		name:  name,
		s:     relation.NewScheme(names...),
	}
	perm := make([]int, len(cols))
	pure := true
	for i, col := range cols {
		c, ok := col.Expr.(expr.Col)
		if !ok {
			pure = false
			break
		}
		p := child.Scheme().Index(c.Name)
		if p < 0 {
			pure = false
			break
		}
		perm[i] = p
	}
	if pure {
		it.perm = perm
	} else {
		it.scratch = make([]value.Value, child.Scheme().Arity())
		it.out = relation.NewBatch(it.s)
	}
	return it
}

func (it *vecProjectIter) Scheme() *relation.Scheme { return it.s }
func (it *vecProjectIter) Name() string             { return it.name }
func (it *vecProjectIter) Close()                   { it.child.Close() }

func (it *vecProjectIter) NextBatch() (*relation.Batch, error) {
	b, err := it.child.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	it.op.rows += int64(b.Len())
	it.op.batches++
	if it.perm != nil {
		return b.Remapped(it.s, it.perm), nil
	}
	it.out.Reset()
	n := b.Len()
	vals := make([]value.Value, len(it.cols))
	for i := 0; i < n; i++ {
		t := b.TupleInto(it.scratch, i)
		for c, col := range it.cols {
			vals[c] = col.Expr.Eval(t)
		}
		it.out.AppendValues(vals...)
	}
	return it.out, nil
}

// vecDedup dedups rows across batches on vectorized canonical hashes,
// retaining accepted rows in an accumulator batch for value-wise
// confirmation (bucket+confirm, like relation.Distinct).
type vecDedup struct {
	acc  *relation.Batch
	seen map[uint64]int32
	over map[uint64][]int32
	hbuf []uint64
	sel  []int32
}

func newVecDedup(s *relation.Scheme) *vecDedup {
	return &vecDedup{acc: relation.NewBatch(s), seen: map[uint64]int32{}}
}

// filter returns the physical row ids of b whose rows are new, in
// order, and retains them. The returned slice is reused across calls.
func (d *vecDedup) filter(b *relation.Batch) []int32 {
	n := b.Len()
	if cap(d.hbuf) < n {
		d.hbuf = make([]uint64, n)
	}
	hs := d.hbuf[:n]
	b.HashRows(hs, nil)
	d.sel = d.sel[:0]
	for i := 0; i < n; i++ {
		h := hs[i]
		if j, ok := d.seen[h]; ok {
			if d.acc.EqualRows(int(j), b, i) {
				continue
			}
			dup := false
			for _, k := range d.over[h] {
				if d.acc.EqualRows(int(k), b, i) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			if d.over == nil {
				d.over = map[uint64][]int32{}
			}
			d.over[h] = append(d.over[h], int32(d.acc.Rows()))
		} else {
			d.seen[h] = int32(d.acc.Rows())
		}
		d.acc.AppendRow(b, b.RowID(i))
		d.sel = append(d.sel, int32(b.RowID(i)))
	}
	return d.sel
}

// vecDistinctIter streams the child with duplicates removed, keeping
// first occurrences.
type vecDistinctIter struct {
	child VecIterator
	d     *vecDedup
	op    opStats
}

func newVecDistinctIter(child VecIterator) *vecDistinctIter {
	return &vecDistinctIter{child: child, d: newVecDedup(child.Scheme())}
}

func (it *vecDistinctIter) Scheme() *relation.Scheme { return it.child.Scheme() }
func (it *vecDistinctIter) Name() string             { return it.child.Name() }
func (it *vecDistinctIter) Close()                   { it.child.Close() }

func (it *vecDistinctIter) NextBatch() (*relation.Batch, error) {
	for {
		b, err := it.child.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		sel := it.d.filter(b)
		if len(sel) > 0 {
			it.op.rows += int64(len(sel))
			it.op.batches++
			return b.View(sel), nil
		}
	}
}

// rowVecAdapter re-batches a row iterator's output columnar — the
// compatibility shim that lets spill-routed joins and row-only
// operators participate in a columnar pipeline.
type rowVecAdapter struct {
	it  Iterator
	buf *relation.Batch
}

func (a *rowVecAdapter) Scheme() *relation.Scheme { return a.it.Scheme() }
func (a *rowVecAdapter) Name() string             { return a.it.Name() }
func (a *rowVecAdapter) Close()                   { a.it.Close() }

func (a *rowVecAdapter) NextBatch() (*relation.Batch, error) {
	batch, err := a.it.Next()
	if err != nil || batch == nil {
		return nil, err
	}
	a.buf.Reset()
	for _, t := range batch {
		a.buf.AppendTuple(t)
	}
	return a.buf, nil
}

// vecToRow materializes a columnar iterator's batches as row batches —
// the reverse shim, used when a row-only consumer sits above a
// columnar pipeline.
type vecToRow struct {
	it  VecIterator
	buf []relation.Tuple
}

func (a *vecToRow) Scheme() *relation.Scheme { return a.it.Scheme() }
func (a *vecToRow) Name() string             { return a.it.Name() }
func (a *vecToRow) Close()                   { a.it.Close() }

func (a *vecToRow) Next() ([]relation.Tuple, error) {
	b, err := a.it.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	a.buf = a.buf[:0]
	n := b.Len()
	for i := 0; i < n; i++ {
		a.buf = append(a.buf, b.Tuple(i))
	}
	return a.buf, nil
}