package algebra

import (
	"testing"

	"clio/internal/expr"
	"clio/internal/obs"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// nullKeyInstance builds two relations with NULLs in the join columns
// on both sides, including a multi-column key that is only partially
// null.
func nullKeyInstance() (*relation.Instance, *relation.Relation, *relation.Relation) {
	sch := schema.NewDatabase()
	sch.MustAddRelation(schema.NewRelation("L",
		schema.Attribute{Name: "k1", Type: value.KindString},
		schema.Attribute{Name: "k2", Type: value.KindInt},
		schema.Attribute{Name: "x", Type: value.KindString},
	))
	sch.MustAddRelation(schema.NewRelation("R",
		schema.Attribute{Name: "k1", Type: value.KindString},
		schema.Attribute{Name: "k2", Type: value.KindInt},
		schema.Attribute{Name: "y", Type: value.KindString},
	))
	in := relation.NewInstance(sch)
	l := in.NewRelationFor("L")
	l.AddRow("a", "1", "l1")
	l.AddRow("-", "1", "l2") // null k1
	l.AddRow("b", "-", "l3") // null k2
	l.AddRow("-", "-", "l4") // all-null key
	l.AddRow("c", "3", "l5")
	in.MustAdd(l)
	r := in.NewRelationFor("R")
	r.AddRow("a", "1", "r1")
	r.AddRow("-", "1", "r2") // null k1: must match nothing, not L's null
	r.AddRow("-", "-", "r3")
	r.AddRow("c", "3", "r4")
	r.AddRow("d", "4", "r5")
	in.MustAdd(r)
	return in, l, r
}

// TestNullJoinKeysHashPath is the regression test for the hash path:
// NULL join keys never match, including NULL = NULL, exactly as in the
// nested-loop path where the predicate evaluates to Unknown.
func TestNullJoinKeysHashPath(t *testing.T) {
	_, l, r := nullKeyInstance()
	pred := expr.MustParse("L.k1 = R.k1 AND L.k2 = R.k2")
	for _, kind := range []JoinKind{InnerJoin, LeftJoin, RightJoin, FullJoin} {
		out := JoinRelations(kind, l, r, pred)
		for _, tp := range out.Tuples() {
			lNull := tp.Get("L.k1").IsNull() || tp.Get("L.k2").IsNull()
			rNull := tp.Get("R.k1").IsNull() || tp.Get("R.k2").IsNull()
			matched := !tp.Get("L.x").IsNull() && !tp.Get("R.y").IsNull()
			if matched && (lNull || rNull) {
				t.Errorf("%v: null join key matched on hash path: %v", kind, tp)
			}
		}
	}
	// Inner join matches exactly the two fully non-null key pairs.
	out := JoinRelations(InnerJoin, l, r, pred)
	if out.Len() != 2 {
		t.Fatalf("inner join len = %d, want 2:\n%v", out.Len(), out)
	}
}

// TestNullJoinKeysBothPathsAgree asserts the hash path and the
// nested-loop path produce identical results on relations containing
// NULLs in the join columns, for every join kind.
func TestNullJoinKeysBothPathsAgree(t *testing.T) {
	_, l, r := nullKeyInstance()
	// Col = Col conjuncts drive the hash path; the +0 rewrite defeats
	// SplitEquiConjuncts so the same predicate runs as a nested loop.
	hashPred := expr.MustParse("L.k1 = R.k1 AND L.k2 = R.k2")
	nlPred := expr.MustParse("L.k1 = R.k1 AND L.k2 + 0 = R.k2")
	for _, kind := range []JoinKind{InnerJoin, LeftJoin, RightJoin, FullJoin} {
		hash := JoinRelations(kind, l, r, hashPred)
		nl := JoinRelations(kind, l, r, nlPred)
		if !hash.EqualSet(nl) {
			t.Fatalf("%v: hash and nested-loop paths disagree on NULL keys\nhash:\n%v\nnested loop:\n%v",
				kind, hash, nl)
		}
	}
}

// TestHashJoinBuildsOnSmallerSide covers the build-side selection: a
// tiny left relation joined against a large right relation must build
// the index on the left, and the result must be identical to the
// nested-loop reference regardless of the build side.
func TestHashJoinBuildsOnSmallerSide(t *testing.T) {
	sch := schema.NewDatabase()
	sch.MustAddRelation(schema.NewRelation("S",
		schema.Attribute{Name: "k", Type: value.KindInt},
		schema.Attribute{Name: "x", Type: value.KindInt}))
	sch.MustAddRelation(schema.NewRelation("B",
		schema.Attribute{Name: "k", Type: value.KindInt},
		schema.Attribute{Name: "y", Type: value.KindInt}))
	in := relation.NewInstance(sch)
	s := in.NewRelationFor("S")
	s.AddValues(value.Int(1), value.Int(10))
	s.AddValues(value.Int(3), value.Int(30))
	s.AddValues(value.Null, value.Int(99))
	in.MustAdd(s)
	b := in.NewRelationFor("B")
	for i := 0; i < 200; i++ {
		b.AddValues(value.Int(int64(i%10)), value.Int(int64(i)))
	}
	in.MustAdd(b)

	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(wasEnabled)

	pred := expr.Equals("S.k", "B.k")
	for _, kind := range []JoinKind{InnerJoin, LeftJoin, RightJoin, FullJoin} {
		// Left much smaller: index must be built on the left.
		before := cJoinBuildLeft.Value()
		hash := JoinRelations(kind, s, b, pred)
		if cJoinBuildLeft.Value() != before+1 {
			t.Fatalf("%v: small left side did not build the index on the left", kind)
		}
		nl := JoinRelations(kind, s, b, expr.MustParse("S.k + 0 = B.k"))
		if !hash.EqualSet(nl) {
			t.Fatalf("%v: build-on-left join differs from nested loop\nhash:\n%v\nnl:\n%v", kind, hash, nl)
		}
		// Mirrored: small side on the right must build on the right.
		before = cJoinBuildRight.Value()
		hash = JoinRelations(kind, b, s, expr.Equals("B.k", "S.k"))
		if cJoinBuildRight.Value() != before+1 {
			t.Fatalf("%v: small right side did not build the index on the right", kind)
		}
		nl = JoinRelations(kind, b, s, expr.MustParse("B.k + 0 = S.k"))
		if !hash.EqualSet(nl) {
			t.Fatalf("%v: build-on-right join differs from nested loop", kind)
		}
	}
}
