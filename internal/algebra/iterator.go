package algebra

// This file implements the streaming execution core: every plan node
// compiles to a pull-based batched Iterator via Node.Open. Scan,
// Select, Project and Union stream tuple batches through without
// materializing intermediates; Join, Cross, Distinct and MinUnion are
// pipeline breakers that build hash tables (or drain their inputs)
// before emitting. Budget accounting and context-cancellation checks
// live here, amortized to one check per batch instead of one per row.
// Eval remains as a thin wrapper that drains the pipeline into a
// relation, so materializing call sites and SQL generation are
// untouched.

import (
	"context"
	"fmt"

	"clio/internal/budget"
	"clio/internal/expr"
	"clio/internal/obs"
	"clio/internal/relation"
	"clio/internal/value"
)

// BatchSize is the number of tuples an iterator yields per Next call.
// Batching amortizes per-row overheads — cancellation checks, budget
// charges, instrumentation — across the batch.
const BatchSize = 64

// Iterator is a pull-based tuple stream over one operator's output.
//
// Next returns the next non-empty batch, or (nil, nil) at end of
// stream. The returned slice is reused: it is valid only until the
// following Next call, and consumers that retain tuples must copy the
// Tuple structs out (tuples themselves are immutable). Cancellation
// of the Open context and budget exhaustion surface as errors from
// Next, checked once per batch. Close releases the operator tree and
// ends its trace spans; it is idempotent.
type Iterator interface {
	// Scheme is the stream's tuple scheme.
	Scheme() *relation.Scheme
	// Name is the result relation name ("" when anonymous).
	Name() string
	Next() ([]relation.Tuple, error)
	Close()
}

// Streamed-row counters, published once per iterator on Close.
var (
	cIterRows    = obs.GetCounter("algebra.iter.rows")
	cIterBatches = obs.GetCounter("algebra.iter.batches")
)

// opStats instruments one operator: its trace span (so --trace span
// trees show the pipeline shape) plus rows/batches totals recorded as
// span attributes and folded into the package counters on close.
type opStats struct {
	span    *obs.Span
	rows    int64
	batches int64
	done    bool
}

// openOp starts an operator span nested under the span carried by
// ctx. When ctx carries no span — every background Eval call — no
// span is started, so iterator pipelines never create trace roots of
// their own.
func openOp(ctx context.Context, name string) (context.Context, *obs.Span) {
	if obs.CurrentSpan(ctx) == nil {
		return ctx, nil
	}
	return obs.StartSpan(ctx, name)
}

func (o *opStats) observe(batch []relation.Tuple) {
	o.rows += int64(len(batch))
	o.batches++
}

// close publishes the totals and ends the span, once; it reports
// whether this call was the one that closed.
func (o *opStats) close() bool {
	if o.done {
		return false
	}
	o.done = true
	cIterRows.Add(o.rows)
	cIterBatches.Add(o.batches)
	o.span.SetInt("rows", o.rows)
	o.span.SetInt("batches", o.batches)
	o.span.End()
	return true
}

// Drain materializes the remainder of an iterator into a relation and
// closes it.
func Drain(it Iterator) (*relation.Relation, error) {
	defer it.Close()
	out := relation.New(it.Name(), it.Scheme())
	for {
		batch, err := it.Next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			return out, nil
		}
		for _, t := range batch {
			out.Add(t)
		}
	}
}

// Collect opens the node's iterator pipeline against the instance and
// drains it into a relation.
func Collect(ctx context.Context, n Node, in *relation.Instance) (*relation.Relation, error) {
	it, err := n.Open(ctx, in)
	if err != nil {
		return nil, err
	}
	return Drain(it)
}

// materializeChild evaluates a pipeline-breaker input. Scans and
// already-materialized nodes return their stored relation without
// copying; anything else drains its iterator pipeline under ctx.
func materializeChild(ctx context.Context, n Node, in *relation.Instance) (*relation.Relation, error) {
	switch x := n.(type) {
	case Scan:
		return x.Eval(in)
	case Materialized:
		return x.Rel, nil
	}
	return Collect(ctx, n, in)
}

// relIter streams an already-materialized relation in batches; the
// source for Scan, Materialized and the output of pipeline breakers.
type relIter struct {
	ctx  context.Context
	rel  *relation.Relation
	name string
	pos  int
	op   opStats
}

func newRelIter(ctx context.Context, opName string, rel *relation.Relation, name string) *relIter {
	ctx, span := openOp(ctx, opName)
	return &relIter{ctx: ctx, rel: rel, name: name, op: opStats{span: span}}
}

func (it *relIter) Scheme() *relation.Scheme { return it.rel.Scheme() }
func (it *relIter) Name() string             { return it.name }
func (it *relIter) Close()                   { it.op.close() }

func (it *relIter) Next() ([]relation.Tuple, error) {
	if err := it.ctx.Err(); err != nil {
		return nil, err
	}
	ts := it.rel.Tuples()
	if it.pos >= len(ts) {
		return nil, nil
	}
	end := it.pos + BatchSize
	if end > len(ts) {
		end = len(ts)
	}
	batch := ts[it.pos:end]
	it.pos = end
	it.op.observe(batch)
	return batch, nil
}

// Open returns the (possibly aliased) stored relation as a stream.
func (s Scan) Open(ctx context.Context, in *relation.Instance) (Iterator, error) {
	r, err := in.Aliased(s.Base, s.aliasOrBase())
	if err != nil {
		return nil, err
	}
	it := newRelIter(ctx, "op.scan", r, r.Name)
	it.op.span.SetStr("rel", r.Name)
	return it, nil
}

// Open returns the wrapped relation as a stream.
func (m Materialized) Open(ctx context.Context, _ *relation.Instance) (Iterator, error) {
	return newRelIter(ctx, "op.materialized", m.Rel, m.Rel.Name), nil
}

// selectIter streams the child's batches filtered under 3VL.
type selectIter struct {
	child Iterator
	pred  expr.Expr
	buf   []relation.Tuple
	op    opStats
}

// Open streams the filtered child.
func (s Select) Open(ctx context.Context, in *relation.Instance) (Iterator, error) {
	ctx, span := openOp(ctx, "op.select")
	child, err := s.Child.Open(ctx, in)
	if err != nil {
		span.End()
		return nil, err
	}
	return &selectIter{child: child, pred: s.Pred, op: opStats{span: span}}, nil
}

func (it *selectIter) Scheme() *relation.Scheme { return it.child.Scheme() }
func (it *selectIter) Name() string             { return it.child.Name() }
func (it *selectIter) Close() {
	it.child.Close()
	it.op.close()
}

func (it *selectIter) Next() ([]relation.Tuple, error) {
	it.buf = it.buf[:0]
	for {
		batch, err := it.child.Next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			return nil, nil
		}
		for _, t := range batch {
			if expr.Truth(it.pred, t) == value.True {
				it.buf = append(it.buf, t)
			}
		}
		if len(it.buf) > 0 {
			it.op.observe(it.buf)
			return it.buf, nil
		}
	}
}

// projectIter maps each child batch through the output expressions.
type projectIter struct {
	child Iterator
	cols  []OutputCol
	name  string
	s     *relation.Scheme
	buf   []relation.Tuple
	op    opStats
}

// Open streams the projection.
func (p Project) Open(ctx context.Context, in *relation.Instance) (Iterator, error) {
	ctx, span := openOp(ctx, "op.project")
	child, err := p.Child.Open(ctx, in)
	if err != nil {
		span.End()
		return nil, err
	}
	names := make([]string, len(p.Cols))
	for i, col := range p.Cols {
		names[i] = col.Name
	}
	return &projectIter{
		child: child,
		cols:  p.Cols,
		name:  p.Name,
		s:     relation.NewScheme(names...),
		op:    opStats{span: span},
	}, nil
}

func (it *projectIter) Scheme() *relation.Scheme { return it.s }
func (it *projectIter) Name() string             { return it.name }
func (it *projectIter) Close() {
	it.child.Close()
	it.op.close()
}

func (it *projectIter) Next() ([]relation.Tuple, error) {
	batch, err := it.child.Next()
	if err != nil || batch == nil {
		return nil, err
	}
	it.buf = it.buf[:0]
	for _, t := range batch {
		vals := make([]value.Value, len(it.cols))
		for i, col := range it.cols {
			vals[i] = col.Expr.Eval(t)
		}
		it.buf = append(it.buf, relation.NewTuple(it.s, vals...))
	}
	it.op.observe(it.buf)
	return it.buf, nil
}

// dedup is a streaming duplicate filter keyed on Tuple.Hash64 with
// value-wise confirmation: the first tuple per hash lives in a compact
// map and true hash collisions spill into a rare overflow map, so no
// per-tuple key strings are allocated.
type dedup struct {
	seen map[uint64]relation.Tuple
	over map[uint64][]relation.Tuple
}

// add records t and reports whether it was new.
func (d *dedup) add(t relation.Tuple) bool {
	h := t.Hash64()
	u, ok := d.seen[h]
	if !ok {
		d.seen[h] = t
		return true
	}
	if u.Equal(t) {
		return false
	}
	for _, v := range d.over[h] {
		if v.Equal(t) {
			return false
		}
	}
	if d.over == nil {
		d.over = map[uint64][]relation.Tuple{}
	}
	d.over[h] = append(d.over[h], t)
	return true
}

// distinctIter streams the child with duplicates removed, keeping
// first occurrences.
type distinctIter struct {
	child Iterator
	d     dedup
	buf   []relation.Tuple
	op    opStats
}

// Open streams the deduplicated child.
func (d Distinct) Open(ctx context.Context, in *relation.Instance) (Iterator, error) {
	ctx, span := openOp(ctx, "op.distinct")
	child, err := d.Child.Open(ctx, in)
	if err != nil {
		span.End()
		return nil, err
	}
	return &distinctIter{child: child, d: dedup{seen: map[uint64]relation.Tuple{}}, op: opStats{span: span}}, nil
}

func (it *distinctIter) Scheme() *relation.Scheme { return it.child.Scheme() }
func (it *distinctIter) Name() string             { return it.child.Name() }
func (it *distinctIter) Close() {
	it.child.Close()
	it.op.close()
}

func (it *distinctIter) Next() ([]relation.Tuple, error) {
	it.buf = it.buf[:0]
	for {
		batch, err := it.child.Next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			return nil, nil
		}
		for _, t := range batch {
			if it.d.add(t) {
				it.buf = append(it.buf, t)
			}
		}
		if len(it.buf) > 0 {
			it.op.observe(it.buf)
			return it.buf, nil
		}
	}
}

// unionIter streams the deduplicated union: all of the left stream,
// then the right stream aligned to the left scheme, duplicates removed
// across both in first-occurrence order.
type unionIter struct {
	left, right Iterator
	s           *relation.Scheme
	name        string
	alignRight  bool
	onRight     bool
	d           dedup
	buf         []relation.Tuple
	op          opStats
}

// Open streams the union; the children's schemes must have the same
// attribute set.
func (u Union) Open(ctx context.Context, in *relation.Instance) (Iterator, error) {
	ctx, span := openOp(ctx, "op.union")
	l, err := u.L.Open(ctx, in)
	if err != nil {
		span.End()
		return nil, err
	}
	r, err := u.R.Open(ctx, in)
	if err != nil {
		l.Close()
		span.End()
		return nil, err
	}
	if !l.Scheme().SameSet(r.Scheme()) {
		err := fmt.Errorf("algebra: UNION of incompatible schemes %v and %v", l.Scheme(), r.Scheme())
		l.Close()
		r.Close()
		span.End()
		return nil, err
	}
	return &unionIter{
		left:       l,
		right:      r,
		s:          l.Scheme(),
		name:       l.Name(),
		alignRight: !l.Scheme().Equal(r.Scheme()),
		d:          dedup{seen: map[uint64]relation.Tuple{}},
		op:         opStats{span: span},
	}, nil
}

func (it *unionIter) Scheme() *relation.Scheme { return it.s }
func (it *unionIter) Name() string             { return it.name }
func (it *unionIter) Close() {
	it.left.Close()
	it.right.Close()
	it.op.close()
}

func (it *unionIter) Next() ([]relation.Tuple, error) {
	it.buf = it.buf[:0]
	for {
		src := it.left
		if it.onRight {
			src = it.right
		}
		batch, err := src.Next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			if it.onRight {
				return nil, nil
			}
			it.onRight = true
			continue
		}
		for _, t := range batch {
			if it.onRight && it.alignRight {
				t = t.Project(it.s)
			}
			if it.d.add(t) {
				it.buf = append(it.buf, t)
			}
		}
		if len(it.buf) > 0 {
			it.op.observe(it.buf)
			return it.buf, nil
		}
	}
}

// crossIter streams the cross product: the left input is streamed,
// the right input is materialized once, and every output batch is
// charged against the context budget.
type crossIter struct {
	ctx    context.Context
	flow   *budget.Flow
	s      *relation.Scheme
	left   Iterator
	lbatch []relation.Tuple
	li     int
	r      *relation.Relation
	ri     int
	done   bool
	buf    []relation.Tuple
	op     opStats
}

// Open streams the cross product, materializing only the right child.
func (c Cross) Open(ctx context.Context, in *relation.Instance) (Iterator, error) {
	ctx, span := openOp(ctx, "op.cross")
	left, err := c.L.Open(ctx, in)
	if err != nil {
		span.End()
		return nil, err
	}
	r, err := materializeChild(ctx, c.R, in)
	if err != nil {
		left.Close()
		span.End()
		return nil, err
	}
	return &crossIter{
		ctx:  ctx,
		flow: budget.FromContext(ctx).NewFlow(),
		s:    left.Scheme().Concat(r.Scheme()),
		left: left,
		r:    r,
		op:   opStats{span: span},
	}, nil
}

func (it *crossIter) Scheme() *relation.Scheme { return it.s }
func (it *crossIter) Name() string             { return "" }
func (it *crossIter) Close() {
	it.flow.Release()
	it.left.Close()
	it.op.close()
}

func (it *crossIter) Next() ([]relation.Tuple, error) {
	if err := it.ctx.Err(); err != nil {
		return nil, err
	}
	it.buf = it.buf[:0]
	var bytes int64
	for len(it.buf) < BatchSize && !it.done && it.r.Len() > 0 {
		if it.li >= len(it.lbatch) {
			batch, err := it.left.Next()
			if err != nil {
				return nil, err
			}
			if batch == nil {
				it.done = true
				break
			}
			it.lbatch, it.li, it.ri = batch, 0, 0
		}
		t := it.lbatch[it.li].ConcatTo(it.s, it.r.At(it.ri))
		it.buf = append(it.buf, t)
		bytes += t.ApproxBytes()
		it.ri++
		if it.ri >= it.r.Len() {
			it.ri = 0
			it.li++
		}
	}
	if len(it.buf) == 0 {
		return nil, nil
	}
	if err := it.flow.Charge(int64(len(it.buf)), bytes); err != nil {
		return nil, err
	}
	it.op.observe(it.buf)
	return it.buf, nil
}

// Open computes the minimum union of the materialized children and
// streams the result.
func (m MinUnion) Open(ctx context.Context, in *relation.Instance) (Iterator, error) {
	ctx, span := openOp(ctx, "op.minunion")
	rels := make([]*relation.Relation, len(m.Children))
	for i, c := range m.Children {
		r, err := materializeChild(ctx, c, in)
		if err != nil {
			span.End()
			return nil, err
		}
		rels[i] = r
	}
	out := relation.MinimumUnionAll(m.Name, rels...)
	return &relIter{ctx: ctx, rel: out, name: m.Name, op: opStats{span: span}}, nil
}
