package algebra_test

import (
	"context"
	"fmt"
	"testing"

	"clio/internal/algebra"
	"clio/internal/expr"
	"clio/internal/paperdb"
	"clio/internal/relation"
	"clio/internal/value"
)

// The allocation story of the hash-keyed core: neither duplicate
// elimination nor the hash-join build/probe loops may allocate a
// string per tuple (the old canonical-key encoding did). The
// benchmarks report allocs/op on the paper's Figure-8 instance; the
// AllocsPerRun tests pin the no-per-tuple-allocation property on
// inputs large enough that any per-tuple allocation dominates.

func BenchmarkFigure8HashJoin(b *testing.B) {
	in := paperdb.Instance()
	l := in.Relation("Children")
	r := in.Relation("Parents")
	on := expr.MustParse("Children.mid = Parents.ID")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algebra.JoinRelations(algebra.InnerJoin, l, r, on)
	}
}

func BenchmarkFigure8Distinct(b *testing.B) {
	in := paperdb.Instance()
	c := in.Relation("Children")
	doubled := relation.New("C2", c.Scheme())
	for _, t := range c.Tuples() {
		doubled.Add(t)
		doubled.Add(t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doubled.Distinct()
	}
}

// stringRelation builds n rows of string-valued tuples — the worst
// case for a string-keyed encoding, which would allocate a fresh key
// per tuple.
func stringRelation(name string, n, dup int) *relation.Relation {
	r := relation.New(name, relation.NewScheme(name+".k", name+".v"))
	for i := 0; i < n; i++ {
		r.AddValues(value.String(fmt.Sprintf("key-%d", i/dup)), value.String(fmt.Sprintf("val-%d", i)))
	}
	return r
}

// Distinct over n string tuples must allocate O(1) amortized per run,
// not per tuple: the dedup state is hash-keyed, so only map growth
// and the survivor slice allocate.
func TestDistinctAllocsDoNotScalePerTuple(t *testing.T) {
	const n = 4096
	r := stringRelation("R", n, 2) // every key twice: real dedup work
	allocs := testing.AllocsPerRun(5, func() { r.Distinct() })
	if allocs >= n/4 {
		t.Errorf("Distinct allocated %.0f times for %d rows — scales per tuple", allocs, n)
	}
}

// A hash join probe loop over n tuples with no matches must not
// allocate per probe: hashing is allocation-free, so only the index
// build and iterator scaffolding allocate.
func TestHashJoinProbeAllocsDoNotScalePerTuple(t *testing.T) {
	const n = 4096
	l := stringRelation("L", n, 1)
	r := relation.New("R", relation.NewScheme("R.k", "R.v"))
	for i := 0; i < n; i++ {
		r.AddValues(value.String(fmt.Sprintf("other-%d", i)), value.String("x"))
	}
	on := expr.MustParse("L.k = R.k")
	allocs := testing.AllocsPerRun(5, func() {
		algebra.JoinRelations(algebra.InnerJoin, l, r, on)
	})
	if allocs >= n/4 {
		t.Errorf("no-match hash join allocated %.0f times for %d probes — scales per tuple", allocs, n)
	}
}

// vecInstance wraps relations into an instance for the columnar
// pipeline entry points.
func vecInstance(rels ...*relation.Relation) *relation.Instance {
	in := relation.NewInstance(nil)
	for _, r := range rels {
		in.MustAdd(r)
	}
	return in
}

// The vectorized distinct kernel over n heavily-duplicated rows must
// allocate O(survivors), not O(n): per-tuple work is hash mixing over
// column vectors plus open-addressed probes, none of which allocate.
func TestVecDistinctAllocsDoNotScalePerTuple(t *testing.T) {
	const n = 4096
	r := stringRelation("R", n, 64) // 64 copies per key: 64 survivors
	in := vecInstance(r)
	n1 := algebra.Distinct{Child: algebra.NewScan("R", "")}
	allocs := testing.AllocsPerRun(5, func() {
		it, err := algebra.OpenVec(context.Background(), n1, in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := algebra.DrainVec(it); err != nil {
			t.Fatal(err)
		}
	})
	if allocs >= n/4 {
		t.Errorf("vectorized distinct allocated %.0f times for %d rows — scales per tuple", allocs, n)
	}
}

// The partitioned columnar join's probe loop over n no-match probes
// must not allocate per probe: partition routing and bucket probes run
// on preallocated vectors, and an empty match set emits nothing.
func TestVecJoinProbeAllocsDoNotScalePerTuple(t *testing.T) {
	const n = 4096
	l := stringRelation("L", n, 1)
	r := relation.New("R", relation.NewScheme("R.k", "R.v"))
	for i := 0; i < n; i++ {
		r.AddValues(value.String(fmt.Sprintf("other-%d", i)), value.String("x"))
	}
	in := vecInstance(l, r)
	join := algebra.Join{Kind: algebra.InnerJoin,
		L: algebra.NewScan("L", ""), R: algebra.NewScan("R", ""),
		On: expr.MustParse("L.k = R.k")}
	allocs := testing.AllocsPerRun(5, func() {
		it, err := algebra.OpenVec(context.Background(), join, in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := algebra.DrainVec(it); err != nil {
			t.Fatal(err)
		}
	})
	if allocs >= n/4 {
		t.Errorf("no-match columnar join allocated %.0f times for %d probes — scales per tuple", allocs, n)
	}
}
