package algebra

// Morsel-driven partitioned hash join over columnar batches — the
// in-memory equi-join kernel of the columnar core (the spill tier keeps
// the row-based Grace join; OpenVec routes to it when spilling is
// enabled).
//
// Build: the smaller input's key columns are hashed vectorized with the
// canonical row hash, then scattered into hash partitions; each worker
// owns a disjoint set of partitions and builds them with the same
// two-pass (count, fill) arena layout relation.BuildIndex uses, so the
// build table takes no locks and buckets list build rows in ascending
// order. Probe: workers claim fixed-size morsels of probe rows from an
// atomic cursor and probe only the partition a hash selects, collecting
// matched (probe, build) pairs per morsel; morsels are stitched back in
// probe order, so the output — matched pairs in probe-row order with
// ascending build rows per probe, then left padding, then right
// padding — is byte-identical to the row joinIter's, regardless of
// worker count. On a single-core host the whole thing runs inline on
// the calling goroutine: the morsel loop is the same, minus the
// goroutines.
//
// The probe loop performs no per-tuple allocation: hashes are
// precomputed vectorized, candidate buckets are arena subslices, key
// confirmation reads the typed vectors, and pair lists grow
// amortized. Output rows are gathered column-wise straight from both
// children's vectors (AppendConcatGather), null-padding outer rows with
// a negative row id instead of materializing null tuples.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"clio/internal/budget"
	"clio/internal/expr"
	"clio/internal/relation"
	"clio/internal/value"
)

// joinMorsel is the number of probe rows a worker claims at a time.
const joinMorsel = 1024

// vecJoinWorkers overrides the worker count when positive; tests set it
// to exercise the multi-worker build/probe paths under -race even on a
// single-core host.
var vecJoinWorkers int

// openVecJoin materializes both children columnar and joins them. The
// hash path requires at least one equality conjunct; anything else
// degrades to the row nested-loop iterator behind an adapter.
func openVecJoin(ctx context.Context, j Join, in *relation.Instance) (VecIterator, error) {
	lb, lrel, lname, err := vecChildBatch(ctx, j.L, in)
	if err != nil {
		return nil, err
	}
	rb, rrel, rname, err := vecChildBatch(ctx, j.R, in)
	if err != nil {
		return nil, err
	}
	eqL, eqR, residual := SplitEquiConjuncts(j.On, lb.Scheme(), rb.Scheme())
	if len(eqL) == 0 {
		// Nested loop: reuse the row iterator (quadratic either way).
		if lrel == nil {
			lrel = relation.New(lname, lb.Scheme())
			lrel.AppendBatch(lb)
		}
		if rrel == nil {
			rrel = relation.New(rname, rb.Scheme())
			rrel.AppendBatch(rb)
		}
		it := OpenJoin(ctx, j.Kind, lrel, rrel, j.On)
		return &rowVecAdapter{it: it, buf: relation.NewBatch(it.Scheme())}, nil
	}
	ctx, span := openOp(ctx, "op.join")
	span.SetStr("kind", j.Kind.String())
	span.SetBool("hash", true)
	span.SetBool("vec", true)
	if j.EstRows > 0 {
		span.SetInt("est_rows", j.EstRows)
	}
	it := &vecJoinIter{
		ctx:  ctx,
		flow: budget.FromContext(ctx).NewFlow(),
		kind: j.Kind,
		s:    lb.Scheme().Concat(rb.Scheme()),
		lb:   lb,
		rb:   rb,
		lPos: lb.Scheme().Positions(eqL...),
		rPos: rb.Scheme().Positions(eqR...),

		residual: residual,
		op:       opStats{span: span},
	}
	cJoinCalls.Inc()
	cJoinHash.Inc()
	it.buildLeft = lb.Len() <= rb.Len()
	if it.buildLeft {
		cJoinBuildLeft.Inc()
	} else {
		cJoinBuildRight.Inc()
	}
	it.out = relation.NewBatch(it.s)
	return it, nil
}

// vjSpan addresses one bucket inside a partition's arena.
type vjSpan struct {
	off, n int32
}

// vjPartition is one build partition: canonical key hash → bucket of
// build rows (visible indices, ascending).
type vjPartition struct {
	spans map[uint64]vjSpan
	arena []int32
}

// vecJoinIter streams the join output. All build and probe work happens
// on the first NextBatch; emission then walks the pair/pad lists in
// VecBatchSize chunks.
type vecJoinIter struct {
	ctx       context.Context
	flow      *budget.Flow
	kind      JoinKind
	s         *relation.Scheme
	lb, rb    *relation.Batch
	lPos      []int
	rPos      []int
	residual  expr.Expr
	buildLeft bool

	ran        bool
	pairsProbe []int32 // matched pairs, probe-major (visible indices)
	pairsBuild []int32
	lPad, rPad []int32 // unmatched outer rows (visible indices)

	stage  int // 0 pairs, 1 left pad, 2 right pad, 3 done
	cursor int

	out             *relation.Batch
	lphys, rphys    []int32 // emission scratch (physical row ids)
	probes, matches int64
	op              opStats
}

func (it *vecJoinIter) Scheme() *relation.Scheme { return it.s }
func (it *vecJoinIter) Name() string             { return "" }

func (it *vecJoinIter) Close() {
	if it.op.done {
		return
	}
	it.flow.Release()
	cJoinProbes.Add(it.probes)
	cJoinMatches.Add(it.matches)
	cJoinOut.Add(it.op.rows)
	it.op.close()
}

func (it *vecJoinIter) NextBatch() (*relation.Batch, error) {
	if err := it.ctx.Err(); err != nil {
		return nil, err
	}
	if !it.ran {
		it.run()
		it.ran = true
	}
	it.out.Reset()
	for it.out.Len() < VecBatchSize && it.stage < 3 {
		room := VecBatchSize - it.out.Len()
		switch it.stage {
		case 0:
			n := min(room, len(it.pairsProbe)-it.cursor)
			if n == 0 {
				it.stage, it.cursor = 1, 0
				continue
			}
			probe, build := it.rb, it.lb
			if !it.buildLeft {
				probe, build = it.lb, it.rb
			}
			it.lphys, it.rphys = it.lphys[:0], it.rphys[:0]
			for k := it.cursor; k < it.cursor+n; k++ {
				p := probe.RowID(int(it.pairsProbe[k]))
				b := build.RowID(int(it.pairsBuild[k]))
				if it.buildLeft {
					it.lphys = append(it.lphys, int32(b))
					it.rphys = append(it.rphys, int32(p))
				} else {
					it.lphys = append(it.lphys, int32(p))
					it.rphys = append(it.rphys, int32(b))
				}
			}
			it.cursor += n
			it.out.AppendConcatGather(it.lb, it.lphys, it.rb, it.rphys)
		case 1:
			if it.kind != LeftJoin && it.kind != FullJoin {
				it.stage, it.cursor = 2, 0
				continue
			}
			n := min(room, len(it.lPad)-it.cursor)
			if n == 0 {
				it.stage, it.cursor = 2, 0
				continue
			}
			it.lphys, it.rphys = it.lphys[:0], it.rphys[:0]
			for k := it.cursor; k < it.cursor+n; k++ {
				it.lphys = append(it.lphys, int32(it.lb.RowID(int(it.lPad[k]))))
				it.rphys = append(it.rphys, -1)
			}
			it.cursor += n
			it.out.AppendConcatGather(it.lb, it.lphys, it.rb, it.rphys)
		case 2:
			if it.kind != RightJoin && it.kind != FullJoin {
				it.stage = 3
				continue
			}
			n := min(room, len(it.rPad)-it.cursor)
			if n == 0 {
				it.stage = 3
				continue
			}
			it.lphys, it.rphys = it.lphys[:0], it.rphys[:0]
			for k := it.cursor; k < it.cursor+n; k++ {
				it.lphys = append(it.lphys, -1)
				it.rphys = append(it.rphys, int32(it.rb.RowID(int(it.rPad[k]))))
			}
			it.cursor += n
			it.out.AppendConcatGather(it.lb, it.lphys, it.rb, it.rphys)
		}
	}
	if it.out.Len() == 0 {
		return nil, nil
	}
	if err := it.flow.Charge(int64(it.out.Len()), it.out.ApproxBytes()); err != nil {
		return nil, err
	}
	it.op.rows += int64(it.out.Len())
	it.op.batches++
	return it.out, nil
}

// run executes build and probe, leaving the pair and pad lists filled.
func (it *vecJoinIter) run() {
	build, probe := it.lb, it.rb
	bPos, pPos := it.lPos, it.rPos
	if !it.buildLeft {
		build, probe = it.rb, it.lb
		bPos, pPos = it.rPos, it.lPos
	}
	bn, pn := build.Len(), probe.Len()
	it.probes = int64(pn)

	workers := vecJoinWorkers
	if workers <= 0 {
		workers = min(runtime.GOMAXPROCS(0), 8)
	}
	if pn < 2*joinMorsel && workers > 1 && vecJoinWorkers <= 0 {
		workers = 1
	}
	// Partition count: a power of two comfortably above the worker
	// count, so ownership assignment stays balanced.
	parts := 1
	for parts < 4*workers {
		parts <<= 1
	}
	mask := uint64(parts - 1)

	// Vectorized canonical key hashes for both sides.
	bHash := make([]uint64, bn)
	build.HashRowsOn(bPos, bHash, nil)
	pHash := make([]uint64, pn)
	probe.HashRowsOn(pPos, pHash, nil)

	// Null-key rows never match; mark them column-wise.
	bSkip := nullKeyRows(build, bPos, bn)
	pSkip := nullKeyRows(probe, pPos, pn)

	// Build: each worker owns partitions p with p % workers == w and
	// fills them two-pass, reading the shared hash/skip arrays only.
	tables := make([]vjPartition, parts)
	buildPart := func(w int) {
		for p := w; p < parts; p += workers {
			tables[p].spans = map[uint64]vjSpan{}
		}
		for j := 0; j < bn; j++ {
			if bSkip[j] {
				continue
			}
			h := bHash[j]
			if int(h&mask)%workers != w {
				continue
			}
			sp := tables[h&mask].spans[h]
			sp.n++
			tables[h&mask].spans[h] = sp
		}
		// Lay buckets out contiguously per partition, then fill forward
		// so each bucket lists build rows in ascending order.
		for p := w; p < parts; p += workers {
			t := &tables[p]
			var off int32
			for h, sp := range t.spans {
				count := sp.n
				t.spans[h] = vjSpan{off: off}
				off += count
			}
			t.arena = make([]int32, off)
		}
		for j := 0; j < bn; j++ {
			if bSkip[j] {
				continue
			}
			h := bHash[j]
			if int(h&mask)%workers != w {
				continue
			}
			t := &tables[h&mask]
			sp := t.spans[h]
			t.arena[sp.off+sp.n] = int32(j)
			sp.n++
			t.spans[h] = sp
		}
	}

	// Probe: morsels claimed from an atomic cursor; results kept per
	// morsel and stitched in probe order afterwards.
	type morselOut struct {
		pairsP, pairsB []int32
	}
	morsels := (pn + joinMorsel - 1) / joinMorsel
	outs := make([]morselOut, morsels)
	// Probe-side matched bits are written lock-free: joinMorsel is a
	// multiple of 64, so every worker's morsels cover disjoint words.
	probeMatchedBits := make([]uint64, (pn+63)/64)
	// Build-side matched bits are per worker (different workers can hit
	// the same build row) and OR-merged after the barrier.
	buildMatched := make([][]uint64, workers)
	var nextMorsel atomic.Int64

	probeWorker := func(w int) {
		bm := make([]uint64, (bn+63)/64)
		buildMatched[w] = bm
		var scratch []value.Value
		if it.residual != nil {
			scratch = make([]value.Value, it.s.Arity())
		}
		lw := it.lb.Scheme().Arity()
		for {
			m := int(nextMorsel.Add(1)) - 1
			if m >= morsels {
				return
			}
			lo, hi := m*joinMorsel, min((m+1)*joinMorsel, pn)
			mo := &outs[m]
			for i := lo; i < hi; i++ {
				if pSkip[i] {
					continue
				}
				h := pHash[i]
				t := &tables[h&mask]
				sp, ok := t.spans[h]
				if !ok {
					continue
				}
				for _, bRow := range t.arena[sp.off : sp.off+sp.n] {
					if !build.EqualRowsOn(int(bRow), probe, i, bPos, pPos) {
						continue
					}
					if it.residual != nil {
						li, ri := int(bRow), i
						if !it.buildLeft {
							li, ri = i, int(bRow)
						}
						it.lb.TupleInto(scratch[:lw], li)
						it.rb.TupleInto(scratch[lw:], ri)
						if expr.Truth(it.residual, relation.BorrowTuple(it.s, scratch)) != value.True {
							continue
						}
					}
					mo.pairsP = append(mo.pairsP, int32(i))
					mo.pairsB = append(mo.pairsB, bRow)
					probeMatchedBits[i>>6] |= 1 << (uint(i) & 63)
					bm[bRow>>6] |= 1 << (uint(bRow) & 63)
				}
			}
		}
	}

	if workers == 1 {
		buildPart(0)
		probeWorker(0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buildPart(w)
			}(w)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				probeWorker(w)
			}(w)
		}
		wg.Wait()
	}

	// Stitch morsels back in probe order.
	total := 0
	for m := range outs {
		total += len(outs[m].pairsP)
	}
	it.pairsProbe = make([]int32, 0, total)
	it.pairsBuild = make([]int32, 0, total)
	for m := range outs {
		it.pairsProbe = append(it.pairsProbe, outs[m].pairsP...)
		it.pairsBuild = append(it.pairsBuild, outs[m].pairsB...)
	}
	it.matches = int64(total)

	// Merge build-side matched bits and translate both sides back to
	// left/right pad lists.
	buildBits := make([]uint64, (bn+63)/64)
	for _, bm := range buildMatched {
		if bm == nil {
			continue
		}
		for w := range buildBits {
			buildBits[w] |= bm[w]
		}
	}
	lBits, ln := buildBits, bn
	rBits, rn := probeMatchedBits, pn
	if !it.buildLeft {
		lBits, ln = probeMatchedBits, pn
		rBits, rn = buildBits, bn
	}
	if it.kind == LeftJoin || it.kind == FullJoin {
		for i := 0; i < ln; i++ {
			if lBits[i>>6]&(1<<(uint(i)&63)) == 0 {
				it.lPad = append(it.lPad, int32(i))
			}
		}
	}
	if it.kind == RightJoin || it.kind == FullJoin {
		for i := 0; i < rn; i++ {
			if rBits[i>>6]&(1<<(uint(i)&63)) == 0 {
				it.rPad = append(it.rPad, int32(i))
			}
		}
	}
}

// nullKeyRows marks the visible rows that are null on any key column,
// column-wise.
func nullKeyRows(b *relation.Batch, pos []int, n int) []bool {
	skip := make([]bool, n)
	for _, p := range pos {
		col := b.Col(p)
		for i := 0; i < n; i++ {
			if col.IsNull(b.RowID(i)) {
				skip[i] = true
			}
		}
	}
	return skip
}
