package algebra

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"clio/internal/budget"
	"clio/internal/expr"
	"clio/internal/fault"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/spill"
	"clio/internal/value"
)

// spillJoinInstance builds L and R with heavy key collisions, null
// join keys on both sides, and cross-kind numeric keys (L.k parses as
// int, some R.k as float), so the differential test covers exactly the
// cases where partition routing could diverge from tuple equality.
func spillJoinInstance(t *testing.T, rows int) (*relation.Instance, *relation.Relation, *relation.Relation) {
	t.Helper()
	sch := schema.NewDatabase()
	sch.MustAddRelation(schema.NewRelation("L",
		schema.Attribute{Name: "k", Type: value.KindInt},
		schema.Attribute{Name: "x", Type: value.KindInt},
	))
	sch.MustAddRelation(schema.NewRelation("R",
		schema.Attribute{Name: "k", Type: value.KindFloat},
		schema.Attribute{Name: "y", Type: value.KindInt},
	))
	in := relation.NewInstance(sch)
	l := in.NewRelationFor("L")
	for i := 0; i < rows; i++ {
		k := fmt.Sprintf("%d", i%97)
		if i%11 == 0 {
			k = "-" // null join key
		}
		l.AddRow(k, fmt.Sprintf("%d", i))
	}
	in.MustAdd(l)
	r := in.NewRelationFor("R")
	for i := 0; i < rows; i++ {
		k := fmt.Sprintf("%d.0", i%89) // float kind: must still meet int keys
		if i%13 == 0 {
			k = "-"
		}
		r.AddRow(k, fmt.Sprintf("%d", i))
	}
	in.MustAdd(r)
	return in, l, r
}

// spillCtx returns a context whose budget forces the join's build
// sides to disk, and the tracker for post-hoc assertions.
func spillCtx(t *testing.T, maxBytes int64) (context.Context, *budget.Tracker) {
	t.Helper()
	tr := budget.NewTracker(budget.Budget{MaxBytes: maxBytes, SpillDir: t.TempDir()})
	return budget.With(context.Background(), tr), tr
}

// requireSameRelation asserts byte-identical canonical order.
func requireSameRelation(t *testing.T, label string, got, want *relation.Relation) {
	t.Helper()
	got.SortByKey()
	want.SortByKey()
	if got.Len() != want.Len() {
		t.Fatalf("%s: got %d tuples, want %d", label, got.Len(), want.Len())
	}
	gt, wt := got.Tuples(), want.Tuples()
	for i := range gt {
		if gt[i].Key() != wt[i].Key() {
			t.Fatalf("%s: tuple %d differs:\n got %v\nwant %v", label, i, gt[i], wt[i])
		}
	}
}

// The differential property at the heart of the spill design: a join
// forced through Grace-hash partitions must be byte-identical (in
// canonical order) to the unlimited in-memory join, for every join
// kind, with null keys, cross-kind numeric keys, and a residual
// predicate in play. Select(TRUE) wrappers make the inputs derived
// (base relations are pinned instance state and never spill).
func TestBudgetSpillJoinDifferentialAllKinds(t *testing.T) {
	in, l, r := spillJoinInstance(t, 900)
	preds := map[string]expr.Expr{
		"equi":          expr.MustParse("L.k = R.k"),
		"equi+residual": expr.MustParse("L.k = R.k AND L.x < R.y"),
	}
	for pname, pred := range preds {
		for _, kind := range []JoinKind{InnerJoin, LeftJoin, RightJoin, FullJoin} {
			label := fmt.Sprintf("%v/%s", kind, pname)
			want := JoinRelations(kind, l, r, pred)
			// Each side is ~86KB approximate; 48KB forces both to disk
			// while leaving room for one loaded partition pair (the
			// null-key partition is the heaviest) plus an output batch
			// resident at a time.
			ctx, tr := spillCtx(t, 49152)
			j := Join{Kind: kind, On: pred,
				L: Select{Child: NewScan("L", ""), Pred: expr.MustParse("TRUE")},
				R: Select{Child: NewScan("R", ""), Pred: expr.MustParse("TRUE")},
			}
			it, err := j.Open(ctx, in)
			if err != nil {
				t.Fatalf("%s: open: %v", label, err)
			}
			got, err := Drain(it)
			if err != nil {
				t.Fatalf("%s: drain: %v", label, err)
			}
			if tr.SpillParts() == 0 || tr.SpillWritten() == 0 {
				t.Fatalf("%s: join never spilled (parts=%d written=%d) — the test is vacuous", label, tr.SpillParts(), tr.SpillWritten())
			}
			requireSameRelation(t, label, got, want)
			if tr.Rows() != 0 || tr.SpillBytes() != 0 {
				t.Fatalf("%s: resident charges leaked: rows=%d spill=%d", label, tr.Rows(), tr.SpillBytes())
			}
		}
	}
}

// A join with no equi conjunct cannot be hash-partitioned: an
// over-budget build side must abort with the typed budget error whose
// spill state says "enabled" (spill was configured but inapplicable).
func TestBudgetSpillNonEquiJoinTypedAbort(t *testing.T) {
	in, _, _ := spillJoinInstance(t, 400)
	ctx, tr := spillCtx(t, 512)
	j := Join{Kind: InnerJoin, On: expr.MustParse("L.x < R.y"),
		L: Select{Child: NewScan("L", ""), Pred: expr.MustParse("TRUE")},
		R: Select{Child: NewScan("R", ""), Pred: expr.MustParse("TRUE")},
	}
	it, err := j.Open(ctx, in)
	if err == nil {
		_, err = Drain(it)
	}
	var be *budget.Error
	if !errors.As(err, &be) {
		t.Fatalf("non-equi over-budget join returned %v, want *budget.Error", err)
	}
	if be.Spill != budget.SpillEnabled {
		t.Fatalf("spill state = %q, want %q", be.Spill, budget.SpillEnabled)
	}
	if tr.Rows() != 0 || tr.Bytes() != 0 || tr.SpillBytes() != 0 {
		t.Fatalf("abort leaked charges: rows=%d bytes=%d spill=%d", tr.Rows(), tr.Bytes(), tr.SpillBytes())
	}
}

// A write fault mid-spill must surface as the typed spill error from
// the join, refund every resident charge, and leave no partition files
// behind.
func TestChaosSpillJoinWriteFaultTypedAbort(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	fault.Set("spill.write", fault.Spec{Mode: fault.ModeError, After: 5, Times: 1})

	in, _, _ := spillJoinInstance(t, 400)
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 4096, SpillDir: dir})
	ctx := budget.With(context.Background(), tr)
	j := Join{Kind: FullJoin, On: expr.MustParse("L.k = R.k"),
		L: Select{Child: NewScan("L", ""), Pred: expr.MustParse("TRUE")},
		R: Select{Child: NewScan("R", ""), Pred: expr.MustParse("TRUE")},
	}
	it, err := j.Open(ctx, in)
	if err == nil {
		_, err = Drain(it)
	}
	if !errors.Is(err, spill.ErrSpill) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("faulted spill join returned %v, want spill.ErrSpill via fault.ErrInjected", err)
	}
	if tr.Rows() != 0 || tr.Bytes() != 0 || tr.SpillBytes() != 0 {
		t.Fatalf("faulted join leaked charges: rows=%d bytes=%d spill=%d", tr.Rows(), tr.Bytes(), tr.SpillBytes())
	}
	left, _ := filepath.Glob(filepath.Join(dir, "clio-spill-*.part"))
	if len(left) != 0 {
		t.Fatalf("faulted join left partition files: %v", left)
	}
}

// A read fault during partition replay must also degrade to the typed
// error with everything refunded — the consumer closed the iterator,
// so the sides' files are gone too.
func TestChaosSpillJoinReadFaultTypedAbort(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()

	in, _, _ := spillJoinInstance(t, 400)
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 4096, SpillDir: dir})
	ctx := budget.With(context.Background(), tr)
	j := Join{Kind: InnerJoin, On: expr.MustParse("L.k = R.k"),
		L: Select{Child: NewScan("L", ""), Pred: expr.MustParse("TRUE")},
		R: Select{Child: NewScan("R", ""), Pred: expr.MustParse("TRUE")},
	}
	it, err := j.Open(ctx, in)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fault.Set("spill.read", fault.Spec{Mode: fault.ModeError, After: 10, Times: 1})
	_, err = Drain(it)
	if !errors.Is(err, spill.ErrSpill) {
		t.Fatalf("read-faulted join returned %v, want spill.ErrSpill", err)
	}
	if tr.Rows() != 0 || tr.Bytes() != 0 || tr.SpillBytes() != 0 {
		t.Fatalf("read fault leaked charges: rows=%d bytes=%d spill=%d", tr.Rows(), tr.Bytes(), tr.SpillBytes())
	}
	left, _ := filepath.Glob(filepath.Join(dir, "clio-spill-*.part"))
	if len(left) != 0 {
		t.Fatalf("read-faulted join left partition files: %v", left)
	}
}
