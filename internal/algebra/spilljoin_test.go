package algebra

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"clio/internal/budget"
	"clio/internal/expr"
	"clio/internal/fault"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/spill"
	"clio/internal/value"
)

// spillJoinInstance builds L and R with heavy key collisions, null
// join keys on both sides, and cross-kind numeric keys (L.k parses as
// int, some R.k as float), so the differential test covers exactly the
// cases where partition routing could diverge from tuple equality.
func spillJoinInstance(t *testing.T, rows int) (*relation.Instance, *relation.Relation, *relation.Relation) {
	t.Helper()
	sch := schema.NewDatabase()
	sch.MustAddRelation(schema.NewRelation("L",
		schema.Attribute{Name: "k", Type: value.KindInt},
		schema.Attribute{Name: "x", Type: value.KindInt},
	))
	sch.MustAddRelation(schema.NewRelation("R",
		schema.Attribute{Name: "k", Type: value.KindFloat},
		schema.Attribute{Name: "y", Type: value.KindInt},
	))
	in := relation.NewInstance(sch)
	l := in.NewRelationFor("L")
	for i := 0; i < rows; i++ {
		k := fmt.Sprintf("%d", i%97)
		if i%11 == 0 {
			k = "-" // null join key
		}
		l.AddRow(k, fmt.Sprintf("%d", i))
	}
	in.MustAdd(l)
	r := in.NewRelationFor("R")
	for i := 0; i < rows; i++ {
		k := fmt.Sprintf("%d.0", i%89) // float kind: must still meet int keys
		if i%13 == 0 {
			k = "-"
		}
		r.AddRow(k, fmt.Sprintf("%d", i))
	}
	in.MustAdd(r)
	return in, l, r
}

// spillCtx returns a context whose budget forces the join's build
// sides to disk, and the tracker for post-hoc assertions.
func spillCtx(t *testing.T, maxBytes int64) (context.Context, *budget.Tracker) {
	t.Helper()
	tr := budget.NewTracker(budget.Budget{MaxBytes: maxBytes, SpillDir: t.TempDir()})
	return budget.With(context.Background(), tr), tr
}

// requireSameRelation asserts byte-identical canonical order.
func requireSameRelation(t *testing.T, label string, got, want *relation.Relation) {
	t.Helper()
	got.SortByKey()
	want.SortByKey()
	if got.Len() != want.Len() {
		t.Fatalf("%s: got %d tuples, want %d", label, got.Len(), want.Len())
	}
	gt, wt := got.Tuples(), want.Tuples()
	for i := range gt {
		if gt[i].Key() != wt[i].Key() {
			t.Fatalf("%s: tuple %d differs:\n got %v\nwant %v", label, i, gt[i], wt[i])
		}
	}
}

// The differential property at the heart of the spill design: a join
// forced through Grace-hash partitions must be byte-identical (in
// canonical order) to the unlimited in-memory join, for every join
// kind, with null keys, cross-kind numeric keys, and a residual
// predicate in play. Select(TRUE) wrappers make the inputs derived
// (base relations are pinned instance state and never spill).
func TestBudgetSpillJoinDifferentialAllKinds(t *testing.T) {
	in, l, r := spillJoinInstance(t, 900)
	preds := map[string]expr.Expr{
		"equi":          expr.MustParse("L.k = R.k"),
		"equi+residual": expr.MustParse("L.k = R.k AND L.x < R.y"),
	}
	for pname, pred := range preds {
		for _, kind := range []JoinKind{InnerJoin, LeftJoin, RightJoin, FullJoin} {
			label := fmt.Sprintf("%v/%s", kind, pname)
			want := JoinRelations(kind, l, r, pred)
			// Each side is ~86KB approximate; 48KB forces both to disk
			// while leaving room for one loaded partition pair (the
			// null-key partition is the heaviest) plus an output batch
			// resident at a time.
			ctx, tr := spillCtx(t, 49152)
			j := Join{Kind: kind, On: pred,
				L: Select{Child: NewScan("L", ""), Pred: expr.MustParse("TRUE")},
				R: Select{Child: NewScan("R", ""), Pred: expr.MustParse("TRUE")},
			}
			it, err := j.Open(ctx, in)
			if err != nil {
				t.Fatalf("%s: open: %v", label, err)
			}
			got, err := Drain(it)
			if err != nil {
				t.Fatalf("%s: drain: %v", label, err)
			}
			if tr.SpillParts() == 0 || tr.SpillWritten() == 0 {
				t.Fatalf("%s: join never spilled (parts=%d written=%d) — the test is vacuous", label, tr.SpillParts(), tr.SpillWritten())
			}
			requireSameRelation(t, label, got, want)
			if tr.Rows() != 0 || tr.SpillBytes() != 0 {
				t.Fatalf("%s: resident charges leaked: rows=%d spill=%d", label, tr.Rows(), tr.SpillBytes())
			}
		}
	}
}

// A join with no equi conjunct cannot be hash-partitioned: an
// over-budget build side must abort with the typed budget error whose
// spill state says "enabled" (spill was configured but inapplicable).
func TestBudgetSpillNonEquiJoinTypedAbort(t *testing.T) {
	in, _, _ := spillJoinInstance(t, 400)
	ctx, tr := spillCtx(t, 512)
	j := Join{Kind: InnerJoin, On: expr.MustParse("L.x < R.y"),
		L: Select{Child: NewScan("L", ""), Pred: expr.MustParse("TRUE")},
		R: Select{Child: NewScan("R", ""), Pred: expr.MustParse("TRUE")},
	}
	it, err := j.Open(ctx, in)
	if err == nil {
		_, err = Drain(it)
	}
	var be *budget.Error
	if !errors.As(err, &be) {
		t.Fatalf("non-equi over-budget join returned %v, want *budget.Error", err)
	}
	if be.Spill != budget.SpillEnabled {
		t.Fatalf("spill state = %q, want %q", be.Spill, budget.SpillEnabled)
	}
	if tr.Rows() != 0 || tr.Bytes() != 0 || tr.SpillBytes() != 0 {
		t.Fatalf("abort leaked charges: rows=%d bytes=%d spill=%d", tr.Rows(), tr.Bytes(), tr.SpillBytes())
	}
}

// A write fault mid-spill must surface as the typed spill error from
// the join, refund every resident charge, and leave no partition files
// behind.
func TestChaosSpillJoinWriteFaultTypedAbort(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	fault.Set("spill.write", fault.Spec{Mode: fault.ModeError, After: 5, Times: 1})

	in, _, _ := spillJoinInstance(t, 400)
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 4096, SpillDir: dir})
	ctx := budget.With(context.Background(), tr)
	j := Join{Kind: FullJoin, On: expr.MustParse("L.k = R.k"),
		L: Select{Child: NewScan("L", ""), Pred: expr.MustParse("TRUE")},
		R: Select{Child: NewScan("R", ""), Pred: expr.MustParse("TRUE")},
	}
	it, err := j.Open(ctx, in)
	if err == nil {
		_, err = Drain(it)
	}
	if !errors.Is(err, spill.ErrSpill) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("faulted spill join returned %v, want spill.ErrSpill via fault.ErrInjected", err)
	}
	if tr.Rows() != 0 || tr.Bytes() != 0 || tr.SpillBytes() != 0 {
		t.Fatalf("faulted join leaked charges: rows=%d bytes=%d spill=%d", tr.Rows(), tr.Bytes(), tr.SpillBytes())
	}
	left, _ := filepath.Glob(filepath.Join(dir, "clio-spill-*.part"))
	if len(left) != 0 {
		t.Fatalf("faulted join left partition files: %v", left)
	}
}

// A read fault during partition replay must also degrade to the typed
// error with everything refunded — the consumer closed the iterator,
// so the sides' files are gone too.
func TestChaosSpillJoinReadFaultTypedAbort(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()

	in, _, _ := spillJoinInstance(t, 400)
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 4096, SpillDir: dir})
	ctx := budget.With(context.Background(), tr)
	j := Join{Kind: InnerJoin, On: expr.MustParse("L.k = R.k"),
		L: Select{Child: NewScan("L", ""), Pred: expr.MustParse("TRUE")},
		R: Select{Child: NewScan("R", ""), Pred: expr.MustParse("TRUE")},
	}
	it, err := j.Open(ctx, in)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fault.Set("spill.read", fault.Spec{Mode: fault.ModeError, After: 10, Times: 1})
	_, err = Drain(it)
	if !errors.Is(err, spill.ErrSpill) {
		t.Fatalf("read-faulted join returned %v, want spill.ErrSpill", err)
	}
	if tr.Rows() != 0 || tr.Bytes() != 0 || tr.SpillBytes() != 0 {
		t.Fatalf("read fault leaked charges: rows=%d bytes=%d spill=%d", tr.Rows(), tr.Bytes(), tr.SpillBytes())
	}
	left, _ := filepath.Glob(filepath.Join(dir, "clio-spill-*.part"))
	if len(left) != 0 {
		t.Fatalf("read-faulted join left partition files: %v", left)
	}
}

// skewJoinInstance builds L and R with a Zipf-like key distribution:
// one hot key carrying ~1/64 of each side's mass plus a long tail of
// ~1500 distinct keys. At ~9x the resident cap with fan-out 16 the
// average partition pair exceeds the cap, so first-level partitions
// do not fit and recursive re-partitioning is structural, while the
// hot key's own mass (which no salt can split) stays small enough
// that its pair plus one output batch of its cross product fits.
func skewJoinInstance(t *testing.T, rows int) (*relation.Instance, *relation.Relation, *relation.Relation) {
	t.Helper()
	sch := schema.NewDatabase()
	sch.MustAddRelation(schema.NewRelation("L",
		schema.Attribute{Name: "k", Type: value.KindInt},
		schema.Attribute{Name: "x", Type: value.KindInt},
	))
	sch.MustAddRelation(schema.NewRelation("R",
		schema.Attribute{Name: "k", Type: value.KindFloat},
		schema.Attribute{Name: "y", Type: value.KindInt},
	))
	in := relation.NewInstance(sch)
	l := in.NewRelationFor("L")
	for i := 0; i < rows; i++ {
		k := fmt.Sprintf("%d", i%1499+1)
		if i%64 == 0 {
			k = "0" // the hot key
		}
		l.AddRow(k, fmt.Sprintf("%d", i))
	}
	in.MustAdd(l)
	r := in.NewRelationFor("R")
	for i := 0; i < rows; i++ {
		k := fmt.Sprintf("%d.0", i%1499+1)
		if i%64 == 0 {
			k = "0.0"
		}
		r.AddRow(k, fmt.Sprintf("%d", i))
	}
	in.MustAdd(r)
	return in, l, r
}

// The spill-v2 differential property: a Zipf-skewed join at ~8x the
// resident cap — which recursion-less spill cannot complete — must,
// with recursive re-partitioning and prefetch in play, be
// byte-identical to the unlimited in-memory join, refund every
// charge, and actually exercise the new machinery (recursions > 0).
func TestBudgetSpillJoinSkewRecursionDifferential(t *testing.T) {
	in, l, r := skewJoinInstance(t, 6144)
	pred := expr.MustParse("L.k = R.k")
	for _, kind := range []JoinKind{InnerJoin, FullJoin} {
		label := fmt.Sprintf("%v/skew", kind)
		want := JoinRelations(kind, l, r, pred)
		// Each side is ~580KB approximate: ~9x the 64KB cap.
		ctx, tr := spillCtx(t, 65536)
		j := Join{Kind: kind, On: pred,
			L: Select{Child: NewScan("L", ""), Pred: expr.MustParse("TRUE")},
			R: Select{Child: NewScan("R", ""), Pred: expr.MustParse("TRUE")},
		}
		it, err := j.Open(ctx, in)
		if err != nil {
			t.Fatalf("%s: open: %v", label, err)
		}
		got, err := Drain(it)
		if err != nil {
			t.Fatalf("%s: drain: %v", label, err)
		}
		if tr.SpillParts() == 0 {
			t.Fatalf("%s: join never spilled — the test is vacuous", label)
		}
		if tr.SpillRecursions() == 0 {
			t.Fatalf("%s: no recursive re-partitioning at 8x the cap — the test is vacuous", label)
		}
		if tr.SpillDepth() < 1 {
			t.Fatalf("%s: SpillDepth = %d, want >= 1", label, tr.SpillDepth())
		}
		if n, _, _ := tr.PartitionStats(); n == 0 {
			t.Fatalf("%s: no partition statistics recorded", label)
		}
		if tr.PartitionSkew() < 1 {
			t.Fatalf("%s: partition skew %f < 1 is impossible", label, tr.PartitionSkew())
		}
		requireSameRelation(t, label, got, want)
		if tr.Rows() != 0 || tr.SpillBytes() != 0 {
			t.Fatalf("%s: resident charges leaked: rows=%d spill=%d", label, tr.Rows(), tr.SpillBytes())
		}
	}
}

// The same skewed workload with recursion disabled must degrade to the
// PR 8 behavior: a typed abort whose spill state is plain "enabled"
// (the remedy is -spill-recursion-depth, and the envelope must not
// claim recursion was exhausted when it never ran).
func TestBudgetSpillJoinSkewRecursionOffAborts(t *testing.T) {
	in, _, _ := skewJoinInstance(t, 6144)
	tr := budget.NewTracker(budget.Budget{MaxBytes: 65536, SpillDir: t.TempDir(), SpillRecursionDepth: -1})
	ctx := budget.With(context.Background(), tr)
	j := Join{Kind: InnerJoin, On: expr.MustParse("L.k = R.k"),
		L: Select{Child: NewScan("L", ""), Pred: expr.MustParse("TRUE")},
		R: Select{Child: NewScan("R", ""), Pred: expr.MustParse("TRUE")},
	}
	it, err := j.Open(ctx, in)
	if err == nil {
		_, err = Drain(it)
	}
	var be *budget.Error
	if !errors.As(err, &be) {
		t.Fatalf("recursion-off skewed join returned %v, want *budget.Error", err)
	}
	if be.Spill != budget.SpillEnabled {
		t.Fatalf("spill state = %q, want %q", be.Spill, budget.SpillEnabled)
	}
	if tr.SpillRecursions() != 0 {
		t.Fatalf("recursion ran %d times with depth disabled", tr.SpillRecursions())
	}
	if tr.Rows() != 0 || tr.Bytes() != 0 || tr.SpillBytes() != 0 {
		t.Fatalf("abort leaked charges: rows=%d bytes=%d spill=%d", tr.Rows(), tr.Bytes(), tr.SpillBytes())
	}
}

// A single key whose tuples alone exceed the cap cannot be split by
// any number of re-partitionings: recursion must give up at the depth
// limit with the typed "recursion_exhausted" state, everything
// refunded, no files left.
func TestBudgetSpillJoinHotKeyRecursionExhausted(t *testing.T) {
	sch := schema.NewDatabase()
	sch.MustAddRelation(schema.NewRelation("L",
		schema.Attribute{Name: "k", Type: value.KindInt},
		schema.Attribute{Name: "x", Type: value.KindInt},
	))
	sch.MustAddRelation(schema.NewRelation("R",
		schema.Attribute{Name: "k", Type: value.KindInt},
		schema.Attribute{Name: "y", Type: value.KindInt},
	))
	in := relation.NewInstance(sch)
	l := in.NewRelationFor("L")
	r := in.NewRelationFor("R")
	for i := 0; i < 600; i++ {
		l.AddRow("7", fmt.Sprintf("%d", i)) // every tuple shares one key
		r.AddRow("7", fmt.Sprintf("%d", i))
	}
	in.MustAdd(l)
	in.MustAdd(r)
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 4096, SpillDir: dir})
	ctx := budget.With(context.Background(), tr)
	j := Join{Kind: InnerJoin, On: expr.MustParse("L.k = R.k"),
		L: Select{Child: NewScan("L", ""), Pred: expr.MustParse("TRUE")},
		R: Select{Child: NewScan("R", ""), Pred: expr.MustParse("TRUE")},
	}
	it, err := j.Open(ctx, in)
	if err == nil {
		_, err = Drain(it)
	}
	var be *budget.Error
	if !errors.As(err, &be) {
		t.Fatalf("hot-key join returned %v, want *budget.Error", err)
	}
	if be.Spill != budget.SpillRecursionExhausted {
		t.Fatalf("spill state = %q, want %q", be.Spill, budget.SpillRecursionExhausted)
	}
	if tr.Rows() != 0 || tr.Bytes() != 0 || tr.SpillBytes() != 0 {
		t.Fatalf("abort leaked charges: rows=%d bytes=%d spill=%d", tr.Rows(), tr.Bytes(), tr.SpillBytes())
	}
	left, _ := filepath.Glob(filepath.Join(dir, "clio-spill-*.part"))
	if len(left) != 0 {
		t.Fatalf("exhausted recursion left partition files: %v", left)
	}
}

// A fault at the prefetch point must surface from the join as a typed
// spill error labeled "prefetch", with every charge refunded and no
// partition files left — a dead prefetch worker never wedges or leaks.
func TestChaosSpillJoinPrefetchFaultTypedAbort(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	fault.Set("spill.prefetch", fault.Spec{Mode: fault.ModeError, Times: 1})

	in, _, _ := spillJoinInstance(t, 900)
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 49152, SpillDir: dir})
	ctx := budget.With(context.Background(), tr)
	j := Join{Kind: InnerJoin, On: expr.MustParse("L.k = R.k"),
		L: Select{Child: NewScan("L", ""), Pred: expr.MustParse("TRUE")},
		R: Select{Child: NewScan("R", ""), Pred: expr.MustParse("TRUE")},
	}
	it, err := j.Open(ctx, in)
	if err == nil {
		_, err = Drain(it)
	}
	if !errors.Is(err, spill.ErrSpill) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("prefetch fault surfaced as %v, want spill.ErrSpill via fault.ErrInjected", err)
	}
	var ioe *spill.IOError
	if !errors.As(err, &ioe) || ioe.Op != "prefetch" {
		t.Fatalf("prefetch fault labeled %v, want IOError{Op: prefetch}", err)
	}
	if tr.Rows() != 0 || tr.Bytes() != 0 || tr.SpillBytes() != 0 {
		t.Fatalf("prefetch fault leaked charges: rows=%d bytes=%d spill=%d", tr.Rows(), tr.Bytes(), tr.SpillBytes())
	}
	left, _ := filepath.Glob(filepath.Join(dir, "clio-spill-*.part"))
	if len(left) != 0 {
		t.Fatalf("prefetch fault left partition files: %v", left)
	}
}
