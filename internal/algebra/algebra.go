// Package algebra implements a materializing relational-algebra
// evaluator over relation.Instance: scans (with aliasing), selection,
// generalized projection, inner and outer joins (with a hash fast path
// for equi-join conjuncts), cross product, union, distinct, and the
// paper's minimum union. Plans also render themselves as SQL, which is
// how mapping queries are shown to users.
package algebra

import (
	"fmt"
	"strings"

	"clio/internal/expr"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// Node is a relational-algebra plan node.
type Node interface {
	// Eval materializes the node's result against the instance.
	Eval(in *relation.Instance) (*relation.Relation, error)
	// SQL renders the node as a SQL table expression.
	SQL() string
}

// Scan reads a stored relation, optionally under an alias (a relation
// copy, e.g. Parents AS Parents2).
type Scan struct {
	Base  string
	Alias string // empty means Base
}

// NewScan builds a scan of the base relation under the given alias.
func NewScan(base, alias string) Scan {
	if alias == "" {
		alias = base
	}
	return Scan{Base: base, Alias: alias}
}

// Eval returns the (possibly aliased) stored relation.
func (s Scan) Eval(in *relation.Instance) (*relation.Relation, error) {
	return in.Aliased(s.Base, s.aliasOrBase())
}

func (s Scan) aliasOrBase() string {
	if s.Alias == "" {
		return s.Base
	}
	return s.Alias
}

// SQL renders "Base" or "Base AS Alias".
func (s Scan) SQL() string {
	if s.Alias == "" || s.Alias == s.Base {
		return s.Base
	}
	return s.Base + " AS " + s.Alias
}

// Select filters the child by a predicate (kept only when true).
type Select struct {
	Child Node
	Pred  expr.Expr
}

// Eval filters the child's tuples under 3VL.
func (s Select) Eval(in *relation.Instance) (*relation.Relation, error) {
	c, err := s.Child.Eval(in)
	if err != nil {
		return nil, err
	}
	return c.Filter(func(t relation.Tuple) bool {
		return expr.Truth(s.Pred, t) == value.True
	}), nil
}

// SQL renders a filtered subquery.
func (s Select) SQL() string {
	return "(SELECT * FROM " + s.Child.SQL() + " WHERE " + s.Pred.String() + ")"
}

// OutputCol is one column of a generalized projection: a named
// expression.
type OutputCol struct {
	Name string
	Expr expr.Expr
}

// Project computes named expressions over the child's tuples.
type Project struct {
	Name  string // result relation name
	Child Node
	Cols  []OutputCol
}

// Eval computes the projection.
func (p Project) Eval(in *relation.Instance) (*relation.Relation, error) {
	c, err := p.Child.Eval(in)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(p.Cols))
	for i, col := range p.Cols {
		names[i] = col.Name
	}
	s := relation.NewScheme(names...)
	out := relation.New(p.Name, s)
	for _, t := range c.Tuples() {
		vals := make([]value.Value, len(p.Cols))
		for i, col := range p.Cols {
			vals[i] = col.Expr.Eval(t)
		}
		out.AddValues(vals...)
	}
	return out, nil
}

// SQL renders SELECT exprs FROM child.
func (p Project) SQL() string {
	parts := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		parts[i] = c.Expr.String() + " AS " + unqualify(c.Name)
	}
	return "(SELECT " + strings.Join(parts, ", ") + " FROM " + p.Child.SQL() + ")"
}

func unqualify(name string) string {
	if ref, err := schema.ParseColumnRef(name); err == nil {
		return ref.Attr
	}
	return name
}

// JoinKind selects join semantics.
type JoinKind uint8

// The supported join kinds.
const (
	InnerJoin JoinKind = iota
	LeftJoin
	RightJoin
	FullJoin
)

// String returns the SQL keyword for the join kind.
func (k JoinKind) String() string {
	switch k {
	case InnerJoin:
		return "JOIN"
	case LeftJoin:
		return "LEFT JOIN"
	case RightJoin:
		return "RIGHT JOIN"
	case FullJoin:
		return "FULL JOIN"
	default:
		return "JOIN?"
	}
}

// Join combines two children on a predicate. Equality conjuncts over
// one left and one right column are executed as a hash join; any
// residual predicate is applied per candidate pair.
type Join struct {
	Kind JoinKind
	L, R Node
	On   expr.Expr
}

// Eval executes the join.
func (j Join) Eval(in *relation.Instance) (*relation.Relation, error) {
	l, err := j.L.Eval(in)
	if err != nil {
		return nil, err
	}
	r, err := j.R.Eval(in)
	if err != nil {
		return nil, err
	}
	return JoinRelations(j.Kind, l, r, j.On), nil
}

// SQL renders the join tree.
func (j Join) SQL() string {
	return j.L.SQL() + " " + j.Kind.String() + " " + j.R.SQL() + " ON " + j.On.String()
}

// Cross is the cross product.
type Cross struct{ L, R Node }

// Eval computes the cross product.
func (c Cross) Eval(in *relation.Instance) (*relation.Relation, error) {
	l, err := c.L.Eval(in)
	if err != nil {
		return nil, err
	}
	r, err := c.R.Eval(in)
	if err != nil {
		return nil, err
	}
	s := l.Scheme().Concat(r.Scheme())
	out := relation.New("", s)
	for _, lt := range l.Tuples() {
		for _, rt := range r.Tuples() {
			out.Add(lt.ConcatTo(s, rt))
		}
	}
	return out, nil
}

// SQL renders CROSS JOIN.
func (c Cross) SQL() string { return c.L.SQL() + " CROSS JOIN " + c.R.SQL() }

// Distinct removes duplicate tuples.
type Distinct struct{ Child Node }

// Eval deduplicates.
func (d Distinct) Eval(in *relation.Instance) (*relation.Relation, error) {
	c, err := d.Child.Eval(in)
	if err != nil {
		return nil, err
	}
	return c.Distinct(), nil
}

// SQL renders SELECT DISTINCT *.
func (d Distinct) SQL() string {
	return "(SELECT DISTINCT * FROM " + d.Child.SQL() + ")"
}

// Union is set union of union-compatible children (deduplicated).
type Union struct{ L, R Node }

// Eval unions the children; schemes must have the same attribute set.
func (u Union) Eval(in *relation.Instance) (*relation.Relation, error) {
	l, err := u.L.Eval(in)
	if err != nil {
		return nil, err
	}
	r, err := u.R.Eval(in)
	if err != nil {
		return nil, err
	}
	if !l.Scheme().SameSet(r.Scheme()) {
		return nil, fmt.Errorf("algebra: UNION of incompatible schemes %v and %v", l.Scheme(), r.Scheme())
	}
	out := l.Clone()
	aligned := r
	if !l.Scheme().Equal(r.Scheme()) {
		aligned = r.Project(l.Scheme().Names()...)
	}
	for _, t := range aligned.Tuples() {
		out.Add(t)
	}
	return out.Distinct(), nil
}

// SQL renders UNION.
func (u Union) SQL() string { return u.L.SQL() + " UNION " + u.R.SQL() }

// MinUnion is the paper's minimum union (outer union minus strictly
// subsumed tuples) of any number of children.
type MinUnion struct {
	Name     string
	Children []Node
}

// Eval computes the minimum union.
func (m MinUnion) Eval(in *relation.Instance) (*relation.Relation, error) {
	rels := make([]*relation.Relation, len(m.Children))
	for i, c := range m.Children {
		r, err := c.Eval(in)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	return relation.MinimumUnionAll(m.Name, rels...), nil
}

// SQL renders the children joined by the ⊕ pseudo-operator (minimum
// union has no SQL surface syntax; Galindo-Legaria's operator symbol
// is used for display).
func (m MinUnion) SQL() string {
	parts := make([]string, len(m.Children))
	for i, c := range m.Children {
		parts[i] = c.SQL()
	}
	return strings.Join(parts, " ⊕ ")
}

// Materialized wraps an already-computed relation as a plan node (used
// to query over D(G) without recomputing it).
type Materialized struct {
	Label string
	Rel   *relation.Relation
}

// Eval returns the wrapped relation.
func (m Materialized) Eval(*relation.Instance) (*relation.Relation, error) { return m.Rel, nil }

// SQL renders the label.
func (m Materialized) SQL() string {
	if m.Label != "" {
		return m.Label
	}
	return m.Rel.Name
}
