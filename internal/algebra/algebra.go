// Package algebra implements a streaming relational-algebra evaluator
// over relation.Instance: scans (with aliasing), selection,
// generalized projection, inner and outer joins (with a hash fast path
// for equi-join conjuncts), cross product, union, distinct, and the
// paper's minimum union. Every operator compiles to a batched
// Iterator (see Node.Open); Eval is a thin wrapper that drains the
// pipeline into a relation. Plans also render themselves as SQL, which
// is how mapping queries are shown to users.
package algebra

import (
	"context"
	"strings"

	"clio/internal/budget"
	"clio/internal/expr"
	"clio/internal/relation"
	"clio/internal/schema"
)

// Node is a relational-algebra plan node.
type Node interface {
	// Open compiles the node to a batched tuple stream against the
	// instance. Budget accounting and cancellation are drawn from ctx
	// and surface as errors from the iterator's Next.
	Open(ctx context.Context, in *relation.Instance) (Iterator, error)
	// Eval materializes the node's result against the instance,
	// without a budget or cancellation (it drains Open under the
	// background context).
	Eval(in *relation.Instance) (*relation.Relation, error)
	// SQL renders the node as a SQL table expression.
	SQL() string
}

// Scan reads a stored relation, optionally under an alias (a relation
// copy, e.g. Parents AS Parents2).
type Scan struct {
	Base  string
	Alias string // empty means Base
}

// NewScan builds a scan of the base relation under the given alias.
func NewScan(base, alias string) Scan {
	if alias == "" {
		alias = base
	}
	return Scan{Base: base, Alias: alias}
}

// Eval returns the (possibly aliased) stored relation.
func (s Scan) Eval(in *relation.Instance) (*relation.Relation, error) {
	return in.Aliased(s.Base, s.aliasOrBase())
}

func (s Scan) aliasOrBase() string {
	if s.Alias == "" {
		return s.Base
	}
	return s.Alias
}

// SQL renders "Base" or "Base AS Alias".
func (s Scan) SQL() string {
	if s.Alias == "" || s.Alias == s.Base {
		return s.Base
	}
	return s.Base + " AS " + s.Alias
}

// Select filters the child by a predicate (kept only when true).
type Select struct {
	Child Node
	Pred  expr.Expr
}

// Eval filters the child's tuples under 3VL.
func (s Select) Eval(in *relation.Instance) (*relation.Relation, error) {
	return Collect(context.Background(), s, in)
}

// SQL renders a filtered subquery.
func (s Select) SQL() string {
	return "(SELECT * FROM " + s.Child.SQL() + " WHERE " + s.Pred.String() + ")"
}

// OutputCol is one column of a generalized projection: a named
// expression.
type OutputCol struct {
	Name string
	Expr expr.Expr
}

// Project computes named expressions over the child's tuples.
type Project struct {
	Name  string // result relation name
	Child Node
	Cols  []OutputCol
}

// Eval computes the projection.
func (p Project) Eval(in *relation.Instance) (*relation.Relation, error) {
	return Collect(context.Background(), p, in)
}

// SQL renders SELECT exprs FROM child.
func (p Project) SQL() string {
	parts := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		parts[i] = c.Expr.String() + " AS " + unqualify(c.Name)
	}
	return "(SELECT " + strings.Join(parts, ", ") + " FROM " + p.Child.SQL() + ")"
}

func unqualify(name string) string {
	if ref, err := schema.ParseColumnRef(name); err == nil {
		return ref.Attr
	}
	return name
}

// JoinKind selects join semantics.
type JoinKind uint8

// The supported join kinds.
const (
	InnerJoin JoinKind = iota
	LeftJoin
	RightJoin
	FullJoin
)

// String returns the SQL keyword for the join kind.
func (k JoinKind) String() string {
	switch k {
	case InnerJoin:
		return "JOIN"
	case LeftJoin:
		return "LEFT JOIN"
	case RightJoin:
		return "RIGHT JOIN"
	case FullJoin:
		return "FULL JOIN"
	default:
		return "JOIN?"
	}
}

// Join combines two children on a predicate. Equality conjuncts over
// one left and one right column are executed as a hash join; any
// residual predicate is applied per candidate pair.
type Join struct {
	Kind JoinKind
	L, R Node
	On   expr.Expr
	// EstRows is the planner's estimated output cardinality (0 =
	// unplanned). It does not affect execution; the operator span
	// reports it next to the actual row count so EXPLAIN can show
	// est vs. actual per operator.
	EstRows int64
}

// Open streams the join: both children are materialized (a join is a
// pipeline breaker), then matched pairs and outer padding are emitted
// in batches. When the context budget has a spill directory, the
// children sink through spill-aware sides instead — build state that
// exceeds the in-memory cap Grace-hash partitions to temp files, and
// the join runs partition by partition (see spilljoin.go).
func (j Join) Open(ctx context.Context, in *relation.Instance) (Iterator, error) {
	if budget.FromContext(ctx).SpillEnabled() {
		return openSpillJoin(ctx, j, in)
	}
	ctx, span := openOp(ctx, "op.join")
	span.SetStr("kind", j.Kind.String())
	if j.EstRows > 0 {
		span.SetInt("est_rows", j.EstRows)
	}
	l, err := materializeChild(ctx, j.L, in)
	if err != nil {
		span.End()
		return nil, err
	}
	r, err := materializeChild(ctx, j.R, in)
	if err != nil {
		span.End()
		return nil, err
	}
	return newJoinIter(ctx, span, j.Kind, l, r, j.On), nil
}

// Eval executes the join.
func (j Join) Eval(in *relation.Instance) (*relation.Relation, error) {
	return Collect(context.Background(), j, in)
}

// SQL renders the join tree.
func (j Join) SQL() string {
	return j.L.SQL() + " " + j.Kind.String() + " " + j.R.SQL() + " ON " + j.On.String()
}

// Cross is the cross product.
type Cross struct{ L, R Node }

// Eval computes the cross product.
func (c Cross) Eval(in *relation.Instance) (*relation.Relation, error) {
	return Collect(context.Background(), c, in)
}

// SQL renders CROSS JOIN.
func (c Cross) SQL() string { return c.L.SQL() + " CROSS JOIN " + c.R.SQL() }

// Distinct removes duplicate tuples.
type Distinct struct{ Child Node }

// Eval deduplicates.
func (d Distinct) Eval(in *relation.Instance) (*relation.Relation, error) {
	return Collect(context.Background(), d, in)
}

// SQL renders SELECT DISTINCT *.
func (d Distinct) SQL() string {
	return "(SELECT DISTINCT * FROM " + d.Child.SQL() + ")"
}

// Union is set union of union-compatible children (deduplicated).
type Union struct{ L, R Node }

// Eval unions the children; schemes must have the same attribute set.
func (u Union) Eval(in *relation.Instance) (*relation.Relation, error) {
	return Collect(context.Background(), u, in)
}

// SQL renders UNION.
func (u Union) SQL() string { return u.L.SQL() + " UNION " + u.R.SQL() }

// MinUnion is the paper's minimum union (outer union minus strictly
// subsumed tuples) of any number of children.
type MinUnion struct {
	Name     string
	Children []Node
}

// Eval computes the minimum union.
func (m MinUnion) Eval(in *relation.Instance) (*relation.Relation, error) {
	return Collect(context.Background(), m, in)
}

// SQL renders the children joined by the ⊕ pseudo-operator (minimum
// union has no SQL surface syntax; Galindo-Legaria's operator symbol
// is used for display).
func (m MinUnion) SQL() string {
	parts := make([]string, len(m.Children))
	for i, c := range m.Children {
		parts[i] = c.SQL()
	}
	return strings.Join(parts, " ⊕ ")
}

// Materialized wraps an already-computed relation as a plan node (used
// to query over D(G) without recomputing it).
type Materialized struct {
	Label string
	Rel   *relation.Relation
}

// Eval returns the wrapped relation.
func (m Materialized) Eval(*relation.Instance) (*relation.Relation, error) { return m.Rel, nil }

// SQL renders the label.
func (m Materialized) SQL() string {
	if m.Label != "" {
		return m.Label
	}
	return m.Rel.Name
}
