package algebra

// Grace-hash spill join: when the context budget carries a spill
// directory (budget.Budget.SpillDir), Join.Open routes here instead of
// materializing both children unconditionally. Each side sinks through
// a spillSide: tuples are retained in memory and charged against the
// budget until a charge fails, at which point everything seen so far —
// and everything still streaming — is hash-partitioned to temp files
// on the side's equi-join columns and the memory charges refunded.
// The join then runs partition by partition: equal keys hash to the
// same partition on both sides (the canonical tuple hashes normalize
// cross-kind numeric equality, and null keys hash identically on both
// sides), so each per-partition joinIter — matches, residual
// predicates, and outer padding included — is globally exact.
//
// Partition pairs are processed off a task queue with one pair of
// extensions (see graceJoinIter): an oversized pair — skewed keys
// whose partition exceeds the resident cap — is recursively
// re-partitioned with a fresh per-depth hash salt up to the budget's
// recursion limit (then a typed abort naming "recursion_exhausted"),
// and the next pair is prefetched on a worker goroutine while the
// current pair joins. The recorded per-partition statistics feed an
// up-front feasibility check (pairReplayBound) so a provably-doomed
// replay aborts before paying any partition I/O.
//
// Joins with no equi conjunct cannot be hash-partitioned; an
// over-budget build side there stays a typed abort (the budget error
// carries spill state "enabled" so operators can tell it apart from
// spill-disabled refusals).

import (
	"context"
	"errors"

	"clio/internal/budget"
	"clio/internal/expr"
	"clio/internal/fault"
	"clio/internal/obs"
	"clio/internal/relation"
	"clio/internal/spill"
)

// cPrefetchHits counts partition pairs consumed from the prefetch
// worker instead of loaded serially (clio_spill_prefetch_hits_total).
var cPrefetchHits = obs.GetCounter("spill.prefetch_hits")

// spillSide is one sunk join input: fully in memory (rel), in memory
// partitioned to match a spilled counterpart (groups), or spilled to
// temp-file partitions (parts).
type spillSide struct {
	name   string
	scheme *relation.Scheme
	cols   []int // equi-join hash positions within scheme
	rel    *relation.Relation
	groups []*relation.Relation
	parts  *spill.PartitionSet
	// rows/bytes are the retained in-memory charges (zero for base
	// relations, which the instance pins regardless of this join).
	rows, bytes int64
}

// close refunds the side's memory charges and removes its spill files.
func (sd *spillSide) close(tr *budget.Tracker) {
	if sd == nil {
		return
	}
	tr.Refund(sd.rows, sd.bytes)
	sd.rows, sd.bytes = 0, 0
	sd.parts.Close()
}

// spilled reports whether the side overflowed to disk.
func (sd *spillSide) spilled() bool { return sd.parts != nil }

// partitionMem splits an in-memory side into n hash groups so it can
// join a spilled counterpart partition by partition. The groups share
// tuple storage with rel, so nothing new is charged.
func (sd *spillSide) partitionMem(n int) {
	if sd.rel == nil || sd.groups != nil {
		return
	}
	groups := make([]*relation.Relation, n)
	for i := range groups {
		groups[i] = relation.New(sd.rel.Name, sd.scheme)
	}
	for _, t := range sd.rel.Tuples() {
		groups[spill.Route(t, sd.cols, 0, n)].Add(t)
	}
	sd.groups = groups
}

// load returns partition i as an in-memory relation: the pre-built
// hash group for memory sides, or a charged read-back of the temp file
// for spilled sides (the returned rows/bytes are the caller's to
// refund once the partition is joined).
func (sd *spillSide) load(tr *budget.Tracker, i int) (*relation.Relation, int64, int64, error) {
	if !sd.spilled() {
		return sd.groups[i], 0, 0, nil
	}
	rel := relation.New(sd.name, sd.scheme)
	var rows, bytes int64
	err := sd.parts.Read(i, sd.scheme, func(t relation.Tuple) error {
		b := t.ApproxBytes()
		if err := tr.Charge(1, b); err != nil {
			return err
		}
		rows++
		bytes += b
		rel.Add(t)
		return nil
	})
	if err != nil {
		tr.Refund(rows, bytes)
		return nil, 0, 0, err
	}
	return rel, rows, bytes, nil
}

// openSide prepares one child for sinking: base relations (scans and
// already-materialized nodes) come back as a pinned relation — they
// are instance state, not new materialization, so they are neither
// charged nor spilled — and anything else as its open iterator.
func openSide(ctx context.Context, n Node, in *relation.Instance) (Iterator, *relation.Relation, error) {
	switch x := n.(type) {
	case Scan:
		r, err := x.Eval(in)
		return nil, r, err
	case Materialized:
		return nil, x.Rel, nil
	}
	it, err := n.Open(ctx, in)
	return it, nil, err
}

// sinkSide drains one join input into a spillSide, switching from
// charged in-memory retention to Grace-hash temp-file partitions the
// moment the budget refuses a charge. cols are the side's equi-join
// positions; without them an over-budget side cannot spill and the
// budget error propagates as a typed abort. The iterator (when any) is
// closed in all cases.
func sinkSide(tr *budget.Tracker, it Iterator, base *relation.Relation, cols []int) (*spillSide, error) {
	if base != nil {
		return &spillSide{name: base.Name, scheme: base.Scheme(), cols: cols, rel: base}, nil
	}
	defer it.Close()
	side := &spillSide{
		name:   it.Name(),
		scheme: it.Scheme(),
		cols:   cols,
		rel:    relation.New(it.Name(), it.Scheme()),
	}
	for {
		batch, err := it.Next()
		if err != nil {
			side.close(tr)
			return nil, err
		}
		if batch == nil {
			return side, nil
		}
		for _, t := range batch {
			if side.spilled() {
				if err := side.parts.Add(t); err != nil {
					side.close(tr)
					return nil, err
				}
				continue
			}
			b := t.ApproxBytes()
			cerr := tr.Charge(1, b)
			if cerr == nil {
				side.rel.Add(t)
				side.rows++
				side.bytes += b
				continue
			}
			if len(cols) == 0 {
				side.close(tr)
				return nil, cerr
			}
			// Overflow: move the retained prefix to disk, refund its
			// memory, and keep streaming straight to the partitions.
			side.parts = spill.NewPartitionSet(tr, spill.DefaultPartitions, cols)
			for _, u := range side.rel.Tuples() {
				if err := side.parts.Add(u); err != nil {
					side.close(tr)
					return nil, err
				}
			}
			tr.Refund(side.rows, side.bytes)
			side.rows, side.bytes = 0, 0
			side.rel = nil
			if err := side.parts.Add(t); err != nil {
				side.close(tr)
				return nil, err
			}
		}
	}
}

// openSpillJoin is Join.Open under a spill-enabled budget.
func openSpillJoin(ctx context.Context, j Join, in *relation.Instance) (Iterator, error) {
	ctx, span := openOp(ctx, "op.join")
	span.SetStr("kind", j.Kind.String())
	if j.EstRows > 0 {
		span.SetInt("est_rows", j.EstRows)
	}
	tr := budget.FromContext(ctx)
	li, lbase, err := openSide(ctx, j.L, in)
	if err != nil {
		span.End()
		return nil, err
	}
	ri, rbase, err := openSide(ctx, j.R, in)
	if err != nil {
		if li != nil {
			li.Close()
		}
		span.End()
		return nil, err
	}
	ls, rs := sideScheme(li, lbase), sideScheme(ri, rbase)
	eqL, eqR, _ := SplitEquiConjuncts(j.On, ls, rs)
	var lcols, rcols []int
	if len(eqL) > 0 {
		lcols = ls.Positions(eqL...)
		rcols = rs.Positions(eqR...)
	}
	left, err := sinkSide(tr, li, lbase, lcols)
	if err != nil {
		if ri != nil {
			ri.Close()
		}
		span.End()
		return nil, err
	}
	right, err := sinkSide(tr, ri, rbase, rcols)
	if err != nil {
		left.close(tr)
		span.End()
		return nil, err
	}
	if !left.spilled() && !right.spilled() {
		// Everything fit: the standard streaming join, with the sides'
		// retained charges released when it closes.
		return &sideReleaseIter{
			joinIter: newJoinIter(ctx, span, j.Kind, left.rel, right.rel, j.On),
			tr:       tr,
			sides:    [2]*spillSide{left, right},
		}, nil
	}
	n := spill.DefaultPartitions
	span.SetBool("spilled", true)
	span.SetInt("partitions", int64(n))
	if left.spilled() {
		left.parts.RecordStats()
	}
	if right.spilled() {
		right.parts.RecordStats()
	}
	if err := pairReplayBound(tr, left, right, n); err != nil {
		left.close(tr)
		right.close(tr)
		span.End()
		return nil, err
	}
	left.partitionMem(n)
	right.partitionMem(n)
	it := &graceJoinIter{
		ctx:      ctx,
		tr:       tr,
		kind:     j.Kind,
		on:       j.On,
		s:        ls.Concat(rs),
		left:     left,
		right:    right,
		maxDepth: tr.RecursionLimit(),
		op:       opStats{span: span},
	}
	lim := tr.Limits()
	it.slackRows, it.slackBytes = lim.MaxRows/8, lim.MaxBytes/8
	it.queue = make([]pairTask, n)
	for i := range it.queue {
		it.queue[i] = pairTask{l: sideSrc(left, i), r: sideSrc(right, i)}
	}
	it.pctx, it.pcancel = context.WithCancel(context.Background())
	it.pch = make(chan prefetched, 1)
	return it, nil
}

// pairReplayBound is the picker's up-front spill verdict: from the
// recorded partition statistics, the largest pair's disk footprint is
// a certain lower bound on the rows/bytes its replay must charge (one
// frame is one resident row, and frame bytes are always below the
// decoded tuple's ApproxBytes). If even the recursion budget cannot
// divide that pair under the caps, every replay is guaranteed to
// abort — refuse before paying any partition I/O.
func pairReplayBound(tr *budget.Tracker, left, right *spillSide, n int) error {
	var maxRows, maxBytes int64
	for i := 0; i < n; i++ {
		var rows, bytes int64
		for _, sd := range [2]*spillSide{left, right} {
			if sd.spilled() {
				rows += int64(sd.parts.Tuples(i))
				bytes += sd.parts.PartBytes(i)
			}
		}
		if rows > maxRows {
			maxRows = rows
		}
		if bytes > maxBytes {
			maxBytes = bytes
		}
	}
	limit := tr.RecursionLimit()
	state := budget.SpillRecursionExhausted
	if limit == 0 {
		// Recursion disabled: the refusal is the plain spill-enabled
		// kind, same as discovering it at load time.
		state = budget.SpillEnabled
	}
	lim := tr.Limits()
	if d := budget.SpillDepthLowerBound(maxRows, lim.MaxRows, n); d > limit {
		return &budget.Error{Limit: "rows", Max: lim.MaxRows, Got: tr.Rows() + maxRows, Spill: state}
	}
	if d := budget.SpillDepthLowerBound(maxBytes, lim.MaxBytes, n); d > limit {
		return &budget.Error{Limit: "bytes", Max: lim.MaxBytes, Got: tr.Bytes() + maxBytes, Spill: state}
	}
	return nil
}

func sideScheme(it Iterator, base *relation.Relation) *relation.Scheme {
	if base != nil {
		return base.Scheme()
	}
	return it.Scheme()
}

// sideReleaseIter is a joinIter over fully-sunk in-memory sides; it
// refunds the sides' retained charges on Close (the join output is the
// consumer's to account for).
type sideReleaseIter struct {
	*joinIter
	tr    *budget.Tracker
	sides [2]*spillSide
}

func (it *sideReleaseIter) Close() {
	it.joinIter.Close()
	it.sides[0].close(it.tr)
	it.sides[1].close(it.tr)
}

// pairSrc is one side of one partition-pair task: either partition idx
// of a PartitionSet (a spilled side, or a recursive child set) or an
// in-memory hash group (an unspilled side, possibly a recursive salted
// sub-split sharing tuple storage with its parent).
type pairSrc struct {
	name   string
	scheme *relation.Scheme
	cols   []int
	rel    *relation.Relation  // in-memory group; nil when on disk
	ps     *spill.PartitionSet // disk source; nil for rel
	idx    int
}

// sideSrc builds the depth-0 source for partition i of a sunk side.
func sideSrc(sd *spillSide, i int) pairSrc {
	src := pairSrc{name: sd.name, scheme: sd.scheme, cols: sd.cols, idx: i}
	if sd.spilled() {
		src.ps = sd.parts
	} else {
		src.rel = sd.groups[i]
	}
	return src
}

// load materializes the source as a charged in-memory relation.
// In-memory groups cost nothing (they share their parent's storage);
// disk partitions charge each decoded tuple through charge. On error
// the partial charges are already refunded. A non-nil ctx is checked
// per tuple so an abandoned prefetch stops promptly.
func (src *pairSrc) load(tr *budget.Tracker, charge func(rows, bytes int64) error, ctx context.Context) (*relation.Relation, int64, int64, error) {
	if src.ps == nil {
		return src.rel, 0, 0, nil
	}
	rel := relation.New(src.name, src.scheme)
	var rows, bytes int64
	err := src.ps.Read(src.idx, src.scheme, func(t relation.Tuple) error {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		b := t.ApproxBytes()
		if err := charge(1, b); err != nil {
			return err
		}
		rows++
		bytes += b
		rel.Add(t)
		return nil
	})
	if err != nil {
		tr.Refund(rows, bytes)
		return nil, 0, 0, err
	}
	return rel, rows, bytes, nil
}

// pairTask is one pending partition pair at some recursion depth.
// owner tracks the child PartitionSets the task reads from so they can
// be closed once every sibling has been joined (nil at depth 0, where
// the sides themselves own the sets).
type pairTask struct {
	l, r  pairSrc
	depth int
	owner *childSets
}

// childSets refcounts the salted child sets produced by one recursion:
// closed (files removed, disk refunded) when all fan-out siblings have
// been processed, or at iterator Close.
type childSets struct {
	sets      []*spill.PartitionSet
	remaining int
	closed    bool
}

func (c *childSets) close() {
	if c == nil || c.closed {
		return
	}
	c.closed = true
	for _, ps := range c.sets {
		ps.Close()
	}
}

// prefetched is one pair load completed by the prefetch worker.
type prefetched struct {
	task        pairTask
	lrel, rrel  *relation.Relation
	rows, bytes int64
	err         error
}

// errPrefetchMiss marks a prefetch load the headroom charge refused —
// an opportunistic miss, not a budget verdict: the foreground retries
// the pair with a plain charge.
var errPrefetchMiss = errors.New("spill: prefetch headroom refused")

// graceJoinIter joins two partitioned sides pair by pair from a task
// queue: load both halves of the pair (charged), run the standard
// joinIter, refund, release, advance. Matched pairs and outer padding
// are per-partition exact because equal keys — and null keys — land in
// the same partition on both sides at every depth.
//
// Two extensions over plain pair-at-a-time:
//
//   - Recursion: a pair whose serial load is refused by the budget is
//     re-partitioned — both halves, with a fresh per-depth salt — into
//     fan-out child pairs appended to the queue, up to the budget's
//     recursion limit; past the limit the refusal escalates to a typed
//     abort naming spill state "recursion_exhausted".
//   - Overlap: while a pair joins, one worker goroutine loads the next
//     pair using headroom-bounded charges (never the foreground's
//     slack), double-buffered through a 1-slot channel. A refused or
//     faulted prefetch falls back to the serial path; recursion only
//     ever runs on the foreground with no prefetch in flight.
type graceJoinIter struct {
	ctx         context.Context
	tr          *budget.Tracker
	kind        JoinKind
	on          expr.Expr
	s           *relation.Scheme
	left, right *spillSide
	maxDepth    int
	slackRows   int64
	slackBytes  int64
	queue       []pairTask
	owners      []*childSets
	cur         pairTask
	curL, curR  *relation.Relation
	inner       *joinIter
	loadedRows  int64
	loadedBytes int64
	pctx        context.Context
	pcancel     context.CancelFunc
	pch         chan prefetched
	inflight    bool
	emitted     bool // current pair has produced output (recursion no longer exact)
	op          opStats
}

func (it *graceJoinIter) Scheme() *relation.Scheme { return it.s }
func (it *graceJoinIter) Name() string             { return "" }

func (it *graceJoinIter) Close() {
	if it.op.done {
		return
	}
	if it.pcancel != nil {
		it.pcancel()
	}
	if it.inflight {
		p := <-it.pch
		it.tr.Refund(p.rows, p.bytes)
		it.inflight = false
	}
	if it.inner != nil {
		it.inner.Close()
		it.inner = nil
	}
	it.tr.Refund(it.loadedRows, it.loadedBytes)
	it.loadedRows, it.loadedBytes = 0, 0
	for _, o := range it.owners {
		o.close()
	}
	it.left.close(it.tr)
	it.right.close(it.tr)
	it.op.close()
}

func (it *graceJoinIter) Next() ([]relation.Tuple, error) {
	if err := it.ctx.Err(); err != nil {
		return nil, err
	}
	for {
		if it.inner == nil {
			lrel, rrel, ok, err := it.nextPair()
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, nil
			}
			it.curL, it.curR = lrel, rrel
			it.inner = newJoinIter(it.ctx, nil, it.kind, lrel, rrel, it.on)
			it.emitted = false
		}
		batch, err := it.inner.Next()
		if err != nil {
			rerr, handled := it.recoverInnerBudget(err)
			if !handled {
				return nil, err
			}
			if rerr != nil {
				return nil, rerr
			}
			continue
		}
		if batch != nil {
			it.emitted = true
			it.op.observe(batch)
			return batch, nil
		}
		it.inner.Close()
		it.inner = nil
		it.tr.Refund(it.loadedRows, it.loadedBytes)
		it.loadedRows, it.loadedBytes = 0, 0
		it.releaseTask(it.cur)
	}
}

// recoverInnerBudget handles a budget refusal raised by the in-memory
// join of the current pair before it emitted any output: the pair
// loaded, but its join state and first output batch cannot coexist
// with it under the cap — the same condition as a refused load, one
// batch later. Since nothing was emitted, re-partitioning the pair is
// still exact, so it recurses (or escalates past the depth limit)
// exactly like nextPair. handled=false propagates the error unchanged:
// non-budget failures, disk-cap aborts, recursion disabled, and pairs
// that already emitted (recursing those would duplicate output).
func (it *graceJoinIter) recoverInnerBudget(err error) (rerr error, handled bool) {
	var be *budget.Error
	if it.emitted || !errors.As(err, &be) || be.Limit == "spill" {
		return nil, false
	}
	if it.inflight {
		// The squeeze may be the prefetch's resident charges rather
		// than this pair's own footprint: reclaim the prefetch and
		// retry the pair with the full budget before concluding it
		// needs re-partitioning.
		it.inner.Close()
		it.reclaimPrefetch()
		it.inner = newJoinIter(it.ctx, nil, it.kind, it.curL, it.curR, it.on)
		return nil, true
	}
	if it.cur.depth >= it.maxDepth {
		if it.maxDepth == 0 {
			return nil, false
		}
		return &budget.Error{
			Limit: be.Limit, Max: be.Max, Got: be.Got,
			Spill: budget.SpillRecursionExhausted,
		}, true
	}
	it.inner.Close()
	it.inner = nil
	it.tr.Refund(it.loadedRows, it.loadedBytes)
	it.loadedRows, it.loadedBytes = 0, 0
	it.reclaimPrefetch()
	if err := it.recurse(it.cur); err != nil {
		return err, true
	}
	return nil, true
}

// reclaimPrefetch drains an in-flight prefetch and requeues its task
// at the queue head for a serial retry, refunding anything it loaded.
// Called before a recursion triggered outside nextPair so
// re-partitioning never runs concurrently with a prefetch reader.
func (it *graceJoinIter) reclaimPrefetch() {
	if !it.inflight {
		return
	}
	p := <-it.pch
	it.inflight = false
	it.tr.Refund(p.rows, p.bytes)
	it.queue = append([]pairTask{p.task}, it.queue...)
}

// nextPair produces the next loaded partition pair: from the prefetch
// worker when one is in flight, serially otherwise, recursing on
// budget refusals until the pair fits or the depth limit is hit.
func (it *graceJoinIter) nextPair() (*relation.Relation, *relation.Relation, bool, error) {
	for {
		var task pairTask
		var lrel, rrel *relation.Relation
		var rows, bytes int64
		var err error
		fromPrefetch := false
		if it.inflight {
			p := <-it.pch
			it.inflight = false
			task, lrel, rrel, rows, bytes, err = p.task, p.lrel, p.rrel, p.rows, p.bytes, p.err
			fromPrefetch = err == nil
			if cerr := it.ctx.Err(); cerr != nil {
				it.tr.Refund(rows, bytes)
				return nil, nil, false, cerr
			}
			if errors.Is(err, errPrefetchMiss) {
				lrel, rrel, rows, bytes, err = it.loadPairSerial(task)
			}
		} else {
			if len(it.queue) == 0 {
				return nil, nil, false, nil
			}
			task = it.queue[0]
			it.queue = it.queue[1:]
			lrel, rrel, rows, bytes, err = it.loadPairSerial(task)
		}
		if err == nil {
			it.cur = task
			it.loadedRows, it.loadedBytes = rows, bytes
			if fromPrefetch {
				cPrefetchHits.Inc()
				it.tr.NotePrefetchHit()
			}
			it.startPrefetch()
			return lrel, rrel, true, nil
		}
		// Partial charges were refunded by load. Only an in-memory
		// budget refusal is recursable: I/O faults, ctx cancellation,
		// and the disk cap propagate as typed aborts unchanged.
		var be *budget.Error
		if !errors.As(err, &be) || be.Limit == "spill" {
			return nil, nil, false, err
		}
		if task.depth >= it.maxDepth {
			if it.maxDepth == 0 {
				// Recursion disabled: the plain spill-enabled refusal
				// (the operator's remedy is -spill-recursion-depth).
				return nil, nil, false, err
			}
			return nil, nil, false, &budget.Error{
				Limit: be.Limit, Max: be.Max, Got: be.Got,
				Spill: budget.SpillRecursionExhausted,
			}
		}
		if rerr := it.recurse(task); rerr != nil {
			return nil, nil, false, rerr
		}
	}
}

func (it *graceJoinIter) loadPairSerial(task pairTask) (*relation.Relation, *relation.Relation, int64, int64, error) {
	lrel, lr, lb, err := task.l.load(it.tr, it.tr.Charge, nil)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	rrel, rr, rb, err := task.r.load(it.tr, it.tr.Charge, nil)
	if err != nil {
		it.tr.Refund(lr, lb)
		return nil, nil, 0, 0, err
	}
	return lrel, rrel, lr + rr, lb + rb, nil
}

// startPrefetch hands the queue head to the worker goroutine. The
// worker charges through ChargeHeadroom so it can never consume the
// slack the foreground join needs for its own output batches, and
// always sends exactly one result (Close drains it).
func (it *graceJoinIter) startPrefetch() {
	if it.inflight || len(it.queue) == 0 {
		return
	}
	task := it.queue[0]
	it.queue = it.queue[1:]
	it.inflight = true
	go func() {
		if err := fault.Inject("spill.prefetch"); err != nil {
			it.pch <- prefetched{task: task, err: spill.Fail("prefetch", err)}
			return
		}
		charge := func(rows, bytes int64) error {
			if !it.tr.ChargeHeadroom(rows, bytes, it.slackRows, it.slackBytes) {
				return errPrefetchMiss
			}
			return nil
		}
		lrel, lr, lb, err := task.l.load(it.tr, charge, it.pctx)
		if err != nil {
			it.pch <- prefetched{task: task, err: err}
			return
		}
		rrel, rr, rb, err := task.r.load(it.tr, charge, it.pctx)
		if err != nil {
			it.tr.Refund(lr, lb)
			it.pch <- prefetched{task: task, err: err}
			return
		}
		it.pch <- prefetched{task: task, lrel: lrel, rrel: rrel, rows: lr + rr, bytes: lb + rb}
	}()
}

// releaseTask retires a completed (or recursed) task, closing its
// owning child sets once every sibling is done.
func (it *graceJoinIter) releaseTask(task pairTask) {
	if task.owner == nil {
		return
	}
	task.owner.remaining--
	if task.owner.remaining == 0 {
		task.owner.close()
	}
}

// recurse re-partitions both halves of an oversized pair with the next
// depth's salt and queues the fan-out child pairs. The parent disk
// partitions are dropped once split (their bytes refunded); in-memory
// halves split into salted sub-groups sharing the parent's storage.
// Runs only on the foreground with no prefetch in flight, so no reader
// races the re-partitioning.
func (it *graceJoinIter) recurse(task pairTask) error {
	depth := task.depth + 1
	salt := spill.DepthSalt(depth)
	fan := spill.DefaultPartitions
	owner := &childSets{remaining: fan}
	split := func(src pairSrc) (*spill.PartitionSet, []*relation.Relation, error) {
		if src.ps == nil {
			return nil, splitRelSalted(src.rel, src.scheme, src.cols, fan, salt), nil
		}
		child, err := src.ps.Repartition(src.idx, src.scheme, fan, salt)
		if err != nil {
			return nil, nil, err
		}
		src.ps.DropPart(src.idx)
		owner.sets = append(owner.sets, child)
		it.tr.NoteRecursion(depth)
		return child, nil, nil
	}
	lps, lsub, err := split(task.l)
	if err != nil {
		owner.close()
		return err
	}
	rps, rsub, err := split(task.r)
	if err != nil {
		owner.close()
		return err
	}
	it.owners = append(it.owners, owner)
	for i := 0; i < fan; i++ {
		ct := pairTask{depth: depth, owner: owner}
		ct.l = childSrc(task.l, lps, lsub, i)
		ct.r = childSrc(task.r, rps, rsub, i)
		it.queue = append(it.queue, ct)
	}
	it.releaseTask(task)
	return nil
}

// childSrc derives the child source for fan-out slot i of a recursed
// parent source.
func childSrc(parent pairSrc, ps *spill.PartitionSet, sub []*relation.Relation, i int) pairSrc {
	src := pairSrc{name: parent.name, scheme: parent.scheme, cols: parent.cols, idx: i}
	if ps != nil {
		src.ps = ps
	} else {
		src.rel = sub[i]
	}
	return src
}

// splitRelSalted splits an in-memory relation into n salted hash
// groups on cols, with byte-identical routing to a spilled counterpart
// (spill.Route). The groups share tuple storage with rel, so nothing
// new is charged.
func splitRelSalted(rel *relation.Relation, s *relation.Scheme, cols []int, n int, salt uint64) []*relation.Relation {
	out := make([]*relation.Relation, n)
	for i := range out {
		out[i] = relation.New(rel.Name, s)
	}
	for _, t := range rel.Tuples() {
		out[spill.Route(t, cols, salt, n)].Add(t)
	}
	return out
}
