package algebra

// Grace-hash spill join: when the context budget carries a spill
// directory (budget.Budget.SpillDir), Join.Open routes here instead of
// materializing both children unconditionally. Each side sinks through
// a spillSide: tuples are retained in memory and charged against the
// budget until a charge fails, at which point everything seen so far —
// and everything still streaming — is hash-partitioned to temp files
// on the side's equi-join columns and the memory charges refunded.
// The join then runs partition by partition: equal keys hash to the
// same partition on both sides (the canonical tuple hashes normalize
// cross-kind numeric equality, and null keys hash identically on both
// sides), so each per-partition joinIter — matches, residual
// predicates, and outer padding included — is globally exact.
//
// Joins with no equi conjunct cannot be hash-partitioned; an
// over-budget build side there stays a typed abort (the budget error
// carries spill state "enabled" so operators can tell it apart from
// spill-disabled refusals).

import (
	"context"

	"clio/internal/budget"
	"clio/internal/expr"
	"clio/internal/relation"
	"clio/internal/spill"
)

// spillSide is one sunk join input: fully in memory (rel), in memory
// partitioned to match a spilled counterpart (groups), or spilled to
// temp-file partitions (parts).
type spillSide struct {
	name   string
	scheme *relation.Scheme
	cols   []int // equi-join hash positions within scheme
	rel    *relation.Relation
	groups []*relation.Relation
	parts  *spill.PartitionSet
	// rows/bytes are the retained in-memory charges (zero for base
	// relations, which the instance pins regardless of this join).
	rows, bytes int64
}

// close refunds the side's memory charges and removes its spill files.
func (sd *spillSide) close(tr *budget.Tracker) {
	if sd == nil {
		return
	}
	tr.Refund(sd.rows, sd.bytes)
	sd.rows, sd.bytes = 0, 0
	sd.parts.Close()
}

// spilled reports whether the side overflowed to disk.
func (sd *spillSide) spilled() bool { return sd.parts != nil }

// partitionMem splits an in-memory side into n hash groups so it can
// join a spilled counterpart partition by partition. The groups share
// tuple storage with rel, so nothing new is charged.
func (sd *spillSide) partitionMem(n int) {
	if sd.rel == nil || sd.groups != nil {
		return
	}
	groups := make([]*relation.Relation, n)
	for i := range groups {
		groups[i] = relation.New(sd.rel.Name, sd.scheme)
	}
	for _, t := range sd.rel.Tuples() {
		groups[t.HashOn(sd.cols)%uint64(n)].Add(t)
	}
	sd.groups = groups
}

// load returns partition i as an in-memory relation: the pre-built
// hash group for memory sides, or a charged read-back of the temp file
// for spilled sides (the returned rows/bytes are the caller's to
// refund once the partition is joined).
func (sd *spillSide) load(tr *budget.Tracker, i int) (*relation.Relation, int64, int64, error) {
	if !sd.spilled() {
		return sd.groups[i], 0, 0, nil
	}
	rel := relation.New(sd.name, sd.scheme)
	var rows, bytes int64
	err := sd.parts.Read(i, sd.scheme, func(t relation.Tuple) error {
		b := t.ApproxBytes()
		if err := tr.Charge(1, b); err != nil {
			return err
		}
		rows++
		bytes += b
		rel.Add(t)
		return nil
	})
	if err != nil {
		tr.Refund(rows, bytes)
		return nil, 0, 0, err
	}
	return rel, rows, bytes, nil
}

// openSide prepares one child for sinking: base relations (scans and
// already-materialized nodes) come back as a pinned relation — they
// are instance state, not new materialization, so they are neither
// charged nor spilled — and anything else as its open iterator.
func openSide(ctx context.Context, n Node, in *relation.Instance) (Iterator, *relation.Relation, error) {
	switch x := n.(type) {
	case Scan:
		r, err := x.Eval(in)
		return nil, r, err
	case Materialized:
		return nil, x.Rel, nil
	}
	it, err := n.Open(ctx, in)
	return it, nil, err
}

// sinkSide drains one join input into a spillSide, switching from
// charged in-memory retention to Grace-hash temp-file partitions the
// moment the budget refuses a charge. cols are the side's equi-join
// positions; without them an over-budget side cannot spill and the
// budget error propagates as a typed abort. The iterator (when any) is
// closed in all cases.
func sinkSide(tr *budget.Tracker, it Iterator, base *relation.Relation, cols []int) (*spillSide, error) {
	if base != nil {
		return &spillSide{name: base.Name, scheme: base.Scheme(), cols: cols, rel: base}, nil
	}
	defer it.Close()
	side := &spillSide{
		name:   it.Name(),
		scheme: it.Scheme(),
		cols:   cols,
		rel:    relation.New(it.Name(), it.Scheme()),
	}
	for {
		batch, err := it.Next()
		if err != nil {
			side.close(tr)
			return nil, err
		}
		if batch == nil {
			return side, nil
		}
		for _, t := range batch {
			if side.spilled() {
				if err := side.parts.Add(t); err != nil {
					side.close(tr)
					return nil, err
				}
				continue
			}
			b := t.ApproxBytes()
			cerr := tr.Charge(1, b)
			if cerr == nil {
				side.rel.Add(t)
				side.rows++
				side.bytes += b
				continue
			}
			if len(cols) == 0 {
				side.close(tr)
				return nil, cerr
			}
			// Overflow: move the retained prefix to disk, refund its
			// memory, and keep streaming straight to the partitions.
			side.parts = spill.NewPartitionSet(tr, spill.DefaultPartitions, cols)
			for _, u := range side.rel.Tuples() {
				if err := side.parts.Add(u); err != nil {
					side.close(tr)
					return nil, err
				}
			}
			tr.Refund(side.rows, side.bytes)
			side.rows, side.bytes = 0, 0
			side.rel = nil
			if err := side.parts.Add(t); err != nil {
				side.close(tr)
				return nil, err
			}
		}
	}
}

// openSpillJoin is Join.Open under a spill-enabled budget.
func openSpillJoin(ctx context.Context, j Join, in *relation.Instance) (Iterator, error) {
	ctx, span := openOp(ctx, "op.join")
	span.SetStr("kind", j.Kind.String())
	tr := budget.FromContext(ctx)
	li, lbase, err := openSide(ctx, j.L, in)
	if err != nil {
		span.End()
		return nil, err
	}
	ri, rbase, err := openSide(ctx, j.R, in)
	if err != nil {
		if li != nil {
			li.Close()
		}
		span.End()
		return nil, err
	}
	ls, rs := sideScheme(li, lbase), sideScheme(ri, rbase)
	eqL, eqR, _ := SplitEquiConjuncts(j.On, ls, rs)
	var lcols, rcols []int
	if len(eqL) > 0 {
		lcols = ls.Positions(eqL...)
		rcols = rs.Positions(eqR...)
	}
	left, err := sinkSide(tr, li, lbase, lcols)
	if err != nil {
		if ri != nil {
			ri.Close()
		}
		span.End()
		return nil, err
	}
	right, err := sinkSide(tr, ri, rbase, rcols)
	if err != nil {
		left.close(tr)
		span.End()
		return nil, err
	}
	if !left.spilled() && !right.spilled() {
		// Everything fit: the standard streaming join, with the sides'
		// retained charges released when it closes.
		return &sideReleaseIter{
			joinIter: newJoinIter(ctx, span, j.Kind, left.rel, right.rel, j.On),
			tr:       tr,
			sides:    [2]*spillSide{left, right},
		}, nil
	}
	n := spill.DefaultPartitions
	span.SetBool("spilled", true)
	span.SetInt("partitions", int64(n))
	left.partitionMem(n)
	right.partitionMem(n)
	return &graceJoinIter{
		ctx:   ctx,
		tr:    tr,
		kind:  j.Kind,
		on:    j.On,
		s:     ls.Concat(rs),
		left:  left,
		right: right,
		n:     n,
		op:    opStats{span: span},
	}, nil
}

func sideScheme(it Iterator, base *relation.Relation) *relation.Scheme {
	if base != nil {
		return base.Scheme()
	}
	return it.Scheme()
}

// sideReleaseIter is a joinIter over fully-sunk in-memory sides; it
// refunds the sides' retained charges on Close (the join output is the
// consumer's to account for).
type sideReleaseIter struct {
	*joinIter
	tr    *budget.Tracker
	sides [2]*spillSide
}

func (it *sideReleaseIter) Close() {
	it.joinIter.Close()
	it.sides[0].close(it.tr)
	it.sides[1].close(it.tr)
}

// graceJoinIter joins two partitioned sides one partition at a time:
// load partition p of each side (charged), run the standard joinIter
// on the pair, refund and advance. Matched pairs and outer padding are
// both per-partition exact because equal keys — and null keys — land
// in the same partition on both sides.
type graceJoinIter struct {
	ctx         context.Context
	tr          *budget.Tracker
	kind        JoinKind
	on          expr.Expr
	s           *relation.Scheme
	left, right *spillSide
	n           int
	p           int
	inner       *joinIter
	loadedRows  int64
	loadedBytes int64
	op          opStats
}

func (it *graceJoinIter) Scheme() *relation.Scheme { return it.s }
func (it *graceJoinIter) Name() string             { return "" }

func (it *graceJoinIter) Close() {
	if it.op.done {
		return
	}
	if it.inner != nil {
		it.inner.Close()
		it.inner = nil
	}
	it.tr.Refund(it.loadedRows, it.loadedBytes)
	it.loadedRows, it.loadedBytes = 0, 0
	it.left.close(it.tr)
	it.right.close(it.tr)
	it.op.close()
}

func (it *graceJoinIter) Next() ([]relation.Tuple, error) {
	if err := it.ctx.Err(); err != nil {
		return nil, err
	}
	for {
		if it.inner == nil {
			if it.p >= it.n {
				return nil, nil
			}
			lp, lr, lb, err := it.left.load(it.tr, it.p)
			if err != nil {
				return nil, err
			}
			rp, rr, rb, err := it.right.load(it.tr, it.p)
			if err != nil {
				it.tr.Refund(lr, lb)
				return nil, err
			}
			it.loadedRows, it.loadedBytes = lr+rr, lb+rb
			it.inner = newJoinIter(it.ctx, nil, it.kind, lp, rp, it.on)
		}
		batch, err := it.inner.Next()
		if err != nil {
			return nil, err
		}
		if batch != nil {
			it.op.observe(batch)
			return batch, nil
		}
		it.inner.Close()
		it.inner = nil
		it.tr.Refund(it.loadedRows, it.loadedBytes)
		it.loadedRows, it.loadedBytes = 0, 0
		it.p++
	}
}
