package algebra

import (
	"math/rand"
	"strings"
	"testing"

	"clio/internal/expr"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// testInstance builds a small Children/Parents/PhoneDir instance.
func testInstance() *relation.Instance {
	sch := schema.NewDatabase()
	sch.MustAddRelation(schema.NewRelation("Children",
		schema.Attribute{Name: "ID", Type: value.KindString},
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "age", Type: value.KindInt},
		schema.Attribute{Name: "mid", Type: value.KindString},
		schema.Attribute{Name: "fid", Type: value.KindString},
	))
	sch.MustAddRelation(schema.NewRelation("Parents",
		schema.Attribute{Name: "ID", Type: value.KindString},
		schema.Attribute{Name: "affiliation", Type: value.KindString},
	))
	sch.MustAddRelation(schema.NewRelation("PhoneDir",
		schema.Attribute{Name: "ID", Type: value.KindString},
		schema.Attribute{Name: "number", Type: value.KindString},
	))
	in := relation.NewInstance(sch)

	c := in.NewRelationFor("Children")
	c.AddRow("001", "Ann", "9", "100", "101")
	c.AddRow("002", "Maya", "6", "102", "103")
	c.AddRow("004", "Bo", "5", "100", "-") // no father
	in.MustAdd(c)

	p := in.NewRelationFor("Parents")
	p.AddRow("100", "IBM")
	p.AddRow("101", "UofT")
	p.AddRow("102", "Acta")
	p.AddRow("103", "IBM")
	p.AddRow("205", "Sun") // no children
	in.MustAdd(p)

	ph := in.NewRelationFor("PhoneDir")
	ph.AddRow("100", "555-0100")
	ph.AddRow("102", "555-0102")
	ph.AddRow("205", "555-0205")
	in.MustAdd(ph)
	return in
}

func mustEval(t *testing.T, n Node, in *relation.Instance) *relation.Relation {
	t.Helper()
	r, err := n.Eval(in)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	return r
}

func TestScan(t *testing.T) {
	in := testInstance()
	r := mustEval(t, NewScan("Children", ""), in)
	if r.Len() != 3 || r.Scheme().Name(0) != "Children.ID" {
		t.Errorf("scan wrong: %v", r)
	}
	// Aliased scan renames qualifiers.
	r2 := mustEval(t, NewScan("Parents", "Parents2"), in)
	if r2.Scheme().Name(0) != "Parents2.ID" {
		t.Errorf("aliased scan scheme: %v", r2.Scheme())
	}
	if got := NewScan("Parents", "Parents2").SQL(); got != "Parents AS Parents2" {
		t.Errorf("scan SQL = %q", got)
	}
	if got := NewScan("Parents", "").SQL(); got != "Parents" {
		t.Errorf("scan SQL = %q", got)
	}
	if _, err := (Scan{Base: "Nope"}).Eval(in); err == nil {
		t.Error("scanning unknown relation should error")
	}
}

func TestSelect(t *testing.T) {
	in := testInstance()
	n := Select{Child: NewScan("Children", ""), Pred: expr.MustParse("Children.age < 7")}
	r := mustEval(t, n, in)
	if r.Len() != 2 {
		t.Errorf("select len = %d, want 2", r.Len())
	}
	// Null predicate result drops the tuple: Bo has null fid.
	n2 := Select{Child: NewScan("Children", ""), Pred: expr.MustParse("Children.fid = 101")}
	if got := mustEval(t, n2, in).Len(); got != 1 {
		t.Errorf("select on fid len = %d, want 1", got)
	}
	if !strings.Contains(n.SQL(), "WHERE Children.age < 7") {
		t.Errorf("select SQL = %q", n.SQL())
	}
}

func TestProject(t *testing.T) {
	in := testInstance()
	n := Project{
		Name:  "Kids",
		Child: NewScan("Children", ""),
		Cols: []OutputCol{
			{Name: "Kids.ID", Expr: expr.Col{Name: "Children.ID"}},
			{Name: "Kids.nextAge", Expr: expr.MustParse("Children.age + 1")},
		},
	}
	r := mustEval(t, n, in)
	if r.Scheme().Name(1) != "Kids.nextAge" {
		t.Errorf("project scheme: %v", r.Scheme())
	}
	if r.At(0).Get("Kids.nextAge").IntVal() != 10 {
		t.Errorf("computed column wrong: %v", r.At(0))
	}
	if !strings.Contains(n.SQL(), "AS nextAge") {
		t.Errorf("project SQL = %q", n.SQL())
	}
}

func TestInnerJoin(t *testing.T) {
	in := testInstance()
	n := Join{
		Kind: InnerJoin,
		L:    NewScan("Children", ""),
		R:    NewScan("Parents", ""),
		On:   expr.Equals("Children.mid", "Parents.ID"),
	}
	r := mustEval(t, n, in)
	if r.Len() != 3 {
		t.Fatalf("inner join len = %d, want 3:\n%v", r.Len(), r)
	}
	for _, tp := range r.Tuples() {
		if !tp.Get("Children.mid").Equal(tp.Get("Parents.ID")) {
			t.Errorf("join predicate violated: %v", tp)
		}
	}
	if !strings.Contains(n.SQL(), "Children JOIN Parents ON Children.mid = Parents.ID") {
		t.Errorf("join SQL = %q", n.SQL())
	}
}

func TestLeftJoin(t *testing.T) {
	in := testInstance()
	n := Join{
		Kind: LeftJoin,
		L:    NewScan("Children", ""),
		R:    NewScan("Parents", ""),
		On:   expr.Equals("Children.fid", "Parents.ID"),
	}
	r := mustEval(t, n, in)
	// Ann and Maya match; Bo has null fid → padded.
	if r.Len() != 3 {
		t.Fatalf("left join len = %d:\n%v", r.Len(), r)
	}
	var boSeen bool
	for _, tp := range r.Tuples() {
		if tp.Get("Children.name").Str() == "Bo" {
			boSeen = true
			if !tp.Get("Parents.ID").IsNull() {
				t.Errorf("Bo should be padded: %v", tp)
			}
		}
	}
	if !boSeen {
		t.Error("left join lost unmatched left tuple")
	}
}

func TestRightAndFullJoin(t *testing.T) {
	in := testInstance()
	right := Join{
		Kind: RightJoin,
		L:    NewScan("Children", ""),
		R:    NewScan("Parents", ""),
		On:   expr.Equals("Children.mid", "Parents.ID"),
	}
	r := mustEval(t, right, in)
	// 3 matches + unmatched parents 101, 103, 205.
	if r.Len() != 6 {
		t.Fatalf("right join len = %d:\n%v", r.Len(), r)
	}
	full := Join{
		Kind: FullJoin,
		L:    NewScan("Children", ""),
		R:    NewScan("Parents", ""),
		On:   expr.Equals("Children.fid", "Parents.ID"),
	}
	f := mustEval(t, full, in)
	// Matches: Ann-101, Maya-103. Unmatched left: Bo. Unmatched right:
	// 100, 102, 205.
	if f.Len() != 6 {
		t.Fatalf("full join len = %d:\n%v", f.Len(), f)
	}
}

func TestJoinNullsNeverMatch(t *testing.T) {
	in := testInstance()
	// Bo's fid is null; a parent with null ID would not match either.
	n := Join{
		Kind: InnerJoin,
		L:    NewScan("Children", ""),
		R:    NewScan("Parents", ""),
		On:   expr.Equals("Children.fid", "Parents.ID"),
	}
	r := mustEval(t, n, in)
	for _, tp := range r.Tuples() {
		if tp.Get("Children.fid").IsNull() {
			t.Errorf("null join key matched: %v", tp)
		}
	}
}

func TestJoinResidualPredicate(t *testing.T) {
	in := testInstance()
	n := Join{
		Kind: InnerJoin,
		L:    NewScan("Children", ""),
		R:    NewScan("Parents", ""),
		On:   expr.MustParse("Children.mid = Parents.ID AND Children.age < 7"),
	}
	r := mustEval(t, n, in)
	if r.Len() != 2 {
		t.Fatalf("join with residual len = %d, want 2:\n%v", r.Len(), r)
	}
}

func TestNestedLoopJoin(t *testing.T) {
	in := testInstance()
	// Non-equi predicate exercises the nested-loop path.
	n := Join{
		Kind: InnerJoin,
		L:    NewScan("Children", ""),
		R:    NewScan("Parents", ""),
		On:   expr.MustParse("Children.age < 7 AND Parents.affiliation = 'IBM'"),
	}
	r := mustEval(t, n, in)
	// Children Maya, Bo × parents 100, 103.
	if r.Len() != 4 {
		t.Fatalf("nested loop len = %d:\n%v", r.Len(), r)
	}
}

func TestHashAndNestedLoopAgree(t *testing.T) {
	// Differential test on random data.
	rng := rand.New(rand.NewSource(5))
	sch := schema.NewDatabase()
	sch.MustAddRelation(schema.NewRelation("A", schema.Attribute{Name: "k", Type: value.KindInt}, schema.Attribute{Name: "x", Type: value.KindInt}))
	sch.MustAddRelation(schema.NewRelation("B", schema.Attribute{Name: "k", Type: value.KindInt}, schema.Attribute{Name: "y", Type: value.KindInt}))
	for trial := 0; trial < 50; trial++ {
		in := relation.NewInstance(sch)
		a := in.NewRelationFor("A")
		b := in.NewRelationFor("B")
		for i := 0; i < rng.Intn(20); i++ {
			a.AddValues(randKey(rng), value.Int(int64(i)))
		}
		for i := 0; i < rng.Intn(20); i++ {
			b.AddValues(randKey(rng), value.Int(int64(i)))
		}
		in.MustAdd(a)
		in.MustAdd(b)
		for _, kind := range []JoinKind{InnerJoin, LeftJoin, RightJoin, FullJoin} {
			// Equality predicate → hash path.
			hash := JoinRelations(kind, a, b, expr.Equals("A.k", "B.k"))
			// Same predicate voided of Col=Col shape → nested loop.
			nl := JoinRelations(kind, a, b, expr.MustParse("A.k + 0 = B.k"))
			if !hash.EqualSet(nl) {
				t.Fatalf("trial %d kind %v: hash and nested loop disagree\nhash:\n%v\nnl:\n%v", trial, kind, hash, nl)
			}
		}
	}
}

func randKey(rng *rand.Rand) value.Value {
	if rng.Intn(5) == 0 {
		return value.Null
	}
	return value.Int(int64(rng.Intn(5)))
}

func TestCross(t *testing.T) {
	in := testInstance()
	n := Cross{L: NewScan("Children", ""), R: NewScan("PhoneDir", "")}
	r := mustEval(t, n, in)
	if r.Len() != 9 {
		t.Errorf("cross len = %d, want 9", r.Len())
	}
	if !strings.Contains(n.SQL(), "CROSS JOIN") {
		t.Errorf("cross SQL = %q", n.SQL())
	}
}

func TestDistinctNode(t *testing.T) {
	in := testInstance()
	n := Distinct{Child: Project{
		Name:  "Aff",
		Child: NewScan("Parents", ""),
		Cols:  []OutputCol{{Name: "affiliation", Expr: expr.Col{Name: "Parents.affiliation"}}},
	}}
	r := mustEval(t, n, in)
	if r.Len() != 4 { // IBM, UofT, Acta, Sun
		t.Errorf("distinct len = %d, want 4:\n%v", r.Len(), r)
	}
}

func TestUnion(t *testing.T) {
	in := testInstance()
	young := Select{Child: NewScan("Children", ""), Pred: expr.MustParse("Children.age < 6")}
	old := Select{Child: NewScan("Children", ""), Pred: expr.MustParse("Children.age >= 6")}
	u := Union{L: young, R: old}
	r := mustEval(t, u, in)
	if r.Len() != 3 {
		t.Errorf("union len = %d, want 3", r.Len())
	}
	// Overlapping unions deduplicate.
	u2 := Union{L: NewScan("Children", ""), R: NewScan("Children", "")}
	if got := mustEval(t, u2, in).Len(); got != 3 {
		t.Errorf("self-union len = %d, want 3", got)
	}
	// Incompatible schemes error.
	bad := Union{L: NewScan("Children", ""), R: NewScan("Parents", "")}
	if _, err := bad.Eval(in); err == nil {
		t.Error("incompatible union should error")
	}
}

func TestMinUnionNode(t *testing.T) {
	in := testInstance()
	cp := Join{Kind: InnerJoin, L: NewScan("Children", ""), R: NewScan("Parents", ""),
		On: expr.Equals("Children.mid", "Parents.ID")}
	n := MinUnion{Name: "D", Children: []Node{NewScan("Children", ""), cp}}
	r := mustEval(t, n, in)
	// Every child joins to a mother, so bare Children tuples are all
	// subsumed; result is just the join.
	if r.Len() != 3 {
		t.Errorf("min union len = %d, want 3:\n%v", r.Len(), r)
	}
	if !strings.Contains(n.SQL(), "⊕") {
		t.Errorf("min union SQL = %q", n.SQL())
	}
}

func TestMaterialized(t *testing.T) {
	in := testInstance()
	r := in.Relation("Children")
	m := Materialized{Label: "D(G)", Rel: r}
	got := mustEval(t, m, in)
	if got != r {
		t.Error("materialized should return wrapped relation")
	}
	if m.SQL() != "D(G)" {
		t.Errorf("materialized SQL = %q", m.SQL())
	}
	if (Materialized{Rel: r}).SQL() != "Children" {
		t.Error("materialized SQL fallback wrong")
	}
}

func TestSplitEquiConjuncts(t *testing.T) {
	ls := relation.NewScheme("A.x", "A.y")
	rs := relation.NewScheme("B.x", "B.y")
	l, r, res := SplitEquiConjuncts(expr.MustParse("A.x = B.x AND B.y = A.y AND A.x < 5"), ls, rs)
	if len(l) != 2 || len(r) != 2 {
		t.Fatalf("equi split: l=%v r=%v", l, r)
	}
	if l[0] != "A.x" || r[0] != "B.x" || l[1] != "A.y" || r[1] != "B.y" {
		t.Errorf("alignment wrong: l=%v r=%v", l, r)
	}
	if res == nil || !strings.Contains(res.String(), "A.x < 5") {
		t.Errorf("residual = %v", res)
	}
	// Fully-equi predicate has nil residual.
	_, _, res2 := SplitEquiConjuncts(expr.Equals("A.x", "B.x"), ls, rs)
	if res2 != nil {
		t.Errorf("residual should be nil, got %v", res2)
	}
	// Same-side equality is residual, not hash condition.
	l3, _, res3 := SplitEquiConjuncts(expr.MustParse("A.x = A.y"), ls, rs)
	if len(l3) != 0 || res3 == nil {
		t.Error("same-side equality should be residual")
	}
}

func TestJoinKindString(t *testing.T) {
	if InnerJoin.String() != "JOIN" || LeftJoin.String() != "LEFT JOIN" ||
		RightJoin.String() != "RIGHT JOIN" || FullJoin.String() != "FULL JOIN" {
		t.Error("JoinKind.String wrong")
	}
	if JoinKind(9).String() != "JOIN?" {
		t.Error("unknown kind rendering wrong")
	}
}

func TestErrorPropagation(t *testing.T) {
	in := testInstance()
	bad := Scan{Base: "Nope"}
	nodes := []Node{
		Select{Child: bad, Pred: expr.MustParse("TRUE")},
		Project{Name: "x", Child: bad},
		Join{Kind: InnerJoin, L: bad, R: NewScan("Parents", ""), On: expr.MustParse("TRUE")},
		Join{Kind: InnerJoin, L: NewScan("Parents", ""), R: bad, On: expr.MustParse("TRUE")},
		Cross{L: bad, R: NewScan("Parents", "")},
		Cross{L: NewScan("Parents", ""), R: bad},
		Distinct{Child: bad},
		Union{L: bad, R: NewScan("Parents", "")},
		Union{L: NewScan("Parents", ""), R: bad},
		MinUnion{Name: "m", Children: []Node{bad}},
	}
	for i, n := range nodes {
		if _, err := n.Eval(in); err == nil {
			t.Errorf("node %d should propagate scan error", i)
		}
	}
}
