package algebra

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"clio/internal/expr"
	"clio/internal/relation"
	"clio/internal/value"
)

// naiveJoin is the executable specification of the join operator: a
// brute-force nested loop with no hashing, no batching, and no arena —
// evaluate the predicate on every (l, r) pair, then pad unmatched rows
// per the join kind. Both production pipelines (row-batched and
// columnar) must agree with it tuple-for-tuple as multisets; emission
// order is the pipelines' own business.
func naiveJoin(kind JoinKind, l, r *relation.Relation, on expr.Expr) []string {
	s := l.Scheme().Concat(r.Scheme())
	combined := func(lt, rt relation.Tuple) relation.Tuple {
		vals := make([]value.Value, 0, s.Arity())
		for i := 0; i < l.Scheme().Arity(); i++ {
			vals = append(vals, lt.At(i))
		}
		for i := 0; i < r.Scheme().Arity(); i++ {
			vals = append(vals, rt.At(i))
		}
		return relation.NewTuple(s, vals...)
	}
	lNull, rNull := relation.AllNull(l.Scheme()), relation.AllNull(r.Scheme())
	lm, rm := make([]bool, l.Len()), make([]bool, r.Len())
	var keys []string
	for i := 0; i < l.Len(); i++ {
		for j := 0; j < r.Len(); j++ {
			t := combined(l.At(i), r.At(j))
			if expr.Truth(on, t) == value.True {
				lm[i], rm[j] = true, true
				keys = append(keys, t.Key())
			}
		}
	}
	if kind == LeftJoin || kind == FullJoin {
		for i, m := range lm {
			if !m {
				keys = append(keys, combined(l.At(i), rNull).Key())
			}
		}
	}
	if kind == RightJoin || kind == FullJoin {
		for j, m := range rm {
			if !m {
				keys = append(keys, combined(lNull, r.At(j)).Key())
			}
		}
	}
	sort.Strings(keys)
	return keys
}

func sorted(keys []string) []string {
	out := append([]string(nil), keys...)
	sort.Strings(out)
	return out
}

// TestJoinDifferentialNaiveRowVec closes the three-way differential:
// for randomized inputs (NULL keys, duplicate keys, mixed kinds) and
// every join kind under equi, equi+residual, and non-equi predicates,
// naive nested-loop ≡ row-batched pipeline ≡ columnar pipeline as
// multisets of canonical tuple keys. Run under -race by `make race`.
func TestJoinDifferentialNaiveRowVec(t *testing.T) {
	kinds := []JoinKind{InnerJoin, LeftJoin, RightJoin, FullJoin}
	preds := []expr.Expr{
		expr.Equals("L.k", "R.k"),
		expr.And(expr.Equals("L.k", "R.k"), expr.MustParse("L.a < R.b")),
		expr.MustParse("L.a = R.b"), // still equi after split, different columns
		expr.MustParse("L.a < R.b"), // no equality conjunct: nested-loop path
	}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := randRel(rng, "L", []string{"L.k", "L.a"}, 1+rng.Intn(25))
		r := randRel(rng, "R", []string{"R.k", "R.b"}, 1+rng.Intn(25))
		in := relation.NewInstance(nil)
		in.MustAdd(l)
		in.MustAdd(r)
		for _, kind := range kinds {
			for pi, on := range preds {
				want := naiveJoin(kind, l, r, on)

				n := Join{Kind: kind, L: NewScan("L", ""), R: NewScan("R", ""), On: on}
				rowIt, err := n.Open(context.Background(), in)
				if err != nil {
					t.Fatalf("seed %d kind %v pred %d: row open: %v", seed, kind, pi, err)
				}
				gotRow := sorted(iterKeys(t, rowIt))
				vecIt, err := OpenVec(context.Background(), n, in)
				if err != nil {
					t.Fatalf("seed %d kind %v pred %d: vec open: %v", seed, kind, pi, err)
				}
				gotVec := sorted(vecKeys(t, vecIt))

				if len(gotRow) != len(want) {
					t.Fatalf("seed %d kind %v pred %d: row pipeline %d rows, naive %d",
						seed, kind, pi, len(gotRow), len(want))
				}
				for i := range want {
					if gotRow[i] != want[i] {
						t.Fatalf("seed %d kind %v pred %d row %d: row pipeline %q, naive %q",
							seed, kind, pi, i, gotRow[i], want[i])
					}
				}
				if len(gotVec) != len(want) {
					t.Fatalf("seed %d kind %v pred %d: columnar %d rows, naive %d",
						seed, kind, pi, len(gotVec), len(want))
				}
				for i := range want {
					if gotVec[i] != want[i] {
						t.Fatalf("seed %d kind %v pred %d row %d: columnar %q, naive %q",
							seed, kind, pi, i, gotVec[i], want[i])
					}
				}
			}
		}
	}
}
