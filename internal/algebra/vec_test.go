package algebra

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"clio/internal/expr"
	"clio/internal/relation"
	"clio/internal/value"
)

// randRel builds a relation with integer key columns drawn from a small
// domain (to force matches, duplicates, and hash-bucket sharing) plus a
// payload column; a fraction of the key cells are NULL.
func randRel(rng *rand.Rand, name string, cols []string, rows int) *relation.Relation {
	s := relation.NewScheme(cols...)
	r := relation.New(name, s)
	for i := 0; i < rows; i++ {
		vals := make([]value.Value, len(cols))
		for c := range vals {
			switch rng.Intn(10) {
			case 0, 1:
				vals[c] = value.Null
			case 2:
				vals[c] = value.String(fmt.Sprintf("s%d", rng.Intn(4)))
			default:
				vals[c] = value.Int(int64(rng.Intn(6)))
			}
		}
		r.Add(relation.NewTuple(s, vals...))
	}
	return r
}

// drainKeys collects the ordered tuple keys of an iterator's output.
func iterKeys(t *testing.T, it Iterator) []string {
	t.Helper()
	out, err := Drain(it)
	if err != nil {
		t.Fatalf("row drain: %v", err)
	}
	keys := make([]string, out.Len())
	for i := 0; i < out.Len(); i++ {
		keys[i] = out.At(i).Key()
	}
	return keys
}

func vecKeys(t *testing.T, it VecIterator) []string {
	t.Helper()
	out, err := DrainVec(it)
	if err != nil {
		t.Fatalf("vec drain: %v", err)
	}
	keys := make([]string, out.Len())
	for i := 0; i < out.Len(); i++ {
		keys[i] = out.At(i).Key()
	}
	return keys
}

// TestVecRowEquivalence is the differential property test of the
// columnar core: for randomized inputs (NULL keys, duplicate keys,
// mixed-kind columns) and every join kind, the columnar pipeline must
// produce exactly the row pipeline's output — same tuples, same order.
func TestVecRowEquivalence(t *testing.T) {
	kinds := []JoinKind{InnerJoin, LeftJoin, RightJoin, FullJoin}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := randRel(rng, "L", []string{"L.k", "L.a"}, 1+rng.Intn(40))
		r := randRel(rng, "R", []string{"R.k", "R.b"}, 1+rng.Intn(40))
		in := relation.NewInstance(nil)
		in.MustAdd(l)
		in.MustAdd(r)

		on := expr.Equals("L.k", "R.k")
		for _, kind := range kinds {
			var n Node = Join{Kind: kind, L: NewScan("L", ""), R: NewScan("R", ""), On: on}
			// Layer a select, a projection, and a distinct on top so the
			// whole columnar operator set is exercised in one pipeline.
			n = Select{Child: n, Pred: expr.MustParse("L.a < 4")}
			n = Project{Name: "P", Child: n, Cols: []OutputCol{
				{Name: "L.k", Expr: expr.Col{Name: "L.k"}},
				{Name: "R.b", Expr: expr.Col{Name: "R.b"}},
			}}
			n = Distinct{Child: n}

			rowIt, err := n.Open(context.Background(), in)
			if err != nil {
				t.Fatalf("seed %d kind %v: row open: %v", seed, kind, err)
			}
			want := iterKeys(t, rowIt)
			vecIt, err := OpenVec(context.Background(), n, in)
			if err != nil {
				t.Fatalf("seed %d kind %v: vec open: %v", seed, kind, err)
			}
			got := vecKeys(t, vecIt)
			if len(got) != len(want) {
				t.Fatalf("seed %d kind %v: vec %d rows, row %d rows", seed, kind, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d kind %v row %d: vec %q, row %q", seed, kind, i, got[i], want[i])
				}
			}
		}
	}
}

// TestVecJoinParallelWorkers forces the multi-worker morsel path (which
// a single-core host would otherwise never take) and checks it against
// the row pipeline; under -race this also proves the partitioned build
// and morsel-aligned matched bitmaps are data-race free.
func TestVecJoinParallelWorkers(t *testing.T) {
	vecJoinWorkers = 4
	defer func() { vecJoinWorkers = 0 }()
	rng := rand.New(rand.NewSource(99))
	l := randRel(rng, "L", []string{"L.k", "L.a"}, 3000)
	r := randRel(rng, "R", []string{"R.k", "R.b"}, 37)
	in := relation.NewInstance(nil)
	in.MustAdd(l)
	in.MustAdd(r)
	on := expr.Equals("L.k", "R.k")
	for _, kind := range []JoinKind{InnerJoin, FullJoin} {
		n := Join{Kind: kind, L: NewScan("L", ""), R: NewScan("R", ""), On: on}
		rowIt, err := n.Open(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		want := iterKeys(t, rowIt)
		vecIt, err := OpenVec(context.Background(), n, in)
		if err != nil {
			t.Fatal(err)
		}
		got := vecKeys(t, vecIt)
		if len(got) != len(want) {
			t.Fatalf("kind %v: vec %d rows, row %d", kind, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("kind %v row %d mismatch", kind, i)
			}
		}
	}
}

// TestVecJoinResidual checks the hash path with a residual conjunct and
// the nested-loop fallback (no equality conjunct at all).
func TestVecJoinResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := randRel(rng, "L", []string{"L.k", "L.a"}, 25)
	r := randRel(rng, "R", []string{"R.k", "R.b"}, 25)
	in := relation.NewInstance(nil)
	in.MustAdd(l)
	in.MustAdd(r)

	residual := expr.And(
		expr.Equals("L.k", "R.k"),
		expr.MustParse("L.a < R.b"),
	)
	noEq := expr.MustParse("L.a = 2")
	for _, on := range []expr.Expr{residual, noEq} {
		for _, kind := range []JoinKind{InnerJoin, LeftJoin, RightJoin, FullJoin} {
			n := Join{Kind: kind, L: NewScan("L", ""), R: NewScan("R", ""), On: on}
			rowIt, err := n.Open(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			want := iterKeys(t, rowIt)
			vecIt, err := OpenVec(context.Background(), n, in)
			if err != nil {
				t.Fatal(err)
			}
			got := vecKeys(t, vecIt)
			if len(got) != len(want) {
				t.Fatalf("kind %v: vec %d rows, row %d", kind, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("kind %v row %d: vec %q row %q", kind, i, got[i], want[i])
				}
			}
		}
	}
}
