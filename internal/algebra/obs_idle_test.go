package algebra_test

import (
	"testing"

	"clio/internal/algebra"
	"clio/internal/expr"
	"clio/internal/obs"
	"clio/internal/relation"
	"clio/internal/value"
)

// Instrumented-but-idle tracing — obs enabled and a trace ring buffer
// installed, but no span in the caller's context and no reader — must
// add zero allocations per run to the hot loops pinned by
// alloc_bench_test.go. This is the invariant that lets `clio serve`
// keep the buffer always on: background evaluation never pays for it.
func TestIdleTracingAddsNoAllocs(t *testing.T) {
	const n = 2048
	dist := stringRelation("R", n, 2)
	l := stringRelation("L", n, 1)
	r := relation.New("R", relation.NewScheme("R.k", "R.v"))
	for i := 0; i < n; i++ {
		r.AddValues(value.String("nope"), value.String("x"))
	}
	on := expr.MustParse("L.k = R.k")

	distinct := func() { dist.Distinct() }
	join := func() { algebra.JoinRelations(algebra.InnerJoin, l, r, on) }

	obs.SetEnabled(false)
	obs.SetExporter(nil)
	baseDistinct := testing.AllocsPerRun(10, distinct)
	baseJoin := testing.AllocsPerRun(10, join)

	obs.SetEnabled(true)
	obs.SetExporter(obs.NewTraceBuffer(32, nil))
	t.Cleanup(func() {
		obs.SetEnabled(false)
		obs.SetExporter(nil)
	})
	idleDistinct := testing.AllocsPerRun(10, distinct)
	idleJoin := testing.AllocsPerRun(10, join)

	if delta := idleDistinct - baseDistinct; delta >= 1 {
		t.Errorf("idle tracing adds %.1f allocs/op to Distinct (%.0f -> %.0f)", delta, baseDistinct, idleDistinct)
	}
	if delta := idleJoin - baseJoin; delta >= 1 {
		t.Errorf("idle tracing adds %.1f allocs/op to hash-join probe (%.0f -> %.0f)", delta, baseJoin, idleJoin)
	}
}
