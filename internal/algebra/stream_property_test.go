package algebra

import (
	"context"
	"math/rand"
	"testing"

	"clio/internal/expr"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// nestedLoopReference evaluates a join with the textbook quadratic
// algorithm under 3VL: every pair is tested with the full predicate,
// then unmatched rows are padded per join kind.
func nestedLoopReference(kind JoinKind, l, r *relation.Relation, on expr.Expr) *relation.Relation {
	s := l.Scheme().Concat(r.Scheme())
	out := relation.New("J", s)
	lm := make([]bool, l.Len())
	rm := make([]bool, r.Len())
	for i := 0; i < l.Len(); i++ {
		for j := 0; j < r.Len(); j++ {
			t := l.At(i).ConcatTo(s, r.At(j))
			if expr.Truth(on, t) == value.True {
				lm[i], rm[j] = true, true
				out.Add(t)
			}
		}
	}
	if kind == LeftJoin || kind == FullJoin {
		rn := relation.AllNull(r.Scheme())
		for i := 0; i < l.Len(); i++ {
			if !lm[i] {
				out.Add(l.At(i).ConcatTo(s, rn))
			}
		}
	}
	if kind == RightJoin || kind == FullJoin {
		ln := relation.AllNull(l.Scheme())
		for j := 0; j < r.Len(); j++ {
			if !rm[j] {
				out.Add(ln.ConcatTo(s, r.At(j)))
			}
		}
	}
	return out
}

// randomJoinSide builds a relation with a low-cardinality join key
// (forcing collisions and fan-out) and a payload column, both with
// occasional nulls. Sizes cross the iterator batch boundary.
func randomJoinSide(rng *rand.Rand, name, key, payload string) *relation.Relation {
	r := relation.New(name, relation.NewScheme(key, payload))
	n := rng.Intn(90)
	for i := 0; i < n; i++ {
		var k, v value.Value
		if rng.Intn(8) == 0 {
			k = value.Null
		} else {
			k = value.Int(int64(rng.Intn(7)))
		}
		if rng.Intn(8) == 0 {
			v = value.Null
		} else {
			v = value.Int(int64(rng.Intn(5)))
		}
		r.AddValues(k, v)
	}
	return r
}

// Differential property: the streaming join — hash path, residual
// path, and nested-loop path, all four kinds — must produce exactly
// the nested-loop 3VL reference, with and without a context.
func TestJoinMatchesNestedLoopReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	kinds := []JoinKind{InnerJoin, LeftJoin, RightJoin, FullJoin}
	preds := []expr.Expr{
		expr.MustParse("L.k = R.k"),               // pure hash path
		expr.MustParse("L.k = R.k AND L.v < R.w"), // hash + residual
		expr.MustParse("L.v < R.w"),               // nested loop
	}
	for trial := 0; trial < 30; trial++ {
		l := randomJoinSide(rng, "L", "L.k", "L.v")
		r := randomJoinSide(rng, "R", "R.k", "R.w")
		for _, kind := range kinds {
			for _, on := range preds {
				want := nestedLoopReference(kind, l, r, on)
				got := JoinRelations(kind, l, r, on)
				if !want.EqualSet(got) {
					t.Fatalf("trial %d kind %v on %v: join %d rows, reference %d\n|L|=%d |R|=%d",
						trial, kind, on, got.Len(), want.Len(), l.Len(), r.Len())
				}
				ctxGot, err := JoinRelationsCtx(context.Background(), kind, l, r, on)
				if err != nil || !want.EqualSet(ctxGot) {
					t.Fatalf("trial %d kind %v on %v: ctx join diverged (err=%v)", trial, kind, on, err)
				}
			}
		}
	}
}

// Differential property: a multi-operator streamed plan must agree
// with per-operator references composed by materialization — select
// via 3VL filtering, union via concatenation, distinct via canonical
// string keys — on inputs spanning many iterator batches.
func TestPipelineMatchesOperatorReference(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	sch := schema.NewDatabase()
	sch.MustAddRelation(schema.NewRelation("R",
		schema.Attribute{Name: "a", Type: value.KindInt},
		schema.Attribute{Name: "b", Type: value.KindInt},
	))
	for trial := 0; trial < 20; trial++ {
		in := relation.NewInstance(sch)
		r := in.NewRelationFor("R")
		n := 150 + rng.Intn(100) // several BatchSize batches
		for i := 0; i < n; i++ {
			var a, b value.Value
			if rng.Intn(6) == 0 {
				a = value.Null
			} else {
				a = value.Int(int64(rng.Intn(5)))
			}
			if rng.Intn(6) == 0 {
				b = value.Null
			} else {
				b = value.Int(int64(rng.Intn(4)))
			}
			r.AddValues(a, b)
		}
		in.MustAdd(r)

		p1 := expr.MustParse("R.a < 3")
		p2 := expr.MustParse("R.b = 2")
		plan := Distinct{Child: Union{
			L: Select{Child: NewScan("R", ""), Pred: p1},
			R: Select{Child: NewScan("R", ""), Pred: p2},
		}}
		got, err := Collect(context.Background(), plan, in)
		if err != nil {
			t.Fatal(err)
		}

		seen := map[string]bool{}
		ref := relation.New("R", r.Scheme())
		for _, pred := range []expr.Expr{p1, p2} {
			for _, tu := range r.Tuples() {
				if expr.Truth(pred, tu) != value.True {
					continue
				}
				if k := tu.Key(); !seen[k] {
					seen[k] = true
					ref.Add(tu)
				}
			}
		}
		if !ref.EqualSet(got) {
			t.Fatalf("trial %d: pipeline %d rows, reference %d rows", trial, got.Len(), ref.Len())
		}
		// Eval must be the same computation under the background context.
		ev, err := plan.Eval(in)
		if err != nil || !ref.EqualSet(ev) {
			t.Fatalf("trial %d: Eval diverged from pipeline (err=%v)", trial, err)
		}

		// Projection over the same scan: reference is per-tuple
		// expression evaluation.
		proj := Project{Name: "P", Child: NewScan("R", ""), Cols: []OutputCol{
			{Name: "P.x", Expr: expr.MustParse("R.a")},
			{Name: "P.y", Expr: expr.MustParse("R.b + 1")},
		}}
		pgot, err := Collect(context.Background(), proj, in)
		if err != nil {
			t.Fatal(err)
		}
		ps := relation.NewScheme("P.x", "P.y")
		pref := relation.New("P", ps)
		for _, tu := range r.Tuples() {
			pref.Add(relation.NewTuple(ps, proj.Cols[0].Expr.Eval(tu), proj.Cols[1].Expr.Eval(tu)))
		}
		if pgot.Len() != pref.Len() || !pref.EqualSet(pgot) {
			t.Fatalf("trial %d: projection %d rows, reference %d rows", trial, pgot.Len(), pref.Len())
		}
	}
}
