package relation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clio/internal/value"
)

func TestOuterUnion(t *testing.T) {
	r1 := New("R1", NewScheme("a", "b"))
	r1.AddRow("1", "x")
	r2 := New("R2", NewScheme("b", "c"))
	r2.AddRow("x", "9")
	u := OuterUnion("U", r1, r2)
	if u.Scheme().Arity() != 3 {
		t.Fatalf("union scheme arity = %d", u.Scheme().Arity())
	}
	if u.Len() != 2 {
		t.Fatalf("union len = %d", u.Len())
	}
	// r1's tuple padded with null c; r2's with null a.
	want1 := mkTuple(u.Scheme(), "1", "x", "-")
	want2 := mkTuple(u.Scheme(), "-", "x", "9")
	if !u.Contains(want1) || !u.Contains(want2) {
		t.Errorf("outer union contents wrong:\n%v", u)
	}
}

func TestOuterUnionDeduplicates(t *testing.T) {
	r1 := New("R1", NewScheme("a"))
	r1.AddRow("1")
	r2 := New("R2", NewScheme("a"))
	r2.AddRow("1")
	if got := OuterUnion("U", r1, r2).Len(); got != 1 {
		t.Errorf("len = %d, want 1", got)
	}
}

func TestMinimumUnionPaperExample(t *testing.T) {
	// Example 3.10: R1 = Children ⋈ Parents, R2 = (C ⋈ P) ⋈ PhoneDir.
	// If every R1 tuple extends to an R2 tuple, R1 ⊕ R2 = R2.
	s1 := NewScheme("C.ID", "P.ID")
	r1 := New("R1", s1)
	r1.AddRow("001", "100")
	r1.AddRow("002", "101")
	s2 := NewScheme("C.ID", "P.ID", "Ph.number")
	r2 := New("R2", s2)
	r2.AddRow("001", "100", "555-1234")
	r2.AddRow("002", "101", "555-9876")
	got := MinimumUnion("M", r1, r2)
	if !got.EqualSet(r2) {
		t.Errorf("R1 ⊕ R2 != R2:\n%v", got)
	}
	// With a parent lacking a phone, the partial tuple survives.
	r1.AddRow("003", "102")
	got = MinimumUnion("M", r1, r2)
	if got.Len() != 3 {
		t.Errorf("len = %d, want 3:\n%v", got.Len(), got)
	}
	if !got.Contains(mkTuple(got.Scheme(), "003", "102", "-")) {
		t.Errorf("partial tuple missing:\n%v", got)
	}
}

func TestRemoveSubsumedDropsAllNull(t *testing.T) {
	s := NewScheme("a", "b")
	r := New("R", s)
	r.Add(AllNull(s))
	r.AddRow("1", "-")
	got := RemoveSubsumed(r)
	if got.Len() != 1 || got.At(0).IsAllNull() {
		t.Errorf("all-null tuple should be removed:\n%v", got)
	}
	// A relation containing only the all-null tuple keeps it (nothing
	// strictly subsumes it).
	only := New("R", s)
	only.Add(AllNull(s))
	if got := RemoveSubsumed(only); got.Len() != 1 {
		t.Errorf("lone all-null tuple should survive: %v", got)
	}
}

func TestRemoveSubsumedChains(t *testing.T) {
	s := NewScheme("a", "b", "c")
	r := New("R", s)
	r.AddRow("1", "x", "y") // subsumes everything below
	r.AddRow("1", "x", "-")
	r.AddRow("1", "-", "-")
	r.AddRow("2", "-", "-") // incomparable, survives
	got := RemoveSubsumed(r)
	if got.Len() != 2 {
		t.Fatalf("len = %d, want 2:\n%v", got.Len(), got)
	}
	if !got.Contains(mkTuple(s, "1", "x", "y")) || !got.Contains(mkTuple(s, "2", "-", "-")) {
		t.Errorf("wrong survivors:\n%v", got)
	}
}

func TestRemoveSubsumedEqualMasksSurvive(t *testing.T) {
	// Same non-null mask, different values: no subsumption.
	s := NewScheme("a", "b")
	r := New("R", s)
	r.AddRow("1", "-")
	r.AddRow("2", "-")
	if got := RemoveSubsumed(r); got.Len() != 2 {
		t.Errorf("len = %d, want 2", got.Len())
	}
}

func TestRemoveSubsumedMatchesNaive(t *testing.T) {
	// Randomized differential test: the partitioned implementation
	// must agree with the quadratic reference on random null-rich data.
	rng := rand.New(rand.NewSource(42))
	s := NewScheme("a", "b", "c", "d")
	for trial := 0; trial < 200; trial++ {
		r := New("R", s)
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			vals := make([]value.Value, 4)
			for j := range vals {
				switch rng.Intn(3) {
				case 0:
					vals[j] = value.Null
				default:
					vals[j] = value.Int(int64(rng.Intn(3)))
				}
			}
			r.AddValues(vals...)
		}
		fast := RemoveSubsumed(r)
		slow := RemoveSubsumedNaive(r.Distinct())
		if !fast.EqualSet(slow) {
			t.Fatalf("trial %d mismatch:\nfast:\n%v\nslow:\n%v\ninput:\n%v", trial, fast, slow, r)
		}
	}
}

func TestMinimumUnionAll(t *testing.T) {
	if got := MinimumUnionAll("E"); got.Len() != 0 {
		t.Error("empty MinimumUnionAll should be empty")
	}
	r1 := New("R1", NewScheme("a"))
	r1.AddRow("1")
	if got := MinimumUnionAll("M", r1); !got.EqualSet(r1) {
		t.Error("single-arg MinimumUnionAll should be identity")
	}
	r2 := New("R2", NewScheme("a", "b"))
	r2.AddRow("1", "x")
	r3 := New("R3", NewScheme("b", "c"))
	r3.AddRow("x", "7")
	got := MinimumUnionAll("M", r1, r2, r3)
	// r1's (1) is subsumed by r2's (1, x); r3's (x, 7) survives.
	if got.Len() != 2 {
		t.Fatalf("len = %d, want 2:\n%v", got.Len(), got)
	}
}

// Property: minimum union result never contains a strictly subsumed
// pair, and every input tuple is subsumed by some output tuple.
func TestMinimumUnionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s1 := NewScheme("a", "b")
	s2 := NewScheme("b", "c")
	for trial := 0; trial < 100; trial++ {
		r1 := New("R1", s1)
		r2 := New("R2", s2)
		for i := 0; i < rng.Intn(15); i++ {
			r1.AddValues(randVal(rng), randVal(rng))
		}
		for i := 0; i < rng.Intn(15); i++ {
			r2.AddValues(randVal(rng), randVal(rng))
		}
		m := MinimumUnion("M", r1, r2)
		// Invariant 1: antichain under strict subsumption.
		for i, t1 := range m.Tuples() {
			for j, t2 := range m.Tuples() {
				if i != j && t1.StrictlySubsumes(t2) {
					t.Fatalf("output contains subsumed pair:\n%v\n%v", t1, t2)
				}
			}
		}
		// Invariant 2: completeness — every input tuple (padded) is
		// subsumed by some output tuple, unless it is all-null.
		for _, in := range append(append([]Tuple{}, r1.Tuples()...), r2.Tuples()...) {
			p := in.PadTo(m.Scheme())
			if p.IsAllNull() {
				continue
			}
			found := false
			for _, out := range m.Tuples() {
				if out.Subsumes(p) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("input tuple lost: %v\noutput:\n%v", p, m)
			}
		}
	}
}

func randVal(rng *rand.Rand) value.Value {
	if rng.Intn(3) == 0 {
		return value.Null
	}
	return value.Int(int64(rng.Intn(4)))
}

// Property via testing/quick: subsumption is a partial order on tuples
// (reflexive, antisymmetric via Equal, transitive) over small domains.
func TestSubsumptionPartialOrder(t *testing.T) {
	s := NewScheme("a", "b", "c")
	gen := func(xs [3]int8) Tuple {
		vals := make([]value.Value, 3)
		for i, x := range xs {
			if x%3 == 0 {
				vals[i] = value.Null
			} else {
				vals[i] = value.Int(int64(x % 2))
			}
		}
		return NewTuple(s, vals...)
	}
	f := func(a, b, c [3]int8) bool {
		ta, tb, tc := gen(a), gen(b), gen(c)
		if !ta.Subsumes(ta) {
			return false
		}
		if ta.Subsumes(tb) && tb.Subsumes(ta) && !ta.Equal(tb) {
			return false
		}
		if ta.Subsumes(tb) && tb.Subsumes(tc) && !ta.Subsumes(tc) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
