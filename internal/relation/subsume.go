package relation

import "sort"

// SubsumeSet maintains the subsumption-maximal tuples of a multiset of
// equal-scheme tuples under single-tuple inserts and deletes. It is the
// incremental counterpart of RemoveSubsumed(r.Distinct()): after any
// sequence of Insert/Delete calls, Rel() equals what a full
// RemoveSubsumed over the surviving multiset would produce.
//
// The structure groups live tuples by null mask, exactly like the batch
// algorithm: a tuple u can only be strictly subsumed by a tuple whose
// mask is a strict superset of u's, matching u on u's non-null
// positions. Each group keeps a hash index on its own positions plus
// lazily built (then incrementally maintained) indexes on subset-mask
// positions, so one insert or delete touches O(groups + matches)
// tuples, not O(n).
//
// Duplicates are collapsed into per-tuple counts, which keeps maximal
// membership well defined for multisets: a tuple stays present until
// its count reaches zero.
type SubsumeSet struct {
	scheme *Scheme
	groups map[string]*ssGroup
	// live holds every live entry ordered by canonical key (keys are
	// injective over tuples, so the order is total and stable). Kept
	// sorted incrementally — one binary search plus a pointer memmove
	// per insert or delete — so Rel() renders with a linear walk
	// instead of re-sorting the whole front on every refresh.
	live []*ssEntry
	// liveNonNull counts live distinct tuples with at least one
	// non-null attribute. The all-null tuple is maximal exactly when
	// this is zero (the batch algorithm's "drop the all-null group
	// whenever any other group exists" rule).
	liveNonNull int
}

// ssGroup holds the live tuples sharing one null mask.
type ssGroup struct {
	mask      Mask
	positions []int
	// entries indexes live tuples by full-tuple hash (bucket+confirm,
	// same discipline as Distinct).
	entries map[uint64][]*ssEntry
	// sub holds hash indexes of this group's tuples keyed on a
	// subset mask's positions — the probe target when a narrower tuple
	// asks "does anything here subsume me?". Built lazily per subset
	// mask, then kept fresh by every add/remove. The group's own
	// positions are one such index (its own mask key), used when a
	// wider tuple demotes or re-checks the tuples it subsumes.
	sub map[string]*ssSubIndex
}

// ssSubIndex is one lazily built projection index of a group.
type ssSubIndex struct {
	positions []int
	buckets   map[uint64][]*ssEntry
}

// ssEntry is one distinct live tuple with its multiset count. The
// canonical key is rendered once at entry creation and cached: entries
// persist across refreshes of a delta-maintained materialization, so
// Rel() pays sort comparisons only — re-rendering ~|D(G)| keys on
// every refresh would dominate the O(delta) maintenance cost.
type ssEntry struct {
	t       Tuple
	key     string
	count   int
	maximal bool
}

// NewSubsumeSet creates an empty set over the scheme.
func NewSubsumeSet(s *Scheme) *SubsumeSet {
	return &SubsumeSet{scheme: s, groups: map[string]*ssGroup{}}
}

// Len returns the number of distinct live tuples (any count).
func (s *SubsumeSet) Len() int {
	n := 0
	for _, g := range s.groups {
		for _, es := range g.entries {
			n += len(es)
		}
	}
	return n
}

func (s *SubsumeSet) group(m Mask) *ssGroup {
	k := m.Key()
	g := s.groups[k]
	if g == nil {
		g = &ssGroup{
			mask:      m,
			positions: m.Ones(),
			entries:   map[uint64][]*ssEntry{},
			sub:       map[string]*ssSubIndex{},
		}
		g.sub[k] = &ssSubIndex{positions: g.positions, buckets: map[uint64][]*ssEntry{}}
		s.groups[k] = g
	}
	return g
}

// find returns the live entry Equal to t, or nil.
func (g *ssGroup) find(h uint64, t Tuple) *ssEntry {
	for _, e := range g.entries[h] {
		if e.t.Equal(t) {
			return e
		}
	}
	return nil
}

// add registers a new entry in the group's hash index and every
// existing projection index.
func (g *ssGroup) add(h uint64, e *ssEntry) {
	g.entries[h] = append(g.entries[h], e)
	for _, ix := range g.sub {
		ph := e.t.HashOn(ix.positions)
		ix.buckets[ph] = append(ix.buckets[ph], e)
	}
}

// remove unregisters an entry from the hash index and every projection
// index.
func (g *ssGroup) remove(h uint64, e *ssEntry) {
	g.entries[h] = removeEntry(g.entries[h], e)
	if len(g.entries[h]) == 0 {
		delete(g.entries, h)
	}
	for _, ix := range g.sub {
		ph := e.t.HashOn(ix.positions)
		ix.buckets[ph] = removeEntry(ix.buckets[ph], e)
		if len(ix.buckets[ph]) == 0 {
			delete(ix.buckets, ph)
		}
	}
}

// insertLive splices e into the key-ordered live slice.
func (s *SubsumeSet) insertLive(e *ssEntry) {
	i := sort.Search(len(s.live), func(i int) bool { return s.live[i].key >= e.key })
	s.live = append(s.live, nil)
	copy(s.live[i+1:], s.live[i:])
	s.live[i] = e
}

// removeLive drops e from the key-ordered live slice.
func (s *SubsumeSet) removeLive(e *ssEntry) {
	i := sort.Search(len(s.live), func(i int) bool { return s.live[i].key >= e.key })
	if i < len(s.live) && s.live[i] == e {
		s.live = append(s.live[:i], s.live[i+1:]...)
	}
}

func removeEntry(es []*ssEntry, e *ssEntry) []*ssEntry {
	for i, x := range es {
		if x == e {
			es[i] = es[len(es)-1]
			return es[:len(es)-1]
		}
	}
	return es
}

// index returns the group's projection index on the given subset mask,
// building it over the current live entries on first use.
func (g *ssGroup) index(m Mask, positions []int) *ssSubIndex {
	k := m.Key()
	if ix, ok := g.sub[k]; ok {
		return ix
	}
	ix := &ssSubIndex{positions: positions, buckets: map[uint64][]*ssEntry{}}
	for _, es := range g.entries {
		for _, e := range es {
			ph := e.t.HashOn(positions)
			ix.buckets[ph] = append(ix.buckets[ph], e)
		}
	}
	g.sub[k] = ix
	return ix
}

// subsumedBy reports whether any live tuple strictly subsumes t, whose
// group is g. This predicate depends only on the live multiset, never
// on current maximal flags, which is what makes delete-time promotion
// order-independent.
func (s *SubsumeSet) subsumedBy(g *ssGroup, t Tuple) bool {
	if len(g.positions) == 0 {
		return s.liveNonNull > 0
	}
	for _, h := range s.groups {
		if h == g || !h.mask.SupersetOf(g.mask) || h.mask.Equal(g.mask) {
			continue
		}
		ix := h.index(g.mask, g.positions)
		for _, e := range ix.buckets[t.HashOn(g.positions)] {
			if e.t.EqualOn(t, g.positions, g.positions) {
				return true
			}
		}
	}
	return false
}

// eachSubsumed visits every live entry strictly subsumed by t (group g),
// i.e. entries in strict-subset-mask groups matching t on their own
// positions.
func (s *SubsumeSet) eachSubsumed(g *ssGroup, t Tuple, visit func(h *ssGroup, e *ssEntry)) {
	for _, h := range s.groups {
		if h == g || !g.mask.SupersetOf(h.mask) || g.mask.Equal(h.mask) {
			continue
		}
		ix := h.sub[h.mask.Key()]
		for _, e := range ix.buckets[t.HashOn(h.positions)] {
			if e.t.EqualOn(t, h.positions, h.positions) {
				visit(h, e)
			}
		}
	}
}

// Insert adds one occurrence of t to the multiset.
func (s *SubsumeSet) Insert(t Tuple) {
	g := s.group(t.NonNullMask())
	h := t.Hash64()
	if e := g.find(h, t); e != nil {
		e.count++
		return
	}
	e := &ssEntry{t: t, key: t.Key(), count: 1}
	g.add(h, e)
	s.insertLive(e)
	if len(g.positions) > 0 {
		s.liveNonNull++
	}
	e.maximal = !s.subsumedBy(g, t)
	if !e.maximal {
		return
	}
	// A new maximal tuple demotes everything it strictly subsumes
	// (including the all-null entry, whose empty mask every non-empty
	// mask strictly contains).
	s.eachSubsumed(g, t, func(_ *ssGroup, sub *ssEntry) {
		sub.maximal = false
	})
}

// InsertPruning adds one occurrence of t in insert-only accumulation
// mode: a strictly-subsumed arrival is dropped instead of stored, and
// the entries t strictly subsumes are physically evicted and returned,
// so the set's residency tracks its maximal front rather than the full
// distinct multiset. inserted reports whether t now lives in the set
// (false for duplicates, which only bump the existing count, and for
// subsumed arrivals).
//
// Soundness of the pruning: subsumption is transitive, so anything a
// dropped arrival would later have subsumed is also subsumed by
// whichever live tuple dropped it, and anything an evicted entry
// subsumed is subsumed by its evictor — the surviving entries are
// exactly the maximal front at every step. The pruning erases the
// history Delete-time promotion needs, so a set built with
// InsertPruning must not be mixed with Delete-based maintenance
// (delta maintenance keeps using Insert/Delete).
func (s *SubsumeSet) InsertPruning(t Tuple) (displaced []Tuple, inserted bool) {
	g := s.group(t.NonNullMask())
	h := t.Hash64()
	if e := g.find(h, t); e != nil {
		e.count++
		return nil, false
	}
	if s.subsumedBy(g, t) {
		return nil, false
	}
	e := &ssEntry{t: t, key: t.Key(), count: 1, maximal: true}
	g.add(h, e)
	s.insertLive(e)
	if len(g.positions) > 0 {
		s.liveNonNull++
	}
	// Collect first, then remove: eachSubsumed iterates the very
	// buckets removal mutates.
	var victims []*ssEntry
	var homes []*ssGroup
	s.eachSubsumed(g, t, func(h *ssGroup, sub *ssEntry) {
		victims = append(victims, sub)
		homes = append(homes, h)
	})
	for i, v := range victims {
		homes[i].remove(v.t.Hash64(), v)
		s.removeLive(v)
		if len(homes[i].positions) > 0 {
			s.liveNonNull--
		}
		displaced = append(displaced, v.t)
	}
	return displaced, true
}

// Delete removes one occurrence of t from the multiset. It reports an
// inconsistency (tuple not present) via the return value so callers can
// fall back to a rebuild rather than silently diverge.
func (s *SubsumeSet) Delete(t Tuple) bool {
	g := s.groups[t.NonNullMask().Key()]
	if g == nil {
		return false
	}
	h := t.Hash64()
	e := g.find(h, t)
	if e == nil {
		return false
	}
	e.count--
	if e.count > 0 {
		return true
	}
	g.remove(h, e)
	s.removeLive(e)
	if len(g.positions) > 0 {
		s.liveNonNull--
	}
	if !e.maximal {
		return true
	}
	// t was maximal: each tuple it strictly subsumed is promoted iff no
	// other live tuple still subsumes it. The check probes the live
	// multiset directly (not maximal flags), so visit order is
	// irrelevant.
	s.eachSubsumed(g, t, func(h *ssGroup, sub *ssEntry) {
		if !sub.maximal && !s.subsumedBy(h, sub.t) {
			sub.maximal = true
		}
	})
	return true
}

// Rel materializes the current maximal tuples as a relation sorted by
// canonical tuple key. The live slice is maintained in key order, so a
// refresh is one linear walk — no sort, no key rendering. The order
// makes the result independent of maintenance history: a
// delta-maintained set, a freshly rebuilt set, and a replayed session
// all render byte-identical relations.
func (s *SubsumeSet) Rel(name string) *Relation {
	out := New(name, s.scheme)
	for _, e := range s.live {
		if e.maximal {
			out.Add(e.t)
		}
	}
	return out
}
