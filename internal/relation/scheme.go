// Package relation implements relation instances: schemes of qualified
// attribute names, tuples over those schemes, hash indexes, and the
// null-aware set operations the paper builds on — subsumption
// (Definition 3.8), outer union, and minimum union (Definition 3.9).
package relation

import (
	"fmt"
	"strings"
)

// Scheme is an ordered list of qualified attribute names (for example
// "Children.ID"). Tuples over a Scheme store values positionally, so a
// Scheme is shared, immutable after construction, and carries an index
// for O(1) attribute lookup.
type Scheme struct {
	names []string
	index map[string]int
}

// NewScheme constructs a Scheme from qualified attribute names. It
// panics on duplicates: schemes model sets of attributes.
func NewScheme(names ...string) *Scheme {
	s := &Scheme{names: append([]string(nil), names...), index: make(map[string]int, len(names))}
	for i, n := range names {
		if _, dup := s.index[n]; dup {
			panic(fmt.Sprintf("relation: duplicate attribute %q in scheme", n))
		}
		s.index[n] = i
	}
	return s
}

// Arity returns the number of attributes.
func (s *Scheme) Arity() int { return len(s.names) }

// Names returns the attribute names in order. The caller must not
// mutate the returned slice.
func (s *Scheme) Names() []string { return s.names }

// Name returns the i-th attribute name.
func (s *Scheme) Name(i int) string { return s.names[i] }

// Index returns the position of the named attribute, or -1.
func (s *Scheme) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the scheme contains the named attribute.
func (s *Scheme) Has(name string) bool { _, ok := s.index[name]; return ok }

// Equal reports whether two schemes have the same attributes in the
// same order.
func (s *Scheme) Equal(o *Scheme) bool {
	if s == o {
		return true
	}
	if s.Arity() != o.Arity() {
		return false
	}
	for i, n := range s.names {
		if o.names[i] != n {
			return false
		}
	}
	return true
}

// SameSet reports whether two schemes have the same attribute set,
// ignoring order.
func (s *Scheme) SameSet(o *Scheme) bool {
	if s.Arity() != o.Arity() {
		return false
	}
	for _, n := range s.names {
		if !o.Has(n) {
			return false
		}
	}
	return true
}

// Concat returns a new scheme with s's attributes followed by o's.
// It panics if the schemes overlap (concatenation models a cross
// product of disjoint relation copies).
func (s *Scheme) Concat(o *Scheme) *Scheme {
	names := make([]string, 0, s.Arity()+o.Arity())
	names = append(names, s.names...)
	names = append(names, o.names...)
	return NewScheme(names...)
}

// Union returns a new scheme containing s's attributes followed by
// those of o not already present (the outer-union scheme).
func (s *Scheme) Union(o *Scheme) *Scheme {
	names := make([]string, 0, s.Arity()+o.Arity())
	names = append(names, s.names...)
	for _, n := range o.names {
		if !s.Has(n) {
			names = append(names, n)
		}
	}
	return NewScheme(names...)
}

// Project returns a new scheme with only the given attributes, in the
// given order. It panics if an attribute is missing.
func (s *Scheme) Project(names ...string) *Scheme {
	for _, n := range names {
		if !s.Has(n) {
			panic(fmt.Sprintf("relation: projecting on missing attribute %q", n))
		}
	}
	return NewScheme(names...)
}

// Positions maps attribute names to their positions in s. It panics if
// an attribute is missing.
func (s *Scheme) Positions(names ...string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		p := s.Index(n)
		if p < 0 {
			panic(fmt.Sprintf("relation: scheme has no attribute %q", n))
		}
		out[i] = p
	}
	return out
}

// String renders the scheme as (a, b, c).
func (s *Scheme) String() string { return "(" + strings.Join(s.names, ", ") + ")" }
