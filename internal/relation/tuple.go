package relation

import (
	"strings"

	"clio/internal/value"
)

// Tuple is an assignment of values to the attributes of a Scheme,
// stored positionally.
type Tuple struct {
	scheme *Scheme
	vals   []value.Value
}

// NewTuple builds a tuple over the scheme from positional values. It
// panics if the arity does not match.
func NewTuple(s *Scheme, vals ...value.Value) Tuple {
	if len(vals) != s.Arity() {
		panic("relation: tuple arity mismatch")
	}
	return Tuple{scheme: s, vals: append([]value.Value(nil), vals...)}
}

// NewTupleMap builds a tuple from an attribute→value map; attributes
// absent from the map are null.
func NewTupleMap(s *Scheme, m map[string]value.Value) Tuple {
	vals := make([]value.Value, s.Arity())
	for name, v := range m {
		i := s.Index(name)
		if i < 0 {
			panic("relation: NewTupleMap: unknown attribute " + name)
		}
		vals[i] = v
	}
	return Tuple{scheme: s, vals: vals}
}

// AllNull returns a tuple that is null on every attribute of s.
func AllNull(s *Scheme) Tuple {
	return Tuple{scheme: s, vals: make([]value.Value, s.Arity())}
}

// Scheme returns the tuple's scheme.
func (t Tuple) Scheme() *Scheme { return t.scheme }

// At returns the value at position i.
func (t Tuple) At(i int) value.Value { return t.vals[i] }

// Get returns the value of the named attribute; it panics if the
// attribute is absent.
func (t Tuple) Get(name string) value.Value {
	i := t.scheme.Index(name)
	if i < 0 {
		panic("relation: tuple has no attribute " + name)
	}
	return t.vals[i]
}

// Lookup returns the value of the named attribute and whether the
// attribute exists.
func (t Tuple) Lookup(name string) (value.Value, bool) {
	i := t.scheme.Index(name)
	if i < 0 {
		return value.Null, false
	}
	return t.vals[i], true
}

// IsAllNull reports whether every attribute of the tuple is null.
func (t Tuple) IsAllNull() bool {
	for _, v := range t.vals {
		if !v.IsNull() {
			return false
		}
	}
	return true
}

// NonNullMask returns a bitmask (little-endian, 64 attrs per word) of
// the non-null positions.
func (t Tuple) NonNullMask() Mask {
	m := NewMask(len(t.vals))
	for i, v := range t.vals {
		if !v.IsNull() {
			m.Set(i)
		}
	}
	return m
}

// Equal reports whether two tuples have equal schemes and identical
// values (null equal to null).
func (t Tuple) Equal(o Tuple) bool {
	if !t.scheme.Equal(o.scheme) {
		return false
	}
	for i, v := range t.vals {
		if !v.Equal(o.vals[i]) {
			return false
		}
	}
	return true
}

// Subsumes reports whether t subsumes o per Definition 3.8: same
// scheme, and t[A] = o[A] for every attribute A where o[A] is not
// null. (t may additionally be non-null where o is null.)
func (t Tuple) Subsumes(o Tuple) bool {
	if !t.scheme.Equal(o.scheme) {
		return false
	}
	for i, ov := range o.vals {
		if ov.IsNull() {
			continue
		}
		if !t.vals[i].Equal(ov) {
			return false
		}
	}
	return true
}

// StrictlySubsumes reports whether t subsumes o and t ≠ o
// (Definition 3.8).
func (t Tuple) StrictlySubsumes(o Tuple) bool {
	return t.Subsumes(o) && !t.Equal(o)
}

// Project returns a new tuple over the projected scheme. The returned
// tuple shares no storage with t.
func (t Tuple) Project(s *Scheme) Tuple {
	vals := make([]value.Value, s.Arity())
	for i, n := range s.Names() {
		j := t.scheme.Index(n)
		if j < 0 {
			panic("relation: projecting tuple on missing attribute " + n)
		}
		vals[i] = t.vals[j]
	}
	return Tuple{scheme: s, vals: vals}
}

// PadTo returns a tuple over the wider scheme s, carrying t's values
// for shared attributes and null elsewhere.
func (t Tuple) PadTo(s *Scheme) Tuple {
	vals := make([]value.Value, s.Arity())
	for i, n := range s.Names() {
		if j := t.scheme.Index(n); j >= 0 {
			vals[i] = t.vals[j]
		}
	}
	return Tuple{scheme: s, vals: vals}
}

// Concat returns the concatenation of t and o over the concatenated
// scheme.
func (t Tuple) Concat(o Tuple) Tuple {
	s := t.scheme.Concat(o.scheme)
	vals := make([]value.Value, 0, s.Arity())
	vals = append(vals, t.vals...)
	vals = append(vals, o.vals...)
	return Tuple{scheme: s, vals: vals}
}

// ConcatTo is Concat with a pre-built target scheme, avoiding repeated
// scheme construction in join inner loops.
func (t Tuple) ConcatTo(s *Scheme, o Tuple) Tuple {
	vals := make([]value.Value, 0, s.Arity())
	vals = append(vals, t.vals...)
	vals = append(vals, o.vals...)
	if len(vals) != s.Arity() {
		panic("relation: ConcatTo arity mismatch")
	}
	return Tuple{scheme: s, vals: vals}
}

// TupleArena carves tuple value storage out of shared slabs, so a
// join emitting thousands of output tuples performs one allocation
// per slab instead of one per tuple. Tuples built from an arena are
// ordinary Tuples and may outlive it; they keep their slab alive.
type TupleArena struct {
	s       *Scheme
	slab    []value.Value
	next    int // tuples in the next slab (grows geometrically)
	scratch []value.Value
}

// NewTupleArena returns an arena producing tuples over s.
func NewTupleArena(s *Scheme) *TupleArena { return &TupleArena{s: s, next: 8} }

const arenaMaxSlabTuples = 256

// Concat builds t ++ o over the arena's scheme from slab storage.
// Slabs grow geometrically, so a tiny join pays for a handful of
// tuples while a large one amortizes to one allocation per 256.
func (a *TupleArena) Concat(t, o Tuple) Tuple {
	w := a.s.Arity()
	if len(a.slab) < w {
		a.slab = make([]value.Value, a.next*w)
		if a.next < arenaMaxSlabTuples {
			a.next *= 2
		}
	}
	vals := a.slab[:0:w]
	a.slab = a.slab[w:]
	vals = append(vals, t.vals...)
	vals = append(vals, o.vals...)
	if len(vals) != w {
		panic("relation: arena Concat arity mismatch")
	}
	return Tuple{scheme: a.s, vals: vals}
}

// ConcatScratch builds t ++ o in a buffer reused across calls — for
// testing a join predicate against a candidate pair without paying
// for storage. The returned tuple is INVALID after the next
// ConcatScratch call; call Concat to keep an accepted pair.
func (a *TupleArena) ConcatScratch(t, o Tuple) Tuple {
	w := a.s.Arity()
	if cap(a.scratch) < w {
		a.scratch = make([]value.Value, 0, w)
	}
	vals := a.scratch[:0]
	vals = append(vals, t.vals...)
	vals = append(vals, o.vals...)
	if len(vals) != w {
		panic("relation: arena ConcatScratch arity mismatch")
	}
	return Tuple{scheme: a.s, vals: vals}
}

// Key returns a canonical encoding of the whole tuple, usable for
// duplicate elimination. Tuples with equal schemes and Equal values
// share a key. Value encodings are self-delimiting (value.Key), so
// same-arity tuples cannot collide by moving bytes across value
// boundaries. Hot paths use Hash64 instead; Key remains for sorted
// golden output and debugging.
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t.vals {
		b.WriteString(v.Key())
	}
	return b.String()
}

// AppendKey appends the tuple's canonical key (the same bytes Key
// returns) to dst and returns the extended slice, letting callers
// batch many keys into one buffer with no per-tuple string.
func (t Tuple) AppendKey(dst []byte) []byte {
	for _, v := range t.vals {
		dst = v.AppendKey(dst)
	}
	return dst
}

// KeyOn returns a canonical encoding of the values at the given
// positions. Hot paths use HashOn instead.
func (t Tuple) KeyOn(positions []int) string {
	var b strings.Builder
	for _, p := range positions {
		b.WriteString(t.vals[p].Key())
	}
	return b.String()
}

// Hash64 returns the canonical 64-bit hash of the whole tuple: the
// chained value hashes. Tuples with Equal values share a hash; it
// allocates nothing. Callers confirm candidate equality with Equal.
func (t Tuple) Hash64() uint64 {
	h := value.HashSeed()
	for _, v := range t.vals {
		h = v.MixHash64(h)
	}
	return h
}

// HashOn returns the canonical 64-bit hash of the values at the given
// positions — the hash-join and index key. It allocates nothing.
func (t Tuple) HashOn(positions []int) uint64 {
	h := value.HashSeed()
	for _, p := range positions {
		h = t.vals[p].MixHash64(h)
	}
	return h
}

// EqualOn reports whether t at positions pos equals o at positions
// opos, value by value (null equal to null). It is the equality
// confirmation behind every hash-keyed bucket: two tuples with the
// same HashOn are only treated as matching when EqualOn agrees.
func (t Tuple) EqualOn(o Tuple, pos, opos []int) bool {
	if len(pos) != len(opos) {
		return false
	}
	for i, p := range pos {
		if !t.vals[p].Equal(o.vals[opos[i]]) {
			return false
		}
	}
	return true
}

// ApproxBytes estimates the resident memory of the tuple: the value
// slice plus string payloads. Resource budgets charge this per
// materialized tuple, so it errs on the cheap side (shared schemes
// and interned strings are not double-counted).
func (t Tuple) ApproxBytes() int64 {
	n := int64(len(t.vals)) * 48 // sizeof(value.Value) incl. padding
	for _, v := range t.vals {
		if v.Kind() == value.KindString {
			n += int64(len(v.Str()))
		}
	}
	return n
}

// HasNullAt reports whether any of the given positions is null.
func (t Tuple) HasNullAt(positions []int) bool {
	for _, p := range positions {
		if t.vals[p].IsNull() {
			return true
		}
	}
	return false
}

// String renders the tuple as [a:1 b:- c:x].
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range t.vals {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.scheme.Name(i))
		b.WriteByte(':')
		b.WriteString(v.String())
	}
	b.WriteByte(']')
	return b.String()
}

// Mask is a fixed-size bitset over attribute positions.
type Mask struct {
	bits []uint64
	n    int
}

// NewMask creates a mask for n positions, all clear.
func NewMask(n int) Mask {
	return Mask{bits: make([]uint64, (n+63)/64), n: n}
}

// Set marks position i.
func (m Mask) Set(i int) { m.bits[i/64] |= 1 << (uint(i) % 64) }

// Has reports whether position i is set.
func (m Mask) Has(i int) bool { return m.bits[i/64]&(1<<(uint(i)%64)) != 0 }

// SupersetOf reports whether m's set positions include all of o's.
func (m Mask) SupersetOf(o Mask) bool {
	for i, w := range o.bits {
		var mw uint64
		if i < len(m.bits) {
			mw = m.bits[i]
		}
		if w&^mw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether two masks have the same set positions.
func (m Mask) Equal(o Mask) bool {
	n := len(m.bits)
	if len(o.bits) > n {
		n = len(o.bits)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(m.bits) {
			a = m.bits[i]
		}
		if i < len(o.bits) {
			b = o.bits[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// Key returns a map key identifying the mask.
func (m Mask) Key() string {
	var b strings.Builder
	for _, w := range m.bits {
		for k := 0; k < 8; k++ {
			b.WriteByte(byte(w >> (8 * k)))
		}
	}
	return b.String()
}

// Ones returns the set positions in increasing order.
func (m Mask) Ones() []int {
	var out []int
	for i := 0; i < m.n; i++ {
		if m.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// Count returns the number of set positions.
func (m Mask) Count() int {
	c := 0
	for i := 0; i < m.n; i++ {
		if m.Has(i) {
			c++
		}
	}
	return c
}
