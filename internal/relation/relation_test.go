package relation

import (
	"testing"

	"clio/internal/value"
)

func TestSchemeBasics(t *testing.T) {
	s := NewScheme("R.a", "R.b", "S.c")
	if s.Arity() != 3 {
		t.Errorf("Arity = %d", s.Arity())
	}
	if s.Index("R.b") != 1 || s.Index("nope") != -1 {
		t.Error("Index wrong")
	}
	if !s.Has("S.c") || s.Has("S.d") {
		t.Error("Has wrong")
	}
	if s.Name(2) != "S.c" {
		t.Error("Name wrong")
	}
	if s.String() != "(R.a, R.b, S.c)" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSchemeDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate attribute should panic")
		}
	}()
	NewScheme("R.a", "R.a")
}

func TestSchemeEqualSameSet(t *testing.T) {
	a := NewScheme("x", "y")
	b := NewScheme("x", "y")
	c := NewScheme("y", "x")
	d := NewScheme("x", "z")
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Error("Equal wrong")
	}
	if !a.SameSet(c) || a.SameSet(d) {
		t.Error("SameSet wrong")
	}
	if a.SameSet(NewScheme("x")) {
		t.Error("SameSet with different arity")
	}
}

func TestSchemeCombinators(t *testing.T) {
	a := NewScheme("x", "y")
	b := NewScheme("y", "z")
	u := a.Union(b)
	if u.Arity() != 3 || u.Name(2) != "z" {
		t.Errorf("Union = %v", u)
	}
	c := a.Concat(NewScheme("p", "q"))
	if c.Arity() != 4 || c.Name(3) != "q" {
		t.Errorf("Concat = %v", c)
	}
	p := u.Project("z", "x")
	if p.Arity() != 2 || p.Name(0) != "z" {
		t.Errorf("Project = %v", p)
	}
	pos := u.Positions("z", "x")
	if pos[0] != 2 || pos[1] != 0 {
		t.Errorf("Positions = %v", pos)
	}
}

func TestSchemeProjectMissingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("projecting missing attribute should panic")
		}
	}()
	NewScheme("x").Project("y")
}

func mkTuple(s *Scheme, vals ...string) Tuple {
	vs := make([]value.Value, len(vals))
	for i, v := range vals {
		vs[i] = value.Parse(v)
	}
	return NewTuple(s, vs...)
}

func TestTupleBasics(t *testing.T) {
	s := NewScheme("R.a", "R.b")
	tp := mkTuple(s, "1", "x")
	if tp.Get("R.a").IntVal() != 1 {
		t.Error("Get wrong")
	}
	if v, ok := tp.Lookup("R.b"); !ok || v.Str() != "x" {
		t.Error("Lookup wrong")
	}
	if _, ok := tp.Lookup("nope"); ok {
		t.Error("Lookup missing should report !ok")
	}
	if tp.At(1).Str() != "x" {
		t.Error("At wrong")
	}
	if tp.IsAllNull() {
		t.Error("IsAllNull on non-null tuple")
	}
	if !AllNull(s).IsAllNull() {
		t.Error("AllNull not all null")
	}
	if tp.String() != "[R.a:1 R.b:x]" {
		t.Errorf("String = %q", tp.String())
	}
}

func TestTupleMapAndPad(t *testing.T) {
	s := NewScheme("a", "b", "c")
	tp := NewTupleMap(s, map[string]value.Value{"a": value.Int(1), "c": value.String("z")})
	if !tp.Get("b").IsNull() || tp.Get("c").Str() != "z" {
		t.Error("NewTupleMap wrong")
	}
	wide := NewScheme("c", "a", "d")
	p := tp.PadTo(wide)
	if p.Get("c").Str() != "z" || p.Get("a").IntVal() != 1 || !p.Get("d").IsNull() {
		t.Errorf("PadTo wrong: %v", p)
	}
}

func TestTupleSubsumption(t *testing.T) {
	s := NewScheme("a", "b", "c")
	full := mkTuple(s, "1", "x", "y")
	partial := mkTuple(s, "1", "x", "-")
	other := mkTuple(s, "2", "x", "-")
	if !full.Subsumes(partial) {
		t.Error("full should subsume partial")
	}
	if !full.StrictlySubsumes(partial) {
		t.Error("full should strictly subsume partial")
	}
	if partial.Subsumes(full) {
		t.Error("partial should not subsume full")
	}
	if full.Subsumes(other) {
		t.Error("different values should not subsume")
	}
	if !full.Subsumes(full) {
		t.Error("subsumption is reflexive")
	}
	if full.StrictlySubsumes(full) {
		t.Error("strict subsumption is irreflexive")
	}
	if !full.Subsumes(AllNull(s)) {
		t.Error("everything subsumes the all-null tuple")
	}
	// Different schemes never subsume.
	s2 := NewScheme("a", "b", "d")
	if full.Subsumes(mkTuple(s2, "1", "x", "-")) {
		t.Error("different schemes should not subsume")
	}
}

func TestTupleProjectConcat(t *testing.T) {
	s := NewScheme("a", "b")
	tp := mkTuple(s, "1", "x")
	p := tp.Project(NewScheme("b"))
	if p.Scheme().Arity() != 1 || p.Get("b").Str() != "x" {
		t.Error("Project wrong")
	}
	o := mkTuple(NewScheme("c"), "9")
	cat := tp.Concat(o)
	if cat.Scheme().Arity() != 3 || cat.Get("c").IntVal() != 9 {
		t.Error("Concat wrong")
	}
	pre := s.Concat(NewScheme("c"))
	cat2 := tp.ConcatTo(pre, o)
	if !cat2.Equal(cat) {
		t.Error("ConcatTo differs from Concat")
	}
}

func TestTupleKeys(t *testing.T) {
	s := NewScheme("a", "b")
	t1 := mkTuple(s, "1", "x")
	t2 := mkTuple(s, "1", "x")
	t3 := mkTuple(s, "1", "-")
	if t1.Key() != t2.Key() {
		t.Error("equal tuples should share key")
	}
	if t1.Key() == t3.Key() {
		t.Error("different tuples should have different keys")
	}
	if t1.KeyOn([]int{0}) != t3.KeyOn([]int{0}) {
		t.Error("KeyOn shared prefix should match")
	}
	if !t3.HasNullAt([]int{1}) || t3.HasNullAt([]int{0}) {
		t.Error("HasNullAt wrong")
	}
}

func TestMask(t *testing.T) {
	m := NewMask(70)
	m.Set(0)
	m.Set(65)
	if !m.Has(0) || !m.Has(65) || m.Has(1) {
		t.Error("Mask set/has wrong")
	}
	o := NewMask(70)
	o.Set(0)
	if !m.SupersetOf(o) || o.SupersetOf(m) {
		t.Error("SupersetOf wrong")
	}
	if m.Equal(o) {
		t.Error("Equal wrong")
	}
	o.Set(65)
	if !m.Equal(o) || m.Key() != o.Key() {
		t.Error("equal masks should match")
	}
	if got := m.Ones(); len(got) != 2 || got[1] != 65 {
		t.Errorf("Ones = %v", got)
	}
	if m.Count() != 2 {
		t.Errorf("Count = %d", m.Count())
	}
}

func TestRelationBasics(t *testing.T) {
	s := NewScheme("R.a", "R.b")
	r := New("R", s)
	r.AddRow("1", "x")
	r.AddRow("2", "y")
	r.AddRow("1", "x")
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
	if !r.Contains(mkTuple(s, "2", "y")) {
		t.Error("Contains wrong")
	}
	if r.Contains(mkTuple(s, "3", "z")) {
		t.Error("Contains false positive")
	}
	d := r.Distinct()
	if d.Len() != 2 {
		t.Errorf("Distinct len = %d", d.Len())
	}
	f := r.Filter(func(t Tuple) bool { return t.Get("R.a").Equal(value.Int(1)) })
	if f.Len() != 2 {
		t.Errorf("Filter len = %d", f.Len())
	}
	p := r.Project("R.b")
	if p.Scheme().Arity() != 1 || p.Len() != 3 {
		t.Error("Project wrong")
	}
}

func TestRelationRenameCloneSorted(t *testing.T) {
	s := NewScheme("R.a", "R.b")
	r := New("R", s)
	r.AddRow("2", "y")
	r.AddRow("1", "x")
	rn := r.Rename("R2", map[string]string{"R.a": "R2.a", "R.b": "R2.b"})
	if rn.Scheme().Name(0) != "R2.a" || rn.Len() != 2 {
		t.Error("Rename wrong")
	}
	if rn.At(0).Get("R2.a").IntVal() != 2 {
		t.Error("Rename lost values")
	}
	cl := r.Clone()
	cl.AddRow("3", "z")
	if r.Len() != 2 || cl.Len() != 3 {
		t.Error("Clone not independent")
	}
	so := r.Sorted()
	if so.At(0).Get("R.a").IntVal() != 1 {
		t.Error("Sorted wrong")
	}
}

func TestRelationEqualSet(t *testing.T) {
	s := NewScheme("a", "b")
	r1 := New("R", s)
	r1.AddRow("1", "x")
	r1.AddRow("2", "y")
	// Same set, different order, different attr order, with dup.
	s2 := NewScheme("b", "a")
	r2 := New("S", s2)
	r2.AddRow("y", "2")
	r2.AddRow("x", "1")
	r2.AddRow("x", "1")
	if !r1.EqualSet(r2) {
		t.Error("EqualSet should hold")
	}
	r2.AddRow("z", "3")
	if r1.EqualSet(r2) {
		t.Error("EqualSet should fail after extra tuple")
	}
	r3 := New("T", NewScheme("a", "c"))
	if r1.EqualSet(r3) {
		t.Error("EqualSet across schemes should fail")
	}
}

func TestIndex(t *testing.T) {
	s := NewScheme("a", "b")
	r := New("R", s)
	r.AddRow("1", "x")
	r.AddRow("1", "y")
	r.AddRow("2", "x")
	r.AddRow("-", "z") // null key, excluded from index
	ix := r.BuildIndex("a")
	if got := ix.Probe(value.Int(1)); len(got) != 2 {
		t.Errorf("Probe(1) = %v", got)
	}
	if got := ix.Probe(value.Int(3)); len(got) != 0 {
		t.Errorf("Probe(3) = %v", got)
	}
	if got := ix.Probe(value.Null); got != nil {
		t.Errorf("Probe(null) = %v, want nil", got)
	}
	// ProbeTuple from another relation.
	s2 := NewScheme("k")
	probe := mkTuple(s2, "2")
	if got := ix.ProbeTuple(probe, []int{0}); len(got) != 1 || got[0] != 2 {
		t.Errorf("ProbeTuple = %v", got)
	}
	nullProbe := mkTuple(s2, "-")
	if got := ix.ProbeTuple(nullProbe, []int{0}); got != nil {
		t.Errorf("ProbeTuple(null) = %v", got)
	}
}

func TestAddSchemeMismatchPanics(t *testing.T) {
	r := New("R", NewScheme("a"))
	defer func() {
		if recover() == nil {
			t.Error("scheme mismatch should panic")
		}
	}()
	r.Add(mkTuple(NewScheme("b"), "1"))
}
