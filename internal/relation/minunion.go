package relation

// This file implements the paper's null-aware set operations:
// outer union, subsumption removal, and minimum union
// (Definitions 3.8–3.9). Minimum union is the combining operator of
// the full disjunction D(G), so its performance matters; we provide a
// quadratic reference implementation and a partitioned implementation
// that groups tuples by their non-null mask and probes hash indexes,
// exploiting that a tuple can only be strictly subsumed by a tuple
// whose non-null attribute set is a superset of its own.

// OuterUnion returns the outer union of r1 and r2: both padded with
// nulls to the union scheme, all tuples retained (duplicates removed).
func OuterUnion(name string, r1, r2 *Relation) *Relation {
	s := r1.Scheme().Union(r2.Scheme())
	out := New(name, s)
	for _, t := range r1.Tuples() {
		out.Add(t.PadTo(s))
	}
	for _, t := range r2.Tuples() {
		out.Add(t.PadTo(s))
	}
	return out.Distinct()
}

// MinimumUnion returns the minimum union r1 ⊕ r2 (Definition 3.9): the
// outer union with strictly subsumed tuples removed.
func MinimumUnion(name string, r1, r2 *Relation) *Relation {
	return RemoveSubsumed(OuterUnion(name, r1, r2))
}

// MinimumUnionAll folds MinimumUnion over any number of relations.
// With zero inputs it returns an empty relation over an empty scheme.
// Because subsumption removal is applied once at the end over the full
// union scheme, the result is independent of argument order (the
// paper's ⊕ is commutative and associative on sets of tuples).
func MinimumUnionAll(name string, rels ...*Relation) *Relation {
	if len(rels) == 0 {
		return New(name, NewScheme())
	}
	s := rels[0].Scheme()
	for _, r := range rels[1:] {
		s = s.Union(r.Scheme())
	}
	out := New(name, s)
	for _, r := range rels {
		for _, t := range r.Tuples() {
			out.Add(t.PadTo(s))
		}
	}
	return RemoveSubsumed(out.Distinct())
}

// RemoveSubsumedNaive removes strictly subsumed tuples by comparing
// all pairs. Exact but O(n²·arity); retained as the reference
// implementation and as the baseline for benchmark E2.
func RemoveSubsumedNaive(r *Relation) *Relation {
	tuples := r.Tuples()
	keep := make([]bool, len(tuples))
	for i := range keep {
		keep[i] = true
	}
	for i, t := range tuples {
		for j, u := range tuples {
			if i == j || !keep[i] {
				continue
			}
			if u.StrictlySubsumes(t) {
				keep[i] = false
				break
			}
			// Equal duplicates: keep only the first occurrence.
			if u.Equal(t) && j < i {
				keep[i] = false
				break
			}
		}
	}
	out := New(r.Name, r.Scheme())
	for i, t := range tuples {
		if keep[i] {
			out.Add(t)
		}
	}
	return out
}

// RemoveSubsumed removes strictly subsumed tuples (and duplicates)
// using mask partitioning: tuples are grouped by their non-null mask;
// a tuple t with mask m can only be strictly subsumed by a tuple in a
// group whose mask is a superset of m (strict superset, or the same
// mask with equal values — which is a duplicate, handled separately).
// For each (superset group, m) pair we build a hash index keyed on m's
// positions, so each candidate is found in O(1) expected time.
func RemoveSubsumed(r *Relation) *Relation {
	r = r.Distinct()
	tuples := r.Tuples()
	if len(tuples) <= 1 {
		return r.Clone()
	}

	type group struct {
		mask Mask
		rows []int
		// indexes maps a subset-mask key to a hash index of the group's
		// tuples projected onto that subset's positions: 64-bit value
		// hash → candidate rows, confirmed with EqualOn on probe.
		indexes map[string]map[uint64][]int32
	}
	groups := map[string]*group{}
	var order []string
	for i, t := range tuples {
		m := t.NonNullMask()
		k := m.Key()
		g := groups[k]
		if g == nil {
			g = &group{mask: m, indexes: map[string]map[uint64][]int32{}}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, i)
	}

	keep := make([]bool, len(tuples))
	for i := range keep {
		keep[i] = true
	}

	for _, gk := range order {
		g := groups[gk]
		positions := g.mask.Ones()
		if len(positions) == 0 {
			// All-null tuples are strictly subsumed by any other tuple;
			// drop them whenever any non-empty group exists.
			if len(order) > 1 {
				for _, row := range g.rows {
					keep[row] = false
				}
			}
			continue
		}
		for _, hk := range order {
			if hk == gk {
				continue
			}
			h := groups[hk]
			if !h.mask.SupersetOf(g.mask) {
				continue
			}
			ix := h.indexes[gk]
			if ix == nil {
				ix = make(map[uint64][]int32, len(h.rows))
				for _, row := range h.rows {
					hh := tuples[row].HashOn(positions)
					ix[hh] = append(ix[hh], int32(row))
				}
				h.indexes[gk] = ix
			}
			for _, row := range g.rows {
				if !keep[row] {
					continue
				}
				t := tuples[row]
				for _, cand := range ix[t.HashOn(positions)] {
					if tuples[cand].EqualOn(t, positions, positions) {
						keep[row] = false
						break
					}
				}
			}
		}
	}

	out := New(r.Name, r.Scheme())
	for i, t := range tuples {
		if keep[i] {
			out.Add(t)
		}
	}
	return out
}
