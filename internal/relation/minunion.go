package relation

import (
	"math/bits"

	"clio/internal/value"
)

// This file implements the paper's null-aware set operations:
// outer union, subsumption removal, and minimum union
// (Definitions 3.8–3.9). Minimum union is the combining operator of
// the full disjunction D(G), so its performance matters; we provide a
// quadratic reference implementation and a partitioned implementation
// that groups tuples by their non-null mask and probes hash indexes,
// exploiting that a tuple can only be strictly subsumed by a tuple
// whose non-null attribute set is a superset of its own.

// OuterUnion returns the outer union of r1 and r2: both padded with
// nulls to the union scheme, all tuples retained (duplicates removed).
func OuterUnion(name string, r1, r2 *Relation) *Relation {
	s := r1.Scheme().Union(r2.Scheme())
	out := New(name, s)
	for _, t := range r1.Tuples() {
		out.Add(t.PadTo(s))
	}
	for _, t := range r2.Tuples() {
		out.Add(t.PadTo(s))
	}
	return out.Distinct()
}

// MinimumUnion returns the minimum union r1 ⊕ r2 (Definition 3.9): the
// outer union with strictly subsumed tuples removed.
func MinimumUnion(name string, r1, r2 *Relation) *Relation {
	return RemoveSubsumed(OuterUnion(name, r1, r2))
}

// MinimumUnionAll folds MinimumUnion over any number of relations.
// With zero inputs it returns an empty relation over an empty scheme.
// Because subsumption removal is applied once at the end over the full
// union scheme, the result is independent of argument order (the
// paper's ⊕ is commutative and associative on sets of tuples).
func MinimumUnionAll(name string, rels ...*Relation) *Relation {
	if len(rels) == 0 {
		return New(name, NewScheme())
	}
	s := rels[0].Scheme()
	for _, r := range rels[1:] {
		s = s.Union(r.Scheme())
	}
	// Pad columnar: remap each cached columnar view onto the union
	// scheme (zero-copy) and gather into one accumulator batch; only
	// the subsumption front ever materializes as tuples.
	acc := NewBatch(s)
	for _, r := range rels {
		if r.Len() == 0 {
			continue
		}
		acc.AppendBatch(r.Columns().Remapped(s, PadPerm(r.Scheme(), s)))
	}
	return RemoveSubsumedBatch(name, acc)
}

// RemoveSubsumedNaive removes strictly subsumed tuples by comparing
// all pairs. Exact but O(n²·arity); retained as the reference
// implementation and as the baseline for benchmark E2.
func RemoveSubsumedNaive(r *Relation) *Relation {
	tuples := r.Tuples()
	keep := make([]bool, len(tuples))
	for i := range keep {
		keep[i] = true
	}
	for i, t := range tuples {
		for j, u := range tuples {
			if i == j || !keep[i] {
				continue
			}
			if u.StrictlySubsumes(t) {
				keep[i] = false
				break
			}
			// Equal duplicates: keep only the first occurrence.
			if u.Equal(t) && j < i {
				keep[i] = false
				break
			}
		}
	}
	out := New(r.Name, r.Scheme())
	for i, t := range tuples {
		if keep[i] {
			out.Add(t)
		}
	}
	return out
}

// RemoveSubsumed removes strictly subsumed tuples (and duplicates)
// using mask partitioning: tuples are grouped by their non-null mask;
// a tuple t with mask m can only be strictly subsumed by a tuple in a
// group whose mask is a superset of m (strict superset, or the same
// mask with equal values — which is a duplicate, handled separately).
//
// The hot path (arity ≤ 64) runs columnar over the relation's cached
// column view: dedup, null masks, and all subsumption-probe hashes are
// computed from the typed vectors, null masks are plain uint64s, and
// each group builds ONE hash index on its own positions which every
// superset group then scans with a shared hash scratch buffer — so the
// per-(group pair) work allocates nothing. Wider schemes fall back to
// the Mask-keyed row-major implementation.
func RemoveSubsumed(r *Relation) *Relation {
	if r.Scheme().Arity() <= 64 {
		return removeSubsumedColumnar(r)
	}
	return removeSubsumedWide(r)
}

// RemoveSubsumedBatch reduces the visible rows of b (which must carry
// no selection vector) to the subsumption front, materializing only the
// surviving rows — the columnar accumulator's finalize path, where the
// padded multiset exists solely as column vectors.
func RemoveSubsumedBatch(name string, b *Batch) *Relation {
	if b.Scheme().Arity() > 64 {
		tmp := New(name, b.Scheme())
		tmp.AppendBatch(b)
		out := removeSubsumedWide(tmp)
		out.Name = name
		return out
	}
	out := New(name, b.Scheme())
	if b.Len() == 0 {
		return out
	}
	keep := subsumedKeepBits(b)
	sel := make([]int32, 0, b.Len())
	for i := 0; i < b.Len(); i++ {
		if keep[i] {
			sel = append(sel, int32(i))
		}
	}
	out.AppendBatch(b.View(sel))
	return out
}

// removeSubsumedColumnar is the vectorized arity≤64 path; see
// RemoveSubsumed.
func removeSubsumedColumnar(r *Relation) *Relation {
	n := r.Len()
	if n <= 1 {
		return r.Distinct()
	}
	keep := subsumedKeepBits(r.Columns())
	out := New(r.Name, r.Scheme())
	for i := 0; i < n; i++ {
		if keep[i] {
			out.Add(r.At(i))
		}
	}
	return out
}

// subsumedKeepBits computes, over the physical rows of b, which rows
// survive duplicate removal (first occurrence wins) and strict
// subsumption removal.
func subsumedKeepBits(b *Batch) []bool {
	n := b.Rows()
	w := b.Scheme().Arity()

	// Hash every cell once per column up front. Both the dedup pass and
	// the subsumption probes only need internally consistent bucket
	// keys, not the canonical chained hash, so this single column sweep
	// feeds everything below.
	allRows := make([]int32, n)
	for i := range allRows {
		allRows[i] = int32(i)
	}
	colh := make([]uint64, w*n)
	for c := 0; c < w; c++ {
		dst := colh[c*n : c*n+n]
		for j := range dst {
			dst[j] = value.HashSeed()
		}
		b.Col(c).mixHashInto(dst, allRows)
	}

	// Whole-row hashes combined from the per-column hashes.
	hashes := make([]uint64, n)
	for i := range hashes {
		hashes[i] = 0x9e3779b97f4a7c15
	}
	for c := 0; c < w; c++ {
		src := colh[c*n : c*n+n]
		for i := range hashes {
			hashes[i] = (hashes[i] ^ src[i]) * 0x9e3779b97f4a7c15
		}
	}

	// Dedup (first occurrence wins) through an open-addressed table:
	// row hashes bucket into power-of-two slots, candidates confirmed
	// value-wise, and true hash collisions simply keep probing — no
	// overflow structure needed.
	tsize := 1
	for tsize < 2*n {
		tsize <<= 1
	}
	tmask := uint64(tsize - 1)
	slots := make([]int32, tsize) // row+1; 0 = empty
	keep := make([]bool, n)
	distinctRows := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		h := hashes[i]
		idx := h & tmask
		dup := false
		for {
			s := slots[idx]
			if s == 0 {
				slots[idx] = int32(i) + 1
				break
			}
			j := int(s) - 1
			if hashes[j] == h && b.EqualRows(j, b, i) {
				dup = true
				break
			}
			idx = (idx + 1) & tmask
		}
		if dup {
			continue
		}
		keep[i] = true
		distinctRows = append(distinctRows, int32(i))
	}

	// Null masks as plain uint64s, filled column-wise.
	masks := make([]uint64, n)
	for c := 0; c < w; c++ {
		col := b.Col(c)
		bit := uint64(1) << uint(c)
		for _, row := range distinctRows {
			if !col.IsNull(int(row)) {
				masks[row] |= bit
			}
		}
	}

	// Group distinct rows by mask (first-occurrence order).
	type vgroup struct {
		mask      uint64
		rows      []int32
		positions []int
		// index buckets the group's rows by their hash on the group's
		// own positions — the probe target for every superset group.
		index map[uint64][]int32
	}
	gm := make(map[uint64]*vgroup, 16)
	var groups []*vgroup
	for _, row := range distinctRows {
		m := masks[row]
		g := gm[m]
		if g == nil {
			g = &vgroup{mask: m}
			gm[m] = g
			groups = append(groups, g)
		}
		g.rows = append(g.rows, row)
	}

	if len(groups) > 1 {
		// Subsumption probes combine the precomputed per-column hashes
		// with one multiply-xor per position, so the per-(group pair)
		// cost is a few array lookups per row rather than canonical
		// re-hashing.
		var scratch []uint64
		hashOn := func(rows []int32, positions []int, dst []uint64) []uint64 {
			dst = dst[:len(rows)]
			for j, row := range rows {
				h := uint64(0x9e3779b97f4a7c15)
				for _, p := range positions {
					h = (h ^ colh[p*n+int(row)]) * 0x9e3779b97f4a7c15
				}
				dst[j] = h
			}
			return dst
		}
		equalOn := func(i, j int32, positions []int) bool {
			for _, p := range positions {
				c := b.Col(p)
				if !c.Value(int(i)).Equal(c.Value(int(j))) {
					return false
				}
			}
			return true
		}
		for _, g := range groups {
			if g.mask == 0 {
				// All-null tuples are strictly subsumed by any other
				// tuple; any second group implies one exists.
				for _, row := range g.rows {
					keep[row] = false
				}
				continue
			}
			for m := g.mask; m != 0; m &= m - 1 {
				g.positions = append(g.positions, bits.TrailingZeros64(m))
			}
			gh := make([]uint64, len(g.rows))
			hashOn(g.rows, g.positions, gh)
			g.index = make(map[uint64][]int32, len(g.rows))
			for j, row := range g.rows {
				g.index[gh[j]] = append(g.index[gh[j]], row)
			}
			// Scan every strict-superset group's rows against g's index:
			// a match strictly subsumes the g row it hits.
			for _, h := range groups {
				if h == g || h.mask&g.mask != g.mask || h.mask == g.mask {
					continue
				}
				if cap(scratch) < len(h.rows) {
					scratch = make([]uint64, len(h.rows))
				}
				hh := hashOn(h.rows, g.positions, scratch[:len(h.rows)])
				for j, hrow := range h.rows {
					for _, grow := range g.index[hh[j]] {
						if keep[grow] && equalOn(hrow, grow, g.positions) {
							keep[grow] = false
						}
					}
				}
			}
		}
	}
	return keep
}

// removeSubsumedWide is the Mask-keyed row-major fallback for schemes
// wider than 64 attributes.
func removeSubsumedWide(r *Relation) *Relation {
	r = r.Distinct()
	tuples := r.Tuples()
	if len(tuples) <= 1 {
		return r.Clone()
	}

	type group struct {
		mask Mask
		rows []int
		// indexes maps a subset-mask key to a hash index of the group's
		// tuples projected onto that subset's positions: 64-bit value
		// hash → candidate rows, confirmed with EqualOn on probe.
		indexes map[string]map[uint64][]int32
	}
	groups := map[string]*group{}
	var order []string
	for i, t := range tuples {
		m := t.NonNullMask()
		k := m.Key()
		g := groups[k]
		if g == nil {
			g = &group{mask: m, indexes: map[string]map[uint64][]int32{}}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, i)
	}

	keep := make([]bool, len(tuples))
	for i := range keep {
		keep[i] = true
	}

	for _, gk := range order {
		g := groups[gk]
		positions := g.mask.Ones()
		if len(positions) == 0 {
			// All-null tuples are strictly subsumed by any other tuple;
			// drop them whenever any non-empty group exists.
			if len(order) > 1 {
				for _, row := range g.rows {
					keep[row] = false
				}
			}
			continue
		}
		for _, hk := range order {
			if hk == gk {
				continue
			}
			h := groups[hk]
			if !h.mask.SupersetOf(g.mask) {
				continue
			}
			ix := h.indexes[gk]
			if ix == nil {
				ix = make(map[uint64][]int32, len(h.rows))
				for _, row := range h.rows {
					hh := tuples[row].HashOn(positions)
					ix[hh] = append(ix[hh], int32(row))
				}
				h.indexes[gk] = ix
			}
			for _, row := range g.rows {
				if !keep[row] {
					continue
				}
				t := tuples[row]
				for _, cand := range ix[t.HashOn(positions)] {
					if tuples[cand].EqualOn(t, positions, positions) {
						keep[row] = false
						break
					}
				}
			}
		}
	}

	out := New(r.Name, r.Scheme())
	for i, t := range tuples {
		if keep[i] {
			out.Add(t)
		}
	}
	return out
}
