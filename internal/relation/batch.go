package relation

// This file implements the column-major execution representation: a
// Batch stores a run of tuples as per-column typed vectors with
// per-column null bitmaps and an optional selection vector. Batches are
// what the streaming operators exchange; the row-major Tuple remains
// the storage and API unit (relations, journals, spill frames), and
// the two convert losslessly at materialization boundaries.
//
// Invariants:
//
//   - Column i of a Batch holds the values of attribute i of the
//     scheme for every physical row, nulls marked in the bitmap.
//   - A column is either uniformly typed (one non-null Kind, cells in
//     a typed vector: []int64, []float64, []string or []bool) or
//     "mixed" (cells individually typed, stored as value.Value). A
//     column silently migrates to mixed the first time a second
//     non-null kind arrives, so arbitrary data is always representable.
//     Int and Float count as distinct kinds here — hashing treats them
//     as one numeric domain, but rendering does not, and the columnar
//     form must reconstruct every Value exactly.
//   - Row hashes computed from a Batch (HashRows, HashRowsOn) are
//     bit-identical to Tuple.Hash64/Tuple.HashOn over the same values:
//     the same FNV-1a chain over the same canonical per-kind framing.
//     Memo-cache fingerprints, spill-partition routing, and journal
//     byte-identity all rest on this.
//   - The selection vector, when set, lists the visible physical rows
//     in order. Operators that filter set it instead of copying
//     columns; materialization applies it.

import (
	"clio/internal/value"
)

// ColVec is one column of a Batch: a typed value vector plus a null
// bitmap. The zero ColVec is an empty column.
type ColVec struct {
	kind  value.Kind // kind of the non-null cells; KindNull until the first non-null arrives
	mixed bool       // true: cells individually typed in vals; typed vectors unused
	nulls []uint64   // bitmap, bit i set = row i is null
	n     int

	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	vals   []value.Value // mixed-path storage (holds every cell, nulls included)
}

// Len returns the number of physical rows in the column.
func (c *ColVec) Len() int { return c.n }

// Kind returns the uniform kind of the column's non-null cells, or
// (value.KindNull, false) when the column is mixed or all-null.
func (c *ColVec) Kind() (value.Kind, bool) {
	if c.mixed || c.kind == value.KindNull {
		return value.KindNull, false
	}
	return c.kind, true
}

// IsNull reports whether row i is null.
func (c *ColVec) IsNull(i int) bool {
	return c.nulls[i>>6]&(1<<(uint(i)&63)) != 0
}

func (c *ColVec) setNull(i int) {
	c.nulls[i>>6] |= 1 << (uint(i) & 63)
}

// growNulls extends the bitmap to cover one more row.
func (c *ColVec) growNulls() {
	if c.n>>6 >= len(c.nulls) {
		c.nulls = append(c.nulls, 0)
	}
}

// Reset empties the column, keeping capacity.
func (c *ColVec) Reset() {
	for i := range c.nulls {
		c.nulls[i] = 0
	}
	c.kind = value.KindNull
	c.mixed = false
	c.n = 0
	c.ints = c.ints[:0]
	c.floats = c.floats[:0]
	// Release string/value payloads so a reused batch does not pin the
	// previous batch's heap data.
	clear(c.strs)
	c.strs = c.strs[:0]
	c.bools = c.bools[:0]
	clear(c.vals)
	c.vals = c.vals[:0]
}

// Append adds v as the next row of the column.
func (c *ColVec) Append(v value.Value) {
	c.growNulls()
	i := c.n
	if c.mixed {
		if v.IsNull() {
			c.setNull(i)
		}
		c.vals = append(c.vals, v)
		c.n++
		return
	}
	if v.IsNull() {
		c.setNull(i)
		c.padTyped(1)
		c.n++
		return
	}
	k := v.Kind()
	if c.kind == value.KindNull {
		// First non-null cell fixes the column kind; backfill the typed
		// vector with placeholders for the null prefix.
		c.kind = k
		c.padTyped(i + 1 - c.typedLen())
	} else if c.kind != k {
		// Kind conflict: migrate the existing c.n rows to mixed storage
		// (n is not yet incremented, so only stored rows materialize).
		c.migrateMixed()
		c.vals = append(c.vals, v)
		c.n++
		return
	} else {
		c.padTyped(1)
	}
	c.n++
	switch k {
	case value.KindInt:
		c.ints[i] = v.IntVal()
	case value.KindFloat:
		c.floats[i] = v.FloatVal()
	case value.KindString:
		c.strs[i] = v.Str()
	case value.KindBool:
		c.bools[i] = v.BoolVal()
	}
}

// typedLen returns the length of the active typed vector.
func (c *ColVec) typedLen() int {
	switch c.kind {
	case value.KindInt:
		return len(c.ints)
	case value.KindFloat:
		return len(c.floats)
	case value.KindString:
		return len(c.strs)
	case value.KindBool:
		return len(c.bools)
	}
	return 0
}

// padTyped appends k zero cells to the active typed vector (null
// placeholders). Before the kind is known there is no vector to pad.
func (c *ColVec) padTyped(k int) {
	if k <= 0 {
		return
	}
	switch c.kind {
	case value.KindInt:
		for j := 0; j < k; j++ {
			c.ints = append(c.ints, 0)
		}
	case value.KindFloat:
		for j := 0; j < k; j++ {
			c.floats = append(c.floats, 0)
		}
	case value.KindString:
		for j := 0; j < k; j++ {
			c.strs = append(c.strs, "")
		}
	case value.KindBool:
		for j := 0; j < k; j++ {
			c.bools = append(c.bools, false)
		}
	}
}

// migrateMixed converts the column to mixed storage, materializing
// every existing cell as a value.Value.
func (c *ColVec) migrateMixed() {
	vals := make([]value.Value, c.n)
	for i := 0; i < c.n; i++ {
		vals[i] = c.valueTyped(i)
	}
	c.mixed = true
	c.vals = vals
	c.ints, c.floats, c.strs, c.bools = nil, nil, nil, nil
}

// valueTyped reconstructs the Value at row i from typed storage.
func (c *ColVec) valueTyped(i int) value.Value {
	if c.IsNull(i) {
		return value.Null
	}
	switch c.kind {
	case value.KindInt:
		return value.Int(c.ints[i])
	case value.KindFloat:
		return value.Float(c.floats[i])
	case value.KindString:
		return value.String(c.strs[i])
	case value.KindBool:
		return value.Bool(c.bools[i])
	}
	return value.Null
}

// Value returns the cell at row i. The returned Value is a copy; the
// call never allocates.
func (c *ColVec) Value(i int) value.Value {
	if c.mixed {
		return c.vals[i]
	}
	return c.valueTyped(i)
}

// mixHashInto folds the column's cells into the per-row hash states for
// the given physical rows: the vectorized equivalent of calling
// v.MixHash64(h[j]) cell by cell, specialized per column kind so the
// inner loop carries no per-cell kind dispatch.
func (c *ColVec) mixHashInto(hs []uint64, rows []int32) {
	if c.mixed {
		for j, r := range rows {
			hs[j] = c.vals[r].MixHash64(hs[j])
		}
		return
	}
	switch c.kind {
	case value.KindNull: // all-null column
		for j := range rows {
			hs[j] = value.MixNullHash(hs[j])
		}
	case value.KindInt:
		for j, r := range rows {
			if c.IsNull(int(r)) {
				hs[j] = value.MixNullHash(hs[j])
			} else {
				hs[j] = value.MixNumericHash(hs[j], float64(c.ints[r]))
			}
		}
	case value.KindFloat:
		for j, r := range rows {
			if c.IsNull(int(r)) {
				hs[j] = value.MixNullHash(hs[j])
			} else {
				hs[j] = value.MixNumericHash(hs[j], c.floats[r])
			}
		}
	case value.KindString:
		for j, r := range rows {
			if c.IsNull(int(r)) {
				hs[j] = value.MixNullHash(hs[j])
			} else {
				hs[j] = value.MixStringHash(hs[j], c.strs[r])
			}
		}
	case value.KindBool:
		for j, r := range rows {
			if c.IsNull(int(r)) {
				hs[j] = value.MixNullHash(hs[j])
			} else {
				hs[j] = value.MixBoolHash(hs[j], c.bools[r])
			}
		}
	}
}

// AppendGather appends the cells of src at the given physical rows, in
// order; a negative row id appends a null cell. When src is uniformly
// typed and c is empty or of the same layout, the copy runs over the
// typed vectors with no per-cell Value boxing — the join/distinct
// output gather path.
func (c *ColVec) AppendGather(src *ColVec, rows []int32) {
	fast := !src.mixed && !c.mixed && (c.kind == src.kind || c.kind == value.KindNull || src.kind == value.KindNull)
	if !fast {
		for _, r := range rows {
			if r < 0 {
				c.Append(value.Null)
			} else {
				c.Append(src.Value(int(r)))
			}
		}
		return
	}
	if c.kind == value.KindNull {
		c.kind = src.kind
		c.padTyped(c.n - c.typedLen())
	}
	for _, r := range rows {
		i := c.n
		c.growNulls()
		c.n++
		if r < 0 || src.IsNull(int(r)) {
			c.setNull(i)
			c.padTyped(1)
			continue
		}
		switch c.kind {
		case value.KindNull:
			// src is all-null (kind unset) yet the row is non-null —
			// impossible; keep the cell null for safety.
			c.setNull(i)
		case value.KindInt:
			c.ints = append(c.ints, src.ints[r])
		case value.KindFloat:
			c.floats = append(c.floats, src.floats[r])
		case value.KindString:
			c.strs = append(c.strs, src.strs[r])
		case value.KindBool:
			c.bools = append(c.bools, src.bools[r])
		}
	}
}

// appendFrom appends row i of src as the next row of c.
func (c *ColVec) appendFrom(src *ColVec, i int) {
	if !c.mixed && !src.mixed && (src.kind == c.kind || src.IsNull(i) || c.kind == value.KindNull) {
		// Fast path: same layout (or a null, which any layout takes).
		c.Append(src.Value(i))
		return
	}
	c.Append(src.Value(i))
}

// allNullVec returns a column of n null cells (shared placeholder for
// padded attribute blocks).
func allNullVec(n int) ColVec {
	return ColVec{n: n, nulls: makeOnes(n)}
}

func makeOnes(n int) []uint64 {
	w := (n + 63) / 64
	out := make([]uint64, w)
	for i := range out {
		out[i] = ^uint64(0)
	}
	return out
}

// Batch is a column-major run of tuples over a scheme. See the file
// comment for invariants.
type Batch struct {
	scheme *Scheme
	cols   []ColVec
	n      int     // physical row count
	sel    []int32 // selection vector (visible physical rows, in order); nil = all rows
}

// NewBatch returns an empty batch over the scheme.
func NewBatch(s *Scheme) *Batch {
	return &Batch{scheme: s, cols: make([]ColVec, s.Arity())}
}

// Scheme returns the batch's scheme.
func (b *Batch) Scheme() *Scheme { return b.scheme }

// Rows returns the physical row count (ignoring any selection).
func (b *Batch) Rows() int { return b.n }

// Len returns the visible row count (selection applied).
func (b *Batch) Len() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// RowID maps a visible row index to its physical row.
func (b *Batch) RowID(i int) int {
	if b.sel != nil {
		return int(b.sel[i])
	}
	return i
}

// Sel returns the selection vector (nil when all physical rows are
// visible). The caller must not mutate it.
func (b *Batch) Sel() []int32 { return b.sel }

// SetSel installs a selection vector of physical row ids, in order.
// Pass nil to make every physical row visible.
func (b *Batch) SetSel(sel []int32) { b.sel = sel }

// Col returns column i. The caller must not mutate it.
func (b *Batch) Col(i int) *ColVec { return &b.cols[i] }

// Reset empties the batch (keeping column capacity) and clears any
// selection.
func (b *Batch) Reset() {
	for i := range b.cols {
		b.cols[i].Reset()
	}
	b.n = 0
	b.sel = nil
}

// AppendTuple adds t's values as the next physical row. The batch must
// have no selection vector installed.
func (b *Batch) AppendTuple(t Tuple) {
	for i := range b.cols {
		b.cols[i].Append(t.At(i))
	}
	b.n++
}

// AppendValues adds one physical row from positional values.
func (b *Batch) AppendValues(vals ...value.Value) {
	for i := range b.cols {
		b.cols[i].Append(vals[i])
	}
	b.n++
}

// AppendRow appends the physical row i of src (which must share b's
// arity; attribute names are not checked — callers align schemes).
func (b *Batch) AppendRow(src *Batch, i int) {
	for c := range b.cols {
		b.cols[c].appendFrom(&src.cols[c], i)
	}
	b.n++
}

// AppendBatch appends every visible row of src, column-wise through
// the typed gather path.
func (b *Batch) AppendBatch(src *Batch) {
	rows := src.sel
	if rows == nil {
		rows = make([]int32, src.n)
		for i := range rows {
			rows[i] = int32(i)
		}
	}
	for c := range b.cols {
		b.cols[c].AppendGather(&src.cols[c], rows)
	}
	b.n += len(rows)
}

// AppendConcatGather appends len(lrows) physical rows formed by
// concatenating row lrows[j] of l with row rrows[j] of r (schemes must
// satisfy b.scheme = l.scheme ++ r.scheme). Row ids are physical; a
// negative id contributes an all-null side — how outer-join padding
// emits. The copy runs column-wise over the typed vectors.
func (b *Batch) AppendConcatGather(l *Batch, lrows []int32, r *Batch, rrows []int32) {
	if len(lrows) != len(rrows) {
		panic("relation: AppendConcatGather row list length mismatch")
	}
	lw := len(l.cols)
	for c := 0; c < lw; c++ {
		b.cols[c].AppendGather(&l.cols[c], lrows)
	}
	for c := range r.cols {
		b.cols[lw+c].AppendGather(&r.cols[c], rrows)
	}
	b.n += len(lrows)
}

// View returns a batch sharing b's columns with the given selection of
// physical row ids installed (nil selects every physical row). The
// view is read-only, like the base.
func (b *Batch) View(sel []int32) *Batch {
	return &Batch{scheme: b.scheme, cols: b.cols, n: b.n, sel: sel}
}

// ApproxBytes estimates the resident footprint of the batch's visible
// rows — the sum of ApproxBytesRow, computed column-wise.
func (b *Batch) ApproxBytes() int64 {
	n := int64(b.Len())
	total := n * int64(len(b.cols)) * 48
	for c := range b.cols {
		col := &b.cols[c]
		switch {
		case col.mixed:
			for i := 0; i < int(n); i++ {
				if v := col.vals[b.RowID(i)]; v.Kind() == value.KindString {
					total += int64(len(v.Str()))
				}
			}
		case col.kind == value.KindString:
			for i := 0; i < int(n); i++ {
				r := b.RowID(i)
				if !col.IsNull(r) {
					total += int64(len(col.strs[r]))
				}
			}
		}
	}
	return total
}

// Value returns the cell at (visible row i, column c).
func (b *Batch) Value(i, c int) value.Value {
	return b.cols[c].Value(b.RowID(i))
}

// IsNull reports whether cell (visible row i, column c) is null.
func (b *Batch) IsNull(i, c int) bool {
	return b.cols[c].IsNull(b.RowID(i))
}

// Tuple materializes visible row i as a standalone Tuple (one vals
// allocation).
func (b *Batch) Tuple(i int) Tuple {
	r := b.RowID(i)
	vals := make([]value.Value, len(b.cols))
	for c := range b.cols {
		vals[c] = b.cols[c].Value(r)
	}
	return Tuple{scheme: b.scheme, vals: vals}
}

// TupleInto fills scratch (which must have the batch's arity) with
// visible row i's values and returns a Tuple borrowing that storage.
// The returned Tuple is INVALID after the next TupleInto call on the
// same scratch; it exists so predicates can evaluate batch rows without
// per-row allocation.
func (b *Batch) TupleInto(scratch []value.Value, i int) Tuple {
	r := b.RowID(i)
	for c := range b.cols {
		scratch[c] = b.cols[c].Value(r)
	}
	return Tuple{scheme: b.scheme, vals: scratch}
}

// physRows returns the visible physical rows as an []int32, using
// scratch to avoid allocation when there is no selection vector.
func (b *Batch) physRows(scratch []int32) []int32 {
	if b.sel != nil {
		return b.sel
	}
	scratch = scratch[:0]
	for i := 0; i < b.n; i++ {
		scratch = append(scratch, int32(i))
	}
	return scratch
}

// HashRows computes the canonical 64-bit whole-row hash of every
// visible row into dst (which must have length Len()). The result per
// row is bit-identical to Tuple.Hash64 of the same values.
func (b *Batch) HashRows(dst []uint64, rowScratch []int32) []int32 {
	rows := b.physRows(rowScratch)
	for j := range dst {
		dst[j] = value.HashSeed()
	}
	for c := range b.cols {
		b.cols[c].mixHashInto(dst, rows)
	}
	return rows
}

// HashRowsOn computes the canonical hash of the given columns (in
// order) for every visible row into dst — bit-identical to
// Tuple.HashOn over the same positions.
func (b *Batch) HashRowsOn(positions []int, dst []uint64, rowScratch []int32) []int32 {
	rows := b.physRows(rowScratch)
	for j := range dst {
		dst[j] = value.HashSeed()
	}
	for _, p := range positions {
		b.cols[p].mixHashInto(dst, rows)
	}
	return rows
}

// AppendKeyRow appends the canonical sort key of visible row i
// (byte-identical to Tuple.Key of the same values) to dst.
func (b *Batch) AppendKeyRow(dst []byte, i int) []byte {
	r := b.RowID(i)
	for c := range b.cols {
		dst = b.cols[c].Value(r).AppendKey(dst)
	}
	return dst
}

// EqualRows reports whether visible row i of b equals visible row j of
// o value-wise (null equal to null). Schemes must be value-aligned.
func (b *Batch) EqualRows(i int, o *Batch, j int) bool {
	ri, rj := b.RowID(i), o.RowID(j)
	for c := range b.cols {
		if !b.cols[c].Value(ri).Equal(o.cols[c].Value(rj)) {
			return false
		}
	}
	return true
}

// EqualRowsOn reports whether visible row i of b at positions pos
// equals visible row j of o at positions opos.
func (b *Batch) EqualRowsOn(i int, o *Batch, j int, pos, opos []int) bool {
	if len(pos) != len(opos) {
		return false
	}
	ri, rj := b.RowID(i), o.RowID(j)
	for k, p := range pos {
		if !b.cols[p].Value(ri).Equal(o.cols[opos[k]].Value(rj)) {
			return false
		}
	}
	return true
}

// HasNullAt reports whether visible row i is null on any of the given
// columns.
func (b *Batch) HasNullAt(i int, positions []int) bool {
	r := b.RowID(i)
	for _, p := range positions {
		if b.cols[p].IsNull(r) {
			return true
		}
	}
	return false
}

// ApproxBytesRow estimates the resident footprint of visible row i,
// matching Tuple.ApproxBytes for the same values.
func (b *Batch) ApproxBytesRow(i int) int64 {
	r := b.RowID(i)
	n := int64(len(b.cols)) * 48
	for c := range b.cols {
		col := &b.cols[c]
		if col.mixed {
			if v := col.vals[r]; v.Kind() == value.KindString {
				n += int64(len(v.Str()))
			}
		} else if col.kind == value.KindString && !col.IsNull(r) {
			n += int64(len(col.strs[r]))
		}
	}
	return n
}

// NonNullMask64 returns the non-null attribute mask of visible row i as
// a uint64; ok is false when the arity exceeds 64 (callers fall back to
// the Mask path).
func (b *Batch) NonNullMask64(i int) (uint64, bool) {
	if len(b.cols) > 64 {
		return 0, false
	}
	r := b.RowID(i)
	var m uint64
	for c := range b.cols {
		if !b.cols[c].IsNull(r) {
			m |= 1 << uint(c)
		}
	}
	return m, true
}

// Remapped returns a view of b over the target scheme: column t of the
// view is column perm[t] of b, or an all-null column when perm[t] < 0.
// Columns are shared, not copied — remapping is how projection onto a
// wider padded scheme (PadTo) and pure column-permutation projections
// execute in O(arity) instead of O(rows·arity). The view shares b's
// selection vector and lifetime.
func (b *Batch) Remapped(target *Scheme, perm []int) *Batch {
	out := &Batch{scheme: target, cols: make([]ColVec, len(perm)), n: b.n, sel: b.sel}
	var nullCol ColVec
	nullBuilt := false
	for t, p := range perm {
		if p >= 0 {
			out.cols[t] = b.cols[p]
		} else {
			if !nullBuilt {
				nullCol = allNullVec(b.n)
				nullBuilt = true
			}
			out.cols[t] = nullCol
		}
	}
	return out
}

// PadPerm computes the Remapped permutation that pads/aligns rows of
// scheme from onto scheme to: position t of to reads position
// PadPerm[t] of from, or null when from lacks the attribute. It is the
// columnar equivalent of Tuple.PadTo (and of Tuple.Project when every
// attribute is present).
func PadPerm(from, to *Scheme) []int {
	perm := make([]int, to.Arity())
	for t, n := range to.Names() {
		perm[t] = from.Index(n)
	}
	return perm
}

// BatchFromRelation builds a column-major copy of r's tuples. The fill
// runs column-wise: each column sniffs its kind from the first non-null
// cell and bulk-fills the typed vector, falling back to generic appends
// only when a kind conflict forces mixed storage.
func BatchFromRelation(r *Relation) *Batch {
	b := NewBatch(r.Scheme())
	tuples := r.Tuples()
	n := len(tuples)
	if n == 0 {
		return b
	}
	b.n = n
	words := (n + 63) / 64
	for c := range b.cols {
		col := &b.cols[c]
		col.nulls = make([]uint64, words)
		col.n = n
		// Sniff the column kind from the first non-null cell.
		kind := value.KindNull
		for _, t := range tuples {
			if v := t.At(c); !v.IsNull() {
				kind = v.Kind()
				break
			}
		}
		col.kind = kind
		switch kind {
		case value.KindNull:
			for w := range col.nulls {
				col.nulls[w] = ^uint64(0)
			}
			if tail := uint(n) & 63; tail != 0 {
				col.nulls[words-1] = (1 << tail) - 1
			}
			continue
		case value.KindInt:
			col.ints = make([]int64, n)
		case value.KindFloat:
			col.floats = make([]float64, n)
		case value.KindString:
			col.strs = make([]string, n)
		case value.KindBool:
			col.bools = make([]bool, n)
		}
		for i, t := range tuples {
			v := t.At(c)
			if v.IsNull() {
				col.setNull(i)
				continue
			}
			if v.Kind() != kind {
				// Kind conflict: rebuild this column generically.
				col.Reset()
				col.nulls = make([]uint64, words)
				for _, u := range tuples {
					col.Append(u.At(c))
				}
				break
			}
			switch kind {
			case value.KindInt:
				col.ints[i] = v.IntVal()
			case value.KindFloat:
				col.floats[i] = v.FloatVal()
			case value.KindString:
				col.strs[i] = v.Str()
			case value.KindBool:
				col.bools[i] = v.BoolVal()
			}
		}
	}
	return b
}

// AppendBatch materializes every visible row of b as a tuple of r. The
// value storage of the whole batch is carved from one slab, so a large
// materialization performs O(batches) allocations, not O(rows).
func (r *Relation) AppendBatch(b *Batch) {
	n := b.Len()
	if n == 0 {
		return
	}
	w := b.scheme.Arity()
	slab := make([]value.Value, n*w)
	for i := 0; i < n; i++ {
		row := b.RowID(i)
		vals := slab[i*w : (i+1)*w : (i+1)*w]
		for c := 0; c < w; c++ {
			vals[c] = b.cols[c].Value(row)
		}
		r.tuples = append(r.tuples, Tuple{scheme: r.scheme, vals: vals})
	}
	r.version++
}

// BorrowTuple wraps positional values as a Tuple over s WITHOUT
// copying. The caller keeps ownership of vals: the Tuple is only valid
// while vals is unchanged. Columnar kernels use this to run row-wise
// predicates against scratch buffers without per-row allocation.
func BorrowTuple(s *Scheme, vals []value.Value) Tuple {
	if len(vals) != s.Arity() {
		panic("relation: BorrowTuple arity mismatch")
	}
	return Tuple{scheme: s, vals: vals}
}
