package relation

// Per-relation statistics for the cost-based planner, plus the cached
// columnar view. Both are derived from the tuple store and keyed on the
// relation's version counter: a cache entry whose version matches the
// relation is current, anything else is recomputed. Statistics are
// additionally maintained incrementally across append-only growth —
// the common mutation pattern (ingest, delta maintenance inserts) —
// by folding just the new tail of tuples into the retained per-column
// distinct-hash sets. Any structural mutation (RemoveAt, InsertAt,
// in-place reorder) bumps structMut and forces a full rebuild.
//
// Concurrency model matches the rest of Relation: any number of
// concurrent readers OR one mutator. Stats()/Columns() count as
// readers; the internal mutex only serializes cache (re)computation
// between concurrent readers.

import (
	"sync"
	"sync/atomic"
)

// Stats summarizes a relation for cardinality estimation.
type Stats struct {
	// Version is the relation version the statistics describe; compare
	// with Relation.Version() to measure freshness.
	Version uint64
	// Rows is the tuple count (duplicates included).
	Rows int
	// Distinct[i] estimates the number of distinct non-null values in
	// column i. It counts distinct canonical value hashes, so it is
	// exact up to 64-bit hash collisions.
	Distinct []int64
	// Nulls[i] counts null cells in column i.
	Nulls []int64
}

// DistinctOn returns the distinct-value estimate for the given column,
// never less than 1 when the column has any non-null cell (so selectivity
// divisions are safe).
func (s *Stats) DistinctOn(col int) int64 {
	if s == nil || col < 0 || col >= len(s.Distinct) {
		return 1
	}
	if d := s.Distinct[col]; d > 0 {
		return d
	}
	return 1
}

// relCache is the version-keyed derived state of a relation.
type relCache struct {
	version   uint64
	structMut uint64
	rows      int
	stats     *Stats
	colSets   []map[uint64]struct{} // distinct-hash sets backing stats
	batch     *Batch                // columnar view (nil until requested)
}

// statsCache holds the atomic cache pointer and the recompute lock; it
// lives in its own struct so Relation literals elsewhere in the package
// stay valid.
type statsCache struct {
	mu  sync.Mutex
	ptr atomic.Pointer[relCache]
}

// cacheState lazily allocates the relation's cache holder.
func (r *Relation) cacheState() *statsCache {
	c := r.cache.Load()
	if c == nil {
		c = &statsCache{}
		if !r.cache.CompareAndSwap(nil, c) {
			c = r.cache.Load()
		}
	}
	return c
}

// invalidateDerived drops the derived-state cache entirely. Called by
// mutations that reorder or rewrite tuples in place (SortByKey), which
// the version/structMut counters cannot otherwise observe.
func (r *Relation) invalidateDerived() {
	if c := r.cache.Load(); c != nil {
		c.ptr.Store(nil)
	}
}

// noteStructMut records a non-append mutation, forcing the next stats
// computation to rebuild instead of folding in a tail.
func (r *Relation) noteStructMut() { r.structMut++ }

// Stats returns current statistics for the relation, computing or
// incrementally extending the cached ones as needed.
func (r *Relation) Stats() *Stats {
	cs := r.cacheState()
	if c := cs.ptr.Load(); c != nil && c.version == r.version && c.stats != nil {
		return c.stats
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	c := cs.ptr.Load()
	if c != nil && c.version == r.version && c.stats != nil {
		return c.stats
	}
	w := r.scheme.Arity()
	var (
		sets  []map[uint64]struct{}
		nulls []int64
		start int
	)
	if c != nil && c.stats != nil && c.structMut == r.structMut && c.rows <= len(r.tuples) {
		// Append-only growth since the cached entry: extend in place.
		sets = c.colSets
		nulls = append([]int64(nil), c.stats.Nulls...)
		start = c.rows
	} else {
		sets = make([]map[uint64]struct{}, w)
		for i := range sets {
			sets[i] = make(map[uint64]struct{})
		}
		nulls = make([]int64, w)
	}
	for _, t := range r.tuples[start:] {
		for ci := 0; ci < w; ci++ {
			v := t.At(ci)
			if v.IsNull() {
				nulls[ci]++
				continue
			}
			sets[ci][v.Hash64()] = struct{}{}
		}
	}
	st := &Stats{
		Version:  r.version,
		Rows:     len(r.tuples),
		Distinct: make([]int64, w),
		Nulls:    nulls,
	}
	for i := range sets {
		st.Distinct[i] = int64(len(sets[i]))
	}
	next := &relCache{
		version:   r.version,
		structMut: r.structMut,
		rows:      len(r.tuples),
		stats:     st,
		colSets:   sets,
	}
	if c != nil && c.version == r.version {
		next.batch = c.batch
	}
	cs.ptr.Store(next)
	return st
}

// CachedStats returns the cached statistics entry without computing
// anything, or nil when none is resident. The entry's Version may lag
// Relation.Version(); callers compare them to report freshness.
func (r *Relation) CachedStats() *Stats {
	if c := r.cacheState().ptr.Load(); c != nil && c.stats != nil {
		return c.stats
	}
	return nil
}

// Columns returns a column-major view of the relation's tuples, cached
// until the next mutation. The caller must treat it as read-only; the
// same *Batch may be served to many readers.
func (r *Relation) Columns() *Batch {
	cs := r.cacheState()
	if c := cs.ptr.Load(); c != nil && c.version == r.version && c.batch != nil {
		return c.batch
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	c := cs.ptr.Load()
	if c != nil && c.version == r.version && c.batch != nil {
		return c.batch
	}
	b := BatchFromRelation(r)
	next := &relCache{version: r.version, structMut: r.structMut, batch: b}
	if c != nil && c.version == r.version {
		next.rows = c.rows
		next.stats = c.stats
		next.colSets = c.colSets
	}
	cs.ptr.Store(next)
	return b
}
