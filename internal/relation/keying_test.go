package relation

import (
	"testing"

	"clio/internal/value"
)

// Regression: the pre-framing tuple encoding ("\x00"+tag+payload per
// value, "\x01" after each) was not self-delimiting — a string payload
// containing the separator and tag bytes could shift bytes across the
// value boundary. The tuples ("a\x01\x00sb", "c") and
// ("a", "b\x01\x00sc") both encoded to
// "\x00sa\x01\x00sb\x01\x00sc\x01" and collided in every map keyed by
// Tuple.Key. The length-framed encoding and the length-mixing Hash64
// must keep them apart.
func TestKeyCollisionRegression(t *testing.T) {
	s := NewScheme("R.a", "R.b")
	t1 := NewTuple(s, value.String("a\x01\x00sb"), value.String("c"))
	t2 := NewTuple(s, value.String("a"), value.String("b\x01\x00sc"))

	oldEncode := func(tu Tuple) string {
		return "\x00s" + tu.At(0).Str() + "\x01" + "\x00s" + tu.At(1).Str() + "\x01"
	}
	if oldEncode(t1) != oldEncode(t2) {
		t.Fatal("regression fixture drifted: the historical encodings no longer collide")
	}
	if t1.Key() == t2.Key() {
		t.Errorf("Key still collides: %q", t1.Key())
	}
	if t1.Hash64() == t2.Hash64() {
		t.Errorf("Hash64 collides on the regression pair: %#x", t1.Hash64())
	}
	pos := []int{0, 1}
	if t1.KeyOn(pos) == t2.KeyOn(pos) {
		t.Errorf("KeyOn still collides: %q", t1.KeyOn(pos))
	}
	if t1.HashOn(pos) == t2.HashOn(pos) {
		t.Errorf("HashOn collides on the regression pair: %#x", t1.HashOn(pos))
	}
}

// The framed encoding must also keep adjacent values apart when only
// the split point differs — ("ab", "c") vs ("a", "bc") — and keep
// kinds apart when payloads render identically — Int(1) vs String
// encodings of the same digits are distinct, while Int(2) and
// Float(2) compare equal and must share key and hash.
func TestKeyFramingAndKindTags(t *testing.T) {
	s := NewScheme("R.a", "R.b")
	if NewTuple(s, value.String("ab"), value.String("c")).Key() ==
		NewTuple(s, value.String("a"), value.String("bc")).Key() {
		t.Error("split-point shift collides under Key")
	}
	if NewTuple(s, value.String("ab"), value.String("c")).Hash64() ==
		NewTuple(s, value.String("a"), value.String("bc")).Hash64() {
		t.Error("split-point shift collides under Hash64")
	}
	one := NewScheme("R.a")
	if NewTuple(one, value.Int(1)).Key() == NewTuple(one, value.String("1")).Key() {
		t.Error("Int and String with equal rendering share a key")
	}
	i2 := NewTuple(one, value.Int(2))
	f2 := NewTuple(one, value.Float(2))
	if i2.Key() != f2.Key() || i2.Hash64() != f2.Hash64() {
		t.Error("numerically equal Int and Float must share key and hash")
	}
}
