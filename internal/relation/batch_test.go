package relation

import (
	"math"
	"math/rand"
	"testing"

	"clio/internal/value"
)

// randValue draws from every kind, including the numeric edge cases the
// canonical hash normalizes (NaN, -0.0, cross-kind int/float equality).
func randValue(rng *rand.Rand) value.Value {
	switch rng.Intn(12) {
	case 0, 1:
		return value.Null
	case 2:
		return value.Int(int64(rng.Intn(7) - 3))
	case 3:
		return value.Int(rng.Int63() - rng.Int63())
	case 4:
		return value.Float(rng.NormFloat64() * 100)
	case 5:
		return value.Float(math.NaN())
	case 6:
		return value.Float(math.Copysign(0, -1))
	case 7:
		return value.Float(float64(int64(rng.Intn(7) - 3))) // collides with small ints
	case 8:
		return value.Bool(rng.Intn(2) == 0)
	case 9:
		return value.String("")
	default:
		letters := []byte("abcxyz;:ns123")
		n := rng.Intn(9)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		return value.String(string(b))
	}
}

func randTuple(rng *rand.Rand, s *Scheme) Tuple {
	vals := make([]value.Value, s.Arity())
	for i := range vals {
		vals[i] = randValue(rng)
	}
	return NewTuple(s, vals...)
}

// uniformTuple keeps each column single-kinded so the typed (non-mixed)
// vector paths are exercised.
func uniformTuple(rng *rand.Rand, s *Scheme) Tuple {
	vals := make([]value.Value, s.Arity())
	for i := range vals {
		if rng.Intn(4) == 0 {
			vals[i] = value.Null
			continue
		}
		switch i % 4 {
		case 0:
			vals[i] = value.Int(int64(rng.Intn(50)))
		case 1:
			vals[i] = value.Float(rng.Float64())
		case 2:
			vals[i] = value.String(string(rune('a' + rng.Intn(26))))
		case 3:
			vals[i] = value.Bool(rng.Intn(2) == 0)
		}
	}
	return NewTuple(s, vals...)
}

// TestBatchHashKeyIdentity is the load-bearing property of the columnar
// layer: batch-computed row hashes and keys are bit-identical to the
// row-major Tuple ones, for both typed and mixed columns, with and
// without a selection vector.
func TestBatchHashKeyIdentity(t *testing.T) {
	s := NewScheme("a", "b", "c", "d", "e")
	for _, mode := range []string{"mixed", "uniform"} {
		rng := rand.New(rand.NewSource(7))
		tuples := make([]Tuple, 64)
		b := NewBatch(s)
		for i := range tuples {
			if mode == "mixed" {
				tuples[i] = randTuple(rng, s)
			} else {
				tuples[i] = uniformTuple(rng, s)
			}
			b.AppendTuple(tuples[i])
		}

		hashes := make([]uint64, b.Len())
		var rowScratch []int32
		b.HashRows(hashes, rowScratch)
		for i, tp := range tuples {
			if hashes[i] != tp.Hash64() {
				t.Fatalf("%s: row %d HashRows=%x Tuple.Hash64=%x (%v)", mode, i, hashes[i], tp.Hash64(), tp)
			}
			key := b.AppendKeyRow(nil, i)
			if string(key) != tp.Key() {
				t.Fatalf("%s: row %d AppendKeyRow=%q Tuple.Key=%q", mode, i, key, tp.Key())
			}
			got := b.Tuple(i)
			if !got.Equal(tp) {
				t.Fatalf("%s: row %d round-trip mismatch: %v vs %v", mode, i, got, tp)
			}
		}

		pos := []int{1, 3}
		on := make([]uint64, b.Len())
		b.HashRowsOn(pos, on, rowScratch)
		for i, tp := range tuples {
			if on[i] != tp.HashOn(pos) {
				t.Fatalf("%s: row %d HashRowsOn mismatch", mode, i)
			}
		}

		// Selection vector: keep every third row; hashes follow it.
		var sel []int32
		for i := 0; i < len(tuples); i += 3 {
			sel = append(sel, int32(i))
		}
		b.SetSel(sel)
		selHashes := make([]uint64, b.Len())
		b.HashRows(selHashes, rowScratch)
		for j, phys := range sel {
			if selHashes[j] != tuples[phys].Hash64() {
				t.Fatalf("%s: selected row %d hash mismatch", mode, j)
			}
			if !b.Tuple(j).Equal(tuples[phys]) {
				t.Fatalf("%s: selected row %d tuple mismatch", mode, j)
			}
		}
	}
}

func TestBatchNullAndEqualHelpers(t *testing.T) {
	s := NewScheme("x", "y", "z")
	b := NewBatch(s)
	b.AppendValues(value.Int(1), value.Null, value.String("p"))
	b.AppendValues(value.Int(1), value.Null, value.String("p"))
	b.AppendValues(value.Null, value.Bool(true), value.String("q"))

	if !b.IsNull(0, 1) || b.IsNull(0, 0) {
		t.Fatal("IsNull wrong")
	}
	if !b.EqualRows(0, b, 1) || b.EqualRows(0, b, 2) {
		t.Fatal("EqualRows wrong")
	}
	if !b.HasNullAt(2, []int{0}) || b.HasNullAt(0, []int{0, 2}) {
		t.Fatal("HasNullAt wrong")
	}
	m, ok := b.NonNullMask64(0)
	if !ok || m != 0b101 {
		t.Fatalf("NonNullMask64 = %b, %v", m, ok)
	}
	want := b.Tuple(0).ApproxBytes()
	if got := b.ApproxBytesRow(0); got != want {
		t.Fatalf("ApproxBytesRow=%d Tuple.ApproxBytes=%d", got, want)
	}
}

// TestBatchRemapped checks zero-copy pad/projection: remapping onto a
// wider scheme matches Tuple.PadTo, and onto a narrower one matches
// Tuple.Project.
func TestBatchRemapped(t *testing.T) {
	from := NewScheme("a", "b")
	wide := NewScheme("z", "a", "q", "b")
	rng := rand.New(rand.NewSource(3))
	b := NewBatch(from)
	tuples := make([]Tuple, 20)
	for i := range tuples {
		tuples[i] = randTuple(rng, from)
		b.AppendTuple(tuples[i])
	}
	padded := b.Remapped(wide, PadPerm(from, wide))
	for i, tp := range tuples {
		want := tp.PadTo(wide)
		if !padded.Tuple(i).Equal(want) {
			t.Fatalf("row %d padded mismatch: %v vs %v", i, padded.Tuple(i), want)
		}
		key := padded.AppendKeyRow(nil, i)
		if string(key) != want.Key() {
			t.Fatalf("row %d padded key mismatch", i)
		}
	}
	narrow := NewScheme("b")
	proj := b.Remapped(narrow, PadPerm(from, narrow))
	for i, tp := range tuples {
		if !proj.Tuple(i).Equal(tp.Project(narrow)) {
			t.Fatalf("row %d projection mismatch", i)
		}
	}
	// The view shares selection with its base.
	b.SetSel([]int32{4, 9})
	padded = b.Remapped(wide, PadPerm(from, wide))
	if padded.Len() != 2 || !padded.Tuple(1).Equal(tuples[9].PadTo(wide)) {
		t.Fatal("remapped view does not follow selection")
	}
	b.SetSel(nil)
}

func TestRelationAppendBatchAndSort(t *testing.T) {
	s := NewScheme("a", "b", "c")
	rng := rand.New(rand.NewSource(11))
	b := NewBatch(s)
	var want []Tuple
	for i := 0; i < 50; i++ {
		tp := randTuple(rng, s)
		want = append(want, tp)
		b.AppendTuple(tp)
	}
	r := New("r", s)
	r.AppendBatch(b)
	if r.Len() != len(want) {
		t.Fatalf("AppendBatch len=%d want %d", r.Len(), len(want))
	}
	for i, tp := range want {
		if !r.At(i).Equal(tp) {
			t.Fatalf("AppendBatch row %d mismatch", i)
		}
	}

	// SortByKey must order exactly like the naive per-tuple-Key sort.
	naive := r.Clone()
	naiveSorted := naive.Sorted()
	r.SortByKey()
	for i := 0; i < r.Len(); i++ {
		if r.At(i).Key() != naiveSorted.At(i).Key() {
			t.Fatalf("SortByKey row %d: %q vs naive %q", i, r.At(i).Key(), naiveSorted.At(i).Key())
		}
	}
}

func TestRelationStats(t *testing.T) {
	s := NewScheme("k", "v")
	r := New("r", s)
	r.AddValues(value.Int(1), value.String("a"))
	r.AddValues(value.Int(2), value.String("a"))
	r.AddValues(value.Int(2), value.Null)

	st := r.Stats()
	if st.Rows != 3 || st.Version != r.Version() {
		t.Fatalf("stats rows/version = %d/%d", st.Rows, st.Version)
	}
	if st.Distinct[0] != 2 || st.Distinct[1] != 1 {
		t.Fatalf("distinct = %v", st.Distinct)
	}
	if st.Nulls[0] != 0 || st.Nulls[1] != 1 {
		t.Fatalf("nulls = %v", st.Nulls)
	}
	if r.Stats() != st {
		t.Fatal("stats not cached")
	}

	// Append-only growth extends incrementally.
	r.AddValues(value.Int(3), value.String("b"))
	st2 := r.Stats()
	if st2.Rows != 4 || st2.Distinct[0] != 3 || st2.Distinct[1] != 2 {
		t.Fatalf("incremental stats = %+v", st2)
	}

	// Cross-kind numeric identity: Int(2) and Float(2) hash equal, so
	// they count as one distinct value — consistent with Equal.
	r.AddValues(value.Float(2), value.Null)
	if st3 := r.Stats(); st3.Distinct[0] != 3 {
		t.Fatalf("numeric-kind distinct = %d", st3.Distinct[0])
	}

	// Structural mutation forces a rebuild with correct results.
	r.RemoveAt(0)
	st4 := r.Stats()
	if st4.Rows != 4 || st4.Distinct[0] != 2 {
		t.Fatalf("post-remove stats = %+v", st4)
	}
}

func TestRelationColumnsCache(t *testing.T) {
	s := NewScheme("k")
	r := New("r", s)
	r.AddValues(value.Int(1))
	r.AddValues(value.Int(9))

	b := r.Columns()
	if b.Len() != 2 || !b.Value(1, 0).Equal(value.Int(9)) {
		t.Fatal("Columns content wrong")
	}
	if r.Columns() != b {
		t.Fatal("Columns not cached")
	}
	r.AddValues(value.Int(5))
	b2 := r.Columns()
	if b2 == b || b2.Len() != 3 {
		t.Fatal("Columns cache not invalidated by Add")
	}
	// SortByKey reorders without a version bump; the cache must notice.
	r.SortByKey()
	b3 := r.Columns()
	if b3 == b2 {
		t.Fatal("Columns cache not invalidated by SortByKey")
	}
	if !b3.Value(0, 0).Equal(r.At(0).At(0)) {
		t.Fatal("Columns stale after sort")
	}
}

func TestColVecMixedMigration(t *testing.T) {
	var c ColVec
	c.Append(value.Null)
	c.Append(value.Int(4))
	c.Append(value.Int(7))
	if k, ok := c.Kind(); !ok || k != value.KindInt {
		t.Fatalf("kind = %v, %v", k, ok)
	}
	c.Append(value.String("x")) // forces mixed migration
	if _, ok := c.Kind(); ok {
		t.Fatal("expected mixed column")
	}
	want := []value.Value{value.Null, value.Int(4), value.Int(7), value.String("x")}
	for i, w := range want {
		if !c.Value(i).Equal(w) {
			t.Fatalf("cell %d = %v want %v", i, c.Value(i), w)
		}
		if c.IsNull(i) != w.IsNull() {
			t.Fatalf("cell %d null flag wrong", i)
		}
	}
}
