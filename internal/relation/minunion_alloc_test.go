package relation

import (
	"testing"

	"clio/internal/value"
)

// The columnar subsumption drain over n heavily-duplicated null-rich
// rows must allocate O(survivors + columns), not O(n): the per-row
// work is per-column hash mixing, an open-addressed dedup probe, and
// bitmask grouping — none of which allocate per tuple.
func TestRemoveSubsumedBatchAllocsDoNotScalePerTuple(t *testing.T) {
	const n = 4096
	s := NewScheme("a", "b", "c")
	b := NewBatch(s)
	// 32 distinct rows, each repeated n/32 times, with a null pattern
	// so the subsumption sweep (not just dedup) does real work.
	for i := 0; i < n; i++ {
		k := int64(i % 32)
		if k%4 == 0 {
			b.AppendValues(value.Int(k), value.Null, value.Null)
		} else {
			b.AppendValues(value.Int(k), value.Int(k%8), value.String("s"))
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		RemoveSubsumedBatch("R", b)
	})
	if allocs >= n/4 {
		t.Errorf("columnar subsumption drain allocated %.0f times for %d rows — scales per tuple", allocs, n)
	}
}
