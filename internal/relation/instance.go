package relation

import (
	"fmt"
	"sort"

	"clio/internal/schema"
)

// Instance is a database instance: named relation instances plus the
// schema they conform to. By convention, the instance relation named R
// has scheme attributes qualified as "R.attr"; aliased copies rename
// the qualifier.
type Instance struct {
	Schema *schema.Database
	rels   map[string]*Relation
	order  []string
}

// NewInstance creates an empty instance of the given schema.
func NewInstance(sch *schema.Database) *Instance {
	return &Instance{Schema: sch, rels: map[string]*Relation{}}
}

// SchemeFor builds the qualified scheme for a schema relation, e.g.
// Children(ID, name) → (Children.ID, Children.name).
func SchemeFor(r *schema.Relation) *Scheme {
	return NewScheme(r.QualifiedNames()...)
}

// NewRelationFor creates an empty relation instance for the named
// schema relation. It panics if the relation is not in the schema.
func (in *Instance) NewRelationFor(name string) *Relation {
	sr := in.Schema.Relation(name)
	if sr == nil {
		panic(fmt.Sprintf("relation: schema has no relation %q", name))
	}
	return New(name, SchemeFor(sr))
}

// Add registers a relation instance. It returns an error on duplicate
// names or if the schema does not declare the relation.
func (in *Instance) Add(r *Relation) error {
	if in.Schema != nil && in.Schema.Relation(r.Name) == nil {
		return fmt.Errorf("relation: instance relation %q not in schema", r.Name)
	}
	if _, dup := in.rels[r.Name]; dup {
		return fmt.Errorf("relation: duplicate instance relation %q", r.Name)
	}
	in.rels[r.Name] = r
	in.order = append(in.order, r.Name)
	return nil
}

// MustAdd is Add that panics on error.
func (in *Instance) MustAdd(r *Relation) {
	if err := in.Add(r); err != nil {
		panic(err)
	}
}

// Relation returns the named relation instance, or nil.
func (in *Instance) Relation(name string) *Relation { return in.rels[name] }

// Names returns the instance relation names in registration order.
func (in *Instance) Names() []string {
	out := make([]string, len(in.order))
	copy(out, in.order)
	return out
}

// Relations returns the instances in registration order.
func (in *Instance) Relations() []*Relation {
	out := make([]*Relation, 0, len(in.order))
	for _, n := range in.order {
		out = append(out, in.rels[n])
	}
	return out
}

// Aliased returns the named base relation re-qualified under an alias
// (the paper's relation copies: Parents → Parents2). If alias equals
// the base name the stored relation is returned unchanged.
func (in *Instance) Aliased(base, alias string) (*Relation, error) {
	r := in.rels[base]
	if r == nil {
		return nil, fmt.Errorf("relation: instance has no relation %q", base)
	}
	if alias == base {
		return r, nil
	}
	rename := make(map[string]string, r.Scheme().Arity())
	for _, qn := range r.Scheme().Names() {
		ref, err := schema.ParseColumnRef(qn)
		if err != nil {
			return nil, err
		}
		rename[qn] = alias + "." + ref.Attr
	}
	return r.Rename(alias, rename), nil
}

// TotalTuples returns the total tuple count across all relations.
func (in *Instance) TotalTuples() int {
	n := 0
	for _, r := range in.rels {
		n += r.Len()
	}
	return n
}

// Version returns the sum of all relation mutation counters. Any
// mutation of any relation in the instance changes it, so callers can
// cheaply detect "the instance changed since I last looked".
func (in *Instance) Version() uint64 {
	var v uint64
	for _, r := range in.rels {
		v += r.Version()
	}
	return v
}

// Sample returns a deterministic pseudo-random sample of at most n
// tuples from r (reservoir sampling with a fixed linear-congruential
// stream). Sampling keeps illustrations responsive on large sources —
// the paper's companion discussion of large data volumes.
func Sample(r *Relation, n int, seed int64) *Relation {
	if n <= 0 || r.Len() <= n {
		return r.Clone()
	}
	out := New(r.Name, r.Scheme())
	idx := make([]int, n)
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func(bound int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % bound
	}
	for i := 0; i < r.Len(); i++ {
		if i < n {
			idx[i] = i
			continue
		}
		if j := next(i + 1); j < n {
			idx[j] = i
		}
	}
	sort.Ints(idx)
	for _, i := range idx {
		out.Add(r.At(i))
	}
	return out
}

// SampleInstance samples every relation of an instance down to at
// most n tuples each, preserving the schema.
func SampleInstance(in *Instance, n int, seed int64) *Instance {
	out := NewInstance(in.Schema)
	for _, name := range in.Names() {
		out.MustAdd(Sample(in.Relation(name), n, seed))
	}
	return out
}
