package relation

import (
	"testing"

	"clio/internal/value"
)

func TestVersionBumpsOnAdd(t *testing.T) {
	s := NewScheme("A.k")
	r := New("A", s)
	if r.Version() != 0 {
		t.Fatalf("fresh relation version = %d, want 0", r.Version())
	}
	r.AddValues(value.Int(1))
	r.AddValues(value.Int(2))
	if r.Version() != 2 {
		t.Errorf("version after two adds = %d, want 2", r.Version())
	}
	c := r.Clone()
	if c.Version() != r.Version() {
		t.Errorf("clone version = %d, want %d", c.Version(), r.Version())
	}
}

func TestFingerprintContentAddressed(t *testing.T) {
	s := NewScheme("A.k", "A.v")
	mk := func(rows ...[2]string) *Relation {
		r := New("A", s)
		for _, row := range rows {
			r.AddRow(row[0], row[1])
		}
		return r
	}
	a := mk([2]string{"1", "x"}, [2]string{"2", "y"})
	b := mk([2]string{"1", "x"}, [2]string{"2", "y"})
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical content must share a fingerprint")
	}
	c := mk([2]string{"1", "x"}, [2]string{"2", "z"})
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different content must not share a fingerprint")
	}
	// Order matters (a relation's stored order is part of its state).
	d := mk([2]string{"2", "y"}, [2]string{"1", "x"})
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("different tuple order must not share a fingerprint")
	}
	// Mutation changes the fingerprint.
	before := a.Fingerprint()
	a.AddRow("3", "w")
	if a.Fingerprint() == before {
		t.Error("mutation must change the fingerprint")
	}
	// Nulls hash distinctly from empty strings.
	e := mk([2]string{"-", "x"})
	f := mk([2]string{"", "x"})
	_ = f // value.Parse maps "" to null too; use explicit values instead
	g := New("A", s)
	g.AddValues(value.String(""), value.String("x"))
	if e.Fingerprint() == g.Fingerprint() {
		t.Error("null and empty string must hash differently")
	}
}

func TestInstanceVersion(t *testing.T) {
	in := NewInstance(instSchema())
	p := in.NewRelationFor("Parents")
	p.AddRow("100", "IBM")
	in.MustAdd(p)
	in.MustAdd(in.NewRelationFor("Children"))
	v := in.Version()
	in.Relation("Children").AddRow("009", "100")
	if in.Version() != v+1 {
		t.Errorf("instance version = %d, want %d", in.Version(), v+1)
	}
}
