package relation

import (
	"fmt"
	"math/rand"
	"testing"

	"clio/internal/value"
)

// randomNullableTuple builds a tuple over s with each attribute null
// with probability pNull, values drawn from a tiny domain so tuples
// collide, subsume, and duplicate often.
func randomNullableTuple(rng *rand.Rand, s *Scheme, pNull float64) Tuple {
	vals := make([]value.Value, s.Arity())
	for i := range vals {
		if rng.Float64() < pNull {
			vals[i] = value.Null
		} else {
			vals[i] = value.Int(int64(rng.Intn(3)))
		}
	}
	return NewTuple(s, vals...)
}

// Differential property: after any sequence of inserts and deletes the
// SubsumeSet's maximal front equals RemoveSubsumed over the surviving
// multiset (and the O(n²) naive reference). Deletes remove previously
// inserted occurrences, so the multiset bookkeeping is exercised too.
func TestSubsumeSetMatchesBatchRandomized(t *testing.T) {
	s := NewScheme("a", "b", "c")
	rng := rand.New(rand.NewSource(193))
	for trial := 0; trial < 40; trial++ {
		set := NewSubsumeSet(s)
		var live []Tuple
		steps := 10 + rng.Intn(30)
		for step := 0; step < steps; step++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				tp := live[i]
				live = append(live[:i], live[i+1:]...)
				if !set.Delete(tp) {
					t.Fatalf("trial %d step %d: delete of live tuple %v refused", trial, step, tp)
				}
			} else {
				tp := randomNullableTuple(rng, s, 0.4)
				live = append(live, tp)
				set.Insert(tp)
			}
			batch := FromTuples("live", s, live)
			want := RemoveSubsumed(batch.Distinct())
			wantNaive := RemoveSubsumedNaive(batch.Distinct())
			got := set.Rel("live")
			if !got.EqualSet(want) {
				t.Fatalf("trial %d step %d: incremental front differs from batch\nlive: %v\ngot:\n%v\nwant:\n%v",
					trial, step, live, got, want)
			}
			if !got.EqualSet(wantNaive) {
				t.Fatalf("trial %d step %d: incremental front differs from naive reference", trial, step)
			}
		}
	}
}

// Deleting a tuple that was never inserted (or already fully removed)
// must be refused, not silently diverge.
func TestSubsumeSetDeleteUntracked(t *testing.T) {
	s := NewScheme("a")
	set := NewSubsumeSet(s)
	tp := NewTuple(s, value.Int(1))
	if set.Delete(tp) {
		t.Fatal("delete on empty set should report untracked")
	}
	set.Insert(tp)
	set.Insert(tp)
	if !set.Delete(tp) || !set.Delete(tp) {
		t.Fatal("two inserts must admit two deletes")
	}
	if set.Delete(tp) {
		t.Fatal("third delete should report untracked")
	}
	if got := set.Rel("x").Len(); got != 0 {
		t.Fatalf("emptied set renders %d rows", got)
	}
}

// The rendered relation must be canonical: identical content reached
// through different insert/delete histories renders byte-identically.
func TestSubsumeSetRenderIsHistoryIndependent(t *testing.T) {
	s := NewScheme("a", "b")
	rng := rand.New(rand.NewSource(7))
	tuples := make([]Tuple, 8)
	for i := range tuples {
		tuples[i] = randomNullableTuple(rng, s, 0.3)
	}
	// History 1: straight inserts. History 2: inserts in reverse with
	// noise tuples added and removed along the way.
	a := NewSubsumeSet(s)
	for _, tp := range tuples {
		a.Insert(tp)
	}
	b := NewSubsumeSet(s)
	noise := NewTuple(s, value.Int(9), value.Int(9))
	for i := len(tuples) - 1; i >= 0; i-- {
		b.Insert(noise)
		b.Insert(tuples[i])
		if !b.Delete(noise) {
			t.Fatal("noise delete refused")
		}
	}
	ra, rb := a.Rel("x"), b.Rel("x")
	if fmt.Sprint(ra) != fmt.Sprint(rb) {
		t.Fatalf("render depends on history:\n%v\nvs\n%v", ra, rb)
	}
}

// The all-null tuple is maximal exactly while it is alone, and must be
// re-promoted when the last non-null tuple is deleted.
func TestSubsumeSetAllNullLifecycle(t *testing.T) {
	s := NewScheme("a", "b")
	set := NewSubsumeSet(s)
	allNull := NewTuple(s, value.Null, value.Null)
	set.Insert(allNull)
	if got := set.Rel("x").Len(); got != 1 {
		t.Fatalf("lone all-null tuple not maximal: %d rows", got)
	}
	other := NewTuple(s, value.Int(1), value.Null)
	set.Insert(other)
	if got := set.Rel("x"); got.Len() != 1 || got.At(0).Get("a").IsNull() {
		t.Fatalf("all-null tuple not demoted by non-null insert:\n%v", got)
	}
	if !set.Delete(other) {
		t.Fatal("delete refused")
	}
	if got := set.Rel("x").Len(); got != 1 {
		t.Fatalf("all-null tuple not re-promoted after delete: %d rows", got)
	}
}

// InsertPruning unit coverage for the three spill-replay paths: exact
// duplicates bump the count without displacing, tuples subsumed on
// arrival are rejected, and an arriving tuple evicts every live entry
// it subsumes — returning each exactly once so the caller can refund
// its budget charges.
func TestSubsumeSetInsertPruningPaths(t *testing.T) {
	s := NewScheme("a", "b", "c")
	tup := func(vs ...value.Value) Tuple { return NewTuple(s, vs...) }
	i := func(n int64) value.Value { return value.Int(n) }

	set := NewSubsumeSet(s)

	// Fresh maximal tuple: inserted, nothing displaced.
	partial := tup(i(1), value.Null, value.Null)
	if d, ok := set.InsertPruning(partial); !ok || len(d) != 0 {
		t.Fatalf("fresh insert: displaced=%v inserted=%v", d, ok)
	}

	// Exact duplicate: not inserted, nothing displaced, Len unchanged.
	if d, ok := set.InsertPruning(tup(i(1), value.Null, value.Null)); ok || len(d) != 0 {
		t.Fatalf("duplicate insert: displaced=%v inserted=%v", d, ok)
	}
	if set.Len() != 1 {
		t.Fatalf("len after duplicate = %d, want 1", set.Len())
	}

	// A second incomparable partial, then a complete tuple subsuming
	// both: both must come back displaced (once each) and leave the set.
	other := tup(value.Null, i(2), value.Null)
	if _, ok := set.InsertPruning(other); !ok {
		t.Fatal("incomparable partial rejected")
	}
	complete := tup(i(1), i(2), i(3))
	d, ok := set.InsertPruning(complete)
	if !ok || len(d) != 2 {
		t.Fatalf("subsuming insert: displaced=%d inserted=%v, want 2 displaced", len(d), ok)
	}
	seen := map[string]bool{}
	for _, v := range d {
		seen[v.Key()] = true
	}
	if !seen[partial.Key()] || !seen[other.Key()] {
		t.Fatalf("displaced set %v missing a victim", d)
	}
	if set.Len() != 1 {
		t.Fatalf("len after eviction = %d, want 1", set.Len())
	}

	// Subsumed on arrival: rejected with no displacement, even though
	// the arriving tuple is novel.
	if d, ok := set.InsertPruning(tup(i(1), value.Null, i(3))); ok || len(d) != 0 {
		t.Fatalf("subsumed arrival: displaced=%v inserted=%v", d, ok)
	}

	// The surviving front is exactly the complete tuple.
	front := set.Rel("r")
	if front.Len() != 1 || !front.Tuples()[0].Equal(complete) {
		t.Fatalf("front = %v, want just %v", front.Tuples(), complete)
	}
}
