package relation

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"clio/internal/value"
)

// adversarialValue draws from a pool built to stress hashed keying:
// nulls, tag and separator bytes inside strings, cross-kind numeric
// equals (Int 2 vs Float 2), NaN, and signed zero.
func adversarialValue(rng *rand.Rand) value.Value {
	switch rng.Intn(10) {
	case 0:
		return value.Null
	case 1:
		return value.String("")
	case 2:
		return value.String("a\x01\x00sb")
	case 3:
		return value.String("b\x01\x00sc")
	case 4:
		return value.String(string(rune('a' + rng.Intn(3))))
	case 5:
		return value.Int(int64(rng.Intn(3)))
	case 6:
		return value.Float(float64(rng.Intn(3)))
	case 7:
		return value.Float(math.NaN())
	case 8:
		return value.Float(math.Copysign(0, -1))
	default:
		return value.Bool(rng.Intn(2) == 0)
	}
}

// Differential property: the hash-keyed Distinct must agree — same
// survivors, same first-occurrence order — with a reference dedup
// over the canonical string encoding, on value mixes chosen to force
// hash-bucket collisions and cross-kind equality.
func TestDistinctMatchesStringKeyReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	s := NewScheme("a", "b", "c")
	for trial := 0; trial < 300; trial++ {
		r := New("R", s)
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			r.AddValues(adversarialValue(rng), adversarialValue(rng), adversarialValue(rng))
		}
		fast := r.Distinct()
		seen := map[string]bool{}
		ref := New("R", s)
		for _, tu := range r.Tuples() {
			k := tu.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			ref.Add(tu)
		}
		if fast.Len() != ref.Len() {
			t.Fatalf("trial %d: Distinct kept %d tuples, string-key reference %d\ninput:\n%v",
				trial, fast.Len(), ref.Len(), r)
		}
		for i := 0; i < ref.Len(); i++ {
			if fast.At(i).Key() != ref.At(i).Key() {
				t.Fatalf("trial %d: survivor %d differs:\nfast %v\nref  %v",
					trial, i, fast.At(i), ref.At(i))
			}
		}
	}
}

// Differential property: hash-index probes (Hash64 buckets confirmed
// by EqualOn) must return exactly the rows a string-keyed scan finds,
// with nulls on indexed columns never matching.
func TestIndexProbeMatchesStringKeyReference(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	s := NewScheme("a", "b", "c")
	pos := s.Positions("a", "b")
	for trial := 0; trial < 200; trial++ {
		r := New("R", s)
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			r.AddValues(adversarialValue(rng), adversarialValue(rng), adversarialValue(rng))
		}
		ix := r.BuildIndex("a", "b")
		for probe := 0; probe < 10; probe++ {
			q := NewTuple(s, adversarialValue(rng), adversarialValue(rng), adversarialValue(rng))
			got := append([]int(nil), ix.ProbeTuple(q, pos)...)
			var want []int
			if !q.HasNullAt(pos) {
				for i, tu := range r.Tuples() {
					if !tu.HasNullAt(pos) && tu.KeyOn(pos) == q.KeyOn(pos) {
						want = append(want, i)
					}
				}
			}
			sort.Ints(got)
			if len(got) != len(want) {
				t.Fatalf("trial %d: probe %v hit rows %v, reference %v", trial, q, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d: probe %v hit rows %v, reference %v", trial, q, got, want)
				}
			}
		}
	}
}
