package relation

import (
	"testing"

	"clio/internal/schema"
	"clio/internal/value"
)

func instSchema() *schema.Database {
	d := schema.NewDatabase()
	d.MustAddRelation(schema.NewRelation("Parents",
		schema.Attribute{Name: "ID", Type: value.KindString},
		schema.Attribute{Name: "affiliation", Type: value.KindString},
	))
	d.MustAddRelation(schema.NewRelation("Children",
		schema.Attribute{Name: "ID", Type: value.KindString},
		schema.Attribute{Name: "mid", Type: value.KindString},
	))
	return d
}

func TestInstanceBasics(t *testing.T) {
	sch := instSchema()
	in := NewInstance(sch)
	p := in.NewRelationFor("Parents")
	if p.Scheme().Name(0) != "Parents.ID" {
		t.Errorf("qualified scheme wrong: %v", p.Scheme())
	}
	p.AddRow("100", "IBM")
	p.AddRow("101", "UofT")
	in.MustAdd(p)
	if in.Relation("Parents").Len() != 2 {
		t.Error("stored relation wrong")
	}
	if in.Relation("Nope") != nil {
		t.Error("unknown relation should be nil")
	}
	if got := in.Names(); len(got) != 1 || got[0] != "Parents" {
		t.Errorf("Names = %v", got)
	}
	if got := in.Relations(); len(got) != 1 || got[0].Name != "Parents" {
		t.Errorf("Relations = %v", got)
	}
	if in.TotalTuples() != 2 {
		t.Errorf("TotalTuples = %d", in.TotalTuples())
	}
}

func TestInstanceAddErrors(t *testing.T) {
	sch := instSchema()
	in := NewInstance(sch)
	in.MustAdd(in.NewRelationFor("Parents"))
	if err := in.Add(in.NewRelationFor("Parents")); err == nil {
		t.Error("duplicate add should fail")
	}
	if err := in.Add(New("Mystery", NewScheme("Mystery.x"))); err == nil {
		t.Error("relation outside schema should fail")
	}
	// Without a schema, anything goes.
	free := NewInstance(nil)
	if err := free.Add(New("Mystery", NewScheme("Mystery.x"))); err != nil {
		t.Errorf("schema-less add failed: %v", err)
	}
}

func TestNewRelationForUnknownPanics(t *testing.T) {
	in := NewInstance(instSchema())
	defer func() {
		if recover() == nil {
			t.Error("NewRelationFor unknown should panic")
		}
	}()
	in.NewRelationFor("Nope")
}

func TestAliased(t *testing.T) {
	sch := instSchema()
	in := NewInstance(sch)
	p := in.NewRelationFor("Parents")
	p.AddRow("100", "IBM")
	in.MustAdd(p)

	p2, err := in.Aliased("Parents", "Parents2")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Name != "Parents2" || p2.Scheme().Name(0) != "Parents2.ID" {
		t.Errorf("alias wrong: %s %v", p2.Name, p2.Scheme())
	}
	if p2.At(0).Get("Parents2.affiliation").Str() != "IBM" {
		t.Error("alias lost values")
	}
	// Identity alias returns the original.
	same, err := in.Aliased("Parents", "Parents")
	if err != nil || same != p {
		t.Error("identity alias should return stored relation")
	}
	if _, err := in.Aliased("Nope", "X"); err == nil {
		t.Error("aliasing unknown relation should fail")
	}
}

func TestSample(t *testing.T) {
	s := NewScheme("R.a")
	r := New("R", s)
	for i := 0; i < 100; i++ {
		r.AddValues(value.Int(int64(i)))
	}
	got := Sample(r, 10, 1)
	if got.Len() != 10 {
		t.Fatalf("sample len = %d", got.Len())
	}
	// Deterministic.
	again := Sample(r, 10, 1)
	if !got.EqualSet(again) {
		t.Error("sampling not deterministic")
	}
	// Different seed, (very likely) different sample.
	other := Sample(r, 10, 2)
	if got.EqualSet(other) {
		t.Error("different seeds should differ")
	}
	// Every sampled tuple is from the source.
	for _, tp := range got.Tuples() {
		if !r.Contains(tp) {
			t.Errorf("hallucinated tuple %v", tp)
		}
	}
	// Small relations pass through.
	small := Sample(r, 200, 1)
	if small.Len() != 100 {
		t.Error("oversized sample should keep everything")
	}
	if Sample(r, 0, 1).Len() != 100 {
		t.Error("n<=0 keeps everything")
	}
}

func TestSampleInstance(t *testing.T) {
	sch := instSchema()
	in := NewInstance(sch)
	p := in.NewRelationFor("Parents")
	for i := 0; i < 50; i++ {
		p.AddValues(value.Int(int64(i)), value.String("x"))
	}
	in.MustAdd(p)
	c := in.NewRelationFor("Children")
	c.AddRow("c1", "1")
	in.MustAdd(c)
	out := SampleInstance(in, 5, 9)
	if out.Relation("Parents").Len() != 5 {
		t.Errorf("sampled parents = %d", out.Relation("Parents").Len())
	}
	if out.Relation("Children").Len() != 1 {
		t.Error("small relation should be intact")
	}
	if out.Schema != in.Schema {
		t.Error("schema should be shared")
	}
}
