package relation

import (
	"bytes"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync/atomic"

	"clio/internal/value"
)

// Relation is a named, finite set of tuples over a scheme. Tuples are
// stored in insertion order; set semantics (duplicate elimination) are
// applied by the operations that require them.
type Relation struct {
	Name   string
	scheme *Scheme
	tuples []Tuple
	// version counts mutations (every Add bumps it), so caches keyed
	// on relation state can detect staleness without rehashing content.
	version uint64
	// structMut counts non-append mutations (RemoveAt, InsertAt,
	// SortByKey); statistics can be extended incrementally only while
	// it is unchanged. See stats.go.
	structMut uint64
	// cache holds version-keyed derived state (statistics, columnar
	// view); see stats.go.
	cache atomic.Pointer[statsCache]
}

// New creates an empty relation over the scheme.
func New(name string, s *Scheme) *Relation {
	return &Relation{Name: name, scheme: s}
}

// FromTuples creates a relation from existing tuples, which must all
// share the relation's scheme.
func FromTuples(name string, s *Scheme, tuples []Tuple) *Relation {
	r := New(name, s)
	for _, t := range tuples {
		r.Add(t)
	}
	return r
}

// Scheme returns the relation's scheme.
func (r *Relation) Scheme() *Scheme { return r.scheme }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the stored tuples in insertion order. The caller must
// not mutate the returned slice.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// At returns the i-th tuple.
func (r *Relation) At(i int) Tuple { return r.tuples[i] }

// Add appends a tuple, which must be over the relation's scheme.
func (r *Relation) Add(t Tuple) {
	if t.scheme != r.scheme && !t.scheme.Equal(r.scheme) {
		panic(fmt.Sprintf("relation: adding tuple with scheme %v to relation %s%v", t.scheme, r.Name, r.scheme))
	}
	r.tuples = append(r.tuples, t)
	r.version++
}

// Version returns the relation's mutation counter: it starts at zero
// and increases on every mutation (Add, RemoveAt, InsertAt), so equal
// versions of the same relation object imply identical content.
func (r *Relation) Version() uint64 { return r.version }

// RemoveAt removes and returns the i-th tuple, preserving the order of
// the remaining tuples. Like every mutation it bumps the version.
func (r *Relation) RemoveAt(i int) Tuple {
	t := r.tuples[i]
	r.tuples = append(r.tuples[:i], r.tuples[i+1:]...)
	r.version++
	r.structMut++
	return t
}

// InsertAt inserts t at position i, shifting later tuples — the exact
// inverse of RemoveAt at the same position, which is how callers roll
// back a failed delete.
func (r *Relation) InsertAt(i int, t Tuple) {
	if t.scheme != r.scheme && !t.scheme.Equal(r.scheme) {
		panic(fmt.Sprintf("relation: inserting tuple with scheme %v into relation %s%v", t.scheme, r.Name, r.scheme))
	}
	r.tuples = append(r.tuples, Tuple{})
	copy(r.tuples[i+1:], r.tuples[i:])
	r.tuples[i] = t
	r.version++
	r.structMut++
}

// IndexOf returns the position of the first tuple Equal to t, or -1.
func (r *Relation) IndexOf(t Tuple) int {
	for i, u := range r.tuples {
		if u.Equal(t) {
			return i
		}
	}
	return -1
}

// Prefix returns a view of the first n tuples that shares storage with
// r. It is a transient read-only snapshot: it stays valid while r only
// appends (Add), but a RemoveAt/InsertAt on r shifts the shared backing
// array under it.
func (r *Relation) Prefix(n int) *Relation {
	return &Relation{Name: r.Name, scheme: r.scheme, tuples: r.tuples[:n:n]}
}

// Fingerprint returns a 64-bit content hash over the scheme and every
// tuple, in order. Relations with identical schemes and tuple
// sequences share a fingerprint, whatever their name or object
// identity — the basis for content-addressed D(G) caching. It chains
// the canonical value hashes (value.MixHash64) directly, so no key
// strings are materialized.
func (r *Relation) Fingerprint() uint64 {
	h := value.HashSeed()
	for _, n := range r.scheme.Names() {
		h = value.MixBytes(h, n)
	}
	for _, t := range r.tuples {
		h = value.MixUint64(h, t.Hash64())
	}
	return h
}

// AddValues appends a tuple built from positional values.
func (r *Relation) AddValues(vals ...value.Value) {
	r.Add(NewTuple(r.scheme, vals...))
}

// AddRow appends a tuple built by parsing display strings (see
// value.Parse); convenient for fixtures.
func (r *Relation) AddRow(cells ...string) {
	vals := make([]value.Value, len(cells))
	for i, c := range cells {
		vals[i] = value.Parse(c)
	}
	r.AddValues(vals...)
}

// Contains reports whether the relation contains a tuple Equal to t.
func (r *Relation) Contains(t Tuple) bool {
	for _, u := range r.tuples {
		if u.Equal(t) {
			return true
		}
	}
	return false
}

// Distinct returns a new relation with duplicate tuples removed,
// keeping first occurrences. Dedup is hash-keyed: tuples bucket on
// Hash64 and candidates are confirmed with Equal, so no per-tuple key
// strings are allocated. The rare true hash collision spills into an
// overflow bucket list.
func (r *Relation) Distinct() *Relation {
	out := New(r.Name, r.scheme)
	seen := make(map[uint64]int32, len(r.tuples))
	var over map[uint64][]int32
	for i, t := range r.tuples {
		h := t.Hash64()
		if j, ok := seen[h]; ok {
			if r.tuples[j].Equal(t) {
				continue
			}
			dup := false
			for _, k := range over[h] {
				if r.tuples[k].Equal(t) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			if over == nil {
				over = map[uint64][]int32{}
			}
			over[h] = append(over[h], int32(i))
		} else {
			seen[h] = int32(i)
		}
		out.Add(t)
	}
	return out
}

// Filter returns a new relation with the tuples for which keep returns
// true.
func (r *Relation) Filter(keep func(Tuple) bool) *Relation {
	out := New(r.Name, r.scheme)
	for _, t := range r.tuples {
		if keep(t) {
			out.Add(t)
		}
	}
	return out
}

// Project returns a new relation projected onto the given attributes
// (duplicates retained; compose with Distinct for set projection).
func (r *Relation) Project(names ...string) *Relation {
	s := r.scheme.Project(names...)
	out := New(r.Name, s)
	for _, t := range r.tuples {
		out.Add(t.Project(s))
	}
	return out
}

// Rename returns a new relation over a scheme with renamed attributes;
// rename maps old qualified names to new qualified names. Attributes
// not in the map keep their names.
func (r *Relation) Rename(name string, rename map[string]string) *Relation {
	names := make([]string, r.scheme.Arity())
	for i, n := range r.scheme.Names() {
		if nn, ok := rename[n]; ok {
			names[i] = nn
		} else {
			names[i] = n
		}
	}
	s := NewScheme(names...)
	out := New(name, s)
	for _, t := range r.tuples {
		out.Add(Tuple{scheme: s, vals: t.vals})
	}
	return out
}

// Clone returns a deep-enough copy (tuples are immutable, so the tuple
// slice is copied but tuples are shared).
func (r *Relation) Clone() *Relation {
	out := New(r.Name, r.scheme)
	out.tuples = append([]Tuple(nil), r.tuples...)
	out.version = r.version
	out.structMut = r.structMut
	return out
}

// SortByKey sorts the relation's tuples in place by canonical key.
// Every D(G) producer (any algorithm, leaf extension, delta
// maintenance) sorts its result this way, so live, replayed, and
// delta-maintained sessions render byte-identical views.
//
// All keys are appended into one shared buffer and compared as byte
// spans, so the sort performs O(1) allocations instead of one key
// string per tuple. The canonical per-value encodings are prefix-free,
// which makes concatenated-key byte order equal to element-wise key
// order; and because Key is injective on tuple content, equal keys are
// identical tuples, so an unstable sort still yields a deterministic
// tuple sequence.
func (r *Relation) SortByKey() {
	n := len(r.tuples)
	if n > 1 {
		type kspan struct {
			off, end int32
			row      int32
		}
		buf := make([]byte, 0, n*16)
		spans := make([]kspan, n)
		for i, t := range r.tuples {
			off := int32(len(buf))
			buf = t.AppendKey(buf)
			spans[i] = kspan{off: off, end: int32(len(buf)), row: int32(i)}
		}
		slices.SortFunc(spans, func(a, b kspan) int {
			return bytes.Compare(buf[a.off:a.end], buf[b.off:b.end])
		})
		scratch := make([]Tuple, n)
		copy(scratch, r.tuples)
		for i, sp := range spans {
			r.tuples[i] = scratch[sp.row]
		}
	}
	// Tuple order changed without a version bump, so the derived-state
	// cache (columnar view) cannot detect staleness by version alone.
	r.structMut++
	r.invalidateDerived()
}

// Sorted returns a new relation with tuples sorted by their canonical
// keys; useful for deterministic golden output.
func (r *Relation) Sorted() *Relation {
	out := r.Clone()
	sort.SliceStable(out.tuples, func(i, j int) bool {
		return out.tuples[i].Key() < out.tuples[j].Key()
	})
	return out
}

// EqualSet reports whether two relations contain the same set of
// tuples (ignoring order and duplicates). Schemes must have the same
// attribute set; value comparison is positional after aligning
// attribute order.
func (r *Relation) EqualSet(o *Relation) bool {
	if !r.scheme.SameSet(o.scheme) {
		return false
	}
	aligned := o
	if !r.scheme.Equal(o.scheme) {
		aligned = o.Project(r.scheme.Names()...)
	}
	a := map[string]struct{}{}
	for _, t := range r.tuples {
		a[t.Key()] = struct{}{}
	}
	b := map[string]struct{}{}
	for _, t := range aligned.tuples {
		b[t.Key()] = struct{}{}
	}
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// Index is a hash index on a subset of a relation's attributes. Rows
// bucket on the 64-bit hash of their indexed values; the row ids of
// each bucket live in one shared arena (no per-bucket slice
// allocations), and probes confirm candidate equality value-wise, so
// a hash collision can never produce a false match.
type Index struct {
	rel       *Relation
	positions []int
	spans     map[uint64]span
	arena     []int
}

// span addresses one hash bucket inside the index arena.
type span struct {
	off, n int32
}

// BuildIndex builds a hash index on the named attributes. Tuples that
// are null on any indexed attribute are excluded (SQL joins never
// match on null). The build is two-pass — count, then fill — so the
// only allocations are the hash array, the bucket map, and the arena.
func (r *Relation) BuildIndex(attrs ...string) *Index {
	pos := r.scheme.Positions(attrs...)
	ix := &Index{rel: r, positions: pos}
	hashes := make([]uint64, len(r.tuples))
	skip := make([]bool, len(r.tuples))
	total := 0
	counts := make(map[uint64]int32, len(r.tuples))
	for i, t := range r.tuples {
		if t.HasNullAt(pos) {
			skip[i] = true
			continue
		}
		h := t.HashOn(pos)
		hashes[i] = h
		counts[h]++
		total++
	}
	ix.arena = make([]int, total)
	ix.spans = make(map[uint64]span, len(counts))
	var off int32
	for h, c := range counts {
		ix.spans[h] = span{off: off}
		off += c
	}
	for i := range r.tuples {
		if skip[i] {
			continue
		}
		sp := ix.spans[hashes[i]]
		ix.arena[sp.off+sp.n] = i
		sp.n++
		ix.spans[hashes[i]] = sp
	}
	return ix
}

// bucket returns the arena row ids sharing hash h.
func (ix *Index) bucket(h uint64) []int {
	sp, ok := ix.spans[h]
	if !ok {
		return nil
	}
	return ix.arena[sp.off : sp.off+sp.n]
}

// confirm filters a candidate bucket down to the rows that really
// match, per the keep predicate. In the common case every candidate
// matches and the arena subslice is returned as-is (no allocation);
// only a true hash collision forces a filtered copy.
func confirm(cand []int, keep func(row int) bool) []int {
	for i, row := range cand {
		if !keep(row) {
			out := make([]int, i, len(cand)-1)
			copy(out, cand[:i])
			for _, r := range cand[i+1:] {
				if keep(r) {
					out = append(out, r)
				}
			}
			return out
		}
	}
	return cand
}

// Probe returns the positions of tuples whose indexed attributes match
// the given values. Probing with any null value returns nothing.
func (ix *Index) Probe(vals ...value.Value) []int {
	if len(vals) != len(ix.positions) {
		panic("relation: index probe arity mismatch")
	}
	h := value.HashSeed()
	for _, v := range vals {
		if v.IsNull() {
			return nil
		}
		h = v.MixHash64(h)
	}
	return confirm(ix.bucket(h), func(row int) bool {
		t := ix.rel.tuples[row]
		for i, p := range ix.positions {
			if !t.vals[p].Equal(vals[i]) {
				return false
			}
		}
		return true
	})
}

// ProbeTuple probes using the values found at the given positions of t.
func (ix *Index) ProbeTuple(t Tuple, positions []int) []int {
	if t.HasNullAt(positions) {
		return nil
	}
	h := t.HashOn(positions)
	return confirm(ix.bucket(h), func(row int) bool {
		return ix.rel.tuples[row].EqualOn(t, ix.positions, positions)
	})
}

// String renders the relation with a header row; see also
// internal/render for aligned output.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%v: %d tuples\n", r.Name, r.scheme, r.Len())
	for _, t := range r.tuples {
		b.WriteString("  ")
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}
