package relation

import (
	"fmt"
	"sort"
	"strings"

	"clio/internal/value"
)

// Relation is a named, finite set of tuples over a scheme. Tuples are
// stored in insertion order; set semantics (duplicate elimination) are
// applied by the operations that require them.
type Relation struct {
	Name   string
	scheme *Scheme
	tuples []Tuple
	// version counts mutations (every Add bumps it), so caches keyed
	// on relation state can detect staleness without rehashing content.
	version uint64
}

// New creates an empty relation over the scheme.
func New(name string, s *Scheme) *Relation {
	return &Relation{Name: name, scheme: s}
}

// FromTuples creates a relation from existing tuples, which must all
// share the relation's scheme.
func FromTuples(name string, s *Scheme, tuples []Tuple) *Relation {
	r := New(name, s)
	for _, t := range tuples {
		r.Add(t)
	}
	return r
}

// Scheme returns the relation's scheme.
func (r *Relation) Scheme() *Scheme { return r.scheme }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the stored tuples in insertion order. The caller must
// not mutate the returned slice.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// At returns the i-th tuple.
func (r *Relation) At(i int) Tuple { return r.tuples[i] }

// Add appends a tuple, which must be over the relation's scheme.
func (r *Relation) Add(t Tuple) {
	if t.scheme != r.scheme && !t.scheme.Equal(r.scheme) {
		panic(fmt.Sprintf("relation: adding tuple with scheme %v to relation %s%v", t.scheme, r.Name, r.scheme))
	}
	r.tuples = append(r.tuples, t)
	r.version++
}

// Version returns the relation's mutation counter: it starts at zero
// and increases on every Add, so equal versions of the same relation
// object imply identical content.
func (r *Relation) Version() uint64 { return r.version }

// Fingerprint returns a 64-bit FNV-1a content hash over the scheme
// and every tuple, in order. Relations with identical schemes and
// tuple sequences share a fingerprint, whatever their name or object
// identity — the basis for content-addressed D(G) caching.
func (r *Relation) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // field separator
		h *= prime64
	}
	for _, n := range r.scheme.Names() {
		mix(n)
	}
	for _, t := range r.tuples {
		mix(t.Key())
	}
	return h
}

// AddValues appends a tuple built from positional values.
func (r *Relation) AddValues(vals ...value.Value) {
	r.Add(NewTuple(r.scheme, vals...))
}

// AddRow appends a tuple built by parsing display strings (see
// value.Parse); convenient for fixtures.
func (r *Relation) AddRow(cells ...string) {
	vals := make([]value.Value, len(cells))
	for i, c := range cells {
		vals[i] = value.Parse(c)
	}
	r.AddValues(vals...)
}

// Contains reports whether the relation contains a tuple Equal to t.
func (r *Relation) Contains(t Tuple) bool {
	for _, u := range r.tuples {
		if u.Equal(t) {
			return true
		}
	}
	return false
}

// Distinct returns a new relation with duplicate tuples removed,
// keeping first occurrences.
func (r *Relation) Distinct() *Relation {
	out := New(r.Name, r.scheme)
	seen := make(map[string]struct{}, len(r.tuples))
	for _, t := range r.tuples {
		k := t.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.Add(t)
	}
	return out
}

// Filter returns a new relation with the tuples for which keep returns
// true.
func (r *Relation) Filter(keep func(Tuple) bool) *Relation {
	out := New(r.Name, r.scheme)
	for _, t := range r.tuples {
		if keep(t) {
			out.Add(t)
		}
	}
	return out
}

// Project returns a new relation projected onto the given attributes
// (duplicates retained; compose with Distinct for set projection).
func (r *Relation) Project(names ...string) *Relation {
	s := r.scheme.Project(names...)
	out := New(r.Name, s)
	for _, t := range r.tuples {
		out.Add(t.Project(s))
	}
	return out
}

// Rename returns a new relation over a scheme with renamed attributes;
// rename maps old qualified names to new qualified names. Attributes
// not in the map keep their names.
func (r *Relation) Rename(name string, rename map[string]string) *Relation {
	names := make([]string, r.scheme.Arity())
	for i, n := range r.scheme.Names() {
		if nn, ok := rename[n]; ok {
			names[i] = nn
		} else {
			names[i] = n
		}
	}
	s := NewScheme(names...)
	out := New(name, s)
	for _, t := range r.tuples {
		out.Add(Tuple{scheme: s, vals: t.vals})
	}
	return out
}

// Clone returns a deep-enough copy (tuples are immutable, so the tuple
// slice is copied but tuples are shared).
func (r *Relation) Clone() *Relation {
	out := New(r.Name, r.scheme)
	out.tuples = append([]Tuple(nil), r.tuples...)
	out.version = r.version
	return out
}

// Sorted returns a new relation with tuples sorted by their canonical
// keys; useful for deterministic golden output.
func (r *Relation) Sorted() *Relation {
	out := r.Clone()
	sort.SliceStable(out.tuples, func(i, j int) bool {
		return out.tuples[i].Key() < out.tuples[j].Key()
	})
	return out
}

// EqualSet reports whether two relations contain the same set of
// tuples (ignoring order and duplicates). Schemes must have the same
// attribute set; value comparison is positional after aligning
// attribute order.
func (r *Relation) EqualSet(o *Relation) bool {
	if !r.scheme.SameSet(o.scheme) {
		return false
	}
	aligned := o
	if !r.scheme.Equal(o.scheme) {
		aligned = o.Project(r.scheme.Names()...)
	}
	a := map[string]struct{}{}
	for _, t := range r.tuples {
		a[t.Key()] = struct{}{}
	}
	b := map[string]struct{}{}
	for _, t := range aligned.tuples {
		b[t.Key()] = struct{}{}
	}
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// Index is a hash index on a subset of a relation's attributes,
// mapping key encodings to tuple positions.
type Index struct {
	rel       *Relation
	positions []int
	buckets   map[string][]int
}

// BuildIndex builds a hash index on the named attributes. Tuples that
// are null on any indexed attribute are excluded (SQL joins never
// match on null).
func (r *Relation) BuildIndex(attrs ...string) *Index {
	pos := r.scheme.Positions(attrs...)
	ix := &Index{rel: r, positions: pos, buckets: map[string][]int{}}
	for i, t := range r.tuples {
		if t.HasNullAt(pos) {
			continue
		}
		k := t.KeyOn(pos)
		ix.buckets[k] = append(ix.buckets[k], i)
	}
	return ix
}

// Probe returns the positions of tuples whose indexed attributes match
// the given values. Probing with any null value returns nothing.
func (ix *Index) Probe(vals ...value.Value) []int {
	if len(vals) != len(ix.positions) {
		panic("relation: index probe arity mismatch")
	}
	var b strings.Builder
	for _, v := range vals {
		if v.IsNull() {
			return nil
		}
		b.WriteString(v.Key())
		b.WriteByte('\x01')
	}
	return ix.buckets[b.String()]
}

// ProbeTuple probes using the values found at the given positions of t.
func (ix *Index) ProbeTuple(t Tuple, positions []int) []int {
	if t.HasNullAt(positions) {
		return nil
	}
	return ix.buckets[t.KeyOn(positions)]
}

// String renders the relation with a header row; see also
// internal/render for aligned output.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%v: %d tuples\n", r.Name, r.scheme, r.Len())
	for _, t := range r.tuples {
		b.WriteString("  ")
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}
