package spill

import (
	"errors"
	"path/filepath"
	"testing"

	"clio/internal/budget"
	"clio/internal/fault"
	"clio/internal/relation"
)

// Every spill I/O fault — create, write, read — must surface as a
// typed *IOError matching ErrSpill, with the failed frame's spill
// charge rolled back, and an exhausted fault point must leave the set
// usable again.

func TestChaosSpillCreateFaultTypedAbort(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	fault.Set("spill.create", fault.Spec{Mode: fault.ModeError, Times: 1})

	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir})
	ps := NewPartitionSet(tr, 1, nil)
	defer ps.Close()
	u := mixedTuples(t, 1)[0]
	err := ps.Add(u)
	var ioe *IOError
	if !errors.As(err, &ioe) || ioe.Op != "create" {
		t.Fatalf("create fault surfaced as %v, want IOError{Op: create}", err)
	}
	if !errors.Is(err, ErrSpill) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("create fault does not match the sentinels: %v", err)
	}
	if tr.SpillBytes() != 0 {
		t.Fatalf("failed create left %d spill bytes charged", tr.SpillBytes())
	}
	if err := ps.Add(u); err != nil {
		t.Fatalf("add after exhausted fault failed: %v", err)
	}
}

func TestChaosSpillWriteFaultRollsBackCharge(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	fault.Set("spill.write", fault.Spec{Mode: fault.ModeError, After: 3, Times: 1})

	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir})
	ps := NewPartitionSet(tr, 2, nil)
	defer ps.Close()
	tuples := mixedTuples(t, 10)
	var failed error
	written := 0
	for _, u := range tuples {
		if err := ps.Add(u); err != nil {
			failed = err
			break
		}
		written++
	}
	var ioe *IOError
	if !errors.As(failed, &ioe) || ioe.Op != "write" {
		t.Fatalf("write fault surfaced as %v, want IOError{Op: write}", failed)
	}
	if written != 3 {
		t.Fatalf("fault fired after %d writes, want 3 (After: 3)", written)
	}
	// The failed frame's charge must be rolled back: the tracker holds
	// exactly the bytes of the frames that succeeded.
	if tr.SpillBytes() != ps.Bytes() {
		t.Fatalf("tracker %d bytes, partitions %d", tr.SpillBytes(), ps.Bytes())
	}
	// The set stays readable: the successful prefix is intact.
	got := 0
	for i := 0; i < ps.N(); i++ {
		if err := ps.Read(i, testScheme(), func(relation.Tuple) error { got++; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got != written {
		t.Fatalf("read back %d tuples, want the %d written", got, written)
	}
}

func TestChaosSpillReadFaultMidReplay(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()

	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir})
	ps := NewPartitionSet(tr, 1, nil)
	defer ps.Close()
	for _, u := range mixedTuples(t, 8) {
		if err := ps.Add(u); err != nil {
			t.Fatal(err)
		}
	}
	fault.Set("spill.read", fault.Spec{Mode: fault.ModeError, After: 4, Times: 1})
	visited := 0
	err := ps.Read(0, testScheme(), func(relation.Tuple) error { visited++; return nil })
	var ioe *IOError
	if !errors.As(err, &ioe) || ioe.Op != "read" {
		t.Fatalf("read fault surfaced as %v, want IOError{Op: read}", err)
	}
	if visited != 4 {
		t.Fatalf("visited %d tuples before the fault, want 4", visited)
	}
	// Exhausted fault: a full replay succeeds.
	visited = 0
	if err := ps.Read(0, testScheme(), func(relation.Tuple) error { visited++; return nil }); err != nil {
		t.Fatal(err)
	}
	if visited != 8 {
		t.Fatalf("clean replay visited %d, want 8", visited)
	}
}

// Close after a mid-write fault must still remove every partition file
// and return the spill charges — a faulted spill never leaks disk.
func TestChaosSpillFaultThenCloseLeavesNoFiles(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	fault.Set("spill.write", fault.Spec{Mode: fault.ModeError, After: 2, Times: 1})

	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir})
	ps := NewPartitionSet(tr, 4, nil)
	for _, u := range mixedTuples(t, 10) {
		if err := ps.Add(u); err != nil {
			break
		}
	}
	ps.Close()
	if tr.SpillBytes() != 0 {
		t.Fatalf("spill bytes after Close = %d, want 0", tr.SpillBytes())
	}
	left, _ := filepath.Glob(filepath.Join(dir, "clio-spill-*.part"))
	if len(left) != 0 {
		t.Fatalf("files left after faulted spill Close: %v", left)
	}
}

// A flush failure is a distinct failure stage and must carry its own
// op label — the pre-fix code mislabeled it "write", pointing
// operators at the wrong stage. Asserts the exact label.
func TestChaosSpillFlushFaultLabeledFlush(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()

	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir})
	ps := NewPartitionSet(tr, 1, nil)
	defer ps.Close()
	if err := ps.Add(mixedTuples(t, 1)[0]); err != nil {
		t.Fatal(err)
	}
	fault.Set("spill.flush", fault.Spec{Mode: fault.ModeError, Times: 1})
	err := ps.Read(0, testScheme(), func(relation.Tuple) error { return nil })
	var ioe *IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("flush fault surfaced as %v, want *IOError", err)
	}
	if ioe.Op != "flush" {
		t.Fatalf("flush fault labeled %q, want \"flush\"", ioe.Op)
	}
	if !errors.Is(err, ErrSpill) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("flush fault does not match the sentinels: %v", err)
	}
	// Exhausted fault: the partition replays clean.
	if err := ps.Read(0, testScheme(), func(relation.Tuple) error { return nil }); err != nil {
		t.Fatalf("read after exhausted flush fault: %v", err)
	}
}

// A fault at the repartition point must surface as a typed
// IOError{Op: repartition}, leave the parent partition intact and
// readable, and charge nothing for the unborn child.
func TestChaosSpillRepartitionFaultTypedAbort(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()

	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir})
	ps := NewPartitionSet(tr, 1, nil)
	defer ps.Close()
	for _, u := range mixedTuples(t, 12) {
		if err := ps.Add(u); err != nil {
			t.Fatal(err)
		}
	}
	parentBytes := tr.SpillBytes()
	fault.Set("spill.repartition", fault.Spec{Mode: fault.ModeError, Times: 1})
	child, err := ps.Repartition(0, testScheme(), 8, DepthSalt(1))
	var ioe *IOError
	if !errors.As(err, &ioe) || ioe.Op != "repartition" {
		t.Fatalf("repartition fault surfaced as %v, want IOError{Op: repartition}", err)
	}
	if child != nil {
		t.Fatal("faulted repartition returned a live child")
	}
	if tr.SpillBytes() != parentBytes {
		t.Fatalf("faulted repartition left %d bytes charged, want parent's %d", tr.SpillBytes(), parentBytes)
	}
	// The parent is untouched; a retry succeeds.
	child, err = ps.Repartition(0, testScheme(), 8, DepthSalt(1))
	if err != nil {
		t.Fatalf("repartition after exhausted fault: %v", err)
	}
	defer child.Close()
	if child.TotalTuples() != 12 {
		t.Fatalf("retried child holds %d tuples, want 12", child.TotalTuples())
	}
}

// A write fault while copying into the child must close the child —
// removing its files and refunding its charges — and leave the parent
// intact.
func TestChaosSpillRepartitionChildWriteFault(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()

	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir})
	ps := NewPartitionSet(tr, 1, nil)
	defer ps.Close()
	for _, u := range mixedTuples(t, 12) {
		if err := ps.Add(u); err != nil {
			t.Fatal(err)
		}
	}
	parentBytes := tr.SpillBytes()
	parentFiles, _ := filepath.Glob(filepath.Join(dir, "clio-spill-*.part"))
	fault.Set("spill.write", fault.Spec{Mode: fault.ModeError, After: 5, Times: 1})
	if _, err := ps.Repartition(0, testScheme(), 8, DepthSalt(1)); !errors.Is(err, ErrSpill) {
		t.Fatalf("child write fault surfaced as %v, want ErrSpill", err)
	}
	if tr.SpillBytes() != parentBytes {
		t.Fatalf("dead child left %d bytes charged, want parent's %d", tr.SpillBytes(), parentBytes)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "clio-spill-*.part"))
	if len(after) != len(parentFiles) {
		t.Fatalf("dead child leaked files: %d on disk, want %d", len(after), len(parentFiles))
	}
}

// Recursive children share the partition file pattern, so the boot
// sweep reclaims them too: a kill -9 mid-recursion (simulated by
// simply not closing anything) leaves only files SweepDir removes.
func TestChaosSweepReclaimsRecursiveOrphans(t *testing.T) {
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir})
	ps := NewPartitionSet(tr, 2, nil)
	for _, u := range mixedTuples(t, 32) {
		if err := ps.Add(u); err != nil {
			t.Fatal(err)
		}
	}
	child, err := ps.Repartition(0, testScheme(), 4, DepthSalt(1))
	if err != nil {
		t.Fatal(err)
	}
	grandchild, err := child.Repartition(child.firstCreated(t), testScheme(), 4, DepthSalt(2))
	if err != nil {
		t.Fatal(err)
	}
	_ = grandchild
	// No Close anywhere: this is the crash. Every generation's files
	// must match the sweep pattern.
	files, _ := filepath.Glob(filepath.Join(dir, "clio-spill-*.part"))
	if len(files) < 3 {
		t.Fatalf("expected parent+child+grandchild files on disk, found %d", len(files))
	}
	n, err := SweepDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(files) {
		t.Fatalf("sweep removed %d of %d orphans", n, len(files))
	}
	left, _ := filepath.Glob(filepath.Join(dir, "clio-spill-*.part"))
	if len(left) != 0 {
		t.Fatalf("orphans left after sweep: %v", left)
	}
}

// firstCreated returns the index of some partition that exists on
// disk (test helper; fan-out routing decides which indices fill).
func (ps *PartitionSet) firstCreated(t *testing.T) int {
	t.Helper()
	for i, p := range ps.parts {
		if p != nil {
			return i
		}
	}
	t.Fatal("no partition created")
	return -1
}
