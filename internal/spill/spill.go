// Package spill implements the disk tier of the execution core:
// temp-file partition writers/readers that let hash joins and D(G)
// distinct/subsumption state degrade gracefully to disk when their
// in-memory budget (budget.Budget.MaxBytes) is exceeded, instead of
// aborting the computation.
//
// Tuples are written in length-framed, CRC-checked frames (the same
// framing discipline as the session journal): a frame is
//
//	[uint32 payload len][uint32 crc32(payload)][payload]
//
// and the payload is one tuple encoded value-by-value with a kind tag
// byte and a self-delimiting body, mirroring value.Key's framing so no
// byte sequence can be misparsed across value boundaries. Partition
// routing reuses the canonical 64-bit tuple hashes (Tuple.Hash64 /
// HashOn): Equal tuples — including cross-kind numeric equality —
// always land in the same partition, which is what makes per-partition
// dedup and per-partition joins globally exact.
//
// Every I/O path carries an internal/fault injection point
// (spill.create, spill.write, spill.read) and every failure surfaces
// as a typed *IOError matching ErrSpill, so a mid-spill fault degrades
// to a typed abort — never a truncated or wrong relation. Files are
// created with os.CreateTemp under the budget's spill directory and
// removed on Close; SweepDir reclaims orphans left by a crash.
package spill

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"clio/internal/budget"
	"clio/internal/fault"
	"clio/internal/obs"
	"clio/internal/relation"
	"clio/internal/value"
)

// DefaultPartitions is the Grace-hash fan-out: enough that one
// partition of a build side several times MaxBytes fits back in
// memory, few enough that partition files stay comfortably buffered.
const DefaultPartitions = 16

// filePattern names spill partition files; SweepDir matches it.
const filePattern = "clio-spill-*.part"

// Spill-tier instrumentation (clio_spill_* in /metrics).
var (
	cPartitions = obs.GetCounter("spill.partitions")
	cBytes      = obs.GetCounter("spill.bytes")
	cAborts     = obs.GetCounter("spill.spill_aborts")
	cRecursions = obs.GetCounter("spill.recursions")
)

// ErrSpill is the sentinel matched by errors.Is for any spill I/O
// failure.
var ErrSpill = errors.New("spill: I/O failure")

// IOError is a typed spill-tier failure: which operation failed and
// why. It matches ErrSpill under errors.Is.
type IOError struct {
	Op  string // "create", "write", "flush", "read", "decode", "repartition", "prefetch"
	Err error
}

func (e *IOError) Error() string { return fmt.Sprintf("spill: %s: %v", e.Op, e.Err) }

// Unwrap exposes the underlying cause.
func (e *IOError) Unwrap() error { return e.Err }

// Is matches the ErrSpill sentinel.
func (e *IOError) Is(target error) bool { return target == ErrSpill }

// abort wraps an operation failure as a typed IOError and counts it.
func abort(op string, err error) error {
	cAborts.Inc()
	return &IOError{Op: op, Err: err}
}

// Fail wraps an operation failure as a typed *IOError and counts it
// with the spill aborts — for spill-tier stages that live outside this
// package (e.g. the join's prefetch worker) but must surface the same
// typed, ErrSpill-matching errors.
func Fail(op string, err error) error { return abort(op, err) }

// partition is one temp file of framed tuples.
type partition struct {
	f      *os.File
	w      *bufio.Writer
	tuples int
	bytes  int64
}

// PartitionSet hash-partitions a tuple stream across n temp files in
// dir. Files are created lazily (an empty partition costs nothing),
// charged against the tracker's spill cap as frames are written, and
// removed — with the charges refunded — on Close. Writes (Add/AddTo)
// are not safe for concurrent use; Read opens its own file handle per
// call, so reads of distinct partitions may run concurrently with each
// other and with writes to other partitions.
type PartitionSet struct {
	dir    string
	tr     *budget.Tracker
	cols   []int  // hash positions; nil hashes the whole tuple
	salt   uint64 // mixed into the routing hash; 0 for top-level sets
	parts  []*partition
	buf    []byte
	closed bool
}

// NewPartitionSet prepares n partitions in the tracker's spill
// directory, routed by the tuple values at cols (nil/empty = whole
// tuple). No files exist until the first Add.
func NewPartitionSet(tr *budget.Tracker, n int, cols []int) *PartitionSet {
	return NewSaltedPartitionSet(tr, n, cols, 0)
}

// NewSaltedPartitionSet is NewPartitionSet with an explicit routing
// salt. Recursive re-partitioning uses a fresh salt per depth so an
// oversized partition — all of whose tuples collide under the parent's
// modulo — re-splits across the children; equal tuples (and equal key
// values) still co-locate at every depth because the salt is mixed
// into the canonical hash, not the values.
func NewSaltedPartitionSet(tr *budget.Tracker, n int, cols []int, salt uint64) *PartitionSet {
	if n < 1 {
		n = 1
	}
	return &PartitionSet{dir: tr.SpillDir(), tr: tr, cols: cols, salt: salt, parts: make([]*partition, n)}
}

// DepthSalt returns the routing salt for recursion depth d (0 for the
// top level, a fixed odd multiplier per level below — any non-zero
// value decorrelates the child modulo from the parent's).
func DepthSalt(d int) uint64 {
	if d <= 0 {
		return 0
	}
	return uint64(d) * 0x9e3779b97f4a7c15
}

// Route returns the partition index tuple t routes to among n
// partitions hashed on cols (nil/empty = whole tuple) with the given
// salt. Exported so in-memory sides of a join can split their groups
// with byte-identical routing to a spilled counterpart.
//
// The xor-shift finalizer before the modulo is load-bearing: the
// canonical hashes (and MixUint64) use only xor and multiplication,
// which preserve congruences mod powers of two — with the power-of-2
// fan-out, a salted child index would otherwise be a pure permutation
// of the parent's and recursion could never split an oversized
// partition. The shifts fold high bits into the low bits the modulo
// reads, decorrelating the child split from the parent's.
func Route(t relation.Tuple, cols []int, salt uint64, n int) int {
	var h uint64
	if len(cols) > 0 {
		h = t.HashOn(cols)
	} else {
		h = t.Hash64()
	}
	if salt != 0 {
		h = value.MixUint64(h, salt)
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int(h % uint64(n))
}

// N returns the partition fan-out.
func (ps *PartitionSet) N() int { return len(ps.parts) }

// Tuples returns the tuple count written to partition i.
func (ps *PartitionSet) Tuples(i int) int {
	if ps.parts[i] == nil {
		return 0
	}
	return ps.parts[i].tuples
}

// TotalTuples returns the tuple count across all partitions.
func (ps *PartitionSet) TotalTuples() int {
	n := 0
	for _, p := range ps.parts {
		if p != nil {
			n += p.tuples
		}
	}
	return n
}

// Bytes returns the total frame bytes written.
func (ps *PartitionSet) Bytes() int64 {
	var n int64
	for _, p := range ps.parts {
		if p != nil {
			n += p.bytes
		}
	}
	return n
}

// Created returns how many partition files exist on disk.
func (ps *PartitionSet) Created() int {
	n := 0
	for _, p := range ps.parts {
		if p != nil {
			n++
		}
	}
	return n
}

// Index returns the partition tuple t routes to. Equal tuples (and,
// with cols set, tuples with equal key values) share an index.
func (ps *PartitionSet) Index(t relation.Tuple) int {
	return Route(t, ps.cols, ps.salt, len(ps.parts))
}

// Add routes t to its partition and appends one frame.
func (ps *PartitionSet) Add(t relation.Tuple) error { return ps.AddTo(ps.Index(t), t) }

// AddTo appends one frame for t to partition i.
func (ps *PartitionSet) AddTo(i int, t relation.Tuple) error {
	p := ps.parts[i]
	if p == nil {
		if err := fault.Inject("spill.create"); err != nil {
			return abort("create", err)
		}
		f, err := os.CreateTemp(ps.dir, filePattern)
		if err != nil {
			return abort("create", err)
		}
		p = &partition{f: f, w: bufio.NewWriter(f)}
		ps.parts[i] = p
		cPartitions.Inc()
		ps.tr.AddSpillParts(1)
	}
	ps.buf = appendFrame(ps.buf[:0], t)
	n := int64(len(ps.buf))
	if err := ps.tr.ChargeSpill(n); err != nil {
		cAborts.Inc()
		return err
	}
	if err := fault.Inject("spill.write"); err != nil {
		ps.tr.RefundSpill(n)
		return abort("write", err)
	}
	if _, err := p.w.Write(ps.buf); err != nil {
		ps.tr.RefundSpill(n)
		return abort("write", err)
	}
	p.tuples++
	p.bytes += n
	cBytes.Add(n)
	return nil
}

// Read replays partition i in write order, decoding each frame over
// scheme s and passing it to visit. A visit error stops the read and
// is returned as-is; I/O and corruption surface as *IOError.
//
// The read goes through its own read-only file handle: the retained
// write handle (and its bufio.Writer) never moves, so interleaving
// AddTo after a Read — full or abandoned partway — appends at the
// correct offset. Recursive re-partitioning depends on exactly that
// interleaving.
func (ps *PartitionSet) Read(i int, s *relation.Scheme, visit func(relation.Tuple) error) error {
	p := ps.parts[i]
	if p == nil {
		return nil
	}
	if err := fault.Inject("spill.flush"); err != nil {
		return abort("flush", err)
	}
	if err := p.w.Flush(); err != nil {
		return abort("flush", err)
	}
	f, err := os.Open(p.f.Name())
	if err != nil {
		return abort("read", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var head [8]byte
	var payload []byte
	for n := 0; n < p.tuples; n++ {
		if err := fault.Inject("spill.read"); err != nil {
			return abort("read", err)
		}
		if _, err := io.ReadFull(r, head[:]); err != nil {
			return abort("read", fmt.Errorf("frame %d: %w", n, err))
		}
		size := binary.LittleEndian.Uint32(head[0:4])
		sum := binary.LittleEndian.Uint32(head[4:8])
		if int(size) > cap(payload) {
			payload = make([]byte, size)
		}
		payload = payload[:size]
		if _, err := io.ReadFull(r, payload); err != nil {
			return abort("read", fmt.Errorf("frame %d: %w", n, err))
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return abort("read", fmt.Errorf("frame %d: checksum mismatch", n))
		}
		t, err := DecodeTuple(payload, s)
		if err != nil {
			return abort("decode", fmt.Errorf("frame %d: %w", n, err))
		}
		if err := visit(t); err != nil {
			return err
		}
	}
	return nil
}

// Repartition re-splits partition i across a fresh salted child set
// with fan-out n, leaving the parent partition intact. Equal tuples
// co-locate in exactly one child (the salt is mixed into the canonical
// hash), so per-child dedup/joins stay globally exact. The child is
// the caller's to Close; on error it is already closed. Callers
// typically DropPart(i) afterward to reclaim the parent's disk.
func (ps *PartitionSet) Repartition(i int, s *relation.Scheme, n int, salt uint64) (*PartitionSet, error) {
	if err := fault.Inject("spill.repartition"); err != nil {
		return nil, abort("repartition", err)
	}
	child := NewSaltedPartitionSet(ps.tr, n, ps.cols, salt)
	err := ps.Read(i, s, func(t relation.Tuple) error { return child.Add(t) })
	if err != nil {
		child.Close()
		return nil, err
	}
	cRecursions.Inc()
	return child, nil
}

// DropPart removes partition i's file and refunds its disk charge
// without closing the set: once a partition has been re-partitioned
// into a child set its parent copy is dead weight. Reading or writing
// a dropped partition afterward treats it as empty.
func (ps *PartitionSet) DropPart(i int) {
	p := ps.parts[i]
	if p == nil {
		return
	}
	name := p.f.Name()
	p.f.Close()
	os.Remove(name)
	ps.tr.RefundSpill(p.bytes)
	ps.parts[i] = nil
}

// PartBytes returns the frame bytes written to partition i.
func (ps *PartitionSet) PartBytes(i int) int64 {
	if ps.parts[i] == nil {
		return 0
	}
	return ps.parts[i].bytes
}

// RecordStats publishes each created partition's final tuple/byte
// counts into the tracker's spill statistics (the picker's and
// EXPLAIN's inputs). Call once per set, after sinking completes.
func (ps *PartitionSet) RecordStats() {
	for _, p := range ps.parts {
		if p != nil {
			ps.tr.NotePartition(int64(p.tuples), p.bytes)
		}
	}
}

// Close removes every partition file and refunds the spill charges.
// Idempotent; errors are ignored (the files are scratch).
func (ps *PartitionSet) Close() {
	if ps == nil || ps.closed {
		return
	}
	ps.closed = true
	for i, p := range ps.parts {
		if p == nil {
			continue
		}
		name := p.f.Name()
		p.f.Close()
		os.Remove(name)
		ps.tr.RefundSpill(p.bytes)
		ps.parts[i] = nil
	}
}

// appendFrame appends one framed tuple to buf:
// [len][crc32][payload].
func appendFrame(buf []byte, t relation.Tuple) []byte {
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = AppendTuple(buf, t)
	payload := buf[8:]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	return buf
}

// AppendTuple appends the tuple payload encoding: per value a kind tag
// byte and a self-delimiting body. The scheme is not encoded — spill
// files hold tuples of one scheme, supplied again at decode time.
func AppendTuple(buf []byte, t relation.Tuple) []byte {
	for i, n := 0, t.Scheme().Arity(); i < n; i++ {
		v := t.At(i)
		switch v.Kind() {
		case value.KindNull:
			buf = append(buf, 'n')
		case value.KindString:
			s := v.Str()
			buf = append(buf, 's')
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		case value.KindInt:
			buf = append(buf, 'i')
			buf = binary.AppendVarint(buf, v.IntVal())
		case value.KindFloat:
			buf = append(buf, 'f')
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.FloatVal()))
		case value.KindBool:
			if v.BoolVal() {
				buf = append(buf, 'T')
			} else {
				buf = append(buf, 'F')
			}
		}
	}
	return buf
}

// DecodeTuple parses one tuple payload over scheme s. The payload must
// contain exactly the scheme's arity of values.
func DecodeTuple(payload []byte, s *relation.Scheme) (relation.Tuple, error) {
	vals := make([]value.Value, s.Arity())
	pos := 0
	for i := range vals {
		if pos >= len(payload) {
			return relation.Tuple{}, fmt.Errorf("truncated payload at value %d", i)
		}
		tag := payload[pos]
		pos++
		switch tag {
		case 'n':
			vals[i] = value.Null
		case 's':
			n, w := binary.Uvarint(payload[pos:])
			if w <= 0 || uint64(len(payload)-pos-w) < n {
				return relation.Tuple{}, fmt.Errorf("bad string frame at value %d", i)
			}
			pos += w
			vals[i] = value.String(string(payload[pos : pos+int(n)]))
			pos += int(n)
		case 'i':
			n, w := binary.Varint(payload[pos:])
			if w <= 0 {
				return relation.Tuple{}, fmt.Errorf("bad int frame at value %d", i)
			}
			pos += w
			vals[i] = value.Int(n)
		case 'f':
			if len(payload)-pos < 8 {
				return relation.Tuple{}, fmt.Errorf("bad float frame at value %d", i)
			}
			vals[i] = value.Float(math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:])))
			pos += 8
		case 'T':
			vals[i] = value.Bool(true)
		case 'F':
			vals[i] = value.Bool(false)
		default:
			return relation.Tuple{}, fmt.Errorf("unknown value tag %q at value %d", tag, i)
		}
	}
	if pos != len(payload) {
		return relation.Tuple{}, fmt.Errorf("trailing %d bytes after tuple", len(payload)-pos)
	}
	return relation.NewTuple(s, vals...), nil
}

// SweepDir removes stale partition files left in dir by a crash (a
// kill -9 mid-spill leaks temp files; live files are always removed by
// PartitionSet.Close). It returns the number of files removed. Safe to
// call on a missing directory.
func SweepDir(dir string) (int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, filePattern))
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, m := range matches {
		if err := os.Remove(m); err == nil {
			removed++
		}
	}
	return removed, nil
}
