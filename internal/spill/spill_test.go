package spill

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clio/internal/budget"
	"clio/internal/relation"
	"clio/internal/value"
)

func testScheme() *relation.Scheme {
	return relation.NewScheme("R.a", "R.b", "R.c", "R.d", "R.e")
}

func mixedTuples(t *testing.T, n int) []relation.Tuple {
	t.Helper()
	s := testScheme()
	out := make([]relation.Tuple, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, relation.NewTuple(s,
			value.Int(int64(i%7-3)),
			value.String(string(rune('a'+i%5))+"payload"),
			value.Float(float64(i)*0.5-1),
			value.Bool(i%2 == 0),
			value.Null,
		))
	}
	return out
}

// Every value kind must survive the frame codec bit-exactly, including
// the edge values the canonical hashes normalize.
func TestTupleCodecRoundTrip(t *testing.T) {
	s := testScheme()
	cases := []relation.Tuple{
		relation.NewTuple(s, value.Null, value.Null, value.Null, value.Null, value.Null),
		relation.NewTuple(s, value.Int(0), value.String(""), value.Float(0), value.Bool(false), value.Bool(true)),
		relation.NewTuple(s, value.Int(-1<<62), value.String("héllo\x00world"), value.Float(-0.0), value.Null, value.Int(1<<62)),
	}
	for _, want := range cases {
		payload := AppendTuple(nil, want)
		got, err := DecodeTuple(payload, s)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !got.Equal(want) || got.Key() != want.Key() {
			t.Fatalf("round trip: got %v want %v", got, want)
		}
	}
}

// Malformed payloads must be refused, never misdecoded.
func TestDecodeTupleRejectsCorruption(t *testing.T) {
	s := testScheme()
	good := AppendTuple(nil, mixedTuples(t, 1)[0])
	cases := map[string][]byte{
		"truncated":      good[:len(good)-2],
		"trailing bytes": append(append([]byte{}, good...), 'n'),
		"unknown tag":    append([]byte{'z'}, good[1:]...),
		"empty":          {},
	}
	for name, payload := range cases {
		if _, err := DecodeTuple(payload, s); err == nil {
			t.Errorf("%s payload decoded without error", name)
		}
	}
}

// A partition round trip must return exactly the written multiset,
// with equal tuples colocated, and Close must remove the files and
// refund the spill charges.
func TestPartitionSetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir})
	ps := NewPartitionSet(tr, 4, nil)
	tuples := mixedTuples(t, 100)
	tuples = append(tuples, tuples[0]) // a duplicate must colocate
	for _, u := range tuples {
		if err := ps.Add(u); err != nil {
			t.Fatal(err)
		}
	}
	if ps.TotalTuples() != len(tuples) {
		t.Fatalf("TotalTuples = %d, want %d", ps.TotalTuples(), len(tuples))
	}
	if tr.SpillBytes() != ps.Bytes() || tr.SpillBytes() == 0 {
		t.Fatalf("tracker spill bytes %d, partition bytes %d", tr.SpillBytes(), ps.Bytes())
	}
	seen := map[string]int{}
	for i := 0; i < ps.N(); i++ {
		part := map[string]bool{}
		err := ps.Read(i, testScheme(), func(u relation.Tuple) error {
			seen[u.Key()]++
			part[u.Key()] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	want := map[string]int{}
	for _, u := range tuples {
		want[u.Key()]++
	}
	if len(seen) != len(want) {
		t.Fatalf("distinct read back = %d, want %d", len(seen), len(want))
	}
	for k, n := range want {
		if seen[k] != n {
			t.Fatalf("tuple %q read %d times, want %d", k, seen[k], n)
		}
	}
	// The duplicate pair must be in one partition: find it via Index.
	if ps.Index(tuples[0]) != ps.Index(tuples[len(tuples)-1]) {
		t.Fatal("equal tuples routed to different partitions")
	}
	ps.Close()
	if tr.SpillBytes() != 0 {
		t.Fatalf("spill bytes after Close = %d, want 0", tr.SpillBytes())
	}
	left, _ := filepath.Glob(filepath.Join(dir, "clio-spill-*.part"))
	if len(left) != 0 {
		t.Fatalf("files left after Close: %v", left)
	}
}

// With key columns set, tuples equal on the keys — including null keys
// — must share a partition.
func TestPartitionSetKeyRouting(t *testing.T) {
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir})
	ps := NewPartitionSet(tr, 8, []int{0})
	defer ps.Close()
	s := testScheme()
	a := relation.NewTuple(s, value.Int(7), value.String("x"), value.Null, value.Null, value.Null)
	b := relation.NewTuple(s, value.Float(7), value.String("y"), value.Null, value.Null, value.Null)
	n1 := relation.NewTuple(s, value.Null, value.String("p"), value.Null, value.Null, value.Null)
	n2 := relation.NewTuple(s, value.Null, value.String("q"), value.Null, value.Null, value.Null)
	if ps.Index(a) != ps.Index(b) {
		t.Fatal("cross-kind equal keys (int 7, float 7) routed apart")
	}
	if ps.Index(n1) != ps.Index(n2) {
		t.Fatal("null keys routed apart")
	}
}

// The disk cap must abort with the typed budget error naming the spill
// limit and the disk_cap_exceeded state, and roll the charge back.
func TestBudgetSpillDiskCapAborts(t *testing.T) {
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir, MaxSpillBytes: 16})
	ps := NewPartitionSet(tr, 2, nil)
	defer ps.Close()
	err := ps.Add(mixedTuples(t, 1)[0]) // one frame is well over 16 bytes
	var be *budget.Error
	if !errors.As(err, &be) {
		t.Fatalf("disk cap abort not a budget error: %v", err)
	}
	if be.Limit != "spill" || be.Spill != budget.SpillDiskCap {
		t.Fatalf("disk cap error = %+v, want limit spill, state disk_cap_exceeded", be)
	}
	if !errors.Is(err, budget.ErrExceeded) {
		t.Fatal("disk cap abort does not match ErrExceeded")
	}
	if tr.SpillBytes() != 0 {
		t.Fatalf("failed charge not rolled back: %d bytes", tr.SpillBytes())
	}
}

// SweepDir must remove exactly the orphaned partition files.
func TestSweepDirRemovesOrphans(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"clio-spill-111.part", "clio-spill-222.part"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	keep := filepath.Join(dir, "unrelated.txt")
	if err := os.WriteFile(keep, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := SweepDir(dir)
	if err != nil || n != 2 {
		t.Fatalf("SweepDir = %d, %v; want 2, nil", n, err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatal("sweep removed an unrelated file")
	}
	if n, _ := SweepDir(dir); n != 0 {
		t.Fatalf("second sweep removed %d files, want 0", n)
	}
	if _, err := SweepDir(filepath.Join(dir, "missing")); err != nil {
		t.Fatalf("sweep of missing dir errored: %v", err)
	}
}

// A frame corrupted on disk must be refused at read time by the CRC,
// as a typed spill error.
func TestPartitionReadDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir})
	ps := NewPartitionSet(tr, 1, nil)
	defer ps.Close()
	if err := ps.Add(mixedTuples(t, 1)[0]); err != nil {
		t.Fatal(err)
	}
	// Flush by reading once, then flip a payload byte on disk.
	if err := ps.Read(0, testScheme(), func(relation.Tuple) error { return nil }); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "clio-spill-*.part"))
	if len(files) != 1 {
		t.Fatalf("partition files = %v", files)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = ps.Read(0, testScheme(), func(relation.Tuple) error { return nil })
	if !errors.Is(err, ErrSpill) {
		t.Fatalf("corrupted frame read returned %v, want ErrSpill", err)
	}
}

// bigTuples builds n tuples whose frames total well over one bufio
// buffer (4096 bytes), so an abandoned read leaves a shared file
// descriptor mid-file rather than coincidentally at EOF.
func bigTuples(t *testing.T, n int) []relation.Tuple {
	t.Helper()
	s := testScheme()
	pad := strings.Repeat("x", 200)
	out := make([]relation.Tuple, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, relation.NewTuple(s,
			value.Int(int64(i)),
			value.String(pad),
			value.Float(float64(i)),
			value.Bool(i%2 == 0),
			value.Null,
		))
	}
	return out
}

// Writing to a partition after reading it — including after a read
// abandoned partway — must append at the correct offset. The pre-fix
// code read through the shared write descriptor, so an early-stopped
// read left the offset mid-file and the next flush overwrote live
// frames; this test fails against that code with a CRC mismatch.
func TestPartitionWriteAfterReadAppends(t *testing.T) {
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir})
	ps := NewPartitionSet(tr, 1, nil)
	defer ps.Close()
	tuples := bigTuples(t, 30) // ~30 frames x ~230 bytes >> 4096
	for _, u := range tuples[:25] {
		if err := ps.AddTo(0, u); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon a read after the first tuple: the reader has pulled a
	// full buffer, far past the first frame.
	stop := errors.New("stop")
	err := ps.Read(0, testScheme(), func(relation.Tuple) error { return stop })
	if !errors.Is(err, stop) {
		t.Fatalf("early-stop read returned %v, want sentinel", err)
	}
	// Interleave more writes, then a full read once more.
	for _, u := range tuples[25:] {
		if err := ps.AddTo(0, u); err != nil {
			t.Fatal(err)
		}
	}
	var got []relation.Tuple
	if err := ps.Read(0, testScheme(), func(u relation.Tuple) error {
		got = append(got, u)
		return nil
	}); err != nil {
		t.Fatalf("full read after interleaved write: %v", err)
	}
	if len(got) != len(tuples) {
		t.Fatalf("read back %d tuples, want %d", len(got), len(tuples))
	}
	for i, u := range got {
		if !u.Equal(tuples[i]) {
			t.Fatalf("tuple %d corrupted: got %v want %v", i, u, tuples[i])
		}
	}
}

// Two concurrent-in-time reads of the same partition must each see the
// full write-order stream (reads hold independent descriptors).
func TestPartitionInterleavedReads(t *testing.T) {
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir})
	ps := NewPartitionSet(tr, 1, nil)
	defer ps.Close()
	tuples := bigTuples(t, 20)
	for _, u := range tuples {
		if err := ps.AddTo(0, u); err != nil {
			t.Fatal(err)
		}
	}
	outer := 0
	err := ps.Read(0, testScheme(), func(relation.Tuple) error {
		outer++
		if outer == 1 { // a full nested read while the outer one is mid-stream
			inner := 0
			if err := ps.Read(0, testScheme(), func(relation.Tuple) error {
				inner++
				return nil
			}); err != nil {
				return err
			}
			if inner != len(tuples) {
				t.Fatalf("nested read saw %d tuples, want %d", inner, len(tuples))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if outer != len(tuples) {
		t.Fatalf("outer read saw %d tuples, want %d", outer, len(tuples))
	}
}

// A salted child must co-locate equal tuples while spreading a set
// that collided into one parent partition, and Repartition must
// preserve the multiset exactly.
func TestRepartitionSaltedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir})
	ps := NewPartitionSet(tr, 1, nil) // fan-out 1: everything collides
	defer ps.Close()
	tuples := mixedTuples(t, 64)
	tuples = append(tuples, tuples[3]) // duplicate must co-locate in the child
	for _, u := range tuples {
		if err := ps.Add(u); err != nil {
			t.Fatal(err)
		}
	}
	child, err := ps.Repartition(0, testScheme(), 8, DepthSalt(1))
	if err != nil {
		t.Fatal(err)
	}
	defer child.Close()
	if child.Created() < 2 {
		t.Fatalf("salted re-split landed in %d partitions; salt failed to decorrelate", child.Created())
	}
	if child.TotalTuples() != len(tuples) {
		t.Fatalf("child holds %d tuples, want %d", child.TotalTuples(), len(tuples))
	}
	got := map[string]int{}
	for i := 0; i < child.N(); i++ {
		if err := child.Read(i, testScheme(), func(u relation.Tuple) error {
			got[u.Key()]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	want := map[string]int{}
	for _, u := range tuples {
		want[u.Key()]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("tuple %q: child read %d, want %d", k, got[k], n)
		}
	}
	if child.Index(tuples[3]) != child.Index(tuples[len(tuples)-1]) {
		t.Fatal("equal tuples routed apart under the child salt")
	}
	// Dropping the parent partition refunds exactly its bytes.
	before := tr.SpillBytes()
	parentBytes := ps.PartBytes(0)
	ps.DropPart(0)
	if tr.SpillBytes() != before-parentBytes {
		t.Fatalf("DropPart refunded %d, want %d", before-tr.SpillBytes(), parentBytes)
	}
	if ps.Tuples(0) != 0 {
		t.Fatal("dropped partition still reports tuples")
	}
	if err := ps.Read(0, testScheme(), func(relation.Tuple) error {
		t.Fatal("dropped partition delivered a tuple")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// Key-column routing must survive salting: tuples equal on the key —
// including cross-kind numerics and nulls — share a child partition at
// every depth.
func TestSaltedKeyRoutingColocates(t *testing.T) {
	s := testScheme()
	a := relation.NewTuple(s, value.Int(7), value.String("x"), value.Null, value.Null, value.Null)
	b := relation.NewTuple(s, value.Float(7), value.String("y"), value.Null, value.Null, value.Null)
	n1 := relation.NewTuple(s, value.Null, value.String("p"), value.Null, value.Null, value.Null)
	n2 := relation.NewTuple(s, value.Null, value.String("q"), value.Null, value.Null, value.Null)
	for d := 0; d <= 3; d++ {
		salt := DepthSalt(d)
		if Route(a, []int{0}, salt, 16) != Route(b, []int{0}, salt, 16) {
			t.Fatalf("depth %d: cross-kind equal keys routed apart", d)
		}
		if Route(n1, []int{0}, salt, 16) != Route(n2, []int{0}, salt, 16) {
			t.Fatalf("depth %d: null keys routed apart", d)
		}
	}
	// Distinct depths must produce distinct routings for at least some
	// tuples, or recursion could never split a stuck partition.
	moved := false
	for _, u := range mixedTuples(t, 32) {
		if Route(u, nil, DepthSalt(1), 16) != Route(u, nil, DepthSalt(2), 16) {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("DepthSalt(1) and DepthSalt(2) routed 32 tuples identically")
	}
}
