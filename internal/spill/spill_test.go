package spill

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"clio/internal/budget"
	"clio/internal/relation"
	"clio/internal/value"
)

func testScheme() *relation.Scheme {
	return relation.NewScheme("R.a", "R.b", "R.c", "R.d", "R.e")
}

func mixedTuples(t *testing.T, n int) []relation.Tuple {
	t.Helper()
	s := testScheme()
	out := make([]relation.Tuple, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, relation.NewTuple(s,
			value.Int(int64(i%7-3)),
			value.String(string(rune('a'+i%5))+"payload"),
			value.Float(float64(i)*0.5-1),
			value.Bool(i%2 == 0),
			value.Null,
		))
	}
	return out
}

// Every value kind must survive the frame codec bit-exactly, including
// the edge values the canonical hashes normalize.
func TestTupleCodecRoundTrip(t *testing.T) {
	s := testScheme()
	cases := []relation.Tuple{
		relation.NewTuple(s, value.Null, value.Null, value.Null, value.Null, value.Null),
		relation.NewTuple(s, value.Int(0), value.String(""), value.Float(0), value.Bool(false), value.Bool(true)),
		relation.NewTuple(s, value.Int(-1<<62), value.String("héllo\x00world"), value.Float(-0.0), value.Null, value.Int(1<<62)),
	}
	for _, want := range cases {
		payload := AppendTuple(nil, want)
		got, err := DecodeTuple(payload, s)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !got.Equal(want) || got.Key() != want.Key() {
			t.Fatalf("round trip: got %v want %v", got, want)
		}
	}
}

// Malformed payloads must be refused, never misdecoded.
func TestDecodeTupleRejectsCorruption(t *testing.T) {
	s := testScheme()
	good := AppendTuple(nil, mixedTuples(t, 1)[0])
	cases := map[string][]byte{
		"truncated":      good[:len(good)-2],
		"trailing bytes": append(append([]byte{}, good...), 'n'),
		"unknown tag":    append([]byte{'z'}, good[1:]...),
		"empty":          {},
	}
	for name, payload := range cases {
		if _, err := DecodeTuple(payload, s); err == nil {
			t.Errorf("%s payload decoded without error", name)
		}
	}
}

// A partition round trip must return exactly the written multiset,
// with equal tuples colocated, and Close must remove the files and
// refund the spill charges.
func TestPartitionSetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir})
	ps := NewPartitionSet(tr, 4, nil)
	tuples := mixedTuples(t, 100)
	tuples = append(tuples, tuples[0]) // a duplicate must colocate
	for _, u := range tuples {
		if err := ps.Add(u); err != nil {
			t.Fatal(err)
		}
	}
	if ps.TotalTuples() != len(tuples) {
		t.Fatalf("TotalTuples = %d, want %d", ps.TotalTuples(), len(tuples))
	}
	if tr.SpillBytes() != ps.Bytes() || tr.SpillBytes() == 0 {
		t.Fatalf("tracker spill bytes %d, partition bytes %d", tr.SpillBytes(), ps.Bytes())
	}
	seen := map[string]int{}
	for i := 0; i < ps.N(); i++ {
		part := map[string]bool{}
		err := ps.Read(i, testScheme(), func(u relation.Tuple) error {
			seen[u.Key()]++
			part[u.Key()] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	want := map[string]int{}
	for _, u := range tuples {
		want[u.Key()]++
	}
	if len(seen) != len(want) {
		t.Fatalf("distinct read back = %d, want %d", len(seen), len(want))
	}
	for k, n := range want {
		if seen[k] != n {
			t.Fatalf("tuple %q read %d times, want %d", k, seen[k], n)
		}
	}
	// The duplicate pair must be in one partition: find it via Index.
	if ps.Index(tuples[0]) != ps.Index(tuples[len(tuples)-1]) {
		t.Fatal("equal tuples routed to different partitions")
	}
	ps.Close()
	if tr.SpillBytes() != 0 {
		t.Fatalf("spill bytes after Close = %d, want 0", tr.SpillBytes())
	}
	left, _ := filepath.Glob(filepath.Join(dir, "clio-spill-*.part"))
	if len(left) != 0 {
		t.Fatalf("files left after Close: %v", left)
	}
}

// With key columns set, tuples equal on the keys — including null keys
// — must share a partition.
func TestPartitionSetKeyRouting(t *testing.T) {
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir})
	ps := NewPartitionSet(tr, 8, []int{0})
	defer ps.Close()
	s := testScheme()
	a := relation.NewTuple(s, value.Int(7), value.String("x"), value.Null, value.Null, value.Null)
	b := relation.NewTuple(s, value.Float(7), value.String("y"), value.Null, value.Null, value.Null)
	n1 := relation.NewTuple(s, value.Null, value.String("p"), value.Null, value.Null, value.Null)
	n2 := relation.NewTuple(s, value.Null, value.String("q"), value.Null, value.Null, value.Null)
	if ps.Index(a) != ps.Index(b) {
		t.Fatal("cross-kind equal keys (int 7, float 7) routed apart")
	}
	if ps.Index(n1) != ps.Index(n2) {
		t.Fatal("null keys routed apart")
	}
}

// The disk cap must abort with the typed budget error naming the spill
// limit and the disk_cap_exceeded state, and roll the charge back.
func TestBudgetSpillDiskCapAborts(t *testing.T) {
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir, MaxSpillBytes: 16})
	ps := NewPartitionSet(tr, 2, nil)
	defer ps.Close()
	err := ps.Add(mixedTuples(t, 1)[0]) // one frame is well over 16 bytes
	var be *budget.Error
	if !errors.As(err, &be) {
		t.Fatalf("disk cap abort not a budget error: %v", err)
	}
	if be.Limit != "spill" || be.Spill != budget.SpillDiskCap {
		t.Fatalf("disk cap error = %+v, want limit spill, state disk_cap_exceeded", be)
	}
	if !errors.Is(err, budget.ErrExceeded) {
		t.Fatal("disk cap abort does not match ErrExceeded")
	}
	if tr.SpillBytes() != 0 {
		t.Fatalf("failed charge not rolled back: %d bytes", tr.SpillBytes())
	}
}

// SweepDir must remove exactly the orphaned partition files.
func TestSweepDirRemovesOrphans(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"clio-spill-111.part", "clio-spill-222.part"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	keep := filepath.Join(dir, "unrelated.txt")
	if err := os.WriteFile(keep, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := SweepDir(dir)
	if err != nil || n != 2 {
		t.Fatalf("SweepDir = %d, %v; want 2, nil", n, err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatal("sweep removed an unrelated file")
	}
	if n, _ := SweepDir(dir); n != 0 {
		t.Fatalf("second sweep removed %d files, want 0", n)
	}
	if _, err := SweepDir(filepath.Join(dir, "missing")); err != nil {
		t.Fatalf("sweep of missing dir errored: %v", err)
	}
}

// A frame corrupted on disk must be refused at read time by the CRC,
// as a typed spill error.
func TestPartitionReadDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 1, SpillDir: dir})
	ps := NewPartitionSet(tr, 1, nil)
	defer ps.Close()
	if err := ps.Add(mixedTuples(t, 1)[0]); err != nil {
		t.Fatal(err)
	}
	// Flush by reading once, then flip a payload byte on disk.
	if err := ps.Read(0, testScheme(), func(relation.Tuple) error { return nil }); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "clio-spill-*.part"))
	if len(files) != 1 {
		t.Fatalf("partition files = %v", files)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = ps.Read(0, testScheme(), func(relation.Tuple) error { return nil })
	if !errors.Is(err, ErrSpill) {
		t.Fatalf("corrupted frame read returned %v, want ErrSpill", err)
	}
}
