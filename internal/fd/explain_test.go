package fd_test

import (
	"context"
	"strings"
	"testing"

	"clio/internal/expr"
	"clio/internal/fd"
	"clio/internal/graph"
	"clio/internal/obs"
	"clio/internal/paperdb"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// sumOpRows walks a span tree and sums the "rows" attributes of the
// algebra operator spans (names prefixed "op.").
func sumOpRows(s *obs.SpanData) int64 {
	var sum int64
	if strings.HasPrefix(s.Name, "op.") {
		if v, ok := obs.AttrMap(s)["rows"].(int64); ok {
			sum += v
		}
	}
	for _, c := range s.Children {
		sum += sumOpRows(c)
	}
	return sum
}

// TestExplainFigure8RowsMatchExecution explains the Figure-8 D(G) and
// checks the per-operator rows in the returned tree sum to exactly
// what an independently traced fd.Compute execution reports.
func TestExplainFigure8RowsMatchExecution(t *testing.T) {
	col := withCollector(t)
	prevCap := fd.SetCacheCapacity(8)
	fd.InvalidateCache()
	t.Cleanup(func() {
		fd.SetCacheCapacity(prevCap)
		fd.InvalidateCache()
	})
	m := paperdb.Figure6G()
	in := paperdb.Instance()

	// Reference execution: trace a real Compute run under a root span
	// so the operator spans are emitted.
	ctx, span := obs.StartSpan(context.Background(), "test.ref")
	dg, err := fd.Compute(ctx, m.Graph, in)
	if err != nil {
		t.Fatal(err)
	}
	span.End()
	roots := col.Roots()
	if len(roots) != 1 {
		t.Fatalf("got %d reference roots, want 1", len(roots))
	}
	wantRows := sumOpRows(roots[0])
	if wantRows == 0 {
		t.Fatal("reference execution recorded no operator rows")
	}

	res, err := fd.ExplainCompute(context.Background(), m.Graph, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algo != "outer_join" {
		t.Errorf("algo = %q, want outer_join", res.Algo)
	}
	if res.Cache != "hit" {
		t.Errorf("cache = %q, want hit (Compute above stored it)", res.Cache)
	}
	if !res.IsTree || res.Nodes != 3 {
		t.Errorf("is_tree/nodes = %v/%d, want true/3", res.IsTree, res.Nodes)
	}
	if res.Tuples != dg.Len() {
		t.Errorf("tuples = %d, want %d", res.Tuples, dg.Len())
	}
	if res.Root == nil || res.Root.Name != "fd.compute" {
		t.Fatalf("explain root = %+v, want fd.compute span", res.Root)
	}
	if got := sumOpRows(res.Root); got != wantRows {
		t.Errorf("explain operator rows sum = %d, want %d", got, wantRows)
	}

	// On a cold cache the same explain reports a miss and warms it.
	fd.InvalidateCache()
	res2, err := fd.ExplainCompute(context.Background(), m.Graph, in)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cache != "miss" {
		t.Errorf("cold cache = %q, want miss", res2.Cache)
	}
	res3, err := fd.ExplainCompute(context.Background(), m.Graph, in)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Cache != "hit" {
		t.Errorf("explain did not warm the cache: %q, want hit", res3.Cache)
	}
}

// ring4 builds a 4-node cyclic query graph (13 connected subsets, past
// the parallel threshold) over tiny single-column relations.
func ring4() (*graph.QueryGraph, *relation.Instance) {
	names := []string{"A", "B", "C", "D"}
	sch := schema.NewDatabase()
	for _, n := range names {
		sch.MustAddRelation(schema.NewRelation(n,
			schema.Attribute{Name: "k", Type: value.KindInt}))
	}
	in := relation.NewInstance(sch)
	for i, n := range names {
		r := in.NewRelationFor(n)
		r.AddValues(value.Int(int64(i % 2)))
		in.MustAdd(r)
	}
	g := graph.New()
	for _, n := range names {
		g.MustAddNode(n, n)
	}
	g.MustAddEdge("A", "B", expr.Equals("A.k", "B.k"))
	g.MustAddEdge("B", "C", expr.Equals("B.k", "C.k"))
	g.MustAddEdge("C", "D", expr.Equals("C.k", "D.k"))
	g.MustAddEdge("A", "D", expr.Equals("A.k", "D.k"))
	return g, in
}

// TestParallelWorkerSpansShareTraceTree runs Compute on a cyclic graph
// big enough to route to the parallel algorithm, under a root span
// stamped with a trace ID, and asserts the retained trace contains the
// worker-emitted subgraph spans in the same single tree.
func TestParallelWorkerSpansShareTraceTree(t *testing.T) {
	buf := obs.NewTraceBuffer(4, nil)
	obs.SetEnabled(true)
	obs.SetExporter(buf)
	t.Cleanup(func() {
		obs.SetEnabled(false)
		obs.SetExporter(nil)
	})
	g, in := ring4()

	id := obs.NewTraceID()
	ctx := obs.WithTraceID(context.Background(), id)
	ctx, span := obs.StartSpan(ctx, "test.request")
	span.SetStr("trace_id", id)
	if _, err := fd.Compute(ctx, g, in); err != nil {
		t.Fatal(err)
	}
	span.End()

	tr := buf.Get(id)
	if tr == nil {
		t.Fatalf("trace %s not retained; have %v", id, buf.Recent())
	}
	names := obs.SpanNames(tr.Root)
	var parallel, workerSpans bool
	for _, n := range names {
		if strings.HasSuffix(n, "/fd.parallel") {
			parallel = true
		}
		if strings.Contains(n, "/fd.parallel/") {
			workerSpans = true
		}
	}
	if !parallel {
		t.Errorf("retained tree has no fd.parallel span: %v", names)
	}
	if !workerSpans {
		t.Errorf("retained tree has no worker-emitted child spans under fd.parallel: %v", names)
	}
	if algo := obs.AttrMap(tr.Root.Children[0])["algo"]; algo != "subgraph_parallel" {
		t.Errorf("algo = %v, want subgraph_parallel", algo)
	}
}
