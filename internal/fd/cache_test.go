package fd

import (
	"context"
	"strconv"
	"testing"

	"clio/internal/expr"
	"clio/internal/graph"
	"clio/internal/obs"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// cacheCase builds a two-relation tree case whose instance can be
// mutated between Compute calls.
func cacheCase(t *testing.T) (*graph.QueryGraph, *relation.Instance) {
	t.Helper()
	sch := schema.NewDatabase()
	sch.MustAddRelation(schema.NewRelation("A",
		schema.Attribute{Name: "k", Type: value.KindInt},
		schema.Attribute{Name: "x", Type: value.KindString}))
	sch.MustAddRelation(schema.NewRelation("B",
		schema.Attribute{Name: "k", Type: value.KindInt},
		schema.Attribute{Name: "y", Type: value.KindString}))
	in := relation.NewInstance(sch)
	a := in.NewRelationFor("A")
	a.AddRow("1", "a1")
	a.AddRow("2", "a2")
	in.MustAdd(a)
	b := in.NewRelationFor("B")
	b.AddRow("1", "b1")
	b.AddRow("3", "b3")
	in.MustAdd(b)
	g := graph.New()
	g.MustAddNode("A", "A")
	g.MustAddNode("B", "B")
	g.MustAddEdge("A", "B", expr.Equals("A.k", "B.k"))
	return g, in
}

func withCache(t *testing.T, capacity int) {
	t.Helper()
	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	prev := SetCacheCapacity(capacity)
	InvalidateCache()
	t.Cleanup(func() {
		SetCacheCapacity(prev)
		InvalidateCache()
		obs.SetEnabled(wasEnabled)
	})
}

// A repeated Compute on an unchanged (graph, instance) pair must be
// served from the cache: fd.compute.calls does not increase, and the
// result is identical. Mutating the instance invalidates the entry.
func TestComputeCacheHitAndInvalidation(t *testing.T) {
	withCache(t, 8)
	g, in := cacheCase(t)
	calls := cComputeCalls.Value()
	hits := cCacheHits.Value()

	d1, err := Compute(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	if got := cComputeCalls.Value(); got != calls+1 {
		t.Fatalf("first Compute: calls = %d, want %d", got, calls+1)
	}

	d2, err := Compute(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	if got := cComputeCalls.Value(); got != calls+1 {
		t.Errorf("second Compute recomputed: calls = %d, want %d", got, calls+1)
	}
	if got := cCacheHits.Value(); got != hits+1 {
		t.Errorf("cache hits = %d, want %d", got, hits+1)
	}
	if !d1.EqualSet(d2) {
		t.Errorf("cached result differs:\n%v\nvs\n%v", d1, d2)
	}

	// Mutating a source relation changes its fingerprint: recompute.
	in.Relation("B").AddRow("2", "b2")
	d3, err := Compute(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	if got := cComputeCalls.Value(); got != calls+2 {
		t.Errorf("post-mutation Compute did not recompute: calls = %d, want %d", got, calls+2)
	}
	if d3.EqualSet(d1) {
		t.Errorf("post-mutation D(G) unchanged; mutation not observed")
	}
}

// Cached results are returned as clones: callers mutating their copy
// must not poison later hits.
func TestComputeCacheReturnsClones(t *testing.T) {
	withCache(t, 8)
	g, in := cacheCase(t)
	d1, err := Compute(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	d1.Add(relation.AllNull(d1.Scheme())) // caller-side mutation
	d2, err := Compute(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d1.Len()-1 {
		t.Errorf("cache entry shares storage with caller copy: len %d vs %d", d2.Len(), d1.Len())
	}
}

// The cache evicts least-recently-used entries beyond capacity and
// can be invalidated explicitly.
func TestCacheLRUEvictionAndInvalidate(t *testing.T) {
	withCache(t, 2)
	g, in := cacheCase(t)
	evicted := cCacheEvictions.Value()

	if _, err := Compute(context.Background(), g, in); err != nil {
		t.Fatal(err)
	}
	// Two more distinct keys via instance mutations.
	in.Relation("A").AddRow("7", "a7")
	if _, err := Compute(context.Background(), g, in); err != nil {
		t.Fatal(err)
	}
	in.Relation("A").AddRow("8", "a8")
	if _, err := Compute(context.Background(), g, in); err != nil {
		t.Fatal(err)
	}
	if n := CacheLen(); n != 2 {
		t.Errorf("cache len = %d, want capacity 2", n)
	}
	if got := cCacheEvictions.Value(); got != evicted+1 {
		t.Errorf("evictions = %d, want %d", got, evicted+1)
	}
	InvalidateCache()
	if n := CacheLen(); n != 0 {
		t.Errorf("cache len after invalidate = %d, want 0", n)
	}
}

// With capacity zero (the default) Compute never consults the cache.
func TestCacheDisabledByDefault(t *testing.T) {
	withCache(t, 0)
	g, in := cacheCase(t)
	calls := cComputeCalls.Value()
	for i := 0; i < 3; i++ {
		if _, err := Compute(context.Background(), g, in); err != nil {
			t.Fatal(err)
		}
	}
	if got := cComputeCalls.Value(); got != calls+3 {
		t.Errorf("calls = %d, want %d (cache must be off)", got, calls+3)
	}
	if n := CacheLen(); n != 0 {
		t.Errorf("cache len = %d, want 0", n)
	}
}

// Content addressing: two distinct instance objects with identical
// content share cache entries.
func TestCacheContentAddressed(t *testing.T) {
	withCache(t, 8)
	g1, in1 := cacheCase(t)
	_, in2 := cacheCase(t)
	calls := cComputeCalls.Value()
	if _, err := Compute(context.Background(), g1, in1); err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(context.Background(), g1, in2); err != nil {
		t.Fatal(err)
	}
	if got := cComputeCalls.Value(); got != calls+1 {
		t.Errorf("identical content recomputed: calls = %d, want %d", got, calls+1)
	}
}

// Length framing: predicate text cannot forge edge boundaries in the
// cache key. Before framing, edges rendered as "A--B[label]" joined by
// commas, so a graph with edges A–B[x] and C–D[y] collided with a
// graph whose single A–B edge mentions a column literally named
// "x],C--D[y" — and the two computations shared one cache entry.
func TestCanonGraphCollisionRegression(t *testing.T) {
	mk := func() *graph.QueryGraph {
		g := graph.New()
		for _, n := range []string{"A", "B", "C", "D"} {
			g.MustAddNode(n, n)
		}
		return g
	}
	g1 := mk()
	g1.MustAddEdge("A", "B", expr.Col{Name: "x"})
	g1.MustAddEdge("C", "D", expr.Col{Name: "y"})
	g2 := mk()
	g2.MustAddEdge("A", "B", expr.Col{Name: "x],C--D[y"})
	if canonGraph(g1) == canonGraph(g2) {
		t.Fatalf("distinct graphs share a canonical key:\n%s", canonGraph(g1))
	}
}

// Endpoint sorting must extend to the predicate: an edge added as
// (A, B, A.k = B.k) and the same join added as (B, A, B.k = A.k) are
// one graph, and AND-chains are unordered conjunct sets. Before
// canonExpr, the endpoints were sorted but the label was not, so
// mirrored builds of equal graphs missed the cache.
func TestCanonGraphNormalizesEdgeDirection(t *testing.T) {
	eq := func(l, r string) expr.Expr {
		return expr.Bin{Op: expr.OpEq, L: expr.Col{Name: l}, R: expr.Col{Name: r}}
	}
	two := func() *graph.QueryGraph {
		g := graph.New()
		g.MustAddNode("A", "A")
		g.MustAddNode("B", "B")
		return g
	}
	g1 := two()
	g1.MustAddEdge("A", "B", eq("A.k", "B.k"))
	g2 := two()
	g2.MustAddEdge("B", "A", eq("B.k", "A.k"))
	if canonGraph(g1) != canonGraph(g2) {
		t.Errorf("mirrored equality edges canonicalize differently:\n%s\nvs\n%s",
			canonGraph(g1), canonGraph(g2))
	}

	// Conjunct order and comparison mirroring normalize too.
	p := eq("A.k", "B.k")
	q := expr.Bin{Op: expr.OpLt, L: expr.Col{Name: "A.v"}, R: expr.Col{Name: "B.v"}}
	qm := expr.Bin{Op: expr.OpGt, L: expr.Col{Name: "B.v"}, R: expr.Col{Name: "A.v"}}
	and := func(l, r expr.Expr) expr.Expr { return expr.Bin{Op: expr.OpAnd, L: l, R: r} }
	if canonExpr(and(p, q)) != canonExpr(and(qm, p)) {
		t.Errorf("reordered mirrored conjunction canonicalizes differently:\n%s\nvs\n%s",
			canonExpr(and(p, q)), canonExpr(and(qm, p)))
	}
	// Asymmetric comparisons stay directional: a < b is not b < a.
	if canonExpr(q) == canonExpr(expr.Bin{Op: expr.OpLt, L: expr.Col{Name: "B.v"}, R: expr.Col{Name: "A.v"}}) {
		t.Error("swapping operands of < must change the canonical form")
	}
}

// The direction fix observed end to end: a session that rebuilds the
// same join with swapped operand order hits the entry the first build
// stored — one compute call, not two.
func TestCacheHitOnMirroredGraphBuild(t *testing.T) {
	withCache(t, 8)
	g1, in := cacheCase(t)
	g2 := graph.New()
	g2.MustAddNode("A", "A")
	g2.MustAddNode("B", "B")
	g2.MustAddEdge("B", "A", expr.Bin{Op: expr.OpEq, L: expr.Col{Name: "B.k"}, R: expr.Col{Name: "A.k"}})
	calls := cComputeCalls.Value()
	d1, err := Compute(context.Background(), g1, in)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Compute(context.Background(), g2, in)
	if err != nil {
		t.Fatal(err)
	}
	if got := cComputeCalls.Value(); got != calls+1 {
		t.Errorf("mirrored graph recomputed: calls = %d, want %d", got, calls+1)
	}
	if !d1.EqualSet(d2) {
		t.Error("mirrored graph served a different D(G)")
	}
}

// The fd.cache.entries gauge must track CacheLen through every
// mutation path: store, store-with-eviction, capacity shrink, and
// invalidation.
func TestCacheEntriesGaugeTracksLen(t *testing.T) {
	withCache(t, 2)
	check := func(when string) {
		t.Helper()
		if got, want := gCacheEntries.Value(), int64(CacheLen()); got != want {
			t.Fatalf("%s: gauge %d, CacheLen %d", when, got, want)
		}
	}
	g, in := cacheCase(t)
	if _, err := Compute(context.Background(), g, in); err != nil {
		t.Fatal(err)
	}
	check("after first store")
	// Mutate the instance so each Compute stores under a fresh key,
	// driving the eviction path once the capacity is exceeded.
	for i := 0; i < 4; i++ {
		in.Relation("A").AddRow(strconv.Itoa(100+i), "pad")
		if _, err := Compute(context.Background(), g, in); err != nil {
			t.Fatal(err)
		}
		check("after store with eviction")
	}
	if CacheLen() != 2 {
		t.Fatalf("CacheLen = %d, want capacity 2", CacheLen())
	}
	SetCacheCapacity(1)
	check("after capacity shrink")
	InvalidateCache()
	check("after invalidate")
}
