package fd

import (
	"context"
	"fmt"

	"clio/internal/budget"
)

// Budget caps the resources one D(G) computation may consume; it is
// threaded through a context with WithBudget and checked by all four
// full-disjunction algorithms and the underlying join operators. The
// limits are cumulative over every tuple the computation
// materializes (intermediates included), which is the quantity that
// actually bounds resident memory: D(G) is a full-disjunction
// instance whose size can blow up combinatorially (Definition 3.14),
// so a bounded service degrades gracefully with ErrBudgetExceeded
// instead of an OOM kill.
type Budget = budget.Budget

// BudgetError carries which limit ("rows", "bytes", or "spill") a
// computation exceeded, plus the spill configuration at abort time; it
// matches ErrBudgetExceeded under errors.Is.
type BudgetError = budget.Error

// ErrBudgetExceeded is the sentinel for any budget violation.
var ErrBudgetExceeded = budget.ErrExceeded

// The spill states a BudgetError reports (see budget.Spill*): whether
// the abort happened with spilling disabled, enabled-but-unspillable,
// or with the disk cap itself exceeded.
const (
	SpillDisabled           = budget.SpillDisabled
	SpillEnabled            = budget.SpillEnabled
	SpillDiskCap            = budget.SpillDiskCap
	SpillRecursionExhausted = budget.SpillRecursionExhausted
)

// WithBudget returns a context that enforces b on every D(G)
// computation (and join) run under it. A zero budget is unlimited
// and returns ctx unchanged. Each call creates a fresh tracker:
// attach one budget per logical computation (e.g. per request).
func WithBudget(ctx context.Context, b Budget) context.Context {
	return budget.With(ctx, budget.NewTracker(b))
}

// BudgetUsed reports the rows and bytes charged against the
// context's budget so far (zero without a budget).
func BudgetUsed(ctx context.Context) (rows, bytes int64) {
	tr := budget.FromContext(ctx)
	return tr.Rows(), tr.Bytes()
}

// PanicError reports a panic recovered inside an fd computation — a
// parallel worker that died is converted into this failure instead
// of a hang or a process crash. Serving layers map it to an internal
// error (HTTP 500), not a semantic operator failure.
type PanicError struct {
	// Where locates the recovered panic (e.g. "parallel worker").
	Where string
	// Value is the recovered panic value.
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("fd: panic recovered in %s: %v", e.Where, e.Value)
}
