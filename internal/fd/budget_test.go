package fd

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"clio/internal/fault"
)

// Every D(G) algorithm must honor a row budget: the computation stops
// with ErrBudgetExceeded, and — the graceful-degradation guarantee —
// the tuples actually materialized stay within 2× of the cap, so
// resident memory is bounded by the budget, not by |D(G)|.
func TestBudgetStopsAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, in := randomCyclicCase(rng, 4, 6)
	tg, tin := randomTreeCase(rng, 4, 6)

	cases := []struct {
		name string
		run  func(ctx context.Context) error
	}{
		{"FullDisjunction", func(ctx context.Context) error { _, err := FullDisjunction(ctx, g, in); return err }},
		{"FullDisjunctionParallel", func(ctx context.Context) error { _, err := FullDisjunctionParallel(ctx, g, in); return err }},
		{"FullDisjunctionNaive", func(ctx context.Context) error { _, err := FullDisjunctionNaive(ctx, g, in); return err }},
		{"FullDisjunctionOuterJoin", func(ctx context.Context) error { _, err := FullDisjunctionOuterJoin(ctx, tg, tin); return err }},
		{"Compute", func(ctx context.Context) error { _, err := Compute(ctx, g, in); return err }},
	}
	const maxRows = 3
	for _, c := range cases {
		ctx := WithBudget(context.Background(), Budget{MaxRows: maxRows})
		err := c.run(ctx)
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Errorf("%s: err = %v, want ErrBudgetExceeded", c.name, err)
			continue
		}
		var be *BudgetError
		if !errors.As(err, &be) || be.Limit != "rows" {
			t.Errorf("%s: error does not name the rows limit: %#v", c.name, err)
		}
		if rows, _ := BudgetUsed(ctx); rows > 2*maxRows {
			t.Errorf("%s: materialized %d rows, more than 2x the budget of %d", c.name, rows, maxRows)
		}
	}
}

func TestBudgetByteLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g, in := randomCyclicCase(rng, 4, 6)
	ctx := WithBudget(context.Background(), Budget{MaxBytes: 64})
	_, err := FullDisjunction(ctx, g, in)
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != "bytes" {
		t.Fatalf("want bytes budget violation, got %v", err)
	}
}

// A generous budget must not change any result.
func TestGenerousBudgetIsTransparent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, in := randomCyclicCase(rng, 4, 4)
	free, err := Compute(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithBudget(context.Background(), Budget{MaxRows: 1 << 30, MaxBytes: 1 << 40})
	capped, err := Compute(ctx, g, in)
	if err != nil {
		t.Fatal(err)
	}
	if !free.EqualSet(capped) {
		t.Error("budgeted Compute returned a different D(G)")
	}
	if rows, bytes := BudgetUsed(ctx); rows == 0 || bytes == 0 {
		t.Errorf("budget accounting recorded nothing (rows=%d bytes=%d)", rows, bytes)
	}
}

// A cache hit must be charged like a computation: the answer is 413
// either way, never "OK because it happened to be cached".
func TestBudgetAppliesToCacheHits(t *testing.T) {
	prev := SetCacheCapacity(8)
	defer func() { SetCacheCapacity(prev); InvalidateCache() }()
	InvalidateCache()

	rng := rand.New(rand.NewSource(12))
	g, in := randomTreeCase(rng, 3, 6)
	warm, err := Compute(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Len() == 0 {
		t.Skip("degenerate random case: empty D(G)")
	}
	ctx := WithBudget(context.Background(), Budget{MaxRows: int64(warm.Len()) - 1})
	if _, err := Compute(ctx, g, in); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("cache hit ignored the budget: %v", err)
	}
}

// An injected panic inside a parallel worker must surface as a typed
// *PanicError — one failed computation, not a crashed process or a
// hung WaitGroup — and the next computation must succeed untouched.
func TestChaosWorkerPanicContained(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	fault.Set("fd.worker", fault.Spec{Mode: fault.ModePanic, Times: 1})

	rng := rand.New(rand.NewSource(13))
	g, in := randomCyclicCase(rng, 4, 3)
	_, err := FullDisjunctionParallel(context.Background(), g, in)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("worker panic not converted: err = %v", err)
	}
	if _, ok := pe.Value.(*fault.Panic); !ok {
		t.Errorf("recovered value %v is not the injected panic", pe.Value)
	}
	// The point is exhausted (Times: 1): the retry must succeed.
	d, err := FullDisjunctionParallel(context.Background(), g, in)
	if err != nil || d.Len() == 0 {
		t.Fatalf("computation after contained panic failed: %v", err)
	}
}

// Injected cache faults (lookup degraded to miss, store skipped) must
// never change results — the cache is an optimization only.
func TestChaosCacheFaultsAreTransparent(t *testing.T) {
	prev := SetCacheCapacity(8)
	defer func() { SetCacheCapacity(prev); InvalidateCache() }()
	InvalidateCache()

	rng := rand.New(rand.NewSource(14))
	g, in := randomTreeCase(rng, 3, 5)
	want, err := Compute(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}

	fault.Enable(1)
	defer fault.Disable()
	fault.Set("fd.cache.lookup", fault.Spec{Mode: fault.ModeError})
	fault.Set("fd.cache.store", fault.Spec{Mode: fault.ModeError})
	for i := 0; i < 3; i++ {
		got, err := Compute(context.Background(), g, in)
		if err != nil {
			t.Fatal(err)
		}
		if !want.EqualSet(got) {
			t.Fatalf("round %d: cache faults changed the result", i)
		}
	}
}
