package fd

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"clio/internal/expr"
	"clio/internal/graph"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

func TestExtendLeafMatchesRecompute(t *testing.T) {
	// Randomized: build a tree, compute D(G) incrementally leaf by
	// leaf, and compare with the from-scratch computation at every
	// step.
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.Intn(4)
		g, in := randomTreeCase(rng, k, 1+rng.Intn(5))
		nodes := g.Nodes()

		// Grow from the first node following a spanning order.
		order, edges, ok := g.SpanningTreeOrder()
		if !ok {
			t.Fatal("tree should have spanning order")
		}
		cur := graph.New()
		n0, _ := g.Node(order[0])
		cur.MustAddNode(n0.Name, n0.Base)
		dg, err := Compute(context.Background(), cur, in)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(order); i++ {
			next := cur.Clone()
			n, _ := g.Node(order[i])
			next.MustAddNode(n.Name, n.Base)
			e := edges[i]
			next.MustAddEdge(e.A, e.B, e.Pred)

			inc, err := ExtendLeaf(context.Background(), dg, cur, next, in)
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, i, err)
			}
			ref, err := Compute(context.Background(), next, in)
			if err != nil {
				t.Fatal(err)
			}
			if !inc.EqualSet(ref) {
				t.Fatalf("trial %d step %d: incremental differs\ninc:\n%v\nref:\n%v\ngraph:\n%v",
					trial, i, inc.Sorted(), ref.Sorted(), next)
			}
			cur, dg = next, inc
		}
		_ = nodes
	}
}

func TestExtendLeafErrors(t *testing.T) {
	sch := schema.NewDatabase()
	for _, n := range []string{"A", "B", "C"} {
		sch.MustAddRelation(schema.NewRelation(n, schema.Attribute{Name: "k", Type: value.KindInt}))
	}
	in := relation.NewInstance(sch)
	for _, n := range []string{"A", "B", "C"} {
		r := in.NewRelationFor(n)
		r.AddRow("1")
		in.MustAdd(r)
	}
	gA := graph.New()
	gA.MustAddNode("A", "A")
	dgA, err := Compute(context.Background(), gA, in)
	if err != nil {
		t.Fatal(err)
	}

	// Two-node jump: not a single-leaf extension.
	gABC := graph.New()
	gABC.MustAddNode("A", "A")
	gABC.MustAddNode("B", "B")
	gABC.MustAddNode("C", "C")
	gABC.MustAddEdge("A", "B", expr.Equals("A.k", "B.k"))
	gABC.MustAddEdge("B", "C", expr.Equals("B.k", "C.k"))
	if _, err := ExtendLeaf(context.Background(), dgA, gA, gABC, in); err == nil {
		t.Error("two-node extension should fail")
	}

	// Edge relabel: not an extension.
	gAB1 := graph.New()
	gAB1.MustAddNode("A", "A")
	gAB1.MustAddNode("B", "B")
	gAB1.MustAddEdge("A", "B", expr.Equals("A.k", "B.k"))
	dgAB, err := Compute(context.Background(), gAB1, in)
	if err != nil {
		t.Fatal(err)
	}
	gAB2C := graph.New()
	gAB2C.MustAddNode("A", "A")
	gAB2C.MustAddNode("B", "B")
	gAB2C.MustAddNode("C", "C")
	gAB2C.MustAddEdge("A", "B", expr.MustParse("A.k = B.k AND A.k = 1"))
	gAB2C.MustAddEdge("B", "C", expr.Equals("B.k", "C.k"))
	if _, err := ExtendLeaf(context.Background(), dgAB, gAB1, gAB2C, in); err == nil {
		t.Error("relabeled extension should fail")
	}

	// Non-leaf addition (cycle): fails.
	gTri := graph.New()
	gTri.MustAddNode("A", "A")
	gTri.MustAddNode("B", "B")
	gTri.MustAddNode("C", "C")
	gTri.MustAddEdge("A", "B", expr.Equals("A.k", "B.k"))
	gTri.MustAddEdge("B", "C", expr.Equals("B.k", "C.k"))
	gTri.MustAddEdge("A", "C", expr.Equals("A.k", "C.k"))
	if _, err := ExtendLeaf(context.Background(), dgAB, gAB1, gTri, in); err == nil {
		t.Error("cycle-creating extension should fail")
	}
}

func TestComputeIncrementalFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	g, in := randomTreeCase(rng, 3, 3)
	// nil previous state: plain compute.
	d1, err := ComputeIncremental(context.Background(), nil, nil, g, in)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Compute(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.EqualSet(d2) {
		t.Error("fallback differs from Compute")
	}
	// Non-extension previous state: falls back silently.
	other := graph.New()
	other.MustAddNode("R0", "R0")
	dgOther, err := Compute(context.Background(), other, in)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := ComputeIncremental(context.Background(), dgOther, other, g, in)
	if err != nil {
		t.Fatal(err)
	}
	if !d3.EqualSet(d2) {
		t.Error("fallback path differs")
	}
}

func BenchmarkExtendLeafVsRecompute(b *testing.B) {
	// Documented here for locality; the E7 harness reports the same.
	g, in := lowFanoutTreeCase(4, 200)
	nodes := g.Nodes()
	old := g.Induced(nodes[:3])
	if !old.Connected() {
		b.Skip("unlucky induced subgraph")
	}
	dg, err := Compute(context.Background(), old, in)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ExtendLeaf(context.Background(), dg, old, g, in); err != nil {
				b.Skip("not a leaf extension under this seed")
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Compute(context.Background(), g, in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// lowFanoutTreeCase builds a chain with wide key space (fan-out ~2),
// suitable for benchmarks.
func lowFanoutTreeCase(k, rows int) (*graph.QueryGraph, *relation.Instance) {
	rng := rand.New(rand.NewSource(8))
	sch := schema.NewDatabase()
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = fmt.Sprintf("R%d", i)
		sch.MustAddRelation(schema.NewRelation(names[i],
			schema.Attribute{Name: "k", Type: value.KindInt},
			schema.Attribute{Name: "v", Type: value.KindInt},
		))
	}
	in := relation.NewInstance(sch)
	for i := 0; i < k; i++ {
		r := in.NewRelationFor(names[i])
		for j := 0; j < rows; j++ {
			r.AddValues(value.Int(int64(rng.Intn(rows/2))), value.Int(int64(j)))
		}
		in.MustAdd(r)
	}
	g := graph.New()
	g.MustAddNode(names[0], names[0])
	for i := 1; i < k; i++ {
		g.MustAddNode(names[i], names[i])
		g.MustAddEdge(names[i-1], names[i], expr.Equals(names[i-1]+".k", names[i]+".k"))
	}
	return g, in
}

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 15; trial++ {
		g, in := randomTreeCase(rng, 2+rng.Intn(3), 1+rng.Intn(5))
		seq, err := FullDisjunction(context.Background(), g, in)
		if err != nil {
			t.Fatal(err)
		}
		par, err := FullDisjunctionParallel(context.Background(), g, in)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.EqualSet(par) {
			t.Fatalf("trial %d: parallel differs", trial)
		}
	}
	// Errors mirror the sequential variant.
	if _, err := FullDisjunctionParallel(context.Background(), graph.New(), relation.NewInstance(nil)); err == nil {
		t.Error("empty graph should error")
	}
	g := graph.New()
	g.MustAddNode("A", "A")
	g.MustAddNode("B", "B")
	if _, err := FullDisjunctionParallel(context.Background(), g, relation.NewInstance(nil)); err == nil {
		t.Error("disconnected graph should error")
	}
	g2 := graph.New()
	g2.MustAddNode("Nope", "Nope")
	if _, err := FullDisjunctionParallel(context.Background(), g2, relation.NewInstance(nil)); err == nil {
		t.Error("unknown base should error")
	}
}

func BenchmarkFullDisjunctionParallel(b *testing.B) {
	g, in := lowFanoutTreeCase(5, 150)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := FullDisjunction(context.Background(), g, in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := FullDisjunctionParallel(context.Background(), g, in); err != nil {
				b.Fatal(err)
			}
		}
	})
}
