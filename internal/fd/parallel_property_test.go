package fd

import (
	"context"
	"math/rand"
	"testing"

	"clio/internal/expr"
	"clio/internal/graph"
	"clio/internal/obs"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// randomCyclicCase builds a random connected cyclic query graph over k
// relations with random data: a random tree plus 1..2 extra edges.
func randomCyclicCase(rng *rand.Rand, k, rows int) (*graph.QueryGraph, *relation.Instance) {
	g, in := randomTreeCase(rng, k, rows)
	// Add extra edges until the graph is cyclic; for k ≥ 3 a tree
	// always has a missing pair, so this terminates.
	names := g.Nodes()
	extra := 1 + rng.Intn(2)
	for added := 0; added < extra; {
		a := names[rng.Intn(len(names))]
		b := names[rng.Intn(len(names))]
		if a == b {
			continue
		}
		if _, dup := g.EdgeBetween(a, b); dup {
			if g.IsTree() {
				continue // keep looking for a cycle-closing edge
			}
			break // already cyclic; saturated pair ends the loop
		}
		g.MustAddEdge(a, b, expr.Equals(a+".k", b+".k"))
		added++
	}
	return g, in
}

// Differential property: the parallel subgraph algorithm computes the
// same D(G) set as the sequential one (and the naive reference) on
// randomized cyclic graphs and instances. Run under -race this also
// exercises the worker pool for data races.
func TestParallelEqualsSequentialRandomizedCyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 30; trial++ {
		k := 3 + rng.Intn(2) // 3..4 relations
		rows := 1 + rng.Intn(4)
		g, in := randomCyclicCase(rng, k, rows)
		if g.IsTree() {
			t.Fatalf("trial %d: generator produced a tree", trial)
		}
		seq, err := FullDisjunction(context.Background(), g, in)
		if err != nil {
			t.Fatal(err)
		}
		par, err := FullDisjunctionParallel(context.Background(), g, in)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.EqualSet(par) {
			t.Fatalf("trial %d: parallel vs sequential mismatch on\n%v\nseq:\n%v\npar:\n%v",
				trial, g, seq.Sorted(), par.Sorted())
		}
		naive, err := FullDisjunctionNaive(context.Background(), g, in)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.EqualSet(naive) {
			t.Fatalf("trial %d: sequential vs naive mismatch", trial)
		}
	}
}

// Compute must route cyclic graphs with many connected subsets to the
// parallel variant and record the choice in the algo span attribute.
func TestComputeRoutesCyclicToParallel(t *testing.T) {
	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	col := &obs.CollectExporter{}
	obs.SetExporter(col)
	defer func() {
		obs.SetExporter(nil)
		obs.SetEnabled(wasEnabled)
	}()

	algoOf := func(g *graph.QueryGraph, in *relation.Instance) string {
		col.Reset()
		if _, err := Compute(context.Background(), g, in); err != nil {
			t.Fatal(err)
		}
		for _, root := range col.Roots() {
			if root.Name == "fd.compute" {
				if a, ok := obs.AttrMap(root)["algo"]; ok {
					return a.(string)
				}
			}
		}
		t.Fatal("no fd.compute span with algo attribute exported")
		return ""
	}

	// A 4-cycle has 13 connected subsets ≥ ParallelSubsetThreshold.
	rng := rand.New(rand.NewSource(7))
	g, in := randomTreeCase(rng, 4, 2)
	names := g.Nodes()
	// Close a cycle through all four nodes if the tree edge is absent.
	for i := range names {
		a, b := names[i], names[(i+1)%len(names)]
		if _, ok := g.EdgeBetween(a, b); !ok {
			g.MustAddEdge(a, b, expr.Equals(a+".k", b+".k"))
		}
	}
	if g.IsTree() {
		t.Fatal("test graph is unexpectedly a tree")
	}
	if n := len(g.ConnectedSubsets()); n < ParallelSubsetThreshold {
		t.Fatalf("test graph has only %d subsets, below threshold %d", n, ParallelSubsetThreshold)
	}
	if algo := algoOf(g, in); algo != "subgraph_parallel" {
		t.Errorf("large cyclic graph routed to %q, want subgraph_parallel", algo)
	}

	// A triangle has 7 connected subsets, below the threshold of 8:
	// stays sequential.
	tri, triIn := smallTriangle()
	if n := len(tri.ConnectedSubsets()); n >= ParallelSubsetThreshold {
		t.Fatalf("triangle has %d subsets, expected below threshold", n)
	}
	if algo := algoOf(tri, triIn); algo != "subgraph" {
		t.Errorf("small cyclic graph routed to %q, want subgraph", algo)
	}

	// Trees keep the outer-join fast path.
	tg, tin := randomTreeCase(rng, 3, 2)
	if algo := algoOf(tg, tin); algo != "outer_join" {
		t.Errorf("tree routed to %q, want outer_join", algo)
	}
}

// smallTriangle builds a 3-node cyclic graph over tiny relations.
func smallTriangle() (*graph.QueryGraph, *relation.Instance) {
	sch := schema.NewDatabase()
	for _, n := range []string{"A", "B", "C"} {
		sch.MustAddRelation(schema.NewRelation(n,
			schema.Attribute{Name: "k", Type: value.KindInt}))
	}
	in := relation.NewInstance(sch)
	for i, n := range []string{"A", "B", "C"} {
		r := in.NewRelationFor(n)
		r.AddValues(value.Int(int64(i % 2)))
		in.MustAdd(r)
	}
	g := graph.New()
	g.MustAddNode("A", "A")
	g.MustAddNode("B", "B")
	g.MustAddNode("C", "C")
	g.MustAddEdge("A", "B", expr.Equals("A.k", "B.k"))
	g.MustAddEdge("B", "C", expr.Equals("B.k", "C.k"))
	g.MustAddEdge("A", "C", expr.Equals("A.k", "C.k"))
	return g, in
}

// All D(G) algorithms must notice a cancelled context and return its
// error instead of burning CPU to completion.
func TestCancellationStopsAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	g, in := randomCyclicCase(rng, 4, 3)
	tg, tin := randomTreeCase(rng, 4, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	cases := []struct {
		name string
		run  func() error
	}{
		{"FullDisjunction", func() error { _, err := FullDisjunction(ctx, g, in); return err }},
		{"FullDisjunctionParallel", func() error { _, err := FullDisjunctionParallel(ctx, g, in); return err }},
		{"FullDisjunctionNaive", func() error { _, err := FullDisjunctionNaive(ctx, g, in); return err }},
		{"FullDisjunctionOuterJoin", func() error { _, err := FullDisjunctionOuterJoin(ctx, tg, tin); return err }},
		{"Compute", func() error { _, err := Compute(ctx, g, in); return err }},
	}
	for _, c := range cases {
		if err := c.run(); err != context.Canceled {
			t.Errorf("%s: err = %v, want context.Canceled", c.name, err)
		}
	}
}

// Cancelling mid-flight must abort the parallel run; exercised with a
// deadline that expires while subgraphs are still being joined.
func TestParallelCancellationMidFlight(t *testing.T) {
	// Large-ish cyclic case so the run does not finish instantly.
	rng := rand.New(rand.NewSource(77))
	g, in := randomCyclicCase(rng, 5, 40)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := FullDisjunctionParallel(ctx, g, in)
		done <- err
	}()
	cancel()
	if err := <-done; err != nil && err != context.Canceled {
		t.Errorf("err = %v, want nil or context.Canceled", err)
	}
}
