package fd

import (
	"context"
	"fmt"
	"testing"

	"clio/internal/expr"
	"clio/internal/graph"
	"clio/internal/obs"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// plannerCase builds a 3-relation chain Small — Mid — Big with sharply
// skewed sizes and key selectivities, so the cost-based order is
// unambiguous: start at Small and attach Mid before Big.
func plannerCase() (*graph.QueryGraph, *relation.Instance) {
	sch := schema.NewDatabase()
	sizes := map[string]int{"Small": 3, "Mid": 40, "Big": 400}
	for name := range sizes {
		sch.MustAddRelation(schema.NewRelation(name,
			schema.Attribute{Name: "k", Type: value.KindInt},
			schema.Attribute{Name: "v", Type: value.KindInt},
		))
	}
	in := relation.NewInstance(sch)
	for name, n := range sizes {
		r := in.NewRelationFor(name)
		for i := 0; i < n; i++ {
			r.AddValues(value.Int(int64(i%10)), value.Int(int64(i)))
		}
		in.MustAdd(r)
	}
	g := graph.New()
	// Insertion order deliberately puts Big first so the default
	// spanning order (node insertion BFS) differs from the cost order.
	g.MustAddNode("Big", "Big")
	g.MustAddNode("Mid", "Mid")
	g.MustAddNode("Small", "Small")
	g.MustAddEdge("Big", "Mid", expr.Equals("Big.k", "Mid.k"))
	g.MustAddEdge("Mid", "Small", expr.Equals("Mid.k", "Small.k"))
	return g, in
}

func TestChooseJoinOrderStartsSmallAndStaysConnected(t *testing.T) {
	g, in := plannerCase()
	po, ok := chooseJoinOrder(g, in, false)
	if !ok {
		t.Fatal("planner failed on a fully resolvable graph")
	}
	if len(po.order) != 3 || len(po.est) != 3 || len(po.edges) != 3 {
		t.Fatalf("order/est/edges lengths = %d/%d/%d, want 3", len(po.order), len(po.est), len(po.edges))
	}
	if po.order[0] != "Small" {
		t.Errorf("start = %q, want Small (the smallest relation)", po.order[0])
	}
	// Connectivity: each node past the first attaches via its recorded
	// edge to a node already in the prefix.
	seen := map[string]bool{po.order[0]: true}
	for i := 1; i < len(po.order); i++ {
		e := po.edges[i]
		other, ok := e.Other(po.order[i])
		if !ok || !seen[other] {
			t.Errorf("step %d: node %s does not attach to the prefix via %v", i, po.order[i], e)
		}
		seen[po.order[i]] = true
	}
	// Small ⋈ Mid is far cheaper than Small ⋈ ... ⋈ Big first, and the
	// only edge out of Small reaches Mid anyway; the planner must not
	// invent a cross product.
	if po.order[1] != "Mid" {
		t.Errorf("second node = %q, want Mid", po.order[1])
	}
	for i, e := range po.est {
		if e < 1 {
			t.Errorf("est[%d] = %d, want >= 1", i, e)
		}
	}
}

func TestChooseJoinOrderDeterministic(t *testing.T) {
	g, in := plannerCase()
	a, ok := chooseJoinOrder(g, in, true)
	if !ok {
		t.Fatal("planner failed")
	}
	b, ok := chooseJoinOrder(g, in, true)
	if !ok {
		t.Fatal("planner failed on second run")
	}
	if !sameOrder(a.order, b.order) {
		t.Fatalf("orders differ across identical runs: %v vs %v", a.order, b.order)
	}
	for i := range a.est {
		if a.est[i] != b.est[i] {
			t.Fatalf("estimates differ at %d: %d vs %d", i, a.est[i], b.est[i])
		}
	}
}

// TestPlannerOrderAgreesWithDefault checks the planner-chosen order
// computes exactly the same D(G) as the default spanning order (the
// full disjunction is order-independent; only intermediates change).
func TestPlannerOrderAgreesWithDefault(t *testing.T) {
	g, in := plannerCase()
	planned, err := FullDisjunctionOuterJoin(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := FullDisjunctionNaive(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	if !planned.EqualSet(naive) {
		t.Fatalf("planned-order D(G) (%d rows) differs from naive (%d rows)", planned.Len(), naive.Len())
	}
}

// TestExplainPlannerBlock runs EXPLAIN and checks the planner block
// round-trips: chosen join orders with per-step estimates, fresh
// statistics, and est_rows attributes on the executed join spans next
// to the actual row counts.
func TestExplainPlannerBlock(t *testing.T) {
	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(wasEnabled) })
	g, in := plannerCase()
	res, err := ExplainCompute(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Planner == nil {
		t.Fatal("explain carries no planner block")
	}
	if len(res.Planner.Orders) == 0 {
		t.Fatal("planner block has no chosen orders")
	}
	ord := res.Planner.Orders[0]
	if len(ord.Order) != 3 || len(ord.EstRows) != 3 {
		t.Fatalf("planner order %v estimates %v, want 3 entries each", ord.Order, ord.EstRows)
	}
	for name, st := range res.Planner.Stats {
		if !st.Fresh {
			t.Errorf("stats for %s not fresh immediately after the run", name)
		}
		if st.Rows <= 0 {
			t.Errorf("stats for %s report %d rows", name, st.Rows)
		}
	}
	if len(res.Planner.Stats) != 3 {
		t.Fatalf("stats block covers %d relations, want 3", len(res.Planner.Stats))
	}
	// The executed join spans report est vs. actual.
	if res.Root == nil {
		t.Fatal("explain carries no span tree")
	}
	var joins int
	var walk func(s *obs.SpanData)
	walk = func(s *obs.SpanData) {
		if s.Name == "op.join" {
			joins++
			var est, rows bool
			for _, a := range s.Attrs {
				switch a.Key {
				case "est_rows":
					est = true
				case "rows":
					rows = true
				}
			}
			if !est || !rows {
				t.Errorf("op.join span missing est_rows/rows (est=%v rows=%v)", est, rows)
			}
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(res.Root)
	if joins == 0 {
		t.Error("no op.join spans under the explain root")
	}
}

// TestStatsFreshnessGoesStaleOnMutation pins the freshness contract:
// a mutation after the stats were computed flips Fresh until the next
// computation consults them again.
func TestStatsFreshnessGoesStaleOnMutation(t *testing.T) {
	g, in := plannerCase()
	if _, err := FullDisjunctionOuterJoin(context.Background(), g, in); err != nil {
		t.Fatal(err)
	}
	sb := statsBlock(g, in)
	if !sb["Small"].Fresh {
		t.Fatal("Small stats not fresh after computation")
	}
	in.Relation("Small").AddValues(value.Int(99), value.Int(99))
	sb = statsBlock(g, in)
	if sb["Small"].Fresh {
		t.Error("Small stats still fresh after a mutation")
	}
	if sb["Small"].Rows != in.Relation("Small").Len() {
		t.Errorf("stats block rows %d, want live %d", sb["Small"].Rows, in.Relation("Small").Len())
	}
}

// TestPlannerIncrementalStatsAcrossGrowth checks the stats cache folds
// appended rows in instead of rebuilding (row counts and distinct
// estimates track growth), which is what keeps planning cheap inside
// the session edit loop.
func TestPlannerIncrementalStatsAcrossGrowth(t *testing.T) {
	s := relation.NewScheme("R.k")
	r := relation.New("R", s)
	for i := 0; i < 10; i++ {
		r.AddValues(value.Int(int64(i)))
	}
	st := r.Stats()
	if st.Rows != 10 || st.Distinct[0] != 10 {
		t.Fatalf("initial stats rows=%d distinct=%d", st.Rows, st.Distinct[0])
	}
	for i := 0; i < 5; i++ {
		r.AddValues(value.Int(int64(i))) // duplicates: distinct unchanged
	}
	st = r.Stats()
	if st.Rows != 15 || st.Distinct[0] != 10 {
		t.Fatalf("grown stats rows=%d distinct=%d, want 15/10", st.Rows, st.Distinct[0])
	}
	if st.Version != r.Version() {
		t.Fatalf("stats version %d, relation version %d", st.Version, r.Version())
	}
}

// Cyclic coverage: the cost planner serves every connected subset of a
// cyclic graph and the result matches the naive reference.
func TestPlannerCyclicSubsetsAgree(t *testing.T) {
	sch := schema.NewDatabase()
	for i := 0; i < 3; i++ {
		sch.MustAddRelation(schema.NewRelation(fmt.Sprintf("C%d", i),
			schema.Attribute{Name: "k", Type: value.KindInt},
		))
	}
	in := relation.NewInstance(sch)
	for i := 0; i < 3; i++ {
		r := in.NewRelationFor(fmt.Sprintf("C%d", i))
		for j := 0; j < 4+i; j++ {
			r.AddValues(value.Int(int64(j % 3)))
		}
		in.MustAdd(r)
	}
	g := graph.New()
	for i := 0; i < 3; i++ {
		g.MustAddNode(fmt.Sprintf("C%d", i), fmt.Sprintf("C%d", i))
	}
	g.MustAddEdge("C0", "C1", expr.Equals("C0.k", "C1.k"))
	g.MustAddEdge("C1", "C2", expr.Equals("C1.k", "C2.k"))
	g.MustAddEdge("C2", "C0", expr.Equals("C2.k", "C0.k"))
	got, err := FullDisjunction(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FullDisjunctionNaive(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualSet(want) {
		t.Fatalf("cyclic planned D(G) (%d rows) differs from naive (%d rows)", got.Len(), want.Len())
	}
}
