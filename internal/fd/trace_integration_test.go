// External test package: paperdb depends on core which depends on fd,
// so the integration test lives outside package fd to break the cycle.
package fd_test

import (
	"context"
	"slices"
	"testing"

	"clio/internal/core"
	"clio/internal/expr"
	"clio/internal/fd"
	"clio/internal/obs"
	"clio/internal/paperdb"
)

// withCollector enables tracing into a fresh CollectExporter for the
// duration of one test, restoring the disabled default afterwards.
func withCollector(t *testing.T) *obs.CollectExporter {
	t.Helper()
	col := &obs.CollectExporter{}
	obs.SetEnabled(true)
	obs.SetExporter(col)
	t.Cleanup(func() {
		obs.SetEnabled(false)
		obs.SetExporter(nil)
	})
	return col
}

// TestComputeSpanTreeFigure8 runs fd.Compute on the Figure 6 query
// graph (whose D(G) is the paper's Figure 8) and asserts the emitted
// span tree: a tree-shaped graph must route through the outer-join
// algorithm, with the node count and result size recorded as
// attributes.
func TestComputeSpanTreeFigure8(t *testing.T) {
	col := withCollector(t)
	m := paperdb.Figure6G()
	in := paperdb.Instance()

	dg, err := fd.Compute(context.Background(), m.Graph, in)
	if err != nil {
		t.Fatal(err)
	}

	roots := col.Roots()
	if len(roots) != 1 {
		t.Fatalf("got %d trace roots, want 1", len(roots))
	}
	root := roots[0]
	names := obs.SpanNames(root)
	for _, want := range []string{"fd.compute", "fd.compute/fd.outer_join"} {
		if !slices.Contains(names, want) {
			t.Errorf("span tree misses %q; have %v", want, names)
		}
	}
	attrs := obs.AttrMap(root)
	if attrs["algo"] != "outer_join" {
		t.Errorf("algo attr = %v, want outer_join", attrs["algo"])
	}
	if attrs["nodes"] != int64(3) {
		t.Errorf("nodes attr = %v, want 3", attrs["nodes"])
	}
	oj := root.Children[0]
	if got := obs.AttrMap(oj)["tuples"]; got != int64(dg.Len()) {
		t.Errorf("outer_join tuples attr = %v, want %d", got, dg.Len())
	}
}

// TestEngineSpanTreeEndToEnd drives the full illustration pipeline on
// the Figure 8 scenario under a root span and asserts the engine
// layers nest in the trace: illustration selection above D(G)
// computation above the join kernels' parent spans.
func TestEngineSpanTreeEndToEnd(t *testing.T) {
	col := withCollector(t)
	m := paperdb.Figure6G()
	in := paperdb.Instance()

	ctx, span := obs.StartSpan(context.Background(), "test.session")
	il, err := core.SufficientIllustration(ctx, m, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(il.Examples) == 0 {
		t.Fatal("empty sufficient illustration")
	}
	span.End()

	roots := col.Roots()
	if len(roots) != 1 {
		t.Fatalf("got %d trace roots, want 1", len(roots))
	}
	names := obs.SpanNames(roots[0])
	for _, want := range []string{
		"test.session/core.sufficient_illustration",
		"test.session/core.sufficient_illustration/core.all_examples",
		"test.session/core.sufficient_illustration/core.all_examples/fd.compute",
		"test.session/core.sufficient_illustration/core.all_examples/fd.compute/fd.outer_join",
		"test.session/core.sufficient_illustration/core.all_examples/core.examples_on",
		"test.session/core.sufficient_illustration/core.select_sufficient",
	} {
		if !slices.Contains(names, want) {
			t.Errorf("span tree misses %q; have %v", want, names)
		}
	}
}

// TestComputeSubgraphAlgoSpan checks the algorithm-decision attribute
// on a cyclic graph, which cannot use the outer-join tree.
func TestComputeSubgraphAlgoSpan(t *testing.T) {
	col := withCollector(t)
	m := paperdb.Figure6G()
	// Close the cycle Children—PhoneDir so Compute must fall back to
	// subgraph enumeration.
	m.Graph.MustAddEdge("Children", "PhoneDir", expr.Equals("Children.mid", "PhoneDir.ID"))

	if _, err := fd.Compute(context.Background(), m.Graph, paperdb.Instance()); err != nil {
		t.Fatal(err)
	}
	roots := col.Roots()
	if len(roots) != 1 {
		t.Fatalf("got %d trace roots, want 1", len(roots))
	}
	attrs := obs.AttrMap(roots[0])
	if attrs["algo"] != "subgraph" {
		t.Errorf("algo attr = %v, want subgraph", attrs["algo"])
	}
	names := obs.SpanNames(roots[0])
	if !slices.Contains(names, "fd.compute/fd.full_disjunction") {
		t.Errorf("span tree misses fd.compute/fd.full_disjunction; have %v", names)
	}
}
