package fd

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"clio/internal/graph"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// singleNodeCase builds a one-node graph over its own instance; D(G)
// is then the base relation itself, so every row is visible in the
// result and staleness is directly observable.
func singleNodeCase(t *testing.T) (*graph.QueryGraph, *relation.Instance, *relation.Relation) {
	t.Helper()
	sch := schema.NewDatabase()
	sch.MustAddRelation(schema.NewRelation("R",
		schema.Attribute{Name: "k", Type: value.KindInt},
		schema.Attribute{Name: "x", Type: value.KindString}))
	in := relation.NewInstance(sch)
	r := in.NewRelationFor("R")
	r.AddRow("0", "seed")
	in.MustAdd(r)
	g := graph.New()
	g.MustAddNode("R", "R")
	return g, in, r
}

// The D(G) cache must never serve a stale result while relations
// mutate concurrently with in-flight computations. Each goroutine owns
// its instance (mutation and compute interleave within an owner, the
// serving layer's session-lock discipline) but all share the global
// cache, whose keys collide across goroutines exactly while their
// relation contents coincide. After every mutation, the very next
// Compute must reflect it — a stale hit from any goroutine's earlier
// store is a correctness bug. Run under -race.
func TestCacheNoStaleHitUnderConcurrentMutation(t *testing.T) {
	withCache(t, 64)

	const goroutines = 8
	const roundsPerG = 30
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			g, in, r := singleNodeCase(t)
			for round := 0; round < roundsPerG; round++ {
				// Mutate: a row unique to this goroutine and round, so
				// contents (and cache keys) diverge across goroutines.
				r.AddRow(strconv.Itoa(round+1), fmt.Sprintf("g%d-r%d", gi, round))
				want := r.Len()
				d, err := Compute(context.Background(), g, in)
				if err != nil {
					errc <- fmt.Errorf("g%d round %d: %v", gi, round, err)
					return
				}
				if d.Len() != want {
					errc <- fmt.Errorf("g%d round %d: stale D(G): %d tuples, want %d",
						gi, round, d.Len(), want)
					return
				}
				if !d.Contains(r.At(r.Len() - 1)) {
					errc <- fmt.Errorf("g%d round %d: D(G) missing the just-added row", gi, round)
					return
				}
				// Re-read (likely a cache hit): must still be current.
				d2, err := Compute(context.Background(), g, in)
				if err != nil {
					errc <- fmt.Errorf("g%d round %d reread: %v", gi, round, err)
					return
				}
				if !d.EqualSet(d2) {
					errc <- fmt.Errorf("g%d round %d: cached reread differs from compute", gi, round)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// The entries gauge must agree with the cache after arbitrary
	// interleavings of stores and evictions (S3: every mutation path
	// updates the gauge under the cache lock).
	if got, want := gCacheEntries.Value(), int64(CacheLen()); got != want {
		t.Errorf("fd.cache.entries gauge drifted: gauge %d, CacheLen %d", got, want)
	}
}
