// Package fd computes the full disjunction D(G) of a query graph
// (Definitions 3.5–3.11): the minimum union of the full data
// associations of every induced connected subgraph of G. D(G) is the
// set of data associations a mapping query ranges over, so this is
// the engine room of the whole system.
//
// Three algorithms are provided:
//
//   - FullDisjunctionNaive: literally Definition 3.5 — cross product
//     plus selection per subgraph. Reference implementation for tests.
//   - FullDisjunction: joins along each connected subgraph (hash joins
//     on the edge predicates), then one minimum union. Exact for any
//     connected query graph; exponential in node count because the
//     number of connected subgraphs is.
//   - FullDisjunctionOuterJoin: a sequence of full outer joins along a
//     BFS spanning order, plus a final subsumption sweep. The fast
//     path for tree query graphs, which is what Clio's data walks and
//     chases construct (benchmark E1 quantifies the gap).
package fd

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"clio/internal/algebra"
	"clio/internal/budget"
	"clio/internal/expr"
	"clio/internal/fault"
	"clio/internal/graph"
	"clio/internal/obs"
	"clio/internal/relation"
)

// Instrumentation (all no-ops unless obs.SetEnabled(true)).
var (
	cComputeCalls = obs.GetCounter("fd.compute.calls")
	cSubsets      = obs.GetCounter("fd.subgraph.subsets")
	cPadded       = obs.GetCounter("fd.tuples.padded")
	hComputeNS    = obs.GetHistogram("fd.compute.ns")
)

// Scheme returns the D(G) scheme: the concatenation of every node's
// qualified scheme, in node insertion order.
func Scheme(g *graph.QueryGraph, in *relation.Instance) (*relation.Scheme, error) {
	var s *relation.Scheme
	for _, name := range g.Nodes() {
		n, _ := g.Node(name)
		r, err := in.Aliased(n.Base, n.Name)
		if err != nil {
			return nil, err
		}
		if s == nil {
			s = r.Scheme()
		} else {
			s = s.Concat(r.Scheme())
		}
	}
	if s == nil {
		return nil, fmt.Errorf("fd: empty query graph")
	}
	return s, nil
}

// nodeBlocks returns, for each node name, the positions of its
// attributes within the D(G) scheme.
func nodeBlocks(g *graph.QueryGraph, in *relation.Instance, s *relation.Scheme) (map[string][]int, error) {
	out := map[string][]int{}
	for _, name := range g.Nodes() {
		n, _ := g.Node(name)
		r, err := in.Aliased(n.Base, n.Name)
		if err != nil {
			return nil, err
		}
		out[name] = s.Positions(r.Scheme().Names()...)
	}
	return out, nil
}

// Coverage returns the node names covered by data association d: the
// nodes whose attribute block is not all-null. This inverts
// Definition 3.6 under the paper's assumption that source relations
// contain no all-null tuples.
func Coverage(d relation.Tuple, g *graph.QueryGraph, in *relation.Instance) ([]string, error) {
	blocks, err := nodeBlocks(g, in, d.Scheme())
	if err != nil {
		return nil, err
	}
	var out []string
	for _, name := range g.Nodes() {
		for _, p := range blocks[name] {
			if !d.At(p).IsNull() {
				out = append(out, name)
				break
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// Tag abbreviates a coverage set using the given abbreviation map
// (missing entries fall back to the full name), concatenated in sorted
// order — the paper's "CPPh"-style tags of Figure 8.
func Tag(coverage []string, abbrev map[string]string) string {
	parts := make([]string, len(coverage))
	for i, c := range coverage {
		if a, ok := abbrev[c]; ok {
			parts[i] = a
		} else {
			parts[i] = c
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, "")
}

// associationPlan compiles the F(J) plan (Definition 3.5) for the
// subgraph of g induced by subset, which must induce a connected
// subgraph: inner hash joins along a spanning order, with the cycle
// edges applied as a residual selection.
func associationPlan(g *graph.QueryGraph, subset []string) (algebra.Node, error) {
	return associationPlanWith(g, subset, nil)
}

// associationPlanWith is associationPlan with per-node source
// overrides: a node whose name appears in bind reads from the bound
// algebra node instead of a base-relation scan. The delta planner uses
// this to substitute singleton-delta and pre-mutation-prefix relations
// into individual occurrences of an edited base.
func associationPlanWith(g *graph.QueryGraph, subset []string, bind map[string]algebra.Node) (algebra.Node, error) {
	j := g.Induced(subset)
	order, treeEdges, ok := j.SpanningTreeOrder()
	if !ok {
		return nil, fmt.Errorf("fd: subset %v does not induce a connected subgraph", subset)
	}
	return assemblePlan(j, order, treeEdges, nil, bind), nil
}

// associationPlanCost compiles F(J) like associationPlan but lets the
// cost-based planner (planner.go) choose the join order from the
// instance's per-relation statistics, annotating each join with its
// estimated output cardinality and recording the choice for EXPLAIN.
// It falls back to the plain spanning-tree order when statistics
// cannot be resolved (a missing base relation surfaces when the plan
// runs, exactly as before).
func associationPlanCost(ctx context.Context, g *graph.QueryGraph, subset []string, in *relation.Instance) (algebra.Node, error) {
	j := g.Induced(subset)
	po, ok := chooseJoinOrder(j, in, false)
	if !ok {
		return associationPlanWith(g, subset, nil)
	}
	cPlannerPlans.Inc()
	if def, _, ok := j.SpanningTreeOrder(); ok && !sameOrder(po.order, def) {
		cPlannerReordered.Inc()
	}
	recordPlan(ctx, subset, po)
	return assemblePlan(j, po.order, po.edges, po.est, nil), nil
}

// assemblePlan builds the inner-join chain for a connected attachment
// order over the induced subgraph j: attach[i] joins order[i] onto the
// prefix (attach[0] is unused), est carries the planner's per-step
// output estimates (nil = unplanned), and every edge not consumed as a
// join becomes a residual selection (the cycle edges).
func assemblePlan(j *graph.QueryGraph, order []string, attach []graph.Edge, est []int64, bind map[string]algebra.Node) algebra.Node {
	source := func(name string) algebra.Node {
		if b, ok := bind[name]; ok {
			return b
		}
		n, _ := j.Node(name)
		return algebra.NewScan(n.Base, n.Name)
	}
	node := source(order[0])
	used := map[string]bool{}
	for i := 1; i < len(order); i++ {
		e := attach[i]
		used[edgeKey(e)] = true
		var er int64
		if est != nil {
			er = est[i]
		}
		node = algebra.Join{Kind: algebra.InnerJoin, L: node, R: source(order[i]), On: e.Pred, EstRows: er}
	}
	// Residual (cycle) edges.
	var residual []expr.Expr
	for _, e := range j.Edges() {
		if !used[edgeKey(e)] {
			residual = append(residual, e.Pred)
		}
	}
	if len(residual) > 0 {
		node = algebra.Select{Child: node, Pred: expr.And(residual...)}
	}
	return node
}

// FullAssociations computes F(J) (Definition 3.5) for the subgraph of
// g induced by the given node subset, which must induce a connected
// subgraph. The compiled plan (see associationPlan) is drained under
// the context's budget and cancellation.
func FullAssociations(ctx context.Context, g *graph.QueryGraph, in *relation.Instance, subset []string) (*relation.Relation, error) {
	plan, err := associationPlanCost(ctx, g, subset, in)
	if err != nil {
		return nil, err
	}
	name := "F(" + strings.Join(subset, ",") + ")"
	if sc, ok := plan.(algebra.Scan); ok {
		// Single-node subgraph: share the stored tuples instead of
		// draining a copy (the clone is a slice header, not a deep copy).
		r, err := sc.Eval(in)
		if err != nil {
			return nil, err
		}
		acc := r.Clone()
		acc.Name = name
		return acc, nil
	}
	acc, err := algebra.Collect(ctx, plan, in)
	if err != nil {
		return nil, err
	}
	acc.Name = name
	return acc, nil
}

func edgeKey(e graph.Edge) string {
	a, b := e.A, e.B
	if a > b {
		a, b = b, a
	}
	return a + "\x00" + b + "\x00" + e.Label()
}

// FullDisjunction computes D(G) by enumerating all induced connected
// subgraphs, computing each F(J) with hash joins, padding, and taking
// one minimum union (Definition 3.11). Exact for any connected graph.
// It honors context cancellation between subgraphs.
func FullDisjunction(ctx context.Context, g *graph.QueryGraph, in *relation.Instance) (*relation.Relation, error) {
	if g.NodeCount() == 0 {
		return nil, fmt.Errorf("fd: empty query graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("fd: query graph is not connected")
	}
	return fullDisjunctionSubsets(ctx, g, in, g.ConnectedSubsets())
}

// fullDisjunctionSubsets is the sequential subgraph algorithm over a
// precomputed subset enumeration (shared with Compute, which
// enumerates once to choose between the sequential and parallel
// variants).
func fullDisjunctionSubsets(ctx context.Context, g *graph.QueryGraph, in *relation.Instance, subsets [][]string) (*relation.Relation, error) {
	ctx, span := obs.StartSpan(ctx, "fd.full_disjunction")
	defer span.End()
	s, err := Scheme(g, in)
	if err != nil {
		return nil, err
	}
	span.SetInt("subsets", int64(len(subsets)))
	cSubsets.Add(int64(len(subsets)))
	// The columnar pipeline serves the in-memory tier; the spill tier
	// keeps the row pipeline, whose Grace join and frame formats are
	// byte-identity-critical.
	vec := !budget.FromContext(ctx).SpillEnabled()
	sink := newDGSink(ctx, budget.FromContext(ctx), s)
	for _, sub := range subsets {
		if err := ctx.Err(); err != nil {
			sink.abort()
			return nil, err
		}
		// Stream each F(J) straight into the accumulator: the
		// subgraph's final join output is never materialized on its own.
		plan, err := associationPlanCost(ctx, g, sub, in)
		if err != nil {
			sink.abort()
			return nil, err
		}
		if vec {
			it, err := algebra.OpenVec(ctx, plan, in)
			if err != nil {
				sink.abort()
				return nil, err
			}
			if err := padIntoVec(it, sink, s); err != nil {
				sink.abort()
				return nil, err
			}
		} else {
			it, err := plan.Open(ctx, in)
			if err != nil {
				sink.abort()
				return nil, err
			}
			if err := padInto(it, sink, s); err != nil {
				sink.abort()
				return nil, err
			}
		}
	}
	cPadded.Add(sink.added())
	span.SetInt("padded", sink.added())
	out, err := sink.finalize()
	if err != nil {
		return nil, err
	}
	span.SetInt("tuples", int64(out.Len()))
	return out, nil
}

// padInto drains an iterator, padding every tuple to the D(G) scheme
// s and feeding the accumulator (which charges what it retains). The
// iterator is closed in all cases.
func padInto(it algebra.Iterator, sink dgSink, s *relation.Scheme) error {
	defer it.Close()
	for {
		batch, err := it.Next()
		if err != nil {
			return err
		}
		if batch == nil {
			return nil
		}
		for _, t := range batch {
			if err := sink.add(t.PadTo(s)); err != nil {
				return err
			}
		}
	}
}

// batchSink is the optional columnar fast path of a dgSink: aligned
// batches retained wholesale instead of tuple by tuple.
type batchSink interface {
	addBatch(b *relation.Batch) error
}

// padIntoVec drains a columnar iterator, aligning every batch to the
// D(G) scheme s with a zero-copy remap and feeding the accumulator —
// the columnar counterpart of padInto. The iterator is closed in all
// cases.
func padIntoVec(it algebra.VecIterator, sink dgSink, s *relation.Scheme) error {
	defer it.Close()
	bs, _ := sink.(batchSink)
	perm := relation.PadPerm(it.Scheme(), s)
	for {
		b, err := it.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		aligned := b.Remapped(s, perm)
		if bs != nil {
			if err := bs.addBatch(aligned); err != nil {
				return err
			}
			continue
		}
		n := aligned.Len()
		for i := 0; i < n; i++ {
			if err := sink.add(aligned.Tuple(i)); err != nil {
				return err
			}
		}
	}
}

// FullDisjunctionNaive computes D(G) per the letter of Definition 3.5:
// cross products filtered by the conjunction of edge predicates. Only
// usable on tiny inputs; the reference for differential tests.
func FullDisjunctionNaive(ctx context.Context, g *graph.QueryGraph, in *relation.Instance) (*relation.Relation, error) {
	ctx, span := obs.StartSpan(ctx, "fd.naive")
	defer span.End()
	if g.NodeCount() == 0 {
		return nil, fmt.Errorf("fd: empty query graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("fd: query graph is not connected")
	}
	s, err := Scheme(g, in)
	if err != nil {
		return nil, err
	}
	sink := newDGSink(ctx, budget.FromContext(ctx), s)
	for _, sub := range g.ConnectedSubsets() {
		if err := ctx.Err(); err != nil {
			sink.abort()
			return nil, err
		}
		j := g.Induced(sub)
		// Cross product of the subset's relations, filtered by the
		// conjunction of all edge predicates — the letter of the
		// definition. The cross iterators charge the budget per
		// cross-product tuple as it streams, so this is the algorithm
		// where unbounded materialization is refused first.
		var acc algebra.Node
		for _, name := range j.Nodes() {
			n, _ := j.Node(name)
			sc := algebra.NewScan(n.Base, n.Name)
			if acc == nil {
				acc = sc
			} else {
				acc = algebra.Cross{L: acc, R: sc}
			}
		}
		var preds []expr.Expr
		for _, e := range j.Edges() {
			preds = append(preds, e.Pred)
		}
		plan := algebra.Select{Child: acc, Pred: expr.And(preds...)}
		it, err := plan.Open(ctx, in)
		if err != nil {
			sink.abort()
			return nil, err
		}
		if err := padInto(it, sink, s); err != nil {
			sink.abort()
			return nil, err
		}
	}
	return sink.finalize()
}

// FullDisjunctionOuterJoin computes D(G) for a tree query graph as a
// sequence of full outer joins along a BFS spanning order, followed by
// a subsumption sweep. It returns an error for non-tree graphs; use
// FullDisjunction there.
func FullDisjunctionOuterJoin(ctx context.Context, g *graph.QueryGraph, in *relation.Instance) (*relation.Relation, error) {
	if !g.IsTree() {
		return nil, fmt.Errorf("fd: outer-join algorithm requires a tree query graph")
	}
	ctx, span := obs.StartSpan(ctx, "fd.outer_join")
	defer span.End()
	span.SetInt("joins", int64(g.NodeCount()-1))
	// The cost-based planner orders the chain (any connected spanning
	// traversal is valid — the subsumption sweep is order-independent);
	// the plain BFS spanning order is the fallback when statistics
	// cannot be resolved.
	order, treeEdges, ok := g.SpanningTreeOrder()
	if !ok {
		return nil, fmt.Errorf("fd: query graph is not connected")
	}
	var est []int64
	if po, ok := chooseJoinOrder(g, in, true); ok {
		cPlannerPlans.Inc()
		if !sameOrder(po.order, order) {
			cPlannerReordered.Inc()
		}
		recordPlan(ctx, nil, po)
		order, treeEdges, est = po.order, po.edges, po.est
	}
	n0, _ := g.Node(order[0])
	var plan algebra.Node = algebra.NewScan(n0.Base, n0.Name)
	for i := 1; i < len(order); i++ {
		n, _ := g.Node(order[i])
		var er int64
		if est != nil {
			er = est[i]
		}
		plan = algebra.Join{Kind: algebra.FullJoin, L: plan, R: algebra.NewScan(n.Base, n.Name), On: treeEdges[i].Pred, EstRows: er}
	}
	// Align to the canonical D(G) scheme (node insertion order). The
	// final join streams into the alignment, so its output is never
	// materialized in join order.
	s, err := Scheme(g, in)
	if err != nil {
		return nil, err
	}
	sink := newDGSink(ctx, budget.FromContext(ctx), s)
	if !budget.FromContext(ctx).SpillEnabled() {
		it, err := algebra.OpenVec(ctx, plan, in)
		if err != nil {
			return nil, err
		}
		if err := padIntoVec(it, sink, s); err != nil {
			sink.abort()
			return nil, err
		}
	} else {
		it, err := plan.Open(ctx, in)
		if err != nil {
			return nil, err
		}
		err = func() error {
			defer it.Close()
			for {
				batch, err := it.Next()
				if err != nil {
					return err
				}
				if batch == nil {
					return nil
				}
				for _, t := range batch {
					if err := sink.add(t.Project(s)); err != nil {
						return err
					}
				}
			}
		}()
		if err != nil {
			sink.abort()
			return nil, err
		}
	}
	out, err := sink.finalize()
	if err != nil {
		return nil, err
	}
	span.SetInt("tuples", int64(out.Len()))
	return out, nil
}

// ParallelSubsetThreshold is the connected-subset count above which
// Compute routes a cyclic query graph to FullDisjunctionParallel
// rather than the sequential subgraph algorithm. Below it the
// goroutine fan-out costs more than the per-subgraph joins save.
const ParallelSubsetThreshold = 8

// Compute computes D(G) with the best applicable algorithm: the
// outer-join sequence for trees, subgraph enumeration otherwise —
// parallel across CPUs when the cyclic graph has enough connected
// subsets to amortize the fan-out. Results are memoized in the D(G)
// cache when one is configured (see SetCacheCapacity); a cache hit
// does not count as an fd.compute.calls computation.
func Compute(ctx context.Context, g *graph.QueryGraph, in *relation.Instance) (*relation.Relation, error) {
	// Refuse before touching anything: computeUncached would do this
	// check too, but a cache hit must also honor cancellation.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := fault.Inject("fd.compute"); err != nil {
		return nil, err
	}
	key, cacheable := cacheKey(g, in)
	if cacheable {
		if d, ok := cacheLookup(key); ok {
			// A hit still materializes a clone of the memoized D(G), so
			// it is charged: the API answers identically (413, not OOM)
			// whether or not the result happens to be cached.
			if err := budget.FromContext(ctx).Charge(int64(d.Len()), approxRelationBytes(d)); err != nil {
				return nil, err
			}
			obs.Note(ctx, "dg_cache", "hit")
			return d, nil
		}
		obs.Note(ctx, "dg_cache", "miss")
	}
	d, err := computeUncached(ctx, g, in)
	if err != nil {
		return nil, err
	}
	if cacheable {
		// Checked store: if a base relation mutated while we computed,
		// the result describes the old content and must not be memoized
		// under the new content's key.
		cacheStoreChecked(key, g, in, d)
	}
	return d, nil
}

// approxRelationBytes sums the tuple footprint estimates of r.
func approxRelationBytes(r *relation.Relation) int64 {
	var n int64
	for _, t := range r.Tuples() {
		n += t.ApproxBytes()
	}
	return n
}

// computeUncached is Compute without the memo cache.
func computeUncached(ctx context.Context, g *graph.QueryGraph, in *relation.Instance) (*relation.Relation, error) {
	// Refuse to start work on a dead context: small graphs (a single
	// node, say) would otherwise finish without ever reaching one of
	// the per-subset cancellation checks.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, span := obs.StartSpan(ctx, "fd.compute")
	defer span.End()
	span.SetInt("nodes", int64(g.NodeCount()))
	cComputeCalls.Inc()
	start := time.Now()
	defer hComputeNS.ObserveSince(start)
	isTree := g.IsTree()
	var subsets [][]string
	if !isTree {
		subsets = g.ConnectedSubsets()
	}
	estimate, err := estimateRows(g, in, isTree)
	if err != nil {
		return nil, err
	}
	algo := pickAlgo(isTree, len(subsets), estimate, rowHeadroom(ctx), budget.FromContext(ctx).SpillEnabled())
	span.SetStr("algo", algo)
	var d *relation.Relation
	switch algo {
	case "abort":
		return nil, overBudget(ctx, estimate)
	case "outer_join":
		d, err = FullDisjunctionOuterJoin(ctx, g, in)
	case "subgraph_parallel":
		d, err = fullDisjunctionParallelSubsets(ctx, g, in, subsets)
	default:
		d, err = fullDisjunctionSubsets(ctx, g, in, subsets)
	}
	if err != nil {
		return nil, err
	}
	// Canonical render order: every algorithm sorts identically, so a
	// memoized result, a leaf extension, and a delta-maintained
	// SubsumeSet front all render the same bytes for the same content.
	d.SortByKey()
	return d, nil
}

// Partition groups D(G)'s tuples by coverage, keyed by the sorted
// coverage joined with "+" — the categories D(G, J) of Section 4.2.
// Tuple order within a category follows relation order.
func Partition(d *relation.Relation, g *graph.QueryGraph, in *relation.Instance) (map[string][]relation.Tuple, error) {
	blocks, err := nodeBlocks(g, in, d.Scheme())
	if err != nil {
		return nil, err
	}
	out := map[string][]relation.Tuple{}
	for _, t := range d.Tuples() {
		var cov []string
		for _, name := range g.Nodes() {
			for _, p := range blocks[name] {
				if !t.At(p).IsNull() {
					cov = append(cov, name)
					break
				}
			}
		}
		sort.Strings(cov)
		k := strings.Join(cov, "+")
		out[k] = append(out[k], t)
	}
	return out, nil
}

// CoverageKey renders a sorted node set as a Partition key.
func CoverageKey(nodes []string) string {
	s := append([]string(nil), nodes...)
	sort.Strings(s)
	return strings.Join(s, "+")
}

// CoverageAll computes the coverage of every tuple of a D(G) relation
// in one pass, resolving the node attribute blocks once. Equivalent to
// calling Coverage per tuple, but O(nodes) setup instead of per-tuple.
func CoverageAll(d *relation.Relation, g *graph.QueryGraph, in *relation.Instance) ([][]string, error) {
	blocks, err := nodeBlocks(g, in, d.Scheme())
	if err != nil {
		return nil, err
	}
	nodes := g.Nodes()
	out := make([][]string, d.Len())
	for i := 0; i < d.Len(); i++ {
		t := d.At(i)
		var cov []string
		for _, name := range nodes {
			for _, p := range blocks[name] {
				if !t.At(p).IsNull() {
					cov = append(cov, name)
					break
				}
			}
		}
		sort.Strings(cov)
		out[i] = cov
	}
	return out, nil
}
