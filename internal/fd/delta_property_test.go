package fd

import (
	"context"
	"math/rand"
	"testing"

	"clio/internal/expr"
	"clio/internal/graph"
	"clio/internal/relation"
	"clio/internal/value"
)

// applyRandomRowEdit mutates a random base relation of in (insert or
// delete) and returns the base name, the edited tuple, and whether it
// was a delete. The instance is mutated before the caller maintains
// the materialization, matching the MaintainRows contract.
func applyRandomRowEdit(rng *rand.Rand, in *relation.Instance, bases []string) (string, relation.Tuple, bool) {
	base := bases[rng.Intn(len(bases))]
	r := in.Relation(base)
	if r.Len() > 0 && rng.Intn(2) == 0 {
		tp := r.RemoveAt(rng.Intn(r.Len()))
		return base, tp, true
	}
	r.AddValues(value.Int(int64(rng.Intn(4))), value.Int(int64(rng.Intn(100))))
	return base, r.At(r.Len() - 1), false
}

// Differential property (the tentpole's correctness core): after every
// row edit of a randomized sequence, the delta-maintained D(G) is
// row-identical to a full recomputation and to the naive reference —
// on trees and on cyclic graphs. Run under -race via `make check`.
func TestDeltaMaintainedEqualsRecomputeRandomEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(8081))
	ctx := context.Background()
	for trial := 0; trial < 16; trial++ {
		var g *graph.QueryGraph
		var in *relation.Instance
		cyclic := trial%2 == 1
		if cyclic {
			g, in = randomCyclicCase(rng, 3+rng.Intn(2), 1+rng.Intn(3))
		} else {
			g, in = randomTreeCase(rng, 2+rng.Intn(3), 1+rng.Intn(3))
		}
		bases := g.Nodes()
		mat, err := NewMaterialized(ctx, g, in)
		if err != nil {
			t.Fatal(err)
		}
		deltas := 0
		for step := 0; step < 12; step++ {
			base, tp, del := applyRandomRowEdit(rng, in, bases)
			d, mat2, mode, err := MaintainRows(ctx, mat, g, in, base, tp, del)
			if err != nil {
				t.Fatalf("trial %d step %d: MaintainRows: %v", trial, step, err)
			}
			mat = mat2
			if mode == "delta" {
				deltas++
			}
			want, err := FullDisjunction(ctx, g, in)
			if err != nil {
				t.Fatal(err)
			}
			if !d.EqualSet(want) {
				t.Fatalf("trial %d step %d (cyclic=%v, %s %v of %s, mode=%s): maintained D(G) differs\n got:\n%v\nwant:\n%v",
					trial, step, cyclic, map[bool]string{true: "delete", false: "insert"}[del], tp, base, mode, d.Sorted(), want.Sorted())
			}
			naive, err := FullDisjunctionNaive(ctx, g, in)
			if err != nil {
				t.Fatal(err)
			}
			if !d.EqualSet(naive) {
				t.Fatalf("trial %d step %d: maintained D(G) differs from naive reference", trial, step)
			}
		}
		if deltas == 0 {
			t.Fatalf("trial %d: no edit took the delta path", trial)
		}
	}
}

// Correspondence/filter edits change the query graph, not a base
// relation: the materialization no longer matches and MaintainRows
// must rebuild (mode "recompute") — and still agree with a full
// recomputation afterwards.
func TestMaintainRowsRebuildsOnGraphChange(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	ctx := context.Background()
	g, in := randomTreeCase(rng, 3, 3)
	mat, err := NewMaterialized(ctx, g, in)
	if err != nil {
		t.Fatal(err)
	}
	// Evolve the graph: close a cycle (a new correspondence between two
	// already-mapped relations does exactly this in the workspace).
	names := g.Nodes()
	g2 := g.Clone()
	for i := range names {
		a, b := names[i], names[(i+1)%len(names)]
		if _, ok := g2.EdgeBetween(a, b); !ok {
			g2.MustAddEdge(a, b, expr.Equals(a+".k", b+".k"))
			break
		}
	}
	if mat.Matches(g2) {
		t.Fatal("materialization should not match the evolved graph")
	}
	base := names[0]
	r := in.Relation(base)
	r.AddValues(value.Int(1), value.Int(50))
	tp := r.At(r.Len() - 1)
	d, mat2, mode, err := MaintainRows(ctx, mat, g2, in, base, tp, false)
	if err != nil {
		t.Fatal(err)
	}
	if mode != "recompute" {
		t.Fatalf("graph change maintained via %q, want recompute", mode)
	}
	if !mat2.Matches(g2) {
		t.Fatal("rebuilt materialization should match the new graph")
	}
	want, err := FullDisjunction(ctx, g2, in)
	if err != nil {
		t.Fatal(err)
	}
	if !d.EqualSet(want) {
		t.Fatal("rebuilt D(G) differs from full recomputation")
	}
	// And the rebuilt materialization keeps delta-maintaining correctly.
	tp2 := r.RemoveAt(0)
	d2, _, mode2, err := MaintainRows(ctx, mat2, g2, in, base, tp2, true)
	if err != nil {
		t.Fatal(err)
	}
	if mode2 != "delta" {
		t.Fatalf("post-rebuild edit maintained via %q, want delta", mode2)
	}
	want2, err := FullDisjunction(ctx, g2, in)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.EqualSet(want2) {
		t.Fatal("post-rebuild delta D(G) differs from full recomputation")
	}
}

// The maintained relation must also be byte-canonical: a rebuilt
// materialization over the same instance renders identical rows in
// identical order, which is what keeps live, replayed, and resurrected
// sessions byte-identical at the view layer.
func TestMaterializedRenderIsCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	ctx := context.Background()
	g, in := randomTreeCase(rng, 3, 4)
	mat, err := NewMaterialized(ctx, g, in)
	if err != nil {
		t.Fatal(err)
	}
	// Drive a few edits through the delta path.
	bases := g.Nodes()
	for step := 0; step < 6; step++ {
		base, tp, del := applyRandomRowEdit(rng, in, bases)
		if err := mat.ApplyRow(ctx, g, in, base, tp, del); err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := NewMaterialized(ctx, g, in)
	if err != nil {
		t.Fatal(err)
	}
	a, b := mat.Rel(), fresh.Rel()
	if a.String() != b.String() {
		t.Fatalf("delta-maintained render differs from fresh rebuild:\n%v\nvs\n%v", a, b)
	}
}
