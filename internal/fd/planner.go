package fd

// The cost-based join-order planner. The budget picker (picker.go)
// routes between whole algorithms from certain lower bounds; this file
// chooses the join ORDER within one algorithm from cheap per-relation
// statistics (relation.Stats: row counts and per-column distinct-value
// estimates, maintained incrementally alongside the relation version
// counter). The estimate model is the classical distinct-value one:
//
//	|L ⋈ R| ≈ |L|·|R| / Π max(d_L(a), d_R(b))
//
// over the equi pairs (a, b) of the connecting edge; an edge with no
// equi conjunct estimates as a cross product, and full outer joins
// widen each step by both inputs' sizes (matched rows plus padding).
//
// Correctness is order-independent — F(J) is a set of inner joins with
// residual selections, and the outer-join chain stays a connected
// spanning traversal whose subsumption sweep fixes any order — so the
// planner only affects intermediate sizes. Ties break on estimate,
// then node name, so the chosen order is deterministic for a given
// instance. Every chosen step carries its estimate into the plan
// (algebra.Join.EstRows), which the operator spans report next to the
// actual row counts — EXPLAIN's est-vs-actual column.

import (
	"context"
	"sync"

	"clio/internal/algebra"
	"clio/internal/graph"
	"clio/internal/obs"
	"clio/internal/relation"
	"clio/internal/schema"
)

var (
	cPlannerPlans     = obs.GetCounter("fd.planner.plans")
	cPlannerReordered = obs.GetCounter("fd.planner.reordered")
)

// estClamp bounds estimates so the float64 model cannot overflow the
// int64 carried into plans and JSON.
const estClamp = int64(1) << 52

// nodeStats is the planner's per-node view of a base relation: row
// count, a qualified-column → distinct-count map, and the node's
// alias-qualified scheme (built without materializing the aliased
// relation, so the base relation's statistics cache is shared).
type nodeStats struct {
	rows   int64
	ndv    map[string]int64
	scheme *relation.Scheme
}

// gatherNodeStats resolves statistics for every node of j against the
// instance. ok is false when a base relation is missing — the caller
// falls back to the plain spanning order and lets the plan's execution
// surface the error.
func gatherNodeStats(j *graph.QueryGraph, in *relation.Instance) (map[string]*nodeStats, bool) {
	out := make(map[string]*nodeStats, j.NodeCount())
	for _, name := range j.Nodes() {
		n, _ := j.Node(name)
		base := in.Relation(n.Base)
		if base == nil {
			return nil, false
		}
		st := base.Stats()
		bs := base.Scheme()
		ns := &nodeStats{rows: int64(st.Rows), ndv: make(map[string]int64, bs.Arity())}
		names := make([]string, bs.Arity())
		for i, qn := range bs.Names() {
			attr := qn
			if ref, err := schema.ParseColumnRef(qn); err == nil {
				attr = ref.Attr
			}
			q := name + "." + attr
			names[i] = q
			ns.ndv[q] = st.DistinctOn(i)
		}
		ns.scheme = relation.NewScheme(names...)
		out[name] = ns
	}
	return out, true
}

// plannedOrder is the outcome of the join-order search for one
// connected (sub)graph: the attachment order, the edge that attaches
// each node past the first, and the estimated output cardinality after
// each join (est[0] is the start relation's row count).
type plannedOrder struct {
	order []string
	edges []graph.Edge
	est   []int64
}

// chooseJoinOrder greedily picks a connected attachment order for the
// (induced, connected) graph j: start from the smallest relation and
// repeatedly attach the frontier node whose join yields the smallest
// estimated output. outer selects the full-outer cost model. ok is
// false when statistics cannot be resolved or j is not connected.
func chooseJoinOrder(j *graph.QueryGraph, in *relation.Instance, outer bool) (*plannedOrder, bool) {
	stats, ok := gatherNodeStats(j, in)
	if !ok {
		return nil, false
	}
	nodes := j.Nodes()
	if len(nodes) == 0 {
		return nil, false
	}
	start := nodes[0]
	for _, n := range nodes[1:] {
		if stats[n].rows < stats[start].rows || (stats[n].rows == stats[start].rows && n < start) {
			start = n
		}
	}
	po := &plannedOrder{
		order: []string{start},
		edges: []graph.Edge{{}},
		est:   []int64{stats[start].rows},
	}
	joined := map[string]bool{start: true}
	curScheme := stats[start].scheme
	ndv := make(map[string]int64, len(stats[start].ndv))
	for c, d := range stats[start].ndv {
		ndv[c] = d
	}
	cur := float64(stats[start].rows)
	for len(po.order) < len(nodes) {
		bestNode := ""
		var bestEdge graph.Edge
		var bestEst float64
		for _, e := range j.Edges() {
			var nb string
			switch {
			case joined[e.A] && !joined[e.B]:
				nb = e.B
			case joined[e.B] && !joined[e.A]:
				nb = e.A
			default:
				continue
			}
			ns := stats[nb]
			lCols, rCols, _ := algebra.SplitEquiConjuncts(e.Pred, curScheme, ns.scheme)
			est := cur * float64(ns.rows)
			for k := range lCols {
				d := ndv[lCols[k]]
				if dr := ns.ndv[rCols[k]]; dr > d {
					d = dr
				}
				if d > 1 {
					est /= float64(d)
				}
			}
			if outer {
				est += cur + float64(ns.rows)
			}
			if est < 1 {
				est = 1
			}
			if bestNode == "" || est < bestEst || (est == bestEst && nb < bestNode) {
				bestNode, bestEdge, bestEst = nb, e, est
			}
		}
		if bestNode == "" {
			return nil, false // disconnected
		}
		joined[bestNode] = true
		po.order = append(po.order, bestNode)
		po.edges = append(po.edges, bestEdge)
		est := int64(bestEst)
		if bestEst >= float64(estClamp) {
			est = estClamp
		}
		po.est = append(po.est, est)
		for c, d := range stats[bestNode].ndv {
			ndv[c] = d
		}
		cur = bestEst
		curScheme = curScheme.Concat(stats[bestNode].scheme)
	}
	return po, true
}

// PlannerOrder is one chosen join order, reported by EXPLAIN: the
// attachment sequence and the planner's estimated output rows after
// each step (actual rows live on the matching operator spans).
type PlannerOrder struct {
	Subset  []string `json:"subset,omitempty"`
	Order   []string `json:"order"`
	EstRows []int64  `json:"est_rows"`
}

// PlannerStats is EXPLAIN's per-base-relation statistics summary.
type PlannerStats struct {
	Rows    int    `json:"rows"`
	Version uint64 `json:"version"`
	// Fresh reports whether the cached statistics describe the
	// relation's current version (they always do immediately after a
	// computation that consulted them; a mutation in between goes
	// stale until the next Stats call folds it in).
	Fresh bool `json:"fresh"`
}

// PlannerBlock is EXPLAIN's planner section: every join order chosen
// during the run plus the statistics they were derived from.
type PlannerBlock struct {
	Orders []PlannerOrder          `json:"orders"`
	Stats  map[string]PlannerStats `json:"stats"`
}

// planRecorder collects the join orders chosen during one computation.
// Safe for concurrent use — the parallel subgraph algorithm plans
// subsets from worker goroutines.
type planRecorder struct {
	mu     sync.Mutex
	orders []PlannerOrder
}

type planRecorderKey struct{}

// withPlanRecorder arms ctx with a recorder; plans chosen under it are
// reported back through the returned collector.
func withPlanRecorder(ctx context.Context) (context.Context, *planRecorder) {
	rec := &planRecorder{}
	return context.WithValue(ctx, planRecorderKey{}, rec), rec
}

// recordPlan notes a chosen order if ctx carries a recorder.
func recordPlan(ctx context.Context, subset []string, po *plannedOrder) {
	rec, _ := ctx.Value(planRecorderKey{}).(*planRecorder)
	if rec == nil {
		return
	}
	rec.mu.Lock()
	rec.orders = append(rec.orders, PlannerOrder{
		Subset:  subset,
		Order:   append([]string(nil), po.order...),
		EstRows: append([]int64(nil), po.est...),
	})
	rec.mu.Unlock()
}

// statsBlock summarizes the instance-resident statistics for the
// graph's base relations, with per-relation freshness.
func statsBlock(g *graph.QueryGraph, in *relation.Instance) map[string]PlannerStats {
	out := map[string]PlannerStats{}
	for _, name := range g.Nodes() {
		n, _ := g.Node(name)
		base := in.Relation(n.Base)
		if base == nil {
			continue
		}
		if _, ok := out[n.Base]; ok {
			continue
		}
		ps := PlannerStats{Rows: base.Len(), Version: base.Version()}
		if st := base.CachedStats(); st != nil && st.Version == base.Version() {
			ps.Fresh = true
		}
		out[n.Base] = ps
	}
	return out
}

// sameOrder reports whether the planner kept the default spanning
// order (used only for the reorder counter).
func sameOrder(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
