package fd

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"clio/internal/budget"
)

// Boundary semantics of the budget-aware pickers, pinned at exact
// equality. budget.Tracker.Charge is charge-inclusive: charging up to
// the cap succeeds and only a strict excess errors. The pickers must
// agree — est == headroom is exactly affordable, so every refusal
// comparison is strict. These tests fail on any off-by-one drift in
// either direction (refusing affordable work, or accepting doomed
// work).

func TestPickIncrementalBoundaryAtHeadroom(t *testing.T) {
	cases := []struct {
		name                             string
		extendEst, recomputeEst, headroom int64
		want                             string
	}{
		// est == headroom: exactly affordable, the extension is taken.
		{"extend at equality", 10, 100, 10, "extend"},
		// One past the headroom refuses the extension; the recompute
		// bound at equality is still affordable.
		{"full at recompute equality", 11, 10, 10, "full"},
		// Both bounds strictly exceed: no computation can succeed.
		{"abort when both exceed", 11, 11, 10, "abort"},
		// Zero headroom still affords a zero-cost extension (empty old
		// D(G) over an empty leaf base).
		{"extend at zero equality", 0, 5, 0, "extend"},
		// Unlimited budget always extends, whatever the estimates.
		{"unlimited extends", 1 << 40, 1 << 40, -1, "extend"},
	}
	for _, c := range cases {
		if got := pickIncremental(c.extendEst, c.recomputeEst, c.headroom); got != c.want {
			t.Errorf("%s: pickIncremental(%d, %d, %d) = %q, want %q",
				c.name, c.extendEst, c.recomputeEst, c.headroom, got, c.want)
		}
	}
}

func TestPickDeltaBoundaryAtHeadroom(t *testing.T) {
	cases := []struct {
		name                          string
		deltaEst, rebuildEst, headroom int64
		want                          string
	}{
		{"delta at equality", 10, 100, 10, "delta"},
		{"rebuild at equality", 11, 10, 10, "rebuild"},
		{"abort when both exceed", 11, 11, 10, "abort"},
		{"delta at zero equality", 0, 5, 0, "delta"},
		{"unlimited applies delta", 1 << 40, 1 << 40, -1, "delta"},
	}
	for _, c := range cases {
		if got := pickDelta(c.deltaEst, c.rebuildEst, c.headroom); got != c.want {
			t.Errorf("%s: pickDelta(%d, %d, %d) = %q, want %q",
				c.name, c.deltaEst, c.rebuildEst, c.headroom, got, c.want)
		}
	}
}

func TestPickAlgoBoundaryAtHeadroom(t *testing.T) {
	// estimate == headroom must not abort.
	if got := pickAlgo(true, 0, 10, 10, false); got != "outer_join" {
		t.Errorf("tree at equality routed to %q, want outer_join", got)
	}
	if got := pickAlgo(true, 0, 11, 10, false); got != "abort" {
		t.Errorf("tree one past headroom routed to %q, want abort", got)
	}
	// Parallel demotion: estimate*2 > headroom demotes; equality keeps
	// the parallel variant.
	if got := pickAlgo(false, ParallelSubsetThreshold, 5, 10, false); got != "subgraph_parallel" {
		t.Errorf("cyclic at 2*est == headroom routed to %q, want subgraph_parallel", got)
	}
	if got := pickAlgo(false, ParallelSubsetThreshold, 6, 10, false); got != "subgraph" {
		t.Errorf("cyclic at 2*est > headroom routed to %q, want subgraph", got)
	}
	// Demoted-path boundary: the parallel bound (2*est = 20) exceeds the
	// headroom so the run demotes, and the re-derived sequential bound
	// sits exactly at the headroom — exactly affordable, so the demotion
	// must land on "subgraph", never "abort". This pins the fix for the
	// demotion reusing the parallel-shaped bound.
	if got := pickAlgo(false, ParallelSubsetThreshold, 10, 10, false); got != "subgraph" {
		t.Errorf("demoted path at est == headroom routed to %q, want subgraph", got)
	}
	// One past the headroom on the demoted path does abort.
	if got := pickAlgo(false, ParallelSubsetThreshold, 11, 10, false); got != "abort" {
		t.Errorf("demoted path one past headroom routed to %q, want abort", got)
	}
}

// End-to-end charge-inclusivity: learn the exact row charge of a
// deterministic computation, then re-run with MaxRows equal to it
// (must succeed — the cap is inclusive) and one below it (must fail
// with the typed budget error). This pins the convention the pickers'
// strict comparisons assume.
func TestBudgetBoundaryModeExactChargeComputes(t *testing.T) {
	prev := SetCacheCapacity(0)
	defer SetCacheCapacity(prev)
	rng := rand.New(rand.NewSource(99))
	g, in := randomTreeCase(rng, 3, 4)

	ctx := WithBudget(context.Background(), Budget{MaxRows: 1 << 40})
	want, err := Compute(ctx, g, in)
	if err != nil {
		t.Fatal(err)
	}
	used := budget.FromContext(ctx).Rows()
	if used == 0 {
		t.Skip("degenerate random case: nothing charged")
	}

	exact := WithBudget(context.Background(), Budget{MaxRows: used})
	got, err := Compute(exact, g, in)
	if err != nil {
		t.Fatalf("budget of exactly the charge (%d rows) failed: %v", used, err)
	}
	if !got.EqualSet(want) {
		t.Fatal("exact-budget result differs from unlimited result")
	}

	under := WithBudget(context.Background(), Budget{MaxRows: used - 1})
	if _, err := Compute(under, g, in); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("budget one under the charge returned %v, want budget error", err)
	}
}
