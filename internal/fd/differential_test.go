package fd

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"clio/internal/budget"
	"clio/internal/expr"
	"clio/internal/graph"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// randGraphCase builds a random query graph over k relations with
// NULL-rich random data. shape selects the topology: "chain" (path),
// "tree" (random parent attachment), "cycle" (chain plus a closing
// edge, making the graph cyclic so the subgraph algorithms run).
// nullProb is the probability a key or payload cell is NULL — NULL
// keys never match an equi edge, so they exercise the padding and
// subsumption sweeps of every pipeline. keyDom is the key domain size:
// small domains force dense matches, larger ones keep hot keys
// splittable under grace-hash partitioning.
func randGraphCase(rng *rand.Rand, shape string, k, rows, keyDom int, nullProb float64) (*graph.QueryGraph, *relation.Instance) {
	sch := schema.NewDatabase()
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = fmt.Sprintf("R%d", i)
		sch.MustAddRelation(schema.NewRelation(names[i],
			schema.Attribute{Name: "k", Type: value.KindInt},
			schema.Attribute{Name: "v", Type: value.KindInt},
		))
	}
	in := relation.NewInstance(sch)
	cellVal := func(dom int) value.Value {
		if rng.Float64() < nullProb {
			return value.Null
		}
		return value.Int(int64(rng.Intn(dom)))
	}
	for i := 0; i < k; i++ {
		r := in.NewRelationFor(names[i])
		for j := 0; j < rows; j++ {
			r.AddValues(cellVal(keyDom), cellVal(50))
		}
		in.MustAdd(r)
	}
	g := graph.New()
	g.MustAddNode(names[0], names[0])
	for i := 1; i < k; i++ {
		g.MustAddNode(names[i], names[i])
		parent := names[i-1]
		if shape == "tree" {
			parent = names[rng.Intn(i)]
		}
		g.MustAddEdge(parent, names[i], expr.Equals(parent+".k", names[i]+".k"))
	}
	if shape == "cycle" && k >= 3 {
		g.MustAddEdge(names[0], names[k-1], expr.Equals(names[0]+".k", names[k-1]+".k"))
	}
	return g, in
}

// TestFullDisjunctionDifferentialNaive is the end-to-end differential
// property test of the execution core: for randomized chains, trees,
// and cycles over NULL-rich data, the production D(G) (columnar
// pipelines, cost-based join ordering, subsumption kernels) must equal
// the naive reference (nested-loop joins over every connected subset,
// quadratic subsumption). `make race` runs this under the race
// detector, which also exercises the parallel morsel paths.
func TestFullDisjunctionDifferentialNaive(t *testing.T) {
	prev := SetCacheCapacity(0)
	defer SetCacheCapacity(prev)
	rng := rand.New(rand.NewSource(7))
	shapes := []string{"chain", "tree", "cycle"}
	for trial := 0; trial < 30; trial++ {
		shape := shapes[trial%len(shapes)]
		k := 2 + rng.Intn(3) // 2..4 relations
		if shape == "cycle" {
			k = 3 + rng.Intn(2)
		}
		rows := 1 + rng.Intn(4)
		g, in := randGraphCase(rng, shape, k, rows, 4, 0.25)
		got, err := Compute(context.Background(), g, in)
		if err != nil {
			t.Fatalf("trial %d (%s, k=%d): compute: %v", trial, shape, k, err)
		}
		want, err := FullDisjunctionNaive(context.Background(), g, in)
		if err != nil {
			t.Fatalf("trial %d (%s, k=%d): naive: %v", trial, shape, k, err)
		}
		if !got.EqualSet(want) {
			t.Fatalf("trial %d (%s, k=%d, rows=%d): production D(G) %d tuples, naive %d tuples\nproduction:\n%v\nnaive:\n%v",
				trial, shape, k, rows, got.Len(), want.Len(), got, want)
		}
	}
}

// TestSpilledColumnarByteIdentityRandomized extends the fixed-workload
// spill byte-identity tests (spill_test.go) to randomized NULL-rich
// graphs: a spilled run must produce the unlimited (columnar) run's
// bytes exactly, position by position, whatever the topology.
func TestSpilledColumnarByteIdentityRandomized(t *testing.T) {
	prev := SetCacheCapacity(0)
	defer SetCacheCapacity(prev)
	rng := rand.New(rand.NewSource(13))
	shapes := []string{"chain", "tree", "cycle"}
	var spilledTrials int
	for trial := 0; trial < 9; trial++ {
		shape := shapes[trial%len(shapes)]
		k := 3
		rows := 8 + rng.Intn(6)
		g, in := randGraphCase(rng, shape, k, rows, 8, 0.2)
		// Duplicate every row several times: joins multiply the copies
		// (copies^k per match) while the distinct/subsumption front
		// collapses back, so intermediates dwarf the cap but the final
		// result stays resident — the same shape spillDGCase uses.
		for _, name := range in.Names() {
			r := in.Relation(name)
			base := append([]relation.Tuple(nil), r.Tuples()...)
			for c := 0; c < 5; c++ {
				for _, tp := range base {
					r.Add(tp)
				}
			}
		}
		refCtx := WithBudget(context.Background(), Budget{MaxBytes: 1 << 40})
		want, err := Compute(refCtx, g, in)
		if err != nil {
			t.Fatalf("trial %d (%s): unlimited: %v", trial, shape, err)
		}
		_, cumulative := BudgetUsed(refCtx)
		// Walk the cap up from far below the working set until the run
		// completes: random workloads can concentrate duplicates into
		// partitions that recursion cannot split (identical keys re-hash
		// identically), and the abort-vs-degrade policy is allowed to
		// refuse those, so the tightest caps legitimately abort. The
		// first completing cap usually still sits below the peak
		// resident state, so spill engages on the way (asserted below).
		var got *relation.Relation
		var tr *budget.Tracker
		for cap := int64(32 << 10); ; cap *= 2 {
			tr = budget.NewTracker(budget.Budget{MaxBytes: cap, SpillDir: t.TempDir()})
			got, err = Compute(budget.With(context.Background(), tr), g, in)
			if err == nil {
				break
			}
			if cap > cumulative {
				t.Fatalf("trial %d (%s): spilled run still aborts above cumulative bytes: %v", trial, shape, err)
			}
		}
		if tr.SpillWritten() > 0 {
			spilledTrials++
		}
		if got.Len() != want.Len() {
			t.Fatalf("trial %d (%s): spilled %d tuples, unlimited %d", trial, shape, got.Len(), want.Len())
		}
		gt, wt := got.Tuples(), want.Tuples()
		for i := range gt {
			if gt[i].Key() != wt[i].Key() {
				t.Fatalf("trial %d (%s) tuple %d differs:\nspilled   %v\nunlimited %v",
					trial, shape, i, gt[i], wt[i])
			}
		}
	}
	if spilledTrials == 0 {
		t.Fatal("no trial engaged the spill tier — the differential is vacuous")
	}
}
