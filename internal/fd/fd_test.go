package fd

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"clio/internal/expr"
	"clio/internal/graph"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// testInstance models the relevant slice of the paper's Figure 1:
// Children linked to Parents by mid, Parents linked to PhoneDir by ID.
// Parent 205 has a phone but no children; parent 103 (a father) has no
// phone; every mother has a phone.
func testInstance() *relation.Instance {
	sch := schema.NewDatabase()
	sch.MustAddRelation(schema.NewRelation("Children",
		schema.Attribute{Name: "ID", Type: value.KindString},
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "mid", Type: value.KindString},
	))
	sch.MustAddRelation(schema.NewRelation("Parents",
		schema.Attribute{Name: "ID", Type: value.KindString},
		schema.Attribute{Name: "affiliation", Type: value.KindString},
	))
	sch.MustAddRelation(schema.NewRelation("PhoneDir",
		schema.Attribute{Name: "ID", Type: value.KindString},
		schema.Attribute{Name: "number", Type: value.KindString},
	))
	in := relation.NewInstance(sch)
	c := in.NewRelationFor("Children")
	c.AddRow("001", "Ann", "100")
	c.AddRow("002", "Maya", "102")
	in.MustAdd(c)
	p := in.NewRelationFor("Parents")
	p.AddRow("100", "IBM")
	p.AddRow("102", "Acta")
	p.AddRow("103", "IBM") // no phone, no children via mid
	p.AddRow("205", "Sun") // phone, no children
	in.MustAdd(p)
	ph := in.NewRelationFor("PhoneDir")
	ph.AddRow("100", "555-0100")
	ph.AddRow("102", "555-0102")
	ph.AddRow("205", "555-0205")
	in.MustAdd(ph)
	return in
}

func paperGraph() *graph.QueryGraph {
	g := graph.New()
	g.MustAddNode("Children", "Children")
	g.MustAddNode("Parents", "Parents")
	g.MustAddNode("PhoneDir", "PhoneDir")
	g.MustAddEdge("Children", "Parents", expr.Equals("Children.mid", "Parents.ID"))
	g.MustAddEdge("Parents", "PhoneDir", expr.Equals("Parents.ID", "PhoneDir.ID"))
	return g
}

func TestScheme(t *testing.T) {
	in := testInstance()
	g := paperGraph()
	s, err := Scheme(g, in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 3+2+2 {
		t.Errorf("arity = %d", s.Arity())
	}
	if !s.Has("Children.ID") || !s.Has("PhoneDir.number") {
		t.Error("scheme attributes missing")
	}
	if _, err := Scheme(graph.New(), in); err == nil {
		t.Error("empty graph should error")
	}
}

func TestFullAssociations(t *testing.T) {
	in := testInstance()
	g := paperGraph()
	// {Children, Parents}: both children join their mothers.
	f, err := FullAssociations(context.Background(), g, in, []string{"Children", "Parents"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 2 {
		t.Errorf("F(C,P) len = %d:\n%v", f.Len(), f)
	}
	// {Children, PhoneDir}: disconnected, error.
	if _, err := FullAssociations(context.Background(), g, in, []string{"Children", "PhoneDir"}); err == nil {
		t.Error("disconnected subset should error")
	}
	// Full graph.
	f3, err := FullAssociations(context.Background(), g, in, []string{"Children", "Parents", "PhoneDir"})
	if err != nil {
		t.Fatal(err)
	}
	if f3.Len() != 2 {
		t.Errorf("F(C,P,Ph) len = %d:\n%v", f3.Len(), f3)
	}
}

func TestFullDisjunctionPaperShape(t *testing.T) {
	in := testInstance()
	g := paperGraph()
	d, err := FullDisjunction(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	// Expected D(G):
	//  - 2 full associations (Ann, Maya with mothers and phones)
	//  - parent 205 with phone, no child  → coverage P+Ph
	//  - parent 103 alone                 → coverage P
	// Nothing with coverage C (all children have mothers) and nothing
	// with coverage C+P (all mothers have phones).
	part, err := Partition(d, g, in)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts := map[string]int{
		"Children+Parents+PhoneDir": 2,
		"Parents+PhoneDir":          1,
		"Parents":                   1,
	}
	if len(part) != len(wantCounts) {
		t.Fatalf("categories = %v", keys(part))
	}
	for k, n := range wantCounts {
		if len(part[k]) != n {
			t.Errorf("category %s has %d tuples, want %d", k, len(part[k]), n)
		}
	}
	if d.Len() != 4 {
		t.Errorf("|D(G)| = %d, want 4:\n%v", d.Len(), d)
	}
}

func keys(m map[string][]relation.Tuple) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestThreeAlgorithmsAgreeOnPaperData(t *testing.T) {
	in := testInstance()
	g := paperGraph()
	a, err := FullDisjunction(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FullDisjunctionNaive(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FullDisjunctionOuterJoin(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	if !a.EqualSet(b) {
		t.Errorf("subgraph vs naive mismatch:\n%v\n%v", a, b)
	}
	if !a.EqualSet(c) {
		t.Errorf("subgraph vs outer-join mismatch:\n%v\n%v", a, c)
	}
}

func TestCoverageAndTag(t *testing.T) {
	in := testInstance()
	g := paperGraph()
	d, err := FullDisjunction(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	abbrev := map[string]string{"Children": "C", "Parents": "P", "PhoneDir": "Ph"}
	tags := map[string]int{}
	for _, tp := range d.Tuples() {
		cov, err := Coverage(tp, g, in)
		if err != nil {
			t.Fatal(err)
		}
		tags[Tag(cov, abbrev)]++
	}
	if tags["CPPh"] != 2 || tags["PPh"] != 1 || tags["P"] != 1 {
		t.Errorf("tags = %v", tags)
	}
	if Tag([]string{"Zebra"}, abbrev) != "Zebra" {
		t.Error("Tag fallback wrong")
	}
	if CoverageKey([]string{"b", "a"}) != "a+b" {
		t.Error("CoverageKey wrong")
	}
}

func TestSingleNodeGraph(t *testing.T) {
	in := testInstance()
	g := graph.New()
	g.MustAddNode("Parents", "Parents")
	d, err := Compute(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 4 {
		t.Errorf("single-node D(G) len = %d", d.Len())
	}
}

func TestRelationCopies(t *testing.T) {
	// Children joined to two copies of Parents (mother and father),
	// as in the paper's Section 2 mapping. Tree with 3 nodes.
	sch := schema.NewDatabase()
	sch.MustAddRelation(schema.NewRelation("Children",
		schema.Attribute{Name: "ID", Type: value.KindString},
		schema.Attribute{Name: "mid", Type: value.KindString},
		schema.Attribute{Name: "fid", Type: value.KindString},
	))
	sch.MustAddRelation(schema.NewRelation("Parents",
		schema.Attribute{Name: "ID", Type: value.KindString},
		schema.Attribute{Name: "aff", Type: value.KindString},
	))
	in := relation.NewInstance(sch)
	c := in.NewRelationFor("Children")
	c.AddRow("001", "100", "101")
	c.AddRow("002", "100", "-")
	in.MustAdd(c)
	p := in.NewRelationFor("Parents")
	p.AddRow("100", "IBM")
	p.AddRow("101", "UofT")
	in.MustAdd(p)

	g := graph.New()
	g.MustAddNode("Children", "Children")
	g.MustAddNode("Parents", "Parents")
	g.MustAddNode("Parents2", "Parents")
	g.MustAddEdge("Children", "Parents", expr.Equals("Children.fid", "Parents.ID"))
	g.MustAddEdge("Children", "Parents2", expr.Equals("Children.mid", "Parents2.ID"))

	d, err := Compute(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	part, err := Partition(d, g, in)
	if err != nil {
		t.Fatal(err)
	}
	// Child 001 covers all three; child 002 covers Children+Parents2
	// (no father). Parent 101 appears alone in the Parents copy; both
	// parents appear alone in the Parents2 copy only if unmatched —
	// 100 is matched, 101 is unmatched in Parents2 too.
	if len(part["Children+Parents+Parents2"]) != 1 {
		t.Errorf("full coverage = %d, want 1. parts: %v", len(part["Children+Parents+Parents2"]), keys(part))
	}
	if len(part["Children+Parents2"]) != 1 {
		t.Errorf("C+P2 coverage = %d, want 1", len(part["Children+Parents2"]))
	}
	// Unmatched copies: Parents 100 never a father → "Parents"; 101
	// never a mother → "Parents2".
	if len(part["Parents"]) != 1 || len(part["Parents2"]) != 1 {
		t.Errorf("unmatched copies wrong: %v", keys(part))
	}
	// Differential check vs naive.
	nv, err := FullDisjunctionNaive(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	if !d.EqualSet(nv) {
		t.Errorf("copies: fast vs naive mismatch:\n%v\n%v", d, nv)
	}
}

func TestErrors(t *testing.T) {
	in := testInstance()
	g := graph.New()
	if _, err := FullDisjunction(context.Background(), g, in); err == nil {
		t.Error("empty graph should error")
	}
	if _, err := FullDisjunctionNaive(context.Background(), g, in); err == nil {
		t.Error("empty graph should error (naive)")
	}
	g.MustAddNode("Children", "Children")
	g.MustAddNode("Parents", "Parents") // disconnected
	if _, err := FullDisjunction(context.Background(), g, in); err == nil {
		t.Error("disconnected graph should error")
	}
	if _, err := FullDisjunctionOuterJoin(context.Background(), g, in); err == nil {
		t.Error("non-tree should error in outer-join algorithm")
	}
	// Unknown base relation.
	g2 := graph.New()
	g2.MustAddNode("Nope", "Nope")
	if _, err := FullDisjunction(context.Background(), g2, in); err == nil {
		t.Error("unknown base should error")
	}
	if _, err := Compute(context.Background(), g2, in); err == nil {
		t.Error("unknown base should error in Compute")
	}
}

// randomTreeCase builds a random tree query graph over k relations
// with random data, for differential testing.
func randomTreeCase(rng *rand.Rand, k, rows int) (*graph.QueryGraph, *relation.Instance) {
	sch := schema.NewDatabase()
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = fmt.Sprintf("R%d", i)
		sch.MustAddRelation(schema.NewRelation(names[i],
			schema.Attribute{Name: "k", Type: value.KindInt},
			schema.Attribute{Name: "v", Type: value.KindInt},
		))
	}
	in := relation.NewInstance(sch)
	for i := 0; i < k; i++ {
		r := in.NewRelationFor(names[i])
		for j := 0; j < rows; j++ {
			r.AddValues(value.Int(int64(rng.Intn(4))), value.Int(int64(rng.Intn(100))))
		}
		in.MustAdd(r)
	}
	g := graph.New()
	g.MustAddNode(names[0], names[0])
	for i := 1; i < k; i++ {
		g.MustAddNode(names[i], names[i])
		parent := names[rng.Intn(i)]
		g.MustAddEdge(parent, names[i], expr.Equals(parent+".k", names[i]+".k"))
	}
	return g, in
}

func TestTreeAlgorithmsAgreeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		k := 2 + rng.Intn(3) // 2..4 relations
		rows := 1 + rng.Intn(4)
		g, in := randomTreeCase(rng, k, rows)
		a, err := FullDisjunction(context.Background(), g, in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := FullDisjunctionOuterJoin(context.Background(), g, in)
		if err != nil {
			t.Fatal(err)
		}
		if !a.EqualSet(b) {
			t.Fatalf("trial %d: subgraph vs outer-join mismatch on\n%v\nsubgraph:\n%v\nouterjoin:\n%v",
				trial, g, a.Sorted(), b.Sorted())
		}
		c, err := FullDisjunctionNaive(context.Background(), g, in)
		if err != nil {
			t.Fatal(err)
		}
		if !a.EqualSet(c) {
			t.Fatalf("trial %d: subgraph vs naive mismatch", trial)
		}
	}
}

// Property: D(G) is an antichain under strict subsumption, and every
// full association of the whole graph appears in it.
func TestFullDisjunctionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 20; trial++ {
		g, in := randomTreeCase(rng, 3, 3)
		d, err := Compute(context.Background(), g, in)
		if err != nil {
			t.Fatal(err)
		}
		for i, t1 := range d.Tuples() {
			for j, t2 := range d.Tuples() {
				if i != j && t1.StrictlySubsumes(t2) {
					t.Fatalf("D(G) contains subsumed pair")
				}
			}
		}
		full, err := FullAssociations(context.Background(), g, in, g.Nodes())
		if err != nil {
			t.Fatal(err)
		}
		for _, ft := range full.Tuples() {
			if !d.Contains(ft.Project(d.Scheme())) {
				t.Fatalf("full association missing from D(G): %v", ft)
			}
		}
	}
}

func TestCyclicGraph(t *testing.T) {
	// Triangle A—B—C—A; Compute must fall back to subgraph join and
	// agree with naive.
	sch := schema.NewDatabase()
	for _, n := range []string{"A", "B", "C"} {
		sch.MustAddRelation(schema.NewRelation(n,
			schema.Attribute{Name: "k", Type: value.KindInt}))
	}
	in := relation.NewInstance(sch)
	rng := rand.New(rand.NewSource(3))
	for _, n := range []string{"A", "B", "C"} {
		r := in.NewRelationFor(n)
		for j := 0; j < 4; j++ {
			r.AddValues(value.Int(int64(rng.Intn(3))))
		}
		in.MustAdd(r.Distinct())
	}
	g := graph.New()
	g.MustAddNode("A", "A")
	g.MustAddNode("B", "B")
	g.MustAddNode("C", "C")
	g.MustAddEdge("A", "B", expr.Equals("A.k", "B.k"))
	g.MustAddEdge("B", "C", expr.Equals("B.k", "C.k"))
	g.MustAddEdge("C", "A", expr.Equals("C.k", "A.k"))
	got, err := Compute(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FullDisjunctionNaive(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualSet(want) {
		t.Errorf("cyclic: Compute vs naive mismatch:\n%v\n%v", got, want)
	}
}
