package fd

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"clio/internal/expr"
	"clio/internal/graph"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// Property: every tuple of D(G) has a coverage set that induces a
// connected subgraph of G (Definition 3.6 requires it).
func TestCoverageIsConnectedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		g, in := randomTreeCase(rng, 2+rng.Intn(3), 1+rng.Intn(4))
		d, err := Compute(context.Background(), g, in)
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range d.Tuples() {
			cov, err := Coverage(tp, g, in)
			if err != nil {
				t.Fatal(err)
			}
			if len(cov) == 0 {
				t.Fatalf("empty coverage for %v", tp)
			}
			if !g.Induced(cov).Connected() {
				t.Fatalf("coverage %v of %v is disconnected in\n%v", cov, tp, g)
			}
		}
	}
}

// Property: D(G) restricted to full coverage equals F(G) — the inner
// join of everything.
func TestFullCoverageEqualsInnerJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		g, in := randomTreeCase(rng, 3, 1+rng.Intn(4))
		d, err := Compute(context.Background(), g, in)
		if err != nil {
			t.Fatal(err)
		}
		full, err := FullAssociations(context.Background(), g, in, g.Nodes())
		if err != nil {
			t.Fatal(err)
		}
		covered := relation.New("full", d.Scheme())
		allNodes := len(g.Nodes())
		for _, tp := range d.Tuples() {
			cov, _ := Coverage(tp, g, in)
			if len(cov) == allNodes {
				covered.Add(tp)
			}
		}
		if !covered.EqualSet(full.Project(d.Scheme().Names()...)) {
			t.Fatalf("trial %d: full-coverage slice differs from inner join", trial)
		}
	}
}

func TestEmptyRelations(t *testing.T) {
	// Instances with empty relations: D(G) degrades gracefully to the
	// non-empty sides.
	sch := schema.NewDatabase()
	sch.MustAddRelation(schema.NewRelation("A",
		schema.Attribute{Name: "k", Type: value.KindInt}))
	sch.MustAddRelation(schema.NewRelation("B",
		schema.Attribute{Name: "k", Type: value.KindInt}))
	in := relation.NewInstance(sch)
	a := in.NewRelationFor("A")
	a.AddRow("1")
	a.AddRow("2")
	in.MustAdd(a)
	in.MustAdd(in.NewRelationFor("B")) // empty

	g := graph.New()
	g.MustAddNode("A", "A")
	g.MustAddNode("B", "B")
	g.MustAddEdge("A", "B", expr.Equals("A.k", "B.k"))

	for name, f := range map[string]func(context.Context, *graph.QueryGraph, *relation.Instance) (*relation.Relation, error){
		"subgraph": FullDisjunction,
		"naive":    FullDisjunctionNaive,
		"outer":    FullDisjunctionOuterJoin,
	} {
		d, err := f(context.Background(), g, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Len() != 2 {
			t.Errorf("%s: |D(G)| = %d, want 2 (A rows padded)", name, d.Len())
		}
		for _, tp := range d.Tuples() {
			if !tp.Get("B.k").IsNull() {
				t.Errorf("%s: B side should be null: %v", name, tp)
			}
		}
	}

	// Both empty: D(G) is empty.
	in2 := relation.NewInstance(sch)
	in2.MustAdd(in2.NewRelationFor("A"))
	in2.MustAdd(in2.NewRelationFor("B"))
	d, err := Compute(context.Background(), g, in2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Errorf("empty instance D(G) = %d rows", d.Len())
	}
}

// Property: |D(G)| for a chain with zero matches is the sum of
// relation sizes (all singleton associations), and with full matching
// on a shared single key it is the product (per key).
func TestCardinalityExtremes(t *testing.T) {
	sch := schema.NewDatabase()
	names := []string{"A", "B", "C"}
	for _, n := range names {
		sch.MustAddRelation(schema.NewRelation(n,
			schema.Attribute{Name: "k", Type: value.KindInt},
			schema.Attribute{Name: "v", Type: value.KindString}))
	}
	mk := func(match bool, rows int) *relation.Instance {
		in := relation.NewInstance(sch)
		for i, n := range names {
			r := in.NewRelationFor(n)
			for j := 0; j < rows; j++ {
				k := int64(1)
				if !match {
					k = int64(i*100 + j)
				}
				r.AddValues(value.Int(k), value.String(fmt.Sprintf("%s%d", n, j)))
			}
			in.MustAdd(r)
		}
		return in
	}
	g := graph.New()
	for _, n := range names {
		g.MustAddNode(n, n)
	}
	g.MustAddEdge("A", "B", expr.Equals("A.k", "B.k"))
	g.MustAddEdge("B", "C", expr.Equals("B.k", "C.k"))

	noMatch, err := Compute(context.Background(), g, mk(false, 3))
	if err != nil {
		t.Fatal(err)
	}
	if noMatch.Len() != 9 {
		t.Errorf("no-match |D(G)| = %d, want 9", noMatch.Len())
	}
	allMatch, err := Compute(context.Background(), g, mk(true, 3))
	if err != nil {
		t.Fatal(err)
	}
	if allMatch.Len() != 27 {
		t.Errorf("all-match |D(G)| = %d, want 27", allMatch.Len())
	}
}

func TestCoverageAllMatchesPerTuple(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g, in := randomTreeCase(rng, 3, 4)
	d, err := Compute(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	all, err := CoverageAll(d, g, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != d.Len() {
		t.Fatalf("lengths differ: %d vs %d", len(all), d.Len())
	}
	for i, tp := range d.Tuples() {
		single, err := Coverage(tp, g, in)
		if err != nil {
			t.Fatal(err)
		}
		if len(single) != len(all[i]) {
			t.Fatalf("tuple %d coverage differs: %v vs %v", i, single, all[i])
		}
		for j := range single {
			if single[j] != all[i][j] {
				t.Fatalf("tuple %d coverage differs: %v vs %v", i, single, all[i])
			}
		}
	}
	// Error path: bad graph.
	bad := graph.New()
	bad.MustAddNode("Nope", "Nope")
	if _, err := CoverageAll(d, bad, in); err == nil {
		t.Error("unknown base should error")
	}
}
