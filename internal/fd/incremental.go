package fd

import (
	"context"
	"errors"
	"fmt"

	"clio/internal/algebra"
	"clio/internal/budget"
	"clio/internal/fault"
	"clio/internal/graph"
	"clio/internal/obs"
	"clio/internal/relation"
)

// Incremental-vs-full decision counters: how often a walk/chase step
// was maintained with one outer join versus recomputed from scratch.
var (
	cIncExtend = obs.GetCounter("fd.incremental.extend")
	cIncFull   = obs.GetCounter("fd.incremental.full")
)

// Incremental maintenance of D(G) under leaf extension. Data walks
// and chases grow the query graph by single leaves (a chase adds one
// node; each walk step adds one node), so the common evolution step is
// G' = G + node n + edge (p, n).
//
// Claim: D(G') = RemoveSubsumed( D(G) FULL JOIN R_n ON pred ).
//
// Proof sketch. (⊇) Every join output is an association of G':
// matched rows are d·r with the edge predicate true; unmatched D(G)
// rows pad n with nulls; unmatched R_n rows are {n} singletons. The
// sweep leaves only maximal ones. (⊆) Let d' ∈ D(G'). If n is not
// covered, d' is maximal among G-associations — any strictly
// subsuming G-association would also be a G'-association — so
// d' ∈ D(G) and the join preserves it (padded, unmatched or removed
// only if subsumed, contradiction). If n is covered, write
// d' = e·r_n; e is a maximal G-association, because any e'' ⊐ e
// yields e''·r_n ⊐ d' (the edge predicate only reads p's attributes,
// on which e and e'' agree — e covers p since the predicate held).
// So e ∈ D(G) and the join produces d'. ∎
//
// Each walk/chase thus costs one hash join over the previous D(G)
// instead of a full recomputation (benchmark E7).

// ExtendLeaf computes D(G′) from a previously computed D(G), where
// newGraph extends oldGraph by exactly one leaf node. It returns an
// error if the graphs do not differ by a single leaf.
func ExtendLeaf(ctx context.Context, dg *relation.Relation, oldGraph, newGraph *graph.QueryGraph, in *relation.Instance) (*relation.Relation, error) {
	leaf, edge, err := leafDelta(oldGraph, newGraph)
	if err != nil {
		return nil, err
	}
	// Chaos hook: an injected fault here models a mid-extension failure
	// (worker death, transient I/O). ExtendLeaf builds its result in
	// private accumulators and publishes nothing on any error path, so
	// callers observing this error hold no partially-extended state.
	if err := fault.Inject("fd.extend_leaf"); err != nil {
		return nil, err
	}
	ctx, span := obs.StartSpan(ctx, "fd.extend_leaf")
	defer span.End()
	span.SetStr("leaf", leaf)
	span.SetInt("base", int64(dg.Len()))
	n, _ := newGraph.Node(leaf)
	r, err := in.Aliased(n.Base, n.Name)
	if err != nil {
		return nil, err
	}
	// Align to the canonical D(G') scheme, streaming the full join's
	// batches straight into the aligned relation.
	s, err := Scheme(newGraph, in)
	if err != nil {
		return nil, err
	}
	it := algebra.OpenJoin(ctx, algebra.FullJoin, dg, r, edge.Pred)
	tr := budget.FromContext(ctx)
	aligned := relation.New("D(G)", s)
	err = func() error {
		defer it.Close()
		for {
			batch, err := it.Next()
			if err != nil {
				return err
			}
			if batch == nil {
				return nil
			}
			for _, t := range batch {
				p := t.Project(s)
				if err := tr.Charge(1, p.ApproxBytes()); err != nil {
					return err
				}
				aligned.Add(p)
			}
		}
	}()
	if err != nil {
		return nil, err
	}
	out := relation.RemoveSubsumed(aligned.Distinct())
	out.Name = "D(G)"
	out.SortByKey()
	span.SetInt("tuples", int64(out.Len()))
	return out, nil
}

// leafDelta verifies newGraph = oldGraph + one leaf and returns the
// leaf name and its edge.
func leafDelta(oldGraph, newGraph *graph.QueryGraph) (string, graph.Edge, error) {
	if newGraph.NodeCount() != oldGraph.NodeCount()+1 {
		return "", graph.Edge{}, fmt.Errorf("fd: not a single-node extension (%d → %d nodes)",
			oldGraph.NodeCount(), newGraph.NodeCount())
	}
	var leaf string
	for _, n := range newGraph.Nodes() {
		if !oldGraph.HasNode(n) {
			leaf = n
			break
		}
	}
	if leaf == "" {
		return "", graph.Edge{}, fmt.Errorf("fd: new graph has no new node")
	}
	// All old nodes must keep their bases and edges.
	for _, n := range oldGraph.Nodes() {
		on, _ := oldGraph.Node(n)
		nn, ok := newGraph.Node(n)
		if !ok || nn.Base != on.Base {
			return "", graph.Edge{}, fmt.Errorf("fd: extension rebased node %q", n)
		}
	}
	if len(newGraph.Edges()) != len(oldGraph.Edges())+1 {
		return "", graph.Edge{}, fmt.Errorf("fd: extension must add exactly one edge")
	}
	for _, e := range oldGraph.Edges() {
		ne, ok := newGraph.EdgeBetween(e.A, e.B)
		if !ok || ne.Label() != e.Label() {
			return "", graph.Edge{}, fmt.Errorf("fd: extension changed edge %s—%s", e.A, e.B)
		}
	}
	neighbors := newGraph.Neighbors(leaf)
	if len(neighbors) != 1 {
		return "", graph.Edge{}, fmt.Errorf("fd: new node %q is not a leaf (degree %d)", leaf, len(neighbors))
	}
	edge, _ := newGraph.EdgeBetween(leaf, neighbors[0])
	return leaf, edge, nil
}

// ComputeIncremental computes D(G′) reusing a previous D(G) when the
// new graph is a single-leaf extension, falling back to Compute
// otherwise. oldDG and oldGraph may be nil on first use.
func ComputeIncremental(ctx context.Context, oldDG *relation.Relation, oldGraph, newGraph *graph.QueryGraph, in *relation.Instance) (*relation.Relation, error) {
	ctx, span := obs.StartSpan(ctx, "fd.compute_incremental")
	defer span.End()
	if oldDG != nil && oldGraph != nil {
		// Budget-aware routing: the full join's output contains every
		// old D(G) row AND every row of the new leaf's base relation
		// (matched or null-padded), and the alignment loop charges each
		// one — so the extension bound is the max of the two, tighter
		// than |D(G)| alone. Skip straight to a full computation when
		// that bound already exceeds the remaining headroom. "abort"
		// also routes through Compute: a D(G) cache hit charges only
		// the final result, and Compute's own abort check settles a
		// miss. leafDelta runs first so a non-extension never pays for
		// an estimate or a doomed ExtendLeaf call.
		if leaf, _, lerr := leafDelta(oldGraph, newGraph); lerr == nil {
			extendEst := int64(oldDG.Len())
			if n, ok := newGraph.Node(leaf); ok {
				if r, rerr := in.Aliased(n.Base, n.Base); rerr == nil && int64(r.Len()) > extendEst {
					extendEst = int64(r.Len())
				}
			}
			recomputeEst, estErr := estimateRows(newGraph, in, newGraph.IsTree())
			if estErr == nil && pickIncremental(extendEst, recomputeEst, rowHeadroom(ctx)) == "extend" {
				d, err := ExtendLeaf(ctx, oldDG, oldGraph, newGraph, in)
				switch {
				case err == nil:
					span.SetStr("mode", "extend_leaf")
					cIncExtend.Inc()
					// Memoize under the key of the state the result was
					// derived from (re-fingerprinted now, not up front).
					cacheStoreCurrent(newGraph, in, d)
					return d, nil
				case errors.Is(err, budget.ErrExceeded) || ctx.Err() != nil:
					// Out of budget or cancelled: a full recomputation can only
					// consume more — fail now instead of falling back.
					return nil, err
				}
			}
		}
	}
	span.SetStr("mode", "full")
	cIncFull.Inc()
	return Compute(ctx, newGraph, in)
}
