package fd

// Budget-aware algorithm routing. Compute picks between the D(G)
// algorithms using the remaining budget headroom as a cost bound: a
// computation whose certain lower bound on charged rows already
// exceeds the headroom is refused up front ("abort") with the same
// typed error a doomed run would eventually hit, and a tight budget
// demotes the parallel subgraph algorithm to the sequential one
// (parallel workers charge concurrently, so a near-exhausted budget
// buys less useful work per charged row).
//
// The estimates are true lower bounds, never heuristics: abort must
// only fire when the computation is guaranteed to exceed the budget,
// so an unlimited or generous budget routes exactly as before.

import (
	"context"

	"clio/internal/budget"
	"clio/internal/graph"
	"clio/internal/relation"
)

// rowHeadroom returns the remaining row headroom of the context's
// budget, or -1 when rows are unlimited.
func rowHeadroom(ctx context.Context) int64 {
	tr := budget.FromContext(ctx)
	if tr == nil {
		return -1
	}
	b := tr.Limits()
	if b.MaxRows <= 0 {
		return -1
	}
	rem := b.MaxRows - tr.Rows()
	if rem < 0 {
		rem = 0
	}
	return rem
}

// estimateRows returns a certain lower bound on the rows any D(G)
// algorithm must charge for g over in.
//
// Tree graphs: the outer-join chain's output contains every row of
// every base relation (matched or null-padded), and the final
// alignment charges each output row, so at least max |R_n| rows are
// charged. Cyclic graphs: the subgraph algorithms pad every full
// association of every connected subset; the singleton subsets alone
// charge |R_n| padded rows per node, so at least sum |R_n| rows are
// charged.
func estimateRows(g *graph.QueryGraph, in *relation.Instance, isTree bool) (int64, error) {
	var max, sum int64
	for _, name := range g.Nodes() {
		n, _ := g.Node(name)
		r, err := in.Aliased(n.Base, n.Base)
		if err != nil {
			return 0, err
		}
		size := int64(r.Len())
		sum += size
		if size > max {
			max = size
		}
	}
	if isTree {
		return max, nil
	}
	return sum, nil
}

// pickAlgo chooses the D(G) algorithm for Compute. estimate is a true
// lower bound on the rows the computation must charge; headroom is the
// remaining row budget (negative = unlimited); spill reports whether
// the budget has a spill directory.
//
//   - "abort": the lower bound already exceeds the headroom, so the
//     computation is guaranteed to fail its budget — refuse before
//     doing any join work. Never chosen under spill: with a spill
//     directory the caps bound resident state, charges are refunded as
//     state moves to disk, and the cumulative lower bound no longer
//     proves failure.
//   - "outer_join": tree query graphs.
//   - "subgraph": cyclic graphs with few connected subsets, or with a
//     budget too tight to amortize parallel fan-out. Always the cyclic
//     choice under spill: the parallel variant's workers charge
//     concurrently against the resident cap and its accumulator
//     cannot spill, so spilling runs route sequentially.
//   - "subgraph_parallel": cyclic graphs with many subsets and enough
//     headroom.
func pickAlgo(isTree bool, nSubsets int, estimate, headroom int64, spill bool) string {
	if spill {
		if isTree {
			return "outer_join"
		}
		return "subgraph"
	}
	if headroom >= 0 && estimate > headroom {
		return "abort"
	}
	if isTree {
		return "outer_join"
	}
	if nSubsets < ParallelSubsetThreshold {
		return "subgraph"
	}
	if headroom >= 0 && parallelEstimate(estimate) > headroom {
		// Demoted: re-derive the bound for the demoted (sequential)
		// path instead of reusing the parallel-shaped one. The
		// sequential estimate was already accepted by the abort check
		// above (est == headroom is exactly affordable under
		// charge-inclusive accounting), so the demotion lands on
		// "subgraph"; the explicit re-check keeps that decision local
		// rather than an artifact of check ordering.
		if estimate > headroom {
			return "abort"
		}
		return "subgraph"
	}
	return "subgraph_parallel"
}

// parallelEstimate derives the parallel subgraph algorithm's row bound
// from the sequential one: its workers charge concurrently against the
// shared tracker, so the bound that must fit in headroom is double the
// sequential lower bound (two subset drains can be resident at once
// before the accumulator collapses them).
func parallelEstimate(sequential int64) int64 { return sequential * 2 }

// pickIncremental chooses the maintenance strategy for
// ComputeIncremental. extendEst is a lower bound on the rows
// ExtendLeaf must charge (every old D(G) row survives the full join),
// recomputeEst a lower bound for a full recomputation, and headroom
// the remaining row budget (negative = unlimited).
//
//   - "extend": the one-join leaf extension fits the headroom.
//   - "full": the extension is guaranteed to bust the budget but a
//     recomputation might not — the old D(G) can exceed the base
//     relations after a blowup.
//   - "abort": both bounds exceed the headroom; no recomputation can
//     succeed. (ComputeIncremental still routes this through Compute,
//     because a D(G) cache hit charges only the final result and may
//     answer under budget; Compute's own abort check settles a miss.)
//
// Boundary convention (audited): budget.Tracker.Charge is
// charge-inclusive — charging exactly up to the cap succeeds and only
// a strict excess errors — so est == headroom is exactly affordable.
// Every comparison here and in pickAlgo is therefore strict (`>` to
// refuse, `<=` to accept): at est == headroom the extension is taken
// and a recomputation is never spuriously aborted. The boundary tests
// in picker_boundary_test.go pin all three branches at equality.
func pickIncremental(extendEst, recomputeEst, headroom int64) string {
	if headroom < 0 || extendEst <= headroom {
		return "extend"
	}
	if recomputeEst > headroom {
		return "abort"
	}
	return "full"
}

// pickDelta chooses the row-edit maintenance strategy for
// MaintainRows. deltaEst is a lower bound on the rows a delta
// application must charge (each singleton subset over the edited base
// emits the delta tuple once), rebuildEst a lower bound for rebuilding
// the materialized D(G) from scratch, and headroom the remaining row
// budget (negative = unlimited). Same charge-inclusive boundary
// convention as pickIncremental: est == headroom is affordable.
//
//   - "delta": the O(delta) application fits the headroom.
//   - "rebuild": the delta path is guaranteed to bust the budget but a
//     rebuild might not (the delta bound can exceed the rebuild bound
//     only in pathological shapes, but the branch keeps the routing
//     total).
//   - "abort": both bounds exceed the headroom.
func pickDelta(deltaEst, rebuildEst, headroom int64) string {
	if headroom < 0 || deltaEst <= headroom {
		return "delta"
	}
	if rebuildEst > headroom {
		return "abort"
	}
	return "rebuild"
}

// pickSpillReplay chooses the dgAccum finalize strategy from the
// spill-partition statistics the sinks recorded into the tracker
// (budget.Tracker.NotePartition), so the route is decided before any
// replay I/O is paid:
//
//   - "parallel": every partition's disk footprint fits the resident
//     caps, so the optimistic concurrent shard replay is expected to
//     succeed (a refusal still falls back to serial — the statistics
//     route, the budget decides).
//   - "serial": the largest partition's disk footprint already exceeds
//     a cap, so recursion is likely needed and only the serial path
//     recurses; attempting the parallel phase first would be wasted
//     I/O.
//
// Unlike the join side (algebra's pairReplayBound), no sound abort
// verdict exists here: replay charges only the deduplicated
// subsumption front, which can be arbitrarily smaller than the
// partition's disk footprint — so this picker routes, never refuses.
func pickSpillReplay(maxPartBytes, maxPartTuples, capBytes, capRows int64) string {
	if (capBytes > 0 && maxPartBytes > capBytes) || (capRows > 0 && maxPartTuples > capRows) {
		return "serial"
	}
	return "parallel"
}

// overBudget builds the typed error for an aborted computation: the
// same *budget.Error a doomed run would return once estimate rows had
// been charged.
func overBudget(ctx context.Context, estimate int64) error {
	tr := budget.FromContext(ctx)
	return &budget.Error{Limit: "rows", Max: tr.Limits().MaxRows, Got: tr.Rows() + estimate, Spill: tr.SpillState()}
}
