package fd

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"clio/internal/budget"
	"clio/internal/expr"
	"clio/internal/fault"
	"clio/internal/graph"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/spill"
	"clio/internal/value"
)

// spillDGCase builds a k-relation workload whose intermediate streams
// dwarf their distinct front: every (key, v) row is repeated `copies`
// times, so joins multiply duplicates (copies^k per match) while
// Distinct/RemoveSubsumed collapse the result back to a few hundred
// tuples. chain=true wires R0-R1-…; chain=false adds a closing edge,
// making the graph cyclic so the subgraph-enumeration path runs.
func spillDGCase(k, keys, copies int, chain bool) (*graph.QueryGraph, *relation.Instance) {
	sch := schema.NewDatabase()
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = fmt.Sprintf("R%d", i)
		sch.MustAddRelation(schema.NewRelation(names[i],
			schema.Attribute{Name: "k", Type: value.KindInt},
			schema.Attribute{Name: "v", Type: value.KindInt},
		))
	}
	in := relation.NewInstance(sch)
	for i := 0; i < k; i++ {
		r := in.NewRelationFor(names[i])
		for key := 0; key < keys; key++ {
			for v := 0; v < 2; v++ {
				for c := 0; c < copies; c++ {
					r.AddValues(value.Int(int64(key)), value.Int(int64(v)))
				}
			}
		}
		in.MustAdd(r)
	}
	g := graph.New()
	for i := 0; i < k; i++ {
		g.MustAddNode(names[i], names[i])
	}
	for i := 1; i < k; i++ {
		g.MustAddEdge(names[i-1], names[i], expr.Equals(names[i-1]+".k", names[i]+".k"))
	}
	if !chain {
		g.MustAddEdge(names[0], names[k-1], expr.Equals(names[0]+".k", names[k-1]+".k"))
	}
	return g, in
}

// requireSameDG asserts byte-identical canonical order (Compute sorts
// by canonical key, so equality must hold position by position).
func requireSameDG(t *testing.T, got, want *relation.Relation) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("spilled D(G) has %d tuples, unlimited has %d", got.Len(), want.Len())
	}
	gt, wt := got.Tuples(), want.Tuples()
	for i := range gt {
		if gt[i].Key() != wt[i].Key() {
			t.Fatalf("tuple %d differs:\nspilled   %v\nunlimited %v", i, gt[i], wt[i])
		}
	}
}

// spillDGDifferential runs the case unlimited (measuring cumulative
// materialization) and then under a spill-enabled resident cap,
// asserting the pressure was real (cumulative >= 4x the cap, spill
// engaged) and the results byte-identical.
func spillDGDifferential(t *testing.T, g *graph.QueryGraph, in *relation.Instance, cap int64) {
	t.Helper()
	refCtx := WithBudget(context.Background(), Budget{MaxBytes: 1 << 40})
	want, err := Compute(refCtx, g, in)
	if err != nil {
		t.Fatalf("unlimited run: %v", err)
	}
	_, cumulative := BudgetUsed(refCtx)
	if cumulative < 4*cap {
		t.Fatalf("workload too small: cumulative bytes %d < 4x cap %d — the spill path is not under pressure", cumulative, cap)
	}

	tr := budget.NewTracker(budget.Budget{MaxBytes: cap, SpillDir: t.TempDir()})
	got, err := Compute(budget.With(context.Background(), tr), g, in)
	if err != nil {
		t.Fatalf("spilled run: %v", err)
	}
	if tr.SpillWritten() == 0 {
		t.Fatal("run under pressure never spilled — the test is vacuous")
	}
	if tr.Rows() != 0 && int64(got.Len()) != tr.Rows() {
		t.Fatalf("post-run resident rows %d, want 0 or the charged front %d", tr.Rows(), got.Len())
	}
	if tr.SpillBytes() != 0 {
		t.Fatalf("spill bytes still resident after completion: %d", tr.SpillBytes())
	}
	requireSameDG(t, got, want)
}

// The acceptance workload: a chain-join D(G) whose intermediate state
// is well over 4x MaxBytes must complete via spill (outer-join path,
// grace-hash joins plus the spilling D(G) sink) byte-identical to the
// unlimited in-memory run.
func TestBudgetSpillChainDGByteIdentical(t *testing.T) {
	g, in := spillDGCase(3, 8, 6, true)
	spillDGDifferential(t, g, in, 131072)
}

// The same guarantee on a cyclic graph, where the picker must choose
// sequential subgraph enumeration and the dgAccum spill sink dedups
// partition by partition before global subsumption.
func TestBudgetSpillCyclicDGByteIdentical(t *testing.T) {
	g, in := spillDGCase(3, 8, 6, false)
	spillDGDifferential(t, g, in, 131072)
}

// A spill-file fault mid-computation must degrade to a typed abort —
// matching spill.ErrSpill — with no memo-cache entry, and the next
// clean computation over the same graph must be exact.
func TestChaosSpillComputeFaultLeavesCacheClean(t *testing.T) {
	prev := SetCacheCapacity(8)
	defer func() { SetCacheCapacity(prev); InvalidateCache() }()
	InvalidateCache()
	fault.Enable(1)
	defer fault.Disable()

	g, in := spillDGCase(3, 8, 6, true)
	want, err := Compute(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	InvalidateCache()

	for _, point := range []string{"spill.write", "spill.read"} {
		t.Run(point, func(t *testing.T) {
			fault.Set(point, fault.Spec{Mode: fault.ModeError, After: 40, Times: 1})
			dir := t.TempDir()
			tr := budget.NewTracker(budget.Budget{MaxBytes: 131072, SpillDir: dir})
			_, err := Compute(budget.With(context.Background(), tr), g, in)
			if !errors.Is(err, spill.ErrSpill) || !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("faulted compute returned %v, want spill.ErrSpill via fault.ErrInjected", err)
			}
			key, ok := cacheKey(g, in)
			if !ok {
				t.Fatal("no cache key for the test graph")
			}
			if cachePeek(key) {
				t.Fatal("aborted spill computation left a memo-cache entry")
			}
			if tr.Rows() != 0 || tr.Bytes() != 0 || tr.SpillBytes() != 0 {
				t.Fatalf("abort leaked charges: rows=%d bytes=%d spill=%d", tr.Rows(), tr.Bytes(), tr.SpillBytes())
			}
			if left, _ := filepath.Glob(filepath.Join(dir, "clio-spill-*.part")); len(left) != 0 {
				t.Fatalf("abort left spill files: %v", left)
			}
			// The fault point is exhausted: the same budget must now
			// succeed, and exactly.
			got, err := Compute(budget.With(context.Background(), budget.NewTracker(budget.Budget{MaxBytes: 131072, SpillDir: dir})), g, in)
			if err != nil {
				t.Fatalf("recovery compute: %v", err)
			}
			requireSameDG(t, got, want)
			InvalidateCache()
		})
	}
}

// Disk-full during spill — the MaxSpillBytes cap — must abort with the
// typed budget error naming the spill limit and disk_cap_exceeded,
// never a partial result, and must leave the memo cache clean.
func TestBudgetSpillDiskFullTypedAbort(t *testing.T) {
	prev := SetCacheCapacity(8)
	defer func() { SetCacheCapacity(prev); InvalidateCache() }()
	InvalidateCache()

	g, in := spillDGCase(3, 8, 6, true)
	dir := t.TempDir()
	tr := budget.NewTracker(budget.Budget{MaxBytes: 131072, SpillDir: dir, MaxSpillBytes: 4096})
	_, err := Compute(budget.With(context.Background(), tr), g, in)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("disk-full compute returned %v, want *BudgetError", err)
	}
	if be.Limit != "spill" || be.Spill != SpillDiskCap {
		t.Fatalf("disk-full error = %+v, want limit spill, state %q", be, SpillDiskCap)
	}
	if key, ok := cacheKey(g, in); ok && cachePeek(key) {
		t.Fatal("disk-full abort left a memo-cache entry")
	}
	if tr.SpillBytes() != 0 {
		t.Fatalf("disk-full abort left %d spill bytes resident", tr.SpillBytes())
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "clio-spill-*.part")); len(left) != 0 {
		t.Fatalf("disk-full abort left spill files: %v", left)
	}
}

// The spill-v2 acceptance workload on the D(G) side: a chain-4 graph
// whose cumulative materialization is >= 8x the resident cap must
// complete byte-identical to the unlimited run, with partition
// statistics recorded for the picker.
func TestBudgetSpillChain4DGByteIdentical(t *testing.T) {
	g, in := spillDGCase(4, 8, 3, true)
	const cap = 131072
	refCtx := WithBudget(context.Background(), Budget{MaxBytes: 1 << 40})
	want, err := Compute(refCtx, g, in)
	if err != nil {
		t.Fatalf("unlimited run: %v", err)
	}
	_, cumulative := BudgetUsed(refCtx)
	if cumulative < 8*cap {
		t.Fatalf("workload too small: cumulative bytes %d < 8x cap %d", cumulative, cap)
	}
	tr := budget.NewTracker(budget.Budget{MaxBytes: cap, SpillDir: t.TempDir()})
	got, err := Compute(budget.With(context.Background(), tr), g, in)
	if err != nil {
		t.Fatalf("spilled run: %v", err)
	}
	if tr.SpillWritten() == 0 {
		t.Fatal("run under pressure never spilled — the test is vacuous")
	}
	if n, _, _ := tr.PartitionStats(); n == 0 {
		t.Fatal("no partition statistics recorded for the picker")
	}
	if tr.SpillBytes() != 0 {
		t.Fatalf("spill bytes still resident after completion: %d", tr.SpillBytes())
	}
	requireSameDG(t, got, want)
}

// subsumptionStream builds the satellite-2 acceptance stream: for each
// of n keys, six one-column partial tuples followed (in stream order)
// by one complete tuple that subsumes all six. The distinct multiset
// is ~7x the final front.
func subsumptionStream(n int) (*relation.Scheme, []relation.Tuple, int) {
	s := relation.NewScheme("G.k", "G.c1", "G.c2", "G.c3", "G.c4", "G.c5", "G.c6")
	var out []relation.Tuple
	for key := 0; key < n; key++ {
		k := value.Int(int64(key))
		full := make([]value.Value, 7)
		full[0] = k
		for c := 0; c < 6; c++ {
			vals := []value.Value{k, value.Null, value.Null, value.Null, value.Null, value.Null, value.Null}
			vals[c+1] = value.Int(int64(key*10 + c))
			full[c+1] = vals[c+1]
			out = append(out, relation.NewTuple(s, vals...))
		}
		out = append(out, relation.NewTuple(s, full...))
	}
	return s, out, n
}

// Satellite 2: a stream whose distinct multiset is ~4x the budget but
// whose subsumption front fits must finalize — which requires the
// accumulator to refund tuples the SubsumeSet evicts when a
// later-arriving subsuming tuple displaces them. Against the pre-fix
// code (evicted entries stay charged) this aborts on the bytes limit.
func TestBudgetSpillSubsumedFrontRefundsEvictions(t *testing.T) {
	s, stream, keys := subsumptionStream(60)
	var total, front int64
	for _, u := range stream {
		total += u.ApproxBytes()
	}
	for i := 6; i < len(stream); i += 7 {
		front += stream[i].ApproxBytes()
	}
	const cap = 32768
	if total < 4*cap {
		t.Fatalf("distinct multiset %d bytes < 4x cap %d — the test is vacuous", total, cap)
	}
	if front >= cap {
		t.Fatalf("front %d does not fit the cap %d — the workload is unsatisfiable", front, cap)
	}

	// Reference: the unlimited in-memory sink.
	refTr := budget.NewTracker(budget.Budget{MaxBytes: 1 << 40})
	ref := newDGSink(context.Background(), refTr, s)
	for _, u := range stream {
		if err := ref.add(u); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ref.finalize()
	if err != nil {
		t.Fatal(err)
	}

	tr := budget.NewTracker(budget.Budget{MaxBytes: cap, SpillDir: t.TempDir()})
	sink := newDGSink(context.Background(), tr, s)
	for _, u := range stream {
		if err := sink.add(u); err != nil {
			t.Fatalf("add under pressure: %v", err)
		}
	}
	got, err := sink.finalize()
	if err != nil {
		t.Fatalf("finalize under pressure: %v (the front fits — an abort means evicted tuples stayed charged)", err)
	}
	if tr.SpillWritten() == 0 {
		t.Fatal("sink never spilled — the test is vacuous")
	}
	if got.Len() != keys {
		t.Fatalf("front has %d tuples, want %d (one complete tuple per key)", got.Len(), keys)
	}
	// The sinks return unsorted fronts (Compute sorts downstream).
	got.SortByKey()
	want.SortByKey()
	requireSameDG(t, got, want)
	if tr.Rows() != int64(keys) {
		t.Fatalf("post-finalize resident rows %d, want the front's %d", tr.Rows(), keys)
	}
	if tr.SpillBytes() != 0 {
		t.Fatalf("spill bytes resident after finalize: %d", tr.SpillBytes())
	}
}

// With recursion disabled, a D(G) replay the budget refuses keeps the
// plain "enabled" spill state; with the default depth available the
// sink either completes or names recursion_exhausted — never a bare
// enabled refusal after recursion actually ran. This pins the serial
// path's escalation labels.
func TestBudgetSpillDGRecursionOffKeepsEnabledState(t *testing.T) {
	s, stream, _ := subsumptionStream(60)
	// A cap the front itself overflows: finalize must abort whatever
	// the recursion depth, but the state depends on whether recursion
	// was available.
	for _, tc := range []struct {
		name      string
		depth     int
		wantState string
	}{
		{"recursion off", -1, budget.SpillEnabled},
		{"recursion default", 0, budget.SpillRecursionExhausted},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := budget.NewTracker(budget.Budget{MaxBytes: 4096, SpillDir: t.TempDir(), SpillRecursionDepth: tc.depth})
			sink := newDGSink(context.Background(), tr, s)
			var err error
			for _, u := range stream {
				if err = sink.add(u); err != nil {
					break
				}
			}
			if err == nil {
				_, err = sink.finalize()
			}
			var be *budget.Error
			if !errors.As(err, &be) {
				t.Fatalf("over-front sink returned %v, want *budget.Error", err)
			}
			if be.Spill != tc.wantState {
				t.Fatalf("spill state = %q, want %q", be.Spill, tc.wantState)
			}
			sink.abort()
			if tr.Rows() != 0 || tr.Bytes() != 0 || tr.SpillBytes() != 0 {
				t.Fatalf("abort leaked charges: rows=%d bytes=%d spill=%d", tr.Rows(), tr.Bytes(), tr.SpillBytes())
			}
		})
	}
}
