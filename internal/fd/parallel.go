package fd

import (
	"fmt"
	"runtime"
	"sync"

	"clio/internal/graph"
	"clio/internal/relation"
)

// FullDisjunctionParallel computes D(G) like FullDisjunction but joins
// the induced connected subgraphs concurrently across CPUs. The
// per-subgraph joins are independent; only the final minimum union is
// sequential. Worthwhile for cyclic graphs (where the subgraph
// algorithm is the only exact option) with many categories.
func FullDisjunctionParallel(g *graph.QueryGraph, in *relation.Instance) (*relation.Relation, error) {
	if g.NodeCount() == 0 {
		return nil, fmt.Errorf("fd: empty query graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("fd: query graph is not connected")
	}
	s, err := Scheme(g, in)
	if err != nil {
		return nil, err
	}
	subsets := g.ConnectedSubsets()
	results := make([]*relation.Relation, len(subsets))
	errs := make([]error, len(subsets))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(subsets) {
		workers = len(subsets)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = FullAssociations(g, in, subsets[i])
			}
		}()
	}
	for i := range subsets {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	padded := relation.New("D(G)", s)
	for _, f := range results {
		for _, t := range f.Tuples() {
			padded.Add(t.PadTo(s))
		}
	}
	out := relation.RemoveSubsumed(padded.Distinct())
	out.Name = "D(G)"
	return out, nil
}
