package fd

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"clio/internal/budget"
	"clio/internal/fault"
	"clio/internal/graph"
	"clio/internal/obs"
	"clio/internal/relation"
)

// Parallel D(G) instrumentation: how many parallel computations ran,
// and how evenly the subgraph work spread across workers (utilization
// = subsets processed by the busiest worker vs a perfect split).
var (
	cParallelRuns = obs.GetCounter("fd.parallel.runs")
	gParallelWork = obs.GetGauge("fd.parallel.workers")
	cWorkerPanics = obs.GetCounter("fd.parallel.worker_panics")
)

// FullDisjunctionParallel computes D(G) like FullDisjunction but joins
// the induced connected subgraphs concurrently across CPUs. The
// per-subgraph joins are independent; only the final minimum union is
// sequential. Worthwhile for cyclic graphs (where the subgraph
// algorithm is the only exact option) with many categories; Compute
// routes to it automatically above ParallelSubsetThreshold subsets.
// Cancellation is honored between subgraphs and returns ctx.Err().
func FullDisjunctionParallel(ctx context.Context, g *graph.QueryGraph, in *relation.Instance) (*relation.Relation, error) {
	if g.NodeCount() == 0 {
		return nil, fmt.Errorf("fd: empty query graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("fd: query graph is not connected")
	}
	return fullDisjunctionParallelSubsets(ctx, g, in, g.ConnectedSubsets())
}

// fullDisjunctionParallelSubsets is the parallel subgraph algorithm
// over a precomputed subset enumeration.
func fullDisjunctionParallelSubsets(ctx context.Context, g *graph.QueryGraph, in *relation.Instance, subsets [][]string) (*relation.Relation, error) {
	ctx, span := obs.StartSpan(ctx, "fd.parallel")
	defer span.End()
	s, err := Scheme(g, in)
	if err != nil {
		return nil, err
	}
	results := make([]*relation.Relation, len(subsets))
	errs := make([]error, len(subsets))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(subsets) {
		workers = len(subsets)
	}
	cParallelRuns.Inc()
	gParallelWork.Set(int64(workers))
	span.SetInt("workers", int64(workers))
	span.SetInt("subsets", int64(len(subsets)))

	// perWorker tracks utilization: subsets processed by each worker.
	perWorker := make([]atomic.Int64, workers)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				// Keep draining after cancellation so the feeder never
				// blocks, but skip the per-subgraph work.
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				runSubset(ctx, g, in, subsets, results, errs, i)
				perWorker[w].Add(1)
			}
		}(w)
	}
	for i := range subsets {
		next <- i
	}
	close(next)
	wg.Wait()

	tr := budget.FromContext(ctx)

	if obs.Enabled() && workers > 0 {
		// Busiest-worker share vs the perfect split, in percent; 100
		// means perfectly balanced, higher means skew.
		var busiest int64
		for i := range perWorker {
			if n := perWorker[i].Load(); n > busiest {
				busiest = n
			}
		}
		ideal := (int64(len(subsets)) + int64(workers) - 1) / int64(workers)
		if ideal > 0 {
			span.SetInt("skew_pct", busiest*100/ideal)
		}
	}

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	padded := relation.New("D(G)", s)
	for _, f := range results {
		for _, t := range f.Tuples() {
			p := t.PadTo(s)
			if err := tr.Charge(1, p.ApproxBytes()); err != nil {
				return nil, err
			}
			padded.Add(p)
		}
	}
	cPadded.Add(int64(padded.Len()))
	out := relation.RemoveSubsumed(padded.Distinct())
	out.Name = "D(G)"
	span.SetInt("tuples", int64(out.Len()))
	return out, nil
}

// runSubset computes one subgraph's full associations inside a
// parallel worker, containing panics: a worker that panics (a bug, or
// an injected fault) fails that one computation with a *PanicError
// instead of killing the process or — worse — hanging the WaitGroup.
func runSubset(ctx context.Context, g *graph.QueryGraph, in *relation.Instance, subsets [][]string, results []*relation.Relation, errs []error, i int) {
	defer func() {
		if rec := recover(); rec != nil {
			cWorkerPanics.Inc()
			results[i] = nil
			errs[i] = &PanicError{Where: "parallel worker", Value: rec}
		}
	}()
	if err := fault.Inject("fd.worker"); err != nil {
		errs[i] = err
		return
	}
	results[i], errs[i] = FullAssociations(ctx, g, in, subsets[i])
}
