package fd

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	"clio/internal/fault"
	"clio/internal/graph"
	"clio/internal/obs"
	"clio/internal/relation"
)

// D(G) memo cache instrumentation.
var (
	cCacheHits      = obs.GetCounter("fd.cache.hits")
	cCacheMisses    = obs.GetCounter("fd.cache.misses")
	cCacheEvictions = obs.GetCounter("fd.cache.evictions")
	gCacheEntries   = obs.GetGauge("fd.cache.entries")
)

// dgCache memoizes Compute results under content-addressed keys with
// LRU eviction. A key hashes the query graph shape and the content
// fingerprint of every base relation the graph reads, so any mutation
// of a source relation (which changes its fingerprint) naturally
// misses; explicit invalidation exists to release memory promptly.
//
// The cache is disabled (capacity zero) by default so batch and test
// workloads see no behavior change; long-lived services opt in with
// SetCacheCapacity.
type dgCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry
}

type cacheEntry struct {
	key string
	d   *relation.Relation
}

var theCache = &dgCache{entries: map[string]*list.Element{}, lru: list.New()}

// SetCacheCapacity sets the maximum number of memoized D(G) results
// (0 disables caching and clears the cache). It returns the previous
// capacity.
func SetCacheCapacity(n int) int {
	theCache.mu.Lock()
	defer theCache.mu.Unlock()
	prev := theCache.cap
	theCache.cap = n
	for theCache.lru.Len() > n {
		theCache.evictOldestLocked()
	}
	gCacheEntries.Set(int64(theCache.lru.Len()))
	return prev
}

// CacheCapacity returns the current capacity.
func CacheCapacity() int {
	theCache.mu.Lock()
	defer theCache.mu.Unlock()
	return theCache.cap
}

// InvalidateCache drops every memoized D(G). Serving layers call it
// when a source instance mutates, to release stale entries promptly
// (correctness does not depend on it: mutated relations change their
// fingerprints and therefore their keys).
func InvalidateCache() {
	theCache.mu.Lock()
	defer theCache.mu.Unlock()
	theCache.entries = map[string]*list.Element{}
	theCache.lru.Init()
	gCacheEntries.Set(0)
}

// CacheLen returns the number of memoized results.
func CacheLen() int {
	theCache.mu.Lock()
	defer theCache.mu.Unlock()
	return theCache.lru.Len()
}

func (c *dgCache) evictOldestLocked() {
	back := c.lru.Back()
	if back == nil {
		return
	}
	c.lru.Remove(back)
	delete(c.entries, back.Value.(*cacheEntry).key)
	cCacheEvictions.Inc()
}

// cacheKey derives the content-addressed key for computing D(G) of g
// over in: the canonical graph description plus each node's base
// relation name and content fingerprint. ok is false when caching is
// off or the graph reads a relation the instance does not have (the
// computation will fail anyway).
func cacheKey(g *graph.QueryGraph, in *relation.Instance) (string, bool) {
	if CacheCapacity() <= 0 {
		return "", false
	}
	var b strings.Builder
	b.WriteString(canonGraph(g))
	b.WriteByte('|')
	bases := map[string]bool{}
	for _, name := range g.Nodes() {
		n, _ := g.Node(name)
		bases[n.Base] = true
	}
	sorted := make([]string, 0, len(bases))
	for base := range bases {
		sorted = append(sorted, base)
	}
	sort.Strings(sorted)
	for _, base := range sorted {
		r := in.Relation(base)
		if r == nil {
			return "", false
		}
		b.WriteString(base)
		b.WriteByte('=')
		b.WriteString(strconv.FormatUint(r.Fingerprint(), 16))
		b.WriteByte(';')
	}
	return b.String(), true
}

// canonGraph renders a query graph deterministically: sorted
// name=base node pairs and sorted normalized edges with labels.
func canonGraph(g *graph.QueryGraph) string {
	nodes := g.Nodes()
	sort.Strings(nodes)
	var b strings.Builder
	for _, name := range nodes {
		n, _ := g.Node(name)
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(n.Base)
		b.WriteByte(',')
	}
	edges := make([]string, 0, len(g.Edges()))
	for _, e := range g.Edges() {
		a, z := e.A, e.B
		if a > z {
			a, z = z, a
		}
		edges = append(edges, a+"--"+z+"["+e.Label()+"]")
	}
	sort.Strings(edges)
	for _, e := range edges {
		b.WriteString(e)
		b.WriteByte(',')
	}
	return b.String()
}

// cacheLookup returns the memoized D(G) for key, if present, as a
// defensive clone (callers may rename or re-sort their copy). An
// injected fault at "fd.cache.lookup" degrades the hit to a miss —
// the cache is an optimization, never a correctness dependency.
func cacheLookup(key string) (*relation.Relation, bool) {
	if err := fault.Inject("fd.cache.lookup"); err != nil {
		cCacheMisses.Inc()
		return nil, false
	}
	theCache.mu.Lock()
	defer theCache.mu.Unlock()
	el, ok := theCache.entries[key]
	if !ok {
		cCacheMisses.Inc()
		return nil, false
	}
	theCache.lru.MoveToFront(el)
	cCacheHits.Inc()
	return el.Value.(*cacheEntry).d.Clone(), true
}

// cacheStore memoizes d under key, evicting the least recently used
// entry beyond capacity. An injected fault at "fd.cache.store" skips
// the store (the result is still returned to the caller).
func cacheStore(key string, d *relation.Relation) {
	if err := fault.Inject("fd.cache.store"); err != nil {
		return
	}
	theCache.mu.Lock()
	defer theCache.mu.Unlock()
	if theCache.cap <= 0 {
		return
	}
	if el, ok := theCache.entries[key]; ok {
		el.Value.(*cacheEntry).d = d.Clone()
		theCache.lru.MoveToFront(el)
		return
	}
	theCache.entries[key] = theCache.lru.PushFront(&cacheEntry{key: key, d: d.Clone()})
	for theCache.lru.Len() > theCache.cap {
		theCache.evictOldestLocked()
	}
	gCacheEntries.Set(int64(theCache.lru.Len()))
}
