package fd

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	"clio/internal/expr"
	"clio/internal/fault"
	"clio/internal/graph"
	"clio/internal/obs"
	"clio/internal/relation"
)

// D(G) memo cache instrumentation.
var (
	cCacheHits        = obs.GetCounter("fd.cache.hits")
	cCacheMisses      = obs.GetCounter("fd.cache.misses")
	cCacheEvictions   = obs.GetCounter("fd.cache.evictions")
	cCacheStaleStores = obs.GetCounter("fd.cache.stale_stores")
	gCacheEntries     = obs.GetGauge("fd.cache.entries")
)

// dgCache memoizes Compute results under content-addressed keys with
// LRU eviction. A key hashes the query graph shape and the content
// fingerprint of every base relation the graph reads, so any mutation
// of a source relation (which changes its fingerprint) naturally
// misses; explicit invalidation exists to release memory promptly.
//
// The cache is disabled (capacity zero) by default so batch and test
// workloads see no behavior change; long-lived services opt in with
// SetCacheCapacity.
type dgCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry
}

type cacheEntry struct {
	key string
	d   *relation.Relation
}

var theCache = &dgCache{entries: map[string]*list.Element{}, lru: list.New()}

// SetCacheCapacity sets the maximum number of memoized D(G) results
// (0 disables caching and clears the cache). It returns the previous
// capacity.
func SetCacheCapacity(n int) int {
	theCache.mu.Lock()
	defer theCache.mu.Unlock()
	prev := theCache.cap
	theCache.cap = n
	for theCache.lru.Len() > n {
		theCache.evictOldestLocked()
	}
	gCacheEntries.Set(int64(theCache.lru.Len()))
	return prev
}

// CacheCapacity returns the current capacity.
func CacheCapacity() int {
	theCache.mu.Lock()
	defer theCache.mu.Unlock()
	return theCache.cap
}

// InvalidateCache drops every memoized D(G). Serving layers call it
// when a source instance mutates, to release stale entries promptly
// (correctness does not depend on it: mutated relations change their
// fingerprints and therefore their keys).
func InvalidateCache() {
	theCache.mu.Lock()
	defer theCache.mu.Unlock()
	theCache.entries = map[string]*list.Element{}
	theCache.lru.Init()
	gCacheEntries.Set(0)
}

// CacheLen returns the number of memoized results.
func CacheLen() int {
	theCache.mu.Lock()
	defer theCache.mu.Unlock()
	return theCache.lru.Len()
}

func (c *dgCache) evictOldestLocked() {
	back := c.lru.Back()
	if back == nil {
		return
	}
	c.lru.Remove(back)
	delete(c.entries, back.Value.(*cacheEntry).key)
	cCacheEvictions.Inc()
	// Every mutation path keeps the gauge in lock-step with the LRU,
	// so fd.cache.entries can never drift from CacheLen().
	gCacheEntries.Set(int64(c.lru.Len()))
}

// cacheKey derives the content-addressed key for computing D(G) of g
// over in: the canonical graph description plus each node's base
// relation name and content fingerprint. ok is false when caching is
// off or the graph reads a relation the instance does not have (the
// computation will fail anyway).
func cacheKey(g *graph.QueryGraph, in *relation.Instance) (string, bool) {
	if CacheCapacity() <= 0 {
		return "", false
	}
	var b strings.Builder
	b.WriteString(canonGraph(g))
	b.WriteByte('|')
	bases := map[string]bool{}
	for _, name := range g.Nodes() {
		n, _ := g.Node(name)
		bases[n.Base] = true
	}
	sorted := make([]string, 0, len(bases))
	for base := range bases {
		sorted = append(sorted, base)
	}
	sort.Strings(sorted)
	for _, base := range sorted {
		r := in.Relation(base)
		if r == nil {
			return "", false
		}
		writeField(&b, 'r', base)
		writeField(&b, 'f', strconv.FormatUint(r.Fingerprint(), 16))
	}
	return b.String(), true
}

// writeField frames one key component as tag + decimal payload length
// + ':' + payload. Length prefixes make the key encoding unambiguous:
// no payload content (node names, predicate text) can forge the
// boundary between components, so distinct graphs cannot collide by
// delimiter injection.
func writeField(b *strings.Builder, tag byte, payload string) {
	b.WriteByte(tag)
	b.WriteString(strconv.Itoa(len(payload)))
	b.WriteByte(':')
	b.WriteString(payload)
}

// canonGraph renders a query graph deterministically: sorted
// length-framed name/base node pairs and sorted normalized edges.
// Edge endpoints are unordered (a join edge is symmetric), so the
// endpoint pair is sorted — and the predicate is rendered through
// canonExpr, which normalizes the direction-sensitive parts of the
// label (operand order of symmetric comparisons, conjunct order) to
// match. Without that, equal graphs built in different orders miss
// the cache.
func canonGraph(g *graph.QueryGraph) string {
	nodes := g.Nodes()
	sort.Strings(nodes)
	var b strings.Builder
	for _, name := range nodes {
		n, _ := g.Node(name)
		writeField(&b, 'n', name)
		writeField(&b, 'b', n.Base)
	}
	edges := make([]string, 0, len(g.Edges()))
	for _, e := range g.Edges() {
		a, z := e.A, e.B
		if a > z {
			a, z = z, a
		}
		var eb strings.Builder
		writeField(&eb, 'a', a)
		writeField(&eb, 'z', z)
		writeField(&eb, 'p', canonExpr(e.Pred))
		edges = append(edges, eb.String())
	}
	sort.Strings(edges)
	for _, e := range edges {
		writeField(&b, 'e', e)
	}
	return b.String()
}

// canonExpr renders an edge predicate in canonical form: operands of
// symmetric operators (=, <>, AND, OR, +, *) sort lexicographically,
// AND/OR chains flatten before sorting, and mirrored comparisons
// normalize (a > b becomes b < a). Subexpressions are length-framed,
// so a column literally named "x = y" cannot collide with an actual
// equality. Semantically equal predicates that merely differ in
// construction order therefore share one key.
func canonExpr(e expr.Expr) string {
	switch x := e.(type) {
	case expr.Bin:
		switch x.Op {
		case expr.OpAnd, expr.OpOr:
			var parts []string
			flattenCanon(x.Op, x, &parts)
			sort.Strings(parts)
			return canonNode(binTag(x.Op), parts)
		case expr.OpEq, expr.OpNe, expr.OpAdd, expr.OpMul:
			l, r := canonExpr(x.L), canonExpr(x.R)
			if l > r {
				l, r = r, l
			}
			return canonNode(binTag(x.Op), []string{l, r})
		case expr.OpGt:
			return canonExpr(expr.Bin{Op: expr.OpLt, L: x.R, R: x.L})
		case expr.OpGe:
			return canonExpr(expr.Bin{Op: expr.OpLe, L: x.R, R: x.L})
		default:
			return canonNode(binTag(x.Op), []string{canonExpr(x.L), canonExpr(x.R)})
		}
	case expr.Not:
		return canonNode("not", []string{canonExpr(x.E)})
	default:
		// Leaves and uninterpreted operators: the surface syntax is
		// already deterministic; framing keeps it unambiguous.
		return canonNode("leaf", []string{e.String()})
	}
}

// flattenCanon collects the canonical renderings of a same-operator
// chain's operands (AND/OR associate, so nesting shape is irrelevant).
func flattenCanon(op expr.BinOp, e expr.Expr, out *[]string) {
	if b, ok := e.(expr.Bin); ok && b.Op == op {
		flattenCanon(op, b.L, out)
		flattenCanon(op, b.R, out)
		return
	}
	*out = append(*out, canonExpr(e))
}

// binTag names a binary operator stably for key encoding.
func binTag(op expr.BinOp) string { return "b" + strconv.Itoa(int(op)) }

func canonNode(tag string, parts []string) string {
	var b strings.Builder
	writeField(&b, 'o', tag)
	for _, p := range parts {
		writeField(&b, 'x', p)
	}
	return b.String()
}

// cacheLookup returns the memoized D(G) for key, if present, as a
// defensive clone (callers may rename or re-sort their copy). An
// injected fault at "fd.cache.lookup" degrades the hit to a miss —
// the cache is an optimization, never a correctness dependency.
func cacheLookup(key string) (*relation.Relation, bool) {
	if err := fault.Inject("fd.cache.lookup"); err != nil {
		cCacheMisses.Inc()
		return nil, false
	}
	theCache.mu.Lock()
	defer theCache.mu.Unlock()
	el, ok := theCache.entries[key]
	if !ok {
		cCacheMisses.Inc()
		return nil, false
	}
	theCache.lru.MoveToFront(el)
	cCacheHits.Inc()
	return el.Value.(*cacheEntry).d.Clone(), true
}

// cachePeek reports whether key is memoized, without touching LRU
// order, the hit/miss counters, or fault injection — a read-only probe
// for EXPLAIN's cache-status report.
func cachePeek(key string) bool {
	theCache.mu.Lock()
	defer theCache.mu.Unlock()
	_, ok := theCache.entries[key]
	return ok
}

// cacheStoreChecked re-derives the content key from the graph and the
// instance as they are NOW and memoizes d only when it still matches
// the key the computation started from. A base relation that mutated
// mid-computation changes its fingerprint, so the re-derived key
// differs and the store is skipped — without this check the result for
// the old content would be memoized under a key describing the new
// content, poisoning every later lookup until the next mutation. It
// reports whether the store happened.
func cacheStoreChecked(key string, g *graph.QueryGraph, in *relation.Instance, d *relation.Relation) bool {
	now, ok := cacheKey(g, in)
	if !ok || now != key {
		cCacheStaleStores.Inc()
		return false
	}
	cacheStore(key, d)
	return true
}

// cacheStoreCurrent memoizes d under the key derived from the current
// graph and relation contents — the store path for delta-maintained
// and leaf-extended results, whose key was never computed up front.
// The key describes exactly the state the result was derived from, so
// re-fingerprinting here is what keeps incremental results honest in
// the cache.
func cacheStoreCurrent(g *graph.QueryGraph, in *relation.Instance, d *relation.Relation) {
	if key, ok := cacheKey(g, in); ok {
		cacheStore(key, d)
	}
}

// cacheStore memoizes d under key, evicting the least recently used
// entry beyond capacity. An injected fault at "fd.cache.store" skips
// the store (the result is still returned to the caller).
func cacheStore(key string, d *relation.Relation) {
	if err := fault.Inject("fd.cache.store"); err != nil {
		return
	}
	theCache.mu.Lock()
	defer theCache.mu.Unlock()
	if theCache.cap <= 0 {
		return
	}
	if el, ok := theCache.entries[key]; ok {
		el.Value.(*cacheEntry).d = d.Clone()
		theCache.lru.MoveToFront(el)
		return
	}
	theCache.entries[key] = theCache.lru.PushFront(&cacheEntry{key: key, d: d.Clone()})
	for theCache.lru.Len() > theCache.cap {
		theCache.evictOldestLocked()
	}
	gCacheEntries.Set(int64(theCache.lru.Len()))
}
