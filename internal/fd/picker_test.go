package fd

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// One assertion per pickAlgo routing branch: the picker is the only
// place Compute decides between abort, the outer-join chain, and the
// sequential/parallel subgraph algorithms.
func TestPickAlgoBranches(t *testing.T) {
	many := ParallelSubsetThreshold // at or above: parallel-eligible
	few := ParallelSubsetThreshold - 1

	cases := []struct {
		name     string
		isTree   bool
		nSubsets int
		estimate int64
		headroom int64
		spill    bool
		want     string
	}{
		{"abort when lower bound exceeds headroom", true, 0, 11, 10, false, "abort"},
		{"abort applies to cyclic graphs too", false, many, 11, 10, false, "abort"},
		{"tree routes to outer join", true, 0, 10, 10, false, "outer_join"},
		{"tree with unlimited budget", true, 0, 1 << 40, -1, false, "outer_join"},
		{"cyclic with few subsets stays sequential", false, few, 5, 100, false, "subgraph"},
		{"tight budget demotes parallel to sequential", false, many, 60, 100, false, "subgraph"},
		{"many subsets with headroom go parallel", false, many, 50, 100, false, "subgraph_parallel"},
		{"many subsets with unlimited budget go parallel", false, many, 1 << 40, -1, false, "subgraph_parallel"},
		{"zero estimate never aborts", false, few, 0, 0, false, "subgraph"},
		// Spill mode: the cumulative lower bound no longer proves
		// failure (charges refund as state moves to disk), so the
		// up-front abort is off; parallel is off too (its workers and
		// accumulator charge cumulatively).
		{"spill never aborts a tree", true, 0, 11, 10, true, "outer_join"},
		{"spill never aborts a cyclic graph", false, many, 11, 10, true, "subgraph"},
		{"spill demotes parallel to sequential", false, many, 5, 1 << 40, true, "subgraph"},
	}
	for _, c := range cases {
		if got := pickAlgo(c.isTree, c.nSubsets, c.estimate, c.headroom, c.spill); got != c.want {
			t.Errorf("%s: pickAlgo(%v, %d, %d, %d, %v) = %q, want %q",
				c.name, c.isTree, c.nSubsets, c.estimate, c.headroom, c.spill, got, c.want)
		}
	}
}

// One assertion per pickIncremental branch: leaf extension when it
// fits, full recomputation when only the extension is doomed, abort
// when both bounds bust the budget.
func TestPickIncrementalBranches(t *testing.T) {
	cases := []struct {
		name                 string
		extendEst, recompute int64
		headroom             int64
		want                 string
	}{
		{"unlimited budget extends", 1 << 40, 1 << 40, -1, "extend"},
		{"extension within headroom extends", 10, 50, 10, "extend"},
		{"doomed extension falls back to full", 20, 10, 10, "full"},
		{"both doomed abort", 20, 11, 10, "abort"},
	}
	for _, c := range cases {
		if got := pickIncremental(c.extendEst, c.recompute, c.headroom); got != c.want {
			t.Errorf("%s: pickIncremental(%d, %d, %d) = %q, want %q",
				c.name, c.extendEst, c.recompute, c.headroom, got, c.want)
		}
	}
}

// rowHeadroom must report -1 for missing or unlimited budgets and the
// remaining rows otherwise.
func TestRowHeadroom(t *testing.T) {
	if got := rowHeadroom(context.Background()); got != -1 {
		t.Errorf("no tracker: headroom = %d, want -1", got)
	}
	if got := rowHeadroom(WithBudget(context.Background(), Budget{MaxBytes: 64})); got != -1 {
		t.Errorf("rows unlimited: headroom = %d, want -1", got)
	}
	ctx := WithBudget(context.Background(), Budget{MaxRows: 10})
	if got := rowHeadroom(ctx); got != 10 {
		t.Errorf("fresh budget: headroom = %d, want 10", got)
	}
}

// estimateRows must be a certain lower bound: max base size for trees
// (outer-join alignment charges at least the largest relation) and the
// sum of base sizes for cyclic graphs (singleton subsets alone pad one
// row per base tuple).
func TestEstimateRowsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tg, tin := randomTreeCase(rng, 4, 6)
	est, err := estimateRows(tg, tin, true)
	if err != nil {
		t.Fatal(err)
	}
	var max, sum int64
	for _, name := range tg.Nodes() {
		n, _ := tg.Node(name)
		r, err := tin.Aliased(n.Base, n.Base)
		if err != nil {
			t.Fatal(err)
		}
		sum += int64(r.Len())
		if int64(r.Len()) > max {
			max = int64(r.Len())
		}
	}
	if est != max {
		t.Errorf("tree estimate = %d, want max base size %d", est, max)
	}
	if cyc, _ := estimateRows(tg, tin, false); cyc != sum {
		t.Errorf("cyclic estimate = %d, want sum of base sizes %d", cyc, sum)
	}
}

// A budget below the picker's lower bound must abort Compute up front
// with the same typed error a doomed run would return — Limit "rows"
// — and without charging any join work.
func TestBudgetPickerAbortsDoomedCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g, in := randomTreeCase(rng, 3, 6)
	est, err := estimateRows(g, in, g.IsTree())
	if err != nil {
		t.Fatal(err)
	}
	if est < 2 {
		t.Skip("degenerate random case: tiny base relations")
	}
	InvalidateCache()
	ctx := WithBudget(context.Background(), Budget{MaxRows: est - 1})
	_, err = Compute(ctx, g, in)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("doomed compute not refused: %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != "rows" {
		t.Fatalf("abort error does not name the rows limit: %#v", err)
	}
	if rows, _ := BudgetUsed(ctx); rows != 0 {
		t.Errorf("picker abort still charged %d rows", rows)
	}
}

// pickSpillReplay routes finalize to the serial (recursable) replay
// whenever any single partition's recorded stats exceed a cap —
// parallel workers share the budget and cannot re-partition — and to
// the parallel replay otherwise. Zero caps mean unlimited.
func TestPickSpillReplay(t *testing.T) {
	cases := []struct {
		name                        string
		maxPartBytes, maxPartTuples int64
		capBytes, capRows           int64
		want                        string
	}{
		{"all partitions fit", 100, 10, 1000, 100, "parallel"},
		{"bytes exceed cap", 2000, 10, 1000, 100, "serial"},
		{"tuples exceed cap", 100, 200, 1000, 100, "serial"},
		{"both exceed", 2000, 200, 1000, 100, "serial"},
		{"exactly at cap stays parallel", 1000, 100, 1000, 100, "parallel"},
		{"zero caps are unlimited", 1 << 40, 1 << 40, 0, 0, "parallel"},
		{"row cap alone applies", 100, 200, 0, 100, "serial"},
	}
	for _, c := range cases {
		if got := pickSpillReplay(c.maxPartBytes, c.maxPartTuples, c.capBytes, c.capRows); got != c.want {
			t.Fatalf("%s: pickSpillReplay = %q, want %q", c.name, got, c.want)
		}
	}
}
