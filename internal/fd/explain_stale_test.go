package fd

import (
	"context"
	"testing"
	"time"

	"clio/internal/fault"
	"clio/internal/obs"
)

// cacheStoreChecked must refuse to memoize a result when the content
// it was computed from no longer exists: a base relation that mutates
// between key derivation and store changes its fingerprint, so storing
// under the old key would poison every later lookup for the NEW
// content. The skip is counted (fd.cache.stale_stores).
func TestCacheStoreCheckedRefusesAfterMutation(t *testing.T) {
	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(wasEnabled) })
	prev := SetCacheCapacity(8)
	defer func() { SetCacheCapacity(prev); InvalidateCache() }()
	InvalidateCache()

	g, in, r := singleNodeCase(t)
	d, err := computeUncached(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	key, ok := cacheKey(g, in)
	if !ok {
		t.Fatal("case should be cacheable")
	}

	// Unmutated: the checked store succeeds.
	if !cacheStoreChecked(key, g, in, d) {
		t.Fatal("checked store refused an unmutated relation")
	}
	InvalidateCache()

	// Mutate between key derivation and store: must refuse and count.
	stale := obs.GetCounter("fd.cache.stale_stores")
	before := stale.Value()
	r.AddRow("99", "mutant")
	if cacheStoreChecked(key, g, in, d) {
		t.Fatal("checked store memoized a result for mutated content")
	}
	if CacheLen() != 0 {
		t.Fatalf("refused store still left %d cache entries", CacheLen())
	}
	if got := stale.Value(); got != before+1 {
		t.Errorf("fd.cache.stale_stores %d -> %d, want +1", before, got)
	}

	// The new content's key must also be empty: the stale result was
	// dropped, not re-homed.
	newKey, _ := cacheKey(g, in)
	if cachePeek(newKey) {
		t.Fatal("stale result was stored under the new content's key")
	}
}

// Explain's cache disposition comes from a peek taken before the run.
// If a base relation mutates while the explain executes, that peek
// describes content that no longer exists — the report must say
// "stale", never "hit"/"miss" for the wrong content, and the result
// must not be memoized. The mutation window is opened deterministically
// by a delay fault between the peek and the computation; the mutator
// synchronizes through the shared parent span (its post-mutation
// attribute write releases the span lock ExplainCompute's own StartSpan
// acquires), so the test is exact under -race.
func TestChaosExplainReportsStaleOnMidRunMutation(t *testing.T) {
	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(wasEnabled) })
	prev := SetCacheCapacity(8)
	defer func() { SetCacheCapacity(prev); InvalidateCache() }()
	InvalidateCache()

	g, in, r := singleNodeCase(t)

	fault.Enable(1)
	defer fault.Disable()
	fault.Set("fd.explain.compute", fault.Spec{Mode: fault.ModeDelay, Delay: 300 * time.Millisecond})

	ctx, root := obs.StartSpan(context.Background(), "test.explain")
	defer root.End()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Wait for the explain to pass its cache peek (the fault fires
		// strictly after the peek), then mutate inside the delay window.
		for fault.Fired("fd.explain.compute") == 0 {
			time.Sleep(time.Millisecond)
		}
		r.AddRow("99", "mid-run")
		// Release barrier: ExplainCompute's StartSpan on the same parent
		// span orders the mutation before the computation's reads.
		root.SetInt("mutated", 1)
	}()

	res, err := ExplainCompute(ctx, g, in)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "stale" {
		t.Fatalf("mid-run mutation reported cache=%q, want stale", res.Cache)
	}
	if CacheLen() != 0 {
		t.Fatalf("stale explain memoized %d entries", CacheLen())
	}

	// An undisturbed explain immediately after reports normally and
	// re-warms the cache.
	res2, err := ExplainCompute(context.Background(), g, in)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cache != "miss" {
		t.Fatalf("follow-up explain reported cache=%q, want miss", res2.Cache)
	}
	if CacheLen() != 1 {
		t.Fatalf("follow-up explain left %d cache entries, want 1", CacheLen())
	}
}
