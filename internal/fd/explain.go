package fd

import (
	"context"
	"time"

	"clio/internal/budget"
	"clio/internal/fault"
	"clio/internal/graph"
	"clio/internal/obs"
	"clio/internal/relation"
)

// ExplainResult describes one traced D(G) computation: what the picker
// chose and why-shaped facts (tree-ness, node and subset counts), the
// memo-cache disposition the equivalent Compute call would have seen,
// and the executed operator tree with per-operator rows/batches/timing
// span attributes.
//
// Cache is "hit"/"miss" per the pre-run peek, "disabled" when no cache
// is configured, or "stale" when a base relation mutated while the
// explain ran: the peek's answer no longer describes the rendered
// result, so reporting it would lie, and the result is not memoized.
type ExplainResult struct {
	Algo    string `json:"algo"`
	Cache   string `json:"cache"` // "hit", "miss", "stale", or "disabled"
	IsTree  bool   `json:"is_tree"`
	Nodes   int    `json:"nodes"`
	Subsets int    `json:"subsets,omitempty"`
	Tuples  int    `json:"tuples"`
	// Spilled reports whether any operator of this run wrote spill
	// partitions; SpillParts counts the partition files created and
	// SpillBytes the bytes written to them (cumulative over the run —
	// the files themselves are removed before the result returns).
	Spilled    bool  `json:"spilled,omitempty"`
	SpillParts int64 `json:"spill_parts,omitempty"`
	SpillBytes int64 `json:"spill_bytes,omitempty"`
	// SpillDepth is the deepest recursive re-partitioning level the run
	// reached (0 = no partition exceeded the resident cap);
	// SpillRecursions counts re-partitioning events and PrefetchHits
	// the partition pairs served by the join's prefetch worker.
	// PartitionSkew is the largest partition's share of the spilled
	// bytes scaled by the partition count (1 = uniform, n = one hot
	// partition out of n) — the statistic the picker's up-front
	// feasibility check consumes.
	SpillDepth      int64         `json:"spill_depth,omitempty"`
	SpillRecursions int64         `json:"spill_recursions,omitempty"`
	PrefetchHits    int64         `json:"prefetch_hits,omitempty"`
	PartitionSkew   float64       `json:"partition_skew,omitempty"`
	Duration        time.Duration `json:"-"`
	Root            *obs.SpanData `json:"-"`
	// Planner is the cost-based planner's report: every join order it
	// chose during the run (with per-step estimated cardinalities; the
	// actual rows live on the matching operator spans under Root) and
	// the per-relation statistics the estimates came from, with
	// freshness against the live relation versions.
	Planner *PlannerBlock `json:"planner,omitempty"`
}

// ExplainCompute computes D(G) like Compute but always executes (never
// answers from the memo cache) so the returned span tree reflects a
// real run, and reports what the cache would have said alongside the
// picker's routing decision. The fresh result is stored back into the
// cache, so an explain call warms rather than bypasses it. Root is nil
// when instrumentation is disabled (there are no spans to retain).
func ExplainCompute(ctx context.Context, g *graph.QueryGraph, in *relation.Instance) (*ExplainResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &ExplainResult{Cache: "disabled", IsTree: g.IsTree(), Nodes: g.NodeCount()}
	key, cacheable := cacheKey(g, in)
	if cacheable {
		if cachePeek(key) {
			res.Cache = "hit"
		} else {
			res.Cache = "miss"
		}
	}
	var subsets [][]string
	if !res.IsTree {
		subsets = g.ConnectedSubsets()
		res.Subsets = len(subsets)
	}
	estimate, err := estimateRows(g, in, res.IsTree)
	if err != nil {
		return nil, err
	}
	res.Algo = pickAlgo(res.IsTree, len(subsets), estimate, rowHeadroom(ctx), budget.FromContext(ctx).SpillEnabled())
	if res.Algo == "abort" {
		return nil, overBudget(ctx, estimate)
	}
	// Chaos hook: a delay injected here widens the window between the
	// cache peek above and the computation below, which is how the
	// stale-disposition regression test provokes a mid-explain mutation.
	if err := fault.Inject("fd.explain.compute"); err != nil {
		return nil, err
	}
	// Wrap the run in an explain span so the computation's own root
	// (fd.compute) is reachable as a child even when this context
	// already carries a serving-layer span.
	ctx, span := obs.StartSpan(ctx, "fd.explain")
	ctx, rec := withPlanRecorder(ctx)
	tr := budget.FromContext(ctx)
	parts0, written0 := tr.SpillParts(), tr.SpillWritten()
	start := time.Now()
	d, err := computeUncached(ctx, g, in)
	span.End()
	res.Duration = time.Since(start)
	if err != nil {
		return nil, err
	}
	res.Tuples = d.Len()
	res.SpillParts = tr.SpillParts() - parts0
	res.SpillBytes = tr.SpillWritten() - written0
	res.Spilled = res.SpillParts > 0
	res.SpillDepth = tr.SpillDepth()
	res.SpillRecursions = tr.SpillRecursions()
	res.PrefetchHits = tr.PrefetchHits()
	res.PartitionSkew = tr.PartitionSkew()
	if data := span.Data(); data != nil && len(data.Children) > 0 {
		res.Root = data.Children[0]
	}
	res.Planner = &PlannerBlock{Orders: rec.orders, Stats: statsBlock(g, in)}
	if cacheable && !cacheStoreChecked(key, g, in, d) {
		// A relation mutated between the peek and here: the peeked
		// disposition describes content that no longer exists. Say so
		// instead of reporting a hit/miss for the wrong content (and
		// leave the cache alone — cacheStoreChecked already refused).
		res.Cache = "stale"
	}
	return res, nil
}
