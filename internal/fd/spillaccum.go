package fd

// The D(G) accumulator tier. Every D(G) algorithm funnels its padded
// candidate tuples through a dgSink; which sink depends on the budget:
//
//   - memSink reproduces the original in-memory pipeline exactly —
//     append everything (charged cumulatively), then one
//     Distinct + RemoveSubsumed sweep. This is the only sink used when
//     no spill directory is configured, so non-spill behavior — charge
//     accounting included — is unchanged.
//   - dgAccum is the spill-aware accumulator: it dedups eagerly (the
//     distinct front is what must fit in memory, not the padded
//     multiset) and, the moment a charge is refused, Grace-hash
//     partitions its state to temp files by whole-tuple hash. Equal
//     tuples share a canonical hash, so equal tuples share a partition
//     and per-partition dedup at finalize time is globally exact. The
//     deduped survivors feed a SubsumeSet, whose Rel() is already the
//     canonically-sorted subsumption front — byte-identical to what
//     memSink's sweep produces for the same multiset.
//
// Charge discipline of dgAccum: while accumulating, the retained
// distinct front is charged (resident accounting); replay charges only
// tuples the SubsumeSet actually keeps — an arrival it subsumes away
// is never charged and entries it evicts are refunded immediately
// (InsertPruning reports them), so residency tracks the maximal front,
// not the distinct multiset. At finalize the accumulator swaps its
// working charges for one charge of the final front, so the caller
// ends in the same "result is charged" state as a cache hit.
//
// Finalize replays the partitions in parallel when the recorded
// partition statistics say they fit (pickSpillReplay): per-worker
// shard sets merged into the global front at the end, all-or-nothing —
// any budget refusal discards the shards and falls back to the serial
// path. The serial path recursively re-partitions a partition that
// still exceeds the cap with a fresh per-depth salt, up to the
// budget's recursion limit; past it the abort is typed with spill
// state "recursion_exhausted".

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"clio/internal/budget"
	"clio/internal/relation"
	"clio/internal/spill"
)

// dgSink accumulates padded D(G) candidate tuples and reduces them to
// the subsumption front. After finalize or abort the sink must not be
// used again; abort is idempotent and safe after a failed add.
type dgSink interface {
	add(t relation.Tuple) error
	added() int64
	finalize() (*relation.Relation, error)
	abort()
}

// newDGSink picks the accumulator for the tracker's spill mode. ctx
// bounds the (possibly parallel) finalize replay.
func newDGSink(ctx context.Context, tr *budget.Tracker, s *relation.Scheme) dgSink {
	if tr.SpillEnabled() {
		return &dgAccum{ctx: ctx, tr: tr, s: s, seen: newTupleSeen(64), rel: relation.New("D(G)", s)}
	}
	return &memSink{tr: tr, acc: relation.NewBatch(s)}
}

// tupleSeen is a hash+confirm duplicate filter: tuples bucket on their
// canonical Hash64 and candidates are confirmed value-wise, so the
// filter materializes no per-tuple key strings — the columnar-keys
// discipline of the execution core applied to the spill-front dedup.
// The rare true hash collision spills into an overflow bucket list.
type tupleSeen struct {
	slots  map[uint64]int32
	tuples []relation.Tuple
	over   map[uint64][]int32
}

func newTupleSeen(hint int) *tupleSeen {
	return &tupleSeen{slots: make(map[uint64]int32, hint)}
}

// insert records t and reports whether it was new.
func (s *tupleSeen) insert(t relation.Tuple) bool {
	h := t.Hash64()
	if j, ok := s.slots[h]; ok {
		if s.tuples[j].Equal(t) {
			return false
		}
		for _, k := range s.over[h] {
			if s.tuples[k].Equal(t) {
				return false
			}
		}
		if s.over == nil {
			s.over = map[uint64][]int32{}
		}
		s.over[h] = append(s.over[h], int32(len(s.tuples)))
	} else {
		s.slots[h] = int32(len(s.tuples))
	}
	s.tuples = append(s.tuples, t)
	return true
}

// memSink is the cumulative in-memory accumulator. The padded multiset
// lives purely as column vectors until finalize; only the subsumption
// front ever materializes as tuples. Charge accounting is identical to
// the historical per-tuple pipeline.
type memSink struct {
	tr  *budget.Tracker
	acc *relation.Batch
	n   int64
}

func (m *memSink) add(t relation.Tuple) error {
	if err := m.tr.Charge(1, t.ApproxBytes()); err != nil {
		return err
	}
	m.acc.AppendTuple(t)
	m.n++
	return nil
}

// addBatch retains every visible row of b (which must already be
// aligned to the sink scheme). Charges are taken row by row, exactly
// like the tuple path — a refusal retains the rows charged before it
// and rejects the rest, so budget behavior is unchanged — but retained
// rows are gathered column-wise, never materialized as tuples.
func (m *memSink) addBatch(b *relation.Batch) error {
	n := b.Len()
	charged := 0
	var chargeErr error
	for i := 0; i < n; i++ {
		if chargeErr = m.tr.Charge(1, b.ApproxBytesRow(i)); chargeErr != nil {
			break
		}
		charged++
	}
	if charged == n {
		m.acc.AppendBatch(b)
	} else if charged > 0 {
		sel := make([]int32, charged)
		for i := range sel {
			sel[i] = int32(b.RowID(i))
		}
		m.acc.AppendBatch(b.View(sel))
	}
	m.n += int64(charged)
	return chargeErr
}

func (m *memSink) added() int64 { return m.n }

func (m *memSink) finalize() (*relation.Relation, error) {
	// RemoveSubsumedBatch dedups internally, so no separate Distinct
	// pass; the accumulated columns are reduced in place.
	return relation.RemoveSubsumedBatch("D(G)", m.acc), nil
}

func (m *memSink) abort() {}

// dgAccum is the spillable accumulator; see the package comment above.
type dgAccum struct {
	ctx  context.Context
	tr   *budget.Tracker
	s    *relation.Scheme
	seen *tupleSeen
	rel  *relation.Relation
	// rows/bytes are the retained in-memory charges.
	rows, bytes int64
	parts       *spill.PartitionSet
	// children holds recursive re-partition sets created during the
	// serial replay; closed with the parent on abort.
	children []*spill.PartitionSet
	n        int64
	closed   bool
}

func (a *dgAccum) add(t relation.Tuple) error {
	a.n++
	if a.parts != nil {
		return a.parts.Add(t)
	}
	if !a.seen.insert(t) {
		return nil
	}
	b := t.ApproxBytes()
	if a.roomToRetain(b) {
		if err := a.tr.Charge(1, b); err == nil {
			a.rel.Add(t)
			a.rows++
			a.bytes += b
			return nil
		}
	}
	// Overflow: move the distinct front to disk, refund its memory, and
	// keep streaming straight to the partitions (duplicates included —
	// they collapse again, exactly, at finalize).
	a.parts = spill.NewPartitionSet(a.tr, spill.DefaultPartitions, nil)
	for _, u := range a.rel.Tuples() {
		if err := a.parts.Add(u); err != nil {
			return err
		}
	}
	a.tr.Refund(a.rows, a.bytes)
	a.rows, a.bytes = 0, 0
	a.rel, a.seen = nil, nil
	return a.parts.Add(t)
}

// roomToRetain bounds the retained distinct front to a quarter of each
// in-memory cap. The joins feeding the sink share the same tracker and
// need headroom for partition loads and output batches — a join load
// refused mid-replay is a typed abort, not a spill — so the sink must
// move to disk before it starves them.
func (a *dgAccum) roomToRetain(b int64) bool {
	lim := a.tr.Limits()
	if lim.MaxBytes > 0 && a.bytes+b > lim.MaxBytes/4 {
		return false
	}
	if lim.MaxRows > 0 && a.rows+1 > lim.MaxRows/4 {
		return false
	}
	return true
}

func (a *dgAccum) added() int64 { return a.n }

func (a *dgAccum) finalize() (*relation.Relation, error) {
	var out *relation.Relation
	if a.parts == nil {
		// Never spilled: rel is already distinct, and RemoveSubsumed
		// sorts canonically downstream of the caller's SortByKey.
		out = relation.RemoveSubsumed(a.rel)
	} else {
		a.parts.RecordStats()
		set := relation.NewSubsumeSet(a.s)
		err := a.replay(set)
		if err != nil {
			a.abort()
			return nil, err
		}
		out = set.Rel("D(G)")
	}
	out.Name = "D(G)"
	// Swap the working charges (distinct front / SubsumeSet contents)
	// for one charge of the final front the caller retains.
	a.abort()
	if err := a.tr.Charge(int64(out.Len()), approxRelationBytes(out)); err != nil {
		return nil, err
	}
	return out, nil
}

// replay reduces the spilled partitions into set, routed by the picker:
// the optimistic parallel shard phase when the recorded partition
// statistics say the partitions fit the cap, the recursion-capable
// serial path otherwise — and as the fallback whenever the parallel
// phase hits a budget refusal (its concurrent charges are optimistic;
// a refusal discards the shards, never the computation).
func (a *dgAccum) replay(set *relation.SubsumeSet) error {
	_, maxTuples, maxBytes := a.tr.PartitionStats()
	lim := a.tr.Limits()
	w := finalizeWorkers(a.parts.N())
	if w > 1 && pickSpillReplay(maxBytes, maxTuples, lim.MaxBytes, lim.MaxRows) == "parallel" {
		err := a.replayParallel(set, w)
		if err == nil {
			return nil
		}
		var be *budget.Error
		if !errors.As(err, &be) || be.Limit == "spill" {
			return err
		}
	}
	return a.replaySerial(set)
}

// finalizeWorkers bounds the parallel replay fan-out.
func finalizeWorkers(parts int) int {
	w := runtime.GOMAXPROCS(0)
	if w > 4 {
		w = 4
	}
	if w > parts {
		w = parts
	}
	return w
}

// dgShard is one parallel replay worker's private state.
type dgShard struct {
	set         *relation.SubsumeSet
	rows, bytes int64
	err         error
}

// replayParallel replays the partitions across w workers, each
// reducing its share into a private shard set (charged), then merges
// the shards into global. All-or-nothing: any worker error refunds
// every shard and returns — on a budget refusal the caller retries
// serially from a clean slate (global is untouched until every worker
// succeeded). Equal tuples live in exactly one partition, so shards
// never hold cross-shard duplicates and the merge only resolves
// subsumption between shards.
func (a *dgAccum) replayParallel(global *relation.SubsumeSet, w int) error {
	ctx, cancel := context.WithCancel(a.ctx)
	defer cancel()
	shards := make([]dgShard, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			sh := &shards[wi]
			sh.set = relation.NewSubsumeSet(a.s)
			for p := wi; p < a.parts.N(); p += w {
				if err := a.replayPartition(ctx, a.parts, p, sh.set, &sh.rows, &sh.bytes); err != nil {
					sh.err = err
					cancel() // stop the other workers promptly
					return
				}
			}
		}(i)
	}
	wg.Wait()
	var budgetErr, otherErr error
	for i := range shards {
		switch err := shards[i].err; {
		case err == nil:
		case errors.Is(err, budget.ErrExceeded):
			if budgetErr == nil {
				budgetErr = err
			}
		case errors.Is(err, context.Canceled) && a.ctx.Err() == nil:
			// Secondary: our own cancel after another worker failed.
		default:
			if otherErr == nil {
				otherErr = err
			}
		}
	}
	if budgetErr != nil || otherErr != nil {
		for i := range shards {
			a.tr.Refund(shards[i].rows, shards[i].bytes)
		}
		if otherErr != nil {
			return otherErr
		}
		return budgetErr
	}
	for i := range shards {
		a.rows += shards[i].rows
		a.bytes += shards[i].bytes
	}
	// Merge: every shard entry is already charged; an entry another
	// shard's tuple subsumes — on arrival or by eviction — is refunded.
	// The merge itself charges nothing, so it cannot fail.
	for i := range shards {
		for _, t := range shards[i].set.Rel("shard").Tuples() {
			displaced, inserted := global.InsertPruning(t)
			for _, d := range displaced {
				a.tr.Refund(1, d.ApproxBytes())
				a.rows--
				a.bytes -= d.ApproxBytes()
			}
			if !inserted {
				a.tr.Refund(1, t.ApproxBytes())
				a.rows--
				a.bytes -= t.ApproxBytes()
			}
		}
	}
	return nil
}

// replaySerial replays the partitions one at a time into set off a
// task queue: a partition whose replay is refused by the budget is
// re-partitioned with the next depth's salt and its children queued,
// up to the budget's recursion limit; past it the refusal escalates to
// a typed abort naming spill state "recursion_exhausted". Tuples a
// partial replay already inserted stay charged — the child replay
// re-encounters them as duplicates (equal tuples co-locate under every
// salt) and never double-charges.
func (a *dgAccum) replaySerial(set *relation.SubsumeSet) error {
	limit := a.tr.RecursionLimit()
	type task struct {
		ps    *spill.PartitionSet
		idx   int
		depth int
	}
	queue := make([]task, 0, a.parts.N())
	for i := 0; i < a.parts.N(); i++ {
		queue = append(queue, task{a.parts, i, 0})
	}
	for len(queue) > 0 {
		tk := queue[0]
		queue = queue[1:]
		err := a.replayPartition(a.ctx, tk.ps, tk.idx, set, &a.rows, &a.bytes)
		if err == nil {
			continue
		}
		var be *budget.Error
		if !errors.As(err, &be) || be.Limit == "spill" {
			return err
		}
		if tk.depth >= limit {
			if limit == 0 {
				// Recursion disabled: the plain spill-enabled refusal.
				return err
			}
			return &budget.Error{Limit: be.Limit, Max: be.Max, Got: be.Got, Spill: budget.SpillRecursionExhausted}
		}
		child, rerr := tk.ps.Repartition(tk.idx, a.s, spill.DefaultPartitions, spill.DepthSalt(tk.depth+1))
		if rerr != nil {
			return rerr
		}
		tk.ps.DropPart(tk.idx)
		a.children = append(a.children, child)
		a.tr.NoteRecursion(tk.depth + 1)
		for i := 0; i < child.N(); i++ {
			queue = append(queue, task{child, i, tk.depth + 1})
		}
	}
	return nil
}

// replayPartition replays one partition of ps into set, charging what the
// set keeps. Equal tuples share a partition, so the per-partition seen
// filter dedups exactly; InsertPruning both drops subsumed arrivals
// (never charged) and evicts entries the arrival subsumes (refunded on
// the spot — satellite fix for evicted-but-still-charged residency).
// A charge refusal removes the just-inserted tuple again so residency
// equals charges; any front tuple its eviction orphaned is restored by
// the recursive child replay that re-delivers the refused tuple.
func (a *dgAccum) replayPartition(ctx context.Context, ps *spill.PartitionSet, idx int, set *relation.SubsumeSet, rows, bytes *int64) error {
	seen := newTupleSeen(64)
	return ps.Read(idx, a.s, func(t relation.Tuple) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !seen.insert(t) {
			return nil
		}
		displaced, inserted := set.InsertPruning(t)
		for _, d := range displaced {
			b := d.ApproxBytes()
			a.tr.Refund(1, b)
			*rows--
			*bytes -= b
		}
		if !inserted {
			return nil
		}
		b := t.ApproxBytes()
		if err := a.tr.Charge(1, b); err != nil {
			set.Delete(t)
			return err
		}
		*rows++
		*bytes += b
		return nil
	})
}

// abort refunds the retained charges and removes any partition files,
// recursive children included.
func (a *dgAccum) abort() {
	if a.closed {
		return
	}
	a.closed = true
	a.tr.Refund(a.rows, a.bytes)
	a.rows, a.bytes = 0, 0
	a.parts.Close()
	for _, c := range a.children {
		c.Close()
	}
	a.children = nil
}
