package fd

// The D(G) accumulator tier. Every D(G) algorithm funnels its padded
// candidate tuples through a dgSink; which sink depends on the budget:
//
//   - memSink reproduces the original in-memory pipeline exactly —
//     append everything (charged cumulatively), then one
//     Distinct + RemoveSubsumed sweep. This is the only sink used when
//     no spill directory is configured, so non-spill behavior — charge
//     accounting included — is unchanged.
//   - dgAccum is the spill-aware accumulator: it dedups eagerly (the
//     distinct front is what must fit in memory, not the padded
//     multiset) and, the moment a charge is refused, Grace-hash
//     partitions its state to temp files by whole-tuple hash. Equal
//     tuples share a canonical hash, so equal tuples share a partition
//     and per-partition dedup at finalize time is globally exact. The
//     deduped survivors feed a SubsumeSet, whose Rel() is already the
//     canonically-sorted subsumption front — byte-identical to what
//     memSink's sweep produces for the same multiset.
//
// Charge discipline of dgAccum: while accumulating, the retained
// distinct front is charged (resident accounting); at finalize the
// accumulator swaps its working charges for one charge of the final
// front, so the caller ends in the same "result is charged" state as a
// cache hit. A distinct front that exceeds the in-memory cap even
// after spilling is a typed abort with spill state "enabled".

import (
	"clio/internal/budget"
	"clio/internal/relation"
	"clio/internal/spill"
)

// dgSink accumulates padded D(G) candidate tuples and reduces them to
// the subsumption front. After finalize or abort the sink must not be
// used again; abort is idempotent and safe after a failed add.
type dgSink interface {
	add(t relation.Tuple) error
	added() int64
	finalize() (*relation.Relation, error)
	abort()
}

// newDGSink picks the accumulator for the tracker's spill mode.
func newDGSink(tr *budget.Tracker, s *relation.Scheme) dgSink {
	if tr.SpillEnabled() {
		return &dgAccum{tr: tr, s: s, seen: map[string]struct{}{}, rel: relation.New("D(G)", s)}
	}
	return &memSink{tr: tr, dst: relation.New("D(G)", s)}
}

// memSink is the cumulative in-memory accumulator (the pre-spill
// pipeline, verbatim).
type memSink struct {
	tr  *budget.Tracker
	dst *relation.Relation
	n   int64
}

func (m *memSink) add(t relation.Tuple) error {
	if err := m.tr.Charge(1, t.ApproxBytes()); err != nil {
		return err
	}
	m.dst.Add(t)
	m.n++
	return nil
}

func (m *memSink) added() int64 { return m.n }

func (m *memSink) finalize() (*relation.Relation, error) {
	out := relation.RemoveSubsumed(m.dst.Distinct())
	out.Name = "D(G)"
	return out, nil
}

func (m *memSink) abort() {}

// dgAccum is the spillable accumulator; see the package comment above.
type dgAccum struct {
	tr   *budget.Tracker
	s    *relation.Scheme
	seen map[string]struct{}
	rel  *relation.Relation
	// rows/bytes are the retained in-memory charges.
	rows, bytes int64
	parts       *spill.PartitionSet
	n           int64
	closed      bool
}

func (a *dgAccum) add(t relation.Tuple) error {
	a.n++
	if a.parts != nil {
		return a.parts.Add(t)
	}
	k := t.Key()
	if _, ok := a.seen[k]; ok {
		return nil
	}
	b := t.ApproxBytes()
	if a.roomToRetain(b) {
		if err := a.tr.Charge(1, b); err == nil {
			a.seen[k] = struct{}{}
			a.rel.Add(t)
			a.rows++
			a.bytes += b
			return nil
		}
	}
	// Overflow: move the distinct front to disk, refund its memory, and
	// keep streaming straight to the partitions (duplicates included —
	// they collapse again, exactly, at finalize).
	a.parts = spill.NewPartitionSet(a.tr, spill.DefaultPartitions, nil)
	for _, u := range a.rel.Tuples() {
		if err := a.parts.Add(u); err != nil {
			return err
		}
	}
	a.tr.Refund(a.rows, a.bytes)
	a.rows, a.bytes = 0, 0
	a.rel, a.seen = nil, nil
	return a.parts.Add(t)
}

// roomToRetain bounds the retained distinct front to a quarter of each
// in-memory cap. The joins feeding the sink share the same tracker and
// need headroom for partition loads and output batches — a join load
// refused mid-replay is a typed abort, not a spill — so the sink must
// move to disk before it starves them.
func (a *dgAccum) roomToRetain(b int64) bool {
	lim := a.tr.Limits()
	if lim.MaxBytes > 0 && a.bytes+b > lim.MaxBytes/4 {
		return false
	}
	if lim.MaxRows > 0 && a.rows+1 > lim.MaxRows/4 {
		return false
	}
	return true
}

func (a *dgAccum) added() int64 { return a.n }

func (a *dgAccum) finalize() (*relation.Relation, error) {
	var out *relation.Relation
	if a.parts == nil {
		// Never spilled: rel is already distinct, and RemoveSubsumed
		// sorts canonically downstream of the caller's SortByKey.
		out = relation.RemoveSubsumed(a.rel)
	} else {
		// Replay the partitions into a subsumption front. Equal tuples
		// share a partition, so the per-partition seen map is a global
		// dedup; subsumption crosses partitions (different null masks
		// hash apart), so the SubsumeSet is global and charged — this is
		// where a distinct front larger than memory becomes a typed
		// abort rather than an OOM.
		set := relation.NewSubsumeSet(a.s)
		for i := 0; i < a.parts.N(); i++ {
			seen := map[string]struct{}{}
			err := a.parts.Read(i, a.s, func(t relation.Tuple) error {
				k := t.Key()
				if _, ok := seen[k]; ok {
					return nil
				}
				seen[k] = struct{}{}
				b := t.ApproxBytes()
				if err := a.tr.Charge(1, b); err != nil {
					return err
				}
				a.rows++
				a.bytes += b
				set.Insert(t)
				return nil
			})
			if err != nil {
				a.abort()
				return nil, err
			}
		}
		out = set.Rel("D(G)")
	}
	out.Name = "D(G)"
	// Swap the working charges (distinct front / SubsumeSet contents)
	// for one charge of the final front the caller retains.
	a.abort()
	if err := a.tr.Charge(int64(out.Len()), approxRelationBytes(out)); err != nil {
		return nil, err
	}
	return out, nil
}

// abort refunds the retained charges and removes any partition files.
func (a *dgAccum) abort() {
	if a.closed {
		return
	}
	a.closed = true
	a.tr.Refund(a.rows, a.bytes)
	a.rows, a.bytes = 0, 0
	a.parts.Close()
}
