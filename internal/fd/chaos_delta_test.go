package fd

import (
	"context"
	"errors"
	"testing"

	"clio/internal/expr"
	"clio/internal/fault"
	"clio/internal/graph"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// extendFixture builds a deterministic single-leaf extension: graph
// {A} growing to {A—B}, with B's rows fanned out so the full join
// charges strictly more rows than the picker's lower bound (needed to
// provoke a mid-extension budget abort).
func extendFixture(t *testing.T) (gA, gAB *graph.QueryGraph, in *relation.Instance) {
	t.Helper()
	sch := schema.NewDatabase()
	for _, n := range []string{"A", "B"} {
		sch.MustAddRelation(schema.NewRelation(n, schema.Attribute{Name: "k", Type: value.KindInt}))
	}
	in = relation.NewInstance(sch)
	a := in.NewRelationFor("A")
	for _, k := range []string{"1", "2", "3", "4"} {
		a.AddRow(k)
	}
	in.MustAdd(a)
	b := in.NewRelationFor("B")
	for _, k := range []string{"1", "1", "2", "2", "3", "5"} {
		b.AddRow(k)
	}
	in.MustAdd(b)
	gA = graph.New()
	gA.MustAddNode("A", "A")
	gAB = gA.Clone()
	gAB.MustAddNode("B", "B")
	gAB.MustAddEdge("A", "B", expr.Equals("A.k", "B.k"))
	return gA, gAB, in
}

// A fault injected mid-extension (worker death, transient I/O) must
// leave no trace: ExtendLeaf publishes nothing on error, the memo
// cache holds no entry for the new state, and ComputeIncremental falls
// back to a full recomputation that matches a cold Compute exactly.
func TestChaosExtendLeafFaultFallsBackToFullMode(t *testing.T) {
	prev := SetCacheCapacity(8)
	defer func() { SetCacheCapacity(prev); InvalidateCache() }()
	InvalidateCache()
	gA, gAB, in := extendFixture(t)
	dgA, err := Compute(context.Background(), gA, in)
	if err != nil {
		t.Fatal(err)
	}

	fault.Enable(1)
	defer fault.Disable()
	fault.Set("fd.extend_leaf", fault.Spec{Mode: fault.ModeError, Times: 1})

	// Direct ExtendLeaf failure: no partial result may reach the cache.
	key, ok := cacheKey(gAB, in)
	if !ok {
		t.Fatal("fixture should be cacheable")
	}
	if _, err := ExtendLeaf(context.Background(), dgA, gA, gAB, in); err == nil {
		t.Fatal("armed extension should fail")
	}
	if fault.Fired("fd.extend_leaf") != 1 {
		t.Fatalf("fault fired %d times, want 1", fault.Fired("fd.extend_leaf"))
	}
	if cachePeek(key) {
		t.Fatal("failed extension left an entry in the memo cache")
	}

	// The point is exhausted; re-arm and go through the router: it must
	// absorb the fault and answer via a full recomputation.
	fault.Set("fd.extend_leaf", fault.Spec{Mode: fault.ModeError, Times: 1})
	got, err := ComputeIncremental(context.Background(), dgA, gA, gAB, in)
	if err != nil {
		t.Fatalf("router did not absorb the extension fault: %v", err)
	}
	InvalidateCache()
	want, err := Compute(context.Background(), gAB, in)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualSet(want) {
		t.Fatal("post-fault fallback differs from cold recomputation")
	}
	if got.String() != want.String() {
		t.Fatal("post-fault fallback renders differently from cold recomputation")
	}
}

// A budget exhausted mid-extension must abort the whole computation —
// a full recomputation can only charge more — and must leave the memo
// cache without any entry for the new state, so the next computation
// under a fresh budget is a clean cold recompute.
func TestChaosExtendLeafBudgetAbortLeavesNoCacheEntry(t *testing.T) {
	prev := SetCacheCapacity(8)
	defer func() { SetCacheCapacity(prev); InvalidateCache() }()
	InvalidateCache()
	gA, gAB, in := extendFixture(t)
	dgA, err := Compute(context.Background(), gA, in)
	if err != nil {
		t.Fatal(err)
	}
	// The picker's lower bound is max(|D(G)|, |B|) = 6, but the full
	// join emits 7 aligned rows, so a budget of exactly 6 admits the
	// extension and then dies mid-drain.
	ctx := WithBudget(context.Background(), Budget{MaxRows: 6})
	if _, err := ComputeIncremental(ctx, dgA, gA, gAB, in); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("mid-extension exhaustion returned %v, want budget error", err)
	}
	key, _ := cacheKey(gAB, in)
	if cachePeek(key) {
		t.Fatal("aborted extension left an entry in the memo cache")
	}
	got, err := ComputeIncremental(context.Background(), dgA, gA, gAB, in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FullDisjunctionNaive(context.Background(), gAB, in)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualSet(want) {
		t.Fatal("recovery after budget abort differs from naive reference")
	}
}

// A fault injected at the delta-application entry must degrade
// MaintainRows to a from-scratch rebuild (mode "recompute"), never an
// error or a half-applied materialization.
func TestChaosDeltaFaultFallsBackToRebuildMode(t *testing.T) {
	_, gAB, in := extendFixture(t)
	ctx := context.Background()
	mat, err := NewMaterialized(ctx, gAB, in)
	if err != nil {
		t.Fatal(err)
	}

	fault.Enable(1)
	defer fault.Disable()
	fault.Set("fd.delta.apply", fault.Spec{Mode: fault.ModeError, Times: 1})

	r := in.Relation("A")
	r.AddValues(value.Int(5))
	tp := r.At(r.Len() - 1)
	d, mat2, mode, err := MaintainRows(ctx, mat, gAB, in, "A", tp, false)
	if err != nil {
		t.Fatalf("maintenance did not absorb the delta fault: %v", err)
	}
	if fault.Fired("fd.delta.apply") != 1 {
		t.Fatalf("fault fired %d times, want 1", fault.Fired("fd.delta.apply"))
	}
	if mode != "recompute" {
		t.Fatalf("faulted delta maintained via %q, want recompute", mode)
	}
	want, err := FullDisjunction(ctx, gAB, in)
	if err != nil {
		t.Fatal(err)
	}
	if !d.EqualSet(want) {
		t.Fatal("rebuild after delta fault differs from full recomputation")
	}
	// And the rebuilt materialization keeps working once the fault is gone.
	tp2 := r.RemoveAt(0)
	d2, _, mode2, err := MaintainRows(ctx, mat2, gAB, in, "A", tp2, true)
	if err != nil {
		t.Fatal(err)
	}
	if mode2 != "delta" {
		t.Fatalf("post-fault edit maintained via %q, want delta", mode2)
	}
	want2, err := FullDisjunction(ctx, gAB, in)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.EqualSet(want2) {
		t.Fatal("post-fault delta differs from full recomputation")
	}
}
