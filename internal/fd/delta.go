package fd

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"clio/internal/algebra"
	"clio/internal/budget"
	"clio/internal/fault"
	"clio/internal/graph"
	"clio/internal/obs"
	"clio/internal/relation"
	"clio/internal/value"
)

// Delta maintenance of D(G) under single-row edits of a base relation.
//
// The join is multilinear in each relation argument: for a connected
// subset J whose nodes n_1..n_k scan the edited base B,
//
//	F(J)[B ⊎ {δ}] = Σ over S ⊆ {n_1..n_k} of F(J) with the nodes in S
//	                bound to the singleton {δ} and the rest bound to B,
//
// where Σ is multiset union. The S = ∅ term is F(J) before the edit,
// so the *delta* is the sum over the 2^k − 1 non-empty S. For an
// insert (instance already mutated, δ appended last) the non-S
// occurrences read the pre-edit prefix of B; for a delete (δ already
// removed) they read B as it is now — in both cases every relation the
// delta terms touch exists concretely, no old-state reconstruction.
// Each emitted association is padded to the D(G) scheme and pushed
// through an incremental subsumption set (relation.SubsumeSet), whose
// multiset counts make deletion exact: an association produced by two
// different subsets stays alive until both occurrences are removed.
//
// Cost is O(delta): the singleton-bound side of every join term has
// one tuple, so term size is bounded by the rows that actually join
// with δ, not by |B|. Degradation is explicit — too many connected
// subsets (MaxDeltaSubsets), too many occurrences of B in one subset
// (maxDeltaOccurrences), or an inconsistency detected by the
// subsumption set — and falls back to a full rebuild in MaintainRows.

// Delta-vs-rebuild decision counters for row-edit maintenance.
var (
	cDeltaApply   = obs.GetCounter("fd.delta.apply")
	cDeltaRebuild = obs.GetCounter("fd.delta.rebuild")
)

// MaxDeltaSubsets bounds the connected-subset count a materialized
// D(G) will maintain by delta; past it every edit term enumeration
// costs more than it saves and MaintainRows rebuilds instead.
const MaxDeltaSubsets = 256

// maxDeltaOccurrences bounds the occurrences of the edited base within
// one subset (the delta has 2^k − 1 terms in it).
const maxDeltaOccurrences = 8

// errDeltaDegrade marks an edit the delta path refuses (too wide, or
// the subsumption set detected an inconsistency). MaintainRows treats
// it as "rebuild instead", never as a user-facing failure.
var errDeltaDegrade = errors.New("fd: delta application degraded")

// Materialized is a D(G) kept current under row edits: the full
// subsumption state of every padded association, not just the maximal
// front, so deletes can be maintained exactly.
type Materialized struct {
	scheme  *relation.Scheme
	subsets [][]string
	set     *relation.SubsumeSet
	canon   string
}

// NewMaterialized computes D(G) from scratch into delta-maintainable
// form. It enumerates the same subgraphs and charges the same budget
// as FullDisjunction; only the accumulator differs.
func NewMaterialized(ctx context.Context, g *graph.QueryGraph, in *relation.Instance) (*Materialized, error) {
	if g.NodeCount() == 0 {
		return nil, fmt.Errorf("fd: empty query graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("fd: query graph is not connected")
	}
	ctx, span := obs.StartSpan(ctx, "fd.materialize")
	defer span.End()
	s, err := Scheme(g, in)
	if err != nil {
		return nil, err
	}
	subsets := g.ConnectedSubsets()
	span.SetInt("subsets", int64(len(subsets)))
	tr := budget.FromContext(ctx)
	m := &Materialized{
		scheme:  s,
		subsets: subsets,
		set:     relation.NewSubsumeSet(s),
		canon:   canonGraph(g),
	}
	for _, sub := range subsets {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		plan, err := associationPlan(g, sub)
		if err != nil {
			return nil, err
		}
		if err := m.drain(ctx, plan, in, tr, false); err != nil {
			return nil, err
		}
	}
	span.SetInt("tuples", int64(m.set.Len()))
	return m, nil
}

// Matches reports whether the materialization was built for a graph
// canonically equal to g (same nodes, bases, and edges).
func (m *Materialized) Matches(g *graph.QueryGraph) bool {
	return m != nil && m.canon == canonGraph(g)
}

// Rel renders the current D(G), sorted by canonical tuple key. The
// sort makes the relation independent of maintenance history: a
// delta-maintained, a rebuilt, and a journal-replayed session all
// produce byte-identical rows.
func (m *Materialized) Rel() *relation.Relation {
	return m.set.Rel("D(G)")
}

// drain runs plan to exhaustion, padding every output association to
// the D(G) scheme, charging the tracker, and inserting into (or, for
// the delete side of an edit, deleting from) the subsumption state.
func (m *Materialized) drain(ctx context.Context, plan algebra.Node, in *relation.Instance, tr *budget.Tracker, del bool) error {
	it, err := plan.Open(ctx, in)
	if err != nil {
		return err
	}
	defer it.Close()
	for {
		batch, err := it.Next()
		if err != nil {
			return err
		}
		if batch == nil {
			return nil
		}
		for _, t := range batch {
			p := t.PadTo(m.scheme)
			if err := tr.Charge(1, p.ApproxBytes()); err != nil {
				return err
			}
			if del {
				if !m.set.Delete(p) {
					// The multiset disagrees with the maintained state —
					// a bug or an unnoticed external mutation. Degrade to
					// rebuild rather than serve a diverged D(G).
					return fmt.Errorf("%w: delete of untracked association", errDeltaDegrade)
				}
			} else {
				m.set.Insert(p)
			}
		}
	}
}

// retuple rebinds t's values to scheme s positionally: the node's
// aliased scheme has the same arity and value layout as the base
// scheme t was built over, only the qualified names differ.
func retuple(s *relation.Scheme, t relation.Tuple) relation.Tuple {
	vals := make([]value.Value, s.Arity())
	for i := range vals {
		vals[i] = t.At(i)
	}
	return relation.NewTuple(s, vals...)
}

// ApplyRow folds one already-applied row edit of base into the
// materialized state: t was appended to base (del=false) or removed
// from it (del=true) *before* this call. On any error the state is
// partially updated and must be discarded; MaintainRows handles that.
func (m *Materialized) ApplyRow(ctx context.Context, g *graph.QueryGraph, in *relation.Instance, base string, t relation.Tuple, del bool) error {
	if err := fault.Inject("fd.delta.apply"); err != nil {
		return err
	}
	ctx, span := obs.StartSpan(ctx, "fd.delta_apply")
	defer span.End()
	span.SetStr("base", base)
	tr := budget.FromContext(ctx)
	for _, sub := range m.subsets {
		if err := ctx.Err(); err != nil {
			return err
		}
		var occ []string
		for _, name := range sub {
			if n, ok := g.Node(name); ok && n.Base == base {
				occ = append(occ, name)
			}
		}
		if len(occ) == 0 {
			continue
		}
		if len(occ) > maxDeltaOccurrences {
			return fmt.Errorf("%w: %d occurrences of %s in subset {%s}",
				errDeltaDegrade, len(occ), base, strings.Join(sub, ","))
		}
		// Every non-empty S ⊆ occ contributes one join term with the S
		// nodes bound to the singleton {t} and the rest to the base
		// without t (its pre-insert prefix, or its current post-delete
		// content).
		for mask := 1; mask < 1<<len(occ); mask++ {
			bind := map[string]algebra.Node{}
			for i, name := range occ {
				aliased, err := in.Aliased(base, name)
				if err != nil {
					return err
				}
				if mask&(1<<i) != 0 {
					one := relation.New(name, aliased.Scheme())
					one.Add(retuple(aliased.Scheme(), t))
					bind[name] = algebra.Materialized{Label: name + "δ", Rel: one}
				} else if !del {
					bind[name] = algebra.Materialized{Label: name + "∖δ", Rel: aliased.Prefix(aliased.Len() - 1)}
				}
				// del case, i ∉ S: the default scan already reads the
				// post-delete base — exactly the binding the delete
				// decomposition needs.
			}
			plan, err := associationPlanWith(g, sub, bind)
			if err != nil {
				return err
			}
			if err := m.drain(ctx, plan, in, tr, del); err != nil {
				return err
			}
		}
	}
	span.SetInt("tuples", int64(m.set.Len()))
	return nil
}

// GraphReadsBase reports whether any node of g scans the named base
// relation — edits to other relations cannot change D(G).
func GraphReadsBase(g *graph.QueryGraph, base string) bool {
	for _, name := range g.Nodes() {
		if n, ok := g.Node(name); ok && n.Base == base {
			return true
		}
	}
	return false
}

// MaintainRows updates a D(G) after one row edit of base (t inserted
// into or deleted from the instance, which is already mutated). It
// routes between the O(delta) application and a full rebuild with the
// same budget-headroom framework as the other pickers, returning the
// refreshed relation, the materialization to keep for the next edit,
// and the chosen mode ("delta" or "recompute") — which is also left on
// the context's notes scratchpad as "dg_maint" for explain surfaces.
//
// Error contract: on a budget abort or context cancellation the
// returned materialization is nil and the caller must treat any prior
// one as invalid (a delta may have half-applied). Any other delta
// failure degrades to a rebuild internally.
func MaintainRows(ctx context.Context, mat *Materialized, g *graph.QueryGraph, in *relation.Instance, base string, t relation.Tuple, del bool) (*relation.Relation, *Materialized, string, error) {
	ctx, span := obs.StartSpan(ctx, "fd.maintain_rows")
	defer span.End()
	rebuildEst, err := estimateRows(g, in, g.IsTree())
	if err != nil {
		return nil, nil, "", err
	}
	if mat.Matches(g) && len(mat.subsets) <= MaxDeltaSubsets {
		// Certain lower bound for the delta: every singleton subset
		// over the edited base emits the delta tuple itself once.
		var deltaEst int64
		for _, name := range g.Nodes() {
			if n, ok := g.Node(name); ok && n.Base == base {
				deltaEst++
			}
		}
		switch pickDelta(deltaEst, rebuildEst, rowHeadroom(ctx)) {
		case "delta":
			aerr := mat.ApplyRow(ctx, g, in, base, t, del)
			if aerr == nil {
				span.SetStr("mode", "delta")
				cDeltaApply.Inc()
				obs.Note(ctx, "dg_maint", "delta")
				d := mat.Rel()
				cacheStoreCurrent(g, in, d)
				return d, mat, "delta", nil
			}
			if errors.Is(aerr, budget.ErrExceeded) || ctx.Err() != nil {
				// A rebuild can only consume more; fail now. The
				// half-applied materialization dies with the nil return.
				return nil, nil, "", aerr
			}
			// Anything else (degradation, plan error) falls through to
			// the rebuild below.
		case "abort":
			return nil, nil, "", overBudget(ctx, rebuildEst)
		}
	}
	m2, err := NewMaterialized(ctx, g, in)
	if err != nil {
		return nil, nil, "", err
	}
	span.SetStr("mode", "recompute")
	cDeltaRebuild.Inc()
	obs.Note(ctx, "dg_maint", "recompute")
	d := m2.Rel()
	cacheStoreCurrent(g, in, d)
	return d, m2, "recompute", nil
}
