package datagen

import (
	"fmt"
	"math/rand"

	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// ECommerceSpec parameterizes a realistic five-relation e-commerce
// source: Customers, Orders, OrderLines, Products, Shipments. Orders
// reference Customers; OrderLines reference Orders and Products;
// Shipments reference Orders (not every order ships). This is the
// "data-intensive application" workload the paper's introduction
// motivates.
type ECommerceSpec struct {
	Customers int
	Orders    int
	// LinesPerOrder is the mean number of lines per order.
	LinesPerOrder int
	Products      int
	// ShipRate is the fraction of orders with a shipment.
	ShipRate float64
	Seed     int64
}

// ECommerce generates the instance with declared keys and foreign
// keys, so walks work out of the box.
func ECommerce(spec ECommerceSpec) *relation.Instance {
	rng := rand.New(rand.NewSource(spec.Seed))
	sch := schema.NewDatabase()
	sch.MustAddRelation(schema.NewRelation("Customers",
		schema.Attribute{Name: "cid", Type: value.KindInt},
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "country", Type: value.KindString},
	))
	sch.MustAddRelation(schema.NewRelation("Orders",
		schema.Attribute{Name: "oid", Type: value.KindInt},
		schema.Attribute{Name: "cid", Type: value.KindInt},
		schema.Attribute{Name: "day", Type: value.KindString},
	))
	sch.MustAddRelation(schema.NewRelation("OrderLines",
		schema.Attribute{Name: "oid", Type: value.KindInt},
		schema.Attribute{Name: "pid", Type: value.KindInt},
		schema.Attribute{Name: "qty", Type: value.KindInt},
	))
	sch.MustAddRelation(schema.NewRelation("Products",
		schema.Attribute{Name: "pid", Type: value.KindInt},
		schema.Attribute{Name: "title", Type: value.KindString},
		schema.Attribute{Name: "price", Type: value.KindInt},
	))
	sch.MustAddRelation(schema.NewRelation("Shipments",
		schema.Attribute{Name: "oid", Type: value.KindInt},
		schema.Attribute{Name: "carrier", Type: value.KindString},
		schema.Attribute{Name: "eta", Type: value.KindString},
	))
	sch.AddKey("Customers", "cid")
	sch.AddKey("Orders", "oid")
	sch.AddKey("Products", "pid")
	sch.AddKey("Shipments", "oid")
	sch.AddForeignKey("o_c", "Orders", []string{"cid"}, "Customers", []string{"cid"})
	sch.AddForeignKey("l_o", "OrderLines", []string{"oid"}, "Orders", []string{"oid"})
	sch.AddForeignKey("l_p", "OrderLines", []string{"pid"}, "Products", []string{"pid"})
	sch.AddForeignKey("s_o", "Shipments", []string{"oid"}, "Orders", []string{"oid"})
	sch.AddNotNull("Customers", "cid")
	sch.AddNotNull("Orders", "oid")

	countries := []string{"CA", "US", "DE", "JP", "BR"}
	carriers := []string{"ACME", "Rocket", "Turtle"}

	in := relation.NewInstance(sch)
	cust := in.NewRelationFor("Customers")
	for i := 0; i < spec.Customers; i++ {
		cust.AddValues(value.Int(int64(i)),
			value.String(fmt.Sprintf("cust-%03d", i)),
			value.String(countries[rng.Intn(len(countries))]))
	}
	in.MustAdd(cust)

	prod := in.NewRelationFor("Products")
	for i := 0; i < spec.Products; i++ {
		prod.AddValues(value.Int(int64(i)),
			value.String(fmt.Sprintf("prod-%03d", i)),
			value.Int(int64(5+rng.Intn(500))))
	}
	in.MustAdd(prod)

	orders := in.NewRelationFor("Orders")
	lines := in.NewRelationFor("OrderLines")
	ships := in.NewRelationFor("Shipments")
	for o := 0; o < spec.Orders; o++ {
		orders.AddValues(value.Int(int64(o)),
			value.Int(int64(rng.Intn(max(1, spec.Customers)))),
			value.String(fmt.Sprintf("2026-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))))
		n := 1 + rng.Intn(max(1, 2*spec.LinesPerOrder-1))
		for l := 0; l < n; l++ {
			lines.AddValues(value.Int(int64(o)),
				value.Int(int64(rng.Intn(max(1, spec.Products)))),
				value.Int(int64(1+rng.Intn(5))))
		}
		if rng.Float64() < spec.ShipRate {
			ships.AddValues(value.Int(int64(o)),
				value.String(carriers[rng.Intn(len(carriers))]),
				value.String(fmt.Sprintf("2026-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))))
		}
	}
	in.MustAdd(orders)
	in.MustAdd(lines)
	in.MustAdd(ships)
	return in
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
