package datagen

import (
	"context"
	"testing"

	"clio/internal/fd"
)

func TestChainDeterminism(t *testing.T) {
	spec := ChainSpec{Relations: 3, Rows: 20, KeySpace: 5, MatchProb: 0.8, Seed: 7}
	a := Chain(spec)
	b := Chain(spec)
	for _, name := range a.Instance.Names() {
		if !a.Instance.Relation(name).EqualSet(b.Instance.Relation(name)) {
			t.Errorf("relation %s differs between runs", name)
		}
	}
}

func TestChainShape(t *testing.T) {
	c := Chain(ChainSpec{Relations: 4, Rows: 10, KeySpace: 3, MatchProb: 1, Seed: 1})
	if c.Graph.NodeCount() != 4 || !c.Graph.IsTree() {
		t.Errorf("chain graph wrong: %v", c.Graph)
	}
	if len(c.Instance.Names()) != 4 {
		t.Errorf("relations = %v", c.Instance.Names())
	}
	if err := c.Mapping.Validate(c.Instance); err != nil {
		t.Fatal(err)
	}
	// The mapping evaluates without error and produces rows.
	res, err := c.Mapping.Evaluate(c.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Error("chain mapping produced nothing")
	}
	if err := c.Instance.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChainZeroMatchProb(t *testing.T) {
	// With no matches, D(G) is just the padded singletons.
	c := Chain(ChainSpec{Relations: 3, Rows: 4, KeySpace: 4, MatchProb: 0, Seed: 2})
	d, err := fd.Compute(context.Background(), c.Graph, c.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 12 {
		t.Errorf("|D(G)| = %d, want 12 singleton associations", d.Len())
	}
}

func TestChainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero relations should panic")
		}
	}()
	Chain(ChainSpec{Relations: 0})
}

func TestStarShape(t *testing.T) {
	c := Star(StarSpec{Dims: 3, FactRows: 10, DimRows: 5, MatchProb: 0.9, Seed: 3})
	if c.Graph.NodeCount() != 4 || !c.Graph.IsTree() {
		t.Errorf("star graph wrong: %v", c.Graph)
	}
	if err := c.Mapping.Validate(c.Instance); err != nil {
		t.Fatal(err)
	}
	d, err := fd.Compute(context.Background(), c.Graph, c.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() == 0 {
		t.Error("star D(G) empty")
	}
}

func TestKnowledgeGenerator(t *testing.T) {
	k := Knowledge(KnowledgeSpec{Relations: 6, EdgesPerNode: 2, Seed: 4})
	if len(k.Edges()) == 0 {
		t.Fatal("no edges generated")
	}
	// Determinism.
	k2 := Knowledge(KnowledgeSpec{Relations: 6, EdgesPerNode: 2, Seed: 4})
	if len(k.Edges()) != len(k2.Edges()) {
		t.Error("knowledge generation not deterministic")
	}
}

func TestWideInstance(t *testing.T) {
	in := WideInstance(3, 4, 50, 10, 5)
	if len(in.Names()) != 3 {
		t.Errorf("relations = %v", in.Names())
	}
	if in.TotalTuples() != 150 {
		t.Errorf("tuples = %d", in.TotalTuples())
	}
	if err := in.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestECommerce(t *testing.T) {
	in := ECommerce(ECommerceSpec{
		Customers: 10, Orders: 30, LinesPerOrder: 2, Products: 8,
		ShipRate: 0.5, Seed: 1,
	})
	if err := in.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Customers", "Orders", "OrderLines", "Products", "Shipments"} {
		if in.Relation(name) == nil {
			t.Fatalf("relation %s missing", name)
		}
	}
	if in.Relation("Customers").Len() != 10 || in.Relation("Orders").Len() != 30 {
		t.Error("row counts wrong")
	}
	// Declared FKs hold on the generated data.
	for _, fk := range in.Schema.ForeignKs {
		from := in.Relation(fk.FromRelation)
		to := in.Relation(fk.ToRelation)
		ix := to.BuildIndex(fk.ToRelation + "." + fk.ToAttrs[0])
		pos := from.Scheme().Positions(fk.FromRelation + "." + fk.FromAttrs[0])
		for _, tp := range from.Tuples() {
			v := tp.At(pos[0])
			if !v.IsNull() && len(ix.Probe(v)) == 0 {
				t.Fatalf("FK %s violated: %v", fk.Name, tp)
			}
		}
	}
	// ShipRate is roughly respected.
	ships := in.Relation("Shipments").Len()
	if ships == 0 || ships == 30 {
		t.Errorf("shipments = %d; want a strict subset of orders", ships)
	}
	// Determinism.
	in2 := ECommerce(ECommerceSpec{
		Customers: 10, Orders: 30, LinesPerOrder: 2, Products: 8,
		ShipRate: 0.5, Seed: 1,
	})
	for _, name := range in.Names() {
		if !in.Relation(name).EqualSet(in2.Relation(name)) {
			t.Errorf("relation %s not deterministic", name)
		}
	}
}

func TestStarNullKeys(t *testing.T) {
	// Low MatchProb leaves null fact keys, exercising padding.
	c := Star(StarSpec{Dims: 2, FactRows: 20, DimRows: 5, MatchProb: 0.3, Seed: 9})
	nulls := 0
	fact := c.Instance.Relation("Fact")
	for _, tp := range fact.Tuples() {
		if tp.Get("Fact.k0").IsNull() {
			nulls++
		}
	}
	if nulls == 0 {
		t.Error("expected some null fact keys at MatchProb 0.3")
	}
	d, err := fd.Compute(context.Background(), c.Graph, c.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() < fact.Len() {
		t.Error("D(G) should cover every fact row")
	}
}
