// Package datagen generates synthetic schemas, instances, query
// graphs, and join knowledge for the benchmark harness (experiments
// E1–E8 in EXPERIMENTS.md). Generators are deterministic given a
// seed.
package datagen

import (
	"fmt"
	"math/rand"

	"clio/internal/core"
	"clio/internal/discovery"
	"clio/internal/expr"
	"clio/internal/graph"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// Case bundles a generated workload: an instance, a query graph over
// it, and a mapping using identity correspondences into a synthetic
// target.
type Case struct {
	Instance *relation.Instance
	Graph    *graph.QueryGraph
	Mapping  *core.Mapping
	Target   *schema.Relation
}

// ChainSpec parameterizes a chain workload R0 → R1 → ... → R(k-1):
// each relation has a key column k and a payload column v; Ri joins
// Ri+1 on the key. MatchProb controls how often a key value in Ri has
// a matching key in Ri+1, which drives the null structure of D(G).
type ChainSpec struct {
	Relations int
	Rows      int
	// KeySpace is the number of distinct key values; smaller means
	// more matches and fan-out.
	KeySpace int
	// MatchProb in [0,1]: probability that a row draws its key from
	// the shared key space (otherwise it gets a private unmatched
	// key).
	MatchProb float64
	Seed      int64
}

// Chain generates a chain workload.
func Chain(spec ChainSpec) Case {
	if spec.Relations < 1 {
		panic("datagen: chain needs at least one relation")
	}
	if spec.KeySpace <= 0 {
		spec.KeySpace = spec.Rows
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	sch := schema.NewDatabase()
	names := make([]string, spec.Relations)
	for i := range names {
		names[i] = fmt.Sprintf("R%d", i)
		sch.MustAddRelation(schema.NewRelation(names[i],
			schema.Attribute{Name: "k", Type: value.KindInt},
			schema.Attribute{Name: "v", Type: value.KindInt},
		))
	}
	for i := 1; i < spec.Relations; i++ {
		sch.AddForeignKey(fmt.Sprintf("fk%d", i), names[i-1], []string{"k"}, names[i], []string{"k"})
	}
	in := relation.NewInstance(sch)
	for i, n := range names {
		r := in.NewRelationFor(n)
		for j := 0; j < spec.Rows; j++ {
			var key int64
			if rng.Float64() < spec.MatchProb {
				key = int64(rng.Intn(spec.KeySpace))
			} else {
				// Private key: unique per relation and row, never
				// matching a neighbour.
				key = int64(1_000_000 + i*spec.Rows + j)
			}
			r.AddValues(value.Int(key), value.Int(int64(j)))
		}
		in.MustAdd(r)
	}
	g := graph.New()
	for _, n := range names {
		g.MustAddNode(n, n)
	}
	for i := 1; i < spec.Relations; i++ {
		g.MustAddEdge(names[i-1], names[i], expr.Equals(names[i-1]+".k", names[i]+".k"))
	}
	return finishCase(in, g, names)
}

// StarSpec parameterizes a star workload: a fact relation joined to
// Dims dimension relations.
type StarSpec struct {
	Dims      int
	FactRows  int
	DimRows   int
	MatchProb float64
	Seed      int64
}

// Star generates a star workload: Fact(k0..k(d-1), v), Dim_i(k, v).
func Star(spec StarSpec) Case {
	rng := rand.New(rand.NewSource(spec.Seed))
	sch := schema.NewDatabase()
	factAttrs := []schema.Attribute{{Name: "v", Type: value.KindInt}}
	for i := 0; i < spec.Dims; i++ {
		factAttrs = append(factAttrs, schema.Attribute{Name: fmt.Sprintf("k%d", i), Type: value.KindInt})
	}
	sch.MustAddRelation(schema.NewRelation("Fact", factAttrs...))
	names := make([]string, spec.Dims)
	for i := range names {
		names[i] = fmt.Sprintf("Dim%d", i)
		sch.MustAddRelation(schema.NewRelation(names[i],
			schema.Attribute{Name: "k", Type: value.KindInt},
			schema.Attribute{Name: "v", Type: value.KindInt},
		))
	}
	in := relation.NewInstance(sch)
	f := in.NewRelationFor("Fact")
	for j := 0; j < spec.FactRows; j++ {
		vals := []value.Value{value.Int(int64(j))}
		for i := 0; i < spec.Dims; i++ {
			if rng.Float64() < spec.MatchProb {
				vals = append(vals, value.Int(int64(rng.Intn(spec.DimRows))))
			} else {
				vals = append(vals, value.Null)
			}
		}
		f.AddValues(vals...)
	}
	in.MustAdd(f)
	for i, n := range names {
		r := in.NewRelationFor(n)
		for j := 0; j < spec.DimRows; j++ {
			r.AddValues(value.Int(int64(j)), value.Int(int64(i*1000+j)))
		}
		in.MustAdd(r)
	}
	g := graph.New()
	g.MustAddNode("Fact", "Fact")
	for i, n := range names {
		g.MustAddNode(n, n)
		g.MustAddEdge("Fact", n, expr.Equals(fmt.Sprintf("Fact.k%d", i), n+".k"))
	}
	return finishCase(in, g, append([]string{"Fact"}, names...))
}

// finishCase builds the identity mapping over the payload columns.
func finishCase(in *relation.Instance, g *graph.QueryGraph, names []string) Case {
	tAttrs := make([]schema.Attribute, len(names))
	corrs := make([]core.Correspondence, len(names))
	for i, n := range names {
		tAttrs[i] = schema.Attribute{Name: "v" + n, Type: value.KindInt}
		corrs[i] = core.Identity(n+".v", schema.Col("T", "v"+n))
	}
	target := schema.NewRelation("T", tAttrs...)
	m := core.NewMapping("generated", target)
	m.Graph = g
	m.Corrs = corrs
	return Case{Instance: in, Graph: g, Mapping: m, Target: target}
}

// KnowledgeSpec parameterizes a synthetic join-knowledge graph for the
// walk benchmarks: Relations nodes with EdgesPerNode random candidate
// edges each.
type KnowledgeSpec struct {
	Relations    int
	EdgesPerNode int
	Seed         int64
}

// Knowledge generates a synthetic knowledge base.
func Knowledge(spec KnowledgeSpec) *discovery.Knowledge {
	rng := rand.New(rand.NewSource(spec.Seed))
	k := discovery.NewKnowledge()
	for i := 0; i < spec.Relations; i++ {
		for e := 0; e < spec.EdgesPerNode; e++ {
			j := rng.Intn(spec.Relations)
			if j == i {
				continue
			}
			k.Add(discovery.JoinEdge{
				From:   schema.Col(fmt.Sprintf("R%d", i), fmt.Sprintf("a%d", e)),
				To:     schema.Col(fmt.Sprintf("R%d", j), fmt.Sprintf("b%d", e)),
				Source: discovery.SourceIND,
			})
		}
	}
	return k
}

// WideInstance generates an instance with many relations and columns
// holding overlapping value pools — the chase / discovery benchmark
// input (E5, E8).
func WideInstance(relations, columns, rows int, valuePool int, seed int64) *relation.Instance {
	rng := rand.New(rand.NewSource(seed))
	sch := schema.NewDatabase()
	in := relation.NewInstance(sch)
	for i := 0; i < relations; i++ {
		name := fmt.Sprintf("W%d", i)
		attrs := make([]schema.Attribute, columns)
		for c := range attrs {
			attrs[c] = schema.Attribute{Name: fmt.Sprintf("c%d", c), Type: value.KindInt}
		}
		sch.MustAddRelation(schema.NewRelation(name, attrs...))
		r := in.NewRelationFor(name)
		for j := 0; j < rows; j++ {
			vals := make([]value.Value, columns)
			for c := range vals {
				vals[c] = value.Int(int64(rng.Intn(valuePool)))
			}
			r.AddValues(vals...)
		}
		in.MustAdd(r)
	}
	return in
}
