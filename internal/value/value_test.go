package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "null",
		KindString: "string",
		KindInt:    "int",
		KindFloat:  "float",
		KindBool:   "bool",
		Kind(99):   "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() {
		t.Error("Null.IsNull() = false")
	}
	if (Value{}).Kind() != KindNull {
		t.Error("zero Value is not null")
	}
	if String("x").Str() != "x" {
		t.Error("String round-trip failed")
	}
	if Int(7).IntVal() != 7 {
		t.Error("Int round-trip failed")
	}
	if Float(2.5).FloatVal() != 2.5 {
		t.Error("Float round-trip failed")
	}
	if !Bool(true).BoolVal() {
		t.Error("Bool round-trip failed")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Str on int", func() { Int(1).Str() })
	mustPanic("IntVal on string", func() { String("a").IntVal() })
	mustPanic("FloatVal on null", func() { Null.FloatVal() })
	mustPanic("BoolVal on float", func() { Float(1).BoolVal() })
}

func TestAsFloat(t *testing.T) {
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Errorf("Int(3).AsFloat() = %v, %v", f, ok)
	}
	if f, ok := Float(1.5).AsFloat(); !ok || f != 1.5 {
		t.Errorf("Float(1.5).AsFloat() = %v, %v", f, ok)
	}
	if _, ok := String("x").AsFloat(); ok {
		t.Error("String.AsFloat() ok = true")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("Null.AsFloat() ok = true")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Null, Null, true},
		{Null, Int(0), false},
		{Int(2), Float(2.0), true},
		{Int(2), Float(2.5), false},
		{String("a"), String("a"), true},
		{String("a"), String("b"), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{String("1"), Int(1), false},
		{Float(math.NaN()), Float(math.NaN()), true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestTriLogic(t *testing.T) {
	tris := []Tri{False, True, Unknown}
	// Kleene truth tables.
	for _, a := range tris {
		for _, b := range tris {
			and := a.And(b)
			or := a.Or(b)
			switch {
			case a == False || b == False:
				if and != False {
					t.Errorf("%v AND %v = %v, want false", a, b, and)
				}
			case a == Unknown || b == Unknown:
				if and != Unknown {
					t.Errorf("%v AND %v = %v, want unknown", a, b, and)
				}
			default:
				if and != True {
					t.Errorf("%v AND %v = %v, want true", a, b, and)
				}
			}
			switch {
			case a == True || b == True:
				if or != True {
					t.Errorf("%v OR %v = %v, want true", a, b, or)
				}
			case a == Unknown || b == Unknown:
				if or != Unknown {
					t.Errorf("%v OR %v = %v, want unknown", a, b, or)
				}
			default:
				if or != False {
					t.Errorf("%v OR %v = %v, want false", a, b, or)
				}
			}
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("Not truth table wrong")
	}
	if TriOf(true) != True || TriOf(false) != False {
		t.Error("TriOf wrong")
	}
	if True.String() != "true" || False.String() != "false" || Unknown.String() != "unknown" {
		t.Error("Tri.String wrong")
	}
}

func TestCompare(t *testing.T) {
	if _, def := Compare(Null, Int(1)); def != Unknown {
		t.Error("Compare with null lhs should be undefined")
	}
	if _, def := Compare(Int(1), Null); def != Unknown {
		t.Error("Compare with null rhs should be undefined")
	}
	if cmp, def := Compare(Int(1), Float(2)); def != True || cmp != -1 {
		t.Errorf("Compare(1, 2.0) = %d, %v", cmp, def)
	}
	if cmp, def := Compare(Float(3), Int(3)); def != True || cmp != 0 {
		t.Errorf("Compare(3.0, 3) = %d, %v", cmp, def)
	}
	if cmp, def := Compare(String("a"), String("b")); def != True || cmp != -1 {
		t.Errorf("Compare(a, b) = %d, %v", cmp, def)
	}
	if cmp, def := Compare(Bool(false), Bool(true)); def != True || cmp != -1 {
		t.Errorf("Compare(false, true) = %d, %v", cmp, def)
	}
	if cmp, def := Compare(Bool(true), Bool(true)); def != True || cmp != 0 {
		t.Errorf("Compare(true, true) = %d, %v", cmp, def)
	}
	if cmp, def := Compare(Bool(true), Bool(false)); def != True || cmp != 1 {
		t.Errorf("Compare(true, false) = %d, %v", cmp, def)
	}
	if _, def := Compare(String("a"), Int(1)); def != Unknown {
		t.Error("Compare across incomparable kinds should be undefined")
	}
	if _, def := Compare(Bool(true), String("true")); def != Unknown {
		t.Error("Compare bool vs string should be undefined")
	}
}

func TestEqLess(t *testing.T) {
	if Eq(Null, Null) != Unknown {
		t.Error("null = null should be unknown (SQL)")
	}
	if Eq(Int(1), Int(1)) != True {
		t.Error("1 = 1 should be true")
	}
	if Eq(Int(1), Int(2)) != False {
		t.Error("1 = 2 should be false")
	}
	if Less(Int(1), Int(2)) != True {
		t.Error("1 < 2 should be true")
	}
	if Less(Int(2), Int(1)) != False {
		t.Error("2 < 1 should be false")
	}
	if Less(Null, Int(1)) != Unknown {
		t.Error("null < 1 should be unknown")
	}
	if Eq(String("a"), Int(1)) != Unknown {
		t.Error("incomparable Eq should be unknown")
	}
}

func TestKey(t *testing.T) {
	// Equal values share keys.
	if Int(2).Key() != Float(2).Key() {
		t.Error("Int(2) and Float(2.0) should share a key")
	}
	// Distinct values get distinct keys, even across kinds.
	vals := []Value{
		Null, Int(0), Int(1), Float(0.5), String(""), String("0"),
		String("-"), Bool(true), Bool(false), String("true"),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, dup := seen[k]; dup && !prev.Equal(v) {
			t.Errorf("key collision between %v (%v) and %v (%v)", prev, prev.Kind(), v, v.Kind())
		}
		seen[k] = v
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "-"},
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{String("hi"), "hi"},
		{Bool(true), "true"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestSQLRendering(t *testing.T) {
	if Null.SQL() != "NULL" {
		t.Error("Null.SQL() wrong")
	}
	if String("O'Brien").SQL() != "'O''Brien'" {
		t.Errorf("quote escaping wrong: %s", String("O'Brien").SQL())
	}
	if Int(5).SQL() != "5" {
		t.Error("Int.SQL() wrong")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"", Null},
		{"-", Null},
		{"NULL", Null},
		{"null", Null},
		{"42", Int(42)},
		{"-3", Int(-3)},
		{"2.5", Float(2.5)},
		{"true", Bool(true)},
		{"false", Bool(false)},
		{"hello", String("hello")},
		{"12abc", String("12abc")},
		{"002", String("002")},
		{"0", Int(0)},
		{"0.5", Float(0.5)},
		{"-0.5", Float(-0.5)},
		{"-02", String("-02")},
	}
	for _, c := range cases {
		if got := Parse(c.in); !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("Parse(%q) = %v (%v), want %v (%v)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

// Property: Key agrees with Equal on random int/float/string values.
func TestKeyEqualProperty(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		pairs := []struct{ v, w Value }{
			{Int(a), Int(b)},
			{Int(a), Float(float64(b))},
			{String(s1), String(s2)},
		}
		for _, p := range pairs {
			if (p.v.Key() == p.w.Key()) != p.v.Equal(p.w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and consistent with Less on
// non-null ints.
func TestCompareProperty(t *testing.T) {
	f := func(a, b int64) bool {
		c1, d1 := Compare(Int(a), Int(b))
		c2, d2 := Compare(Int(b), Int(a))
		if d1 != True || d2 != True {
			return false
		}
		if c1 != -c2 {
			return false
		}
		return (Less(Int(a), Int(b)) == True) == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan's laws hold in Kleene 3VL.
func TestDeMorganProperty(t *testing.T) {
	tris := []Tri{False, True, Unknown}
	for _, a := range tris {
		for _, b := range tris {
			if a.And(b).Not() != a.Not().Or(b.Not()) {
				t.Errorf("De Morgan AND failed for %v, %v", a, b)
			}
			if a.Or(b).Not() != a.Not().And(b.Not()) {
				t.Errorf("De Morgan OR failed for %v, %v", a, b)
			}
		}
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	f := func(i int64) bool {
		v := Int(i)
		return Parse(v.String()).Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
