// Package value implements the typed value model used throughout the
// mapping engine: strings, integers, floats, booleans, and SQL-style
// nulls, with three-valued comparison semantics and a stable hash/key
// encoding usable for hash joins and indexes.
//
// The paper's definitions (strong predicates, subsumption, minimum
// union) all hinge on careful null handling; this package centralizes
// those rules so the rest of the system cannot get them subtly wrong.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The supported value kinds. KindNull is the SQL null marker: it has no
// associated datum and compares as unknown to everything, including
// itself.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is an immutable typed datum. The zero Value is null.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
}

// Null is the SQL null value.
var Null = Value{}

// String constructs a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int constructs an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float constructs a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool constructs a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the SQL null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string datum; it panics if v is not a string.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: Str() on %s value", v.kind))
	}
	return v.s
}

// IntVal returns the integer datum; it panics if v is not an int.
func (v Value) IntVal() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: IntVal() on %s value", v.kind))
	}
	return v.i
}

// FloatVal returns the float datum; it panics if v is not a float.
func (v Value) FloatVal() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("value: FloatVal() on %s value", v.kind))
	}
	return v.f
}

// BoolVal returns the boolean datum; it panics if v is not a bool.
func (v Value) BoolVal() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: BoolVal() on %s value", v.kind))
	}
	return v.b
}

// AsFloat converts a numeric value to float64. ok is false for
// non-numeric or null values.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// numeric reports whether v is an int or float.
func (v Value) numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports whether two values are identical — same kind, same
// datum. Unlike SQL equality this is a real equivalence relation:
// Null.Equal(Null) is true. Use Compare for SQL semantics.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		// Cross-kind numeric equality: Int(2) equals Float(2.0).
		if v.numeric() && w.numeric() {
			a, _ := v.AsFloat()
			b, _ := w.AsFloat()
			return a == b
		}
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.s == w.s
	case KindInt:
		return v.i == w.i
	case KindFloat:
		return v.f == w.f || (math.IsNaN(v.f) && math.IsNaN(w.f))
	case KindBool:
		return v.b == w.b
	}
	return false
}

// Tri is a three-valued logic truth value.
type Tri uint8

// The three truth values of SQL logic.
const (
	False Tri = iota
	True
	Unknown
)

// String returns "true", "false" or "unknown".
func (t Tri) String() string {
	switch t {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}

// TriOf lifts a Go bool into Tri.
func TriOf(b bool) Tri {
	if b {
		return True
	}
	return False
}

// And returns the 3VL conjunction.
func (t Tri) And(u Tri) Tri {
	if t == False || u == False {
		return False
	}
	if t == Unknown || u == Unknown {
		return Unknown
	}
	return True
}

// Or returns the 3VL disjunction.
func (t Tri) Or(u Tri) Tri {
	if t == True || u == True {
		return True
	}
	if t == Unknown || u == Unknown {
		return Unknown
	}
	return False
}

// Not returns the 3VL negation.
func (t Tri) Not() Tri {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// Compare compares two values with SQL semantics: if either side is
// null the result is Unknown; otherwise cmp is -1, 0 or +1 and the
// returned Tri is True (meaning the comparison is defined). Comparing
// incomparable kinds (e.g. string vs bool) yields Unknown.
func Compare(v, w Value) (cmp int, defined Tri) {
	if v.IsNull() || w.IsNull() {
		return 0, Unknown
	}
	if v.numeric() && w.numeric() {
		a, _ := v.AsFloat()
		b, _ := w.AsFloat()
		switch {
		case a < b:
			return -1, True
		case a > b:
			return 1, True
		default:
			return 0, True
		}
	}
	if v.kind != w.kind {
		return 0, Unknown
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, w.s), True
	case KindBool:
		x, y := 0, 0
		if v.b {
			x = 1
		}
		if w.b {
			y = 1
		}
		switch {
		case x < y:
			return -1, True
		case x > y:
			return 1, True
		default:
			return 0, True
		}
	}
	return 0, Unknown
}

// Eq is SQL equality: Unknown if either side is null, else True/False.
func Eq(v, w Value) Tri {
	cmp, def := Compare(v, w)
	if def != True {
		return Unknown
	}
	return TriOf(cmp == 0)
}

// Less is SQL less-than.
func Less(v, w Value) Tri {
	cmp, def := Compare(v, w)
	if def != True {
		return Unknown
	}
	return TriOf(cmp < 0)
}

// Key returns a stable encoding of v usable as a hash-map key. Distinct
// values have distinct keys; Equal values (including cross-kind numeric
// equality) share a key. Every encoding is self-delimiting — string
// payloads are length-framed and the other kinds are fixed-width or
// terminated — so concatenating keys (as Tuple.Key does) cannot
// produce collisions by delimiter injection, whatever bytes the
// payloads contain.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "n;"
	case KindString:
		return "s" + strconv.Itoa(len(v.s)) + ":" + v.s
	case KindInt:
		if v.i > -1_000_000 && v.i < 1_000_000 {
			// For |i| < 1e6 the 'g' shortest form of float64(i) is
			// exactly the decimal digits (larger magnitudes switch to
			// exponent notation), so the float formatter can be skipped.
			// Verified exhaustively over the whole range.
			return "f" + strconv.FormatInt(v.i, 10) + ";"
		}
		return "f" + strconv.FormatFloat(float64(v.i), 'g', -1, 64) + ";"
	case KindFloat:
		f := v.f
		if f == 0 {
			f = 0 // -0.0 equals +0.0: share one key
		}
		return "f" + strconv.FormatFloat(f, 'g', -1, 64) + ";"
	case KindBool:
		if v.b {
			return "bt"
		}
		return "bf"
	}
	return "?;"
}

// AppendKey appends v's canonical Key encoding to dst and returns the
// extended slice. It produces exactly the bytes of Key() without
// allocating intermediate strings, so batch kernels can build sort keys
// for thousands of rows into one shared buffer.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, 'n', ';')
	case KindString:
		dst = append(dst, 's')
		dst = strconv.AppendInt(dst, int64(len(v.s)), 10)
		dst = append(dst, ':')
		return append(dst, v.s...)
	case KindInt:
		dst = append(dst, 'f')
		if v.i > -1_000_000 && v.i < 1_000_000 {
			// Same fast path as Key: the 'g' form of a small integral
			// float is its decimal digits.
			dst = strconv.AppendInt(dst, v.i, 10)
		} else {
			dst = strconv.AppendFloat(dst, float64(v.i), 'g', -1, 64)
		}
		return append(dst, ';')
	case KindFloat:
		f := v.f
		if f == 0 {
			f = 0 // -0.0 equals +0.0: share one key
		}
		dst = append(dst, 'f')
		if f == math.Trunc(f) && f > -1_000_000 && f < 1_000_000 {
			dst = strconv.AppendInt(dst, int64(f), 10)
		} else {
			dst = strconv.AppendFloat(dst, f, 'g', -1, 64)
		}
		return append(dst, ';')
	case KindBool:
		if v.b {
			return append(dst, 'b', 't')
		}
		return append(dst, 'b', 'f')
	}
	return append(dst, '?', ';')
}

// FNV-1a parameters for the canonical 64-bit value hash.
const (
	hashOffset64 uint64 = 14695981039346656037
	hashPrime64  uint64 = 1099511628211
)

// HashSeed returns the initial state for chaining MixHash64 over a
// sequence of values (the FNV-1a offset basis).
func HashSeed() uint64 { return hashOffset64 }

// MixBytes folds a byte string into an FNV-1a hash state, prefixed by
// its length so that adjacent strings in a chained hash cannot collide
// by moving bytes across the boundary.
func MixBytes(h uint64, s string) uint64 {
	h = MixUint64(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * hashPrime64
	}
	return h
}

// MixUint64 folds a fixed-width 64-bit word into an FNV-1a hash state.
func MixUint64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * hashPrime64
		x >>= 8
	}
	return h
}

// MixHash64 folds v's canonical encoding into an FNV-1a hash state: a
// kind tag byte followed by a length-framed (strings) or fixed-width
// (numerics, bools) payload. The framing mirrors Key(): hashing a
// sequence of values is unambiguous, and Equal values — including
// cross-kind numeric equality, negative zero, and NaN (which Equal
// treats as equal to itself) — mix identically. It allocates nothing.
func (v Value) MixHash64(h uint64) uint64 {
	switch v.kind {
	case KindNull:
		return MixNullHash(h)
	case KindString:
		return MixStringHash(h, v.s)
	case KindInt:
		return MixNumericHash(h, float64(v.i))
	case KindFloat:
		return MixNumericHash(h, v.f)
	case KindBool:
		return MixBoolHash(h, v.b)
	}
	return (h ^ '?') * hashPrime64
}

// The typed mixers below are the per-kind cases of MixHash64, exported
// so columnar kernels can hash typed column storage (int64/float64/
// string/bool vectors) in tight loops without materializing Values.
// Each reproduces MixHash64's bytes exactly for the matching kind.

// MixNullHash folds the null encoding into the hash state.
func MixNullHash(h uint64) uint64 { return (h ^ 'n') * hashPrime64 }

// MixStringHash folds a string datum into the hash state.
func MixStringHash(h uint64, s string) uint64 {
	return MixBytes((h^'s')*hashPrime64, s)
}

// MixNumericHash folds a numeric datum (int or float, already widened
// to float64 — the canonical numeric hash domain) into the hash state,
// normalizing -0.0 and NaN exactly like MixHash64.
func MixNumericHash(h uint64, f float64) uint64 {
	if f == 0 {
		f = 0 // normalize -0.0 to +0.0 (they compare Equal)
	}
	bits := math.Float64bits(f)
	if math.IsNaN(f) {
		bits = 0x7ff8000000000000 // canonical quiet NaN
	}
	return MixUint64((h^'f')*hashPrime64, bits)
}

// MixBoolHash folds a boolean datum into the hash state.
func MixBoolHash(h uint64, b bool) uint64 {
	if b {
		return (h ^ 't') * hashPrime64
	}
	return (h ^ 'u') * hashPrime64
}

// Hash64 returns the canonical 64-bit hash of v. Equal values share a
// hash; distinct values collide only with hash probability, so
// hash-keyed indexes confirm candidate equality with Equal.
func (v Value) Hash64() uint64 { return v.MixHash64(hashOffset64) }

// String renders the value for display. Null renders as "-" to match
// the paper's figures.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "-"
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	}
	return "?"
}

// SQL renders the value as a SQL literal.
func (v Value) SQL() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	default:
		return v.String()
	}
}

// Parse converts a display string into a Value, guessing the kind:
// "-" and "" parse as null, then int, float, bool, and finally string.
func Parse(s string) Value {
	switch s {
	case "", "-", "NULL", "null":
		return Null
	}
	// Leading-zero digit strings ("002") stay strings: they are
	// identifiers, and numeric parsing would destroy the zeros.
	// "0" and "0.5" are still numbers.
	leadingZero := len(s) > 1 && s[0] == '0' && s[1] != '.' ||
		len(s) > 2 && s[0] == '-' && s[1] == '0' && s[2] != '.'
	if !leadingZero {
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return Int(i)
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return Float(f)
		}
	}
	if s == "true" || s == "false" {
		return Bool(s == "true")
	}
	return String(s)
}
