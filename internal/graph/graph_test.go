package graph

import (
	"math/rand"
	"strings"
	"testing"

	"clio/internal/expr"
)

// paperG builds the paper's Figure 6 graph G: Children—Parents—PhoneDir.
func paperG() *QueryGraph {
	g := New()
	g.MustAddNode("Children", "Children")
	g.MustAddNode("Parents", "Parents")
	g.MustAddNode("PhoneDir", "PhoneDir")
	g.MustAddEdge("Children", "Parents", expr.Equals("Children.mid", "Parents.ID"))
	g.MustAddEdge("Parents", "PhoneDir", expr.Equals("Parents.ID", "PhoneDir.ID"))
	return g
}

func TestNodeAndEdgeBasics(t *testing.T) {
	g := paperG()
	if g.NodeCount() != 3 {
		t.Errorf("NodeCount = %d", g.NodeCount())
	}
	if !g.HasNode("Parents") || g.HasNode("SBPS") {
		t.Error("HasNode wrong")
	}
	n, ok := g.Node("Children")
	if !ok || n.Base != "Children" {
		t.Error("Node lookup wrong")
	}
	e, ok := g.EdgeBetween("PhoneDir", "Parents")
	if !ok || e.Label() != "Parents.ID = PhoneDir.ID" {
		t.Errorf("EdgeBetween = %v, %v", e, ok)
	}
	if _, ok := g.EdgeBetween("Children", "PhoneDir"); ok {
		t.Error("phantom edge")
	}
	if got := g.Neighbors("Parents"); len(got) != 2 {
		t.Errorf("Neighbors = %v", got)
	}
	if o, ok := e.Other("Parents"); !ok || o != "PhoneDir" {
		t.Error("Other wrong")
	}
	if _, ok := e.Other("Children"); ok {
		t.Error("Other on non-endpoint should fail")
	}
}

func TestAddNodeConflicts(t *testing.T) {
	g := New()
	g.MustAddNode("Parents2", "Parents")
	if err := g.AddNode("Parents2", "Parents"); err != nil {
		t.Errorf("re-adding same node should be no-op: %v", err)
	}
	if err := g.AddNode("Parents2", "Children"); err == nil {
		t.Error("rebinding node base should fail")
	}
	if g.NodeCount() != 1 {
		t.Errorf("NodeCount = %d", g.NodeCount())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New()
	g.MustAddNode("A", "A")
	g.MustAddNode("B", "B")
	if err := g.AddEdge("A", "A", expr.MustParse("TRUE")); err == nil {
		t.Error("self-loop should fail")
	}
	if err := g.AddEdge("A", "Z", expr.MustParse("TRUE")); err == nil {
		t.Error("unknown endpoint should fail")
	}
	if err := g.AddEdge("Z", "A", expr.MustParse("TRUE")); err == nil {
		t.Error("unknown endpoint should fail")
	}
}

func TestAddEdgeConjoins(t *testing.T) {
	g := New()
	g.MustAddNode("A", "A")
	g.MustAddNode("B", "B")
	g.MustAddEdge("A", "B", expr.Equals("A.x", "B.x"))
	g.MustAddEdge("B", "A", expr.Equals("A.y", "B.y"))
	if len(g.Edges()) != 1 {
		t.Fatalf("edges = %d, want 1 (conjoined)", len(g.Edges()))
	}
	label := g.Edges()[0].Label()
	if !strings.Contains(label, "A.x = B.x") || !strings.Contains(label, "A.y = B.y") {
		t.Errorf("conjoined label = %q", label)
	}
}

func TestConnectedAndTree(t *testing.T) {
	g := paperG()
	if !g.Connected() || !g.IsTree() {
		t.Error("paper graph should be a connected tree")
	}
	if !New().Connected() {
		t.Error("empty graph is connected by convention")
	}
	if New().IsTree() {
		t.Error("empty graph is not a tree")
	}
	// Disconnect it.
	g2 := paperG()
	g2.MustAddNode("SBPS", "SBPS")
	if g2.Connected() {
		t.Error("isolated node should disconnect")
	}
	if g2.IsTree() {
		t.Error("disconnected is not a tree")
	}
	// A cycle is connected but not a tree.
	g3 := paperG()
	g3.MustAddEdge("Children", "PhoneDir", expr.Equals("Children.ID", "PhoneDir.ID"))
	if !g3.Connected() || g3.IsTree() {
		t.Error("cycle classification wrong")
	}
}

func TestInduced(t *testing.T) {
	g := paperG()
	sub := g.Induced([]string{"Children", "Parents"})
	if sub.NodeCount() != 2 || len(sub.Edges()) != 1 {
		t.Errorf("induced wrong: %v", sub)
	}
	// Non-adjacent pair: no edges.
	sub2 := g.Induced([]string{"Children", "PhoneDir"})
	if len(sub2.Edges()) != 0 || sub2.Connected() {
		t.Error("non-adjacent induced subgraph should be disconnected")
	}
}

func TestUnion(t *testing.T) {
	g := paperG()
	h := New()
	h.MustAddNode("Children", "Children")
	h.MustAddNode("SBPS", "SBPS")
	h.MustAddEdge("Children", "SBPS", expr.Equals("Children.ID", "SBPS.ID"))
	u, err := g.Union(h)
	if err != nil {
		t.Fatal(err)
	}
	if u.NodeCount() != 4 || len(u.Edges()) != 3 {
		t.Errorf("union wrong: %v", u)
	}
	// Original graphs untouched.
	if g.NodeCount() != 3 {
		t.Error("union mutated receiver")
	}
	// Same edge, same label: deduplicated.
	u2, err := g.Union(g)
	if err != nil || len(u2.Edges()) != 2 {
		t.Errorf("self-union: %v, %v", u2, err)
	}
	// Conflicting label: error.
	h2 := New()
	h2.MustAddNode("Children", "Children")
	h2.MustAddNode("Parents", "Parents")
	h2.MustAddEdge("Children", "Parents", expr.Equals("Children.fid", "Parents.ID"))
	if _, err := g.Union(h2); err == nil {
		t.Error("relabeling union should fail")
	}
	// Conflicting base: error.
	h3 := New()
	h3.MustAddNode("Parents", "PhoneDir")
	if _, err := g.Union(h3); err == nil {
		t.Error("base-conflicting union should fail")
	}
}

func TestConnectedSubsetsPaperExample(t *testing.T) {
	// Example 3.12: the induced connected subgraphs of G are
	// {C}, {P}, {Ph}, {C,P}, {P,Ph}, {C,P,Ph} — note {C,Ph} is absent.
	g := paperG()
	got := g.ConnectedSubsets()
	want := [][]string{
		{"Children"}, {"Parents"}, {"PhoneDir"},
		{"Children", "Parents"}, {"Parents", "PhoneDir"},
		{"Children", "Parents", "PhoneDir"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d subsets %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if strings.Join(got[i], ",") != strings.Join(want[i], ",") {
			t.Errorf("subset %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestConnectedSubsetsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	letters := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		g := New()
		for i := 0; i < n; i++ {
			g.MustAddNode(letters[i], letters[i])
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					g.MustAddEdge(letters[i], letters[j], expr.Equals(letters[i]+".x", letters[j]+".x"))
				}
			}
		}
		fast := g.ConnectedSubsets()
		slow := g.ConnectedSubsetsNaive()
		if len(fast) != len(slow) {
			t.Fatalf("trial %d: fast %d vs naive %d subsets\n%v\nfast: %v\nslow: %v",
				trial, len(fast), len(slow), g, fast, slow)
		}
		for i := range fast {
			if strings.Join(fast[i], ",") != strings.Join(slow[i], ",") {
				t.Fatalf("trial %d: subset %d differs: %v vs %v", trial, i, fast[i], slow[i])
			}
		}
	}
}

func TestConnectedSubsetsChainCount(t *testing.T) {
	// A chain of n nodes has n(n+1)/2 connected induced subgraphs.
	for n := 1; n <= 10; n++ {
		g := New()
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = string(rune('A' + i))
			g.MustAddNode(names[i], names[i])
		}
		for i := 1; i < n; i++ {
			g.MustAddEdge(names[i-1], names[i], expr.Equals(names[i-1]+".x", names[i]+".x"))
		}
		want := n * (n + 1) / 2
		if got := len(g.ConnectedSubsets()); got != want {
			t.Errorf("chain %d: %d subsets, want %d", n, got, want)
		}
	}
}

func TestSpanningTreeOrder(t *testing.T) {
	g := paperG()
	order, edges, ok := g.SpanningTreeOrder()
	if !ok || len(order) != 3 || order[0] != "Children" {
		t.Fatalf("SpanningTreeOrder = %v, %v", order, ok)
	}
	// Each non-root connects to an earlier node.
	seen := map[string]bool{order[0]: true}
	for i := 1; i < len(order); i++ {
		e := edges[i]
		o, okO := e.Other(order[i])
		if !okO || !seen[o] {
			t.Errorf("tree edge %d (%v) does not connect to earlier node", i, e)
		}
		seen[order[i]] = true
	}
	// Disconnected graph: not ok.
	g.MustAddNode("SBPS", "SBPS")
	if _, _, ok := g.SpanningTreeOrder(); ok {
		t.Error("disconnected graph should not have spanning order")
	}
	if _, _, ok := New().SpanningTreeOrder(); ok {
		t.Error("empty graph should not have spanning order")
	}
}

func TestSimplePaths(t *testing.T) {
	// Diamond: A-B, A-C, B-D, C-D.
	g := New()
	for _, n := range []string{"A", "B", "C", "D"} {
		g.MustAddNode(n, n)
	}
	g.MustAddEdge("A", "B", expr.Equals("A.x", "B.x"))
	g.MustAddEdge("A", "C", expr.Equals("A.x", "C.x"))
	g.MustAddEdge("B", "D", expr.Equals("B.x", "D.x"))
	g.MustAddEdge("C", "D", expr.Equals("C.x", "D.x"))
	paths := g.SimplePaths("A", "D", 4)
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	// Bounded length.
	if got := g.SimplePaths("A", "D", 1); len(got) != 0 {
		t.Errorf("bounded paths = %v", got)
	}
	if got := g.SimplePaths("A", "A", 3); len(got) != 1 || len(got[0]) != 1 {
		t.Errorf("trivial path = %v", got)
	}
	if got := g.SimplePaths("A", "Z", 3); got != nil {
		t.Errorf("unknown endpoint paths = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := paperG()
	c := g.Clone()
	c.MustAddNode("SBPS", "SBPS")
	c.MustAddEdge("Children", "SBPS", expr.Equals("Children.ID", "SBPS.ID"))
	if g.NodeCount() != 3 || len(g.Edges()) != 2 {
		t.Error("clone mutated original")
	}
}

func TestStringRendering(t *testing.T) {
	s := paperG().String()
	for _, want := range []string{"Children", "Parents -- PhoneDir", "Children.mid = Parents.ID"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestConnectedSubsetsStarCount(t *testing.T) {
	// A star with center X and n leaves has 2^n (subsets containing X,
	// any leaf combination) + n (single leaves) ... minus the empty
	// set: 2^n + n singleton-leaf sets, where the center-containing
	// count includes {X} itself.
	for n := 1; n <= 8; n++ {
		g := New()
		g.MustAddNode("X", "X")
		for i := 0; i < n; i++ {
			leaf := string(rune('a' + i))
			g.MustAddNode(leaf, leaf)
			g.MustAddEdge("X", leaf, expr.Equals("X.k", leaf+".k"))
		}
		want := (1 << n) + n
		if got := len(g.ConnectedSubsets()); got != want {
			t.Errorf("star %d: %d subsets, want %d", n, got, want)
		}
	}
}

func TestSimplePathsProperty(t *testing.T) {
	// Property: every reported path is simple, respects the bound, and
	// consecutive nodes are adjacent.
	rng := rand.New(rand.NewSource(17))
	letters := []string{"A", "B", "C", "D", "E", "F"}
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(5)
		g := New()
		for i := 0; i < n; i++ {
			g.MustAddNode(letters[i], letters[i])
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					g.MustAddEdge(letters[i], letters[j], expr.Equals(letters[i]+".x", letters[j]+".x"))
				}
			}
		}
		bound := 1 + rng.Intn(4)
		paths := g.SimplePaths(letters[0], letters[n-1], bound)
		for _, p := range paths {
			if len(p)-1 > bound {
				t.Fatalf("path %v exceeds bound %d", p, bound)
			}
			seen := map[string]bool{}
			for i, node := range p {
				if seen[node] {
					t.Fatalf("path %v revisits %s", p, node)
				}
				seen[node] = true
				if i > 0 {
					if _, ok := g.EdgeBetween(p[i-1], node); !ok {
						t.Fatalf("path %v uses missing edge %s—%s", p, p[i-1], node)
					}
				}
			}
		}
	}
}

func TestInducedPreservesConjoinedLabels(t *testing.T) {
	g := New()
	g.MustAddNode("A", "A")
	g.MustAddNode("B", "B")
	g.MustAddEdge("A", "B", expr.Equals("A.x", "B.x"))
	g.MustAddEdge("A", "B", expr.Equals("A.y", "B.y"))
	sub := g.Induced([]string{"A", "B"})
	e, ok := sub.EdgeBetween("A", "B")
	if !ok || !strings.Contains(e.Label(), "A.y = B.y") {
		t.Errorf("conjoined label lost: %v", e)
	}
}
