// Package graph implements the paper's query graphs (Definition 3.3):
// undirected graphs whose nodes are (possibly aliased) source relation
// names and whose edges are labeled with conjunctions of join
// predicates. The package provides the combinatorial machinery the
// full disjunction needs — enumeration of induced connected subgraphs
// (the coverage categories of D(G)) — plus graph union (for data
// walks), spanning trees, and path utilities.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"clio/internal/expr"
)

// Node is a query-graph node: a relation occurrence. Name is the
// occurrence name (alias) used to qualify attributes; Base is the
// stored relation it reads.
type Node struct {
	Name string
	Base string
}

// Edge is an undirected labeled edge between two node names. Pred is a
// conjunction of join predicates over the two nodes' attributes; join
// predicates are strong (paper §3), which callers should verify with
// expr.IsStrong when constructing edges from user input.
type Edge struct {
	A, B string
	Pred expr.Expr
}

// Other returns the endpoint that is not n; ok is false if n is not an
// endpoint.
func (e Edge) Other(n string) (string, bool) {
	switch n {
	case e.A:
		return e.B, true
	case e.B:
		return e.A, true
	}
	return "", false
}

// Label returns the edge predicate rendered as text.
func (e Edge) Label() string { return e.Pred.String() }

// sameEndpoints reports whether e connects the same unordered pair as
// (a, b).
func (e Edge) sameEndpoints(a, b string) bool {
	return e.A == a && e.B == b || e.A == b && e.B == a
}

// QueryGraph is an undirected, labeled graph over relation
// occurrences. At most one edge exists per node pair; adding another
// conjoins the predicates (an edge is *labeled by a conjunction*).
type QueryGraph struct {
	nodes map[string]Node
	order []string
	edges []Edge
}

// New creates an empty query graph.
func New() *QueryGraph {
	return &QueryGraph{nodes: map[string]Node{}}
}

// AddNode adds a relation occurrence; adding an existing name with the
// same base is a no-op, a different base is an error.
func (g *QueryGraph) AddNode(name, base string) error {
	if n, ok := g.nodes[name]; ok {
		if n.Base != base {
			return fmt.Errorf("graph: node %q already bound to base %q", name, n.Base)
		}
		return nil
	}
	g.nodes[name] = Node{Name: name, Base: base}
	g.order = append(g.order, name)
	return nil
}

// MustAddNode is AddNode that panics on error.
func (g *QueryGraph) MustAddNode(name, base string) {
	if err := g.AddNode(name, base); err != nil {
		panic(err)
	}
}

// AddEdge adds a labeled edge between existing nodes. If an edge
// already joins the pair, the predicates are conjoined. Self-loops are
// rejected.
func (g *QueryGraph) AddEdge(a, b string, pred expr.Expr) error {
	if a == b {
		return fmt.Errorf("graph: self-loop on %q", a)
	}
	if _, ok := g.nodes[a]; !ok {
		return fmt.Errorf("graph: edge endpoint %q not in graph", a)
	}
	if _, ok := g.nodes[b]; !ok {
		return fmt.Errorf("graph: edge endpoint %q not in graph", b)
	}
	for i, e := range g.edges {
		if e.sameEndpoints(a, b) {
			g.edges[i].Pred = expr.And(e.Pred, pred)
			return nil
		}
	}
	g.edges = append(g.edges, Edge{A: a, B: b, Pred: pred})
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (g *QueryGraph) MustAddEdge(a, b string, pred expr.Expr) {
	if err := g.AddEdge(a, b, pred); err != nil {
		panic(err)
	}
}

// HasNode reports whether the named occurrence is in the graph.
func (g *QueryGraph) HasNode(name string) bool { _, ok := g.nodes[name]; return ok }

// Node returns the named node and whether it exists.
func (g *QueryGraph) Node(name string) (Node, bool) { n, ok := g.nodes[name]; return n, ok }

// Nodes returns node names in insertion order.
func (g *QueryGraph) Nodes() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// NodeCount returns the number of nodes.
func (g *QueryGraph) NodeCount() int { return len(g.order) }

// Edges returns the edges. Callers must not mutate the slice.
func (g *QueryGraph) Edges() []Edge { return g.edges }

// EdgeBetween returns the edge joining a and b, if any.
func (g *QueryGraph) EdgeBetween(a, b string) (Edge, bool) {
	for _, e := range g.edges {
		if e.sameEndpoints(a, b) {
			return e, true
		}
	}
	return Edge{}, false
}

// Neighbors returns the neighbor names of n in deterministic order.
func (g *QueryGraph) Neighbors(n string) []string {
	var out []string
	for _, e := range g.edges {
		if o, ok := e.Other(n); ok {
			out = append(out, o)
		}
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy (edges share predicate ASTs, which are
// immutable).
func (g *QueryGraph) Clone() *QueryGraph {
	out := New()
	for _, n := range g.order {
		out.nodes[n] = g.nodes[n]
	}
	out.order = append([]string(nil), g.order...)
	out.edges = append([]Edge(nil), g.edges...)
	return out
}

// Connected reports whether the graph is connected (the paper requires
// query graphs to be connected). The empty graph is connected.
func (g *QueryGraph) Connected() bool {
	if len(g.order) <= 1 {
		return true
	}
	seen := map[string]bool{g.order[0]: true}
	stack := []string{g.order[0]}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, o := range g.Neighbors(n) {
			if !seen[o] {
				seen[o] = true
				stack = append(stack, o)
			}
		}
	}
	return len(seen) == len(g.order)
}

// IsTree reports whether the graph is connected with |E| = |N| - 1.
// Walks and chases only ever extend trees by paths or single edges, so
// Clio's query graphs are trees in practice; the full disjunction has
// a fast path for them.
func (g *QueryGraph) IsTree() bool {
	return len(g.order) > 0 && len(g.edges) == len(g.order)-1 && g.Connected()
}

// Induced returns the subgraph induced by the given node names:
// those nodes and every edge with both endpoints among them.
func (g *QueryGraph) Induced(names []string) *QueryGraph {
	keep := map[string]bool{}
	for _, n := range names {
		keep[n] = true
	}
	out := New()
	for _, n := range g.order {
		if keep[n] {
			out.MustAddNode(n, g.nodes[n].Base)
		}
	}
	for _, e := range g.edges {
		if keep[e.A] && keep[e.B] {
			out.edges = append(out.edges, e)
		}
	}
	return out
}

// Union merges g and h: union of nodes and union of edges (the walk
// operator's G ∪ G', Section 5.1). Shared nodes must have the same
// base; shared edges must carry the same label.
func (g *QueryGraph) Union(h *QueryGraph) (*QueryGraph, error) {
	out := g.Clone()
	for _, n := range h.order {
		if err := out.AddNode(n, h.nodes[n].Base); err != nil {
			return nil, err
		}
	}
	for _, e := range h.edges {
		if prev, ok := out.EdgeBetween(e.A, e.B); ok {
			if prev.Label() != e.Label() {
				return nil, fmt.Errorf("graph: union relabels edge %s—%s (%q vs %q)",
					e.A, e.B, prev.Label(), e.Label())
			}
			continue
		}
		out.edges = append(out.edges, e)
	}
	return out, nil
}

// ConnectedSubsets enumerates the node sets of every induced,
// connected, non-empty subgraph, each sorted, in deterministic order.
// This is the category index of D(G) (Definition 3.6). The number of
// such subsets can be exponential in the node count — callers working
// with large non-tree graphs should bound node count upstream.
func (g *QueryGraph) ConnectedSubsets() [][]string {
	names := append([]string(nil), g.order...)
	sort.Strings(names)
	pos := make(map[string]int, len(names))
	for i, n := range names {
		pos[n] = i
	}
	adj := make([][]int, len(names))
	for _, e := range g.edges {
		a, b := pos[e.A], pos[e.B]
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}

	var out [][]string
	emit := func(set []int) {
		s := make([]string, len(set))
		for i, ix := range set {
			s[i] = names[ix]
		}
		sort.Strings(s)
		out = append(out, s)
	}

	// For each root r, enumerate connected sets whose minimum element
	// is r. Each extension candidate is either taken or permanently
	// forbidden, which yields each set exactly once.
	var rec func(set []int, ext []int, forbidden []bool)
	rec = func(set []int, ext []int, forbidden []bool) {
		emit(set)
		for i, u := range ext {
			// Forbid the candidates we skipped before u.
			f2 := append([]bool(nil), forbidden...)
			for _, v := range ext[:i] {
				f2[v] = true
			}
			f2[u] = true
			// New extension: remaining candidates plus u's unseen
			// neighbors.
			var ext2 []int
			ext2 = append(ext2, ext[i+1:]...)
			inExt := map[int]bool{}
			for _, v := range ext2 {
				inExt[v] = true
			}
			for _, w := range adj[u] {
				if !f2[w] && !inExt[w] && !contains(set, w) {
					ext2 = append(ext2, w)
					inExt[w] = true
				}
			}
			set2 := append(append([]int(nil), set...), u)
			rec(set2, ext2, f2)
		}
	}

	for r := range names {
		forbidden := make([]bool, len(names))
		for i := 0; i < r; i++ {
			forbidden[i] = true
		}
		forbidden[r] = true
		var ext []int
		for _, w := range adj[r] {
			if !forbidden[w] {
				ext = append(ext, w)
			}
		}
		sort.Ints(ext)
		ext = dedupInts(ext)
		rec([]int{r}, ext, forbidden)
	}

	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return strings.Join(out[i], ",") < strings.Join(out[j], ",")
	})
	return out
}

// ConnectedSubsetsNaive enumerates induced connected subsets by
// testing all 2^n subsets; the reference implementation for
// differential tests. It panics beyond 20 nodes.
func (g *QueryGraph) ConnectedSubsetsNaive() [][]string {
	names := append([]string(nil), g.order...)
	sort.Strings(names)
	n := len(names)
	if n > 20 {
		panic("graph: ConnectedSubsetsNaive beyond 20 nodes")
	}
	var out [][]string
	for mask := 1; mask < 1<<n; mask++ {
		var sub []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, names[i])
			}
		}
		if g.Induced(sub).Connected() {
			out = append(out, sub)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return strings.Join(out[i], ",") < strings.Join(out[j], ",")
	})
	return out
}

// SpanningTreeOrder returns the nodes in a BFS order from the first
// node, paired with, for each non-root node, the tree edge that
// connects it to an earlier node. It returns ok=false if the graph is
// not connected or is empty.
func (g *QueryGraph) SpanningTreeOrder() (order []string, treeEdge []Edge, ok bool) {
	if len(g.order) == 0 {
		return nil, nil, false
	}
	root := g.order[0]
	seen := map[string]bool{root: true}
	order = []string{root}
	treeEdge = []Edge{{}}
	queue := []string{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, o := range g.Neighbors(n) {
			if seen[o] {
				continue
			}
			seen[o] = true
			e, _ := g.EdgeBetween(n, o)
			order = append(order, o)
			treeEdge = append(treeEdge, e)
			queue = append(queue, o)
		}
	}
	if len(order) != len(g.order) {
		return nil, nil, false
	}
	return order, treeEdge, true
}

// SimplePaths returns every simple path between from and to with at
// most maxLen edges, as slices of node names (including endpoints).
func (g *QueryGraph) SimplePaths(from, to string, maxLen int) [][]string {
	var out [][]string
	if !g.HasNode(from) || !g.HasNode(to) {
		return nil
	}
	var rec func(path []string, seen map[string]bool)
	rec = func(path []string, seen map[string]bool) {
		last := path[len(path)-1]
		if last == to {
			out = append(out, append([]string(nil), path...))
			return
		}
		if len(path)-1 >= maxLen {
			return
		}
		for _, o := range g.Neighbors(last) {
			if seen[o] {
				continue
			}
			seen[o] = true
			rec(append(path, o), seen)
			delete(seen, o)
		}
	}
	rec([]string{from}, map[string]bool{from: true})
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return strings.Join(out[i], ",") < strings.Join(out[j], ",")
	})
	return out
}

// String renders nodes and labeled edges, one per line.
func (g *QueryGraph) String() string {
	var b strings.Builder
	b.WriteString("nodes: ")
	b.WriteString(strings.Join(g.order, ", "))
	b.WriteByte('\n')
	for _, e := range g.edges {
		fmt.Fprintf(&b, "  %s -- %s [%s]\n", e.A, e.B, e.Label())
	}
	return b.String()
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}
