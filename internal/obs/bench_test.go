package obs

import (
	"context"
	"testing"
	"time"
)

// BenchmarkSpanDisabled proves the disabled instrumentation path is
// effectively free: no allocations and a few nanoseconds per
// span+attr+end sequence.
func BenchmarkSpanDisabled(b *testing.B) {
	SetEnabled(false)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, s := StartSpan(ctx, "bench.span")
		s.SetStr("algo", "outer_join")
		s.SetInt("n", int64(i))
		s.End()
		_ = c
	}
}

// BenchmarkMetricsDisabled measures the disabled counter + histogram
// path used inside join kernels.
func BenchmarkMetricsDisabled(b *testing.B) {
	SetEnabled(false)
	c := GetCounter("bench.counter")
	h := GetHistogram("bench.hist")
	start := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.ObserveSince(start)
	}
}

// BenchmarkSpanEnabled is the enabled-path cost for comparison.
func BenchmarkSpanEnabled(b *testing.B) {
	SetEnabled(true)
	defer SetEnabled(false)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "bench.span")
		s.SetInt("n", int64(i))
		s.End()
	}
}

// BenchmarkCounterEnabled is the enabled atomic-add cost.
func BenchmarkCounterEnabled(b *testing.B) {
	SetEnabled(true)
	defer SetEnabled(false)
	c := GetCounter("bench.counter.enabled")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// TestSpanDisabledZeroAlloc asserts the ~0 allocs/op claim outright so
// a regression fails tests, not just benchmarks.
func TestSpanDisabledZeroAlloc(t *testing.T) {
	SetEnabled(false)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		_, s := StartSpan(ctx, "bench.span")
		s.SetStr("algo", "x")
		s.SetInt("n", 1)
		s.End()
	})
	if allocs != 0 {
		t.Errorf("disabled span path allocates %.1f allocs/op, want 0", allocs)
	}
	c := GetCounter("bench.alloc.counter")
	h := GetHistogram("bench.alloc.hist")
	allocs = testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(1)
	})
	if allocs != 0 {
		t.Errorf("disabled metrics path allocates %.1f allocs/op, want 0", allocs)
	}
}
