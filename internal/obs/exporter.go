package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Exporter receives the root of every completed span tree. Exporters
// must be safe for concurrent use; the bundled exporters serialize
// writes internally.
type Exporter interface {
	ExportRoot(root *SpanData)
}

// exporterBox wraps the interface so atomic.Value sees one concrete
// type regardless of the stored implementation.
type exporterBox struct{ e Exporter }

var exporterVal atomic.Value // of exporterBox

// SetExporter installs the process span exporter. nil restores the
// default discard behaviour.
func SetExporter(e Exporter) { exporterVal.Store(exporterBox{e: e}) }

func currentExporter() Exporter {
	b, _ := exporterVal.Load().(exporterBox)
	return b.e
}

// CurrentExporter returns the installed process span exporter, or nil.
// Callers that layer exporters (e.g. a retention buffer wrapping a
// streaming exporter) use this to chain onto whatever is already
// installed.
func CurrentExporter() Exporter { return currentExporter() }

// TextExporter renders each completed trace as an indented tree, one
// span per line: name, duration, then key=value attributes.
type TextExporter struct {
	W io.Writer

	mu sync.Mutex
}

// NewTextExporter returns a TextExporter writing to w.
func NewTextExporter(w io.Writer) *TextExporter { return &TextExporter{W: w} }

// ExportRoot writes the span tree.
func (t *TextExporter) ExportRoot(root *SpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	writeSpanText(&b, root, 0)
	io.WriteString(t.W, b.String())
}

func writeSpanText(b *strings.Builder, s *SpanData, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s %s", s.Name, s.Duration.Round(time.Microsecond))
	for _, a := range s.Attrs {
		fmt.Fprintf(b, " %s=%v", a.Key, a.Value())
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		writeSpanText(b, c, depth+1)
	}
}

// JSONExporter renders each completed trace as one JSON document per
// line (newline-delimited JSON).
type JSONExporter struct {
	W io.Writer

	mu sync.Mutex
}

// NewJSONExporter returns a JSONExporter writing to w.
func NewJSONExporter(w io.Writer) *JSONExporter { return &JSONExporter{W: w} }

// SpanJSON is the wire form of a SpanData, shared by the JSON exporter
// and the HTTP trace/explain endpoints.
type SpanJSON struct {
	Name     string         `json:"name"`
	DurUS    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []SpanJSON     `json:"children,omitempty"`
}

// ToSpanJSON converts a finished span tree to its wire form.
func ToSpanJSON(s *SpanData) SpanJSON {
	out := SpanJSON{Name: s.Name, DurUS: s.Duration.Microseconds()}
	if len(s.Attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.Attrs))
		for _, a := range s.Attrs {
			out.Attrs[a.Key] = a.Value()
		}
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, ToSpanJSON(c))
	}
	return out
}

// ExportRoot writes the span tree as a single JSON line.
func (j *JSONExporter) ExportRoot(root *SpanData) {
	data, err := json.Marshal(ToSpanJSON(root))
	if err != nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.W.Write(data)
	io.WriteString(j.W, "\n")
}

// CollectExporter retains completed roots in memory; tests and
// programmatic consumers drain them with Roots().
type CollectExporter struct {
	mu    sync.Mutex
	roots []*SpanData
}

// ExportRoot appends the root to the collection.
func (c *CollectExporter) ExportRoot(root *SpanData) {
	c.mu.Lock()
	c.roots = append(c.roots, root)
	c.mu.Unlock()
}

// Roots returns the collected roots in completion order.
func (c *CollectExporter) Roots() []*SpanData {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*SpanData(nil), c.roots...)
}

// Reset discards the collected roots.
func (c *CollectExporter) Reset() {
	c.mu.Lock()
	c.roots = nil
	c.mu.Unlock()
}

// SpanNames flattens a span tree into "parent/child" paths in
// depth-first order — a convenient shape for asserting trace structure
// in tests.
func SpanNames(root *SpanData) []string {
	var out []string
	var rec func(s *SpanData, prefix string)
	rec = func(s *SpanData, prefix string) {
		path := s.Name
		if prefix != "" {
			path = prefix + "/" + s.Name
		}
		out = append(out, path)
		for _, c := range s.Children {
			rec(c, path)
		}
	}
	rec(root, "")
	return out
}

// AttrMap flattens a span's attributes into a map (later keys win).
func AttrMap(s *SpanData) map[string]any {
	out := map[string]any{}
	for _, a := range s.Attrs {
		out[a.Key] = a.Value()
	}
	return out
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
