package obs

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// withEnabled runs f with instrumentation on, restoring the previous
// state (and clearing the exporter) afterwards.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	prev := Enabled()
	SetEnabled(true)
	defer func() {
		SetEnabled(prev)
		SetExporter(nil)
	}()
	f()
}

func TestSpanDisabledIsNil(t *testing.T) {
	SetEnabled(false)
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "x")
	if s != nil {
		t.Fatal("disabled StartSpan returned a span")
	}
	if ctx2 != ctx {
		t.Fatal("disabled StartSpan derived a new context")
	}
	// All methods are nil-safe.
	s.SetInt("a", 1)
	s.SetStr("b", "v")
	s.SetBool("c", true)
	s.End()
}

func TestSpanNestingAndAttrs(t *testing.T) {
	withEnabled(t, func() {
		var col CollectExporter
		SetExporter(&col)

		ctx, root := StartSpan(context.Background(), "root")
		root.SetStr("who", "test")
		ctx2, child := StartSpan(ctx, "child")
		child.SetInt("n", 42)
		_, grand := StartSpan(ctx2, "grand")
		grand.SetBool("leaf", true)
		grand.End()
		child.End()
		// Sibling of child, still under root.
		_, sib := StartSpan(ctx, "sibling")
		sib.End()
		root.End()

		roots := col.Roots()
		if len(roots) != 1 {
			t.Fatalf("got %d roots, want 1", len(roots))
		}
		got := SpanNames(roots[0])
		want := []string{"root", "root/child", "root/child/grand", "root/sibling"}
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("span tree = %v, want %v", got, want)
		}
		attrs := AttrMap(roots[0].Children[0])
		if attrs["n"] != int64(42) {
			t.Errorf("child attrs = %v", attrs)
		}
		if AttrMap(roots[0])["who"] != "test" {
			t.Errorf("root attrs = %v", AttrMap(roots[0]))
		}
		if AttrMap(roots[0].Children[0].Children[0])["leaf"] != true {
			t.Errorf("grand attrs wrong")
		}
	})
}

func TestSpanEndIdempotentAndConcurrentChildren(t *testing.T) {
	withEnabled(t, func() {
		var col CollectExporter
		SetExporter(&col)
		ctx, root := StartSpan(context.Background(), "root")
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, s := StartSpan(ctx, "worker")
				s.SetInt("i", 1)
				s.End()
				s.End() // idempotent
			}()
		}
		wg.Wait()
		root.End()
		root.End()
		roots := col.Roots()
		if len(roots) != 1 {
			t.Fatalf("got %d roots, want 1", len(roots))
		}
		if n := len(roots[0].Children); n != 16 {
			t.Errorf("got %d children, want 16", n)
		}
	})
}

func TestTextExporterGolden(t *testing.T) {
	root := &SpanData{
		Name:     "fd.compute",
		Duration: 1500 * time.Microsecond,
		Attrs: []Attr{
			{Key: "algo", Kind: KindStr, Str: "outer_join"},
			{Key: "nodes", Kind: KindInt, Int: 4},
		},
		Children: []*SpanData{
			{
				Name:     "algebra.join",
				Duration: 900 * time.Microsecond,
				Attrs:    []Attr{{Key: "hash", Kind: KindBool, Bool: true}},
			},
			{Name: "fd.subsume", Duration: 100 * time.Microsecond},
		},
	}
	var b strings.Builder
	NewTextExporter(&b).ExportRoot(root)
	want := "fd.compute 1.5ms algo=outer_join nodes=4\n" +
		"  algebra.join 900µs hash=true\n" +
		"  fd.subsume 100µs\n"
	if b.String() != want {
		t.Errorf("text export:\n%q\nwant:\n%q", b.String(), want)
	}
}

func TestJSONExporterGolden(t *testing.T) {
	root := &SpanData{
		Name:     "cmd.walk",
		Duration: 2 * time.Millisecond,
		Attrs:    []Attr{{Key: "options", Kind: KindInt, Int: 3}},
		Children: []*SpanData{{Name: "fd.compute", Duration: time.Millisecond}},
	}
	var b strings.Builder
	NewJSONExporter(&b).ExportRoot(root)
	want := `{"name":"cmd.walk","dur_us":2000,"attrs":{"options":3},"children":[{"name":"fd.compute","dur_us":1000}]}` + "\n"
	if b.String() != want {
		t.Errorf("json export:\n%q\nwant:\n%q", b.String(), want)
	}
	// And it round-trips as JSON.
	var doc map[string]any
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
}

func TestCountersGaugesConcurrent(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		c := r.Counter("test.hits")
		g := r.Gauge("test.depth")
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 1000; j++ {
					c.Inc()
					g.Add(1)
					g.Add(-1)
				}
			}()
		}
		wg.Wait()
		if c.Value() != 8000 {
			t.Errorf("counter = %d, want 8000", c.Value())
		}
		if g.Value() != 0 {
			t.Errorf("gauge = %d, want 0", g.Value())
		}
		// Same name returns the same instrument.
		if r.Counter("test.hits") != c {
			t.Error("counter identity lost")
		}
	})
}

func TestHistogramConcurrentAndSnapshot(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		h := r.Histogram("test.lat")
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 1; i <= 1000; i++ {
					h.Observe(int64(i))
				}
			}(w)
		}
		wg.Wait()
		s := h.Snapshot()
		if s.Count != 8000 {
			t.Errorf("count = %d, want 8000", s.Count)
		}
		if s.Min != 1 || s.Max != 1000 {
			t.Errorf("min/max = %d/%d, want 1/1000", s.Min, s.Max)
		}
		wantSum := int64(8 * 1000 * 1001 / 2)
		if s.Sum != wantSum {
			t.Errorf("sum = %d, want %d", s.Sum, wantSum)
		}
		if s.P50 < 256 || s.P50 > 1000 {
			t.Errorf("p50 = %d out of plausible bucket range", s.P50)
		}
		if s.P95 < s.P50 || s.P95 > s.Max || s.P99 < s.P95 {
			t.Errorf("quantiles not monotone: p50=%d p95=%d p99=%d max=%d", s.P50, s.P95, s.P99, s.Max)
		}
	})
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	withEnabled(t, func() {
		h := NewHistogram()
		s := h.Snapshot()
		if s.Count != 0 || s.Min != 0 || s.Max != 0 {
			t.Errorf("empty snapshot = %+v", s)
		}
		h.Observe(-5)
		s = h.Snapshot()
		if s.Count != 1 || s.Min != 0 || s.Max != 0 {
			t.Errorf("negative clamps to zero, got %+v", s)
		}
	})
}

func TestRegistrySnapshotAndReset(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		r.Counter("a").Add(3)
		r.Counter("zero") // registered but untouched: omitted
		r.Gauge("g").Set(7)
		r.Histogram("h").Observe(int64(time.Millisecond))
		s := r.Snapshot()
		if s.Counters["a"] != 3 || s.Gauges["g"] != 7 {
			t.Errorf("snapshot = %+v", s)
		}
		if _, ok := s.Counters["zero"]; ok {
			t.Error("zero counter not omitted")
		}
		if s.Histograms["h"].Count != 1 {
			t.Errorf("histogram snapshot = %+v", s.Histograms["h"])
		}
		// Snapshot is JSON-encodable.
		if _, err := json.Marshal(s); err != nil {
			t.Fatalf("snapshot marshal: %v", err)
		}
		r.Reset()
		s = r.Snapshot()
		if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
			t.Errorf("reset snapshot not empty: %+v", s)
		}
		// Instruments stay live after reset.
		r.Counter("a").Add(1)
		if r.Snapshot().Counters["a"] != 1 {
			t.Error("counter dead after reset")
		}
		// Reset histogram min re-initializes.
		r.Histogram("h").Observe(5)
		if got := r.Snapshot().Histograms["h"].Min; got != 5 {
			t.Errorf("post-reset min = %d, want 5", got)
		}
	})
}

func TestDisabledInstrumentsDropUpdates(t *testing.T) {
	SetEnabled(false)
	r := NewRegistry()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(5)
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("disabled updates recorded: %+v", s)
	}
}

func TestQuantileClamp(t *testing.T) {
	var counts [histBuckets]int64
	counts[10] = 1 // one value in [512,1023]
	if got := quantile(counts[:], 1, 0.95, 700, 700); got != 700 {
		t.Errorf("quantile clamp = %d, want 700", got)
	}
	if got := quantile(nil, 0, 0.5, 0, math.MaxInt64); got != math.MaxInt64 {
		t.Errorf("empty quantile fell through wrong: %d", got)
	}
}

func TestServeDebug(t *testing.T) {
	withEnabled(t, func() {
		GetCounter("debug.test.counter").Add(11)
		d, err := ServeDebug("127.0.0.1:0")
		if err != nil {
			t.Fatalf("ServeDebug: %v", err)
		}
		defer d.Close()
		resp, err := http.Get("http://" + d.Addr + "/debug/vars")
		if err != nil {
			t.Fatalf("GET /debug/vars: %v", err)
		}
		defer resp.Body.Close()
		var doc map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("decode vars: %v", err)
		}
		raw, ok := doc["clio.metrics"]
		if !ok {
			t.Fatalf("clio.metrics missing from expvar: %v", sortedKeys(doc))
		}
		var snap Snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatalf("unmarshal snapshot: %v", err)
		}
		if snap.Counters["debug.test.counter"] < 11 {
			t.Errorf("counter missing from expvar snapshot: %+v", snap)
		}
		// pprof index answers.
		resp2, err := http.Get("http://" + d.Addr + "/debug/pprof/")
		if err != nil {
			t.Fatalf("GET pprof: %v", err)
		}
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusOK {
			t.Errorf("pprof status = %d", resp2.StatusCode)
		}
	})
}
